# Developer entry points. `make all` is the default gate: build, lint
# (simlint + vet + gofmt), then test. `make race` is the supported
# race-detector invocation (the parallel harness is exercised by
# TestParallelRowsMatchSequential at 8 workers).

GO      ?= go
JOBS    ?= 4
TMP     ?= /tmp/iatsim

.PHONY: all build lint simlint lint-baseline vet fmtcheck test race smoke telemetry-smoke chaos-smoke fleet-smoke ckpt-smoke bench bench-baseline bench-diff determinism scaling clean

all: build lint test race telemetry-smoke chaos-smoke fleet-smoke ckpt-smoke

build:
	$(GO) build ./...

# lint enforces the determinism and hardware-model invariants (see
# EXPERIMENTS.md "Static analysis: simlint"): simlint (detlint/maporder/
# msrlint/seedflow/statelint/telemlint, interprocedural), go vet, and a
# gofmt cleanliness check. It must exit 0 at HEAD.
lint: simlint vet fmtcheck

simlint: build
	$(GO) run ./cmd/simlint

# lint-baseline regenerates results/simlint-baseline.csv (deterministic:
# rows are sorted, so the diff in a PR shows exactly the enforcement
# drift). CI's lint job diffs against the committed file and fails only
# on NEW findings.
lint-baseline: build
	$(GO) run ./cmd/simlint -baseline results/simlint-baseline.csv -write

vet:
	$(GO) vet ./...

fmtcheck:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt: these files need formatting:"; echo "$$out"; exit 1; \
	fi
	@echo "gofmt OK"

test: build
	$(GO) test ./...

race: build
	$(GO) test -race ./...

# smoke: one figure through the full parallel path — CSV + manifest out,
# and the manifest must report zero failed jobs.
smoke: build
	rm -rf $(TMP)/smoke && mkdir -p $(TMP)/smoke
	$(GO) run ./cmd/experiments -fig 3 -jobs $(JOBS) -csv $(TMP)/smoke -json $(TMP)/smoke
	grep -q '"failures": 0' $(TMP)/smoke/manifest.json
	@echo "smoke OK: $(TMP)/smoke/manifest.json"

# telemetry-smoke: one figure with per-job telemetry collection, then
# iatstat -validate schema-checks every produced snapshot and Chrome
# trace, and iatstat prints + diffs two of them (exercising the whole
# inspect path).
telemetry-smoke: build
	rm -rf $(TMP)/tel && mkdir -p $(TMP)/tel
	$(GO) run ./cmd/experiments -fig 8 -jobs $(JOBS) -telemetry $(TMP)/tel > /dev/null
	$(GO) run ./cmd/iatstat -validate $(TMP)/tel
	$(GO) run ./cmd/iatstat $(TMP)/tel/fig8_pkt_64_iat.json > /dev/null
	$(GO) run ./cmd/iatstat -diff $(TMP)/tel/fig8_pkt_64_baseline.json $(TMP)/tel/fig8_pkt_64_iat.json > /dev/null
	@echo "telemetry-smoke OK: $(TMP)/tel"

# chaos-smoke: the stability-under-faults experiment under the race
# detector, at 1 worker vs $(JOBS) workers. Fault schedules derive from
# the manifest seed (never from scheduling), so the two CSVs must be
# byte-identical — and the run doubles as the "hardened daemon survives
# the default fault profile" gate (a failed job fails the make).
chaos-smoke: build
	rm -rf $(TMP)/chaos1 $(TMP)/chaosN && mkdir -p $(TMP)/chaos1 $(TMP)/chaosN
	$(GO) run -race ./cmd/experiments -chaos default -jobs 1 -csv $(TMP)/chaos1 -json $(TMP)/chaos1 > /dev/null
	$(GO) run -race ./cmd/experiments -chaos default -jobs $(JOBS) -csv $(TMP)/chaosN -json $(TMP)/chaosN > /dev/null
	cmp $(TMP)/chaos1/chaos.csv $(TMP)/chaosN/chaos.csv
	grep -q '"failures": 0' $(TMP)/chaosN/manifest.json
	@echo "chaos-smoke OK: jobs=1 == jobs=$(JOBS) under -race"

# fleet-smoke: the fleet simulator acceptance gate — a 32-host canary
# rollout with a correlated fault storm on the canary cohort, run under
# the race detector at 1 worker vs 8 workers. The aggregate round CSV
# and both telemetry snapshots (controller + merged host rollup) must be
# byte-identical, and the manifest must report zero failed step jobs.
FLEETFLAGS = -hosts 32 -rollout canary -chaos default -scale 3200 -round 0.15
fleet-smoke: build
	rm -rf $(TMP)/fleet1 $(TMP)/fleetN && mkdir -p $(TMP)/fleet1 $(TMP)/fleetN
	$(GO) run -race ./cmd/fleetd $(FLEETFLAGS) -jobs 1 -csv $(TMP)/fleet1 -telemetry $(TMP)/fleet1 -json $(TMP)/fleet1 > /dev/null
	$(GO) run -race ./cmd/fleetd $(FLEETFLAGS) -jobs 8 -csv $(TMP)/fleetN -telemetry $(TMP)/fleetN -json $(TMP)/fleetN > /dev/null
	cmp $(TMP)/fleet1/fleet.csv $(TMP)/fleetN/fleet.csv
	cmp $(TMP)/fleet1/controller.json $(TMP)/fleetN/controller.json
	cmp $(TMP)/fleet1/hosts.json $(TMP)/fleetN/hosts.json
	grep -q '"failures": 0' $(TMP)/fleetN/manifest.json
	@echo "fleet-smoke OK: 32-host canary rollout, jobs=1 == jobs=8 under -race"

# ckpt-smoke: the checkpoint/restore acceptance gate. An iatd run is
# checkpointed every 3 iterations and killed mid-run by -crash-after
# (the binary is built explicitly because `go run` masks the child's
# exit 137 as its own exit 1), then resumed from the surviving
# checkpoint. The resumed run's decision stream must be byte-identical
# to the uninterrupted run's tail, its trace CSV byte-identical to the
# uninterrupted run's (the muted replay re-records the prefix), and its
# manifest must carry the resumed-from provenance. Then a fleet crash
# storm with per-round host checkpoints must stay byte-identical at
# -jobs 1 vs 8 under -race.
CKPTFLAGS = -duration 4 -interval 0.2 -chaos default -chaos-seed 7
CKPTFLEET = -hosts 8 -rollout canary -chaos heavy -chaos-seed 2 -checkpoint-every 1 -scale 3200 -round 0.2 -interval 0.05
ckpt-smoke: build
	rm -rf $(TMP)/ckpt && mkdir -p $(TMP)/ckpt/ck $(TMP)/ckpt/f1 $(TMP)/ckpt/f8
	printf 'fwd0 0 2 pc io testpmd:1500\nbatch 1 2 be - xmem:4\n@0.6s batch xmem-ws 8\n' > $(TMP)/ckpt/tenants.conf
	$(GO) build -o $(TMP)/ckpt/iatd ./cmd/iatd
	$(TMP)/ckpt/iatd -tenants $(TMP)/ckpt/tenants.conf $(CKPTFLAGS) -trace $(TMP)/ckpt/full.csv > $(TMP)/ckpt/full.txt
	$(TMP)/ckpt/iatd -tenants $(TMP)/ckpt/tenants.conf $(CKPTFLAGS) -checkpoint $(TMP)/ckpt/ck -checkpoint-every 3 -crash-after 10 > $(TMP)/ckpt/crashed.txt 2> $(TMP)/ckpt/crash.err; [ $$? -eq 137 ]
	grep -q 'simulated crash after iteration 10' $(TMP)/ckpt/crash.err
	$(TMP)/ckpt/iatd -tenants $(TMP)/ckpt/tenants.conf $(CKPTFLAGS) -resume $(TMP)/ckpt/ck/iatd.ckpt -trace $(TMP)/ckpt/resumed.csv -json $(TMP)/ckpt > $(TMP)/ckpt/resumed.txt
	cmp $(TMP)/ckpt/full.csv $(TMP)/ckpt/resumed.csv
	grep '^\[' $(TMP)/ckpt/full.txt | grep -v '] event:' | tail -n +10 > $(TMP)/ckpt/tail.want
	grep '^\[' $(TMP)/ckpt/resumed.txt | grep -v '] event:' > $(TMP)/ckpt/tail.got
	cmp $(TMP)/ckpt/tail.want $(TMP)/ckpt/tail.got
	[ "$$(grep '^iatd: done;' $(TMP)/ckpt/full.txt)" = "$$(grep '^iatd: done;' $(TMP)/ckpt/resumed.txt)" ]
	grep -q '"resumed_from"' $(TMP)/ckpt/manifest.json
	$(GO) run -race ./cmd/fleetd $(CKPTFLEET) -jobs 1 -csv $(TMP)/ckpt/f1 > /dev/null
	$(GO) run -race ./cmd/fleetd $(CKPTFLEET) -jobs 8 -csv $(TMP)/ckpt/f8 > /dev/null
	cmp $(TMP)/ckpt/f1/fleet.csv $(TMP)/ckpt/f8/fleet.csv
	@echo "ckpt-smoke OK: kill+resume tail == uninterrupted run; fleet crash storm jobs=1 == jobs=8 under -race"

# bench: the micro-benchmark suite (cache access, NIC poll, daemon
# iteration, policy decision, platform step, fleet round) via `go test
# -bench`, converted to JSON at results/bench.json by cmd/benchjson.
BENCHES ?= LLCAccess|HierarchyAccess|NICPollRx|DaemonTick|PolicyDecide|Table2DaemonIteration|Table1PlatformStep|FleetRound
bench: build
	mkdir -p $(TMP) results
	$(GO) test -run '^$$' -bench '$(BENCHES)' -benchmem . > $(TMP)/bench.txt
	$(GO) run ./cmd/benchjson -in $(TMP)/bench.txt -out results/bench.json
	@echo "bench OK: results/bench.json"

# bench-baseline re-records results/bench-baseline.json, the committed
# reference bench-diff gates against: $(BENCH_COUNT) suite runs,
# collapsed best-of-N per benchmark (the fastest run is the one least
# disturbed by the host). Regenerate (and commit) after an intentional
# performance change, or when the reference hardware class changes —
# ns/op is only comparable against a baseline from the same machine
# class.
BENCH_COUNT ?= 3
bench-baseline: build
	mkdir -p $(TMP) results
	$(GO) test -run '^$$' -bench '$(BENCHES)' -benchmem -count $(BENCH_COUNT) . > $(TMP)/bench-baseline.txt
	$(GO) run ./cmd/benchjson -best -in $(TMP)/bench-baseline.txt -out results/bench-baseline.json
	@echo "bench-baseline OK: results/bench-baseline.json"

# bench-diff is the regression gate (run by CI): re-run the suite
# $(BENCH_COUNT) times, then fail on any benchmark whose best run got
# >$(BENCH_TOLERANCE)% slower in ns/op or regressed in allocs/op vs
# results/bench-baseline.json. A zero-alloc baseline gates exactly (the
# hot loops' 0 allocs/op is a property, not a timing); an allocating
# baseline gets 1% slack for b.N-dependent amortization flap.
BENCH_TOLERANCE ?= 15
bench-diff: build
	mkdir -p $(TMP)
	$(GO) test -run '^$$' -bench '$(BENCHES)' -benchmem -count $(BENCH_COUNT) . > $(TMP)/bench-head.txt
	$(GO) run ./cmd/benchjson -best -in $(TMP)/bench-head.txt -out $(TMP)/bench-head.json
	$(GO) run ./cmd/benchjson -diff -tolerance $(BENCH_TOLERANCE) results/bench-baseline.json $(TMP)/bench-head.json

# determinism: -all at 1 worker vs 8 workers must emit byte-identical CSV
# rows. fig15.csv is excluded: it measures host wall-clock time (the
# daemon's real per-iteration cost) and is nondeterministic even between
# two sequential runs — see results/README.md.
determinism: build
	rm -rf $(TMP)/det1 $(TMP)/det8 && mkdir -p $(TMP)/det1 $(TMP)/det8
	$(GO) run ./cmd/experiments -all -jobs 1 -csv $(TMP)/det1 -json $(TMP)/det1 > /dev/null
	$(GO) run ./cmd/experiments -all -jobs 8 -csv $(TMP)/det8 -json $(TMP)/det8 > /dev/null
	@fail=0; for f in $(TMP)/det1/*.csv; do \
		b=$$(basename $$f); \
		[ "$$b" = "fig15.csv" ] && continue; \
		cmp -s $$f $(TMP)/det8/$$b || { echo "DIVERGED: $$b"; fail=1; }; \
	done; \
	[ $$fail -eq 0 ] && echo "determinism OK: jobs=1 == jobs=8 (fig15 excluded: wall-clock)" || exit 1

# scaling: record -all wall-clock at jobs=1 vs jobs=$(JOBS) into
# results/harness-scaling.csv.
scaling: build
	rm -rf $(TMP)/scale && mkdir -p $(TMP)/scale
	@[ -f results/harness-scaling.csv ] || echo "date,host_cores,jobs,wall_s" > results/harness-scaling.csv
	@for j in 1 $(JOBS); do \
		t0=$$(date +%s.%N); \
		$(GO) run ./cmd/experiments -all -jobs $$j > /dev/null 2> /dev/null; \
		t1=$$(date +%s.%N); \
		echo "$$(date -u +%F),$$(nproc),$$j,$$(echo "$$t1 $$t0" | awk '{printf "%.1f", $$1-$$2}')" >> results/harness-scaling.csv; \
	done
	@tail -3 results/harness-scaling.csv

clean:
	rm -rf $(TMP)
