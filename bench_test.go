// Package iatsim_test hosts the benchmark harness that regenerates every
// table and figure of the paper's evaluation (see DESIGN.md for the
// experiment index). Each BenchmarkFigNN runs a reduced-sweep version of
// the corresponding experiment and reports the figure's headline quantities
// via b.ReportMetric; cmd/experiments runs the full sweeps.
//
//	go test -bench=. -benchmem
package iatsim_test

import (
	"io"
	"os"
	"testing"

	"iatsim/internal/bridge"
	"iatsim/internal/cache"
	"iatsim/internal/core"
	"iatsim/internal/exp"
	"iatsim/internal/mem"
	"iatsim/internal/policy"
	"iatsim/internal/sim"
)

// TestMain pins the experiment harness to one worker: each BenchmarkFigNN
// times a whole sweep, and a machine-dependent worker count would make
// the numbers incomparable across hosts. (Rows are identical at any
// worker count; this is only about stable timings.)
func TestMain(m *testing.M) {
	exp.SetExec(exp.Exec{Jobs: 1})
	os.Exit(m.Run())
}

// BenchmarkTable1PlatformStep measures the raw simulation engine: one epoch
// of the Table I machine (18 cores, 24.75MB LLC, idle tenants).
func BenchmarkTable1PlatformStep(b *testing.B) {
	p := sim.NewPlatform(sim.XeonGold6140(100))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
}

// BenchmarkTable2DaemonIteration measures one IAT control iteration (poll +
// transition + re-alloc) with the Table II parameters over a quiet 8-tenant
// machine — the per-interval cost the paper bounds at 800us.
func BenchmarkTable2DaemonIteration(b *testing.B) {
	o := exp.DefaultFig15Opts()
	o.TenantCounts = []int{8}
	o.CoresPer = []int{2}
	o.Iterations = 20
	var rows []exp.Fig15Row
	for i := 0; i < b.N; i++ {
		rows = exp.RunFig15(io.Discard, o)
	}
	b.ReportMetric(rows[0].StableUS, "stable-us/iter")
	b.ReportMetric(rows[0].UnstableUS, "unstable-us/iter")
}

// BenchmarkFig03LeakyDMAMotivation regenerates one Fig. 3 contrast: the
// RFC2544 zero-drop rate of 64B l3fwd with a deep vs shallow Rx ring.
func BenchmarkFig03LeakyDMAMotivation(b *testing.B) {
	o := exp.DefaultFig3Opts()
	o.Rings = []int{64, 1024}
	o.Sizes = []int{64}
	var rows []exp.Fig3Row
	for i := 0; i < b.N; i++ {
		rows = exp.RunFig3(io.Discard, o)
	}
	b.ReportMetric(rows[0].MaxMpps, "Mpps-ring64")
	b.ReportMetric(rows[1].MaxMpps, "Mpps-ring1024")
}

// BenchmarkFig04LatentContenderMotivation regenerates one Fig. 4 contrast:
// X-Mem throughput with dedicated vs DDIO-overlapped ways at a 4MB working
// set.
func BenchmarkFig04LatentContenderMotivation(b *testing.B) {
	o := exp.DefaultFig4Opts()
	o.WorkingSets = []int{4}
	var rows []exp.Fig4Row
	for i := 0; i < b.N; i++ {
		rows = exp.RunFig4(io.Discard, o)
	}
	b.ReportMetric(rows[0].MopsPerSec, "Mops-dedicated")
	b.ReportMetric(rows[1].MopsPerSec, "Mops-ddio-ovlp")
	b.ReportMetric(rows[1].AvgLatencyNS/rows[0].AvgLatencyNS, "latency-ratio")
}

// BenchmarkFig08LeakyDMA regenerates the Fig. 8 headline at 1.5KB: DDIO
// miss rate and memory bandwidth, baseline vs IAT.
func BenchmarkFig08LeakyDMA(b *testing.B) {
	o := exp.DefaultFig8Opts()
	o.Sizes = []int{1500}
	var rows []exp.Fig8Row
	for i := 0; i < b.N; i++ {
		rows = exp.RunFig8(io.Discard, o)
	}
	base, iat := rows[0], rows[1]
	b.ReportMetric(base.DDIOMissPS, "ddio-miss/s-base")
	b.ReportMetric(iat.DDIOMissPS, "ddio-miss/s-iat")
	b.ReportMetric(base.MemGBps, "memGBps-base")
	b.ReportMetric(iat.MemGBps, "memGBps-iat")
}

// BenchmarkFig09FlowScaling regenerates the Fig. 9 headline: OVS IPC at
// 100k flows, baseline vs IAT.
func BenchmarkFig09FlowScaling(b *testing.B) {
	o := exp.DefaultFig9Opts()
	o.FlowSteps = []int{1, 100000}
	var rows []exp.Fig9Row
	for i := 0; i < b.N; i++ {
		rows = exp.RunFig9(io.Discard, o)
	}
	var baseIPC, iatIPC float64
	var ways int
	for _, r := range rows {
		if r.Flows != 100000 {
			continue
		}
		if r.Mode == "baseline" {
			baseIPC = r.OVSIPC
		} else {
			iatIPC, ways = r.OVSIPC, r.OVSWays
		}
	}
	b.ReportMetric(baseIPC, "ipc-base")
	b.ReportMetric(iatIPC, "ipc-iat")
	b.ReportMetric(float64(ways), "ovs-ways-iat")
}

// BenchmarkFig10LatentContender regenerates the Fig. 10 headline at 1.5KB:
// container 4's phase-3 throughput under baseline, core-only and IAT.
func BenchmarkFig10LatentContender(b *testing.B) {
	o := exp.DefaultFig10Opts()
	o.Sizes = []int{1500}
	o.Phase1NS, o.Phase2NS, o.Phase3NS = 1e9, 3e9, 3e9
	var rows []exp.Fig10Row
	for i := 0; i < b.N; i++ {
		rows = exp.RunFig10(io.Discard, o)
	}
	for _, r := range rows {
		switch r.Mode {
		case "baseline":
			b.ReportMetric(r.P3Mops, "P3-Mops-base")
		case "core-only":
			b.ReportMetric(r.P3Mops, "P3-Mops-coreonly")
		case "iat":
			b.ReportMetric(r.P3Mops, "P3-Mops-iat")
		}
	}
}

// BenchmarkFig11Dynamics regenerates the Fig. 11 time series and reports
// how quickly IAT reacts to the working-set phase change.
func BenchmarkFig11Dynamics(b *testing.B) {
	o := exp.DefaultFig10Opts()
	o.Phase1NS, o.Phase2NS, o.Phase3NS = 1e9, 2e9, 2e9
	var series []exp.Fig11Sample
	for i := 0; i < b.N; i++ {
		series = exp.RunFig11(io.Discard, o)
	}
	// Reaction time: first allocation change after the t=Phase1 event.
	react := 0.0
	for _, s := range series {
		if s.TimeNS > o.Phase1NS && s.C4Ways != series[0].C4Ways {
			react = (s.TimeNS - o.Phase1NS) / 1e9
			break
		}
	}
	b.ReportMetric(react, "reaction-s")
	b.ReportMetric(float64(len(series)), "samples")
}

// BenchmarkFig12Applications regenerates one Fig. 12 cell: RocksDB
// execution time co-running with Redis, worst placement, baseline vs IAT,
// normalised to solo.
func BenchmarkFig12Applications(b *testing.B) {
	var soloNS, baseNS, iatNS float64
	for i := 0; i < b.N; i++ {
		opts := exp.AppMixOpts{Net: "redis", App: "rocksdb:C", TargetOps: 30000}
		s := opts
		s.Solo = true
		soloNS = exp.RunAppMix(s).ExecNS
		w := opts
		w.Placement = exp.PlacePC
		baseNS = exp.RunAppMix(w).ExecNS
		x := w
		x.IAT = true
		x.IntervalNS = 0.25e9
		iatNS = exp.RunAppMix(x).ExecNS
	}
	b.ReportMetric(baseNS/soloNS, "norm-exec-base")
	b.ReportMetric(iatNS/soloNS, "norm-exec-iat")
}

// BenchmarkFig13RocksDBLatency regenerates one Fig. 13 cell: RocksDB
// YCSB-A normalised weighted latency under the worst placement vs IAT.
func BenchmarkFig13RocksDBLatency(b *testing.B) {
	var base, iat float64
	for i := 0; i < b.N; i++ {
		opts := exp.AppMixOpts{Net: "redis", App: "rocksdb:A", TargetOps: 30000}
		s := opts
		s.Solo = true
		solo := exp.RunAppMix(s)
		w := opts
		w.Placement = exp.PlacePC
		base = exp.WeightedLatency(exp.RunAppMix(w).RocksHists, solo.RocksHists)
		x := w
		x.IAT = true
		x.IntervalNS = 0.25e9
		iat = exp.WeightedLatency(exp.RunAppMix(x).RocksHists, solo.RocksHists)
	}
	b.ReportMetric(base, "norm-wlat-base")
	b.ReportMetric(iat, "norm-wlat-iat")
}

// BenchmarkFig14Redis regenerates one Fig. 14 cell: Redis YCSB-A mean
// latency under co-location (cache-hungry BE on the DDIO ways) vs IAT,
// normalised to the networking-solo run.
func BenchmarkFig14Redis(b *testing.B) {
	var baseAvg, iatAvg float64
	for i := 0; i < b.N; i++ {
		opts := exp.AppMixOpts{Net: "redis", App: "mcf", RedisWorkload: "A",
			TargetInstr: 1 << 62, MaxNS: 2.5e9}
		s := opts
		s.NetOnly = true
		solo := exp.RunAppMix(s)
		w := opts
		w.Placement = exp.PlaceBE10
		baseAvg = exp.RunAppMix(w).RedisMeanNS / solo.RedisMeanNS
		x := w
		x.IAT = true
		x.IntervalNS = 0.25e9
		iatAvg = exp.RunAppMix(x).RedisMeanNS / solo.RedisMeanNS
	}
	b.ReportMetric(baseAvg, "norm-avg-base")
	b.ReportMetric(iatAvg, "norm-avg-iat")
}

// BenchmarkFig15IATOverhead regenerates Fig. 15's scaling point: the
// daemon's per-iteration wall-clock cost at 17 single-core tenants.
func BenchmarkFig15IATOverhead(b *testing.B) {
	o := exp.DefaultFig15Opts()
	o.TenantCounts = []int{17}
	o.CoresPer = []int{1}
	o.Iterations = 30
	var rows []exp.Fig15Row
	for i := 0; i < b.N; i++ {
		rows = exp.RunFig15(io.Discard, o)
	}
	b.ReportMetric(rows[0].StableUS, "stable-us")
	b.ReportMetric(rows[0].UnstableUS, "unstable-us")
}

// --- micro-benchmarks of the hot paths ---

// BenchmarkLLCAccess measures one demand access through the full LLC model.
func BenchmarkLLCAccess(b *testing.B) {
	llc := cache.NewLLC(sim.XeonGold6140(1).Hier.LLC, 18)
	mask := cache.ContiguousMask(0, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		llc.Access(0, uint64(i%100000)<<6, i&1 == 0, mask)
	}
}

// BenchmarkHierarchyAccess measures one access through L1/L2/LLC/memory.
func BenchmarkHierarchyAccess(b *testing.B) {
	cfg := sim.XeonGold6140(1)
	h := cache.NewHierarchy(cfg.Hier, cfg.FreqGHz, mem.NewController(mem.Config{}))
	h.Mem().BeginEpoch(1e12)
	mask := cache.ContiguousMask(0, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(0, uint64(i%100000)<<6, false, mask)
	}
}

// BenchmarkDaemonTick measures the zero-work fast path of the daemon (the
// interval gate), which runs once per simulated epoch.
func BenchmarkDaemonTick(b *testing.B) {
	p := sim.NewPlatform(sim.XeonGold6140(100))
	params := core.DefaultParams()
	d, err := core.NewDaemon(bridge.NewSystem(p), params, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	d.Tick(params.IntervalNS) // first (baseline) iteration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Tick(params.IntervalNS + 1) // gated: the fast path
	}
}

// BenchmarkAblationMechanisms quantifies each IAT lever's contribution on
// the Leaky DMA scenario (beyond-the-paper ablation).
func BenchmarkAblationMechanisms(b *testing.B) {
	var rows []exp.AblationMechRow
	for i := 0; i < b.N; i++ {
		rows = exp.RunAblationMechanisms(io.Discard, 100)
	}
	for _, r := range rows {
		b.ReportMetric(r.DDIOMissPS, "miss/s-"+r.Variant)
	}
}

// BenchmarkAblationDDIOExt measures the Sec. VII future-DDIO proposals.
func BenchmarkAblationDDIOExt(b *testing.B) {
	var rows []exp.AblationDDIOExtRow
	for i := 0; i < b.N; i++ {
		rows = exp.RunAblationDDIOExt(io.Discard, 100)
	}
	for _, r := range rows {
		b.ReportMetric(r.VictimLatNS, "victim-ns-"+r.Variant)
	}
}

// BenchmarkNICPollRx measures one epoch of the Leaky DMA datapath: line-
// rate NIC delivery into the Rx rings, the OVS cores polling their VFs,
// and the DDIO writes the paper is about. Rings and the EMC are warmed
// first so the steady-state poll path is what's timed.
func BenchmarkNICPollRx(b *testing.B) {
	s := exp.NewLeakyScenario(exp.LeakyOpts{Scale: 100, PktSize: 64})
	s.P.Run(1e7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.P.Step()
	}
}

// BenchmarkPolicyDecide measures one Observe+Decide cycle of each
// shipped allocation policy over an 8-tenant sample, alternating quiet
// and loud I/O so the change-detection path runs every other tick — the
// pure decision cost the daemon pays per polling interval.
func BenchmarkPolicyDecide(b *testing.B) {
	limits := policy.Limits{
		ThresholdStable:        0.03,
		ThresholdMissLowPerSec: 1e6,
		DDIOWaysMin:            1,
		DDIOWaysMax:            6,
		MissDropFactor:         0.5,
		TenantMissRateFloor:    0.05,
	}
	mkSample := func(missPS float64) policy.Sample {
		s := policy.Sample{
			NumWays: 11, DDIOWays: 2,
			DDIOMask:   cache.ContiguousMask(9, 2),
			Limits:     limits,
			DDIOHitPS:  1e8,
			DDIOMissPS: missPS,
		}
		for clos := 1; clos <= 8; clos++ {
			s.Groups = append(s.Groups, policy.GroupView{
				CLOS: clos, IO: clos == 1, Width: 1,
				Mask: cache.ContiguousMask(clos-1, 1),
				IPC:  0.5, RefsPS: 1e7, MissPS: 1e5, MissRate: 0.01,
			})
		}
		return s
	}
	quiet, loud := mkSample(1e3), mkSample(5e6)
	for _, name := range []string{"iat", "static:2", "ioca", "greedy"} {
		b.Run(name, func(b *testing.B) {
			spec, err := policy.ParseSpec(name)
			if err != nil {
				b.Fatal(err)
			}
			pol := spec.New()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := quiet
				if i&1 == 1 {
					s = loud
				}
				s.NowNS = float64(i) * 1e8
				pol.Observe(s)
				_ = pol.Decide()
			}
		})
	}
}

// BenchmarkFleetRound measures the fleet simulator: one 4-host, 4-round
// canary rollout per iteration (sequential host stepping plus controller
// aggregation), reported per round.
func BenchmarkFleetRound(b *testing.B) {
	const rounds = 4
	for i := 0; i < b.N; i++ {
		o := exp.FleetOpts{
			Hosts: 4, Topology: "striped", Rollout: "canary",
			Scale: 3200, Rounds: rounds, RoundNS: 0.2e9, IntervalNS: 0.05e9,
		}
		if _, _, err := exp.RunFleet(io.Discard, o); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*rounds), "ns/round")
}
