package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// DiffRow is the comparison of one benchmark between a baseline report
// and a new report. A benchmark is keyed by name + GOMAXPROCS suffix:
// the same bench at a different -cpu count is a different measurement.
type DiffRow struct {
	Name      string
	OldNs     float64
	NewNs     float64
	DeltaPct  float64 // ns/op change in percent; positive = slower
	OldAllocs float64
	NewAllocs float64
	// Reason is non-empty when the row is a regression: ns/op past the
	// tolerance, allocs/op past allocRegressed, or the benchmark missing
	// from the new report (a gated bench cannot silently disappear).
	Reason string
}

// nsGateFloorNs bounds which benchmarks the ns/op percentage gate
// applies to. Below ~1µs per op, run-to-run timer jitter and host-speed
// drift on shared CI machines routinely exceed any tolerance worth
// gating at (a 10ns wobble on a 70ns loop is +14%), so sub-µs
// micro-benches are gated on allocs/op only — which is exact at a
// zero-alloc baseline and is the property the hot-loop pass actually
// guarantees. Their ns/op deltas are still printed for information.
const nsGateFloorNs = 1000.0

// Diff compares every baseline benchmark against the new report.
// tolerancePct bounds the allowed ns/op growth (15 = +15%) for
// benchmarks whose baseline is at least nsGateFloorNs; allocs/op
// gates per allocRegressed — exactly at a zero-alloc baseline, with 1%
// slack where the baseline already allocates. Rows come back in
// baseline order; added names are new-report benchmarks
// absent from the baseline (informational, never gated).
func Diff(base, head *Report, tolerancePct float64) (rows []DiffRow, added []string) {
	key := func(b Benchmark) string { return fmt.Sprintf("%s-%d", b.Name, b.Procs) }
	newBy := make(map[string]Benchmark, len(head.Benchmarks))
	for _, b := range head.Benchmarks {
		newBy[key(b)] = b
	}
	seen := make(map[string]bool, len(base.Benchmarks))
	for _, ob := range base.Benchmarks {
		seen[key(ob)] = true
		row := DiffRow{
			Name:      ob.Name,
			OldNs:     ob.Metrics["ns/op"],
			OldAllocs: ob.Metrics["allocs/op"],
		}
		nb, ok := newBy[key(ob)]
		if !ok {
			row.Reason = "missing from new report"
			rows = append(rows, row)
			continue
		}
		row.NewNs = nb.Metrics["ns/op"]
		row.NewAllocs = nb.Metrics["allocs/op"]
		if row.OldNs > 0 {
			row.DeltaPct = (row.NewNs - row.OldNs) / row.OldNs * 100
		}
		switch {
		case allocRegressed(row.OldAllocs, row.NewAllocs):
			row.Reason = fmt.Sprintf("allocs/op %.0f -> %.0f", row.OldAllocs, row.NewAllocs)
		case row.DeltaPct > tolerancePct && row.OldNs >= nsGateFloorNs:
			row.Reason = fmt.Sprintf("ns/op +%.1f%% exceeds +%.1f%% tolerance", row.DeltaPct, tolerancePct)
		}
		rows = append(rows, row)
	}
	for _, nb := range head.Benchmarks {
		if !seen[key(nb)] {
			added = append(added, nb.Name)
		}
	}
	return rows, added
}

// allocRegressed applies the allocs/op gate. A zero-alloc baseline is
// an exact property — the first heap allocation sneaking back into a
// hot loop fails, no tolerance. A baseline that already allocates gets
// 1% slack: large per-op counts flap by a couple of allocations
// run-to-run (b.N-dependent amortization of map growth and pool
// warmup), while any real new allocation in an inner loop moves the
// count by whole multiples of the op's iteration depth.
func allocRegressed(base, head float64) bool {
	if head <= base {
		return false
	}
	return base == 0 || (head-base)/base > 0.01
}

// CollapseBest folds repeated runs of the same benchmark (a -count=N
// suite) into one entry per benchmark, keeping each metric's minimum.
// Best-of-N is the standard noise reducer for regression gating: the
// fastest run is the one least disturbed by the host, and allocs/op
// flapping from amortized growth collapses to its steady floor.
// Entries keep first-appearance order; Iterations is the largest b.N.
func CollapseBest(rep *Report) *Report {
	out := &Report{Goos: rep.Goos, Goarch: rep.Goarch, Pkg: rep.Pkg, CPU: rep.CPU}
	index := map[string]int{}
	for _, b := range rep.Benchmarks {
		k := fmt.Sprintf("%s-%d", b.Name, b.Procs)
		i, ok := index[k]
		if !ok {
			index[k] = len(out.Benchmarks)
			cp := b
			cp.Metrics = make(map[string]float64, len(b.Metrics))
			for u, v := range b.Metrics {
				cp.Metrics[u] = v
			}
			out.Benchmarks = append(out.Benchmarks, cp)
			continue
		}
		best := &out.Benchmarks[i]
		if b.Iterations > best.Iterations {
			best.Iterations = b.Iterations
		}
		for u, v := range b.Metrics {
			if prev, ok := best.Metrics[u]; !ok || v < prev {
				best.Metrics[u] = v
			}
		}
	}
	return out
}

// runDiff is the -diff entry point: load both reports, compare best-of-N
// per side, print the table, and report whether any row regressed.
func runDiff(oldPath, newPath string, tolerancePct float64, w io.Writer) (regressed bool, err error) {
	base, err := readReport(oldPath)
	if err != nil {
		return false, err
	}
	head, err := readReport(newPath)
	if err != nil {
		return false, err
	}
	rows, added := Diff(CollapseBest(base), CollapseBest(head), tolerancePct)
	fmt.Fprintf(w, "%-28s %14s %14s %8s %13s  %s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "allocs/op", "verdict")
	n := 0
	for _, r := range rows {
		verdict := "ok"
		switch {
		case r.Reason != "":
			verdict = "REGRESSION: " + r.Reason
			n++
		case r.DeltaPct > tolerancePct && r.OldNs < nsGateFloorNs:
			verdict = "ok (sub-µs bench, ns/op not gated)"
		}
		fmt.Fprintf(w, "%-28s %14.1f %14.1f %+7.1f%% %6.0f -> %-4.0f %s\n",
			r.Name, r.OldNs, r.NewNs, r.DeltaPct, r.OldAllocs, r.NewAllocs, verdict)
	}
	for _, name := range added {
		fmt.Fprintf(w, "%-28s (new benchmark, not in baseline — not gated)\n", name)
	}
	if n > 0 {
		fmt.Fprintf(w, "benchjson: %d of %d benchmark(s) regressed vs %s (tolerance +%.1f%% ns/op at >=1µs/op; allocs/op exact at a zero-alloc baseline)\n",
			n, len(rows), oldPath, tolerancePct)
		return true, nil
	}
	fmt.Fprintf(w, "benchjson: %d benchmark(s) within tolerance of %s\n", len(rows), oldPath)
	return false, nil
}

// readReport loads a benchjson-produced JSON report.
func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in report", path)
	}
	return rep, nil
}
