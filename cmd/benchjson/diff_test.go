package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// mkReport builds a report from (name, ns/op, allocs/op) triples, all at
// procs=8.
func mkReport(rows ...[3]any) *Report {
	rep := &Report{}
	for _, r := range rows {
		rep.Benchmarks = append(rep.Benchmarks, Benchmark{
			Name: r[0].(string), Procs: 8, Iterations: 100,
			Metrics: map[string]float64{
				"ns/op":     r[1].(float64),
				"allocs/op": r[2].(float64),
			},
		})
	}
	return rep
}

func TestDiffWithinTolerance(t *testing.T) {
	base := mkReport([3]any{"A", 100.0, 0.0}, [3]any{"B", 1000.0, 2.0})
	head := mkReport([3]any{"A", 110.0, 0.0}, [3]any{"B", 900.0, 2.0})
	rows, added := Diff(base, head, 15)
	if len(rows) != 2 || len(added) != 0 {
		t.Fatalf("rows=%d added=%d", len(rows), len(added))
	}
	for _, r := range rows {
		if r.Reason != "" {
			t.Fatalf("%s flagged: %s", r.Name, r.Reason)
		}
	}
	if rows[0].DeltaPct < 9.9 || rows[0].DeltaPct > 10.1 {
		t.Fatalf("A delta = %.2f%%, want ~+10%%", rows[0].DeltaPct)
	}
}

func TestDiffNsOpRegression(t *testing.T) {
	base := mkReport([3]any{"A", 100000.0, 0.0})
	head := mkReport([3]any{"A", 120000.0, 0.0})
	rows, _ := Diff(base, head, 15)
	if rows[0].Reason == "" {
		t.Fatal("+20% ns/op not flagged at 15% tolerance")
	}
	// The same delta passes at a looser tolerance.
	rows, _ = Diff(base, head, 25)
	if rows[0].Reason != "" {
		t.Fatalf("+20%% flagged at 25%% tolerance: %s", rows[0].Reason)
	}
}

// TestDiffSubMicrosecondNsNotGated: below nsGateFloorNs the percentage
// gate does not apply — timer jitter on a 70ns loop swamps any usable
// tolerance — but the allocs/op gate still does.
func TestDiffSubMicrosecondNsNotGated(t *testing.T) {
	rows, _ := Diff(mkReport([3]any{"A", 70.0, 0.0}), mkReport([3]any{"A", 95.0, 0.0}), 15)
	if rows[0].Reason != "" {
		t.Fatalf("+36%% on a 70ns bench flagged: %q", rows[0].Reason)
	}
	rows, _ = Diff(mkReport([3]any{"A", 70.0, 0.0}), mkReport([3]any{"A", 95.0, 1.0}), 15)
	if !strings.Contains(rows[0].Reason, "allocs/op") {
		t.Fatalf("alloc regression on a sub-µs bench not flagged: %q", rows[0].Reason)
	}
	// At and above the floor the percentage gate is live.
	rows, _ = Diff(mkReport([3]any{"A", 1000.0, 0.0}), mkReport([3]any{"A", 1300.0, 0.0}), 15)
	if rows[0].Reason == "" {
		t.Fatal("+30% at 1µs/op not flagged")
	}
}

// TestDiffAllocRegressionHasNoTolerance: allocs/op gates exactly — one
// new allocation per op is a regression even when ns/op improved.
func TestDiffAllocRegressionHasNoTolerance(t *testing.T) {
	base := mkReport([3]any{"A", 100.0, 0.0})
	head := mkReport([3]any{"A", 50.0, 1.0})
	rows, _ := Diff(base, head, 15)
	if !strings.Contains(rows[0].Reason, "allocs/op") {
		t.Fatalf("alloc regression not flagged: %q", rows[0].Reason)
	}
	// Fewer allocations is an improvement, not a regression.
	rows, _ = Diff(mkReport([3]any{"A", 100.0, 3.0}), mkReport([3]any{"A", 100.0, 1.0}), 15)
	if rows[0].Reason != "" {
		t.Fatalf("alloc improvement flagged: %q", rows[0].Reason)
	}
	// A baseline that already allocates gets 1% slack for b.N-dependent
	// amortization flap — but nothing more.
	rows, _ = Diff(mkReport([3]any{"A", 100.0, 4233.0}), mkReport([3]any{"A", 100.0, 4235.0}), 15)
	if rows[0].Reason != "" {
		t.Fatalf("+2 of 4233 allocs flagged: %q", rows[0].Reason)
	}
	rows, _ = Diff(mkReport([3]any{"A", 100.0, 4233.0}), mkReport([3]any{"A", 100.0, 4500.0}), 15)
	if !strings.Contains(rows[0].Reason, "allocs/op") {
		t.Fatalf("+6%% allocs not flagged: %q", rows[0].Reason)
	}
}

// TestDiffMissingAndAdded: a baseline benchmark missing from the new
// report is a regression (a gated bench cannot silently disappear); a
// brand-new benchmark is reported but not gated.
func TestDiffMissingAndAdded(t *testing.T) {
	base := mkReport([3]any{"Gone", 100.0, 0.0})
	head := mkReport([3]any{"Fresh", 100.0, 0.0})
	rows, added := Diff(base, head, 15)
	if !strings.Contains(rows[0].Reason, "missing") {
		t.Fatalf("missing bench not flagged: %q", rows[0].Reason)
	}
	if len(added) != 1 || added[0] != "Fresh" {
		t.Fatalf("added = %v", added)
	}
}

// TestDiffProcsKeyed: the same name at a different GOMAXPROCS is a
// different measurement, not a match.
func TestDiffProcsKeyed(t *testing.T) {
	base := mkReport([3]any{"A", 100.0, 0.0})
	head := mkReport([3]any{"A", 100.0, 0.0})
	head.Benchmarks[0].Procs = 4
	rows, added := Diff(base, head, 15)
	if !strings.Contains(rows[0].Reason, "missing") || len(added) != 1 {
		t.Fatalf("procs mismatch treated as a match: rows=%+v added=%v", rows, added)
	}
}

// TestCollapseBest: a -count=3 suite folds to one entry per benchmark
// with each metric's minimum, in first-appearance order.
func TestCollapseBest(t *testing.T) {
	rep := mkReport(
		[3]any{"A", 120.0, 1.0},
		[3]any{"B", 50.0, 0.0},
		[3]any{"A", 100.0, 2.0},
		[3]any{"A", 110.0, 1.0},
		[3]any{"B", 55.0, 0.0},
	)
	rep.Benchmarks[2].Iterations = 500
	got := CollapseBest(rep)
	if len(got.Benchmarks) != 2 {
		t.Fatalf("collapsed to %d entries", len(got.Benchmarks))
	}
	a := got.Benchmarks[0]
	if a.Name != "A" || a.Metrics["ns/op"] != 100 || a.Metrics["allocs/op"] != 1 || a.Iterations != 500 {
		t.Fatalf("A = %+v", a)
	}
	if b := got.Benchmarks[1]; b.Name != "B" || b.Metrics["ns/op"] != 50 {
		t.Fatalf("B = %+v", b)
	}
	// The input report is untouched (the collapse copies).
	if rep.Benchmarks[0].Metrics["ns/op"] != 120 {
		t.Fatal("CollapseBest mutated its input")
	}
}

// TestCollapseBestKeepsProcsDistinct: the same name at different
// GOMAXPROCS stays two entries.
func TestCollapseBestKeepsProcsDistinct(t *testing.T) {
	rep := mkReport([3]any{"A", 100.0, 0.0}, [3]any{"A", 90.0, 0.0})
	rep.Benchmarks[1].Procs = 4
	if got := CollapseBest(rep); len(got.Benchmarks) != 2 {
		t.Fatalf("distinct procs collapsed: %+v", got.Benchmarks)
	}
}

func TestRunDiffOutput(t *testing.T) {
	dir := t.TempDir()
	writeReport := func(name string, rep *Report) string {
		path := filepath.Join(dir, name)
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldPath := writeReport("old.json", mkReport([3]any{"A", 100000.0, 0.0}, [3]any{"B", 100000.0, 0.0}))
	newPath := writeReport("new.json", mkReport([3]any{"A", 100000.0, 0.0}, [3]any{"B", 200000.0, 0.0}))
	var out strings.Builder
	regressed, err := runDiff(oldPath, newPath, 15, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatalf("no regression reported; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") || !strings.Contains(out.String(), "1 of 2") {
		t.Fatalf("output:\n%s", out.String())
	}
}
