// Command benchjson converts `go test -bench` text output into a stable
// JSON document, so benchmark runs can be committed (results/bench.json),
// diffed, and consumed by tooling without re-parsing the bench text
// format everywhere.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | benchjson > results/bench.json
//	benchjson -in bench.txt -out results/bench.json
//	benchjson -diff -tolerance 15 results/bench-baseline.json new.json
//
// The output is deterministic for a given input: benchmarks appear in
// input order and metric keys are sorted by encoding/json.
//
// -diff compares two converted reports (`make bench-diff` is the CI
// entry point): it exits 1 when any baseline benchmark got more than
// -tolerance percent slower in ns/op (gated only at baselines of 1µs/op
// and up — sub-µs micro-benches drown in timer jitter and are gated on
// allocations alone), regressed in allocs/op (exactly at a zero-alloc
// baseline, beyond 1% otherwise), or disappeared.
// Benchmarks only present in the new report are listed but never gated. Both sides are collapsed best-of-N first, so
// feeding it `-count=N` suites damps scheduler noise; -best applies the
// same collapse when converting (used for the committed baseline).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark's name without the "Benchmark" prefix and
	// the -P GOMAXPROCS suffix.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (1 when absent).
	Procs int `json:"procs"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value for every "value unit" pair on the
	// line: ns/op, B/op, allocs/op, and any b.ReportMetric custom units.
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the whole converted run.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// benchLine matches "BenchmarkName-8   123   456 ns/op   7 B/op ...".
var benchLine = regexp.MustCompile(`^Benchmark(\S+?)(?:-(\d+))?\s+(\d+)\s+(.+)$`)

func main() {
	inPath := flag.String("in", "", "read bench text from this file instead of stdin")
	outPath := flag.String("out", "", "write JSON to this file instead of stdout")
	diff := flag.Bool("diff", false, "compare two JSON reports: benchjson -diff [-tolerance pct] old.json new.json")
	tolerance := flag.Float64("tolerance", 15, "allowed ns/op growth in percent for -diff, applied at baselines >= 1µs/op (allocs/op gates exactly at a zero-alloc baseline, 1% otherwise)")
	best := flag.Bool("best", false, "collapse repeated runs (-count=N bench output) into one entry per benchmark, keeping each metric's minimum")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -diff needs exactly two report paths (old.json new.json)")
			os.Exit(2)
		}
		if *tolerance < 0 {
			fmt.Fprintf(os.Stderr, "benchjson: -tolerance must be >= 0 (got %g)\n", *tolerance)
			os.Exit(2)
		}
		regressed, err := runDiff(flag.Arg(0), flag.Arg(1), *tolerance, os.Stdout)
		if err != nil {
			log.Fatal(err)
		}
		if regressed {
			os.Exit(1)
		}
		return
	}

	in := io.Reader(os.Stdin)
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	rep, err := Parse(in)
	if err != nil {
		log.Fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		log.Fatal("benchjson: no benchmark lines in input")
	}
	if *best {
		rep = CollapseBest(rep)
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	out = append(out, '\n')
	if *outPath != "" {
		if err := os.WriteFile(*outPath, out, 0o644); err != nil {
			log.Fatal(err)
		}
		return
	}
	os.Stdout.Write(out)
}

// Parse reads `go test -bench` output and collects the header fields and
// every benchmark result line. Unrecognised lines (PASS, ok, coverage)
// are ignored.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if k, v, ok := strings.Cut(line, ": "); ok && !strings.HasPrefix(line, "Benchmark") {
			switch k {
			case "goos":
				rep.Goos = v
			case "goarch":
				rep.Goarch = v
			case "pkg":
				rep.Pkg = v
			case "cpu":
				rep.CPU = v
			}
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		b := Benchmark{Name: m[1], Procs: 1, Metrics: map[string]float64{}}
		if m[2] != "" {
			p, err := strconv.Atoi(m[2])
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad procs suffix in %q", line)
			}
			b.Procs = p
		}
		n, err := strconv.ParseInt(m[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad iteration count in %q", line)
		}
		b.Iterations = n
		fields := strings.Fields(m[4])
		if len(fields)%2 != 0 {
			return nil, fmt.Errorf("benchjson: odd value/unit fields in %q", line)
		}
		for i := 0; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad metric value %q in %q", fields[i], line)
			}
			b.Metrics[fields[i+1]] = v
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}
