package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: iatsim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkLLCAccess-8     	12345678	        95.31 ns/op	       0 B/op	       0 allocs/op
BenchmarkNICPollRx  	       5	    365033 ns/op
BenchmarkFleetRound 	       5	 136997007 ns/op	  34249127 ns/round
BenchmarkTable2DaemonIteration-8   	       6	 180000000 ns/op	       770 stable-us/iter	       900 unstable-us/iter
PASS
ok  	iatsim	12.3s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "iatsim" {
		t.Fatalf("header = %+v", rep)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Fatalf("cpu = %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(rep.Benchmarks))
	}
	llc := rep.Benchmarks[0]
	if llc.Name != "LLCAccess" || llc.Procs != 8 || llc.Iterations != 12345678 {
		t.Fatalf("llc = %+v", llc)
	}
	if llc.Metrics["ns/op"] != 95.31 || llc.Metrics["allocs/op"] != 0 {
		t.Fatalf("llc metrics = %+v", llc.Metrics)
	}
	nic := rep.Benchmarks[1]
	if nic.Name != "NICPollRx" || nic.Procs != 1 {
		t.Fatalf("nic = %+v", nic)
	}
	daemon := rep.Benchmarks[3]
	if daemon.Metrics["stable-us/iter"] != 770 {
		t.Fatalf("custom metric lost: %+v", daemon.Metrics)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkX-8 12 34\n",         // odd value/unit fields
		"BenchmarkX-8 12 nope ns/op\n", // non-numeric value
	} {
		rep, err := Parse(strings.NewReader(bad))
		if err == nil && len(rep.Benchmarks) > 0 {
			t.Errorf("input %q parsed to %+v, want error or skip", bad, rep.Benchmarks)
		}
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	rep, err := Parse(strings.NewReader("PASS\nok  \tiatsim\t1.0s\n--- some test log\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("noise parsed as benchmarks: %+v", rep.Benchmarks)
	}
}
