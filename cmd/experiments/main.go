// Command experiments regenerates every table and figure of the paper's
// evaluation on the simulated platform.
//
// Usage:
//
//	experiments -fig 8                  # one figure
//	experiments -fig 3,4,8,9            # several
//	experiments -tab 1,2                # tables
//	experiments -all                    # everything (quick sweeps)
//	experiments -all -full              # everything at the paper's full sweeps
//	experiments -all -jobs 8            # parallel across 8 workers
//	experiments -all -json out/         # write out/manifest.json for the run
//	experiments -fig 8 -telemetry tel/  # per-job telemetry snapshots into tel/
//
// Sweep points run as independent jobs on a bounded worker pool; rows come
// back in submission order, so the output is identical at any -jobs value.
// Every run prints the same rows/series the paper reports; see
// EXPERIMENTS.md for the recorded paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"iatsim/internal/exp"
	"iatsim/internal/faults"
	"iatsim/internal/harness"
	"iatsim/internal/prof"
)

// validFigs and validTabs are the figure/table selectors this binary knows;
// anything else is rejected up front (a typo used to silently run nothing).
var validFigs = []string{"3", "4", "8", "9", "10", "11", "12", "13", "14", "15"}
var validTabs = []string{"1", "2"}

func main() {
	figs := flag.String("fig", "", "comma-separated figure numbers to run ("+strings.Join(validFigs, ",")+")")
	tabs := flag.String("tab", "", "comma-separated table numbers to print ("+strings.Join(validTabs, ",")+")")
	all := flag.Bool("all", false, "run every table and figure")
	full := flag.Bool("full", false, "use the paper's full sweeps (slower) instead of the quick defaults")
	ablations := flag.Bool("ablations", false, "also run the beyond-the-paper ablations (mechanisms, growth policy, future-DDIO, MBA)")
	csvDir := flag.String("csv", "", "also write each experiment's rows as CSV into this directory")
	jsonDir := flag.String("json", "", "write a per-run manifest (timings, failures) as JSON into this directory")
	telDir := flag.String("telemetry", "", "write a per-job telemetry snapshot (<dir>/<job>.{json,csv,trace.json}) into this directory")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "number of sweep points to simulate concurrently")
	seed := flag.Int64("seed", 0, "base RNG seed; 0 selects the canonical per-point seeds used by results/")
	retries := flag.Int("retries", 0, "re-run a crashed sweep point up to this many times before reporting it failed")
	chaos := flag.String("chaos", "", "run the stability-under-faults experiment with this fault profile ("+strings.Join(faults.ProfileNames(), ",")+" or kind=rate,... spec)")
	fleetGrid := flag.Bool("fleet", false, "run the fleet rollout grid (strategies x canary-cohort fault storm)")
	tournament := flag.Bool("policytournament", false, "run the policy tournament (allocation policies x workloads x fault profiles, ranked)")
	var pf prof.Opts
	pf.RegisterFlags(flag.CommandLine)
	flag.Parse()

	want, selectors, err := parseSelectors(*figs, *tabs, *all, *ablations)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}
	if *chaos != "" {
		// Validate the profile up front: a typo must fail fast, not after
		// an hour of figure regeneration. Chaos is deliberately NOT part
		// of -all — committed results stay fault-free.
		if _, err := faults.ProfileByName(*chaos); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -chaos: %v\n", err)
			os.Exit(2)
		}
		want["chaos"] = true
		selectors = append(selectors, "chaos")
		sort.Strings(selectors)
	}
	if *fleetGrid {
		// Like chaos, the fleet grid is opt-in rather than part of -all.
		want["fleet"] = true
		selectors = append(selectors, "fleet")
		sort.Strings(selectors)
	}
	if *tournament {
		// Opt-in like chaos and fleet: committed results stay policy-free.
		want["tournament"] = true
		selectors = append(selectors, "tournament")
		sort.Strings(selectors)
	}
	if len(want) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if *jobs < 1 {
		fmt.Fprintf(os.Stderr, "experiments: -jobs must be >= 1 (got %d)\n", *jobs)
		os.Exit(2)
	}
	// Profiling is host-side observability, outside the determinism
	// guarantee: rows and CSVs are byte-identical with it on or off. A bad
	// profile path or listen address is a usage error (exit 2), caught
	// before any sweep runs.
	profiler, err := pf.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}
	if profiler.Addr != "" {
		fmt.Fprintf(os.Stderr, "experiments: pprof listening on http://%s/debug/pprof/\n", profiler.Addr)
	}

	// The chaos profile (and the seed its fault schedules derive from) is
	// recorded for every run — "off" included — so any CSV is reproducible
	// from its manifest alone.
	var chaosSeed int64
	if *chaos != "" {
		chaosSeed = *seed // per-point schedules derive from the job seeds
	}
	manifest := harness.NewManifest(harness.RunOptions{
		Jobs: *jobs, Seed: *seed, Retries: *retries,
		Selectors: selectors, Full: *full, Chaos: *chaos, ChaosSeed: chaosSeed,
	})
	exp.SetExec(exp.Exec{
		Jobs: *jobs, Seed: *seed, Retries: *retries,
		Progress: os.Stderr, Manifest: manifest,
		TelemetryDir: *telDir,
	})

	// run executes one experiment; fn returns the rows to (optionally)
	// persist as CSV.
	run := func(name string, fn func() any) {
		if !want[name] {
			return
		}
		start := time.Now()
		rows := fn()
		if *csvDir != "" && rows != nil {
			if err := exp.SaveRowsCSV(*csvDir, name, rows); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: csv %s: %v\n", name, err)
			}
		}
		fmt.Printf("  [%s done in %.1fs]\n\n", name, time.Since(start).Seconds())
	}

	w := os.Stdout
	run("tab1", func() any { exp.PrintTable1(w); return nil })
	run("tab2", func() any { exp.PrintTable2(w); return nil })
	run("fig3", func() any { return exp.RunFig3(w, fig3Opts(*full)) })
	run("fig4", func() any { return exp.RunFig4(w, fig4Opts(*full)) })
	run("fig8", func() any { return exp.RunFig8(w, fig8Opts(*full)) })
	run("fig9", func() any { return exp.RunFig9(w, fig9Opts(*full)) })
	run("fig10", func() any { return exp.RunFig10(w, fig10Opts(*full)) })
	run("fig11", func() any { return exp.RunFig11(w, fig10Opts(*full)) })
	run("fig12", func() any { return exp.RunFig12(w, fig12Opts(*full)) })
	run("fig13", func() any { return exp.RunFig13(w, fig13Opts(*full)) })
	run("fig14", func() any { return exp.RunFig14(w, fig13Opts(*full)) })
	run("fig15", func() any { return exp.RunFig15(w, fig15Opts(*full)) })
	run("abl-mech", func() any { return exp.RunAblationMechanisms(w, 100) })
	run("abl-growth", func() any { return exp.RunAblationGrowth(w, 100) })
	run("abl-ddioext", func() any { return exp.RunAblationDDIOExt(w, 100) })
	run("abl-mba", func() any { return exp.RunAblationMBA(w, 100) })
	run("abl-policy", func() any { return exp.RunAblationReplacement(w, 100) })
	run("abl-storage", func() any { return exp.RunAblationStorage(w, 100) })
	run("abl-remote", func() any { return exp.RunAblationRemoteSocket(w, 100) })
	run("abl-sens", func() any { return exp.RunSensitivity(w, 100) })
	run("abl-resq", func() any { return exp.RunAblationResQ(w, 100) })
	run("chaos", func() any { return exp.RunChaos(w, chaosOpts(*full, *chaos)) })
	run("fleet", func() any { return exp.RunFleetGrid(w, fleetOpts(*full, *chaos, *seed)) })
	run("tournament", func() any { return exp.RunPolicyTournament(w, tournamentOpts(*full)) })

	// Stop explicitly (not via defer): the failure paths below leave
	// through os.Exit, which would skip the CPU-profile flush.
	if err := profiler.Stop(); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: profiling: %v\n", err)
		os.Exit(1)
	}

	manifest.Finish()
	if *jsonDir != "" {
		path, err := manifest.Write(*jsonDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: manifest: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "manifest: %s\n", path)
	}
	if manifest.Failures > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d of %d jobs failed\n", manifest.Failures, manifest.TotalJobs)
		os.Exit(1)
	}
}

// parseSelectors validates -fig/-tab and expands -all/-ablations into the
// set of experiments to run, plus the normalised selector list recorded in
// the manifest. Unknown selectors are an error, not a silent no-op.
func parseSelectors(figs, tabs string, all, ablations bool) (map[string]bool, []string, error) {
	known := func(v string, valid []string) bool {
		for _, k := range valid {
			if v == k {
				return true
			}
		}
		return false
	}
	want := map[string]bool{}
	for _, f := range strings.Split(figs, ",") {
		if f = strings.TrimSpace(f); f == "" {
			continue
		}
		if !known(f, validFigs) {
			return nil, nil, fmt.Errorf("unknown figure %q (valid: %s)", f, strings.Join(validFigs, ", "))
		}
		want["fig"+f] = true
	}
	for _, t := range strings.Split(tabs, ",") {
		if t = strings.TrimSpace(t); t == "" {
			continue
		}
		if !known(t, validTabs) {
			return nil, nil, fmt.Errorf("unknown table %q (valid: %s)", t, strings.Join(validTabs, ", "))
		}
		want["tab"+t] = true
	}
	if all {
		for _, t := range validTabs {
			want["tab"+t] = true
		}
		for _, f := range validFigs {
			want["fig"+f] = true
		}
	}
	if ablations {
		for _, k := range []string{"abl-mech", "abl-growth", "abl-ddioext", "abl-mba", "abl-policy", "abl-storage", "abl-remote", "abl-sens", "abl-resq"} {
			want[k] = true
		}
	}
	selectors := make([]string, 0, len(want))
	for k := range want {
		selectors = append(selectors, k)
	}
	sort.Strings(selectors)
	return want, selectors, nil
}

func fig3Opts(full bool) exp.Fig3Opts {
	o := exp.DefaultFig3Opts()
	if !full {
		o.Rings = []int{64, 256, 1024}
	}
	return o
}

func fig4Opts(full bool) exp.Fig4Opts {
	o := exp.DefaultFig4Opts()
	if !full {
		o.WorkingSets = []int{4, 8, 16}
	}
	return o
}

func fig8Opts(full bool) exp.Fig8Opts {
	o := exp.DefaultFig8Opts()
	if !full {
		o.Sizes = []int{64, 512, 1500}
	}
	return o
}

func fig9Opts(full bool) exp.Fig9Opts {
	o := exp.DefaultFig9Opts()
	if !full {
		o.FlowSteps = []int{1, 1000, 100000, 1000000}
	}
	return o
}

func fig10Opts(full bool) exp.Fig10Opts {
	o := exp.DefaultFig10Opts()
	if full {
		o.Sizes = []int{64, 256, 512, 1024, 1500}
	} else {
		o.Sizes = []int{1500}
	}
	return o
}

func fig12Opts(full bool) exp.Fig12Opts {
	o := exp.DefaultFig12Opts()
	if full {
		o.Apps = exp.AllFig12Apps()
		o.Corners = exp.Placements()
	}
	return o
}

func fig13Opts(full bool) exp.Fig12Opts {
	o := exp.DefaultFig12Opts()
	if !full {
		o.Apps = []string{"quick"} // A and C only
		o.Nets = []string{"redis"}
	}
	return o
}

func chaosOpts(full bool, profile string) exp.ChaosOpts {
	o := exp.DefaultChaosOpts()
	o.Profile = profile
	if full {
		o.Scales = []float64{0, 0.5, 1, 2, 4, 8}
	}
	return o
}

func fleetOpts(full bool, chaos string, seed int64) exp.FleetOpts {
	o := exp.DefaultFleetOpts()
	o.Seed = seed
	if chaos != "" {
		o.Storm = chaos // the grid storms its canary cohort with -chaos
	}
	if full {
		o.Hosts = 32
	}
	return o
}

func tournamentOpts(full bool) exp.TournamentOpts {
	o := exp.DefaultTournamentOpts()
	if !full {
		o.Profiles = []string{"off", "default"}
	}
	return o
}

func fig15Opts(full bool) exp.Fig15Opts {
	o := exp.DefaultFig15Opts()
	if !full {
		o.TenantCounts = []int{1, 4, 8, 17}
		o.Iterations = 40
	}
	return o
}
