// Command experiments regenerates every table and figure of the paper's
// evaluation on the simulated platform.
//
// Usage:
//
//	experiments -fig 8          # one figure
//	experiments -fig 3,4,8,9    # several
//	experiments -tab 1,2        # tables
//	experiments -all            # everything (quick sweeps)
//	experiments -all -full      # everything at the paper's full sweeps
//
// Every run prints the same rows/series the paper reports; see
// EXPERIMENTS.md for the recorded paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"iatsim/internal/exp"
)

func main() {
	figs := flag.String("fig", "", "comma-separated figure numbers to run (3,4,8,9,10,11,12,13,14,15)")
	tabs := flag.String("tab", "", "comma-separated table numbers to print (1,2)")
	all := flag.Bool("all", false, "run every table and figure")
	full := flag.Bool("full", false, "use the paper's full sweeps (slower) instead of the quick defaults")
	ablations := flag.Bool("ablations", false, "also run the beyond-the-paper ablations (mechanisms, growth policy, future-DDIO, MBA)")
	csvDir := flag.String("csv", "", "also write each experiment's rows as CSV into this directory")
	flag.Parse()

	want := map[string]bool{}
	for _, f := range strings.Split(*figs, ",") {
		if f = strings.TrimSpace(f); f != "" {
			want["fig"+f] = true
		}
	}
	for _, t := range strings.Split(*tabs, ",") {
		if t = strings.TrimSpace(t); t != "" {
			want["tab"+t] = true
		}
	}
	if *all {
		for _, k := range []string{"tab1", "tab2", "fig3", "fig4", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15"} {
			want[k] = true
		}
	}
	if *ablations {
		for _, k := range []string{"abl-mech", "abl-growth", "abl-ddioext", "abl-mba", "abl-policy", "abl-storage", "abl-remote", "abl-sens", "abl-resq"} {
			want[k] = true
		}
	}
	if len(want) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	// run executes one experiment; fn returns the rows to (optionally)
	// persist as CSV.
	run := func(name string, fn func() any) {
		if !want[name] {
			return
		}
		start := time.Now()
		rows := fn()
		if *csvDir != "" && rows != nil {
			if err := exp.SaveRowsCSV(*csvDir, name, rows); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: csv %s: %v\n", name, err)
			}
		}
		fmt.Printf("  [%s done in %.1fs]\n\n", name, time.Since(start).Seconds())
	}

	w := os.Stdout
	run("tab1", func() any { exp.PrintTable1(w); return nil })
	run("tab2", func() any { exp.PrintTable2(w); return nil })
	run("fig3", func() any { return exp.RunFig3(w, fig3Opts(*full)) })
	run("fig4", func() any { return exp.RunFig4(w, fig4Opts(*full)) })
	run("fig8", func() any { return exp.RunFig8(w, fig8Opts(*full)) })
	run("fig9", func() any { return exp.RunFig9(w, fig9Opts(*full)) })
	run("fig10", func() any { return exp.RunFig10(w, fig10Opts(*full)) })
	run("fig11", func() any { return exp.RunFig11(w, fig10Opts(*full)) })
	run("fig12", func() any { return exp.RunFig12(w, fig12Opts(*full)) })
	run("fig13", func() any { return exp.RunFig13(w, fig13Opts(*full)) })
	run("fig14", func() any { return exp.RunFig14(w, fig13Opts(*full)) })
	run("fig15", func() any { return exp.RunFig15(w, fig15Opts(*full)) })
	run("abl-mech", func() any { return exp.RunAblationMechanisms(w, 100) })
	run("abl-growth", func() any { return exp.RunAblationGrowth(w, 100) })
	run("abl-ddioext", func() any { return exp.RunAblationDDIOExt(w, 100) })
	run("abl-mba", func() any { return exp.RunAblationMBA(w, 100) })
	run("abl-policy", func() any { return exp.RunAblationReplacement(w, 100) })
	run("abl-storage", func() any { return exp.RunAblationStorage(w, 100) })
	run("abl-remote", func() any { return exp.RunAblationRemoteSocket(w, 100) })
	run("abl-sens", func() any { return exp.RunSensitivity(w, 100) })
	run("abl-resq", func() any { return exp.RunAblationResQ(w, 100) })
}

func fig3Opts(full bool) exp.Fig3Opts {
	o := exp.DefaultFig3Opts()
	if !full {
		o.Rings = []int{64, 256, 1024}
	}
	return o
}

func fig4Opts(full bool) exp.Fig4Opts {
	o := exp.DefaultFig4Opts()
	if !full {
		o.WorkingSets = []int{4, 8, 16}
	}
	return o
}

func fig8Opts(full bool) exp.Fig8Opts {
	o := exp.DefaultFig8Opts()
	if !full {
		o.Sizes = []int{64, 512, 1500}
	}
	return o
}

func fig9Opts(full bool) exp.Fig9Opts {
	o := exp.DefaultFig9Opts()
	if !full {
		o.FlowSteps = []int{1, 1000, 100000, 1000000}
	}
	return o
}

func fig10Opts(full bool) exp.Fig10Opts {
	o := exp.DefaultFig10Opts()
	if full {
		o.Sizes = []int{64, 256, 512, 1024, 1500}
	} else {
		o.Sizes = []int{1500}
	}
	return o
}

func fig12Opts(full bool) exp.Fig12Opts {
	o := exp.DefaultFig12Opts()
	if full {
		o.Apps = exp.AllFig12Apps()
		o.Corners = exp.Placements()
	}
	return o
}

func fig13Opts(full bool) exp.Fig12Opts {
	o := exp.DefaultFig12Opts()
	if !full {
		o.Apps = []string{"quick"} // A and C only
		o.Nets = []string{"redis"}
	}
	return o
}

func fig15Opts(full bool) exp.Fig15Opts {
	o := exp.DefaultFig15Opts()
	if !full {
		o.TenantCounts = []int{1, 4, 8, 17}
		o.Iterations = 40
	}
	return o
}
