package main

import (
	"reflect"
	"testing"
)

// TestParseSelectors pins the CLI selector contract: unknown selectors
// are errors (exit 2 in main), -all expands to every figure and table,
// and the normalised selector list recorded in the manifest is sorted.
func TestParseSelectors(t *testing.T) {
	if _, _, err := parseSelectors("8,99", "", false, false); err == nil {
		t.Fatal("unknown figure 99 should be rejected")
	}
	if _, _, err := parseSelectors("", "7", false, false); err == nil {
		t.Fatal("unknown table 7 should be rejected")
	}

	want, selectors, err := parseSelectors("8", "1", false, false)
	if err != nil {
		t.Fatal(err)
	}
	if !want["fig8"] || !want["tab1"] || len(want) != 2 {
		t.Fatalf("want = %v", want)
	}
	if !reflect.DeepEqual(selectors, []string{"fig8", "tab1"}) {
		t.Fatalf("selectors = %v, want sorted [fig8 tab1]", selectors)
	}

	all, _, err := parseSelectors("", "", true, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(validFigs)+len(validTabs) {
		t.Fatalf("-all expanded to %d selectors, want %d", len(all), len(validFigs)+len(validTabs))
	}
}
