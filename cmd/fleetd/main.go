// Command fleetd is the fleet simulator's CLI: N simulated hosts — each
// a full platform running the paper's Leaky DMA scenario with its own
// IAT daemon, seed, workload mix and fault profile — stepped in rounds
// by a bounded worker pool under a central controller that aggregates
// per-host health into fleet metrics and rolls a tighter DDIO way budget
// out via the chosen strategy, rolling back automatically when the
// canary cohort regresses against the control cohort.
//
// Usage:
//
//	fleetd -hosts 32 -rollout canary                 # clean canary rollout
//	fleetd -hosts 32 -rollout canary -chaos heavy    # storm the canary cohort
//	fleetd -hosts 32 -rollout bigbang -chaos heavy   # what no canary costs you
//	fleetd -hosts 32 -jobs 8 -csv out/               # out/fleet.csv (identical at any -jobs)
//	fleetd -telemetry tel/ -json out/                # snapshots + run manifest
//
// Hosts are stepped one job per host per round; aggregate rows, CSV and
// telemetry snapshots are byte-identical at any -jobs value.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"iatsim/internal/exp"
	"iatsim/internal/faults"
	"iatsim/internal/fleet"
	"iatsim/internal/harness"
	"iatsim/internal/policy"
	"iatsim/internal/prof"
	"iatsim/internal/telemetry"
)

// usageError marks a bad invocation: main reports it on stderr and exits
// 2, like flag.ErrHelp, instead of the exit-1 runtime-failure path.
type usageError struct{ msg string }

func (e usageError) Error() string { return e.msg }

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		var ue usageError
		if errors.As(err, &ue) {
			fmt.Fprintf(os.Stderr, "fleetd: %v\n", err)
			os.Exit(2)
		}
		if err == flag.ErrHelp {
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

// run is the testable body of the CLI. Output on stdout is deterministic
// for a given flag set.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fleetd", flag.ContinueOnError)
	hosts := fs.Int("hosts", 8, "number of simulated hosts")
	topology := fs.String("topology", "striped", "workload-mix assignment across hosts ("+strings.Join(exp.TopologyNames(), ",")+")")
	rollout := fs.String("rollout", "canary", "policy rollout strategy ("+strings.Join(fleet.StrategyNames(), ",")+")")
	rounds := fs.Int("rounds", 8, "aggregation rounds to run")
	roundSecs := fs.Float64("round", 0.3, "simulated seconds per round per host")
	interval := fs.Float64("interval", 0.1, "IAT polling interval in simulated seconds")
	scale := fs.Float64("scale", 800, "simulation scale factor")
	jobs := fs.Int("jobs", runtime.GOMAXPROCS(0), "hosts stepped concurrently (output is identical at any value)")
	seed := fs.Int64("seed", 0, "base seed; per-host seeds and fault schedules derive from it")
	chaos := fs.String("chaos", "", "arm a correlated fault storm on the canary cohort with this profile ("+strings.Join(faults.ProfileNames(), ",")+" or kind=rate,... spec)")
	chaosSeed := fs.Int64("chaos-seed", 1, "seed for the storm's per-host fault schedules")
	ckptEvery := fs.Int("checkpoint-every", 1, "checkpoint each up host's daemon after every Nth round (0 disables; hosts crashed by a storm then cold start)")
	polFlag := fs.String("policy", "", "roll out a decision-engine change to this policy instead of the DDIO-budget tightening ("+strings.Join(policy.SpecNames(), ", ")+")")
	shadowFlag := fs.String("shadow", "", "comma-separated shadow policies every host evaluates counterfactually each tick")
	csvDir := fs.String("csv", "", "write the per-round aggregate rows as <dir>/fleet.csv")
	jsonDir := fs.String("json", "", "write the run manifest as JSON into this directory")
	telDir := fs.String("telemetry", "", "write controller and merged-host telemetry snapshots into this directory")
	var pf prof.Opts
	pf.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Validate every flag before assembling anything: a bad value must
	// fail fast (exit 2), not crash mid-run or complete a long simulation
	// and then fail to write its outputs.
	if *hosts < 1 {
		return usageError{fmt.Sprintf("-hosts must be >= 1 (got %d)", *hosts)}
	}
	if *rounds < 1 {
		return usageError{fmt.Sprintf("-rounds must be >= 1 (got %d)", *rounds)}
	}
	if *roundSecs <= 0 {
		return usageError{fmt.Sprintf("-round must be positive (got %g)", *roundSecs)}
	}
	if *interval <= 0 {
		return usageError{fmt.Sprintf("-interval must be positive (got %g)", *interval)}
	}
	if *scale <= 0 {
		return usageError{fmt.Sprintf("-scale must be positive (got %g)", *scale)}
	}
	if *jobs < 1 {
		return usageError{fmt.Sprintf("-jobs must be >= 1 (got %d)", *jobs)}
	}
	if *ckptEvery < 0 {
		return usageError{fmt.Sprintf("-checkpoint-every must be >= 0 (got %d)", *ckptEvery)}
	}
	valid := false
	for _, t := range exp.TopologyNames() {
		if *topology == t {
			valid = true
		}
	}
	if !valid {
		return usageError{fmt.Sprintf("-topology: unknown topology %q (valid: %s)", *topology, strings.Join(exp.TopologyNames(), ", "))}
	}
	if _, err := fleet.StrategyByName(*rollout); err != nil {
		return usageError{fmt.Sprintf("-rollout: %v", err)}
	}
	if *chaos != "" {
		if _, err := faults.ProfileByName(*chaos); err != nil {
			return usageError{fmt.Sprintf("-chaos: %v", err)}
		}
	}
	if *polFlag != "" {
		if _, err := policy.ParseSpec(*polFlag); err != nil {
			return usageError{fmt.Sprintf("-policy: %v", err)}
		}
	}
	if *shadowFlag != "" {
		if _, err := policy.ParseShadowSpecs(*shadowFlag); err != nil {
			return usageError{fmt.Sprintf("-shadow: %v", err)}
		}
	}
	for _, dir := range []string{*csvDir, *jsonDir, *telDir} {
		if dir != "" {
			if err := ensureWritableDir(dir); err != nil {
				return usageError{err.Error()}
			}
		}
	}
	// Profiling is host-side observability, outside the determinism
	// guarantee: the run's stdout is byte-identical with it on or off.
	profiler, err := pf.Start()
	if err != nil {
		return usageError{fmt.Sprintf("profiling: %v", err)}
	}
	defer func() {
		if err := profiler.Stop(); err != nil {
			log.Printf("fleetd: profiling: %v", err)
		}
	}()
	if profiler.Addr != "" {
		fmt.Fprintf(os.Stderr, "fleetd: pprof listening on http://%s/debug/pprof/\n", profiler.Addr)
	}

	// The storm profile and its seed are recorded for every run — "off"
	// included — so any CSV is reproducible from its manifest alone.
	var stormSeed int64
	if *chaos != "" {
		stormSeed = *chaosSeed
	}
	manifest := harness.NewManifest(harness.RunOptions{
		Jobs: *jobs, Seed: *seed,
		Selectors: []string{"fleet"},
		Chaos:     *chaos, ChaosSeed: stormSeed,
		CheckpointEvery: *ckptEvery,
	})
	exp.SetExec(exp.Exec{Jobs: *jobs, Seed: *seed, Manifest: manifest})

	// FleetOpts treats 0 as "use the default cadence", so the flag's
	// explicit 0 (checkpointing off) maps to the negative sentinel.
	every := *ckptEvery
	if every == 0 {
		every = -1
	}
	tel := telemetry.NewRegistry()
	rep, fleetHosts, err := exp.RunFleet(stdout, exp.FleetOpts{
		Hosts: *hosts, Topology: *topology, Rollout: *rollout,
		Storm: *chaos, StormSeed: stormSeed,
		Policy: *polFlag, Shadow: *shadowFlag,
		Scale: *scale, Rounds: *rounds,
		RoundNS: *roundSecs * 1e9, IntervalNS: *interval * 1e9,
		Seed: *seed, Tel: tel,
		CheckpointEvery: every,
	})
	if err != nil {
		return err
	}
	last := rep.Rows[len(rep.Rows)-1]
	fmt.Fprintf(stdout, "fleetd: done; %d hosts, %d rounds; final phase %s, %d host(s) on new policy, rolled back: %v\n",
		*hosts, *rounds, last.Phase, rep.FinalOnNew, rep.RolledBack)
	if *shadowFlag != "" {
		// Fold every host's shadow divergence into one fleet-wide line
		// per shadow policy. Summaries() orders shadows by spec, the same
		// on every host, so the fold is index-wise over hosts in ID order.
		var agg []policy.ShadowSummary
		for _, h := range fleetHosts {
			ev := h.Daemon.Shadows()
			if ev == nil {
				continue
			}
			for i, s := range ev.Summaries() {
				if i == len(agg) {
					agg = append(agg, policy.ShadowSummary{Name: s.Name})
				}
				agg[i].Ticks += s.Ticks
				agg[i].Agreements += s.Agreements
				agg[i].WouldGrowDDIO += s.WouldGrowDDIO
				agg[i].WouldShrinkDDIO += s.WouldShrinkDDIO
				agg[i].WouldGrowTenant += s.WouldGrowTenant
				agg[i].WouldShrinkTenant += s.WouldShrinkTenant
				agg[i].HammingTotal += s.HammingTotal
			}
		}
		for _, s := range agg {
			fmt.Fprintf(stdout, "fleetd: shadow %s: ticks=%d agree=%.3f ddio+%d/-%d tenant+%d/-%d hamming=%.2f\n",
				s.Name, s.Ticks, s.AgreeRate(), s.WouldGrowDDIO, s.WouldShrinkDDIO,
				s.WouldGrowTenant, s.WouldShrinkTenant, s.MeanHamming())
		}
	}

	if *csvDir != "" {
		if err := exp.SaveRowsCSV(*csvDir, "fleet", rep.Rows); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "fleetd: rows written to %s\n", filepath.Join(*csvDir, "fleet.csv"))
	}
	if *telDir != "" {
		now := fleetHosts[len(fleetHosts)-1].P.NowNS()
		if err := tel.Snapshot(now).WriteFiles(filepath.Join(*telDir, "controller")); err != nil {
			return err
		}
		merged, err := exp.MergeFleetTelemetry(fleetHosts)
		if err != nil {
			return err
		}
		if err := merged.WriteFiles(filepath.Join(*telDir, "hosts")); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "fleetd: telemetry snapshots written to %s/{controller,hosts}.{json,csv,trace.json}\n", *telDir)
	}
	manifest.Finish()
	if *jsonDir != "" {
		path, err := manifest.Write(*jsonDir)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "fleetd: manifest written to %s\n", path)
	}
	if manifest.Failures > 0 {
		return fmt.Errorf("fleetd: %d of %d step jobs failed", manifest.Failures, manifest.TotalJobs)
	}
	return nil
}

// ensureWritableDir creates dir if needed and probes that files can
// actually be created in it, so a typo'd or read-only output target is
// caught before the simulation runs.
func ensureWritableDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	probe, err := os.CreateTemp(dir, ".fleetd-probe-*")
	if err != nil {
		return fmt.Errorf("directory %s is not writable: %w", dir, err)
	}
	name := probe.Name()
	probe.Close()
	return os.Remove(name)
}
