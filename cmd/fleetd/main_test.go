package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"iatsim/internal/harness"
	"iatsim/internal/telemetry"
)

// smokeArgs is a fleet small and time-compressed enough for a unit test.
func smokeArgs(extra ...string) []string {
	args := []string{
		"-hosts", "4", "-rounds", "4",
		"-round", "0.2", "-interval", "0.05", "-scale", "3200",
	}
	return append(args, extra...)
}

// TestFleetdDeterministicAcrossJobs runs the same fleet at -jobs 1 and
// -jobs 4 and requires byte-identical stdout, aggregate CSV and telemetry
// snapshots — the binary-level form of the fleet determinism contract.
func TestFleetdDeterministicAcrossJobs(t *testing.T) {
	run1 := runFleetd(t, "1")
	run4 := runFleetd(t, "4")
	for name, pair := range map[string][2]string{
		"stdout":     {run1.stdout, run4.stdout},
		"fleet.csv":  {run1.csv, run4.csv},
		"controller": {run1.controller, run4.controller},
		"hosts":      {run1.hosts, run4.hosts},
	} {
		if pair[0] != pair[1] {
			t.Errorf("%s differs between -jobs 1 and -jobs 4:\n--- jobs=1\n%s\n--- jobs=4\n%s", name, pair[0], pair[1])
		}
	}
	if !strings.Contains(run1.stdout, "fleetd: done;") {
		t.Fatalf("run did not complete:\n%s", run1.stdout)
	}
}

type fleetdRun struct {
	stdout, csv, controller, hosts string
}

func runFleetd(t *testing.T, jobs string) fleetdRun {
	t.Helper()
	dir := t.TempDir()
	var out bytes.Buffer
	err := run(smokeArgs(
		"-jobs", jobs, "-chaos", "default",
		"-csv", dir, "-telemetry", dir,
	), &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	read := func(name string) string {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	return fleetdRun{
		// The output paths embed the per-test temp dir; normalise them so
		// the rest of stdout can be compared byte-for-byte.
		stdout:     strings.ReplaceAll(out.String(), dir, "DIR"),
		csv:        read("fleet.csv"),
		controller: read("controller.json"),
		hosts:      read("hosts.json"),
	}
}

// TestTelemetrySnapshotsValidate checks the controller and merged-host
// snapshots parse and self-validate.
func TestTelemetrySnapshotsValidate(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run(smokeArgs("-telemetry", dir), &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	for _, name := range []string{"controller.json", "hosts.json"} {
		snap, err := telemetry.ReadSnapshotFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := snap.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if len(snap.Metrics) == 0 {
			t.Errorf("%s: no metrics", name)
		}
	}
}

// TestManifestRecordsChaos checks the run manifest records the storm
// profile and seed for every run — "off" when no storm is armed.
func TestManifestRecordsChaos(t *testing.T) {
	readManifest := func(extra ...string) *harness.Manifest {
		t.Helper()
		dir := t.TempDir()
		var out bytes.Buffer
		if err := run(smokeArgs(append(extra, "-json", dir)...), &out); err != nil {
			t.Fatalf("run: %v\noutput:\n%s", err, out.String())
		}
		b, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
		if err != nil {
			t.Fatal(err)
		}
		m := new(harness.Manifest)
		if err := json.Unmarshal(b, m); err != nil {
			t.Fatal(err)
		}
		return m
	}
	m := readManifest()
	if m.Options.Chaos != "off" || m.Options.ChaosSeed != 0 {
		t.Errorf("storm-free manifest records chaos=%q seed=%d, want off/0", m.Options.Chaos, m.Options.ChaosSeed)
	}
	if m.TotalJobs != 16 { // 4 hosts x 4 rounds
		t.Errorf("TotalJobs = %d, want 16", m.TotalJobs)
	}
	m = readManifest("-chaos", "heavy", "-chaos-seed", "7")
	if m.Options.Chaos != "heavy" || m.Options.ChaosSeed != 7 {
		t.Errorf("storm manifest records chaos=%q seed=%d, want heavy/7", m.Options.Chaos, m.Options.ChaosSeed)
	}
	if m.Options.CheckpointEvery != 1 {
		t.Errorf("manifest checkpoint_every = %d, want the default 1", m.Options.CheckpointEvery)
	}
	m = readManifest("-checkpoint-every", "3")
	if m.Options.CheckpointEvery != 3 {
		t.Errorf("manifest checkpoint_every = %d, want 3", m.Options.CheckpointEvery)
	}
}

// TestCheckpointEveryDisabled: -checkpoint-every 0 turns host
// checkpointing off and the run still completes (hosts that die in a
// storm cold start on rejoin).
func TestCheckpointEveryDisabled(t *testing.T) {
	var out bytes.Buffer
	if err := run(smokeArgs("-chaos", "heavy", "-checkpoint-every", "0"), &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "fleetd: done;") {
		t.Fatalf("run did not complete:\n%s", out.String())
	}
}

// TestUsageErrors checks every invalid invocation fails with the exit-2
// usage-error class before any simulation work happens.
func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-hosts", "0"},
		{"-rounds", "0"},
		{"-round", "-1"},
		{"-interval", "0"},
		{"-scale", "-5"},
		{"-jobs", "0"},
		{"-topology", "mesh"},
		{"-rollout", "yolo"},
		{"-chaos", "not-a-profile"},
		{"-policy", "bogus"},
		{"-policy", "static:0"},
		{"-shadow", "iat,iat"},
		{"-shadow", "greedy,bogus"},
		{"-checkpoint-every", "-1"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		err := run(args, &out)
		var ue usageError
		if !errors.As(err, &ue) {
			t.Errorf("args %v: got %v, want usageError", args, err)
		}
	}
}

// TestPolicyRolloutSmoke stages a decision-engine change through the CLI
// with shadows armed: the run completes, names the engine pair in the
// preamble, and reports fleet-wide shadow divergence.
func TestPolicyRolloutSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates several rounds of platform time")
	}
	var out bytes.Buffer
	err := run(smokeArgs("-policy", "static:2", "-shadow", "greedy"), &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "rollout canary (iat -> static:2)") {
		t.Errorf("preamble does not name the engine rollout:\n%s", s)
	}
	if !strings.Contains(s, "fleetd: shadow greedy:") {
		t.Errorf("missing fleet-wide shadow summary:\n%s", s)
	}
	if !strings.Contains(s, "fleetd: done;") {
		t.Fatalf("run did not complete:\n%s", s)
	}
}
