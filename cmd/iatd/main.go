// Command iatd is the IAT daemon of the paper (Sec. V), run against the
// simulated platform: it reads a tenant file, assembles the machine,
// programs the initial CAT allocation, and then runs the
// poll / state-transition / re-allocate loop, printing every decision.
//
// Usage:
//
//	iatd -tenants tenants.conf -duration 20 [-interval 1] [-scale 100]
//
// Tenant file format: see internal/tenantfile. Tenants with a "testpmd"
// workload get a dedicated NIC VF with line-rate traffic.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"iatsim/internal/bridge"
	"iatsim/internal/cache"
	"iatsim/internal/ckpt"
	"iatsim/internal/core"
	"iatsim/internal/faults"
	"iatsim/internal/harness"
	"iatsim/internal/nic"
	"iatsim/internal/nvme"
	"iatsim/internal/pkt"
	"iatsim/internal/policy"
	"iatsim/internal/prof"
	"iatsim/internal/sim"
	"iatsim/internal/telemetry"
	"iatsim/internal/tenantfile"
	"iatsim/internal/tgen"
	"iatsim/internal/trace"
	"iatsim/internal/workload"
)

// usageError marks a bad invocation (invalid flag value, unusable output
// directory): main reports it on stderr and exits 2, like flag.ErrHelp,
// instead of the exit-1 runtime-failure path.
type usageError struct{ msg string }

func (e usageError) Error() string { return e.msg }

// ckptFileName is the checkpoint file -checkpoint maintains inside its
// directory; each write replaces it atomically (write-temp + rename).
const ckptFileName = "iatd.ckpt"

// crashError is the -crash-after panic sentinel: the run dies mid-flight
// exactly as a real daemon crash would — no done line, no summaries, all
// state beyond the last checkpoint lost. main maps it to exit 137 (the
// SIGKILL convention) so scripts can tell a simulated crash from both
// clean exits and usage errors.
type crashError struct{ iter uint64 }

func (e crashError) Error() string {
	return fmt.Sprintf("simulated crash after iteration %d (state since the last checkpoint is lost)", e.iter)
}

// mutingWriter drops writes while muted. A resumed run replays the
// simulation silently up to the checkpoint iteration, then unmutes, so
// its output is byte-identical to an uninterrupted run's tail.
type mutingWriter struct {
	w     io.Writer
	muted bool
}

func (m *mutingWriter) Write(p []byte) (int, error) {
	if m.muted {
		return len(p), nil
	}
	return m.w.Write(p)
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		var ue usageError
		if errors.As(err, &ue) {
			fmt.Fprintf(os.Stderr, "iatd: %v\n", err)
			os.Exit(2)
		}
		var ce crashError
		if errors.As(err, &ce) {
			fmt.Fprintf(os.Stderr, "iatd: %v\n", err)
			os.Exit(137)
		}
		if err == flag.ErrHelp {
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

// run is the testable body of the daemon CLI: it parses args, assembles
// the platform, runs the IAT loop, and prints every decision to stdout.
// The output is deterministic for a given tenant file and flag set.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("iatd", flag.ContinueOnError)
	tenantsPath := fs.String("tenants", "", "tenant description file (required)")
	duration := fs.Float64("duration", 20, "simulated seconds to run")
	interval := fs.Float64("interval", 1, "IAT polling interval in simulated seconds")
	scale := fs.Float64("scale", 100, "simulation scale factor")
	tracePath := fs.String("trace", "", "write a per-iteration CSV trace to this file")
	telDir := fs.String("telemetry", "", "collect telemetry and write <dir>/snapshot.{json,csv,trace.json} at exit")
	chaos := fs.String("chaos", "", "inject deterministic faults from this profile ("+joinNames()+" or kind=rate,... spec)")
	chaosSeed := fs.Int64("chaos-seed", 1, "seed for the fault-injection schedule")
	polFlag := fs.String("policy", "iat", "active allocation policy ("+strings.Join(policy.SpecNames(), ", ")+")")
	shadowFlag := fs.String("shadow", "", "comma-separated shadow policies evaluated counterfactually each tick")
	shadowCSV := fs.String("shadow-csv", "", "write the per-tick shadow divergence log to this CSV file (requires -shadow)")
	ckptDir := fs.String("checkpoint", "", "maintain an atomic state checkpoint at <dir>/"+ckptFileName)
	ckptEvery := fs.Int("checkpoint-every", 5, "iterations between checkpoint writes (requires -checkpoint)")
	resumePath := fs.String("resume", "", "resume from this checkpoint file: replay silently to its iteration, verify, restore, continue")
	crashAfter := fs.Uint64("crash-after", 0, "simulate a daemon crash immediately after this iteration (0 = never; exits 137)")
	jsonDir := fs.String("json", "", "write the run manifest (with checkpoint provenance) as JSON into this directory")
	var pf prof.Opts
	pf.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tenantsPath == "" {
		fs.Usage()
		return flag.ErrHelp
	}
	// Validate every flag before assembling anything: a bad value must fail
	// fast with a clear message, not crash mid-run or — worse for -telemetry
	// — complete a multi-minute simulation and then fail to write it out.
	if *duration <= 0 {
		return usageError{fmt.Sprintf("-duration must be positive (got %g)", *duration)}
	}
	if *interval <= 0 {
		return usageError{fmt.Sprintf("-interval must be positive (got %g)", *interval)}
	}
	if *scale <= 0 {
		return usageError{fmt.Sprintf("-scale must be positive (got %g)", *scale)}
	}
	var prof faults.Profile
	if *chaos != "" {
		var err error
		if prof, err = faults.ProfileByName(*chaos); err != nil {
			return usageError{fmt.Sprintf("-chaos: %v", err)}
		}
	}
	if *telDir != "" {
		if err := ensureWritableDir(*telDir); err != nil {
			return usageError{fmt.Sprintf("-telemetry: %v", err)}
		}
	}
	if *ckptDir != "" {
		if err := ensureWritableDir(*ckptDir); err != nil {
			return usageError{fmt.Sprintf("-checkpoint: %v", err)}
		}
	}
	if *ckptEvery < 1 {
		return usageError{fmt.Sprintf("-checkpoint-every must be >= 1 (got %d)", *ckptEvery)}
	}
	everySet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "checkpoint-every" {
			everySet = true
		}
	})
	if everySet && *ckptDir == "" {
		return usageError{"-checkpoint-every requires -checkpoint"}
	}
	if *jsonDir != "" {
		if err := ensureWritableDir(*jsonDir); err != nil {
			return usageError{fmt.Sprintf("-json: %v", err)}
		}
	}
	// Profiling is host-side observability, outside the determinism
	// guarantee: the run's stdout is byte-identical with it on or off.
	profiler, err := pf.Start()
	if err != nil {
		return usageError{fmt.Sprintf("profiling: %v", err)}
	}
	defer func() {
		if err := profiler.Stop(); err != nil {
			log.Printf("iatd: profiling: %v", err)
		}
	}()
	if profiler.Addr != "" {
		fmt.Fprintf(os.Stderr, "iatd: pprof listening on http://%s/debug/pprof/\n", profiler.Addr)
	}
	// Read and validate the resume checkpoint before any simulation work:
	// a missing file, corrupt envelope or future version must exit 2 up
	// front, not after a multi-minute silent replay.
	var resume *ckpt.Checkpoint
	var resumeHash string
	if *resumePath != "" {
		c, err := ckpt.ReadFile(*resumePath)
		if err != nil {
			return usageError{fmt.Sprintf("-resume: %v", err)}
		}
		if c.Iteration == 0 {
			return usageError{fmt.Sprintf("-resume: %s records no completed iteration", *resumePath)}
		}
		h, err := ckpt.FileHash(*resumePath)
		if err != nil {
			return err
		}
		resume, resumeHash = c, h
	}
	polSpec, err := policy.ParseSpec(*polFlag)
	if err != nil {
		return usageError{fmt.Sprintf("-policy: %v", err)}
	}
	shadowSpecs, err := policy.ParseShadowSpecs(*shadowFlag)
	if err != nil {
		return usageError{fmt.Sprintf("-shadow: %v", err)}
	}
	if *shadowCSV != "" && len(shadowSpecs) == 0 {
		return usageError{"-shadow-csv requires -shadow"}
	}
	tenantData, err := os.ReadFile(*tenantsPath)
	if err != nil {
		return err
	}
	entries, events, err := tenantfile.ParseWithEvents(bytes.NewReader(tenantData))
	if err != nil {
		return err
	}
	// cfgHash fingerprints everything the simulation's trajectory depends
	// on. A checkpoint only resumes under the exact configuration that
	// produced it — anything else would replay a different world and the
	// state verification at the checkpoint iteration would fail anyway,
	// after minutes instead of milliseconds.
	cfgHash := ckpt.ConfigHash(string(tenantData),
		fmtFlag(*duration), fmtFlag(*interval), fmtFlag(*scale),
		*chaos, strconv.FormatInt(*chaosSeed, 10), *polFlag, *shadowFlag)
	if resume != nil && resume.ConfigHash != cfgHash {
		return usageError{fmt.Sprintf(
			"-resume: checkpoint config hash %s does not match this invocation (%s); rerun with the tenant file and flags of the checkpointed run",
			resume.ConfigHash, cfgHash)}
	}

	// All run output funnels through out so a resumed run can replay the
	// pre-checkpoint iterations without printing them.
	out := &mutingWriter{w: stdout}

	p := sim.NewPlatform(sim.XeonGold6140(*scale))
	var tel *telemetry.Registry
	if *telDir != "" {
		// Attach before build so AddDevice auto-instruments every NIC
		// and buildWorkers can instrument NVMe devices it creates.
		tel = telemetry.NewRegistry()
		p.AttachTelemetry(tel)
	}
	xmems, err := build(p, entries)
	if err != nil {
		return err
	}

	params := core.DefaultParams()
	params.IntervalNS = *interval * 1e9
	params.ThresholdMissLowPerSec /= *scale
	daemon, err := bridge.NewIAT(p, params, core.Options{})
	if err != nil {
		return err
	}
	if tel != nil {
		daemon.Tel = tel
	}
	// Only a non-default policy is swapped in: with -policy iat the daemon
	// keeps the policy NewDaemon installed, so output (including the
	// telemetry event stream) is bit-for-bit the pre-flag behaviour.
	if polSpec.Kind != policy.KindIAT {
		if err := daemon.SetPolicy(polSpec.New()); err != nil {
			return err
		}
	}
	var shadows *policy.Evaluator
	if len(shadowSpecs) > 0 {
		shadows = policy.NewEvaluator(shadowSpecs)
		if tel != nil {
			shadows.Tel = tel
		}
		daemon.AttachShadows(shadows)
	}
	var tracer *trace.Writer
	if *tracePath != "" {
		tf, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		defer func() {
			if err := tracer.Flush(); err != nil {
				log.Printf("iatd: trace flush: %v", err)
			}
			tf.Close()
		}()
		tracer = trace.NewWriter(tf)
	}
	// Arm the injector only after the machine is assembled: construction-time
	// mask programming is not part of the fault surface.
	inj := faults.NewInjector(prof, *chaosSeed)
	if prof.Active() {
		if tel != nil {
			inj.AttachTelemetry(tel, p.NowNS)
		}
		p.MSR.SetFaultHook(inj)
		for _, dev := range p.Devices() {
			dev.SetFaults(inj)
		}
		p.SetPollFaults(inj)
		fmt.Fprintf(out, "iatd: chaos profile %q armed (seed %d)\n", *chaos, *chaosSeed)
	}

	// The iteration counter drives the whole checkpoint machinery: writes
	// fall on every -checkpoint-every'th count, the resume handoff fires
	// when the silent replay reaches the checkpoint's count, and
	// -crash-after kills the run at its count. A checkpoint is taken at
	// the exact program point the resume verification later re-reaches, so
	// the two states are comparable byte for byte.
	var iter uint64
	var replayErr error
	ckptPath := filepath.Join(*ckptDir, ckptFileName)
	daemon.OnIteration = func(it core.IterationInfo) {
		iter++
		if tracer != nil {
			_ = tracer.Record(it)
		}
		if it.Stable {
			fmt.Fprintf(out, "[%7.2fs] %-10s stable (ddio=%v hit/s=%.2e miss/s=%.2e)\n",
				it.NowNS/1e9, it.State, it.DDIOMask, it.DDIOHitPS, it.DDIOMissPS)
		} else {
			fmt.Fprintf(out, "[%7.2fs] %-10s %-28s ddio=%v masks=%v\n",
				it.NowNS/1e9, it.State, it.Action, it.DDIOMask, it.Masks)
		}
		if resume != nil && iter == resume.Iteration && replayErr == nil {
			if replayErr = restoreFromCheckpoint(daemon, inj, prof.Active(), resume, cfgHash, it.NowNS, iter); replayErr == nil {
				out.muted = false
			}
		}
		if *ckptDir != "" && iter%uint64(*ckptEvery) == 0 {
			if err := writeCheckpoint(ckptPath, cfgHash, iter, it.NowNS, daemon, inj, prof.Active()); err != nil {
				log.Printf("iatd: checkpoint: %v", err)
			} else if tel != nil {
				tel.Counter("ckpt", "", "writes").Inc()
			}
		}
		if *crashAfter > 0 && iter == *crashAfter {
			panic(crashError{iter})
		}
	}

	fmt.Fprintf(out, "iatd: %d tenants, %d events, %d ways, interval %.2fs, running %.0fs of simulated time\n",
		len(entries), len(events), p.RDT.NumWays(), *interval, *duration)
	if resume != nil {
		fmt.Fprintf(out, "iatd: resuming from %s (iteration %d, %.2fs simulated); replaying silently to the checkpoint\n",
			*resumePath, resume.Iteration, resume.SimTimeNS/1e9)
		out.muted = true
	}
	if err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				ce, ok := r.(crashError)
				if !ok {
					panic(r)
				}
				err = ce
			}
		}()
		runWithEvents(p, daemon, events, xmems, *duration*1e9, out)
		return nil
	}(); err != nil {
		return err
	}
	if resume != nil {
		if replayErr != nil {
			return replayErr
		}
		if iter < resume.Iteration {
			return fmt.Errorf("iatd: resume: checkpoint iteration %d was never reached (run ended after %d iterations)",
				resume.Iteration, iter)
		}
	}

	total, unstable := daemon.Iterations()
	fmt.Fprintf(out, "iatd: done; %d iterations (%d unstable), final state %s, final DDIO mask %v\n",
		total, unstable, daemon.State(), p.RDT.DDIOMask())
	if prof.Active() {
		h := daemon.Health()
		fmt.Fprintf(out, "iatd: chaos: %d faults injected; health: rejects=%d retries=%d wfail=%d degradations=%d rearms=%d degraded=%v\n",
			inj.Total(), h.SampleRejects, h.WriteRetries, h.WriteFailures, h.Degradations, h.Rearms, h.Degraded)
	}
	if shadows != nil {
		for _, sum := range shadows.Summaries() {
			fmt.Fprintf(out, "iatd: shadow %s: ticks=%d agree=%.3f ddio+%d/-%d tenant+%d/-%d hamming=%.2f final-ddio=%d\n",
				sum.Name, sum.Ticks, sum.AgreeRate(), sum.WouldGrowDDIO, sum.WouldShrinkDDIO,
				sum.WouldGrowTenant, sum.WouldShrinkTenant, sum.MeanHamming(), sum.FinalDDIO)
		}
		if n := shadows.Dropped(); n > 0 {
			fmt.Fprintf(out, "iatd: shadow: %d divergence rows dropped (log bound reached)\n", n)
		}
		if *shadowCSV != "" {
			cf, err := os.Create(*shadowCSV)
			if err != nil {
				return err
			}
			if err := shadows.WriteCSV(cf); err != nil {
				cf.Close()
				return err
			}
			if err := cf.Close(); err != nil {
				return err
			}
			fmt.Fprintf(out, "iatd: shadow divergence log written to %s\n", *shadowCSV)
		}
	}
	if tel != nil {
		base := filepath.Join(*telDir, "snapshot")
		if err := tel.Snapshot(p.NowNS()).WriteFiles(base); err != nil {
			return err
		}
		fmt.Fprintf(out, "iatd: telemetry snapshot written to %s.{json,csv,trace.json}\n", base)
	}
	if *jsonDir != "" {
		var cseed int64
		if *chaos != "" {
			cseed = *chaosSeed
		}
		opts := harness.RunOptions{
			Jobs: 1, Selectors: []string{"iatd"},
			Chaos: *chaos, ChaosSeed: cseed,
		}
		if *ckptDir != "" {
			opts.CheckpointEvery = *ckptEvery
		}
		if resume != nil {
			opts.ResumedFrom = resumeHash
			opts.ResumeIteration = resume.Iteration
		}
		manifest := harness.NewManifest(opts)
		manifest.Finish()
		path, err := manifest.Write(*jsonDir)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "iatd: manifest written to %s\n", path)
	}
	return nil
}

// fmtFlag renders a float flag for the checkpoint config hash: shortest
// exact representation, so equal values hash equally.
func fmtFlag(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// writeCheckpoint captures the daemon (and, under chaos, the injector)
// and replaces path atomically. It is called from inside OnIteration, at
// a fixed program point in the iteration; restoreFromCheckpoint verifies
// a replayed run's state at that same point, so the comparison is exact.
func writeCheckpoint(path, cfgHash string, iter uint64, nowNS float64, d *core.Daemon, inj *faults.Injector, chaosActive bool) error {
	st, err := d.SnapshotState()
	if err != nil {
		return err
	}
	c := &ckpt.Checkpoint{Iteration: iter, SimTimeNS: nowNS, ConfigHash: cfgHash, Daemon: st}
	if chaosActive {
		s := inj.Snapshot()
		c.Injector = &s
	}
	return ckpt.WriteFile(path, c)
}

// restoreFromCheckpoint is the resume handoff, run when the silent
// replay reaches the checkpoint's iteration: it first proves the
// replayed daemon and injector state re-serialize to exactly the
// checkpoint's bytes (the resume-determinism guarantee), then restores
// from the checkpoint anyway — the file, not the replay, is the
// authority the run continues from.
func restoreFromCheckpoint(d *core.Daemon, inj *faults.Injector, chaosActive bool, c *ckpt.Checkpoint, cfgHash string, nowNS float64, iter uint64) error {
	st, err := d.SnapshotState()
	if err != nil {
		return fmt.Errorf("iatd: resume: %w", err)
	}
	replayed := &ckpt.Checkpoint{Iteration: iter, SimTimeNS: nowNS, ConfigHash: cfgHash, Daemon: st}
	if chaosActive {
		s := inj.Snapshot()
		replayed.Injector = &s
	}
	a, err := ckpt.Marshal(replayed)
	if err != nil {
		return fmt.Errorf("iatd: resume: %w", err)
	}
	b, err := ckpt.Marshal(c)
	if err != nil {
		return fmt.Errorf("iatd: resume: %w", err)
	}
	if !bytes.Equal(a, b) {
		return fmt.Errorf("iatd: resume: replayed state diverged from the checkpoint at iteration %d", iter)
	}
	if err := d.RestoreState(c.Daemon); err != nil {
		return fmt.Errorf("iatd: resume: %w", err)
	}
	if c.Injector != nil {
		inj.Restore(*c.Injector)
	}
	return nil
}

// joinNames lists the named fault profiles for the -chaos flag help.
func joinNames() string {
	return strings.Join(faults.ProfileNames(), ",")
}

// ensureWritableDir creates dir if needed and probes that files can
// actually be created in it, so a typo'd or read-only -telemetry target is
// caught before the simulation runs rather than when the snapshot is
// written at exit.
func ensureWritableDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	probe, err := os.CreateTemp(dir, ".iatd-probe-*")
	if err != nil {
		return fmt.Errorf("directory %s is not writable: %w", dir, err)
	}
	name := probe.Name()
	probe.Close()
	return os.Remove(name)
}

// build assembles tenants and their workloads onto the platform, packing
// initial CAT masks bottom-up in file order. It returns each tenant's X-Mem
// workers so '@' events can retune working sets at runtime.
func build(p *sim.Platform, entries []tenantfile.Entry) (map[string][]*workload.XMem, error) {
	xmems := map[string][]*workload.XMem{}
	pos := 0
	clos := 1
	for _, e := range entries {
		mask := cache.ContiguousMask(pos, e.Ways)
		if mask.Highest() >= p.RDT.NumWays() {
			return nil, fmt.Errorf("iatd: tenant %q overflows the LLC ways", e.Name)
		}
		if err := p.RDT.SetCLOSMask(clos, mask); err != nil {
			return nil, err
		}
		pos += e.Ways

		workers, isIO, err := buildWorkers(p, e)
		if err != nil {
			return nil, err
		}
		for _, w := range workers {
			if x, ok := w.(*workload.XMem); ok {
				xmems[e.Name] = append(xmems[e.Name], x)
			}
		}
		prio := sim.BestEffort
		switch e.Priority {
		case "pc":
			prio = sim.PerformanceCritical
		case "stack":
			prio = sim.Stack
		}
		if err := p.AddTenant(&sim.Tenant{
			Name: e.Name, Cores: e.Cores, CLOS: clos,
			Priority: prio, IsIO: e.IO || isIO, Workers: workers,
		}); err != nil {
			return nil, err
		}
		clos++
	}
	return xmems, nil
}

// runWithEvents advances the simulation, applying '@' events at their
// scheduled times and notifying the daemon of phase changes.
func runWithEvents(p *sim.Platform, daemon *core.Daemon, events []tenantfile.Event,
	xmems map[string][]*workload.XMem, durNS float64, stdout io.Writer) {
	sort.Slice(events, func(i, j int) bool { return events[i].AtNS < events[j].AtNS })
	for _, ev := range events {
		if ev.AtNS > p.NowNS() {
			p.Run(min(ev.AtNS, durNS) - p.NowNS())
		}
		if ev.AtNS >= durNS {
			break
		}
		switch {
		case ev.Target == "ddio" && ev.Action == "ways":
			ways := p.Cfg.Hier.LLC.Ways
			n := ev.Arg
			if n > ways {
				n = ways
			}
			if err := p.RDT.SetDDIOMask(cache.ContiguousMask(ways-n, n)); err != nil {
				log.Printf("iatd: event ddio ways %d: %v", ev.Arg, err)
				continue
			}
			fmt.Fprintf(stdout, "[%7.2fs] event: DDIO ways -> %d\n", p.NowNS()/1e9, n)
		case ev.Action == "xmem-ws":
			for _, x := range xmems[ev.Target] {
				x.SetWorkingSet(uint64(ev.Arg) << 20)
			}
			fmt.Fprintf(stdout, "[%7.2fs] event: %s working set -> %dMB\n", p.NowNS()/1e9, ev.Target, ev.Arg)
			daemon.NotifyTenantsChanged()
		}
	}
	if p.NowNS() < durNS {
		p.Run(durNS - p.NowNS())
	}
}

// buildWorkers instantiates the workload named in the tenant file.
func buildWorkers(p *sim.Platform, e tenantfile.Entry) ([]sim.Worker, bool, error) {
	kind, arg := tenantfile.WorkloadKind(e.Workload)
	switch kind {
	case "testpmd":
		size := 1500
		if arg != "" {
			v, err := strconv.Atoi(arg)
			if err != nil {
				return nil, false, fmt.Errorf("iatd: bad testpmd packet size %q", arg)
			}
			size = v
		}
		dev := p.AddDevice(nic.Config{Name: "nic-" + e.Name, VFs: 1})
		vf := dev.VF(0)
		vf.ConsumerCore = e.Cores[0]
		flows := pkt.NewFlowSet(64, 0, uint64(len(e.Name)))
		g := tgen.NewGenerator(p.GeneratorRate(tgen.LineRatePPS(40, size)), size, flows, int64(len(e.Name)))
		p.AttachGenerator(g, dev, 0)
		workers := make([]sim.Worker, len(e.Cores))
		for i := range workers {
			workers[i] = workload.NewTestPMD(vf)
		}
		return workers, true, nil
	case "xmem":
		mb := 4
		if arg != "" {
			v, err := strconv.Atoi(arg)
			if err != nil {
				return nil, false, fmt.Errorf("iatd: bad xmem size %q", arg)
			}
			mb = v
		}
		workers := make([]sim.Worker, len(e.Cores))
		for i := range workers {
			workers[i] = workload.NewXMem(p.Alloc, uint64(mb)<<20, uint64(mb)<<20, int64(7+i))
		}
		return workers, false, nil
	case "spec":
		prof, err := workload.SpecProfileByName(arg)
		if err != nil {
			return nil, false, err
		}
		workers := make([]sim.Worker, len(e.Cores))
		for i := range workers {
			workers[i] = workload.NewSpec(prof, p.Alloc, 0, int64(13+i))
		}
		return workers, false, nil
	case "l3fwd":
		flows := 1 << 20
		if arg != "" {
			v, err := strconv.Atoi(arg)
			if err != nil || v < 1 {
				return nil, false, fmt.Errorf("iatd: bad l3fwd flow count %q", arg)
			}
			flows = v
		}
		dev := p.AddDevice(nic.Config{Name: "nic-" + e.Name, VFs: 1})
		vf := dev.VF(0)
		vf.ConsumerCore = e.Cores[0]
		fs := pkt.NewFlowSet(flows, 0, uint64(len(e.Name)))
		g := tgen.NewGenerator(p.GeneratorRate(tgen.LineRatePPS(40, 64)), 64, fs, int64(len(e.Name)))
		p.AttachGenerator(g, dev, 0)
		workers := make([]sim.Worker, len(e.Cores))
		for i := range workers {
			workers[i] = workload.NewL3Fwd(vf, flows, p.Alloc)
		}
		return workers, true, nil
	case "nfchain":
		flows := 4096
		if arg != "" {
			v, err := strconv.Atoi(arg)
			if err != nil || v < 1 {
				return nil, false, fmt.Errorf("iatd: bad nfchain flow count %q", arg)
			}
			flows = v
		}
		dev := p.AddDevice(nic.Config{Name: "nic-" + e.Name, VFs: 1})
		vf := dev.VF(0)
		vf.ConsumerCore = e.Cores[0]
		fs := pkt.NewFlowSet(flows, 0, uint64(len(e.Name)))
		g := tgen.NewGenerator(p.GeneratorRate(tgen.LineRatePPS(20, 1500)), 1500, fs, int64(len(e.Name)))
		p.AttachGenerator(g, dev, 0)
		workers := make([]sim.Worker, len(e.Cores))
		for i := range workers {
			workers[i] = workload.NewNFChain(vf, flows, p.Alloc)
		}
		return workers, true, nil
	case "spdk":
		qd, blockKB := 64, 128
		if arg != "" {
			if _, err := fmt.Sscanf(arg, "%dx%d", &qd, &blockKB); err != nil {
				return nil, false, fmt.Errorf("iatd: bad spdk spec %q (want QDxBLOCK_KB, e.g. 64x128)", arg)
			}
		}
		cfg := nvme.DefaultConfig("ssd-" + e.Name)
		cfg.BandwidthGBps /= p.Cfg.Scale
		dev := nvme.New(cfg, len(e.Cores), p.DDIO, p.Alloc)
		dev.AttachTelemetry(p.Telemetry())
		p.AddMicrotickHook(dev.Tick)
		workers := make([]sim.Worker, len(e.Cores))
		for i := range workers {
			dev.QP(i).ConsumerCore = e.Cores[i]
			workers[i] = workload.NewSPDKServer(dev, i, qd, blockKB<<10, p.Alloc, int64(19+i))
		}
		return workers, true, nil
	case "idle":
		workers := make([]sim.Worker, len(e.Cores))
		for i := range workers {
			workers[i] = idleWorker{}
		}
		return workers, false, nil
	}
	return nil, false, fmt.Errorf("iatd: unknown workload %q", e.Workload)
}

// idleWorker leaves its core halted.
type idleWorker struct{}

// Run implements sim.Worker.
func (idleWorker) Run(*sim.Ctx) {}
