package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// smokeTenants is a two-tenant scenario: a line-rate forwarder (I/O) and
// a cache-hungry batch job, with one scripted working-set event.
const smokeTenants = `
# name   cores  ways  priority  io   workload
fwd0     0      2     pc        io   testpmd:1500
batch    1      2     be        -    xmem:4
@0.6s    batch  xmem-ws 8
`

// runSmoke executes one short daemon run and returns its full output.
func runSmoke(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tenants.conf")
	if err := os.WriteFile(path, []byte(smokeTenants), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{"-tenants", path, "-duration", "1", "-interval", "0.2"}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	return out.String()
}

// TestSmokeDeterministicRun is the iatd tier-1 smoke test: one short run
// completes, reports its iterations, and two identical invocations print
// byte-identical output (the repository's determinism guarantee applies
// to the daemon CLI too).
func TestSmokeDeterministicRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates 1s of platform time")
	}
	first := runSmoke(t)
	if !strings.Contains(first, "iatd: 2 tenants, 1 events") {
		t.Fatalf("missing preamble in output:\n%s", first)
	}
	if !strings.Contains(first, "event: batch working set -> 8MB") {
		t.Fatalf("scripted event did not fire:\n%s", first)
	}
	if !strings.Contains(first, "iatd: done;") {
		t.Fatalf("run did not complete:\n%s", first)
	}
	second := runSmoke(t)
	if first != second {
		t.Fatalf("two identical runs diverged:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}

// TestUsageErrors covers the CLI contract: a missing tenant file is a
// usage error, not a crash.
func TestUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err != flag.ErrHelp {
		t.Fatalf("missing -tenants: err = %v, want flag.ErrHelp", err)
	}
	if err := run([]string{"-tenants", "/nonexistent/tenants.conf"}, &out); err == nil {
		t.Fatal("nonexistent tenant file should error")
	}
}
