package main

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"iatsim/internal/ckpt"
	"iatsim/internal/harness"
	"iatsim/internal/telemetry"
)

// smokeTenants is a two-tenant scenario: a line-rate forwarder (I/O) and
// a cache-hungry batch job, with one scripted working-set event.
const smokeTenants = `
# name   cores  ways  priority  io   workload
fwd0     0      2     pc        io   testpmd:1500
batch    1      2     be        -    xmem:4
@0.6s    batch  xmem-ws 8
`

// runSmoke executes one short daemon run and returns its full output.
func runSmoke(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tenants.conf")
	if err := os.WriteFile(path, []byte(smokeTenants), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{"-tenants", path, "-duration", "1", "-interval", "0.2"}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	return out.String()
}

// TestSmokeDeterministicRun is the iatd tier-1 smoke test: one short run
// completes, reports its iterations, and two identical invocations print
// byte-identical output (the repository's determinism guarantee applies
// to the daemon CLI too).
func TestSmokeDeterministicRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates 1s of platform time")
	}
	first := runSmoke(t)
	if !strings.Contains(first, "iatd: 2 tenants, 1 events") {
		t.Fatalf("missing preamble in output:\n%s", first)
	}
	if !strings.Contains(first, "event: batch working set -> 8MB") {
		t.Fatalf("scripted event did not fire:\n%s", first)
	}
	if !strings.Contains(first, "iatd: done;") {
		t.Fatalf("run did not complete:\n%s", first)
	}
	second := runSmoke(t)
	if first != second {
		t.Fatalf("two identical runs diverged:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}

// TestTelemetryFlag runs the daemon with -telemetry and checks the
// snapshot triple exists, validates, and covers the platform layers the
// smoke scenario exercises (cache, DDIO, NIC, memory, daemon events).
func TestTelemetryFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates 1s of platform time")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "tenants.conf")
	if err := os.WriteFile(path, []byte(smokeTenants), 0o644); err != nil {
		t.Fatal(err)
	}
	telDir := filepath.Join(dir, "tel")
	var out bytes.Buffer
	err := run([]string{"-tenants", path, "-duration", "1", "-interval", "0.2", "-telemetry", telDir}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	snap, err := telemetry.ReadSnapshotFile(filepath.Join(telDir, "snapshot.json"))
	if err != nil {
		t.Fatal(err)
	}
	subsystems := map[string]bool{}
	for _, m := range snap.Metrics {
		subsystems[m.Subsystem] = true
	}
	for _, want := range []string{"cache", "ddio", "mem", "nic"} {
		if !subsystems[want] {
			t.Errorf("snapshot missing %q metrics (got %v)", want, subsystems)
		}
	}
	daemonEvents := 0
	for _, ev := range snap.Events {
		if ev.Subsystem == "daemon" {
			daemonEvents++
		}
	}
	if daemonEvents == 0 {
		t.Error("snapshot has no daemon events")
	}
	data, err := os.ReadFile(filepath.Join(telDir, "snapshot.trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateChromeTrace(data); err != nil {
		t.Fatal(err)
	}
}

// TestUsageErrors covers the CLI contract: a missing tenant file is a
// usage error, not a crash.
func TestUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err != flag.ErrHelp {
		t.Fatalf("missing -tenants: err = %v, want flag.ErrHelp", err)
	}
	if err := run([]string{"-tenants", "/nonexistent/tenants.conf"}, &out); err == nil {
		t.Fatal("nonexistent tenant file should error")
	}
}

// TestFlagValidation: bad flag values are rejected up front as usage
// errors (exit 2), with a message naming the flag, before any simulation
// work happens.
func TestFlagValidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.conf")
	if err := os.WriteFile(path, []byte(smokeTenants), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"zero interval", []string{"-tenants", path, "-interval", "0"}, "-interval"},
		{"negative duration", []string{"-tenants", path, "-duration", "-1"}, "-duration"},
		{"zero scale", []string{"-tenants", path, "-scale", "0"}, "-scale"},
		{"bad chaos profile", []string{"-tenants", path, "-chaos", "nosuch"}, "-chaos"},
		{"bad chaos spec", []string{"-tenants", path, "-chaos", "msr-reject=2.5"}, "-chaos"},
		{"unknown policy", []string{"-tenants", path, "-policy", "bogus"}, "-policy"},
		{"static ways out of range", []string{"-tenants", path, "-policy", "static:0"}, "-policy"},
		{"duplicate shadow", []string{"-tenants", path, "-shadow", "ioca,ioca"}, "-shadow"},
		{"unknown shadow", []string{"-tenants", path, "-shadow", "greedy,bogus"}, "-shadow"},
		{"shadow csv without shadows", []string{"-tenants", path, "-shadow-csv", "/tmp/x.csv"}, "-shadow-csv"},
	}
	for _, tc := range cases {
		var out bytes.Buffer
		err := run(tc.args, &out)
		var ue usageError
		if !errors.As(err, &ue) {
			t.Errorf("%s: err = %v, want usageError", tc.name, err)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: message %q does not name %s", tc.name, err, tc.want)
		}
	}
}

// TestPolicyAndShadowFlags drives the daemon CLI on a non-IAT engine
// with shadow policies armed: the run completes, prints one divergence
// summary per shadow, and writes the per-tick divergence CSV.
func TestPolicyAndShadowFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates 1s of platform time")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "tenants.conf")
	if err := os.WriteFile(path, []byte(smokeTenants), 0o644); err != nil {
		t.Fatal(err)
	}
	csvPath := filepath.Join(dir, "shadow.csv")
	var out bytes.Buffer
	err := run([]string{"-tenants", path, "-duration", "1", "-interval", "0.2",
		"-policy", "static:4", "-shadow", "iat,greedy", "-shadow-csv", csvPath}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{"iatd: shadow iat:", "iatd: shadow greedy:", "iatd: done;"} {
		if !strings.Contains(s, want) {
			t.Errorf("output lacks %q:\n%s", want, s)
		}
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if lines[0] != "time_ns,policy,active_class,shadow_class,agree,active_ddio,shadow_ddio,hamming,shadow_desc" {
		t.Errorf("divergence CSV header = %q", lines[0])
	}
	if len(lines) < 3 {
		t.Errorf("divergence CSV has %d lines, want rows for both shadows", len(lines))
	}
}

// TestTelemetryDirValidation: an unwritable -telemetry target fails fast
// as a usage error instead of after the whole run.
func TestTelemetryDirValidation(t *testing.T) {
	if os.Getuid() == 0 {
		t.Skip("root ignores directory permissions")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "tenants.conf")
	if err := os.WriteFile(path, []byte(smokeTenants), 0o644); err != nil {
		t.Fatal(err)
	}
	ro := filepath.Join(dir, "ro")
	if err := os.Mkdir(ro, 0o555); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{"-tenants", path, "-telemetry", filepath.Join(ro, "tel")}, &out)
	var ue usageError
	if !errors.As(err, &ue) {
		t.Fatalf("unwritable -telemetry: err = %v, want usageError", err)
	}
	if !strings.Contains(err.Error(), "-telemetry") {
		t.Fatalf("message %q does not name -telemetry", err)
	}
}

// TestChaosRunDeterministic: a chaos-mode run completes, reports injected
// faults and daemon health, and is byte-identical across invocations —
// the fault schedule derives only from -chaos-seed.
func TestChaosRunDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates 1s of platform time")
	}
	path := filepath.Join(t.TempDir(), "tenants.conf")
	if err := os.WriteFile(path, []byte(smokeTenants), 0o644); err != nil {
		t.Fatal(err)
	}
	chaosRun := func(seed string) string {
		var out bytes.Buffer
		err := run([]string{"-tenants", path, "-duration", "1", "-interval", "0.2",
			"-chaos", "default", "-chaos-seed", seed}, &out)
		if err != nil {
			t.Fatalf("run: %v\noutput:\n%s", err, out.String())
		}
		return out.String()
	}
	first := chaosRun("7")
	if !strings.Contains(first, `chaos profile "default" armed`) {
		t.Fatalf("missing chaos preamble:\n%s", first)
	}
	if !strings.Contains(first, "iatd: chaos:") || !strings.Contains(first, "health:") {
		t.Fatalf("missing chaos/health summary:\n%s", first)
	}
	if !strings.Contains(first, "iatd: done;") {
		t.Fatalf("run did not complete:\n%s", first)
	}
	if second := chaosRun("7"); first != second {
		t.Fatalf("same chaos seed diverged:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	if other := chaosRun("8"); first == other {
		t.Fatal("different chaos seeds produced identical output: seed is not reaching the schedule")
	}
}

// iterLines returns the per-iteration decision lines of a run's output
// (scripted-event lines are not iterations and are skipped).
func iterLines(s string) []string {
	var lines []string
	for _, l := range strings.Split(s, "\n") {
		if strings.HasPrefix(l, "[") && !strings.Contains(l, "] event:") {
			lines = append(lines, l)
		}
	}
	return lines
}

// findLine returns the first output line with the given prefix.
func findLine(s, prefix string) string {
	for _, l := range strings.Split(s, "\n") {
		if strings.HasPrefix(l, prefix) {
			return l
		}
	}
	return ""
}

func mustEqualFiles(t *testing.T, a, b string) {
	t.Helper()
	da, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(da, db) {
		t.Errorf("%s and %s differ", a, b)
	}
}

// TestCheckpointResumeDeterministic is the kill-and-resume golden test:
// a run that crashes at iteration 10 under chaos, resumed from its last
// checkpoint (iteration 9), reproduces the uninterrupted run byte for
// byte — decision lines from iteration 7 onward, the full trace CSV, the
// telemetry snapshot, and the final checkpoint itself.
func TestCheckpointResumeDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates 4s of platform time three times")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "tenants.conf")
	if err := os.WriteFile(path, []byte(smokeTenants), 0o644); err != nil {
		t.Fatal(err)
	}
	base := []string{"-tenants", path, "-duration", "4", "-interval", "0.2", "-chaos", "default", "-chaos-seed", "7"}
	sub := func(parts ...string) []string { return append(append([]string(nil), base...), parts...) }
	ckFull, ckCrash, ckRes := filepath.Join(dir, "ck-full"), filepath.Join(dir, "ck-crash"), filepath.Join(dir, "ck-res")

	var full bytes.Buffer
	if err := run(sub("-trace", filepath.Join(dir, "full.csv"), "-telemetry", filepath.Join(dir, "tel-full"),
		"-checkpoint", ckFull, "-checkpoint-every", "3"), &full); err != nil {
		t.Fatalf("uninterrupted run: %v\noutput:\n%s", err, full.String())
	}

	var crashed bytes.Buffer
	err := run(sub("-checkpoint", ckCrash, "-checkpoint-every", "3", "-crash-after", "10"), &crashed)
	var ce crashError
	if !errors.As(err, &ce) || ce.iter != 10 {
		t.Fatalf("crashed run: err = %v, want crashError at iteration 10", err)
	}
	if strings.Contains(crashed.String(), "iatd: done;") {
		t.Fatal("crashed run printed a done line")
	}
	ckFile := filepath.Join(ckCrash, ckptFileName)
	c, err := ckpt.ReadFile(ckFile)
	if err != nil {
		t.Fatal(err)
	}
	if c.Iteration != 9 {
		t.Fatalf("last checkpoint at iteration %d, want 9", c.Iteration)
	}

	jsonDir := filepath.Join(dir, "json")
	var resumed bytes.Buffer
	if err := run(sub("-resume", ckFile, "-trace", filepath.Join(dir, "resumed.csv"), "-telemetry", filepath.Join(dir, "tel-res"),
		"-checkpoint", ckRes, "-checkpoint-every", "3", "-json", jsonDir), &resumed); err != nil {
		t.Fatalf("resumed run: %v\noutput:\n%s", err, resumed.String())
	}
	if !strings.Contains(resumed.String(), "iatd: resuming from") {
		t.Fatalf("missing resume banner:\n%s", resumed.String())
	}

	// Decision lines: the resumed run prints exactly the uninterrupted
	// run's tail from iteration 10 onward, and together with the crashed
	// run's output (minus its dying iteration) reassembles the whole
	// uninterrupted decision stream.
	fullIters := iterLines(full.String())
	resIters := iterLines(resumed.String())
	crashIters := iterLines(crashed.String())
	if len(fullIters) < 12 {
		t.Fatalf("uninterrupted run printed only %d iteration lines", len(fullIters))
	}
	if want, got := strings.Join(fullIters[9:], "\n"), strings.Join(resIters, "\n"); got != want {
		t.Fatalf("resumed tail differs:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	if len(crashIters) != 10 {
		t.Fatalf("crashed run printed %d iteration lines, want 10", len(crashIters))
	}
	recombined := append(append([]string(nil), crashIters[:9]...), resIters...)
	if strings.Join(recombined, "\n") != strings.Join(fullIters, "\n") {
		t.Fatal("crashed+resumed decision lines do not reassemble the uninterrupted run")
	}
	for _, prefix := range []string{"iatd: done;", "iatd: chaos:"} {
		if fl, rl := findLine(full.String(), prefix), findLine(resumed.String(), prefix); fl == "" || fl != rl {
			t.Errorf("%q summary differs:\n%q\nvs\n%q", prefix, fl, rl)
		}
	}

	// Artifacts: the trace CSV and telemetry snapshots are byte-identical
	// in full, and the final checkpoints of both runs agree.
	mustEqualFiles(t, filepath.Join(dir, "full.csv"), filepath.Join(dir, "resumed.csv"))
	mustEqualFiles(t, filepath.Join(dir, "tel-full", "snapshot.json"), filepath.Join(dir, "tel-res", "snapshot.json"))
	mustEqualFiles(t, filepath.Join(dir, "tel-full", "snapshot.csv"), filepath.Join(dir, "tel-res", "snapshot.csv"))
	mustEqualFiles(t, filepath.Join(ckFull, ckptFileName), filepath.Join(ckRes, ckptFileName))

	// Manifest provenance ties the resumed run to the exact checkpoint
	// bytes it continued from.
	m, err := harness.ReadManifest(filepath.Join(jsonDir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	wantHash, err := ckpt.FileHash(ckFile)
	if err != nil {
		t.Fatal(err)
	}
	if m.Options.ResumedFrom != wantHash {
		t.Errorf("manifest resumed_from = %q, want %q", m.Options.ResumedFrom, wantHash)
	}
	if m.Options.ResumeIteration != 9 {
		t.Errorf("manifest resume_iteration = %d, want 9", m.Options.ResumeIteration)
	}
	if m.Options.CheckpointEvery != 3 {
		t.Errorf("manifest checkpoint_every = %d, want 3", m.Options.CheckpointEvery)
	}
	if m.Options.Chaos != "default" {
		t.Errorf("manifest chaos = %q, want default", m.Options.Chaos)
	}
}

// TestResumeAndCheckpointValidation: every malformed -resume target and
// checkpoint flag combination is rejected up front as a usage error
// (exit 2) before any simulation work, with a message naming the flag.
func TestResumeAndCheckpointValidation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tenants.conf")
	if err := os.WriteFile(path, []byte(smokeTenants), 0o644); err != nil {
		t.Fatal(err)
	}
	expectUsage := func(name string, args []string, want string) {
		t.Helper()
		var out bytes.Buffer
		err := run(args, &out)
		var ue usageError
		if !errors.As(err, &ue) {
			t.Errorf("%s: err = %v, want usageError", name, err)
			return
		}
		if !strings.Contains(err.Error(), want) {
			t.Errorf("%s: message %q does not mention %q", name, err, want)
		}
	}

	expectUsage("missing resume file",
		[]string{"-tenants", path, "-resume", filepath.Join(dir, "nope.ckpt")}, "-resume")

	garbage := filepath.Join(dir, "garbage.ckpt")
	if err := os.WriteFile(garbage, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	expectUsage("garbage resume file", []string{"-tenants", path, "-resume", garbage}, "-resume")

	empty := filepath.Join(dir, "empty.ckpt")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	expectUsage("empty resume file", []string{"-tenants", path, "-resume", empty}, "-resume")

	data, err := ckpt.Marshal(&ckpt.Checkpoint{Iteration: 3})
	if err != nil {
		t.Fatal(err)
	}
	data[4]++ // version field starts right after the 4-byte magic
	future := filepath.Join(dir, "future.ckpt")
	if err := os.WriteFile(future, data, 0o644); err != nil {
		t.Fatal(err)
	}
	expectUsage("future version", []string{"-tenants", path, "-resume", future}, "version")

	zero := filepath.Join(dir, "zero.ckpt")
	if err := ckpt.WriteFile(zero, &ckpt.Checkpoint{ConfigHash: "x"}); err != nil {
		t.Fatal(err)
	}
	expectUsage("iteration-zero checkpoint", []string{"-tenants", path, "-resume", zero}, "-resume")

	mismatch := filepath.Join(dir, "mismatch.ckpt")
	if err := ckpt.WriteFile(mismatch, &ckpt.Checkpoint{Iteration: 4, ConfigHash: "0000000000000000"}); err != nil {
		t.Fatal(err)
	}
	expectUsage("config mismatch", []string{"-tenants", path, "-resume", mismatch}, "config hash")

	expectUsage("checkpoint-every without checkpoint",
		[]string{"-tenants", path, "-checkpoint-every", "3"}, "-checkpoint-every")
	expectUsage("zero checkpoint-every",
		[]string{"-tenants", path, "-checkpoint", filepath.Join(dir, "ck"), "-checkpoint-every", "0"}, "-checkpoint-every")
}
