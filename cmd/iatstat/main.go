// Command iatstat inspects telemetry snapshots written by
// `iatd -telemetry`, `experiments -telemetry`, or any caller of
// telemetry.Snapshot.WriteFiles.
//
// Usage:
//
//	iatstat snapshot.json              # pretty-print metrics (+ event summary)
//	iatstat -events 20 snapshot.json   # also show the last 20 events
//	iatstat -diff before.json after.json
//	iatstat -validate file.json ...    # schema-check snapshot or Chrome-trace files
//	iatstat -validate dir/             # ... or every *.json under a directory
//
// All output is deterministic: metrics print in snapshot order (sorted by
// subsystem/scope/name) and diffs sort the union of both key sets.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"iatsim/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if err == flag.ErrHelp {
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

// run is the testable body of the CLI.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("iatstat", flag.ContinueOnError)
	diff := fs.Bool("diff", false, "diff two snapshots (args: before.json after.json)")
	validate := fs.Bool("validate", false, "schema-check snapshot/Chrome-trace JSON files or directories")
	events := fs.Int("events", 0, "also print the last N events of each snapshot")
	sev := fs.String("sev", "debug", "minimum event severity to print (debug|info|warn)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	minSev, err := parseSeverity(*sev)
	if err != nil {
		return err
	}

	switch {
	case *diff:
		if fs.NArg() != 2 {
			return fmt.Errorf("iatstat: -diff wants exactly two snapshot files, got %d", fs.NArg())
		}
		return runDiff(stdout, fs.Arg(0), fs.Arg(1))
	case *validate:
		if fs.NArg() == 0 {
			return fmt.Errorf("iatstat: -validate wants at least one file or directory")
		}
		return runValidate(stdout, fs.Args())
	default:
		if fs.NArg() == 0 {
			fs.Usage()
			return flag.ErrHelp
		}
		for _, path := range fs.Args() {
			if err := printSnapshot(stdout, path, *events, minSev); err != nil {
				return err
			}
		}
		return nil
	}
}

func parseSeverity(name string) (telemetry.Severity, error) {
	switch name {
	case "debug":
		return telemetry.SevDebug, nil
	case "info":
		return telemetry.SevInfo, nil
	case "warn":
		return telemetry.SevWarn, nil
	}
	return 0, fmt.Errorf("iatstat: unknown severity %q (want debug, info, or warn)", name)
}

// printSnapshot renders one snapshot: a header, a metrics table, and
// (optionally) the trailing events at or above minSev.
func printSnapshot(w io.Writer, path string, events int, minSev telemetry.Severity) error {
	s, err := telemetry.ReadSnapshotFile(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s: t=%.3fs, %d metrics, %d events", path, s.TimeNS/1e9, len(s.Metrics), len(s.Events))
	if s.EventsDropped > 0 {
		fmt.Fprintf(w, " (%d dropped)", s.EventsDropped)
	}
	fmt.Fprintln(w)
	for _, m := range s.Metrics {
		fmt.Fprintf(w, "  %-44s %s\n", metricLabel(m.Subsystem, m.Scope, m.Name), metricValue(m))
	}
	if events <= 0 {
		return nil
	}
	kept := make([]telemetry.Event, 0, len(s.Events))
	for _, ev := range s.Events {
		if ev.Sev >= minSev {
			kept = append(kept, ev)
		}
	}
	if len(kept) > events {
		kept = kept[len(kept)-events:]
	}
	for _, ev := range kept {
		fmt.Fprintf(w, "  [%12.6fs] %-5s %s/%s", ev.TimeNS/1e9, ev.Sev, ev.Subsystem, ev.Name)
		if ev.Detail != "" {
			fmt.Fprintf(w, " %s", ev.Detail)
		}
		fmt.Fprintln(w)
	}
	return nil
}

func metricLabel(subsystem, scope, name string) string {
	if scope == "" {
		return subsystem + "/" + name
	}
	return subsystem + "/" + scope + "/" + name
}

// metricValue renders a metric's value column. Histograms collapse to
// count/mean plus the populated buckets.
func metricValue(m telemetry.Metric) string {
	switch m.Kind {
	case telemetry.KindCounter:
		return fmt.Sprintf("%d", m.Counter)
	case telemetry.KindGauge:
		return fmt.Sprintf("%g", m.Gauge)
	case telemetry.KindHistogram:
		h := m.Hist
		if h == nil || h.Count == 0 {
			return "count=0"
		}
		var b strings.Builder
		fmt.Fprintf(&b, "count=%d mean=%.1f", h.Count, h.Sum/float64(h.Count))
		for i, c := range h.Counts {
			if c == 0 {
				continue
			}
			if i < len(h.Bounds) {
				fmt.Fprintf(&b, " le%g:%d", h.Bounds[i], c)
			} else {
				fmt.Fprintf(&b, " le+Inf:%d", c)
			}
		}
		return b.String()
	}
	return "?"
}

// runDiff prints per-metric deltas between two snapshots, skipping
// metrics that did not change.
func runDiff(w io.Writer, beforePath, afterPath string) error {
	before, err := telemetry.ReadSnapshotFile(beforePath)
	if err != nil {
		return err
	}
	after, err := telemetry.ReadSnapshotFile(afterPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "diff %s (t=%.3fs) -> %s (t=%.3fs)\n", beforePath, before.TimeNS/1e9, afterPath, after.TimeNS/1e9)
	changed := 0
	for _, d := range telemetry.Diff(before, after) {
		if d.Before == d.After {
			continue
		}
		changed++
		fmt.Fprintf(w, "  %-44s %g -> %g (%+g)\n",
			metricLabel(d.Key.Subsystem, d.Key.Scope, d.Key.Name), d.Before, d.After, d.After-d.Before)
	}
	fmt.Fprintf(w, "%d metric(s) changed\n", changed)
	return nil
}

// runValidate schema-checks each argument: a directory expands to every
// *.json under it. Chrome traces (top-level traceEvents array) and
// snapshots are told apart by content, not file name. Any invalid file
// fails the whole run, after reporting every file.
func runValidate(w io.Writer, paths []string) error {
	var files []string
	for _, p := range paths {
		info, err := os.Stat(p)
		if err != nil {
			return err
		}
		if !info.IsDir() {
			files = append(files, p)
			continue
		}
		err = filepath.WalkDir(p, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".json") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return fmt.Errorf("iatstat: nothing to validate")
	}
	bad := 0
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		if bytes.Contains(data, []byte(`"traceEvents"`)) {
			err = telemetry.ValidateChromeTrace(data)
		} else {
			err = telemetry.ValidateSnapshotJSON(data)
		}
		if err != nil {
			bad++
			fmt.Fprintf(w, "FAIL %s: %v\n", f, err)
			continue
		}
		fmt.Fprintf(w, "ok   %s\n", f)
	}
	if bad > 0 {
		return fmt.Errorf("iatstat: %d of %d file(s) invalid", bad, len(files))
	}
	return nil
}
