package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"iatsim/internal/telemetry"
)

// writeSnap persists a small snapshot and returns its JSON path.
func writeSnap(t *testing.T, dir, base string, hits uint64) string {
	t.Helper()
	r := telemetry.NewRegistry()
	r.Counter("cache", "slice0", "hits").Add(hits)
	r.Gauge("nic", "vf0", "occ").Set(3)
	r.Histogram("mem", "", "lat", []float64{100}).Observe(50)
	r.Emit(telemetry.Event{TimeNS: 1e9, Sev: telemetry.SevInfo, Subsystem: "daemon", Name: "state", Detail: "LowKeep->IODemand"})
	if err := r.Snapshot(2e9).WriteFiles(filepath.Join(dir, base)); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, base+".json")
}

func TestPrintSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := writeSnap(t, dir, "snap", 41)
	var out bytes.Buffer
	if err := run([]string{"-events", "10", path}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cache/slice0/hits", "41", "nic/vf0/occ", "mem/lat", "count=1", "daemon/state", "LowKeep->IODemand"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestEventSeverityFilter(t *testing.T) {
	dir := t.TempDir()
	path := writeSnap(t, dir, "snap", 1)
	var out bytes.Buffer
	if err := run([]string{"-events", "10", "-sev", "warn", path}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "daemon/state") {
		t.Errorf("-sev warn must hide the info event:\n%s", out.String())
	}
	if err := run([]string{"-sev", "bogus", path}, &out); err == nil {
		t.Fatal("bad severity accepted")
	}
}

func TestDiffSnapshots(t *testing.T) {
	dir := t.TempDir()
	before := writeSnap(t, dir, "before", 10)
	after := writeSnap(t, dir, "after", 25)
	var out bytes.Buffer
	if err := run([]string{"-diff", before, after}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cache/slice0/hits") || !strings.Contains(out.String(), "10 -> 25 (+15)") {
		t.Errorf("diff missing the hits delta:\n%s", out.String())
	}
	// Unchanged metrics are omitted from the diff.
	if strings.Contains(out.String(), "nic/vf0/occ") {
		t.Errorf("diff shows unchanged metric:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "1 metric(s) changed") {
		t.Errorf("diff summary wrong:\n%s", out.String())
	}
	if err := run([]string{"-diff", before}, &out); err == nil {
		t.Fatal("-diff with one file accepted")
	}
}

func TestValidateDirectory(t *testing.T) {
	dir := t.TempDir()
	writeSnap(t, dir, "snap", 1)
	var out bytes.Buffer
	if err := run([]string{"-validate", dir}, &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	// Both the snapshot JSON and the Chrome trace get recognised.
	if got := strings.Count(out.String(), "ok   "); got != 2 {
		t.Errorf("validated %d files, want 2 (snapshot + trace):\n%s", got, out.String())
	}

	// A corrupt file fails the run but still reports the rest.
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte(`{"metrics":[{"subsystem":"b","name":"x","kind":"counter"},{"subsystem":"a","name":"x","kind":"counter"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"-validate", dir}, &out); err == nil {
		t.Fatal("invalid file accepted")
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Errorf("no FAIL line for the corrupt file:\n%s", out.String())
	}
}
