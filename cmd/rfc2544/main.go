// Command rfc2544 runs a standalone RFC 2544 zero-drop throughput search
// for single-core DPDK l3fwd on the simulated platform — the tool behind
// the paper's Fig. 3.
//
// Usage:
//
//	rfc2544 -ring 512 -size 64 -flows 1048576
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"iatsim/internal/exp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if err == flag.ErrHelp {
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

// run is the testable body of the CLI: one deterministic RFC 2544 search
// for the given ring/packet-size/flow-count point.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("rfc2544", flag.ContinueOnError)
	ring := fs.Int("ring", 1024, "Rx ring entries")
	size := fs.Int("size", 64, "packet size in bytes")
	flows := fs.Int("flows", 1<<20, "distinct flows in the traffic / flow table")
	scale := fs.Float64("scale", 100, "simulation scale factor")
	warm := fs.Float64("warm", 0, "warmup per trial in simulated seconds (0 = default sweep setting)")
	measure := fs.Float64("measure", 0, "measurement per trial in simulated seconds (0 = default sweep setting)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	o := exp.DefaultFig3Opts()
	o.Scale = *scale
	o.Flows = *flows
	o.Rings = []int{*ring}
	o.Sizes = []int{*size}
	if *warm > 0 {
		o.WarmNS = *warm * 1e9
	}
	if *measure > 0 {
		o.MeasureNS = *measure * 1e9
	}
	rows := exp.RunFig3(nil, o)
	r := rows[0]
	fmt.Fprintf(stdout, "l3fwd, %dB packets, %d-entry ring, %d flows:\n", r.PktSize, r.RingSize, *flows)
	fmt.Fprintf(stdout, "  max zero-drop rate: %.2f Mpps (line rate %.2f Mpps, %d trials)\n",
		r.MaxMpps, r.LineRateMpps, r.Trials)
	return nil
}
