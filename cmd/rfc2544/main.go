// Command rfc2544 runs a standalone RFC 2544 zero-drop throughput search
// for single-core DPDK l3fwd on the simulated platform — the tool behind
// the paper's Fig. 3.
//
// Usage:
//
//	rfc2544 -ring 512 -size 64 -flows 1048576
package main

import (
	"flag"
	"fmt"

	"iatsim/internal/exp"
)

func main() {
	ring := flag.Int("ring", 1024, "Rx ring entries")
	size := flag.Int("size", 64, "packet size in bytes")
	flows := flag.Int("flows", 1<<20, "distinct flows in the traffic / flow table")
	scale := flag.Float64("scale", 100, "simulation scale factor")
	flag.Parse()

	o := exp.DefaultFig3Opts()
	o.Scale = *scale
	o.Flows = *flows
	o.Rings = []int{*ring}
	o.Sizes = []int{*size}
	rows := exp.RunFig3(nil, o)
	r := rows[0]
	fmt.Printf("l3fwd, %dB packets, %d-entry ring, %d flows:\n", r.PktSize, r.RingSize, *flows)
	fmt.Printf("  max zero-drop rate: %.2f Mpps (line rate %.2f Mpps, %d trials)\n",
		r.MaxMpps, r.LineRateMpps, r.Trials)
}
