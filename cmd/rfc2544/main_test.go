package main

import (
	"bytes"
	"strings"
	"testing"
)

// smokeArgs is a deliberately small search: tiny ring, few flows, short
// warm/measure windows, so the binary search converges in seconds.
var smokeArgs = []string{
	"-ring", "64", "-size", "64", "-flows", "4096",
	"-warm", "0.05", "-measure", "0.1",
}

// TestSmokeDeterministicSearch is the rfc2544 tier-1 smoke test: one
// short zero-drop search completes with a sane rate line, and two
// identical invocations print byte-identical output.
func TestSmokeDeterministicSearch(t *testing.T) {
	if testing.Short() {
		t.Skip("runs an RFC 2544 binary search")
	}
	search := func() string {
		var out bytes.Buffer
		if err := run(smokeArgs, &out); err != nil {
			t.Fatalf("run: %v\noutput:\n%s", err, out.String())
		}
		return out.String()
	}
	first := search()
	if !strings.Contains(first, "l3fwd, 64B packets, 64-entry ring, 4096 flows:") {
		t.Fatalf("missing search header:\n%s", first)
	}
	if !strings.Contains(first, "max zero-drop rate:") {
		t.Fatalf("missing result line:\n%s", first)
	}
	second := search()
	if first != second {
		t.Fatalf("two identical searches diverged:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}

// TestBadFlags covers the CLI contract for unparsable flags.
func TestBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-ring", "not-a-number"}, &out); err == nil {
		t.Fatal("bad -ring value should error")
	}
}
