// Command simlint runs the repository's static-analysis suite: custom
// analyzers (internal/lint) that enforce the determinism and
// hardware-model invariants the reproduction's results depend on.
//
// Usage:
//
//	simlint                     # lint the enclosing module, exit 1 on findings
//	simlint -dir path/to/module # lint another module root
//	simlint -baseline           # emit analyzer,package,findings,suppressed CSV
//
// Findings print as "file:line: [analyzer] message". A finding is
// suppressed by an adjacent comment with a mandatory reason:
//
//	//simlint:ignore <analyzer> <reason>
//
// See EXPERIMENTS.md ("Determinism invariants") for what each analyzer
// checks and how `make lint` fits the tier-1 workflow.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"iatsim/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", ".", "module root to lint (any directory inside it works)")
	baseline := fs.Bool("baseline", false, "emit per-analyzer, per-package finding counts as CSV (for results/simlint-baseline.csv)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	mod, err := lint.LoadModule(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "simlint: %v\n", err)
		return 2
	}
	analyzers := lint.Analyzers()
	findings := lint.RunAnalyzers(mod, analyzers)

	if *baseline {
		writeBaseline(stdout, mod, analyzers, findings)
		return 0
	}

	active, suppressed := 0, 0
	for _, f := range findings {
		if f.Suppressed {
			suppressed++
			continue
		}
		active++
		fmt.Fprintf(stdout, "%s:%d: [%s] %s\n", relPath(mod.Dir, f.Pos.Filename), f.Pos.Line, f.Analyzer, f.Message)
	}
	if active > 0 {
		fmt.Fprintf(stderr, "simlint: %d finding(s) in %s\n", active, mod.Path)
		return 1
	}
	fmt.Fprintf(stdout, "simlint: clean — %d packages, %d analyzers, %d suppression(s)\n",
		len(mod.Pkgs), len(analyzers), suppressed)
	return 0
}

// relPath shortens filenames to module-relative form for stable output.
func relPath(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !filepath.IsAbs(rel) {
		return rel
	}
	return path
}

// writeBaseline emits one CSV row per analyzer and package with nonzero
// counts, plus an "(all)" total row per analyzer so the analyzer list is
// recorded even when the tree is clean. results/simlint-baseline.csv is
// this output at the suite's introduction; regenerating it shows
// enforcement drift (new findings or suppressions) across PRs.
func writeBaseline(w io.Writer, mod *lint.Module, analyzers []*lint.Analyzer, findings []lint.Finding) {
	type key struct{ analyzer, pkg string }
	type count struct{ findings, suppressed int }
	counts := map[key]*count{}
	get := func(k key) *count {
		if counts[k] == nil {
			counts[k] = &count{}
		}
		return counts[k]
	}
	for _, f := range findings {
		for _, k := range []key{{f.Analyzer, f.Package}, {f.Analyzer, "(all)"}} {
			c := get(k)
			if f.Suppressed {
				c.suppressed++
			} else {
				c.findings++
			}
		}
	}
	for _, a := range analyzers {
		get(key{a.Name, "(all)"})
	}
	get(key{lint.MetaAnalyzer, "(all)"})

	keys := make([]key, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].analyzer != keys[j].analyzer {
			return keys[i].analyzer < keys[j].analyzer
		}
		return keys[i].pkg < keys[j].pkg
	})
	fmt.Fprintln(w, "analyzer,package,findings,suppressed")
	for _, k := range keys {
		c := counts[k]
		fmt.Fprintf(w, "%s,%s,%d,%d\n", k.analyzer, k.pkg, c.findings, c.suppressed)
	}
}
