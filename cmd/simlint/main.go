// Command simlint runs the repository's static-analysis suite: custom
// analyzers (internal/lint) that enforce the determinism and
// hardware-model invariants the reproduction's results depend on,
// interprocedurally (a call whose closure reaches a violation is flagged
// with the offending chain).
//
// Usage:
//
//	simlint                                # lint the module, exit 1 on findings
//	simlint -dir path/to/module            # lint another module root
//	simlint -format json                   # machine-readable findings
//	simlint -format sarif                  # SARIF 2.1.0 for code-scanning upload
//	simlint -baseline results/simlint-baseline.csv -write  # regenerate baseline
//	simlint -baseline results/simlint-baseline.csv -diff   # fail only on NEW findings
//	simlint -timing                        # per-analyzer wall time on stderr
//
// Findings print as "file:line: [analyzer] message". A finding is
// suppressed by an adjacent comment with a mandatory reason:
//
//	//simlint:ignore <analyzer> <reason>
//
// A directive on a function declaration additionally suppresses
// interprocedural findings whose call chain passes through it.
//
// In -diff mode the exit code ignores pre-existing findings: only a
// per-analyzer, per-package count above the baseline fails the run, so
// the linter can be tightened (or a violation grandfathered) without
// blocking unrelated work. See EXPERIMENTS.md ("Static analysis").
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"iatsim/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", ".", "module root to lint (any directory inside it works)")
	format := fs.String("format", "text", "output format: text, json, or sarif")
	baseline := fs.String("baseline", "", "baseline CSV path (analyzer,package,findings,suppressed)")
	diff := fs.Bool("diff", false, "exit nonzero only on findings NEW relative to -baseline")
	write := fs.Bool("write", false, "write the current counts to -baseline and exit")
	timing := fs.Bool("timing", false, "report per-analyzer wall time on stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *format != "text" && *format != "json" && *format != "sarif" {
		fmt.Fprintf(stderr, "simlint: unknown -format %q (want text, json, or sarif)\n", *format)
		return 2
	}
	if (*diff || *write) && *baseline == "" {
		fmt.Fprintln(stderr, "simlint: -diff and -write need -baseline <path>")
		return 2
	}
	if *diff && *write {
		fmt.Fprintln(stderr, "simlint: -diff and -write are mutually exclusive")
		return 2
	}

	mod, err := lint.LoadModule(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "simlint: %v\n", err)
		return 2
	}
	analyzers := lint.Analyzers()

	// The suite front-loads directive collection and the interprocedural
	// graph; per-analyzer timing brackets only each analyzer's own pass.
	// (The wall clock lives here, not in internal/lint: cmd/ is outside
	// detlint's simulation scope.)
	suite := lint.NewSuite(mod, analyzers)
	for _, a := range analyzers {
		start := time.Now()
		suite.Run(a)
		if *timing {
			fmt.Fprintf(stderr, "simlint: %-10s %8.1fms\n", a.Name, float64(time.Since(start).Microseconds())/1000)
		}
	}
	findings := suite.Finish()
	rows := countRows(analyzers, findings)

	if *write {
		if err := writeBaselineFile(*baseline, rows); err != nil {
			fmt.Fprintf(stderr, "simlint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "simlint: wrote %s (%d rows)\n", *baseline, len(rows))
		return 0
	}

	active := 0
	suppressed := 0
	for _, f := range findings {
		if f.Suppressed {
			suppressed++
		} else {
			active++
		}
	}

	switch *format {
	case "json":
		if err := writeJSON(stdout, mod, findings); err != nil {
			fmt.Fprintf(stderr, "simlint: %v\n", err)
			return 2
		}
	case "sarif":
		if err := writeSARIF(stdout, mod, analyzers, findings); err != nil {
			fmt.Fprintf(stderr, "simlint: %v\n", err)
			return 2
		}
	default:
		for _, f := range findings {
			if f.Suppressed {
				continue
			}
			f.Pos.Filename = relPath(mod.Dir, f.Pos.Filename)
			fmt.Fprintln(stdout, f.String())
		}
	}

	if *diff {
		base, err := readBaselineFile(*baseline)
		if err != nil {
			fmt.Fprintf(stderr, "simlint: %v\n", err)
			return 2
		}
		increases := diffRows(rows, base)
		for _, d := range increases {
			fmt.Fprintf(stderr, "simlint: NEW findings: %s in %s: %d (baseline %d)\n",
				d.Analyzer, d.Pkg, d.Findings, d.base)
		}
		if len(increases) > 0 {
			fmt.Fprintf(stderr, "simlint: %d analyzer/package pair(s) above baseline %s\n", len(increases), *baseline)
			return 1
		}
		fmt.Fprintf(stderr, "simlint: no new findings relative to %s (%d pre-existing, %d suppressed)\n",
			*baseline, active, suppressed)
		return 0
	}

	if active > 0 {
		fmt.Fprintf(stderr, "simlint: %d finding(s) in %s\n", active, mod.Path)
		return 1
	}
	if *format == "text" {
		fmt.Fprintf(stdout, "simlint: clean — %d packages, %d analyzers, %d suppression(s)\n",
			len(mod.Pkgs), len(analyzers), suppressed)
	}
	return 0
}

// relPath shortens filenames to module-relative form for stable output.
func relPath(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !filepath.IsAbs(rel) {
		return rel
	}
	return path
}

// countRow is one baseline CSV row.
type countRow struct {
	Analyzer   string
	Pkg        string
	Findings   int
	Suppressed int

	base int // baseline findings count, filled by diffRows
}

// countRows aggregates findings per analyzer and package, with an
// "(all)" total row per analyzer so the analyzer list is recorded even on
// a clean tree. Rows are sorted, so baseline files are deterministic.
func countRows(analyzers []*lint.Analyzer, findings []lint.Finding) []countRow {
	type key struct{ analyzer, pkg string }
	counts := map[key]*countRow{}
	get := func(k key) *countRow {
		if counts[k] == nil {
			counts[k] = &countRow{Analyzer: k.analyzer, Pkg: k.pkg}
		}
		return counts[k]
	}
	for _, f := range findings {
		for _, k := range []key{{f.Analyzer, f.Package}, {f.Analyzer, "(all)"}} {
			c := get(k)
			if f.Suppressed {
				c.Suppressed++
			} else {
				c.Findings++
			}
		}
	}
	for _, a := range analyzers {
		get(key{a.Name, "(all)"})
	}
	get(key{lint.MetaAnalyzer, "(all)"})

	rows := make([]countRow, 0, len(counts))
	for _, c := range counts {
		rows = append(rows, *c)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Analyzer != rows[j].Analyzer {
			return rows[i].Analyzer < rows[j].Analyzer
		}
		return rows[i].Pkg < rows[j].Pkg
	})
	return rows
}

const baselineHeader = "analyzer,package,findings,suppressed"

func writeBaselineFile(path string, rows []countRow) error {
	var b strings.Builder
	b.WriteString(baselineHeader + "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%s,%d,%d\n", r.Analyzer, r.Pkg, r.Findings, r.Suppressed)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// readBaselineFile parses a baseline CSV into findings counts keyed by
// analyzer and package.
func readBaselineFile(path string) (map[[2]string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := map[[2]string]int{}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	for i, line := range lines {
		if i == 0 {
			if line != baselineHeader {
				return nil, fmt.Errorf("baseline %s: header %q, want %q", path, line, baselineHeader)
			}
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 4 {
			return nil, fmt.Errorf("baseline %s:%d: %d fields, want 4", path, i+1, len(parts))
		}
		n, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, fmt.Errorf("baseline %s:%d: findings count: %v", path, i+1, err)
		}
		out[[2]string{parts[0], parts[1]}] = n
	}
	return out, nil
}

// diffRows returns the rows whose active-finding count exceeds the
// baseline. Unknown rows count against a baseline of zero; suppressed
// counts never fail a diff (suppressions carry written reasons and are
// reviewed in the PR that adds them).
func diffRows(rows []countRow, base map[[2]string]int) []countRow {
	var out []countRow
	for _, r := range rows {
		b := base[[2]string{r.Analyzer, r.Pkg}]
		if r.Findings > b {
			r.base = b
			out = append(out, r)
		}
	}
	return out
}

// jsonFinding is the -format json shape of one finding.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line,omitempty"`
	Column     int    `json:"column,omitempty"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Package    string `json:"package,omitempty"`
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

func writeJSON(w io.Writer, mod *lint.Module, findings []lint.Finding) error {
	out := struct {
		Module   string        `json:"module"`
		Findings []jsonFinding `json:"findings"`
	}{Module: mod.Path, Findings: []jsonFinding{}}
	for _, f := range findings {
		out.Findings = append(out.Findings, jsonFinding{
			File:       relPath(mod.Dir, f.Pos.Filename),
			Line:       f.Pos.Line,
			Column:     f.Pos.Column,
			Analyzer:   f.Analyzer,
			Message:    f.Message,
			Package:    f.Package,
			Suppressed: f.Suppressed,
			Reason:     f.Reason,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF 2.1.0 output — the minimal valid shape code-scanning services
// ingest: one run, one rule per analyzer, one result per finding, with
// suppressed findings carried as inSource suppressions.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	Level        string             `json:"level"`
	Message      sarifMessage       `json:"message"`
	Locations    []sarifLocation    `json:"locations,omitempty"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           *sarifRegion  `json:"region,omitempty"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine,omitempty"`
	StartColumn int `json:"startColumn,omitempty"`
}

type sarifSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

func writeSARIF(w io.Writer, mod *lint.Module, analyzers []*lint.Analyzer, findings []lint.Finding) error {
	driver := sarifDriver{Name: "simlint"}
	for _, a := range analyzers {
		driver.Rules = append(driver.Rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	driver.Rules = append(driver.Rules, sarifRule{
		ID:               lint.MetaAnalyzer,
		ShortDescription: sarifMessage{Text: "directive hygiene and loader diagnostics"},
	})

	results := []sarifResult{}
	for _, f := range findings {
		r := sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
		}
		if f.Suppressed {
			r.Level = "note"
			r.Suppressions = []sarifSuppression{{Kind: "inSource", Justification: f.Reason}}
		}
		if f.Pos.Filename != "" {
			loc := sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(relPath(mod.Dir, f.Pos.Filename))},
			}
			if f.Pos.Line > 0 {
				loc.Region = &sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column}
			}
			r.Locations = []sarifLocation{{PhysicalLocation: loc}}
		}
		results = append(results, r)
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
