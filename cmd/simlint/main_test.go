package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestCleanTreeExitsZero runs the linter over this repository: HEAD must
// be clean (the same invariant `make lint` enforces), and the baseline
// CSV must list every analyzer.
func TestCleanTreeExitsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-dir", "../.."}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d on HEAD, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "simlint: clean") {
		t.Fatalf("missing clean summary:\n%s", out.String())
	}

	out.Reset()
	if code := run([]string{"-dir", "../..", "-baseline"}, &out, &errOut); code != 0 {
		t.Fatalf("baseline exit %d, want 0", code)
	}
	csv := out.String()
	if !strings.HasPrefix(csv, "analyzer,package,findings,suppressed\n") {
		t.Fatalf("baseline header wrong:\n%s", csv)
	}
	for _, name := range []string{"detlint", "maporder", "msrlint", "simlint"} {
		if !strings.Contains(csv, "\n"+name+",(all),") && !strings.HasPrefix(csv, name+",(all),") {
			t.Fatalf("baseline missing analyzer %q:\n%s", name, csv)
		}
	}
}

// TestBadDirExitsTwo pins the load-failure exit code.
func TestBadDirExitsTwo(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-dir", "/nonexistent-simlint-dir"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d for unloadable dir, want 2", code)
	}
}
