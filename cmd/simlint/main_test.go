package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chainmod is a fixture module seeded with interprocedural findings —
// the test double for a dirty tree.
const chainmod = "../../internal/lint/testdata/chainmod"

// TestCleanTreeExitsZero runs the linter over this repository: HEAD must
// be clean (the same invariant `make lint` enforces).
func TestCleanTreeExitsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-dir", "../.."}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d on HEAD, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "simlint: clean") {
		t.Fatalf("missing clean summary:\n%s", out.String())
	}
}

// TestDiffAgainstCommittedBaseline is the no-new-findings gate at HEAD.
func TestDiffAgainstCommittedBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	var out, errOut bytes.Buffer
	code := run([]string{"-dir", "../..", "-baseline", "../../results/simlint-baseline.csv", "-diff"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("diff exit %d at HEAD, want 0\nstderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "no new findings") {
		t.Fatalf("missing diff summary:\n%s", errOut.String())
	}
}

// TestDiffFlagsNewFindings injects findings (the seeded chainmod fixture
// against an empty baseline) and requires exit 1 naming them.
func TestDiffFlagsNewFindings(t *testing.T) {
	empty := filepath.Join(t.TempDir(), "empty.csv")
	if err := os.WriteFile(empty, []byte("analyzer,package,findings,suppressed\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	code := run([]string{"-dir", chainmod, "-baseline", empty, "-diff"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("diff exit %d with seeded findings over empty baseline, want 1\nstderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "NEW findings") || !strings.Contains(errOut.String(), "detlint") {
		t.Fatalf("diff should name the new findings:\n%s", errOut.String())
	}
}

// TestWriteThenDiffRoundTrips regenerates a baseline and diffs against
// it: grandfathered findings must not fail, and the file must be
// deterministic.
func TestWriteThenDiffRoundTrips(t *testing.T) {
	base := filepath.Join(t.TempDir(), "base.csv")
	var out, errOut bytes.Buffer
	if code := run([]string{"-dir", chainmod, "-baseline", base, "-write"}, &out, &errOut); code != 0 {
		t.Fatalf("write exit %d, want 0\nstderr:\n%s", code, errOut.String())
	}
	first, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(first), "analyzer,package,findings,suppressed\n") {
		t.Fatalf("baseline header wrong:\n%s", first)
	}
	for _, name := range []string{"detlint", "maporder", "msrlint", "seedflow", "statelint", "telemlint", "simlint"} {
		if !strings.Contains(string(first), "\n"+name+",(all),") {
			t.Fatalf("baseline missing analyzer %q:\n%s", name, first)
		}
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-dir", chainmod, "-baseline", base, "-diff"}, &out, &errOut); code != 0 {
		t.Fatalf("diff exit %d against just-written baseline, want 0\nstderr:\n%s", code, errOut.String())
	}

	// Determinism: a second write must be byte-identical.
	if code := run([]string{"-dir", chainmod, "-baseline", base, "-write"}, &out, &errOut); code != 0 {
		t.Fatalf("second write exit %d", code)
	}
	second, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("baseline not deterministic:\n--- first\n%s\n--- second\n%s", first, second)
	}
}

// TestJSONFormat checks the machine-readable finding list.
func TestJSONFormat(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-dir", chainmod, "-format", "json"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d on seeded fixture, want 1", code)
	}
	var doc struct {
		Module   string `json:"module"`
		Findings []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if doc.Module != "iatsim" || len(doc.Findings) == 0 {
		t.Fatalf("unexpected JSON document: %+v", doc)
	}
	for _, f := range doc.Findings {
		if f.Analyzer == "" || f.Message == "" || f.File == "" {
			t.Fatalf("finding missing fields: %+v", f)
		}
		if filepath.IsAbs(f.File) {
			t.Fatalf("finding path should be module-relative: %q", f.File)
		}
	}
}

// TestSARIFFormat validates the structural SARIF 2.1.0 contract: schema
// and version fields, one run, a rule per analyzer, results referencing
// declared rules with physical locations, and suppressed findings
// carried as inSource suppressions.
func TestSARIFFormat(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-dir", chainmod, "-format", "sarif"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d on seeded fixture, want 1", code)
	}
	var doc struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
				Suppressions []struct {
					Kind          string `json:"kind"`
					Justification string `json:"justification"`
				} `json:"suppressions"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("invalid SARIF JSON: %v", err)
	}
	if doc.Version != "2.1.0" || !strings.Contains(doc.Schema, "sarif-2.1.0") {
		t.Fatalf("wrong SARIF version/schema: %q %q", doc.Version, doc.Schema)
	}
	if len(doc.Runs) != 1 {
		t.Fatalf("want exactly 1 run, got %d", len(doc.Runs))
	}
	run0 := doc.Runs[0]
	if run0.Tool.Driver.Name != "simlint" {
		t.Fatalf("driver name %q", run0.Tool.Driver.Name)
	}
	rules := map[string]bool{}
	for _, r := range run0.Tool.Driver.Rules {
		if r.ShortDescription.Text == "" {
			t.Fatalf("rule %s lacks a description", r.ID)
		}
		rules[r.ID] = true
	}
	for _, name := range []string{"detlint", "maporder", "msrlint", "seedflow", "statelint", "telemlint", "simlint"} {
		if !rules[name] {
			t.Fatalf("SARIF rules missing %q", name)
		}
	}
	if len(run0.Results) == 0 {
		t.Fatal("seeded fixture should produce results")
	}
	sawSuppressed := false
	for _, r := range run0.Results {
		if !rules[r.RuleID] {
			t.Fatalf("result references undeclared rule %q", r.RuleID)
		}
		if r.Message.Text == "" {
			t.Fatalf("result without message: %+v", r)
		}
		if len(r.Locations) == 0 || r.Locations[0].PhysicalLocation.ArtifactLocation.URI == "" {
			t.Fatalf("result without location: %+v", r)
		}
		if strings.Contains(r.Locations[0].PhysicalLocation.ArtifactLocation.URI, "\\") {
			t.Fatalf("SARIF URI must use forward slashes: %+v", r.Locations[0])
		}
		if len(r.Suppressions) > 0 {
			sawSuppressed = true
			if r.Level != "note" || r.Suppressions[0].Kind != "inSource" || r.Suppressions[0].Justification == "" {
				t.Fatalf("suppressed result malformed: %+v", r)
			}
		}
	}
	if !sawSuppressed {
		t.Fatal("chainmod has suppressed findings; SARIF should carry them as suppressions")
	}
}

// TestTimingFlag pins the per-analyzer timing lines.
func TestTimingFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	run([]string{"-dir", chainmod, "-timing"}, &out, &errOut)
	for _, name := range []string{"detlint", "seedflow", "telemlint"} {
		if !strings.Contains(errOut.String(), name) {
			t.Fatalf("timing output missing %s:\n%s", name, errOut.String())
		}
	}
	if !strings.Contains(errOut.String(), "ms") {
		t.Fatalf("timing output lacks a unit:\n%s", errOut.String())
	}
}

// TestUsageErrorsExitTwo pins the usage-error exit code.
func TestUsageErrorsExitTwo(t *testing.T) {
	cases := [][]string{
		{"-dir", "/nonexistent-simlint-dir"},
		{"-format", "xml"},
		{"-diff"},
		{"-write"},
		{"-baseline", "x.csv", "-diff", "-write"},
	}
	for _, args := range cases {
		var out, errOut bytes.Buffer
		if code := run(args, &out, &errOut); code != 2 {
			t.Fatalf("args %v: exit %d, want 2", args, code)
		}
	}
}
