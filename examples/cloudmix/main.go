// Cloudmix: the paper's application-study scenario (Sec. VI-C) as a demo —
// two Redis containers behind an OVS switch serve YCSB-A traffic from two
// 40GbE NICs while a RocksDB job and two X-Mem batch tenants share the rest
// of the LLC. Run once with static allocation and once with IAT, and
// compare both sides' performance.
//
//	go run ./examples/cloudmix
package main

import (
	"fmt"

	"iatsim/internal/exp"
)

func main() {
	fmt.Println("workloads: OVS + 2x Redis (YCSB-A over 2x40GbE) | RocksDB (PC) + 2x X-Mem (BE)")
	fmt.Println("placement: the RocksDB container starts on the DDIO ways (worst case)")
	fmt.Println()

	solo := exp.RunAppMix(exp.AppMixOpts{Net: "redis", App: "rocksdb:A", Solo: true})
	netSolo := exp.RunAppMix(exp.AppMixOpts{Net: "redis", App: "rocksdb:A", NetOnly: true,
		TargetInstr: 1 << 62, MaxNS: 3e9})

	base := exp.RunAppMix(exp.AppMixOpts{Net: "redis", App: "rocksdb:A", Placement: exp.PlacePC})
	iat := exp.RunAppMix(exp.AppMixOpts{Net: "redis", App: "rocksdb:A", Placement: exp.PlacePC,
		IAT: true, IntervalNS: 0.25e9})

	fmt.Printf("%-22s %12s %12s %12s\n", "", "solo", "baseline", "IAT")
	fmt.Printf("%-22s %11.2fs %11.2fs %11.2fs\n", "RocksDB exec time",
		solo.ExecNS/1e9, base.ExecNS/1e9, iat.ExecNS/1e9)
	fmt.Printf("%-22s %12s %11.3fx %11.3fx\n", "  normalised", "1.000x",
		base.ExecNS/solo.ExecNS, iat.ExecNS/solo.ExecNS)
	fmt.Printf("%-22s %10.2fM/s %10.2fM/s %10.2fM/s\n", "Redis throughput",
		netSolo.RedisOpsPS/1e6, base.RedisOpsPS/1e6, iat.RedisOpsPS/1e6)
	fmt.Printf("%-22s %12s %11.3fx %11.3fx\n", "  normalised", "1.000x",
		base.RedisOpsPS/netSolo.RedisOpsPS, iat.RedisOpsPS/netSolo.RedisOpsPS)
}
