// Latent Contender demo (Sec. III-B of the paper): a tenant whose
// "dedicated" LLC ways happen to be the DDIO ways is silently sharing them
// with the NIC — no core overlaps it, yet inbound line-rate traffic evicts
// its working set. IAT's shuffling step moves the victim off the DDIO ways
// and parks the least memory-intensive best-effort tenant there instead.
//
//	go run ./examples/latentcontender
package main

import (
	"fmt"
	"log"

	"iatsim/internal/bridge"
	"iatsim/internal/cache"
	"iatsim/internal/core"
	"iatsim/internal/nic"
	"iatsim/internal/pkt"
	"iatsim/internal/sim"
	"iatsim/internal/tgen"
	"iatsim/internal/workload"
)

// build assembles one l3fwd tenant (2 ways), one PC X-Mem victim on the
// given mask, and one BE X-Mem; returns the platform and the two X-Mems.
func build(victimMask cache.WayMask, iat bool) (*sim.Platform, *workload.XMem) {
	p := sim.NewPlatform(sim.XeonGold6140(100))
	dev := p.AddDevice(nic.Config{Name: "nic0", VFs: 1})
	vf := dev.VF(0)
	vf.ConsumerCore = 0
	fwd := workload.NewL3Fwd(vf, 1<<20, p.Alloc)
	must(p.RDT.SetCLOSMask(1, cache.ContiguousMask(0, 2)))
	must(p.AddTenant(&sim.Tenant{
		Name: "l3fwd", Cores: []int{0}, CLOS: 1,
		Priority: sim.PerformanceCritical, IsIO: true,
		Workers: []sim.Worker{fwd},
	}))

	victim := workload.NewXMem(p.Alloc, 8<<20, 8<<20, 5)
	must(p.RDT.SetCLOSMask(2, victimMask))
	must(p.AddTenant(&sim.Tenant{
		Name: "victim", Cores: []int{1}, CLOS: 2,
		Priority: sim.PerformanceCritical,
		Workers:  []sim.Worker{victim},
	}))

	idleBE := workload.NewXMem(p.Alloc, 512<<10, 512<<10, 9)
	must(p.RDT.SetCLOSMask(3, cache.ContiguousMask(2, 2)))
	must(p.AddTenant(&sim.Tenant{
		Name: "quiet-be", Cores: []int{2}, CLOS: 3,
		Priority: sim.BestEffort,
		Workers:  []sim.Worker{idleBE},
	}))

	g := tgen.NewGenerator(p.GeneratorRate(tgen.LineRatePPS(40, 1500)), 1500,
		pkt.NewFlowSet(1<<20, 0, 7), 42)
	p.AttachGenerator(g, dev, 0)

	if iat {
		params := core.DefaultParams()
		params.IntervalNS = 0.5e9
		params.ThresholdMissLowPerSec /= 100
		_, err := bridge.NewIAT(p, params, core.Options{DisableDDIOAdjust: true})
		must(err)
	}
	return p, victim
}

func measure(p *sim.Platform, x *workload.XMem) (mops, latNS float64) {
	p.Run(3e9)
	a := x.Stats()
	cycA := p.CoreCycles(1)
	p.Run(2e9)
	d := x.Stats().Sub(a)
	cyc := p.CoreCycles(1) - cycA
	if cyc > 0 {
		mops = float64(d.Ops) * p.Cfg.FreqGHz * 1e9 / float64(cyc) / 1e6
	}
	return mops, d.AvgLatCycles() / p.Cfg.FreqGHz
}

func main() {
	ways := 11
	fmt.Println("victim: 8MB random-read X-Mem with two 'dedicated' LLC ways")
	fmt.Println("background: l3fwd at 1.5KB line rate (DDIO on the top two ways)")
	fmt.Println()

	p, x := build(cache.ContiguousMask(3, 2), false)
	mops, lat := measure(p, x)
	fmt.Printf("%-34s %6.2f Mops/s  %6.1f ns\n", "ways 3-4 (truly dedicated):", mops, lat)

	p, x = build(cache.ContiguousMask(ways-2, 2), false)
	mops, lat = measure(p, x)
	fmt.Printf("%-34s %6.2f Mops/s  %6.1f ns   <- the latent contender\n",
		"ways 9-10 (the DDIO ways):", mops, lat)

	p, x = build(cache.ContiguousMask(ways-2, 2), true)
	mops, lat = measure(p, x)
	fmt.Printf("%-34s %6.2f Mops/s  %6.1f ns   <- IAT shuffles the victim away\n",
		"ways 9-10 + IAT:", mops, lat)
	fmt.Printf("\nvictim's final mask under IAT: %v (DDIO mask %v)\n",
		p.RDT.CLOSMask(2), p.RDT.DDIOMask())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
