// Leaky DMA demo (Sec. III-A of the paper): when the in-flight inbound
// footprint (Rx ring entries x packet size) outgrows DDIO's two default LLC
// ways, inbound lines start write-allocating — evicting unconsumed packets
// to memory and burning memory bandwidth. Shrinking the ring (the ResQ
// remedy) fixes the leak but collapses small-packet throughput.
//
//	go run ./examples/leakydma
package main

import (
	"fmt"
	"log"

	"iatsim/internal/cache"
	"iatsim/internal/nic"
	"iatsim/internal/pkt"
	"iatsim/internal/sim"
	"iatsim/internal/tgen"
	"iatsim/internal/workload"
)

func run(pktSize, ringEntries int) {
	p := sim.NewPlatform(sim.XeonGold6140(100))
	dev := p.AddDevice(nic.Config{Name: "nic0", RxEntries: ringEntries, VFs: 1})
	vf := dev.VF(0)
	vf.ConsumerCore = 0
	fwd := workload.NewTestPMD(vf)
	if err := p.RDT.SetCLOSMask(1, cache.ContiguousMask(0, 2)); err != nil {
		log.Fatal(err)
	}
	if err := p.AddTenant(&sim.Tenant{
		Name: "fwd", Cores: []int{0}, CLOS: 1,
		Priority: sim.PerformanceCritical, IsIO: true,
		Workers: []sim.Worker{fwd},
	}); err != nil {
		log.Fatal(err)
	}
	rate := tgen.LineRatePPS(40, pktSize)
	if rate > 5e6 {
		rate = 5e6 // keep the single core ahead of arrivals
	}
	g := tgen.NewGenerator(p.GeneratorRate(rate), pktSize, pkt.NewFlowSet(16, 0, 3), 42)
	p.AttachGenerator(g, dev, 0)

	p.Run(400e6) // warm the posted-buffer rotation
	warmLLC := p.Hier.LLC().TotalStats()
	warmMem := p.Mem.Stats()
	p.Run(600e6)
	llc := p.Hier.LLC().TotalStats()
	mem := p.Mem.Stats().Sub(warmMem)
	hits := llc.DDIOHits - warmLLC.DDIOHits
	miss := llc.DDIOMisses - warmLLC.DDIOMisses
	footprint := float64(ringEntries*pktSize) / (1 << 20)
	fmt.Printf("%6dB x %4d-entry ring (%5.1fMB in flight): "+
		"DDIO miss ratio %5.1f%%  mem traffic %6.1f MB/s  drops %d\n",
		pktSize, ringEntries, footprint,
		100*float64(miss)/float64(hits+miss),
		float64(mem.Total())/0.6/1e6*100, // unscale
		vf.Stats.RxDrops)
}

func main() {
	fmt.Println("DDIO default capacity: 2 of 11 ways = 4.5MB")
	fmt.Println("\nLarge packets leak once the ring footprint presses the DDIO ways:")
	for _, size := range []int{64, 512, 1500} {
		run(size, 1024)
	}
	fmt.Println("\nShrinking the ring (ResQ-style) stops the leak at 1.5KB:")
	for _, ring := range []int{1024, 256, 64} {
		run(1500, ring)
	}
	fmt.Println("\n...but costs small-packet throughput under bursty load (see cmd/rfc2544).")
}
