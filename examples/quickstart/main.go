// Quickstart: assemble a minimal platform — one line-rate forwarding tenant
// and one cache-hungry batch tenant — attach the IAT daemon, and watch it
// size the DDIO ways and shuffle the LLC allocation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"iatsim/internal/bridge"
	"iatsim/internal/cache"
	"iatsim/internal/core"
	"iatsim/internal/nic"
	"iatsim/internal/pkt"
	"iatsim/internal/sim"
	"iatsim/internal/tgen"
	"iatsim/internal/workload"
)

func main() {
	// A scaled-down Xeon Gold 6140 (Table I of the paper). Scale=100
	// divides packet rates and cycle budgets equally, so contention
	// behaviour is preserved while simulation stays cheap.
	p := sim.NewPlatform(sim.XeonGold6140(100))

	// A 40GbE NIC whose single VF is polled by core 0.
	dev := p.AddDevice(nic.Config{Name: "nic0", VFs: 1})
	vf := dev.VF(0)
	vf.ConsumerCore = 0

	// Tenant 1: a DPDK forwarder (performance-critical, networking).
	fwd := workload.NewTestPMD(vf)
	if err := p.RDT.SetCLOSMask(1, cache.ContiguousMask(0, 2)); err != nil {
		log.Fatal(err)
	}
	must(p.AddTenant(&sim.Tenant{
		Name: "forwarder", Cores: []int{0}, CLOS: 1,
		Priority: sim.PerformanceCritical, IsIO: true,
		Workers: []sim.Worker{fwd},
	}))

	// Tenant 2: an 8MB random-read batch job (best-effort).
	batch := workload.NewXMem(p.Alloc, 8<<20, 8<<20, 1)
	if err := p.RDT.SetCLOSMask(2, cache.ContiguousMask(2, 2)); err != nil {
		log.Fatal(err)
	}
	must(p.AddTenant(&sim.Tenant{
		Name: "batch", Cores: []int{1}, CLOS: 2,
		Priority: sim.BestEffort,
		Workers:  []sim.Worker{batch},
	}))

	// MTU-size traffic at line rate: the classic Leaky DMA trigger.
	flows := pkt.NewFlowSet(16, 0, 7)
	gen := tgen.NewGenerator(p.GeneratorRate(tgen.LineRatePPS(40, 1500)), 1500, flows, 42)
	p.AttachGenerator(gen, dev, 0)

	// The IAT daemon, observing and programming the machine through the
	// same pqos/MSR-shaped interface the paper's artifact uses.
	params := core.DefaultParams()
	params.IntervalNS = 0.5e9
	params.ThresholdMissLowPerSec /= p.Cfg.Scale
	daemon, err := bridge.NewIAT(p, params, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	daemon.OnIteration = func(it core.IterationInfo) {
		fmt.Printf("[%5.1fs] state=%-10s ddio=%v action=%s\n",
			it.NowNS/1e9, it.State, it.DDIOMask, it.Action)
	}

	p.Run(8e9) // 8 simulated seconds

	st := p.Hier.LLC().TotalStats()
	fmt.Printf("\nforwarded %d packets (%d drops)\n", vf.Stats.TxPackets, vf.Stats.RxDrops)
	fmt.Printf("DDIO: %d write updates, %d write allocates\n", st.DDIOHits, st.DDIOMisses)
	fmt.Printf("batch tenant: %.1fM random reads\n", float64(batch.Stats().Ops)/1e6)
	fmt.Printf("final DDIO mask %v, batch mask %v\n", p.RDT.DDIOMask(), p.RDT.CLOSMask(2))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
