// Storage demo: the Leaky DMA problem is not a networking exclusive. An
// SPDK-style polled storage server keeping 64 x 128KB NVMe reads in flight
// has an 8MB inbound DMA footprint — far beyond DDIO's two default ways —
// so completed blocks leak to memory before the server consumes them. IAT
// sees the same chip-wide DDIO miss counters it watches for NICs and grows
// the DDIO allocation.
//
//	go run ./examples/storage
package main

import (
	"fmt"
	"log"

	"iatsim/internal/bridge"
	"iatsim/internal/cache"
	"iatsim/internal/core"
	"iatsim/internal/nvme"
	"iatsim/internal/sim"
	"iatsim/internal/workload"
)

func run(iat bool) {
	p := sim.NewPlatform(sim.XeonGold6140(100))
	cfg := nvme.DefaultConfig("ssd0")
	cfg.BandwidthGBps /= p.Cfg.Scale
	dev := nvme.New(cfg, 1, p.DDIO, p.Alloc)
	dev.QP(0).ConsumerCore = 0
	p.AddMicrotickHook(dev.Tick)

	srv := workload.NewSPDKServer(dev, 0, 64, 128<<10, p.Alloc, 7)
	if err := p.RDT.SetCLOSMask(1, cache.ContiguousMask(0, 2)); err != nil {
		log.Fatal(err)
	}
	if err := p.AddTenant(&sim.Tenant{
		Name: "spdk", Cores: []int{0}, CLOS: 1,
		Priority: sim.PerformanceCritical, IsIO: true,
		Workers: []sim.Worker{srv},
	}); err != nil {
		log.Fatal(err)
	}
	if iat {
		params := core.DefaultParams()
		params.IntervalNS = 0.2e9
		params.ThresholdMissLowPerSec /= p.Cfg.Scale
		if _, err := bridge.NewIAT(p, params, core.Options{}); err != nil {
			log.Fatal(err)
		}
	}
	p.Run(2.5e9)
	llcA := p.Hier.LLC().TotalStats()
	memA := p.Mem.Stats()
	opsA := srv.Stats().Ops
	p.Run(1.5e9)
	llc := p.Hier.LLC().TotalStats()
	memT := p.Mem.Stats().Sub(memA).Total()
	mode := "baseline"
	if iat {
		mode = "IAT     "
	}
	miss := llc.DDIOMisses - llcA.DDIOMisses
	hits := llc.DDIOHits - llcA.DDIOHits
	fmt.Printf("%s: %6.0f IOPS  DDIO miss ratio %5.1f%%  mem %5.2f GB/s  ddio ways %d\n",
		mode, float64(srv.Stats().Ops-opsA)/1.5*p.Cfg.Scale,
		100*float64(miss)/float64(hits+miss),
		float64(memT)/1.5e9*p.Cfg.Scale, p.RDT.DDIOMask().Count())
}

func main() {
	fmt.Println("SPDK server, 64 x 128KB NVMe reads in flight (8MB DMA footprint):")
	run(false)
	run(true)
}
