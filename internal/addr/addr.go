// Package addr models the simulated physical address space.
//
// Every entity in the platform simulation — NIC descriptor rings, packet
// buffers, flow tables, key-value stores, benchmark working sets — owns one
// or more Regions carved out of a single flat address space by an Allocator.
// Addresses are never dereferenced; they exist only so the cache hierarchy
// can map them to slices, sets and tags exactly as real physical addresses
// would be.
package addr

import "fmt"

// LineSize is the cache line size in bytes. The whole simulation is
// line-granular: all addresses handed to the cache hierarchy are expected to
// be line-aligned (the hierarchy masks off the low bits regardless).
const LineSize = 64

// LineShift is log2(LineSize).
const LineShift = 6

// Region is a contiguous range [Base, Base+Size) of simulated physical
// memory.
type Region struct {
	Base uint64 // first byte address, line-aligned
	Size uint64 // length in bytes
}

// End returns the first address past the region.
func (r Region) End() uint64 { return r.Base + r.Size }

// Lines returns the number of cache lines the region spans.
func (r Region) Lines() int { return int(r.Size / LineSize) }

// Line returns the address of the i-th cache line of the region. The index
// is taken modulo the region length so callers can stride through a region
// cyclically without bounds bookkeeping.
func (r Region) Line(i int) uint64 {
	n := r.Lines()
	if n == 0 {
		return r.Base
	}
	i %= n
	if i < 0 {
		i += n
	}
	return r.Base + uint64(i)*LineSize
}

// At returns the line-aligned address at byte offset off into the region,
// wrapping modulo the region size.
func (r Region) At(off uint64) uint64 {
	if r.Size == 0 {
		return r.Base
	}
	off %= r.Size
	return (r.Base + off) &^ (LineSize - 1)
}

// Contains reports whether address a falls inside the region.
func (r Region) Contains(a uint64) bool { return a >= r.Base && a < r.End() }

// String implements fmt.Stringer.
func (r Region) String() string {
	return fmt.Sprintf("[%#x,%#x) %dB", r.Base, r.End(), r.Size)
}

// Allocator hands out non-overlapping Regions by bump allocation. The zero
// value is not ready for use; construct with NewAllocator.
type Allocator struct {
	next uint64
	base uint64
}

// NewAllocator returns an allocator whose first region will start at base
// (rounded up to a line boundary).
func NewAllocator(base uint64) *Allocator {
	base = (base + LineSize - 1) &^ (LineSize - 1)
	return &Allocator{next: base, base: base}
}

// Alloc carves a region of the given size (rounded up to whole lines) out of
// the address space, aligned to align bytes (0 or 1 means line alignment;
// align must be a power of two otherwise).
func (a *Allocator) Alloc(size, align uint64) Region {
	if align < LineSize {
		align = LineSize
	}
	if align&(align-1) != 0 {
		panic(fmt.Sprintf("addr: alignment %d is not a power of two", align))
	}
	size = (size + LineSize - 1) &^ (LineSize - 1)
	start := (a.next + align - 1) &^ (align - 1)
	a.next = start + size
	return Region{Base: start, Size: size}
}

// Allocated returns the total number of bytes handed out so far, including
// alignment padding.
func (a *Allocator) Allocated() uint64 { return a.next - a.base }
