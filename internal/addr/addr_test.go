package addr

import (
	"testing"
	"testing/quick"
)

func TestAllocatorNonOverlap(t *testing.T) {
	al := NewAllocator(1 << 20)
	a := al.Alloc(4096, 0)
	b := al.Alloc(100, 0)
	c := al.Alloc(1<<20, 4096)
	regions := []Region{a, b, c}
	for i := range regions {
		for j := i + 1; j < len(regions); j++ {
			if regions[i].Contains(regions[j].Base) || regions[j].Contains(regions[i].Base) {
				t.Fatalf("regions %d and %d overlap: %v %v", i, j, regions[i], regions[j])
			}
		}
	}
}

func TestAllocatorAlignment(t *testing.T) {
	al := NewAllocator(0)
	al.Alloc(65, 0) // forces next allocation off-alignment
	r := al.Alloc(128, 4096)
	if r.Base%4096 != 0 {
		t.Fatalf("region base %#x not 4KB aligned", r.Base)
	}
}

func TestAllocatorRoundsToLines(t *testing.T) {
	al := NewAllocator(0)
	r := al.Alloc(1, 0)
	if r.Size != LineSize {
		t.Fatalf("size = %d, want %d", r.Size, LineSize)
	}
}

func TestAllocatorBadAlignmentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-power-of-two alignment")
		}
	}()
	NewAllocator(0).Alloc(64, 96)
}

func TestRegionLineWraps(t *testing.T) {
	r := Region{Base: 0x1000, Size: 4 * LineSize}
	if r.Line(0) != 0x1000 {
		t.Errorf("Line(0) = %#x", r.Line(0))
	}
	if r.Line(4) != r.Line(0) {
		t.Errorf("Line(4) should wrap to Line(0)")
	}
	if r.Line(-1) != r.Line(3) {
		t.Errorf("negative index should wrap from the end")
	}
}

func TestRegionAt(t *testing.T) {
	r := Region{Base: 0x1000, Size: 256}
	if got := r.At(70); got != 0x1040 {
		t.Errorf("At(70) = %#x, want line-aligned 0x1040", got)
	}
	if got := r.At(300); got != r.At(300%256) {
		t.Errorf("At should wrap modulo size")
	}
}

func TestRegionContains(t *testing.T) {
	r := Region{Base: 0x1000, Size: 128}
	if !r.Contains(0x1000) || !r.Contains(0x107F) {
		t.Error("boundary addresses should be contained")
	}
	if r.Contains(0x1080) || r.Contains(0xFFF) {
		t.Error("outside addresses should not be contained")
	}
}

func TestRegionEmptyEdges(t *testing.T) {
	var r Region
	if r.Lines() != 0 {
		t.Errorf("empty region Lines = %d", r.Lines())
	}
	if r.Line(5) != r.Base || r.At(10) != r.Base {
		t.Error("empty region accessors should return Base")
	}
}

// Property: any allocation sequence yields line-aligned, strictly
// increasing, non-overlapping regions.
func TestAllocatorProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		al := NewAllocator(1 << 30)
		var prev Region
		for _, s := range sizes {
			r := al.Alloc(uint64(s)+1, 0)
			if r.Base%LineSize != 0 || r.Size%LineSize != 0 {
				return false
			}
			if prev.Size != 0 && r.Base < prev.End() {
				return false
			}
			prev = r
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAllocated(t *testing.T) {
	al := NewAllocator(0)
	al.Alloc(64, 0)
	al.Alloc(64, 0)
	if al.Allocated() != 128 {
		t.Fatalf("Allocated = %d", al.Allocated())
	}
}
