// Package baseline implements the comparison points of the paper's
// evaluation (Sec. VI-B):
//
//   - Static: the default configuration — two DDIO ways and whatever CAT
//     masks the operator programmed, never adjusted. (No controller at all;
//     provided here only as documentation.)
//   - Core-only: a dynamic core-side LLC allocator with no I/O awareness —
//     it grows a tenant that demands cache into "idle" ways without knowing
//     DDIO lives there, and never shuffles tenants against DDIO (the
//     paper's footnote 4 obtains it by disabling IAT's I/O Demand state and
//     shuffling).
//   - I/O-iso: Core-only plus hard exclusion of the DDIO ways from every
//     tenant mask, as proposed by prior work the paper argues against
//     (shrinking best-effort tenants, and overlapping tenants, when the
//     remaining ways run out).
//   - ResQ: not a controller but a provisioning rule — size the Rx rings so
//     all buffers fit in the default DDIO LLC capacity (Sec. III-A).
package baseline

import (
	"math"

	"iatsim/internal/cache"
	"iatsim/internal/core"
	"iatsim/internal/rdt"
)

// Mode selects the baseline behaviour.
type Mode int

// Modes.
const (
	// CoreOnly adjusts tenant allocations with no I/O awareness.
	CoreOnly Mode = iota
	// IOIso is CoreOnly with DDIO's ways excluded from tenant masks.
	IOIso
)

// Config tunes a baseline controller.
type Config struct {
	Mode       Mode
	IntervalNS float64
	// GrowThreshold is the relative LLC-miss increase that triggers a
	// one-way grant.
	GrowThreshold float64
	// MissRateFloor gates growth to tenants actually missing.
	MissRateFloor float64
}

// DefaultConfig mirrors IAT's cadence so comparisons are fair.
func DefaultConfig(mode Mode) Config {
	return Config{Mode: mode, IntervalNS: 1e9, GrowThreshold: 0.10, MissRateFloor: 0.05}
}

// Controller is a Core-only / I/O-iso dynamic allocator. It observes the
// machine through the same core.System interface the IAT daemon uses.
type Controller struct {
	sys core.System
	cfg Config

	groups []*core.Group
	cores  map[int][]int
	order  []int // CLOS ids, bottom-up packing order

	lastNS      float64
	prevCum     map[int]rdt.CoreCounters
	prevCumTime float64
	prevMissPS  map[int]float64
	lastDDIO    cache.WayMask
}

// New builds a baseline controller over sys.
func New(sys core.System, cfg Config) *Controller {
	if cfg.IntervalNS == 0 {
		cfg.IntervalNS = 1e9
	}
	if cfg.GrowThreshold == 0 {
		cfg.GrowThreshold = 0.10
	}
	c := &Controller{sys: sys, cfg: cfg, lastNS: -1e18}
	c.init()
	return c
}

func (c *Controller) init() {
	byCLOS := map[int]*core.Group{}
	c.cores = map[int][]int{}
	for _, t := range c.sys.Tenants() {
		g := byCLOS[t.CLOS]
		if g == nil {
			g = &core.Group{CLOS: t.CLOS, Priority: t.Priority}
			byCLOS[t.CLOS] = g
			c.groups = append(c.groups, g)
			c.order = append(c.order, t.CLOS)
		}
		if t.Priority == core.PC && g.Priority == core.BE {
			g.Priority = core.PC
		}
		if t.IO {
			g.IO = true
		}
		c.cores[t.CLOS] = append(c.cores[t.CLOS], t.Cores...)
	}
	for _, g := range c.groups {
		g.Width = c.sys.CLOSMask(g.CLOS).Count()
	}
}

func (c *Controller) group(clos int) *core.Group {
	for _, g := range c.groups {
		if g.CLOS == clos {
			return g
		}
	}
	return nil
}

// Tick drives the controller (sim.Controller compatible).
func (c *Controller) Tick(nowNS float64) {
	if nowNS-c.lastNS < c.cfg.IntervalNS {
		return
	}
	c.lastNS = nowNS
	c.iterate(nowNS)
}

func (c *Controller) iterate(nowNS float64) {
	// I/O-iso tracks the DDIO register: if the mask changed (e.g. the
	// operator expanded DDIO), tenants are re-packed out of its way.
	if c.cfg.Mode == IOIso {
		if m := c.sys.DDIOMask(); m != c.lastDDIO {
			c.lastDDIO = m
			c.apply()
		}
	}
	cum := map[int]rdt.CoreCounters{}
	for _, g := range c.groups {
		var cc rdt.CoreCounters
		for _, core := range c.cores[g.CLOS] {
			cc.Add(c.sys.ReadCore(core))
		}
		cum[g.CLOS] = cc
	}
	if c.prevCum == nil {
		c.prevCum, c.prevCumTime = cum, nowNS
		return
	}
	dt := (nowNS - c.prevCumTime) / 1e9
	if dt <= 0 {
		dt = 1
	}
	missPS := map[int]float64{}
	missRate := map[int]float64{}
	refsPS := map[int]float64{}
	for clos, cc := range cum {
		d := cc.Sub(c.prevCum[clos])
		missPS[clos] = float64(d.LLCMisses) / dt
		missRate[clos] = d.MissRate()
		refsPS[clos] = float64(d.LLCRefs) / dt
	}
	c.prevCum, c.prevCumTime = cum, nowNS
	if c.prevMissPS == nil {
		c.prevMissPS = missPS
		return
	}
	prev := c.prevMissPS
	c.prevMissPS = missPS

	// Pick the group with the strongest miss growth.
	var grow *core.Group
	best := c.cfg.GrowThreshold
	for _, g := range c.groups {
		p := prev[g.CLOS]
		if p <= 0 {
			p = 1e4
		}
		rel := (missPS[g.CLOS] - p) / p
		if rel > best && missRate[g.CLOS] > c.cfg.MissRateFloor {
			grow, best = g, rel
		}
	}
	if grow == nil {
		return
	}
	limit := c.limit()
	total := core.TotalWidth(c.groups)
	switch {
	case total < limit:
		grow.Width++
	case c.cfg.Mode == IOIso:
		// Steal a way from the lowest-missing best-effort group.
		var victim *core.Group
		for _, g := range c.groups {
			if g == grow || g.Width <= 1 || g.Priority != core.BE {
				continue
			}
			if victim == nil || missRate[g.CLOS] < missRate[victim.CLOS] {
				victim = g
			}
		}
		if victim == nil {
			return
		}
		victim.Width--
		grow.Width++
	default:
		return // Core-only: no idle ways, nothing to do
	}
	// The grower moves to the top of the packing order so its new ways
	// come from the idle region.
	for i, clos := range c.order {
		if clos == grow.CLOS {
			c.order = append(append(c.order[:i:i], c.order[i+1:]...), clos)
			break
		}
	}
	c.apply()
}

// limit is the highest way index + 1 tenants may use: the full LLC for
// Core-only (unaware that DDIO sits on top), everything below the current
// DDIO mask for I/O-iso.
func (c *Controller) limit() int {
	n := c.sys.NumWays()
	if c.cfg.Mode == IOIso {
		n -= c.sys.DDIOMask().Count()
	}
	return n
}

// apply packs groups bottom-up in c.order, clamping overflow into overlap
// (I/O-iso's tenant sharing when space runs out).
func (c *Controller) apply() {
	limit := c.limit()
	pos := 0
	for _, clos := range c.order {
		g := c.group(clos)
		if g == nil {
			continue
		}
		start := pos
		if start+g.Width > limit {
			start = limit - g.Width
			if start < 0 {
				start = 0
			}
		}
		m := cache.ContiguousMask(start, minInt(g.Width, c.sys.NumWays()))
		if c.sys.CLOSMask(clos) != m {
			_ = c.sys.SetCLOSMask(clos, m)
		}
		pos = start + g.Width
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Widths returns the current per-CLOS widths, sorted by CLOS (for tests).
func (c *Controller) Widths() map[int]int {
	out := map[int]int{}
	for _, g := range c.groups {
		out[g.CLOS] = g.Width
	}
	return out
}

// Order returns the packing order (CLOS ids, bottom-up).
func (c *Controller) Order() []int {
	return append([]int(nil), c.order...)
}

// ResQRingEntries implements ResQ's provisioning rule (Sec. III-A): size
// every Rx ring so the sum of all ring buffers fits the default DDIO LLC
// capacity. ddioBytes is the DDIO partition size, rings the total ring
// count, bufBytes the per-entry buffer footprint. The result is rounded
// down to a power of two and floored at 64 entries.
func ResQRingEntries(ddioBytes uint64, rings, bufBytes int) int {
	if rings <= 0 || bufBytes <= 0 {
		return 64
	}
	per := float64(ddioBytes) / float64(rings) / float64(bufBytes)
	e := int(math.Pow(2, math.Floor(math.Log2(per))))
	if e < 64 {
		e = 64
	}
	return e
}
