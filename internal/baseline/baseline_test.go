package baseline

import (
	"testing"

	"iatsim/internal/cache"
	"iatsim/internal/core"
	"iatsim/internal/rdt"
)

// mockSys mirrors the daemon-test mock (duplicated here to keep test
// packages self-contained).
type mockSys struct {
	tenants []core.TenantInfo
	ways    int
	masks   map[int]cache.WayMask
	ddio    cache.WayMask
	cores   map[int]rdt.CoreCounters
}

func newMockSys() *mockSys {
	m := &mockSys{
		ways:  11,
		ddio:  cache.ContiguousMask(9, 2),
		masks: map[int]cache.WayMask{},
		cores: map[int]rdt.CoreCounters{},
	}
	m.tenants = []core.TenantInfo{
		{Name: "a", Cores: []int{0}, CLOS: 1, Priority: core.PC},
		{Name: "b", Cores: []int{1}, CLOS: 2, Priority: core.BE},
		{Name: "c", Cores: []int{2}, CLOS: 3, Priority: core.BE},
	}
	m.masks[1] = cache.ContiguousMask(0, 2)
	m.masks[2] = cache.ContiguousMask(2, 2)
	m.masks[3] = cache.ContiguousMask(4, 2)
	return m
}

func (m *mockSys) Tenants() []core.TenantInfo      { return m.tenants }
func (m *mockSys) NumWays() int                    { return m.ways }
func (m *mockSys) ReadCore(c int) rdt.CoreCounters { return m.cores[c] }
func (m *mockSys) ReadDDIO() rdt.DDIOCounters      { return rdt.DDIOCounters{} }
func (m *mockSys) CLOSMask(clos int) cache.WayMask { return m.masks[clos] }
func (m *mockSys) DDIOMask() cache.WayMask         { return m.ddio }
func (m *mockSys) SetCLOSMask(c int, w cache.WayMask) error {
	m.masks[c] = w
	return nil
}
func (m *mockSys) SetDDIOMask(w cache.WayMask) error {
	m.ddio = w
	return nil
}

func (m *mockSys) advance(core int, refs, misses uint64) {
	c := m.cores[core]
	c.Instructions += 1000
	c.Cycles += 2000
	c.LLCRefs += refs
	c.LLCMisses += misses
	m.cores[core] = c
}

func drive(c *Controller, m *mockSys, steps int, missFor map[int]func(step int) uint64) {
	now := 0.0
	for s := 0; s < steps; s++ {
		for coreID := 0; coreID < 3; coreID++ {
			miss := uint64(10)
			if f, ok := missFor[coreID]; ok {
				miss = f(s)
			}
			m.advance(coreID, miss*2+100, miss)
		}
		now += 1e9
		c.Tick(now)
	}
}

func TestCoreOnlyGrowsIntoIdleWays(t *testing.T) {
	m := newMockSys()
	c := New(m, DefaultConfig(CoreOnly))
	// Tenant "a" (core 0) develops a growing miss stream.
	drive(c, m, 8, map[int]func(int) uint64{
		0: func(s int) uint64 { return uint64(100_000 * (s + 1)) },
	})
	if got := m.masks[1].Count(); got <= 2 {
		t.Fatalf("demanding tenant stayed at %d ways", got)
	}
	// Core-only is I/O-unaware: the grower may extend into the DDIO
	// ways; verify it grew from the top (idle region).
	if m.masks[1].Highest() < 6 {
		t.Fatalf("growth did not come from the idle top: %v", m.masks[1])
	}
}

func TestCoreOnlyStopsWhenFull(t *testing.T) {
	m := newMockSys()
	c := New(m, DefaultConfig(CoreOnly))
	drive(c, m, 20, map[int]func(int) uint64{
		0: func(s int) uint64 { return uint64(200_000 * (s + 1)) },
	})
	total := 0
	for _, g := range c.groups {
		total += g.Width
	}
	if total > 11 {
		t.Fatalf("total widths %d exceed the LLC", total)
	}
}

func TestIOIsoExcludesDDIOWays(t *testing.T) {
	m := newMockSys()
	c := New(m, DefaultConfig(IOIso))
	drive(c, m, 10, map[int]func(int) uint64{
		0: func(s int) uint64 { return uint64(150_000 * (s + 1)) },
	})
	for clos, mask := range m.masks {
		if mask.Overlaps(m.ddio) {
			t.Fatalf("clos %d mask %v overlaps DDIO %v under I/O-iso", clos, mask, m.ddio)
		}
	}
}

func TestIOIsoStealsFromBestEffort(t *testing.T) {
	m := newMockSys()
	// Pre-fill the non-DDIO region: widths 3+3+3 = 9 = the whole region.
	m.masks[1] = cache.ContiguousMask(0, 3)
	m.masks[2] = cache.ContiguousMask(3, 3)
	m.masks[3] = cache.ContiguousMask(6, 3)
	c := New(m, DefaultConfig(IOIso))
	drive(c, m, 8, map[int]func(int) uint64{
		0: func(s int) uint64 { return uint64(150_000 * (s + 1)) },
	})
	if m.masks[1].Count() <= 3 {
		t.Fatalf("PC tenant did not grow: %v", m.masks[1])
	}
	if m.masks[2].Count() >= 3 && m.masks[3].Count() >= 3 {
		t.Fatal("no best-effort tenant was shrunk")
	}
}

func TestIOIsoTracksExternalDDIOChange(t *testing.T) {
	m := newMockSys()
	c := New(m, DefaultConfig(IOIso))
	drive(c, m, 3, nil) // settle
	m.ddio = cache.ContiguousMask(7, 4)
	drive(c, m, 2, nil)
	for clos, mask := range m.masks {
		if mask.Overlaps(m.ddio) {
			t.Fatalf("clos %d mask %v overlaps the grown DDIO %v", clos, mask, m.ddio)
		}
	}
}

func TestQuietSystemUnchanged(t *testing.T) {
	m := newMockSys()
	before := map[int]cache.WayMask{}
	for k, v := range m.masks {
		before[k] = v
	}
	c := New(m, DefaultConfig(CoreOnly))
	drive(c, m, 6, nil)
	for clos, mask := range m.masks {
		if before[clos] != mask {
			t.Fatalf("quiet system reprogrammed clos %d: %v -> %v", clos, before[clos], mask)
		}
	}
}

func TestResQRingEntries(t *testing.T) {
	// 4.5MB DDIO capacity, 2 rings of 2KB buffers: 1152 entries -> 1024.
	if got := ResQRingEntries(4_718_592, 2, 2048); got != 1024 {
		t.Fatalf("entries = %d", got)
	}
	// 20 rings: 115 entries -> floor at 64.
	if got := ResQRingEntries(4_718_592, 20, 2048); got != 64 {
		t.Fatalf("entries = %d", got)
	}
	// Degenerate inputs floor at 64.
	if got := ResQRingEntries(0, 0, 0); got != 64 {
		t.Fatalf("entries = %d", got)
	}
}

func TestWidthsAndOrderAccessors(t *testing.T) {
	m := newMockSys()
	c := New(m, DefaultConfig(CoreOnly))
	w := c.Widths()
	if w[1] != 2 || w[2] != 2 || w[3] != 2 {
		t.Fatalf("widths = %v", w)
	}
	if len(c.Order()) != 3 {
		t.Fatalf("order = %v", c.Order())
	}
}
