// Package bridge connects the IAT daemon (internal/core) to the simulated
// platform (internal/sim): it implements core.System over the platform's
// RDT controller and tenant registry, exactly the role the pqos library +
// msr kernel module + tenant file play in the paper's real deployment.
package bridge

import (
	"iatsim/internal/cache"
	"iatsim/internal/core"
	"iatsim/internal/rdt"
	"iatsim/internal/sim"
)

// System adapts a sim.Platform to core.System.
type System struct {
	p *sim.Platform
}

var _ core.System = (*System)(nil)

// NewSystem wraps p.
func NewSystem(p *sim.Platform) *System { return &System{p: p} }

// Tenants implements core.System.
func (s *System) Tenants() []core.TenantInfo {
	ts := s.p.Tenants()
	out := make([]core.TenantInfo, 0, len(ts))
	for _, t := range ts {
		out = append(out, core.TenantInfo{
			Name:     t.Name,
			Cores:    append([]int(nil), t.Cores...),
			CLOS:     t.CLOS,
			IO:       t.IsIO,
			Priority: priority(t.Priority),
		})
	}
	return out
}

func priority(p sim.Priority) core.Priority {
	switch p {
	case sim.PerformanceCritical:
		return core.PC
	case sim.Stack:
		return core.Stack
	default:
		return core.BE
	}
}

// NumWays implements core.System.
func (s *System) NumWays() int { return s.p.RDT.NumWays() }

// ReadCore implements core.System.
func (s *System) ReadCore(c int) rdt.CoreCounters { return s.p.RDT.ReadCore(c) }

// ReadDDIO implements core.System.
func (s *System) ReadDDIO() rdt.DDIOCounters { return s.p.RDT.ReadDDIO() }

// CLOSMask implements core.System.
func (s *System) CLOSMask(clos int) cache.WayMask { return s.p.RDT.CLOSMask(clos) }

// SetCLOSMask implements core.System.
func (s *System) SetCLOSMask(clos int, m cache.WayMask) error { return s.p.RDT.SetCLOSMask(clos, m) }

// DDIOMask implements core.System.
func (s *System) DDIOMask() cache.WayMask { return s.p.RDT.DDIOMask() }

// SetDDIOMask implements core.System.
func (s *System) SetDDIOMask(m cache.WayMask) error { return s.p.RDT.SetDDIOMask(m) }

// NewIAT builds an IAT daemon bound to the platform and registers it as a
// platform controller. It returns the daemon for tracing and inspection.
func NewIAT(p *sim.Platform, params core.Params, opts core.Options) (*core.Daemon, error) {
	d, err := core.NewDaemon(NewSystem(p), params, opts)
	if err != nil {
		return nil, err
	}
	p.AddController(d)
	return d, nil
}
