package bridge

import (
	"testing"

	"iatsim/internal/cache"
	"iatsim/internal/core"
	"iatsim/internal/sim"
)

// idle is a do-nothing worker.
type idle struct{}

func (idle) Run(*sim.Ctx) {}

func smallPlatform(t *testing.T) *sim.Platform {
	t.Helper()
	cfg := sim.XeonGold6140(100)
	cfg.Cores = 4
	cfg.Hier = cache.HierarchyConfig{
		Cores: 4,
		L1:    cache.LevelConfig{SizeBytes: 4 << 10, Ways: 4, HitCycles: 4},
		L2:    cache.LevelConfig{SizeBytes: 32 << 10, Ways: 8, HitCycles: 14},
		LLC:   cache.LLCConfig{Slices: 2, Ways: 8, SetsPerSlice: 256, HitCycles: 44},
	}
	return sim.NewPlatform(cfg)
}

func TestSystemMapsTenants(t *testing.T) {
	p := smallPlatform(t)
	if err := p.AddTenant(&sim.Tenant{
		Name: "a", Cores: []int{0, 1}, CLOS: 2,
		Priority: sim.Stack, IsIO: true,
		Workers: []sim.Worker{idle{}, idle{}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddTenant(&sim.Tenant{
		Name: "b", Cores: []int{2}, CLOS: 3,
		Priority: sim.PerformanceCritical,
		Workers:  []sim.Worker{idle{}},
	}); err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(p)
	ts := sys.Tenants()
	if len(ts) != 2 {
		t.Fatalf("tenants = %d", len(ts))
	}
	if ts[0].Priority != core.Stack || !ts[0].IO || ts[0].CLOS != 2 || len(ts[0].Cores) != 2 {
		t.Fatalf("tenant a = %+v", ts[0])
	}
	if ts[1].Priority != core.PC || ts[1].IO {
		t.Fatalf("tenant b = %+v", ts[1])
	}
}

func TestSystemRegisterPassThrough(t *testing.T) {
	p := smallPlatform(t)
	sys := NewSystem(p)
	if sys.NumWays() != 8 {
		t.Fatalf("ways = %d", sys.NumWays())
	}
	m := cache.ContiguousMask(1, 3)
	if err := sys.SetCLOSMask(4, m); err != nil {
		t.Fatal(err)
	}
	if sys.CLOSMask(4) != m || p.RDT.CLOSMask(4) != m {
		t.Fatal("CLOS mask did not pass through")
	}
	dm := cache.ContiguousMask(5, 3)
	if err := sys.SetDDIOMask(dm); err != nil {
		t.Fatal(err)
	}
	if sys.DDIOMask() != dm {
		t.Fatal("DDIO mask did not pass through")
	}
}

func TestSystemCountersLive(t *testing.T) {
	p := smallPlatform(t)
	sys := NewSystem(p)
	before := sys.ReadCore(0)
	p.Run(1e6)
	// No tenants: counters stay zero but reads must work.
	after := sys.ReadCore(0)
	if before.Instructions != 0 || after.Cycles != 0 {
		t.Fatalf("unexpected counters: %+v / %+v", before, after)
	}
	_ = sys.ReadDDIO()
}

func TestNewIATRegistersController(t *testing.T) {
	p := smallPlatform(t)
	if err := p.AddTenant(&sim.Tenant{
		Name: "a", Cores: []int{0}, CLOS: 1, Workers: []sim.Worker{idle{}},
	}); err != nil {
		t.Fatal(err)
	}
	params := core.DefaultParams()
	params.IntervalNS = 1e6
	d, err := NewIAT(p, params, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p.Run(5e6)
	// The daemon must have been ticked by the platform (first iterations
	// establish baselines; Iterations counts post-baseline passes).
	if d.State() != core.LowKeep {
		t.Fatalf("state = %v", d.State())
	}
	if total, _ := d.Iterations(); total == 0 {
		t.Fatal("daemon never iterated")
	}
}
