package cache

import "fmt"

// LineSize is the cache line size in bytes, fixed at 64 as on all modern
// Intel server parts.
const LineSize = 64

// LineShift is log2(LineSize).
const LineShift = 6

// LevelConfig describes one private cache level (L1D or L2).
type LevelConfig struct {
	SizeBytes int   // total capacity
	Ways      int   // associativity
	HitCycles int64 // access latency in core cycles
}

// Sets returns the number of sets implied by the configuration.
func (lc LevelConfig) Sets() int { return lc.SizeBytes / (LineSize * lc.Ways) }

// Validate checks that the level is well-formed.
func (lc LevelConfig) Validate() error {
	if lc.Ways <= 0 || lc.Ways > 32 {
		return fmt.Errorf("cache: level ways %d out of range", lc.Ways)
	}
	if lc.SizeBytes%(LineSize*lc.Ways) != 0 {
		return fmt.Errorf("cache: level size %d not divisible into %d-way sets", lc.SizeBytes, lc.Ways)
	}
	s := lc.Sets()
	if s&(s-1) != 0 {
		return fmt.Errorf("cache: level set count %d not a power of two", s)
	}
	return nil
}

// ReplacementPolicy selects the LLC's line replacement algorithm.
type ReplacementPolicy int

// Replacement policies.
const (
	// PolicySRRIP (the default) models the RRIP-family policies of
	// modern Intel LLCs: insertions start distant, demand hits do not
	// promote (the line's working copy moves to the private caches), so
	// data parked outside its owner's current CAT mask ages out under
	// allocation pressure.
	PolicySRRIP ReplacementPolicy = iota
	// PolicyLRU is textbook least-recently-used with promotion on every
	// hit. Under CAT it lets re-referenced lines squat indefinitely in
	// ways outside their owner's mask — a useful contrast when studying
	// how replacement policy interacts with way partitioning.
	PolicyLRU
)

// String implements fmt.Stringer.
func (p ReplacementPolicy) String() string {
	switch p {
	case PolicySRRIP:
		return "srrip"
	case PolicyLRU:
		return "lru"
	}
	return fmt.Sprintf("ReplacementPolicy(%d)", int(p))
}

// LLCConfig describes the shared last-level cache.
type LLCConfig struct {
	Slices       int   // number of NUCA slices (CHAs)
	Ways         int   // associativity of every slice
	SetsPerSlice int   // sets per slice
	HitCycles    int64 // load-to-use latency of an LLC hit in core cycles
	// Policy selects the replacement algorithm (default PolicySRRIP).
	Policy ReplacementPolicy
}

// SizeBytes returns the total LLC capacity.
func (c LLCConfig) SizeBytes() int { return c.Slices * c.Ways * c.SetsPerSlice * LineSize }

// WayBytes returns the capacity of a single way across all slices — the
// granularity at which CAT and the DDIO mask partition the cache.
func (c LLCConfig) WayBytes() int { return c.Slices * c.SetsPerSlice * LineSize }

// Validate checks that the LLC shape is well-formed.
func (c LLCConfig) Validate() error {
	if c.Slices <= 0 {
		return fmt.Errorf("cache: llc needs at least one slice, got %d", c.Slices)
	}
	if c.Ways <= 0 || c.Ways > 32 {
		return fmt.Errorf("cache: llc ways %d out of range", c.Ways)
	}
	if c.SetsPerSlice <= 0 || c.SetsPerSlice&(c.SetsPerSlice-1) != 0 {
		return fmt.Errorf("cache: llc sets per slice %d not a power of two", c.SetsPerSlice)
	}
	return nil
}

// HierarchyConfig bundles the three levels for a platform.
type HierarchyConfig struct {
	Cores int
	L1    LevelConfig
	L2    LevelConfig
	LLC   LLCConfig
}

// Validate checks all levels.
func (hc HierarchyConfig) Validate() error {
	if hc.Cores <= 0 {
		return fmt.Errorf("cache: need at least one core, got %d", hc.Cores)
	}
	if err := hc.L1.Validate(); err != nil {
		return fmt.Errorf("L1: %w", err)
	}
	if err := hc.L2.Validate(); err != nil {
		return fmt.Errorf("L2: %w", err)
	}
	return hc.LLC.Validate()
}

// XeonGold6140Hierarchy returns the cache shape of the paper's testbed CPU
// (Table I): 8-way 32KB L1D, 16-way 1MB L2, 11-way 24.75MB LLC split into 18
// slices.
func XeonGold6140Hierarchy(cores int) HierarchyConfig {
	return HierarchyConfig{
		Cores: cores,
		L1:    LevelConfig{SizeBytes: 32 << 10, Ways: 8, HitCycles: 4},
		L2:    LevelConfig{SizeBytes: 1 << 20, Ways: 16, HitCycles: 14},
		LLC: LLCConfig{
			Slices: 18,
			Ways:   11,
			// 24.75MB / 64B / 11 ways / 18 slices = 2048 sets per slice.
			SetsPerSlice: 2048,
			HitCycles:    44,
		},
	}
}
