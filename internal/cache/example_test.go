package cache_test

import (
	"fmt"

	"iatsim/internal/cache"
	"iatsim/internal/mem"
)

// ExampleWayMask shows the CAT capacity-bitmask helpers: the default DDIO
// allocation is the two highest ways of an 11-way LLC.
func ExampleWayMask() {
	ddio := cache.ContiguousMask(9, 2)
	tenant := cache.ContiguousMask(0, 3)
	fmt.Println(ddio)
	fmt.Println(ddio.Count(), ddio.Contiguous(), ddio.Overlaps(tenant))
	// Output:
	// 11000000000
	// 2 true false
}

// ExampleLLC_IOWrite demonstrates the DDIO semantics of Sec. II-B: the
// first inbound write allocates into the DDIO mask (a miss), the second
// updates the resident line (a hit).
func ExampleLLC_IOWrite() {
	llc := cache.NewLLC(cache.LLCConfig{Slices: 2, Ways: 8, SetsPerSlice: 64}, 1)
	ddio := cache.ContiguousMask(6, 2)

	hit1, _ := llc.IOWrite(0x1000, ddio)
	hit2, _ := llc.IOWrite(0x1000, ddio)
	st := llc.TotalStats()
	fmt.Println(hit1, hit2)
	fmt.Println("write allocates:", st.DDIOMisses, "write updates:", st.DDIOHits)
	// Output:
	// false true
	// write allocates: 1 write updates: 1
}

// ExampleHierarchy shows the latency ladder a demand access climbs.
func ExampleHierarchy() {
	mc := mem.NewController(mem.Config{})
	mc.BeginEpoch(1e9)
	h := cache.NewHierarchy(cache.HierarchyConfig{
		Cores: 1,
		L1:    cache.LevelConfig{SizeBytes: 32 << 10, Ways: 8, HitCycles: 4},
		L2:    cache.LevelConfig{SizeBytes: 1 << 20, Ways: 16, HitCycles: 14},
		LLC:   cache.LLCConfig{Slices: 2, Ways: 8, SetsPerSlice: 256, HitCycles: 44},
	}, 2.3, mc)

	mask := cache.FullMask(8)
	cold := h.Access(0, 0x4000, false, mask)
	warm := h.Access(0, 0x4000, false, mask)
	fmt.Println(cold > 44, warm)
	// Output:
	// true 4
}
