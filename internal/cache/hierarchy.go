package cache

import (
	"iatsim/internal/mem"
)

// Hierarchy ties together the per-core private caches, the shared LLC and
// the memory controller, and translates every demand access into a latency
// in core cycles — the quantity the simulation's timing model charges
// against a core's cycle budget.
type Hierarchy struct {
	cfg HierarchyConfig
	l1  []*private
	l2  []*private
	llc *LLC
	mem *mem.Controller

	// cyclesPerNS converts memory latencies (ns) into core cycles.
	cyclesPerNS float64

	// remote marks cores that live on a second socket: every access
	// they make below their private caches crosses the socket
	// interconnect (Sec. VII of the paper: DDIO injects inbound data
	// into the device's local socket only, so remote consumers pay UPI
	// latency to reach it).
	remote    []bool
	upiCycles int64
}

// NewHierarchy builds the full hierarchy for cfg.Cores cores running at
// freqGHz, with memory behind mc.
func NewHierarchy(cfg HierarchyConfig, freqGHz float64, mc *mem.Controller) *Hierarchy {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	h := &Hierarchy{
		cfg:         cfg,
		l1:          make([]*private, cfg.Cores),
		l2:          make([]*private, cfg.Cores),
		llc:         NewLLC(cfg.LLC, cfg.Cores),
		mem:         mc,
		cyclesPerNS: freqGHz,
	}
	for i := 0; i < cfg.Cores; i++ {
		h.l1[i] = newPrivate(cfg.L1)
		h.l2[i] = newPrivate(cfg.L2)
	}
	h.remote = make([]bool, cfg.Cores)
	return h
}

// SetRemote marks core as residing on a remote socket, upiNS away from the
// socket holding the LLC, the memory, and the I/O devices. Pass upiNS=0 to
// keep a previously configured latency.
func (h *Hierarchy) SetRemote(core int, remote bool, upiNS float64) {
	h.remote[core] = remote
	if upiNS > 0 {
		h.upiCycles = int64(upiNS * h.cyclesPerNS)
	}
}

// IsRemote reports whether core was marked remote.
func (h *Hierarchy) IsRemote(core int) bool { return h.remote[core] }

// Config returns the hierarchy shape.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// LLC exposes the shared last-level cache (for the DDIO engine, the uncore
// PMU, and tests).
func (h *Hierarchy) LLC() *LLC { return h.llc }

// Mem exposes the memory controller.
func (h *Hierarchy) Mem() *mem.Controller { return h.mem }

// memCycles converts a memory latency in ns to core cycles.
func (h *Hierarchy) memCycles(ns float64) int64 {
	c := int64(ns * h.cyclesPerNS)
	if c < 1 {
		c = 1
	}
	return c
}

// llcEvict handles a (possibly dirty) LLC victim.
func (h *Hierarchy) llcEvict(v Victim) {
	if v.Valid && v.Dirty {
		h.mem.Write(LineSize)
	}
}

// l2Insert places line a into core's L2, spilling the L2 victim into the LLC
// (non-inclusive LLC keeps L2 victims).
func (h *Hierarchy) l2Insert(core int, a uint64, dirty bool, mask WayMask) {
	if v := h.l2[core].fill(a, dirty); v.Valid {
		if v.Dirty {
			h.llcEvict(h.llc.FillWriteback(v.Addr, mask))
		}
		// Clean L2 victims are dropped; a later demand re-reference
		// will find them in the LLC only if still resident there.
	}
}

// l1Insert places line a into core's L1, spilling the L1 victim into L2.
func (h *Hierarchy) l1Insert(core int, a uint64, dirty bool, mask WayMask) {
	if v := h.l1[core].fill(a, dirty); v.Valid && v.Dirty {
		if !h.l2[core].lookup(v.Addr, true) {
			h.l2Insert(core, v.Addr, true, mask)
		}
	}
}

// Access performs one demand load (write=false) or store (write=true) of the
// line holding address a on behalf of core, allocating in the LLC according
// to mask (the core's CAT mask). It returns the access latency in core
// cycles.
func (h *Hierarchy) Access(core int, a uint64, write bool, mask WayMask) int64 {
	a &^= LineSize - 1
	if h.l1[core].lookup(a, write) {
		return h.cfg.L1.HitCycles
	}
	if h.l2[core].lookup(a, write) {
		h.l1Insert(core, a, write, mask)
		return h.cfg.L2.HitCycles
	}
	var upi int64
	if h.remote[core] {
		// Below the private caches, a remote core crosses the socket
		// interconnect to reach the LLC/memory socket.
		upi = h.upiCycles
	}
	hit, v := h.llc.Access(core, a, write, mask)
	h.llcEvict(v)
	if hit {
		h.l2Insert(core, a, false, mask)
		h.l1Insert(core, a, write, mask)
		return h.cfg.LLC.HitCycles + upi
	}
	lat := h.memCycles(h.mem.Read(LineSize))
	h.l2Insert(core, a, false, mask)
	h.l1Insert(core, a, write, mask)
	return h.cfg.LLC.HitCycles + lat + upi
}

// InvalidatePrivate drops the line holding a from core's L1 and L2. The DMA
// engine calls this when the device overwrites a buffer the consuming core
// has cached, so the core's next read is forced down to the LLC where the
// fresh inbound data lives (the coherence protocol's invalidate-on-write).
func (h *Hierarchy) InvalidatePrivate(core int, a uint64) {
	a &^= LineSize - 1
	h.l1[core].invalidate(a)
	h.l2[core].invalidate(a)
}

// PrivateContains reports whether core's L1 or L2 holds the line at a.
// Intended for tests.
func (h *Hierarchy) PrivateContains(core int, a uint64) bool {
	a &^= LineSize - 1
	return h.l1[core].contains(a) || h.l2[core].contains(a)
}

// L1Stats returns (hits, misses) of core's L1D.
func (h *Hierarchy) L1Stats(core int) (hits, misses uint64) {
	return h.l1[core].hits, h.l1[core].misses
}

// L2Stats returns (hits, misses) of core's L2.
func (h *Hierarchy) L2Stats(core int) (hits, misses uint64) {
	return h.l2[core].hits, h.l2[core].misses
}
