package cache

import (
	"math/rand"
	"testing"

	"iatsim/internal/mem"
)

// testHierarchy builds a 2-core hierarchy with small private caches.
func testHierarchy() *Hierarchy {
	cfg := HierarchyConfig{
		Cores: 2,
		L1:    LevelConfig{SizeBytes: 4 << 10, Ways: 4, HitCycles: 4},
		L2:    LevelConfig{SizeBytes: 32 << 10, Ways: 8, HitCycles: 14},
		LLC:   LLCConfig{Slices: 2, Ways: 8, SetsPerSlice: 64, HitCycles: 44},
	}
	return NewHierarchy(cfg, 2.3, mem.NewController(mem.Config{}))
}

func TestHierarchyLatencyLadder(t *testing.T) {
	h := testHierarchy()
	mask := FullMask(8)
	const a = 0x8000
	memLat := h.Access(0, a, false, mask) // cold: memory
	l1Lat := h.Access(0, a, false, mask)  // now in L1
	if l1Lat != 4 {
		t.Fatalf("L1 hit latency = %d", l1Lat)
	}
	if memLat <= 44 {
		t.Fatalf("memory access latency = %d, want > LLC hit", memLat)
	}
}

func TestHierarchyL2ThenLLCHit(t *testing.T) {
	h := testHierarchy()
	mask := FullMask(8)
	const a = 0x9000
	h.Access(0, a, false, mask)
	// Push a out of L1 with conflicting lines (same L1 set: stride by
	// L1 set span = 16 sets * 64B = 1KB).
	for i := 1; i <= 8; i++ {
		h.Access(0, a+uint64(i)*1024, false, mask)
	}
	lat := h.Access(0, a, false, mask)
	if lat != 14 {
		t.Fatalf("expected L2 hit (14 cy), got %d", lat)
	}
}

func TestHierarchyDirtyEvictionReachesMemory(t *testing.T) {
	h := testHierarchy()
	mask := ContiguousMask(0, 1) // 1 LLC way: heavy LLC churn
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50000; i++ {
		h.Access(0, uint64(rng.Intn(1<<16))<<6, true, mask)
	}
	if h.Mem().Stats().BytesWritten == 0 {
		t.Fatal("dirty evictions never reached memory")
	}
}

func TestInvalidatePrivateForcesRefetch(t *testing.T) {
	h := testHierarchy()
	mask := FullMask(8)
	const a = 0xA000
	h.Access(0, a, false, mask)
	if !h.PrivateContains(0, a) {
		t.Fatal("line should be in private caches")
	}
	h.InvalidatePrivate(0, a)
	if h.PrivateContains(0, a) {
		t.Fatal("invalidate left the line in private caches")
	}
	// Next access must go below L2 (LLC still has it: 44 cy).
	if lat := h.Access(0, a, false, mask); lat < 44 {
		t.Fatalf("post-invalidate access latency = %d, want >= 44", lat)
	}
}

func TestPrivateCachesArePerCore(t *testing.T) {
	h := testHierarchy()
	mask := FullMask(8)
	const a = 0xB000
	h.Access(0, a, false, mask)
	if h.PrivateContains(1, a) {
		t.Fatal("core 1's private caches contain core 0's line")
	}
	// Core 1's first access is at least an LLC hit, never an L1 hit.
	if lat := h.Access(1, a, false, mask); lat < 44 {
		t.Fatalf("cross-core first access latency = %d", lat)
	}
}

func TestL1L2StatsAdvance(t *testing.T) {
	h := testHierarchy()
	mask := FullMask(8)
	for i := 0; i < 100; i++ {
		h.Access(0, uint64(i)<<6, false, mask)
		h.Access(0, uint64(i)<<6, false, mask)
	}
	h1, m1 := h.L1Stats(0)
	if h1 == 0 || m1 == 0 {
		t.Fatalf("L1 stats hits=%d misses=%d", h1, m1)
	}
	if _, m2 := h.L2Stats(0); m2 == 0 {
		t.Fatal("L2 never missed")
	}
}

func TestLevelConfigValidate(t *testing.T) {
	good := LevelConfig{SizeBytes: 32 << 10, Ways: 8, HitCycles: 4}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (LevelConfig{SizeBytes: 100, Ways: 8}).Validate(); err == nil {
		t.Error("non-divisible size accepted")
	}
	if err := (LevelConfig{SizeBytes: 24 << 10, Ways: 8}).Validate(); err == nil {
		t.Error("non-power-of-two set count accepted")
	}
	if err := (LevelConfig{SizeBytes: 32 << 10, Ways: 0}).Validate(); err == nil {
		t.Error("zero ways accepted")
	}
}

func TestHierarchyConfigValidate(t *testing.T) {
	cfg := XeonGold6140Hierarchy(18)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg.Cores = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero cores accepted")
	}
}

func TestWritebackAllocatesWithOwnerMask(t *testing.T) {
	// A dirty L2 victim must be re-allocated into the owner's CURRENT
	// mask — the mechanism by which hot data migrates after a shuffle.
	h := testHierarchy()
	const a = 0xC0000
	h.Access(0, a, true, ContiguousMask(6, 2)) // dirty under old mask
	// Evict from L1+L2 by thrashing the same L1/L2 sets.
	newMask := ContiguousMask(0, 2)
	for i := 1; i < 40; i++ {
		h.Access(0, a+uint64(i)*32<<10, true, newMask) // same L2 set stride
	}
	if w := h.LLC().WayOf(a); w >= 0 && !newMask.Has(w) && !ContiguousMask(6, 2).Has(w) {
		t.Fatalf("line in unexpected way %d", w)
	}
}

func TestRemoteCorePaysUPIBelowPrivateCaches(t *testing.T) {
	h := testHierarchy()
	h.SetRemote(1, true, 60) // ~138 cycles at 2.3GHz
	mask := FullMask(8)
	const a = 0xD0000
	// Warm the line into the LLC via the local core.
	h.Access(0, a, false, mask)
	localHit := h.Access(0, a+64, false, mask) // cold for comparison shape
	_ = localHit
	// Remote LLC hit: base 44 + UPI.
	lat := h.Access(1, a, false, mask)
	if lat < 44+100 {
		t.Fatalf("remote LLC hit latency = %d, want >= 144", lat)
	}
	// Once in the remote core's private caches, no UPI.
	if l1 := h.Access(1, a, false, mask); l1 != 4 {
		t.Fatalf("remote L1 hit latency = %d", l1)
	}
	if !h.IsRemote(1) || h.IsRemote(0) {
		t.Fatal("IsRemote flags wrong")
	}
}

func TestRemoteCoreMemoryAccessAlsoPaysUPI(t *testing.T) {
	h := testHierarchy()
	mask := FullMask(8)
	localMem := h.Access(0, 0xE0000, false, mask)
	h.SetRemote(1, true, 60)
	remoteMem := h.Access(1, 0xF0000, false, mask)
	if remoteMem <= localMem+100 {
		t.Fatalf("remote memory access %d not ~UPI above local %d", remoteMem, localMem)
	}
}
