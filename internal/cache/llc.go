package cache

import (
	"fmt"
	"math/bits"
)

const (
	stateValid uint8 = 1 << 0
	stateDirty uint8 = 1 << 1
)

// invalidTag marks an empty way in the tag array. Tags are line
// addresses (address >> LineShift), so a real tag can only collide with
// the sentinel for addresses above 2^64-64 — far outside the simulated
// physical address space. Storing the sentinel lets probe scan tags
// alone, without consulting the state bytes, which is the hottest loop
// in the whole simulator.
const invalidTag = ^uint64(0)

// SliceStats are the per-slice CHA counters. The DDIO pair is exactly what
// the paper's daemon samples from the uncore PMU: DDIOHits counts inbound
// transactions that performed a write update, DDIOMisses those that
// performed a write allocate (Sec. IV-B of the paper).
type SliceStats struct {
	Lookups    uint64 // all demand lookups from cores
	Hits       uint64 // demand hits
	Misses     uint64 // demand misses
	DDIOHits   uint64 // inbound I/O write updates
	DDIOMisses uint64 // inbound I/O write allocates
	IOReads    uint64 // device (Tx) reads served by the LLC
	IOReadMiss uint64 // device reads that fell through to memory
	Writebacks uint64 // dirty evictions sent to memory
}

// Add accumulates o into s.
func (s *SliceStats) Add(o SliceStats) {
	s.Lookups += o.Lookups
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.DDIOHits += o.DDIOHits
	s.DDIOMisses += o.DDIOMisses
	s.IOReads += o.IOReads
	s.IOReadMiss += o.IOReadMiss
	s.Writebacks += o.Writebacks
}

// llcSlice is one NUCA slice: a sets×ways structure stored as flat arrays
// for speed. Replacement is SRRIP (2-bit re-reference prediction values),
// the policy family modern Intel LLCs implement: insertions start with a
// long predicted re-reference interval (rrpvInsert), hits reset it to 0,
// and victims are lines that aged to rrpvMax. Unlike true LRU, sustained
// allocation pressure (e.g. line-rate DDIO write allocates) eventually
// evicts rarely re-referenced lines that squat outside their owner's
// current way mask — the behaviour the paper's shuffling step relies on
// ("a tenant can still access its data in previously assigned LLC ways
// UNTIL it has been evicted", Sec. IV-D).
//
// tags doubles as the presence index (invalidTag = empty way) and valid
// carries a per-set occupancy bitmask, so the miss path finds a free way
// with one AND-NOT instead of a state scan.
type llcSlice struct {
	tags  []uint64 // per way; invalidTag when empty
	state []uint8  // valid/dirty bits, authoritative for dirtiness
	rrpv  []uint8  // SRRIP age, or LRU rank (a permutation per set)
	valid []uint32 // per set: bitmask of valid ways
	stats SliceStats
	tel   sliceTel
}

// SRRIP constants: 2-bit RRPV, insert at distant (max-1).
const (
	rrpvMax    uint8 = 3
	rrpvInsert uint8 = 2
)

// LLC is the shared last-level cache. It is address-hashed across slices the
// way modern Intel CPUs are (Sec. V of the paper relies on this even
// distribution to sample a single CHA and extrapolate).
type LLC struct {
	cfg    LLCConfig
	slices []llcSlice

	setMask  uint64 // SetsPerSlice-1
	fullMask uint32 // FullMask(cfg.Ways), the in-range way bits
	vicRR    uint32 // rotating tie-break for victim selection

	// Per-core demand counters, the source for the "LLC reference and
	// miss" events IAT polls (LONGEST_LAT_CACHE.{REFERENCE,MISS}).
	coreRefs   []uint64
	coreMisses []uint64
}

// Victim describes a line displaced by an allocation. If Dirty, the caller
// must write it back to memory.
type Victim struct {
	Addr  uint64
	Valid bool
	Dirty bool
}

// NewLLC builds an empty LLC with the given shape for cores cores.
func NewLLC(cfg LLCConfig, cores int) *LLC {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	l := &LLC{
		cfg:        cfg,
		slices:     make([]llcSlice, cfg.Slices),
		setMask:    uint64(cfg.SetsPerSlice - 1),
		fullMask:   uint32(FullMask(cfg.Ways)),
		coreRefs:   make([]uint64, cores),
		coreMisses: make([]uint64, cores),
	}
	n := cfg.SetsPerSlice * cfg.Ways
	for i := range l.slices {
		tags := make([]uint64, n)
		for j := range tags {
			tags[j] = invalidTag
		}
		l.slices[i] = llcSlice{
			tags:  tags,
			state: make([]uint8, n),
			rrpv:  make([]uint8, n),
			valid: make([]uint32, cfg.SetsPerSlice),
		}
	}
	return l
}

// Config returns the LLC shape.
func (l *LLC) Config() LLCConfig { return l.cfg }

// hashLine mixes the line address so both slice selection and set indexing
// are effectively uniform, mirroring the (reverse-engineered) complex
// addressing hash on Intel LLCs.
func hashLine(line uint64) uint64 {
	x := line * 0x9E3779B97F4A7C15
	x ^= x >> 29
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 32
	return x
}

// locate maps an address to (slice, set index, base index of its set).
func (l *LLC) locate(a uint64) (sl *llcSlice, setIdx, setBase int) {
	line := a >> LineShift
	h := hashLine(line)
	s := int(h % uint64(l.cfg.Slices))
	set := int((h >> 24) & l.setMask)
	return &l.slices[s], set, set * l.cfg.Ways
}

// probe searches the set for the tag; returns the way offset or -1. The
// sentinel encoding makes this a pure tag scan: no state loads, no
// branches besides the compare.
func (l *LLC) probe(sl *llcSlice, base int, tag uint64) int {
	tags := sl.tags[base : base+l.cfg.Ways]
	for w := range tags {
		if tags[w] == tag {
			return w
		}
	}
	return -1
}

// touch records a re-reference: the line's predicted re-reference interval
// collapses to "imminent" (SRRIP), or the line moves to MRU (LRU).
func (l *LLC) touch(sl *llcSlice, base, w int) {
	if l.cfg.Policy == PolicyLRU {
		l.lruPromote(sl, base, w)
		return
	}
	sl.rrpv[base+w] = 0
}

// lruPromote moves way w to MRU, ageing every valid line that was younger.
// Ranks of the valid lines in a set are a permutation 0..k-1 and stay one.
func (l *LLC) lruPromote(sl *llcSlice, base, w int) {
	old := sl.rrpv[base+w]
	if old == 0 {
		return // already MRU: nothing can be younger
	}
	for i := 0; i < l.cfg.Ways; i++ {
		if sl.state[base+i]&stateValid != 0 && i != w && sl.rrpv[base+i] < old {
			sl.rrpv[base+i]++
		}
	}
	sl.rrpv[base+w] = 0
}

// lruInsertAt gives a newly installed line MRU rank, ageing only the
// lines that were younger than the departed victim's rank (limit). The
// departing rank vacates and rank 0 is taken, so the valid lines' ranks
// remain a permutation 0..k-1. Ageing past the victim's rank instead
// (the old behaviour) inflated out-of-mask lines' ranks until they all
// saturated at 255 and their true age order was lost — the mask-shrink
// LRU-age corruption covered by TestLLCLRUMaskShrinkAgeCorruption.
func (l *LLC) lruInsertAt(sl *llcSlice, base, w int, limit uint8) {
	for i := 0; i < l.cfg.Ways; i++ {
		if sl.state[base+i]&stateValid != 0 && i != w && sl.rrpv[base+i] < limit {
			sl.rrpv[base+i]++
		}
	}
	sl.rrpv[base+w] = 0
}

// victimWay picks the allocation victim inside the allowed mask: an invalid
// allowed way if one exists, else (SRRIP) an allowed way whose RRPV has aged
// to rrpvMax — ageing the whole allowed set as needed — or (LRU) the
// least-recently-used allowed way. setIdx indexes the slice's per-set
// valid bitmask for base.
func (l *LLC) victimWay(sl *llcSlice, setIdx, base int, mask WayMask) int {
	allowed := uint32(mask) & l.fullMask
	if allowed == 0 {
		panic(fmt.Sprintf("cache: way mask %s has no ways below %d; refusing out-of-set allocation", mask, l.cfg.Ways))
	}
	if inv := allowed &^ sl.valid[setIdx]; inv != 0 {
		return bits.TrailingZeros32(inv) // lowest-indexed empty allowed way
	}
	rr := sl.rrpv[base : base+l.cfg.Ways]
	if l.cfg.Policy == PolicyLRU {
		best, bestRank := -1, -1
		for m := allowed; m != 0; m &= m - 1 {
			w := bits.TrailingZeros32(m)
			if r := int(rr[w]); r > bestRank {
				best, bestRank = w, r
			}
		}
		return best
	}
	// SRRIP. Rotate the scan start so RRPV ties don't always evict the
	// lowest way (which would shelter high ways from replacement
	// pressure); the victim is the first allowed way in rotated order
	// holding the maximum RRPV. The original aged every allowed line by
	// one and rescanned until the maximum reached rrpvMax; ageing is
	// uniform over the allowed set, so one batched add of
	// (rrpvMax - max) is identical and the argmax never moves.
	l.vicRR++
	start := int(l.vicRR) % l.cfg.Ways
	best, bestRRPV := -1, -1
	for w := start; w < l.cfg.Ways; w++ {
		if allowed&(1<<uint(w)) != 0 {
			if r := int(rr[w]); r > bestRRPV {
				best, bestRRPV = w, r
			}
		}
	}
	for w := 0; w < start; w++ {
		if allowed&(1<<uint(w)) != 0 {
			if r := int(rr[w]); r > bestRRPV {
				best, bestRRPV = w, r
			}
		}
	}
	if bestRRPV < int(rrpvMax) {
		delta := rrpvMax - uint8(bestRRPV)
		for m := allowed; m != 0; m &= m - 1 {
			rr[bits.TrailingZeros32(m)] += delta
		}
	}
	return best
}

// install places the tag into way w of the set at (setIdx, base),
// returning the displaced victim.
func (l *LLC) install(sl *llcSlice, setIdx, base, w int, tag uint64, dirty bool) Victim {
	var v Victim
	idx := base + w
	victimRank := ^uint8(0) // "older than everything" when the way was empty
	if sl.state[idx]&stateValid != 0 {
		v = Victim{
			Addr:  sl.tags[idx] << LineShift,
			Valid: true,
			Dirty: sl.state[idx]&stateDirty != 0,
		}
		if v.Dirty {
			sl.stats.Writebacks++
		}
		sl.tel.evictions.Inc()
		victimRank = sl.rrpv[idx]
	}
	sl.tags[idx] = tag
	sl.state[idx] = stateValid
	if dirty {
		sl.state[idx] |= stateDirty
	}
	sl.valid[setIdx] |= 1 << uint(w)
	if l.cfg.Policy == PolicyLRU {
		l.lruInsertAt(sl, base, w, victimRank)
	} else {
		sl.rrpv[idx] = rrpvInsert
	}
	return v
}

// Access performs a demand lookup from a core (i.e. the L2-miss path).
// mask is the core's current CAT allocation mask, used only on a miss to
// choose the fill location. The returned Victim must be written back by the
// caller if dirty.
func (l *LLC) Access(core int, a uint64, write bool, mask WayMask) (hit bool, v Victim) {
	sl, setIdx, base := l.locate(a)
	tag := a >> LineShift
	sl.stats.Lookups++
	l.coreRefs[core]++
	if w := l.probe(sl, base, tag); w >= 0 {
		sl.stats.Hits++
		sl.tel.hits.Inc()
		if write {
			sl.state[base+w] |= stateDirty
		}
		// SRRIP: no promotion on demand hits — the line's working copy
		// moves into the core's private caches (Skylake's
		// non-inclusive LLC behaves this way), so data parked outside
		// its owner's current mask ages out under allocation pressure
		// instead of squatting forever. LRU promotes classically.
		if l.cfg.Policy == PolicyLRU {
			l.lruPromote(sl, base, w)
		}
		return true, Victim{}
	}
	sl.stats.Misses++
	sl.tel.misses.Inc()
	l.coreMisses[core]++
	if mask == 0 {
		mask = FullMask(l.cfg.Ways)
	}
	w := l.victimWay(sl, setIdx, base, mask)
	v = l.install(sl, setIdx, base, w, tag, write)
	sl.tel.fillsApp.Inc()
	return false, v
}

// FillWriteback installs a dirty line evicted from a private cache
// (non-inclusive LLC: L2 victims are allocated here rather than dropped).
// It does not count as a demand reference. The returned victim must be
// written back by the caller if dirty.
func (l *LLC) FillWriteback(a uint64, mask WayMask) Victim {
	sl, setIdx, base := l.locate(a)
	tag := a >> LineShift
	if w := l.probe(sl, base, tag); w >= 0 {
		sl.state[base+w] |= stateDirty
		if l.cfg.Policy == PolicyLRU {
			l.lruPromote(sl, base, w)
		} else {
			sl.rrpv[base+w] = rrpvInsert
		}
		return Victim{}
	}
	if mask == 0 {
		mask = FullMask(l.cfg.Ways)
	}
	w := l.victimWay(sl, setIdx, base, mask)
	v := l.install(sl, setIdx, base, w, tag, true)
	sl.tel.fillsApp.Inc()
	return v
}

// IOWrite models a DDIO inbound write of one line. If the line is resident
// in any way it is updated in place (write update — a DDIO hit); otherwise
// it is allocated into the DDIO mask (write allocate — a DDIO miss) and the
// displaced victim is returned for writeback.
func (l *LLC) IOWrite(a uint64, ddioMask WayMask) (hit bool, v Victim) {
	sl, setIdx, base := l.locate(a)
	tag := a >> LineShift
	if w := l.probe(sl, base, tag); w >= 0 {
		sl.stats.DDIOHits++
		sl.state[base+w] |= stateDirty
		l.touch(sl, base, w)
		return true, Victim{}
	}
	sl.stats.DDIOMisses++
	if ddioMask == 0 {
		ddioMask = FullMask(l.cfg.Ways)
	}
	w := l.victimWay(sl, setIdx, base, ddioMask)
	v = l.install(sl, setIdx, base, w, tag, true)
	sl.tel.fillsDDIO.Inc()
	return false, v
}

// IORead models a device (Tx) read of one line. A hit is served from the
// LLC and the line stays put; a miss falls through to memory and does NOT
// allocate (Sec. II-B). The line is cleaned on read-hit so a later eviction
// needs no writeback only if nothing else dirtied it again; real hardware
// keeps it dirty, so we do too — the read has no side effects.
func (l *LLC) IORead(a uint64) (hit bool) {
	sl, _, base := l.locate(a)
	tag := a >> LineShift
	if w := l.probe(sl, base, tag); w >= 0 {
		sl.stats.IOReads++
		// A device read is typically the buffer's last use before the
		// slot recycles; no promotion.
		return true
	}
	sl.stats.IOReads++
	sl.stats.IOReadMiss++
	return false
}

// AmbientFill models background LLC allocation pressure (kernel, management
// agents, prefetchers of unmodelled cores): it installs a line with the full
// way mask, untracked by the demand counters, and returns the displaced
// victim for writeback accounting. A real consolidated host is never
// sterile; without this churn, data parked in idle ways would stay resident
// forever.
func (l *LLC) AmbientFill(a uint64) Victim {
	sl, setIdx, base := l.locate(a)
	tag := a >> LineShift
	if l.probe(sl, base, tag) >= 0 {
		return Victim{}
	}
	w := l.victimWay(sl, setIdx, base, WayMask(l.fullMask))
	v := l.install(sl, setIdx, base, w, tag, false)
	sl.tel.fillsApp.Inc()
	return v
}

// Contains reports whether the line holding address a is resident, without
// disturbing LRU state or counters. Intended for tests and assertions.
func (l *LLC) Contains(a uint64) bool {
	sl, _, base := l.locate(a)
	return l.probe(sl, base, a>>LineShift) >= 0
}

// WayOf returns the way index currently holding address a, or -1. Intended
// for tests.
func (l *LLC) WayOf(a uint64) int {
	sl, _, base := l.locate(a)
	return l.probe(sl, base, a>>LineShift)
}

// SliceStats returns the counters of slice i. The IAT daemon samples slice 0
// and multiplies by Config().Slices, exactly as the paper's implementation
// reads one CHA (Sec. V, "Profiling and monitoring").
func (l *LLC) SliceStats(i int) SliceStats {
	if i < 0 || i >= len(l.slices) {
		panic(fmt.Sprintf("cache: slice %d out of range", i))
	}
	return l.slices[i].stats
}

// TotalStats sums the counters of all slices.
func (l *LLC) TotalStats() SliceStats {
	var t SliceStats
	for i := range l.slices {
		t.Add(l.slices[i].stats)
	}
	return t
}

// CoreRefs returns the cumulative demand references issued by core.
func (l *LLC) CoreRefs(core int) uint64 { return l.coreRefs[core] }

// CoreMisses returns the cumulative demand misses suffered by core.
func (l *LLC) CoreMisses(core int) uint64 { return l.coreMisses[core] }

// OccupancyByWay counts the valid lines per way across all slices; useful
// for tests and for visualising which partition holds how much data.
func (l *LLC) OccupancyByWay() []int {
	occ := make([]int, l.cfg.Ways)
	for s := range l.slices {
		sl := &l.slices[s]
		for set := 0; set < l.cfg.SetsPerSlice; set++ {
			for m := sl.valid[set]; m != 0; m &= m - 1 {
				occ[bits.TrailingZeros32(m)]++
			}
		}
	}
	return occ
}
