package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// testLLC returns a small LLC for focused tests: 2 slices, 8 ways, 64 sets.
func testLLC(cores int) *LLC {
	return NewLLC(LLCConfig{Slices: 2, Ways: 8, SetsPerSlice: 64, HitCycles: 40}, cores)
}

func TestLLCConfigValidate(t *testing.T) {
	good := LLCConfig{Slices: 2, Ways: 8, SetsPerSlice: 64}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []LLCConfig{
		{Slices: 0, Ways: 8, SetsPerSlice: 64},
		{Slices: 2, Ways: 0, SetsPerSlice: 64},
		{Slices: 2, Ways: 40, SetsPerSlice: 64},
		{Slices: 2, Ways: 8, SetsPerSlice: 63},
		{Slices: 2, Ways: 8, SetsPerSlice: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected error for %+v", i, c)
		}
	}
}

func TestLLCSizeArithmetic(t *testing.T) {
	c := XeonGold6140Hierarchy(18).LLC
	if got := c.SizeBytes(); got != 24.75*(1<<20) {
		t.Errorf("LLC size = %d, want 24.75MB", got)
	}
	if got := c.WayBytes(); got != c.SizeBytes()/11 {
		t.Errorf("way bytes = %d", got)
	}
}

func TestLLCMissThenHit(t *testing.T) {
	l := testLLC(1)
	const a = 0x1000
	hit, _ := l.Access(0, a, false, FullMask(8))
	if hit {
		t.Fatal("first access should miss")
	}
	hit, _ = l.Access(0, a, false, FullMask(8))
	if !hit {
		t.Fatal("second access should hit")
	}
	if l.CoreRefs(0) != 2 || l.CoreMisses(0) != 1 {
		t.Fatalf("refs=%d misses=%d", l.CoreRefs(0), l.CoreMisses(0))
	}
}

func TestLLCAllocateOnlyInMask(t *testing.T) {
	l := testLLC(1)
	mask := ContiguousMask(2, 2) // ways 2-3 only
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		a := uint64(rng.Intn(1 << 20))
		l.Access(0, a<<6, rng.Intn(2) == 0, mask)
	}
	occ := l.OccupancyByWay()
	for w, n := range occ {
		if mask.Has(w) {
			if n == 0 {
				t.Errorf("way %d in mask has no lines", w)
			}
		} else if n != 0 {
			t.Errorf("way %d outside mask has %d lines", w, n)
		}
	}
}

func TestLLCHitAnywhere(t *testing.T) {
	// Footnote 1: a core hits lines in ways outside its mask.
	l := testLLC(2)
	const a = 0x40000
	l.Access(0, a, false, ContiguousMask(6, 2)) // core 0 fills into ways 6-7
	hit, _ := l.Access(1, a, false, ContiguousMask(0, 2))
	if !hit {
		t.Fatal("core 1 should hit the line filled by core 0 outside its own mask")
	}
}

func TestLLCVictimWriteback(t *testing.T) {
	l := NewLLC(LLCConfig{Slices: 1, Ways: 2, SetsPerSlice: 1}, 1)
	mask := FullMask(2)
	// Fill the single set with dirty lines, then overflow it.
	addrs := []uint64{0 << 6, 1 << 6, 2 << 6}
	var wb int
	for _, a := range addrs {
		_, v := l.Access(0, a, true, mask)
		if v.Valid && v.Dirty {
			wb++
		}
	}
	if wb != 1 {
		t.Fatalf("expected exactly one dirty victim, got %d", wb)
	}
	if l.TotalStats().Writebacks != 1 {
		t.Fatalf("writeback counter = %d", l.TotalStats().Writebacks)
	}
}

func TestDDIOWriteUpdateVsAllocate(t *testing.T) {
	l := testLLC(1)
	ddio := ContiguousMask(6, 2)
	const a = 0x2000
	hit, _ := l.IOWrite(a, ddio)
	if hit {
		t.Fatal("first IO write should allocate")
	}
	hit, _ = l.IOWrite(a, ddio)
	if !hit {
		t.Fatal("second IO write should update")
	}
	st := l.TotalStats()
	if st.DDIOHits != 1 || st.DDIOMisses != 1 {
		t.Fatalf("ddio hit=%d miss=%d", st.DDIOHits, st.DDIOMisses)
	}
	// Allocation must be inside the DDIO mask.
	if w := l.WayOf(a); !ddio.Has(w) {
		t.Fatalf("IO allocate landed in way %d outside mask %v", w, ddio)
	}
}

func TestDDIOWriteUpdateHitsAnyWay(t *testing.T) {
	// Write update applies even when the line lives outside the DDIO
	// mask (e.g. a core allocated it under its own mask).
	l := testLLC(1)
	const a = 0x3000
	l.Access(0, a, false, ContiguousMask(0, 2)) // line lands in ways 0-1
	hit, _ := l.IOWrite(a, ContiguousMask(6, 2))
	if !hit {
		t.Fatal("IO write should update the line wherever it lives")
	}
	if l.TotalStats().DDIOMisses != 0 {
		t.Fatal("no write allocate expected")
	}
}

func TestIOReadNeverAllocates(t *testing.T) {
	l := testLLC(1)
	const a = 0x5000
	if l.IORead(a) {
		t.Fatal("read of absent line should miss")
	}
	if l.Contains(a) {
		t.Fatal("IORead must not allocate")
	}
	st := l.TotalStats()
	if st.IOReads != 1 || st.IOReadMiss != 1 {
		t.Fatalf("io read stats %+v", st)
	}
	// Resident line: served from LLC.
	l.Access(0, a, false, FullMask(8))
	if !l.IORead(a) {
		t.Fatal("read of resident line should hit")
	}
}

func TestSRRIPEvictsUnreferencedUnderChurn(t *testing.T) {
	// A line parked in a way and never re-referenced must be displaced
	// by sustained allocation churn in that way (the anti-squatting
	// property the shuffling step depends on).
	l := NewLLC(LLCConfig{Slices: 1, Ways: 4, SetsPerSlice: 4}, 1)
	mask := FullMask(4)
	const squat = 0x9000
	l.Access(0, squat, false, mask)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 4*4*8; i++ {
		l.Access(0, uint64(0x100000+rng.Intn(1<<16))<<6, false, mask)
	}
	if l.Contains(squat) {
		t.Fatal("unreferenced line survived heavy churn")
	}
}

func TestFillWritebackKeepsCapacityAccounting(t *testing.T) {
	l := testLLC(1)
	const a = 0x7000
	v := l.FillWriteback(a, ContiguousMask(0, 2))
	if v.Valid {
		t.Fatal("no victim expected in an empty set")
	}
	if !l.Contains(a) {
		t.Fatal("writeback fill should install the line")
	}
	// Re-filling an existing line must not displace anything.
	if v := l.FillWriteback(a, ContiguousMask(0, 2)); v.Valid {
		t.Fatal("refill displaced a victim")
	}
	// Writeback fills are not demand references.
	if l.CoreRefs(0) != 0 {
		t.Fatal("FillWriteback counted as a demand reference")
	}
}

func TestSliceStatsAggregation(t *testing.T) {
	l := testLLC(1)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		l.Access(0, uint64(rng.Intn(1<<18))<<6, false, FullMask(8))
	}
	var sum SliceStats
	for s := 0; s < 2; s++ {
		sum.Add(l.SliceStats(s))
	}
	if sum != l.TotalStats() {
		t.Fatalf("slice sum %+v != total %+v", sum, l.TotalStats())
	}
	if sum.Lookups != 5000 {
		t.Fatalf("lookups = %d", sum.Lookups)
	}
	// Uniform hashing: neither slice should be starved.
	for s := 0; s < 2; s++ {
		if st := l.SliceStats(s); st.Lookups < 2000 {
			t.Errorf("slice %d only got %d lookups", s, st.Lookups)
		}
	}
}

// Property: after any access sequence, per-way occupancy stays within the
// set-count bound and demand misses never exceed references.
func TestLLCInvariantsProperty(t *testing.T) {
	f := func(seed int64, maskBits uint8) bool {
		l := testLLC(1)
		mask := WayMask(maskBits) & FullMask(8)
		if mask == 0 {
			mask = FullMask(8)
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 3000; i++ {
			l.Access(0, uint64(rng.Intn(1<<16))<<6, rng.Intn(2) == 0, mask)
		}
		occ := l.OccupancyByWay()
		for _, n := range occ {
			if n > 2*64 { // slices * sets
				return false
			}
		}
		return l.CoreMisses(0) <= l.CoreRefs(0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: the slice/set hash maps any address deterministically.
func TestLocateDeterministicProperty(t *testing.T) {
	l := testLLC(1)
	f := func(a uint64) bool {
		s1, i1, b1 := l.locate(a)
		s2, i2, b2 := l.locate(a)
		return s1 == s2 && i1 == i2 && b1 == b2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAmbientFillDisplacesIdleLines(t *testing.T) {
	l := NewLLC(LLCConfig{Slices: 1, Ways: 2, SetsPerSlice: 2}, 1)
	const a = 0x11000
	l.Access(0, a, false, FullMask(2))
	for i := 0; i < 64; i++ {
		l.AmbientFill(uint64(0x400000+i) << 6)
	}
	if l.Contains(a) {
		t.Fatal("ambient churn failed to displace an idle line in a tiny cache")
	}
	// Ambient fills must not touch demand counters.
	if l.CoreRefs(0) != 1 {
		t.Fatalf("ambient fill polluted demand counters: refs=%d", l.CoreRefs(0))
	}
}

func TestLRUPolicyPromotesAndRetains(t *testing.T) {
	// Under LRU, a frequently re-referenced line survives churn in its
	// set — even parked outside its owner's current mask — while SRRIP
	// ages it out (TestSRRIPEvictsUnreferencedUnderChurn covers the
	// converse). This is the replacement-policy/CAT interaction the
	// repository's ablation study documents.
	l := NewLLC(LLCConfig{Slices: 1, Ways: 4, SetsPerSlice: 4, Policy: PolicyLRU}, 1)
	mask := FullMask(4)
	const hot = 0x9000
	l.Access(0, hot, false, mask)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 4*4*8; i++ {
		l.Access(0, uint64(0x100000+rng.Intn(1<<16))<<6, false, mask)
		l.Access(0, hot, false, mask) // constant re-reference
	}
	if !l.Contains(hot) {
		t.Fatal("LRU evicted a constantly re-referenced line")
	}
}

func TestLRUVictimIsLeastRecentlyUsed(t *testing.T) {
	l := NewLLC(LLCConfig{Slices: 1, Ways: 2, SetsPerSlice: 1, Policy: PolicyLRU}, 1)
	mask := FullMask(2)
	l.Access(0, 0<<6, false, mask) // A
	l.Access(0, 1<<6, false, mask) // B
	l.Access(0, 0<<6, false, mask) // touch A: B is now LRU
	l.Access(0, 2<<6, false, mask) // C evicts B
	if !l.Contains(0<<6) || l.Contains(1<<6) || !l.Contains(2<<6) {
		t.Fatal("LRU evicted the wrong line")
	}
}

func TestPolicyString(t *testing.T) {
	if PolicySRRIP.String() != "srrip" || PolicyLRU.String() != "lru" {
		t.Error("policy strings wrong")
	}
}
