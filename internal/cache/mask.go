// Package cache implements the simulated cache hierarchy of the platform:
// per-core L1D and L2 caches and a shared, multi-slice, way-partitioned
// last-level cache (LLC) with Intel CAT semantics.
//
// The LLC model reproduces the two properties the paper's mechanism depends
// on (Sec. II, footnote 1 of the paper):
//
//  1. a core (or DDIO) can only ALLOCATE cache lines into the ways named by
//     its current way mask, and
//  2. a core can HIT on (load/update) lines in ANY way, regardless of masks.
//
// DDIO inbound writes follow Sec. II-B: if the target line is present in any
// way the write updates it in place ("write update", a DDIO hit); otherwise
// the line is allocated into the DDIO way mask ("write allocate", a DDIO
// miss), possibly evicting a dirty victim to memory. Device reads hit in the
// LLC but never allocate on miss.
package cache

import (
	"fmt"
	"math/bits"
	"strings"
)

// WayMask is a bitmask over LLC ways: bit i set means way i may be used for
// allocation. It mirrors the capacity bitmask (CBM) written into the
// IA32_L3_QOS_MASK_n MSRs by Intel CAT, and the IIO_LLC_WAYS MSR for DDIO.
type WayMask uint32

// ContiguousMask returns a mask covering n ways starting at way lo.
func ContiguousMask(lo, n int) WayMask {
	if n <= 0 {
		return 0
	}
	return WayMask(((uint32(1) << n) - 1) << lo)
}

// FullMask returns a mask covering ways [0, n).
func FullMask(n int) WayMask { return ContiguousMask(0, n) }

// Count returns the number of ways in the mask.
func (m WayMask) Count() int { return bits.OnesCount32(uint32(m)) }

// Has reports whether way i is in the mask.
func (m WayMask) Has(i int) bool { return m&(1<<i) != 0 }

// Overlaps reports whether the two masks share any way.
func (m WayMask) Overlaps(o WayMask) bool { return m&o != 0 }

// Lowest returns the index of the lowest set way, or -1 if the mask is
// empty.
func (m WayMask) Lowest() int {
	if m == 0 {
		return -1
	}
	return bits.TrailingZeros32(uint32(m))
}

// Highest returns the index of the highest set way, or -1 if the mask is
// empty.
func (m WayMask) Highest() int {
	if m == 0 {
		return -1
	}
	return 31 - bits.LeadingZeros32(uint32(m))
}

// Contiguous reports whether the set ways form one contiguous run. Intel CAT
// requires contiguous capacity bitmasks; package rdt enforces this via
// Contiguous when masks are programmed.
func (m WayMask) Contiguous() bool {
	if m == 0 {
		return false
	}
	v := uint32(m) >> bits.TrailingZeros32(uint32(m))
	return v&(v+1) == 0
}

// String renders the mask as a way bitmap, highest way first, e.g.
// "11000000000" for the default 2-way DDIO mask of an 11-way LLC.
func (m WayMask) String() string {
	if m == 0 {
		return "0"
	}
	var sb strings.Builder
	for i := m.Highest(); i >= 0; i-- {
		if m.Has(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// GoString implements fmt.GoStringer for %#v debugging output.
func (m WayMask) GoString() string { return fmt.Sprintf("cache.WayMask(%#b)", uint32(m)) }
