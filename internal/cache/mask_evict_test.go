package cache

import (
	"fmt"
	"testing"
)

// oneSetLLC builds a degenerate one-slice, one-set LLC so every address
// collides: the sharpest lens for replacement-order bugs.
func oneSetLLC(policy ReplacementPolicy) *LLC {
	return NewLLC(LLCConfig{Slices: 1, Ways: 11, SetsPerSlice: 1, HitCycles: 44, Policy: policy}, 1)
}

// TestLLCLRUMaskShrinkAgeCorruption is the regression test for the
// LRU-age corruption bug: lruInsert aged EVERY valid line on each
// insertion — including lines already older than the departing victim —
// so lines parked outside the active mask gained one rank per insert
// without bound until their uint8 ranks pinned at 255. Two parked lines
// then tie at 255 and their true age order is gone: the victim scan
// breaks the tie by way index and evicts the *younger* of the two. A
// mask shrink (SetParams/rollout path) is exactly what parks lines
// out-of-mask long enough. Drift-free insertion (age only lines younger
// than the departed victim's rank) keeps ranks a permutation, where this
// cannot happen.
func TestLLCLRUMaskShrinkAgeCorruption(t *testing.T) {
	l := oneSetLLC(PolicyLRU)
	addr := func(i int) uint64 { return uint64(i) << LineShift }

	// Fill the set; fill i lands in way i.
	for i := 0; i < 11; i++ {
		l.Access(0, addr(i), false, FullMask(11))
	}
	// Re-reference way 0's line: it is now strictly younger than way
	// 1's line.
	if hit, _ := l.Access(0, addr(0), false, FullMask(11)); !hit {
		t.Fatal("setup: re-reference of line 0 missed")
	}
	younger, older := addr(0), addr(1)

	// The mask shrinks: ways 0 and 1 no longer belong to anyone. 280 >
	// 256 insertions saturate both parked lines' ranks at 255.
	shrunk := ContiguousMask(2, 9)
	for i := 0; i < 280; i++ {
		_, v := l.Access(0, addr(100+i), false, shrunk)
		if v.Valid && (v.Addr == younger || v.Addr == older) {
			t.Fatalf("insert %d under mask %s evicted out-of-mask line %#x", i, shrunk, v.Addr)
		}
	}

	// Expand back to the full mask: way 1's line has been unreferenced
	// the longest and must be the LRU victim. With saturated ranks the
	// tie-break picks way 0's strictly younger line instead.
	_, v := l.Access(0, addr(999), false, FullMask(11))
	if !v.Valid {
		t.Fatal("full-mask fill displaced nothing")
	}
	if v.Addr == younger {
		t.Fatalf("LRU age corruption: evicted the recently-referenced line %#x, not the stale %#x", younger, older)
	}
	if v.Addr != older {
		t.Fatalf("full-mask fill evicted %#x, want the oldest line %#x", v.Addr, older)
	}
}

// checkLRUPermutation asserts the LRU invariant the drift-free insert
// maintains: in every set, the ranks of the k valid lines are exactly
// {0..k-1}.
func checkLRUPermutation(t *testing.T, l *LLC) {
	t.Helper()
	for s := range l.slices {
		sl := &l.slices[s]
		for set := 0; set < l.cfg.SetsPerSlice; set++ {
			base := set * l.cfg.Ways
			var seen [32]bool
			k := 0
			for w := 0; w < l.cfg.Ways; w++ {
				if sl.state[base+w]&stateValid == 0 {
					continue
				}
				r := int(sl.rrpv[base+w])
				if r >= l.cfg.Ways || seen[r] {
					t.Fatalf("slice %d set %d: LRU ranks are not a permutation (way %d rank %d)", s, set, w, r)
				}
				seen[r] = true
				k++
			}
			for r := 0; r < k; r++ {
				if !seen[r] {
					t.Fatalf("slice %d set %d: %d valid lines but rank %d unused", s, set, k, r)
				}
			}
		}
	}
}

// checkFillsInMask fills fresh lines under mask and asserts every
// fill's way is in-mask.
func checkFillsInMask(t *testing.T, l *LLC, mask WayMask, next *uint64, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		a := *next << LineShift
		*next++
		hit, _ := l.Access(0, a, false, mask)
		if hit {
			t.Fatalf("fresh line %#x hit", a)
		}
		if w := l.WayOf(a); w < 0 || !mask.Has(w) {
			t.Fatalf("fill under mask %s landed in way %d", mask, w)
		}
	}
}

// TestLLCEveryMaskFillsInMask walks every nonzero 11-bit way mask —
// contiguous or not — and asserts demand fills, writeback fills and DDIO
// fills never allocate outside it.
func TestLLCEveryMaskFillsInMask(t *testing.T) {
	for _, policy := range []ReplacementPolicy{PolicySRRIP, PolicyLRU} {
		t.Run(policy.String(), func(t *testing.T) {
			for m := WayMask(1); m < 1<<11; m++ {
				l := oneSetLLC(policy)
				next := uint64(1)
				// 2x the mask width so the in-mask ways must recycle.
				n := 2 * m.Count()
				checkFillsInMask(t, l, m, &next, n)
				for i := 0; i < n; i++ {
					a := next << LineShift
					next++
					l.FillWriteback(a, m)
					if w := l.WayOf(a); w < 0 || !m.Has(w) {
						t.Fatalf("writeback fill under mask %s landed in way %d", m, w)
					}
					a = next << LineShift
					next++
					l.IOWrite(a, m)
					if w := l.WayOf(a); w < 0 || !m.Has(w) {
						t.Fatalf("DDIO fill under mask %s landed in way %d", m, w)
					}
				}
				if policy == PolicyLRU {
					checkLRUPermutation(t, l)
				}
			}
		})
	}
}

// TestLLCMaskPairShrink walks every ordered pair of contiguous 11-bit
// masks (the CAT-programmable domain): a set is populated under the
// first mask, the mask then changes mid-run — including every partial
// overlap and every shrink — and subsequent fills must land only in the
// second mask, with the LRU permutation invariant intact throughout.
func TestLLCMaskPairShrink(t *testing.T) {
	var masks []WayMask
	for lo := 0; lo < 11; lo++ {
		for n := 1; lo+n <= 11; n++ {
			masks = append(masks, ContiguousMask(lo, n))
		}
	}
	if len(masks) != 66 {
		t.Fatalf("contiguous 11-bit masks = %d, want 66", len(masks))
	}
	for _, policy := range []ReplacementPolicy{PolicySRRIP, PolicyLRU} {
		t.Run(policy.String(), func(t *testing.T) {
			for _, a := range masks {
				for _, b := range masks {
					l := oneSetLLC(policy)
					next := uint64(1)
					checkFillsInMask(t, l, a, &next, 2*a.Count())
					checkFillsInMask(t, l, b, &next, 2*b.Count())
					if policy == PolicyLRU {
						checkLRUPermutation(t, l)
					}
					// SRRIP ages stay in the 2-bit domain.
					if policy == PolicySRRIP {
						sl := &l.slices[0]
						for w := 0; w < 11; w++ {
							if sl.state[w]&stateValid != 0 && sl.rrpv[w] > rrpvMax {
								t.Fatalf("mask %s->%s: way %d RRPV %d beyond rrpvMax", a, b, w, sl.rrpv[w])
							}
						}
					}
				}
			}
		})
	}
}

// TestLLCVictimWayNoAllowedWays pins the failure mode of a mask with no
// in-range ways: the old code returned way -1 and install() silently
// corrupted the preceding set's state (or panicked with a bare index
// error at set 0). It must be an explicit, diagnosable panic instead.
func TestLLCVictimWayNoAllowedWays(t *testing.T) {
	l := oneSetLLC(PolicySRRIP)
	// Fill the set so the invalid-way fast path cannot hide the scan.
	for i := 0; i < 11; i++ {
		l.Access(0, uint64(i)<<LineShift, false, FullMask(11))
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("fill with an out-of-range mask did not panic")
		}
		if s, ok := r.(string); !ok || s == "" {
			if err, ok := r.(error); !ok || err == nil {
				t.Fatalf("panic value %v (%T) carries no diagnosis", r, r)
			}
		}
		if !containsStr(fmt.Sprint(r), "mask") {
			t.Fatalf("panic %q does not mention the mask", fmt.Sprint(r))
		}
	}()
	l.Access(0, 999<<LineShift, false, WayMask(1<<12)) // only bit 12: no way 0-10
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
