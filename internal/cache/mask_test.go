package cache

import (
	"testing"
	"testing/quick"
)

func TestContiguousMask(t *testing.T) {
	cases := []struct {
		lo, n int
		want  WayMask
	}{
		{0, 1, 0b1},
		{0, 2, 0b11},
		{9, 2, 0b11000000000},
		{3, 4, 0b1111000},
		{0, 0, 0},
		{5, -1, 0},
	}
	for _, c := range cases {
		if got := ContiguousMask(c.lo, c.n); got != c.want {
			t.Errorf("ContiguousMask(%d,%d) = %v, want %v", c.lo, c.n, got, c.want)
		}
	}
}

func TestFullMask(t *testing.T) {
	if FullMask(11) != WayMask(0x7FF) {
		t.Errorf("FullMask(11) = %#x", uint32(FullMask(11)))
	}
	if FullMask(0) != 0 {
		t.Errorf("FullMask(0) = %v", FullMask(0))
	}
}

func TestMaskCountHasBounds(t *testing.T) {
	m := ContiguousMask(2, 3) // ways 2,3,4
	if m.Count() != 3 {
		t.Errorf("Count = %d", m.Count())
	}
	for i := 0; i < 8; i++ {
		want := i >= 2 && i <= 4
		if m.Has(i) != want {
			t.Errorf("Has(%d) = %v, want %v", i, m.Has(i), want)
		}
	}
	if m.Lowest() != 2 || m.Highest() != 4 {
		t.Errorf("Lowest/Highest = %d/%d", m.Lowest(), m.Highest())
	}
}

func TestMaskEmptyEdges(t *testing.T) {
	var m WayMask
	if m.Lowest() != -1 || m.Highest() != -1 {
		t.Errorf("empty mask Lowest/Highest = %d/%d", m.Lowest(), m.Highest())
	}
	if m.Contiguous() {
		t.Error("empty mask reported contiguous")
	}
	if m.String() != "0" {
		t.Errorf("empty mask String = %q", m.String())
	}
}

func TestMaskContiguous(t *testing.T) {
	if !WayMask(0b0111000).Contiguous() {
		t.Error("0b0111000 should be contiguous")
	}
	if WayMask(0b0101000).Contiguous() {
		t.Error("0b0101000 should not be contiguous")
	}
	if !WayMask(1).Contiguous() {
		t.Error("single way should be contiguous")
	}
}

func TestMaskOverlaps(t *testing.T) {
	a := ContiguousMask(0, 3)
	b := ContiguousMask(2, 2)
	c := ContiguousMask(5, 2)
	if !a.Overlaps(b) {
		t.Error("a and b should overlap")
	}
	if a.Overlaps(c) {
		t.Error("a and c should not overlap")
	}
}

// Property: every contiguous mask built from (lo, n) is contiguous, has
// count n, and spans exactly [lo, lo+n).
func TestContiguousMaskProperty(t *testing.T) {
	f := func(lo, n uint8) bool {
		l := int(lo % 20)
		k := int(n%12) + 1
		m := ContiguousMask(l, k)
		return m.Contiguous() && m.Count() == k && m.Lowest() == l && m.Highest() == l+k-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Overlaps is symmetric and any mask overlaps itself.
func TestOverlapsProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		ma, mb := WayMask(a), WayMask(b)
		if ma.Overlaps(mb) != mb.Overlaps(ma) {
			return false
		}
		return ma == 0 || ma.Overlaps(ma)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaskString(t *testing.T) {
	if s := ContiguousMask(9, 2).String(); s != "11000000000" {
		t.Errorf("String = %q", s)
	}
	if s := ContiguousMask(0, 3).String(); s != "111" {
		t.Errorf("String = %q", s)
	}
}
