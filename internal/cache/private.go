package cache

import "math/bits"

// private is one private cache level (L1D or L2) of a single core: a plain
// set-associative cache, address-bit indexed, LRU replaced, write-back and
// write-allocate. Like the LLC it stores invalidTag in empty ways (so the
// probe loop reads only the tag array) and keeps a per-set valid bitmask
// (so the fill path finds a free way with one AND-NOT).
type private struct {
	ways     int
	sets     int
	setMask  uint64
	fullMask uint32
	tags     []uint64
	state    []uint8
	lru      []uint8
	valid    []uint32
	hits     uint64
	misses   uint64
}

func newPrivate(cfg LevelConfig) *private {
	sets := cfg.Sets()
	n := sets * cfg.Ways
	tags := make([]uint64, n)
	for i := range tags {
		tags[i] = invalidTag
	}
	return &private{
		ways:     cfg.Ways,
		sets:     sets,
		setMask:  uint64(sets - 1),
		fullMask: uint32(FullMask(cfg.Ways)),
		tags:     tags,
		state:    make([]uint8, n),
		lru:      make([]uint8, n),
		valid:    make([]uint32, sets),
	}
}

func (p *private) locate(a uint64) (set, base int, tag uint64) {
	line := a >> LineShift
	set = int(line & p.setMask)
	return set, set * p.ways, line
}

func (p *private) probe(base int, tag uint64) int {
	tags := p.tags[base : base+p.ways]
	for w := range tags {
		if tags[w] == tag {
			return w
		}
	}
	return -1
}

func (p *private) touch(base, w int) {
	old := p.lru[base+w]
	if old == 0 {
		return // already MRU: no rank below can exist
	}
	for i := 0; i < p.ways; i++ {
		if p.lru[base+i] < old {
			p.lru[base+i]++
		}
	}
	p.lru[base+w] = 0
}

// lookup probes for a; on hit it updates LRU (and dirtiness for writes) and
// returns true.
func (p *private) lookup(a uint64, write bool) bool {
	_, base, tag := p.locate(a)
	if w := p.probe(base, tag); w >= 0 {
		p.hits++
		if write {
			p.state[base+w] |= stateDirty
		}
		p.touch(base, w)
		return true
	}
	p.misses++
	return false
}

// fill installs line a, returning the displaced victim (if any).
func (p *private) fill(a uint64, dirty bool) Victim {
	set, base, tag := p.locate(a)
	// The line may already be present (e.g. refetch after invalidate
	// races in tests); just update it.
	if w := p.probe(base, tag); w >= 0 {
		if dirty {
			p.state[base+w] |= stateDirty
		}
		p.touch(base, w)
		return Victim{}
	}
	// Choose victim: lowest-indexed invalid way first, else LRU-most.
	var vw int
	if inv := p.fullMask &^ p.valid[set]; inv != 0 {
		vw = bits.TrailingZeros32(inv)
	} else {
		rank := -1
		for w := 0; w < p.ways; w++ {
			if r := int(p.lru[base+w]); r > rank {
				vw, rank = w, r
			}
		}
	}
	var v Victim
	idx := base + vw
	if p.state[idx]&stateValid != 0 {
		v = Victim{
			Addr:  p.tags[idx] << LineShift,
			Valid: true,
			Dirty: p.state[idx]&stateDirty != 0,
		}
	}
	p.tags[idx] = tag
	p.state[idx] = stateValid
	if dirty {
		p.state[idx] |= stateDirty
	}
	p.valid[set] |= 1 << uint(vw)
	p.touch(base, vw)
	return v
}

// invalidate drops line a if present, returning whether it was present and
// dirty. Used when the DMA engine overwrites a buffer a core has cached.
func (p *private) invalidate(a uint64) (present, dirty bool) {
	set, base, tag := p.locate(a)
	if w := p.probe(base, tag); w >= 0 {
		dirty = p.state[base+w]&stateDirty != 0
		p.state[base+w] = 0
		p.tags[base+w] = invalidTag
		p.valid[set] &^= 1 << uint(w)
		return true, dirty
	}
	return false, false
}

func (p *private) contains(a uint64) bool {
	_, base, tag := p.locate(a)
	return p.probe(base, tag) >= 0
}
