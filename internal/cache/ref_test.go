package cache

import (
	"testing"
)

// refLLC is an executable specification of the LLC's replacement
// behaviour, kept deliberately naive: linear probes over (valid, tag)
// pairs, modulo-rotated victim scans, one-step-at-a-time SRRIP ageing.
// It is the pre-optimisation algorithm, transcribed before the hot-path
// rewrite; the differential tests below drive the production LLC and
// this spec through identical operation streams and require identical
// hits, victims and final state. The LRU insert path implements the
// drift-free semantics (age only lines younger than the evicted line's
// rank), which is the behaviour the production lruInsert is required to
// have after the mask-shrink age-corruption fix.
type refLLC struct {
	cfg     LLCConfig
	tags    [][]uint64
	valid   [][]bool
	dirty   [][]bool
	rrpv    [][]uint8
	setMask uint64
	vicRR   uint32
}

func newRefLLC(cfg LLCConfig) *refLLC {
	r := &refLLC{cfg: cfg, setMask: uint64(cfg.SetsPerSlice - 1)}
	n := cfg.SetsPerSlice * cfg.Ways
	for s := 0; s < cfg.Slices; s++ {
		r.tags = append(r.tags, make([]uint64, n))
		r.valid = append(r.valid, make([]bool, n))
		r.dirty = append(r.dirty, make([]bool, n))
		r.rrpv = append(r.rrpv, make([]uint8, n))
	}
	return r
}

func (r *refLLC) locate(a uint64) (s, base int) {
	h := hashLine(a >> LineShift)
	return int(h % uint64(r.cfg.Slices)), int((h>>24)&r.setMask) * r.cfg.Ways
}

func (r *refLLC) probe(s, base int, tag uint64) int {
	for w := 0; w < r.cfg.Ways; w++ {
		if r.valid[s][base+w] && r.tags[s][base+w] == tag {
			return w
		}
	}
	return -1
}

func (r *refLLC) lruPromote(s, base, w int) {
	old := r.rrpv[s][base+w]
	for i := 0; i < r.cfg.Ways; i++ {
		if r.valid[s][base+i] && i != w && r.rrpv[s][base+i] < old {
			r.rrpv[s][base+i]++
		}
	}
	r.rrpv[s][base+w] = 0
}

func (r *refLLC) victimWay(s, base int, mask WayMask) int {
	for w := 0; w < r.cfg.Ways; w++ {
		if mask.Has(w) && !r.valid[s][base+w] {
			return w
		}
	}
	if r.cfg.Policy == PolicyLRU {
		best, bestRank := -1, -1
		for w := 0; w < r.cfg.Ways; w++ {
			if !mask.Has(w) {
				continue
			}
			if rk := int(r.rrpv[s][base+w]); rk > bestRank {
				best, bestRank = w, rk
			}
		}
		return best
	}
	r.vicRR++
	start := int(r.vicRR) % r.cfg.Ways
	for {
		best, bestRRPV := -1, -1
		for i := 0; i < r.cfg.Ways; i++ {
			w := (start + i) % r.cfg.Ways
			if !mask.Has(w) {
				continue
			}
			if v := int(r.rrpv[s][base+w]); v > bestRRPV {
				best, bestRRPV = w, v
			}
		}
		if best < 0 || bestRRPV >= int(rrpvMax) {
			return best
		}
		for w := 0; w < r.cfg.Ways; w++ {
			if mask.Has(w) {
				r.rrpv[s][base+w]++
			}
		}
	}
}

func (r *refLLC) install(s, base, w int, tag uint64, dirty bool) Victim {
	var v Victim
	idx := base + w
	victimRank := ^uint8(0)
	if r.valid[s][idx] {
		v = Victim{Addr: r.tags[s][idx] << LineShift, Valid: true, Dirty: r.dirty[s][idx]}
		victimRank = r.rrpv[s][idx]
	}
	r.tags[s][idx] = tag
	r.valid[s][idx] = true
	r.dirty[s][idx] = dirty
	if r.cfg.Policy == PolicyLRU {
		// Drift-free LRU insert: the new line takes rank 0 and only
		// lines younger than the departed line's rank age, so ranks of
		// valid lines stay a permutation prefix 0..k-1 forever.
		for i := 0; i < r.cfg.Ways; i++ {
			if r.valid[s][base+i] && i != w && r.rrpv[s][base+i] < victimRank {
				r.rrpv[s][base+i]++
			}
		}
		r.rrpv[s][idx] = 0
	} else {
		r.rrpv[s][idx] = rrpvInsert
	}
	return v
}

func (r *refLLC) Access(a uint64, write bool, mask WayMask) (bool, Victim) {
	s, base := r.locate(a)
	tag := a >> LineShift
	if w := r.probe(s, base, tag); w >= 0 {
		if write {
			r.dirty[s][base+w] = true
		}
		if r.cfg.Policy == PolicyLRU {
			r.lruPromote(s, base, w)
		}
		return true, Victim{}
	}
	if mask == 0 {
		mask = FullMask(r.cfg.Ways)
	}
	w := r.victimWay(s, base, mask)
	return false, r.install(s, base, w, tag, write)
}

func (r *refLLC) FillWriteback(a uint64, mask WayMask) Victim {
	s, base := r.locate(a)
	tag := a >> LineShift
	if w := r.probe(s, base, tag); w >= 0 {
		r.dirty[s][base+w] = true
		if r.cfg.Policy == PolicyLRU {
			r.lruPromote(s, base, w)
		} else {
			r.rrpv[s][base+w] = rrpvInsert
		}
		return Victim{}
	}
	if mask == 0 {
		mask = FullMask(r.cfg.Ways)
	}
	return r.install(s, base, r.victimWay(s, base, mask), tag, true)
}

func (r *refLLC) IOWrite(a uint64, ddioMask WayMask) (bool, Victim) {
	s, base := r.locate(a)
	tag := a >> LineShift
	if w := r.probe(s, base, tag); w >= 0 {
		r.dirty[s][base+w] = true
		if r.cfg.Policy == PolicyLRU {
			r.lruPromote(s, base, w)
		} else {
			r.rrpv[s][base+w] = 0
		}
		return true, Victim{}
	}
	if ddioMask == 0 {
		ddioMask = FullMask(r.cfg.Ways)
	}
	return false, r.install(s, base, r.victimWay(s, base, ddioMask), tag, true)
}

func (r *refLLC) IORead(a uint64) bool {
	s, base := r.locate(a)
	return r.probe(s, base, a>>LineShift) >= 0
}

func (r *refLLC) AmbientFill(a uint64) Victim {
	s, base := r.locate(a)
	tag := a >> LineShift
	if r.probe(s, base, tag) >= 0 {
		return Victim{}
	}
	full := FullMask(r.cfg.Ways)
	return r.install(s, base, r.victimWay(s, base, full), tag, false)
}

// WayOf mirrors LLC.WayOf for state comparison.
func (r *refLLC) WayOf(a uint64) int {
	s, base := r.locate(a)
	return r.probe(s, base, a>>LineShift)
}

// diffSplitmix is a tiny local PRNG so the differential op streams are
// seeded and self-contained.
type diffSplitmix uint64

func (s *diffSplitmix) next() uint64 {
	*s += 0x9E3779B97F4A7C15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// runDifferential drives the production LLC and the reference spec
// through nOps randomized operations (demand accesses, writeback fills,
// DDIO writes, device reads, ambient fills) under rotating, frequently
// shrinking way masks, failing on the first divergence in hit results or
// displaced victims, then cross-checks residency for a sample of the
// address space.
func runDifferential(t *testing.T, policy ReplacementPolicy, seed uint64, nOps int) {
	t.Helper()
	cfg := LLCConfig{Slices: 3, Ways: 11, SetsPerSlice: 16, HitCycles: 44, Policy: policy}
	l := NewLLC(cfg, 2)
	r := newRefLLC(cfg)
	rng := diffSplitmix(seed)

	// Small address pool so sets actually fill and evict.
	const addrs = 3 * 11 * 16 * 3
	masks := []WayMask{
		FullMask(11),
		ContiguousMask(0, 4),
		ContiguousMask(2, 5),   // overlaps the first partially
		ContiguousMask(7, 4),   // disjoint high ways
		ContiguousMask(0, 1),   // maximal shrink
		WayMask(0b10101010101), // non-contiguous: the general datapath case
	}
	for i := 0; i < nOps; i++ {
		a := (rng.next() % addrs) << LineShift
		mask := masks[rng.next()%uint64(len(masks))]
		op := rng.next() % 8
		switch {
		case op < 4: // demand access, read or write
			write := op%2 == 0
			gotHit, gotV := l.Access(int(rng.next()%2), a, write, mask)
			wantHit, wantV := r.Access(a, write, mask)
			if gotHit != wantHit || gotV != wantV {
				t.Fatalf("op %d Access(%#x, write=%v, mask=%s): got (%v,%+v) want (%v,%+v)",
					i, a, write, mask, gotHit, gotV, wantHit, wantV)
			}
		case op < 5:
			gotV := l.FillWriteback(a, mask)
			wantV := r.FillWriteback(a, mask)
			if gotV != wantV {
				t.Fatalf("op %d FillWriteback(%#x, mask=%s): got %+v want %+v", i, a, mask, gotV, wantV)
			}
		case op < 6:
			gotHit, gotV := l.IOWrite(a, mask)
			wantHit, wantV := r.IOWrite(a, mask)
			if gotHit != wantHit || gotV != wantV {
				t.Fatalf("op %d IOWrite(%#x, mask=%s): got (%v,%+v) want (%v,%+v)",
					i, a, mask, gotHit, gotV, wantHit, wantV)
			}
		case op < 7:
			if got, want := l.IORead(a), r.IORead(a); got != want {
				t.Fatalf("op %d IORead(%#x): got %v want %v", i, a, got, want)
			}
		default:
			gotV := l.AmbientFill(a)
			wantV := r.AmbientFill(a)
			if gotV != wantV {
				t.Fatalf("op %d AmbientFill(%#x): got %+v want %+v", i, a, gotV, wantV)
			}
		}
	}
	for a := uint64(0); a < addrs; a++ {
		addr := a << LineShift
		if got, want := l.WayOf(addr), r.WayOf(addr); got != want {
			t.Fatalf("final state: WayOf(%#x) = %d, ref %d", addr, got, want)
		}
	}
}

// TestLLCDifferentialSRRIP proves the optimised SRRIP datapath (sentinel
// probes, batched ageing, rotation without modulo) is operation-for-
// operation identical to the naive pre-optimisation algorithm.
func TestLLCDifferentialSRRIP(t *testing.T) {
	for _, seed := range []uint64{1, 42, 0xDEADBEEF} {
		runDifferential(t, PolicySRRIP, seed, 60000)
	}
}

// TestLLCDifferentialLRU proves the LRU path matches the drift-free
// reference semantics under the same streams, mask shrinks included.
func TestLLCDifferentialLRU(t *testing.T) {
	for _, seed := range []uint64{1, 42, 0xDEADBEEF} {
		runDifferential(t, PolicyLRU, seed, 60000)
	}
}
