package cache

import (
	"strconv"

	"iatsim/internal/telemetry"
)

// sliceTel holds the per-slice telemetry handles. The zero value (all
// nil) is the uninstrumented state: every increment below degrades to a
// single nil-check branch, which the cache benchmarks show is free and
// TestAccessNilSinkAllocatesNothing proves allocation-free.
type sliceTel struct {
	hits      *telemetry.Counter // demand hits
	misses    *telemetry.Counter // demand misses
	evictions *telemetry.Counter // valid lines displaced by any install
	fillsDDIO *telemetry.Counter // installs on the inbound-I/O path (IOWrite allocate)
	fillsApp  *telemetry.Counter // installs on core paths (demand miss, L2 writeback, ambient)
}

// AttachTelemetry resolves per-slice counters from s. The fill counters
// split installs by datapath — the LLC does not know the DDIO way mask,
// so "DDIO-way vs app-way" is accounted where it is decided: IOWrite
// allocates fill the DDIO mask, everything else fills the tenant masks.
// A nil (or typed-nil) sink leaves the handles nil.
func (l *LLC) AttachTelemetry(s telemetry.Sink) {
	if s == nil {
		return
	}
	for i := range l.slices {
		scope := "slice" + strconv.Itoa(i)
		l.slices[i].tel = sliceTel{
			hits:      s.Counter("cache", scope, "hits"),
			misses:    s.Counter("cache", scope, "misses"),
			evictions: s.Counter("cache", scope, "evictions"),
			fillsDDIO: s.Counter("cache", scope, "fills_ddio"),
			fillsApp:  s.Counter("cache", scope, "fills_app"),
		}
	}
}
