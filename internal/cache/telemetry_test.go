package cache

import (
	"testing"

	"iatsim/internal/telemetry"
)

// The uninstrumented hot path must not allocate: an unattached LLC's
// telemetry handles are nil, and nil-handle increments are single
// branches. This is the contract that lets every layer wire telemetry
// unconditionally.
func TestAccessNilSinkAllocatesNothing(t *testing.T) {
	l := testLLC(1)
	mask := FullMask(8)
	var a uint64
	allocs := testing.AllocsPerRun(1000, func() {
		l.Access(0, a, false, mask)
		a += LineSize
	})
	if allocs != 0 {
		t.Fatalf("uninstrumented Access allocates %v per run, want 0", allocs)
	}
}

// Telemetry-on runs also must not allocate per access: handles are
// resolved once at attach time and increments are field updates.
func TestAccessLiveSinkAllocatesNothing(t *testing.T) {
	l := testLLC(1)
	l.AttachTelemetry(telemetry.NewRegistry())
	mask := FullMask(8)
	var a uint64
	allocs := testing.AllocsPerRun(1000, func() {
		l.Access(0, a, false, mask)
		a += LineSize
	})
	if allocs != 0 {
		t.Fatalf("instrumented Access allocates %v per run, want 0", allocs)
	}
}

func TestAttachTelemetryCounts(t *testing.T) {
	l := testLLC(1)
	reg := telemetry.NewRegistry()
	l.AttachTelemetry(reg)
	mask := FullMask(8)

	const line = 0x4000
	l.Access(0, line, false, mask) // miss + app fill
	l.Access(0, line, false, mask) // hit
	l.IOWrite(0x8000, mask)        // DDIO write allocate

	sum := func(name string) (total uint64) {
		for _, m := range reg.Snapshot(0).Metrics {
			if m.Subsystem == "cache" && m.Name == name {
				total += m.Counter
			}
		}
		return total
	}
	if got := sum("hits"); got != 1 {
		t.Fatalf("hits = %d, want 1", got)
	}
	if got := sum("misses"); got != 1 {
		t.Fatalf("misses = %d, want 1", got)
	}
	if got := sum("fills_app"); got != 1 {
		t.Fatalf("fills_app = %d, want 1", got)
	}
	if got := sum("fills_ddio"); got != 1 {
		t.Fatalf("fills_ddio = %d, want 1", got)
	}
	// Telemetry must agree with the LLC's own demand statistics.
	st := l.TotalStats()
	if st.Hits != 1 || st.Lookups != 2 {
		t.Fatalf("LLC stats disagree: %+v", st)
	}
}

// benchAccess drives the demand path over a working set that overflows
// the test LLC, exercising hits, misses, and evictions.
func benchAccess(b *testing.B, l *LLC) {
	mask := FullMask(8)
	var a uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Access(0, a, i%8 == 0, mask)
		a = (a + 3*LineSize) % (1 << 22)
	}
}

func BenchmarkLLCAccessNilSink(b *testing.B) {
	benchAccess(b, testLLC(1))
}

func BenchmarkLLCAccessLiveSink(b *testing.B) {
	l := testLLC(1)
	l.AttachTelemetry(telemetry.NewRegistry())
	benchAccess(b, l)
}

func BenchmarkHistogramObserve(b *testing.B) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("mem", "", "lat", []float64{60, 90, 120, 180, 240, 360, 480, 720, 960})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 1024))
	}
}

func BenchmarkSnapshot(b *testing.B) {
	l := testLLC(1)
	reg := telemetry.NewRegistry()
	l.AttachTelemetry(reg)
	mask := FullMask(8)
	for i := 0; i < 4096; i++ {
		l.Access(0, uint64(i)*LineSize, false, mask)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg.Snapshot(float64(i))
	}
}
