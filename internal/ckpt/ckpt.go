// Package ckpt is the deterministic checkpoint/restore subsystem: a
// versioned, checksum'd envelope around the serialised control-plane
// state of one IAT daemon (core.DaemonState, which embeds the active
// policy's and shadow evaluator's state) plus the fault injector's PRNG
// stream position. A daemon killed at iteration k and resumed from its
// checkpoint continues byte-identically from k+1 — the envelope exists
// so that guarantee survives real-world file corruption: every decode
// failure is a typed error (never a panic), and callers fall back to a
// cold start.
//
// Envelope layout (all integers little-endian):
//
//	offset size  field
//	0      4     magic "IATC"
//	4      4     format version (currently 1)
//	8      4     payload length in bytes
//	12     4     IEEE CRC32 of the payload
//	16     n     payload (JSON-encoded Checkpoint)
//
// The payload is encoding/json output of structs with fixed field order
// and sorted map keys, so identical state yields identical files — the
// property the resume-determinism tests byte-compare against.
package ckpt

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"

	"iatsim/internal/core"
	"iatsim/internal/faults"
)

// Version is the current envelope format version. Decoders accept
// exactly the versions they know how to migrate; anything newer is an
// UnknownVersionError.
const Version uint32 = 1

// magic identifies a checkpoint file.
var magic = [4]byte{'I', 'A', 'T', 'C'}

// headerSize is the fixed envelope prefix before the payload.
const headerSize = 16

// Typed decode errors: every way a checkpoint file can be unusable maps
// to one of these (or UnknownVersionError), so callers can distinguish
// "corrupt, cold start" from programming errors.
var (
	// ErrEmpty is returned for a zero-length checkpoint (e.g. a crash
	// during a non-atomic copy).
	ErrEmpty = errors.New("ckpt: empty checkpoint")
	// ErrTruncated is returned when the file is shorter than its header
	// claims the payload to be.
	ErrTruncated = errors.New("ckpt: truncated checkpoint")
	// ErrBadMagic is returned when the file does not start with the
	// checkpoint magic.
	ErrBadMagic = errors.New("ckpt: not a checkpoint file (bad magic)")
	// ErrChecksum is returned when the payload does not match its CRC32.
	ErrChecksum = errors.New("ckpt: payload checksum mismatch")
)

// UnknownVersionError is returned when the envelope version is not one
// this build can decode (a checkpoint from a future build).
type UnknownVersionError struct {
	Version uint32
}

func (e UnknownVersionError) Error() string {
	return fmt.Sprintf("ckpt: unknown checkpoint version %d (this build reads <= %d)", e.Version, Version)
}

// Checkpoint is one captured control-plane state: the daemon (policy and
// shadow state embedded), optionally the fault injector's stream
// position, and enough identity to validate a resume — the iteration
// count and sim time the capture happened at, and a hash of the run
// configuration so a checkpoint is never silently resumed into a
// different scenario.
type Checkpoint struct {
	Iteration  uint64                `json:"iteration"`
	SimTimeNS  float64               `json:"sim_time_ns"`
	ConfigHash string                `json:"config_hash,omitempty"`
	Daemon     core.DaemonState      `json:"daemon"`
	Injector   *faults.InjectorState `json:"injector,omitempty"`
}

// Encode wraps payload in the checksum'd envelope.
func Encode(payload []byte) []byte {
	out := make([]byte, headerSize+len(payload))
	copy(out[0:4], magic[:])
	binary.LittleEndian.PutUint32(out[4:8], Version)
	binary.LittleEndian.PutUint32(out[8:12], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[12:16], crc32.ChecksumIEEE(payload))
	copy(out[headerSize:], payload)
	return out
}

// Decode validates the envelope and returns the payload. All failures
// are typed errors.
func Decode(data []byte) ([]byte, error) {
	if len(data) == 0 {
		return nil, ErrEmpty
	}
	if len(data) < headerSize {
		return nil, ErrTruncated
	}
	if [4]byte(data[0:4]) != magic {
		return nil, ErrBadMagic
	}
	v := binary.LittleEndian.Uint32(data[4:8])
	if v != Version {
		return nil, UnknownVersionError{Version: v}
	}
	n := binary.LittleEndian.Uint32(data[8:12])
	payload := data[headerSize:]
	if uint64(len(payload)) != uint64(n) {
		return nil, ErrTruncated
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[12:16]) {
		return nil, ErrChecksum
	}
	return payload, nil
}

// Marshal serialises a checkpoint into its enveloped byte form.
// Deterministic: identical checkpoints yield identical bytes.
func Marshal(c *Checkpoint) ([]byte, error) {
	payload, err := json.Marshal(c)
	if err != nil {
		return nil, fmt.Errorf("ckpt: marshal: %w", err)
	}
	return Encode(payload), nil
}

// Unmarshal decodes an enveloped checkpoint. Corruption and version
// mismatches come back as the package's typed errors.
func Unmarshal(data []byte) (*Checkpoint, error) {
	payload, err := Decode(data)
	if err != nil {
		return nil, err
	}
	var c Checkpoint
	if err := json.Unmarshal(payload, &c); err != nil {
		return nil, fmt.Errorf("ckpt: decode payload: %w", err)
	}
	return &c, nil
}

// WriteFile atomically writes a checkpoint to path: the bytes land in a
// temporary file in the same directory first and are renamed over path,
// so a crash mid-write never leaves a half-written checkpoint where a
// resume would find it.
func WriteFile(path string, c *Checkpoint) error {
	data, err := Marshal(c)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("ckpt: write %s: %w", path, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: write %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: write %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: write %s: %w", path, err)
	}
	return nil
}

// ReadFile reads and decodes a checkpoint file.
func ReadFile(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Unmarshal(data)
}

// ConfigHash folds the identifying parts of a run configuration (tenant
// spec, scale, interval, chaos profile and seed, policy, shadows ...)
// into a short stable hash, recorded in the checkpoint and verified at
// resume so state is never restored into a different scenario.
func ConfigHash(parts ...string) string {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// FileHash returns the ConfigHash-style FNV-1a hash of a file's bytes,
// used by the harness manifest to record which checkpoint a resumed run
// started from.
func FileHash(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("%016x", h.Sum64()), nil
}
