package ckpt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"iatsim/internal/core"
	"iatsim/internal/faults"
)

// sampleCheckpoint builds a representative checkpoint with nested state.
func sampleCheckpoint() *Checkpoint {
	prof, err := faults.ProfileByName("heavy")
	if err != nil {
		panic(err)
	}
	inj := faults.NewInjector(prof, 42)
	for i := 0; i < 10; i++ {
		inj.DropRxDesc()
		inj.CrashHost()
	}
	st := inj.Snapshot()
	return &Checkpoint{
		Iteration:  17,
		SimTimeNS:  5.1e9,
		ConfigHash: ConfigHash("tenants", "scale=6400", "chaos=heavy:7"),
		Daemon: core.DaemonState{
			State:    2,
			NWays:    11,
			DDIOWays: 4,
			TopCLOS:  1,
			Groups: []core.GroupState{
				{CLOS: 1, Names: []string{"fwd0"}, IO: true, Width: 3, Cores: []int{0, 1}},
				{CLOS: 2, Names: []string{"batch"}, Width: 2, Cores: []int{2}},
			},
			PolicyName:  "iat",
			PolicyState: []byte(`{"have":true}`),
			Iters:       17,
		},
		Injector: &st,
	}
}

// TestRoundTrip: marshal → unmarshal reproduces the checkpoint, and
// marshalling is byte-deterministic.
func TestRoundTrip(t *testing.T) {
	c := sampleCheckpoint()
	data, err := Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("marshalling the same checkpoint twice produced different bytes")
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	redata, err := Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, redata) {
		t.Fatal("decode(encode(c)) did not re-encode to identical bytes")
	}
	if got.Iteration != c.Iteration || got.ConfigHash != c.ConfigHash {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if got.Injector == nil || got.Injector.State != c.Injector.State {
		t.Fatalf("round trip lost injector state: %+v", got.Injector)
	}
}

// TestCorruption: every corruption mode yields its typed error — never a
// panic, never a silently-wrong checkpoint.
func TestCorruption(t *testing.T) {
	data, err := Marshal(sampleCheckpoint())
	if err != nil {
		t.Fatal(err)
	}

	if _, err := Unmarshal(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty: got %v, want ErrEmpty", err)
	}
	if _, err := Unmarshal(data[:10]); !errors.Is(err, ErrTruncated) {
		t.Errorf("short header: got %v, want ErrTruncated", err)
	}
	if _, err := Unmarshal(data[:len(data)-5]); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated payload: got %v, want ErrTruncated", err)
	}

	bad := bytes.Clone(data)
	bad[0] = 'X'
	if _, err := Unmarshal(bad); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: got %v, want ErrBadMagic", err)
	}

	bad = bytes.Clone(data)
	bad[headerSize+3] ^= 0x40 // flip a payload bit
	if _, err := Unmarshal(bad); !errors.Is(err, ErrChecksum) {
		t.Errorf("flipped payload byte: got %v, want ErrChecksum", err)
	}

	bad = bytes.Clone(data)
	bad[12] ^= 0x01 // flip a checksum byte
	if _, err := Unmarshal(bad); !errors.Is(err, ErrChecksum) {
		t.Errorf("flipped checksum byte: got %v, want ErrChecksum", err)
	}

	bad = bytes.Clone(data)
	binary.LittleEndian.PutUint32(bad[4:8], Version+3)
	_, err = Unmarshal(bad)
	var uv UnknownVersionError
	if !errors.As(err, &uv) || uv.Version != Version+3 {
		t.Errorf("future version: got %v, want UnknownVersionError{%d}", err, Version+3)
	}

	// Valid envelope around a payload that is not a checkpoint.
	if _, err := Unmarshal(Encode([]byte("{nope"))); err == nil {
		t.Error("garbage JSON payload accepted")
	}
}

// TestWriteReadFile: the atomic write path round-trips and leaves no
// temp files behind; reading a missing or empty file errors cleanly.
func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "host.ckpt")
	c := sampleCheckpoint()
	if err := WriteFile(path, c); err != nil {
		t.Fatal(err)
	}
	// Overwrite must go through rename too.
	c.Iteration = 18
	if err := WriteFile(path, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iteration != 18 {
		t.Fatalf("read iteration %d, want 18", got.Iteration)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("checkpoint dir has %d entries (temp files left behind?)", len(ents))
	}

	if _, err := ReadFile(filepath.Join(dir, "missing.ckpt")); err == nil {
		t.Error("reading a missing checkpoint succeeded")
	}
	empty := filepath.Join(dir, "empty.ckpt")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(empty); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty file: got %v, want ErrEmpty", err)
	}
}

// TestConfigHash: order- and boundary-sensitive, stable.
func TestConfigHash(t *testing.T) {
	a := ConfigHash("x", "y")
	if a != ConfigHash("x", "y") {
		t.Error("ConfigHash not stable")
	}
	if a == ConfigHash("y", "x") {
		t.Error("ConfigHash ignores order")
	}
	if ConfigHash("xy") == ConfigHash("x", "y") {
		t.Error("ConfigHash ignores part boundaries")
	}
}

// FuzzCkptRoundTrip: for arbitrary bytes, Unmarshal never panics; for
// bytes that decode, re-encoding the decoded checkpoint decodes again to
// the same payload.
func FuzzCkptRoundTrip(f *testing.F) {
	seed, err := Marshal(sampleCheckpoint())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte("IATC"))
	f.Add(Encode(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Unmarshal(data)
		if err != nil {
			return
		}
		re, err := Marshal(c)
		if err != nil {
			t.Fatalf("re-marshal of decoded checkpoint failed: %v", err)
		}
		c2, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		re2, err := Marshal(c2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatal("decode/encode round trip not a fixed point")
		}
	})
}
