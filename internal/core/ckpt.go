package core

import (
	"errors"
	"fmt"

	"iatsim/internal/rdt"
)

// Checkpoint/restore of the daemon's control-plane state. SnapshotState
// captures everything the daemon accumulated since its first Tick — FSM
// state, group layout, counter baselines, watchdog/backoff state, policy
// and shadow-evaluator state — so a killed daemon process resumed from a
// checkpoint continues byte-identically. Configuration (Params, Options,
// the System binding) and wall-clock artefacts (StepTimings) are
// deliberately excluded: the former is re-supplied by whoever constructs
// the resumed daemon, the latter is not simulation state.

// ErrStateMismatch is returned by RestoreState when a checkpoint does not
// fit the daemon it is being restored into (different policy, different
// cache geometry). Callers should treat it as "cold start instead".
var ErrStateMismatch = errors.New("core: checkpoint does not match daemon configuration")

// GroupState is one allocation group's serialised form.
type GroupState struct {
	CLOS       int      `json:"clos"`
	Names      []string `json:"names"`
	Priority   Priority `json:"priority"`
	IO         bool     `json:"io"`
	Width      int      `json:"width"`
	RefsPerSec float64  `json:"refs_per_sec"`
	MissPerSec float64  `json:"miss_per_sec"`
	MissRate   float64  `json:"miss_rate"`
	Cores      []int    `json:"cores"`
}

// DaemonState is the daemon's serialised control-plane state. All fields
// are exported scalars, slices in registration order, or maps that are
// only marshalled through encoding/json (which sorts keys), so identical
// daemon state always serialises to identical bytes.
type DaemonState struct {
	State    State        `json:"state"`
	NeedInfo bool         `json:"need_info"`
	Groups   []GroupState `json:"groups"`
	NWays    int          `json:"n_ways"`
	DDIOWays int          `json:"ddio_ways"`
	TopCLOS  int          `json:"top_clos"`

	LastIterNS  float64                  `json:"last_iter_ns"`
	PrevCumTime float64                  `json:"prev_cum_time"`
	PrevCum     map[int]rdt.CoreCounters `json:"prev_cum,omitempty"`
	PrevDDIO    rdt.DDIOCounters         `json:"prev_ddio"`
	HavePrevCum bool                     `json:"have_prev_cum"`

	PolicyName  string `json:"policy_name"`
	PolicyState []byte `json:"policy_state"`
	ShadowState []byte `json:"shadow_state,omitempty"`

	Iters    uint64      `json:"iters"`
	Unstable uint64      `json:"unstable"`
	Health   HealthStats `json:"health"`

	ConsecBad       int   `json:"consec_bad"`
	SaneStreak      int   `json:"sane_streak"`
	Degraded        bool  `json:"degraded"`
	RearmNeed       int   `json:"rearm_need"`
	CleanStreak     int   `json:"clean_streak"`
	WriteFailedIter bool  `json:"write_failed_iter"`
	TelState        State `json:"tel_state"`
}

// SnapshotState captures the daemon's control-plane state between
// iterations.
func (d *Daemon) SnapshotState() (DaemonState, error) {
	ps, err := d.pol.Snapshot()
	if err != nil {
		return DaemonState{}, fmt.Errorf("core: snapshot policy %s: %w", d.pol.Name(), err)
	}
	st := DaemonState{
		State:    d.state,
		NeedInfo: d.needInfo,
		NWays:    d.nWays,
		DDIOWays: d.ddioWays,
		TopCLOS:  d.topCLOS,

		LastIterNS:  d.lastIterNS,
		PrevCumTime: d.prevCumTime,
		PrevDDIO:    d.prevDDIO,
		HavePrevCum: d.havePrevCum,

		PolicyName:  d.pol.Name(),
		PolicyState: ps,

		Iters:    d.iters,
		Unstable: d.unstable,
		Health:   d.health,

		ConsecBad:       d.consecBad,
		SaneStreak:      d.saneStreak,
		Degraded:        d.degraded,
		RearmNeed:       d.rearmNeed,
		CleanStreak:     d.cleanStreak,
		WriteFailedIter: d.writeFailedIter,
		TelState:        d.telState,
	}
	for _, g := range d.groups {
		st.Groups = append(st.Groups, GroupState{
			CLOS: g.CLOS, Names: append([]string(nil), g.Names...),
			Priority: g.Priority, IO: g.IO, Width: g.Width,
			RefsPerSec: g.RefsPerSec, MissPerSec: g.MissPerSec, MissRate: g.MissRate,
			Cores: append([]int(nil), d.cores[g.CLOS]...),
		})
	}
	if d.havePrevCum {
		st.PrevCum = make(map[int]rdt.CoreCounters, len(d.prevCum))
		for clos, c := range d.prevCum {
			st.PrevCum[clos] = c
		}
	}
	if d.shadows != nil && !d.shadows.Empty() {
		ss, err := d.shadows.Snapshot()
		if err != nil {
			return DaemonState{}, err
		}
		st.ShadowState = ss
	}
	return st, nil
}

// RestoreState rewinds the daemon to a checkpointed state. The checkpoint
// must have been taken from a daemon with the same cache geometry and the
// same active policy (by Name); mismatches return ErrStateMismatch. On
// any error the caller should fall back to Restart() — the daemon (and
// its policy) may be partially restored.
func (d *Daemon) RestoreState(st DaemonState) error {
	if st.NWays != d.nWays {
		return fmt.Errorf("%w: checkpoint has %d ways, daemon has %d", ErrStateMismatch, st.NWays, d.nWays)
	}
	if st.PolicyName != d.pol.Name() {
		return fmt.Errorf("%w: checkpoint policy %q, daemon runs %q", ErrStateMismatch, st.PolicyName, d.pol.Name())
	}
	if err := d.pol.Restore(st.PolicyState); err != nil {
		return err
	}
	if len(st.ShadowState) > 0 || (d.shadows != nil && !d.shadows.Empty()) {
		shadowBytes := st.ShadowState
		if len(shadowBytes) == 0 {
			return fmt.Errorf("%w: checkpoint has no shadow state, daemon has shadows attached", ErrStateMismatch)
		}
		if err := d.shadows.Restore(shadowBytes); err != nil {
			return err
		}
	}

	d.state = st.State
	d.needInfo = st.NeedInfo
	d.nWays = st.NWays
	d.ddioWays = st.DDIOWays
	d.topCLOS = st.TopCLOS

	d.lastIterNS = st.LastIterNS
	d.prevCumTime = st.PrevCumTime
	d.prevDDIO = st.PrevDDIO
	d.havePrevCum = st.HavePrevCum
	d.prevCum = make(map[int]rdt.CoreCounters, len(st.PrevCum))
	for clos, c := range st.PrevCum {
		d.prevCum[clos] = c
	}

	d.groups = d.groups[:0]
	d.byCLOS = make(map[int]*Group, len(st.Groups))
	d.cores = make(map[int][]int, len(st.Groups))
	for _, gs := range st.Groups {
		g := &Group{
			CLOS: gs.CLOS, Names: append([]string(nil), gs.Names...),
			Priority: gs.Priority, IO: gs.IO, Width: gs.Width,
			RefsPerSec: gs.RefsPerSec, MissPerSec: gs.MissPerSec, MissRate: gs.MissRate,
		}
		d.groups = append(d.groups, g)
		d.byCLOS[g.CLOS] = g
		d.cores[g.CLOS] = append([]int(nil), gs.Cores...)
	}

	d.iters = st.Iters
	d.unstable = st.Unstable
	// st.Health is the raw internal struct: its Degraded field is derived
	// (overlaid by Health() from d.degraded on read) and must round-trip
	// verbatim, or a restore-while-degraded would pin it true forever.
	d.health = st.Health

	d.consecBad = st.ConsecBad
	d.saneStreak = st.SaneStreak
	d.degraded = st.Degraded
	d.rearmNeed = st.RearmNeed
	d.cleanStreak = st.CleanStreak
	d.writeFailedIter = st.WriteFailedIter
	d.telState = st.TelState
	return nil
}

// Restart is a cold start after an unplanned daemon death without (or
// failing) a checkpoint restore: all accumulated control-plane state is
// dropped, exactly as if the process had been relaunched over the same
// platform. The hardware keeps whatever masks were programmed — the
// first Tick re-runs Get Tenant Info and adopts them, like a freshly
// booted daemon does. The policy instance survives but is Reset (its
// decision baselines are dropped); an attached shadow evaluator cold
// starts too.
func (d *Daemon) Restart() {
	d.state = LowKeep
	d.needInfo = true
	d.groups = d.groups[:0]
	d.byCLOS = nil
	d.cores = nil
	d.ddioWays = 0
	d.topCLOS = -1
	d.lastIterNS = -1e18
	d.prevCumTime = 0
	d.prevCum = nil
	d.prevDDIO = rdt.DDIOCounters{}
	d.havePrevCum = false
	d.pol.Reset()
	if d.shadows != nil {
		d.shadows.Restart()
	}
	d.timings = StepTimings{}
	d.iters = 0
	d.unstable = 0
	d.health = HealthStats{}
	d.consecBad = 0
	d.saneStreak = 0
	d.degraded = false
	d.rearmNeed = 0
	d.cleanStreak = 0
	d.writeFailedIter = false
	d.telState = LowKeep
}
