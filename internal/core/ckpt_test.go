package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"iatsim/internal/policy"
)

// ckptTenants is the fixture every checkpoint test runs over.
func ckptTenants() []TenantInfo {
	return []TenantInfo{ioTenant("fwd", 1, 0, PC), beTenant("batch", 2, 1)}
}

// ckptLoad advances the mock counters for tick i of a deterministic
// schedule that alternates I/O pressure phases with quiet ones, so the
// FSM visits grow, keep and reclaim states.
func ckptLoad(m *mockSys, i int) {
	m.advance(0, 1000, 2000, 100, 10)
	m.advance(1, 1000, 2000, uint64(1000+i%5*400), 100)
	if i%11 < 6 {
		m.advanceDDIO(100_000, uint64(1_000_000+i*200_000)/10)
	} else {
		m.advanceDDIO(100_000, 1)
	}
}

// record wires a trace recorder onto d and returns the trace slice.
func record(d *Daemon) *[]string {
	var trace []string
	d.OnIteration = func(it IterationInfo) {
		trace = append(trace, fmt.Sprintf("%.0f %v stable=%v %q ddio=%d mask=%v masks=%v miss=%.3f deg=%v",
			it.NowNS, it.State, it.Stable, it.Action, it.DDIOWays, it.DDIOMask, it.Masks, it.DDIOMissPS, it.Degraded))
	}
	return &trace
}

// TestDaemonSnapshotRestoreContinuesIdentically: snapshot at tick k, hand
// the platform to a freshly constructed daemon, restore, and the trace
// from k+1 onward is identical to an uninterrupted run's — the tentpole
// guarantee at the core layer.
func TestDaemonSnapshotRestoreContinuesIdentically(t *testing.T) {
	const cut, total = 15, 32

	// Uninterrupted reference run.
	mRef := newMockSys(ckptTenants())
	dRef := testDaemon(t, mRef, Options{})
	refTrace := record(dRef)
	for i := 0; i < total; i++ {
		ckptLoad(mRef, i)
		dRef.Tick(float64(i+1) * 100e6)
	}

	// Interrupted run: same schedule up to the cut...
	m := newMockSys(ckptTenants())
	d1 := testDaemon(t, m, Options{})
	preTrace := record(d1)
	for i := 0; i < cut; i++ {
		ckptLoad(m, i)
		d1.Tick(float64(i+1) * 100e6)
	}
	snap, err := d1.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	// Snapshots must serialise deterministically.
	b1, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}

	// ... then the process dies; a new daemon over the same platform
	// restores the checkpoint and carries on.
	d2 := testDaemon(t, m, Options{})
	if err := d2.RestoreState(snap); err != nil {
		t.Fatal(err)
	}
	resnap, err := d2.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(resnap)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatalf("restore+snapshot not byte-identical:\n%s\nvs\n%s", b1, b2)
	}
	postTrace := record(d2)
	for i := cut; i < total; i++ {
		ckptLoad(m, i)
		d2.Tick(float64(i+1) * 100e6)
	}

	got := append(append([]string{}, *preTrace...), *postTrace...)
	if len(got) != len(*refTrace) {
		t.Fatalf("resumed run emitted %d iterations, reference %d", len(got), len(*refTrace))
	}
	for i := range got {
		if got[i] != (*refTrace)[i] {
			t.Fatalf("iteration %d diverged after resume:\n got %s\nwant %s", i, got[i], (*refTrace)[i])
		}
	}
	if m.ddio != mRef.ddio {
		t.Fatalf("final DDIO mask %v, reference %v", m.ddio, mRef.ddio)
	}
	for clos, want := range mRef.masks {
		if m.masks[clos] != want {
			t.Fatalf("CLOS %d mask %v, reference %v", clos, m.masks[clos], want)
		}
	}
	gotIters, _ := d2.Iterations()
	refIters, _ := dRef.Iterations()
	if gotIters != refIters {
		t.Fatalf("iterations after resume = %d, reference %d", gotIters, refIters)
	}
}

// TestDaemonSnapshotCarriesShadows: an attached shadow evaluator's state
// rides in the daemon snapshot, and a restored daemon reproduces the
// uninterrupted run's shadow summaries.
func TestDaemonSnapshotCarriesShadows(t *testing.T) {
	specs, err := policy.ParseShadowSpecs("static:3,greedy")
	if err != nil {
		t.Fatal(err)
	}
	const cut, total = 12, 24

	mRef := newMockSys(ckptTenants())
	dRef := testDaemon(t, mRef, Options{})
	dRef.AttachShadows(policy.NewEvaluator(specs))
	for i := 0; i < total; i++ {
		ckptLoad(mRef, i)
		dRef.Tick(float64(i+1) * 100e6)
	}

	m := newMockSys(ckptTenants())
	d1 := testDaemon(t, m, Options{})
	d1.AttachShadows(policy.NewEvaluator(specs))
	for i := 0; i < cut; i++ {
		ckptLoad(m, i)
		d1.Tick(float64(i+1) * 100e6)
	}
	snap, err := d1.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.ShadowState) == 0 {
		t.Fatal("snapshot carries no shadow state")
	}

	d2 := testDaemon(t, m, Options{})
	d2.AttachShadows(policy.NewEvaluator(specs))
	if err := d2.RestoreState(snap); err != nil {
		t.Fatal(err)
	}
	for i := cut; i < total; i++ {
		ckptLoad(m, i)
		d2.Tick(float64(i+1) * 100e6)
	}
	want, got := dRef.Shadows().Summaries(), d2.Shadows().Summaries()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("shadow %d summary after resume = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestDaemonRestoreMismatch: checkpoints from a different configuration
// are rejected with ErrStateMismatch, and corrupt policy state is a
// plain error — never a panic.
func TestDaemonRestoreMismatch(t *testing.T) {
	m := newMockSys(ckptTenants())
	d := testDaemon(t, m, Options{})
	for i := 0; i < 6; i++ {
		ckptLoad(m, i)
		d.Tick(float64(i+1) * 100e6)
	}
	snap, err := d.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}

	fresh := func() *Daemon { return testDaemon(t, newMockSys(ckptTenants()), Options{}) }

	bad := snap
	bad.NWays = snap.NWays + 1
	if err := fresh().RestoreState(bad); !errors.Is(err, ErrStateMismatch) {
		t.Errorf("wrong way count: got %v, want ErrStateMismatch", err)
	}

	bad = snap
	bad.PolicyName = "greedy"
	if err := fresh().RestoreState(bad); !errors.Is(err, ErrStateMismatch) {
		t.Errorf("wrong policy: got %v, want ErrStateMismatch", err)
	}

	bad = snap
	bad.PolicyState = []byte("{corrupt")
	if err := fresh().RestoreState(bad); err == nil {
		t.Error("corrupt policy state accepted")
	}

	// Snapshot without shadows into a daemon that has shadows attached.
	specs, err := policy.ParseShadowSpecs("greedy")
	if err != nil {
		t.Fatal(err)
	}
	withShadows := fresh()
	withShadows.AttachShadows(policy.NewEvaluator(specs))
	if err := withShadows.RestoreState(snap); !errors.Is(err, ErrStateMismatch) {
		t.Errorf("shadow mismatch: got %v, want ErrStateMismatch", err)
	}
}

// TestDaemonRestartColdStarts: Restart drops all accumulated state and
// the daemon re-runs tenant discovery, exactly like a relaunched
// process that found no usable checkpoint.
func TestDaemonRestartColdStarts(t *testing.T) {
	m := newMockSys(ckptTenants())
	d := testDaemon(t, m, Options{})
	for i := 0; i < 10; i++ {
		ckptLoad(m, i)
		d.Tick(float64(i+1) * 100e6)
	}
	if iters, _ := d.Iterations(); iters == 0 {
		t.Fatal("no state accumulated to restart from")
	}

	d.Restart()
	if iters, unstable := d.Iterations(); iters != 0 || unstable != 0 {
		t.Fatalf("restart kept iteration counters: %d/%d", iters, unstable)
	}
	if d.State() != LowKeep {
		t.Fatalf("state after restart = %v, want LowKeep", d.State())
	}
	if h := d.Health(); h != (HealthStats{}) {
		t.Fatalf("restart kept health state: %+v", h)
	}

	// The relaunched daemon adopts whatever the hardware still has
	// programmed and keeps iterating.
	before := m.ddio.Count()
	for i := 0; i < 5; i++ {
		ckptLoad(m, 100+i)
		d.Tick(float64(100+i+1) * 100e6)
	}
	if iters, _ := d.Iterations(); iters == 0 {
		t.Fatal("daemon stopped iterating after restart")
	}
	if d.DDIOWays() == 0 {
		t.Fatalf("daemon did not re-adopt the programmed DDIO mask (%d ways)", before)
	}
}
