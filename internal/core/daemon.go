package core

import (
	"fmt"
	"sort"
	"time"

	"iatsim/internal/cache"
	"iatsim/internal/policy"
	"iatsim/internal/rdt"
	"iatsim/internal/telemetry"
)

// groupRates are one interval's derived metrics for a group.
type groupRates struct {
	IPC      float64
	RefsPS   float64
	MissPS   float64
	MissRate float64
}

// intervalSample is one interval's derived metrics for the whole system.
type intervalSample struct {
	perGroup    map[int]groupRates
	ddioHitPS   float64
	ddioMissPS  float64
	totalRefsPS float64
}

// IterationInfo describes one daemon iteration, for tracing (Fig. 11's time
// series) and the iatd log output.
type IterationInfo struct {
	NowNS      float64
	State      State
	Stable     bool
	Action     string
	DDIOWays   int
	DDIOMask   cache.WayMask
	Masks      map[int]cache.WayMask // per CLOS
	DDIOHitPS  float64
	DDIOMissPS float64
	// Degraded reports the safe-static-fallback mode (see Daemon.Health).
	Degraded bool
}

// StepTimings are the wall-clock costs of the last iteration's steps,
// measured exactly as the paper's Fig. 15 does: Poll Prof Data separately
// from State Transition + LLC Re-alloc.
type StepTimings struct {
	Poll       time.Duration
	Transition time.Duration
	Realloc    time.Duration
	Stable     bool
}

// Daemon is the IAT daemon: the mechanism half of the control loop. It
// polls and sanity-screens counters, self-heals, packs and programs masks
// — and delegates the decision half (what to re-allocate) to a
// policy.Policy, by default the paper's IAT FSM (policy.NewIAT, byte-for-
// byte the pre-extraction behaviour). Construct with NewDaemon, then call
// Tick periodically (the simulated platform polls it every epoch; it
// iterates once per Params.IntervalNS). Not safe for concurrent use.
type Daemon struct {
	sys  System
	P    Params
	Opts Options

	state    State
	needInfo bool

	groups   []*Group // registration order
	byCLOS   map[int]*Group
	cores    map[int][]int // CLOS -> member cores
	nWays    int
	ddioWays int
	topCLOS  int // group currently (candidate for) sharing with DDIO

	lastIterNS  float64
	prevCumTime float64
	prevCum     map[int]rdt.CoreCounters
	prevDDIO    rdt.DDIOCounters
	havePrevCum bool

	// pol decides; shadows (optional) evaluate candidate policies on the
	// same accepted samples without touching any register.
	pol     policy.Policy
	shadows *policy.Evaluator

	timings  StepTimings
	iters    uint64
	unstable uint64

	// Self-healing state (see health.go): consecutive bad iterations,
	// consecutive sane samples while degraded, the degraded flag, the
	// backoff-scaled re-arm requirement, the clean-iteration streak that
	// unwinds it, and the per-iteration write-failure marker.
	health          HealthStats
	consecBad       int
	saneStreak      int
	degraded        bool
	rearmNeed       int
	cleanStreak     int
	writeFailedIter bool

	// OnIteration, when set, is invoked at the end of every iteration.
	OnIteration func(IterationInfo)

	// Tel, when set, receives the daemon's event stream: state
	// transitions (info), mask reprogramming (debug), and one
	// "iteration" event per completed iteration (debug) whose Data
	// payload is the IterationInfo — internal/trace renders Fig. 11
	// from exactly that stream.
	Tel telemetry.Sink

	telState State   // last state announced by emit (published when Tel is set)
	nowNS    float64 // current iteration's sim time, for apply()-time events
}

// NewDaemon builds a daemon over sys running the default IAT policy. It
// performs the Get Tenant Info and LLC Alloc steps on the first Tick.
func NewDaemon(sys System, p Params, opts Options) (*Daemon, error) {
	p = p.withRobustnessDefaults()
	if err := p.Validate(sys.NumWays()); err != nil {
		return nil, err
	}
	return &Daemon{
		sys:        sys,
		P:          p,
		Opts:       opts,
		state:      LowKeep,
		needInfo:   true,
		nWays:      sys.NumWays(),
		topCLOS:    -1,
		lastIterNS: -1e18,
		pol:        policy.NewIAT(),
	}, nil
}

// SetParams applies a new parameter set to a running daemon — the
// control-plane path for policy rollouts (internal/fleet): the set is
// validated exactly as at construction and replaces P between iterations
// on success. The current DDIO allocation is clamped into the new
// [DDIOWaysMin, DDIOWaysMax] bounds — reprogramming the register when the
// clamp changes it — and the FSM keeps its state, so an in-flight
// adaptation simply continues under the new limits. On error the old
// parameters stay in force.
func (d *Daemon) SetParams(p Params) error {
	p = p.withRobustnessDefaults()
	if err := p.Validate(d.nWays); err != nil {
		return err
	}
	d.P = p
	// ddioWays is 0 until the first Tick runs Get Tenant Info; the initial
	// layout adopts the programmed mask then, so there is nothing to clamp.
	if d.ddioWays > 0 {
		clamped := min(max(d.ddioWays, p.DDIOWaysMin), p.DDIOWaysMax)
		if clamped != d.ddioWays {
			d.ddioWays = clamped
			if !d.Opts.DisableDDIOAdjust {
				d.programDDIO(cache.ContiguousMask(d.nWays-d.ddioWays, d.ddioWays))
			}
		}
	}
	d.emitHealth(telemetry.SevInfo, "params_update",
		fmt.Sprintf("ddio=[%d,%d] interval=%gns missLow=%.3g/s", p.DDIOWaysMin, p.DDIOWaysMax, p.IntervalNS, p.ThresholdMissLowPerSec))
	return nil
}

// SetPolicy replaces the decision policy of a running daemon between
// iterations — the control-plane path for staging a policy (not just
// parameter) rollout. The new policy starts from a fresh baseline (its
// first decision warms up) and the FSM restarts in LowKeep; the
// currently programmed masks stay in force until the new policy's first
// non-warmup decision moves them.
func (d *Daemon) SetPolicy(p policy.Policy) error {
	if p == nil {
		return fmt.Errorf("core: SetPolicy(nil)")
	}
	p.Reset()
	d.pol = p
	d.state = LowKeep
	d.emitHealth(telemetry.SevInfo, "policy_update", p.Name())
	return nil
}

// Policy returns the active decision policy.
func (d *Daemon) Policy() policy.Policy { return d.pol }

// AttachShadows attaches a shadow evaluator: every sample the daemon
// accepts (sanity-screened, not degraded) is also fed to ev alongside the
// decision actually executed. Pass nil to detach.
func (d *Daemon) AttachShadows(ev *policy.Evaluator) { d.shadows = ev }

// Shadows returns the attached shadow evaluator (nil when none).
func (d *Daemon) Shadows() *policy.Evaluator { return d.shadows }

// State returns the FSM state.
func (d *Daemon) State() State { return d.state }

// DDIOWays returns the daemon's view of the DDIO way count.
func (d *Daemon) DDIOWays() int { return d.ddioWays }

// Timings returns the wall-clock step costs of the last iteration.
func (d *Daemon) Timings() StepTimings { return d.timings }

// Iterations returns (total, unstable) iteration counts.
func (d *Daemon) Iterations() (total, unstable uint64) { return d.iters, d.unstable }

// NotifyTenantsChanged makes the next iteration re-run Get Tenant Info and
// LLC Alloc (tenant addition/removal, Sec. IV-E).
func (d *Daemon) NotifyTenantsChanged() { d.needInfo = true }

// Tick drives the daemon from the platform's epoch loop; it iterates once
// per IntervalNS of simulated time.
func (d *Daemon) Tick(nowNS float64) {
	if nowNS-d.lastIterNS < d.P.IntervalNS {
		return
	}
	d.lastIterNS = nowNS
	d.iterate(nowNS)
}

// getTenantInfo implements the Get Tenant Info + LLC Alloc steps: it builds
// the allocation groups (tenants sharing a CLOS form one group) and adopts
// the currently programmed masks as the initial allocation.
func (d *Daemon) getTenantInfo() {
	tenants := d.sys.Tenants()
	d.byCLOS = make(map[int]*Group)
	d.cores = make(map[int][]int)
	d.groups = d.groups[:0]
	for _, t := range tenants {
		g := d.byCLOS[t.CLOS]
		if g == nil {
			g = &Group{CLOS: t.CLOS, Priority: t.Priority}
			d.byCLOS[t.CLOS] = g
			d.groups = append(d.groups, g)
		}
		g.Names = append(g.Names, t.Name)
		if t.IO {
			g.IO = true
		}
		if t.Priority == Stack {
			g.Priority = Stack
		} else if t.Priority == PC && g.Priority != Stack {
			g.Priority = PC
		}
		d.cores[t.CLOS] = append(d.cores[t.CLOS], t.Cores...)
	}
	for _, g := range d.groups {
		g.Width = d.sys.CLOSMask(g.CLOS).Count()
	}
	d.ddioWays = d.sys.DDIOMask().Count()
	// Reset sampling state: new tenants mean old deltas are meaningless —
	// for the policy and every shadow alike.
	d.havePrevCum = false
	d.pol.Reset()
	if d.shadows != nil {
		d.shadows.Reset()
	}
	d.needInfo = false
}

// sortedCLOS returns the keys of a per-CLOS map in ascending order, so
// aggregation loops run in a fixed order regardless of map layout.
func sortedCLOS[V any](m map[int]V) []int {
	ids := make([]int, 0, len(m))
	for clos := range m {
		ids = append(ids, clos)
	}
	sort.Ints(ids)
	return ids
}

// poll reads all counters and derives the interval sample. It returns
// (sample, true) or (zero, false) when this is the first (baseline) read.
func (d *Daemon) poll(nowNS float64) (intervalSample, bool) {
	cum := make(map[int]rdt.CoreCounters, len(d.groups))
	for _, g := range d.groups {
		var c rdt.CoreCounters
		for _, core := range d.cores[g.CLOS] {
			c.Add(d.sys.ReadCore(core))
		}
		cum[g.CLOS] = c
	}
	ddio := d.sys.ReadDDIO()
	// Track externally applied DDIO way changes (e.g. the Fig. 10
	// experiment flips the register manually while DDIO adjustment is
	// disabled).
	d.ddioWays = d.sys.DDIOMask().Count()

	if !d.havePrevCum {
		d.prevCum, d.prevDDIO, d.prevCumTime = cum, ddio, nowNS
		d.havePrevCum = true
		return intervalSample{}, false
	}
	dt := (nowNS - d.prevCumTime) / 1e9
	if dt <= 0 {
		dt = 1
	}
	s := intervalSample{perGroup: make(map[int]groupRates, len(d.groups))}
	// Iterate CLOS ids in sorted order: totalRefsPS is a float sum, and
	// FP addition is not associative, so map order would leak into the
	// recorded rates across runs.
	for _, clos := range sortedCLOS(cum) {
		c := cum[clos]
		dd := c.Sub(d.prevCum[clos])
		gr := groupRates{
			IPC:      dd.IPC(),
			RefsPS:   float64(dd.LLCRefs) / dt,
			MissPS:   float64(dd.LLCMisses) / dt,
			MissRate: dd.MissRate(),
		}
		s.perGroup[clos] = gr
		s.totalRefsPS += gr.RefsPS
		if g := d.byCLOS[clos]; g != nil {
			g.RefsPerSec = gr.RefsPS
			g.MissPerSec = gr.MissPS
			g.MissRate = gr.MissRate
		}
	}
	dd := ddio.Sub(d.prevDDIO)
	s.ddioHitPS = float64(dd.Hits) / dt
	s.ddioMissPS = float64(dd.Misses) / dt
	d.prevCum, d.prevDDIO, d.prevCumTime = cum, ddio, nowNS
	return s, true
}

// sampleFor renders one accepted interval sample into the policy's view:
// the committed FSM state, the current layout (groups in registration
// order — policy tie-breaks depend on it), the active limits, and the
// interval rates.
func (d *Daemon) sampleFor(nowNS float64, cur intervalSample) policy.Sample {
	s := policy.Sample{
		NowNS:    nowNS,
		State:    d.state,
		NumWays:  d.nWays,
		DDIOWays: d.ddioWays,
		DDIOMask: d.sys.DDIOMask(),
		Limits: policy.Limits{
			ThresholdStable:        d.P.ThresholdStable,
			ThresholdMissLowPerSec: d.P.ThresholdMissLowPerSec,
			DDIOWaysMin:            d.P.DDIOWaysMin,
			DDIOWaysMax:            d.P.DDIOWaysMax,
			MissDropFactor:         d.P.MissDropFactor,
			TenantMissRateFloor:    d.P.TenantMissRateFloor,
			UCPGrowth:              d.P.Growth == GrowUCP,
			DisableDDIOAdjust:      d.Opts.DisableDDIOAdjust,
			DisableShuffle:         d.Opts.DisableShuffle,
			DisableTenantAdjust:    d.Opts.DisableTenantAdjust,
		},
		Groups:      make([]policy.GroupView, 0, len(d.groups)),
		DDIOHitPS:   cur.ddioHitPS,
		DDIOMissPS:  cur.ddioMissPS,
		TotalRefsPS: cur.totalRefsPS,
	}
	for _, g := range d.groups {
		gr := cur.perGroup[g.CLOS]
		s.Groups = append(s.Groups, policy.GroupView{
			CLOS:       g.CLOS,
			IO:         g.IO,
			Stack:      g.Priority == Stack,
			BestEffort: g.Priority == BE,
			Width:      g.Width,
			Mask:       d.sys.CLOSMask(g.CLOS),
			IPC:        gr.IPC,
			RefsPS:     gr.RefsPS,
			MissPS:     gr.MissPS,
			MissRate:   gr.MissRate,
		})
	}
	return s
}

// iterate is one Poll Prof Data -> State Transition -> LLC Re-alloc pass:
// poll and screen the counters, hand the sample to the policy, execute
// whatever it decided, then feed the shadows.
func (d *Daemon) iterate(nowNS float64) {
	d.nowNS = nowNS
	if d.needInfo {
		d.getTenantInfo()
	}
	t0 := time.Now() //simlint:ignore detlint Fig. 15 measures the daemon's real per-iteration cost; timings never feed simulated state
	cur, ok := d.poll(nowNS)
	t1 := time.Now() //simlint:ignore detlint Fig. 15 poll-phase boundary; wall clock only reaches StepTimings
	d.timings = StepTimings{Poll: t1.Sub(t0), Stable: true}
	if !ok {
		return
	}
	// Sanity-screen the sample before it can steer the policy or become a
	// comparison baseline; glitched samples advance the degradation
	// streak instead. Rejected and degraded samples reach neither the
	// policy nor the shadows.
	if reason := d.sampleInsane(cur); reason != "" {
		d.rejectSample(nowNS, cur, reason)
		return
	}
	if d.degraded {
		d.degradedTick(nowNS, cur)
		return
	}
	s := d.sampleFor(nowNS, cur)
	d.pol.Observe(s)
	a := d.pol.Decide()
	if a.Warmup {
		// Baseline adoption: silent, uncounted, no re-allocation.
		d.state = a.State
		d.shadowTick(s, a)
		return
	}
	d.iters++
	d.writeFailedIter = false
	if a.Stable {
		d.state = a.State
		d.finishIter()
		d.emit(nowNS, cur, true, a.Desc)
		d.shadowTick(s, a)
		return
	}
	d.unstable++
	d.timings.Stable = false
	if a.Continue {
		chosen := d.execute(a)
		d.state = chosen.State
		d.timings.Realloc = time.Since(t1) //simlint:ignore detlint Fig. 15 re-alloc cost of a continue action; wall clock only reaches StepTimings
		d.finishIter()
		d.emit(nowNS, cur, false, chosen.Desc)
		d.shadowTick(s, chosen)
		return
	}
	chosen := d.execute(a)
	d.state = chosen.State
	t2 := time.Now() //simlint:ignore detlint Fig. 15 transition-phase boundary; wall clock only reaches StepTimings
	d.timings.Transition = t2.Sub(t1)
	d.timings.Realloc = time.Since(t2) //simlint:ignore detlint Fig. 15 re-alloc cost; wall clock only reaches StepTimings
	d.finishIter()
	d.emit(nowNS, cur, false, chosen.Desc)
	d.shadowTick(s, chosen)
}

// execute performs the policy's re-allocation operations against the
// machine and returns the decision that actually took effect (a
// TryShuffle whose layout pass wrote nothing resolves to its Fallback).
// The isolation switches are enforced here again, so a misbehaving policy
// cannot bypass them.
func (d *Daemon) execute(a policy.Actions) policy.Actions {
	if a.TryShuffle {
		if !d.Opts.DisableShuffle && d.apply() {
			return a
		}
		if a.Fallback != nil {
			return d.execute(*a.Fallback)
		}
		return a
	}
	changed := false
	if !d.Opts.DisableTenantAdjust {
		for _, clos := range a.Grow {
			if g := d.byCLOS[clos]; g != nil && d.growGroup(g) {
				changed = true
			}
		}
		for _, clos := range a.Shrink {
			if g := d.byCLOS[clos]; g != nil && g.Width > 1 {
				g.Width--
				changed = true
			}
		}
	}
	if !d.Opts.DisableDDIOAdjust && a.DDIOWays != d.ddioWays {
		if t := min(max(a.DDIOWays, 1), d.nWays); t != d.ddioWays {
			d.ddioWays = t
			changed = true
		}
	}
	if changed {
		d.apply()
	}
	return a
}

// shadowTick feeds one accepted sample plus the executed decision to the
// shadow evaluator, if one is attached.
func (d *Daemon) shadowTick(s policy.Sample, chosen policy.Actions) {
	if d.shadows != nil && !d.shadows.Empty() {
		d.shadows.Tick(s, chosen, d.sys.DDIOMask())
	}
}

// growGroup widens a group by one way if total capacity allows.
func (d *Daemon) growGroup(g *Group) bool {
	if TotalWidth(d.groups)+1 > d.nWays {
		return false
	}
	g.Width++
	return true
}

// apply recomputes the layout and programs every mask that changed. It
// returns true when at least one register was written.
func (d *Daemon) apply() bool {
	var order []*Group
	if d.Opts.DisableShuffle {
		order = OrderGroups(d.groups, -1, 0) // priority order, no refs sort hysteresis
	} else {
		order = OrderGroups(d.groups, d.topCLOS, d.P.ShuffleMargin)
	}
	masks, err := PackBottomUp(d.nWays, order)
	if err != nil {
		return false
	}
	wrote := false
	// Sorted CLOS order: the register writes commute, but the telemetry
	// events they emit must appear in a run-independent order.
	for _, clos := range sortedCLOS(masks) {
		m := masks[clos]
		if d.sys.CLOSMask(clos) != m {
			if d.programCLOS(clos, m) {
				wrote = true
				d.emitMask(fmt.Sprintf("clos%d=%v", clos, m))
			}
		}
	}
	if !d.Opts.DisableDDIOAdjust {
		dm := cache.ContiguousMask(d.nWays-d.ddioWays, d.ddioWays)
		if d.sys.DDIOMask() != dm {
			if d.programDDIO(dm) {
				wrote = true
				d.emitMask(fmt.Sprintf("ddio=%v", dm))
			}
		}
	}
	if len(order) > 0 {
		top := order[len(order)-1]
		if top.Priority == BE {
			d.topCLOS = top.CLOS
		}
	}
	return wrote
}

// emitMask publishes one mask-reprogramming event (a register write the
// daemon actually performed).
func (d *Daemon) emitMask(detail string) {
	if d.Tel == nil {
		return
	}
	d.Tel.Emit(telemetry.Event{
		TimeNS: d.nowNS, Sev: telemetry.SevDebug,
		Subsystem: "daemon", Name: "mask_write", Detail: detail,
	})
}

// emit publishes the iteration trace to OnIteration and the telemetry
// event stream.
func (d *Daemon) emit(nowNS float64, cur intervalSample, stable bool, action string) {
	if d.state != d.telState {
		// telState advances even with no sink attached: it is part of
		// the checkpointed daemon state, and a checkpoint written by a
		// sink-less run must byte-match a replay that happens to carry
		// -trace/-telemetry (and vice versa).
		if d.Tel != nil {
			d.Tel.Emit(telemetry.Event{
				TimeNS: nowNS, Sev: telemetry.SevInfo,
				Subsystem: "daemon", Name: "state",
				Detail: d.telState.String() + "->" + d.state.String(),
			})
		}
		d.telState = d.state
	}
	if d.OnIteration == nil && d.Tel == nil {
		return
	}
	masks := make(map[int]cache.WayMask, len(d.groups))
	for _, g := range d.groups {
		masks[g.CLOS] = d.sys.CLOSMask(g.CLOS)
	}
	info := IterationInfo{
		NowNS:      nowNS,
		State:      d.state,
		Stable:     stable,
		Action:     action,
		DDIOWays:   d.ddioWays,
		DDIOMask:   d.sys.DDIOMask(),
		Masks:      masks,
		DDIOHitPS:  cur.ddioHitPS,
		DDIOMissPS: cur.ddioMissPS,
		Degraded:   d.degraded,
	}
	if d.Tel != nil {
		d.Tel.Emit(telemetry.Event{
			TimeNS: nowNS, Sev: telemetry.SevDebug,
			Subsystem: "daemon", Name: "iteration", Detail: action,
			Data: info,
		})
	}
	if d.OnIteration != nil {
		d.OnIteration(info)
	}
}
