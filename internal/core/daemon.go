package core

import (
	"fmt"
	"sort"
	"time"

	"iatsim/internal/cache"
	"iatsim/internal/rdt"
	"iatsim/internal/telemetry"
)

// groupRates are one interval's derived metrics for a group.
type groupRates struct {
	IPC      float64
	RefsPS   float64
	MissPS   float64
	MissRate float64
}

// intervalSample is one interval's derived metrics for the whole system.
type intervalSample struct {
	perGroup    map[int]groupRates
	ddioHitPS   float64
	ddioMissPS  float64
	totalRefsPS float64
}

// IterationInfo describes one daemon iteration, for tracing (Fig. 11's time
// series) and the iatd log output.
type IterationInfo struct {
	NowNS      float64
	State      State
	Stable     bool
	Action     string
	DDIOWays   int
	DDIOMask   cache.WayMask
	Masks      map[int]cache.WayMask // per CLOS
	DDIOHitPS  float64
	DDIOMissPS float64
	// Degraded reports the safe-static-fallback mode (see Daemon.Health).
	Degraded bool
}

// StepTimings are the wall-clock costs of the last iteration's steps,
// measured exactly as the paper's Fig. 15 does: Poll Prof Data separately
// from State Transition + LLC Re-alloc.
type StepTimings struct {
	Poll       time.Duration
	Transition time.Duration
	Realloc    time.Duration
	Stable     bool
}

// Daemon is the IAT daemon. Construct with NewDaemon, then call Tick
// periodically (the simulated platform polls it every epoch; it iterates
// once per Params.IntervalNS). Not safe for concurrent use.
type Daemon struct {
	sys  System
	P    Params
	Opts Options

	state    State
	needInfo bool

	groups   []*Group // registration order
	byCLOS   map[int]*Group
	cores    map[int][]int // CLOS -> member cores
	nWays    int
	ddioWays int
	topCLOS  int // group currently (candidate for) sharing with DDIO

	lastIterNS   float64
	prevCumTime  float64
	prevCum      map[int]rdt.CoreCounters
	prevDDIO     rdt.DDIOCounters
	havePrevCum  bool
	prevRates    intervalSample
	havePrevRate bool

	timings  StepTimings
	iters    uint64
	unstable uint64

	// Self-healing state (see health.go): consecutive bad iterations,
	// consecutive sane samples while degraded, the degraded flag, the
	// backoff-scaled re-arm requirement, the clean-iteration streak that
	// unwinds it, and the per-iteration write-failure marker.
	health          HealthStats
	consecBad       int
	saneStreak      int
	degraded        bool
	rearmNeed       int
	cleanStreak     int
	writeFailedIter bool

	// OnIteration, when set, is invoked at the end of every iteration.
	OnIteration func(IterationInfo)

	// Tel, when set, receives the daemon's event stream: state
	// transitions (info), mask reprogramming (debug), and one
	// "iteration" event per completed iteration (debug) whose Data
	// payload is the IterationInfo — internal/trace renders Fig. 11
	// from exactly that stream.
	Tel telemetry.Sink

	telState State   // last state published to Tel
	nowNS    float64 // current iteration's sim time, for apply()-time events
}

// NewDaemon builds a daemon over sys. It performs the Get Tenant Info and
// LLC Alloc steps on the first Tick.
func NewDaemon(sys System, p Params, opts Options) (*Daemon, error) {
	p = p.withRobustnessDefaults()
	if err := p.Validate(sys.NumWays()); err != nil {
		return nil, err
	}
	return &Daemon{
		sys:        sys,
		P:          p,
		Opts:       opts,
		state:      LowKeep,
		needInfo:   true,
		nWays:      sys.NumWays(),
		topCLOS:    -1,
		lastIterNS: -1e18,
	}, nil
}

// SetParams applies a new parameter set to a running daemon — the
// control-plane path for policy rollouts (internal/fleet): the set is
// validated exactly as at construction and replaces P between iterations
// on success. The current DDIO allocation is clamped into the new
// [DDIOWaysMin, DDIOWaysMax] bounds — reprogramming the register when the
// clamp changes it — and the FSM keeps its state, so an in-flight
// adaptation simply continues under the new limits. On error the old
// parameters stay in force.
func (d *Daemon) SetParams(p Params) error {
	p = p.withRobustnessDefaults()
	if err := p.Validate(d.nWays); err != nil {
		return err
	}
	d.P = p
	// ddioWays is 0 until the first Tick runs Get Tenant Info; the initial
	// layout adopts the programmed mask then, so there is nothing to clamp.
	if d.ddioWays > 0 {
		clamped := min(max(d.ddioWays, p.DDIOWaysMin), p.DDIOWaysMax)
		if clamped != d.ddioWays {
			d.ddioWays = clamped
			if !d.Opts.DisableDDIOAdjust {
				d.programDDIO(cache.ContiguousMask(d.nWays-d.ddioWays, d.ddioWays))
			}
		}
	}
	d.emitHealth(telemetry.SevInfo, "params_update",
		fmt.Sprintf("ddio=[%d,%d] interval=%gns missLow=%.3g/s", p.DDIOWaysMin, p.DDIOWaysMax, p.IntervalNS, p.ThresholdMissLowPerSec))
	return nil
}

// State returns the FSM state.
func (d *Daemon) State() State { return d.state }

// DDIOWays returns the daemon's view of the DDIO way count.
func (d *Daemon) DDIOWays() int { return d.ddioWays }

// Timings returns the wall-clock step costs of the last iteration.
func (d *Daemon) Timings() StepTimings { return d.timings }

// Iterations returns (total, unstable) iteration counts.
func (d *Daemon) Iterations() (total, unstable uint64) { return d.iters, d.unstable }

// NotifyTenantsChanged makes the next iteration re-run Get Tenant Info and
// LLC Alloc (tenant addition/removal, Sec. IV-E).
func (d *Daemon) NotifyTenantsChanged() { d.needInfo = true }

// Tick drives the daemon from the platform's epoch loop; it iterates once
// per IntervalNS of simulated time.
func (d *Daemon) Tick(nowNS float64) {
	if nowNS-d.lastIterNS < d.P.IntervalNS {
		return
	}
	d.lastIterNS = nowNS
	d.iterate(nowNS)
}

// getTenantInfo implements the Get Tenant Info + LLC Alloc steps: it builds
// the allocation groups (tenants sharing a CLOS form one group) and adopts
// the currently programmed masks as the initial allocation.
func (d *Daemon) getTenantInfo() {
	tenants := d.sys.Tenants()
	d.byCLOS = make(map[int]*Group)
	d.cores = make(map[int][]int)
	d.groups = d.groups[:0]
	for _, t := range tenants {
		g := d.byCLOS[t.CLOS]
		if g == nil {
			g = &Group{CLOS: t.CLOS, Priority: t.Priority}
			d.byCLOS[t.CLOS] = g
			d.groups = append(d.groups, g)
		}
		g.Names = append(g.Names, t.Name)
		if t.IO {
			g.IO = true
		}
		if t.Priority == Stack {
			g.Priority = Stack
		} else if t.Priority == PC && g.Priority != Stack {
			g.Priority = PC
		}
		d.cores[t.CLOS] = append(d.cores[t.CLOS], t.Cores...)
	}
	for _, g := range d.groups {
		g.Width = d.sys.CLOSMask(g.CLOS).Count()
	}
	d.ddioWays = d.sys.DDIOMask().Count()
	// Reset sampling state: new tenants mean old deltas are meaningless.
	d.havePrevCum = false
	d.havePrevRate = false
	d.needInfo = false
}

// sortedCLOS returns the keys of a per-CLOS map in ascending order, so
// aggregation loops run in a fixed order regardless of map layout.
func sortedCLOS[V any](m map[int]V) []int {
	ids := make([]int, 0, len(m))
	for clos := range m {
		ids = append(ids, clos)
	}
	sort.Ints(ids)
	return ids
}

// relDelta is the relative change of cur vs prev with a noise floor on the
// denominator.
func relDelta(cur, prev, floor float64) float64 {
	denom := prev
	if denom < floor {
		denom = floor
	}
	if denom == 0 {
		if cur == 0 {
			return 0
		}
		return 1
	}
	return (cur - prev) / denom
}

// poll reads all counters and derives the interval sample. It returns
// (sample, true) or (zero, false) when this is the first (baseline) read.
func (d *Daemon) poll(nowNS float64) (intervalSample, bool) {
	cum := make(map[int]rdt.CoreCounters, len(d.groups))
	for _, g := range d.groups {
		var c rdt.CoreCounters
		for _, core := range d.cores[g.CLOS] {
			c.Add(d.sys.ReadCore(core))
		}
		cum[g.CLOS] = c
	}
	ddio := d.sys.ReadDDIO()
	// Track externally applied DDIO way changes (e.g. the Fig. 10
	// experiment flips the register manually while DDIO adjustment is
	// disabled).
	d.ddioWays = d.sys.DDIOMask().Count()

	if !d.havePrevCum {
		d.prevCum, d.prevDDIO, d.prevCumTime = cum, ddio, nowNS
		d.havePrevCum = true
		return intervalSample{}, false
	}
	dt := (nowNS - d.prevCumTime) / 1e9
	if dt <= 0 {
		dt = 1
	}
	s := intervalSample{perGroup: make(map[int]groupRates, len(d.groups))}
	// Iterate CLOS ids in sorted order: totalRefsPS is a float sum, and
	// FP addition is not associative, so map order would leak into the
	// recorded rates across runs.
	for _, clos := range sortedCLOS(cum) {
		c := cum[clos]
		dd := c.Sub(d.prevCum[clos])
		gr := groupRates{
			IPC:      dd.IPC(),
			RefsPS:   float64(dd.LLCRefs) / dt,
			MissPS:   float64(dd.LLCMisses) / dt,
			MissRate: dd.MissRate(),
		}
		s.perGroup[clos] = gr
		s.totalRefsPS += gr.RefsPS
		if g := d.byCLOS[clos]; g != nil {
			g.RefsPerSec = gr.RefsPS
			g.MissPerSec = gr.MissPS
			g.MissRate = gr.MissRate
		}
	}
	dd := ddio.Sub(d.prevDDIO)
	s.ddioHitPS = float64(dd.Hits) / dt
	s.ddioMissPS = float64(dd.Misses) / dt
	d.prevCum, d.prevDDIO, d.prevCumTime = cum, ddio, nowNS
	return s, true
}

// changes summarises what moved between two interval samples.
type changes struct {
	any         bool
	ddio        bool
	hitDown     bool
	missUp      bool
	missDown    bool
	bigMissDrop bool
	refsUp      bool
	// groups whose IPC changed along with LLC refs/misses
	coreChanged []int // CLOS ids
	// groups with only-IPC changes are ignored per Sec. IV-B case (1)
}

func (d *Daemon) detect(cur, prev intervalSample) changes {
	T := d.P.ThresholdStable
	const ipcFloor = 0.05
	refsFloor := d.P.ThresholdMissLowPerSec / 10
	ddioFloor := d.P.ThresholdMissLowPerSec / 20

	var ch changes
	relHit := relDelta(cur.ddioHitPS, prev.ddioHitPS, ddioFloor)
	relMiss := relDelta(cur.ddioMissPS, prev.ddioMissPS, ddioFloor)
	ch.ddio = relHit > T || relHit < -T || relMiss > T || relMiss < -T
	ch.hitDown = relHit < -T
	ch.missUp = relMiss > T
	ch.missDown = relMiss < -T
	ch.bigMissDrop = relMiss < -d.P.MissDropFactor
	ch.refsUp = relDelta(cur.totalRefsPS, prev.totalRefsPS, refsFloor) > T
	ch.any = ch.ddio

	for _, clos := range sortedCLOS(cur.perGroup) {
		g := cur.perGroup[clos]
		p := prev.perGroup[clos]
		ipcCh := relDelta(g.IPC, p.IPC, ipcFloor)
		refsCh := relDelta(g.RefsPS, p.RefsPS, refsFloor)
		missCh := relDelta(g.MissPS, p.MissPS, refsFloor)
		ipcMoved := ipcCh > T || ipcCh < -T
		llcMoved := refsCh > T || refsCh < -T || missCh > T || missCh < -T
		if ipcMoved || llcMoved {
			ch.any = true
		}
		if ipcMoved && llcMoved {
			ch.coreChanged = append(ch.coreChanged, clos)
		}
	}
	sort.Ints(ch.coreChanged)
	return ch
}

// iterate is one Poll Prof Data -> State Transition -> LLC Re-alloc pass.
func (d *Daemon) iterate(nowNS float64) {
	d.nowNS = nowNS
	if d.needInfo {
		d.getTenantInfo()
	}
	t0 := time.Now() //simlint:ignore detlint Fig. 15 measures the daemon's real per-iteration cost; timings never feed simulated state
	cur, ok := d.poll(nowNS)
	t1 := time.Now() //simlint:ignore detlint Fig. 15 poll-phase boundary; wall clock only reaches StepTimings
	d.timings = StepTimings{Poll: t1.Sub(t0), Stable: true}
	if !ok {
		return
	}
	// Sanity-screen the sample before it can steer the FSM or become a
	// comparison baseline; glitched samples advance the degradation
	// streak instead.
	if reason := d.sampleInsane(cur); reason != "" {
		d.rejectSample(nowNS, cur, reason)
		return
	}
	if d.degraded {
		d.degradedTick(nowNS, cur)
		return
	}
	if !d.havePrevRate {
		d.prevRates = cur
		d.havePrevRate = true
		return
	}
	d.iters++
	d.writeFailedIter = false

	ch := d.detect(cur, d.prevRates)
	prev := d.prevRates
	d.prevRates = cur

	if !ch.any {
		// Stability gates TRANSITIONS, not progression: the paper's
		// I/O Demand and Reclaim states keep moving one way per
		// iteration until they reach DDIO_WAYS_MAX / DDIO_WAYS_MIN
		// (Sec. IV-C), even when the counters have settled.
		var action string
		switch {
		case d.state == Reclaim:
			action = "continue: " + d.act(cur)
		case d.state == IODemand && cur.ddioMissPS > d.P.ThresholdMissLowPerSec:
			action = "continue: " + d.act(cur)
		}
		if action == "" {
			d.finishIter()
			d.emit(nowNS, cur, true, "stable")
			return
		}
		d.unstable++
		d.timings.Stable = false
		d.timings.Realloc = time.Since(t1) //simlint:ignore detlint Fig. 15 re-alloc cost of a continue action; wall clock only reaches StepTimings
		d.finishIter()
		d.emit(nowNS, cur, false, action)
		return
	}
	d.unstable++
	d.timings.Stable = false

	action := d.decide(cur, prev, ch)
	t2 := time.Now() //simlint:ignore detlint Fig. 15 transition-phase boundary; wall clock only reaches StepTimings
	d.timings.Transition = t2.Sub(t1)
	d.timings.Realloc = time.Since(t2) //simlint:ignore detlint Fig. 15 re-alloc cost; wall clock only reaches StepTimings
	d.finishIter()
	d.emit(nowNS, cur, false, action)
}

// decide routes an unstable iteration through the special cases of
// Sec. IV-B and the FSM of Sec. IV-C, performing the LLC Re-alloc actions.
// It returns a human-readable action description.
func (d *Daemon) decide(cur, prev intervalSample, ch changes) string {
	// Case (1): IPC-only change with no LLC and no DDIO movement is
	// neither cache/memory nor I/O; detect() already excludes such
	// groups from coreChanged, so if nothing else moved we are done.
	if !ch.ddio && len(ch.coreChanged) == 0 {
		return "ipc-only: ignored"
	}

	// Case (2): a tenant's IPC and LLC behaviour changed while the I/O is
	// not pressing the LLC (no DDIO-miss movement and a quiet write-
	// allocate rate) — pure core demand for LLC space; serve it with the
	// core-side allocator. The DDIO *hit* rate may still move (it tracks
	// delivered throughput), which is why the gate is on misses.
	ioQuiet := cur.ddioMissPS < d.P.ThresholdMissLowPerSec && !ch.missUp
	if !ch.ddio || (ioQuiet && len(ch.coreChanged) > 0) {
		if d.Opts.DisableTenantAdjust {
			return "core-demand (tenant adjust disabled)"
		}
		if g := d.pickCoreChanged(cur, prev, ch.coreChanged); g != nil {
			if d.growGroup(g) {
				d.apply()
				return fmt.Sprintf("case2: +1 way for clos %d", g.CLOS)
			}
		}
		return "case2: no action"
	}

	// Case (3): a non-I/O tenant overlapping DDIO changed together with
	// the DDIO counters — try shuffling first.
	if !d.Opts.DisableShuffle && d.overlappedNonIOChanged(ch.coreChanged) {
		if d.apply() {
			return "case3: shuffled"
		}
		// Shuffle was a no-op; fall through to the FSM.
	}

	next := d.transition(cur, prev, ch)
	from := d.state
	d.state = next
	act := d.act(cur)
	return fmt.Sprintf("%s->%s %s", from, d.state, act)
}

// pickCoreChanged chooses the group whose LLC miss rate rose the most.
func (d *Daemon) pickCoreChanged(cur, prev intervalSample, closes []int) *Group {
	var best *Group
	bestDelta := 0.0
	for _, clos := range closes {
		g := d.byCLOS[clos]
		if g == nil {
			continue
		}
		delta := cur.perGroup[clos].MissRate - prev.perGroup[clos].MissRate
		if delta > bestDelta {
			best, bestDelta = g, delta
		}
	}
	return best
}

// overlappedNonIOChanged reports whether any changed group is non-I/O and
// currently overlaps the DDIO ways.
func (d *Daemon) overlappedNonIOChanged(closes []int) bool {
	ddio := d.sys.DDIOMask()
	for _, clos := range closes {
		g := d.byCLOS[clos]
		if g == nil || g.IO {
			continue
		}
		if d.sys.CLOSMask(clos).Overlaps(ddio) {
			return true
		}
	}
	return false
}

// transition implements the Mealy FSM of Fig. 6.
func (d *Daemon) transition(cur, prev intervalSample, ch changes) State {
	missHigh := cur.ddioMissPS > d.P.ThresholdMissLowPerSec
	switch d.state {
	case LowKeep:
		if missHigh {
			if ch.hitDown && ch.refsUp {
				return CoreDemand // (3) in Fig. 6
			}
			return IODemand // (1)
		}
		return LowKeep
	case IODemand:
		if ch.hitDown && !ch.missDown {
			return CoreDemand // (7)
		}
		if ch.bigMissDrop || !missHigh {
			return Reclaim // (6)
		}
		return IODemand // (5), HighKeep entry handled by act()
	case HighKeep:
		if ch.hitDown && !ch.missDown {
			return CoreDemand // (12)
		}
		if ch.bigMissDrop || !missHigh {
			return Reclaim // (11)
		}
		return HighKeep
	case CoreDemand:
		if ch.missDown {
			return Reclaim // (8)
		}
		if ch.missUp && !ch.hitDown {
			return IODemand // (4)
		}
		return CoreDemand
	case Reclaim:
		if ch.missUp && missHigh {
			if ch.hitDown {
				return CoreDemand // (9)
			}
			return IODemand // (13)
		}
		return Reclaim // (2) to LowKeep handled by act()
	}
	return d.state
}

// act performs the LLC Re-alloc for the (new) state and returns a
// description.
func (d *Daemon) act(cur intervalSample) string {
	switch d.state {
	case IODemand:
		if d.Opts.DisableDDIOAdjust {
			return "(ddio adjust disabled)"
		}
		if d.ddioWays < d.P.DDIOWaysMax {
			d.ddioWays += d.growthSteps(cur.ddioMissPS)
			if d.ddioWays > d.P.DDIOWaysMax {
				d.ddioWays = d.P.DDIOWaysMax
			}
			d.apply()
		}
		if d.ddioWays >= d.P.DDIOWaysMax {
			d.state = HighKeep // (10)
			return fmt.Sprintf("ddio=%d (max, ->HighKeep)", d.ddioWays)
		}
		return fmt.Sprintf("ddio=%d", d.ddioWays)
	case CoreDemand:
		if d.Opts.DisableTenantAdjust {
			return "(tenant adjust disabled)"
		}
		g := d.selectCoreDemand(cur)
		if g != nil && d.growGroup(g) {
			d.apply()
			return fmt.Sprintf("+1 way clos %d", g.CLOS)
		}
		return "no grow candidate"
	case Reclaim:
		desc := d.reclaimOne(cur)
		if d.ddioWays <= d.P.DDIOWaysMin {
			d.state = LowKeep // (2)
			desc += " ->LowKeep"
		}
		return desc
	case LowKeep, HighKeep:
		return "hold"
	}
	return ""
}

// selectCoreDemand picks the group to grow in the Core Demand state:
// the software stack under the aggregation model, otherwise the I/O tenant
// with the largest LLC miss-rate increase (Sec. IV-D).
func (d *Daemon) selectCoreDemand(cur intervalSample) *Group {
	for _, g := range d.groups {
		if g.Priority == Stack {
			return g
		}
	}
	var best *Group
	bestDelta := -1.0
	for _, g := range d.groups {
		if !g.IO {
			continue
		}
		delta := cur.perGroup[g.CLOS].MissRate - d.prevMissRate(g.CLOS)
		if delta > bestDelta {
			best, bestDelta = g, delta
		}
	}
	return best
}

// prevMissRate returns the group's previous-interval miss rate (0 when
// unknown). The daemon keeps it on the Group for simplicity.
func (d *Daemon) prevMissRate(clos int) float64 {
	if g := d.byCLOS[clos]; g != nil {
		return g.MissRate
	}
	return 0
}

// growthSteps returns how many ways one iteration grants under the
// configured growth policy.
func (d *Daemon) growthSteps(missPS float64) int {
	if d.P.Growth != GrowUCP {
		return 1
	}
	steps := 1
	for x := missPS; x > 4*d.P.ThresholdMissLowPerSec && steps < 3; x /= 4 {
		steps++
	}
	return steps
}

// growGroup widens a group by one way if total capacity allows.
func (d *Daemon) growGroup(g *Group) bool {
	if TotalWidth(d.groups)+1 > d.nWays {
		return false
	}
	g.Width++
	return true
}

// reclaimOne takes one way back from DDIO or from an over-provisioned
// tenant, preferring DDIO while the I/O is quiet.
func (d *Daemon) reclaimOne(cur intervalSample) string {
	quietIO := cur.ddioMissPS < d.P.ThresholdMissLowPerSec
	if !d.Opts.DisableDDIOAdjust && quietIO && d.ddioWays > d.P.DDIOWaysMin {
		d.ddioWays--
		d.apply()
		return fmt.Sprintf("ddio=%d", d.ddioWays)
	}
	if !d.Opts.DisableTenantAdjust {
		var victim *Group
		for _, g := range d.groups {
			if g.Width <= 1 || g.MissRate > d.P.TenantMissRateFloor {
				continue
			}
			if victim == nil || g.RefsPerSec < victim.RefsPerSec {
				victim = g
			}
		}
		if victim != nil {
			victim.Width--
			d.apply()
			return fmt.Sprintf("-1 way clos %d", victim.CLOS)
		}
	}
	if !d.Opts.DisableDDIOAdjust && d.ddioWays > d.P.DDIOWaysMin {
		d.ddioWays--
		d.apply()
		return fmt.Sprintf("ddio=%d", d.ddioWays)
	}
	return "nothing to reclaim"
}

// apply recomputes the layout and programs every mask that changed. It
// returns true when at least one register was written.
func (d *Daemon) apply() bool {
	var order []*Group
	if d.Opts.DisableShuffle {
		order = OrderGroups(d.groups, -1, 0) // priority order, no refs sort hysteresis
	} else {
		order = OrderGroups(d.groups, d.topCLOS, d.P.ShuffleMargin)
	}
	masks, err := PackBottomUp(d.nWays, order)
	if err != nil {
		return false
	}
	wrote := false
	// Sorted CLOS order: the register writes commute, but the telemetry
	// events they emit must appear in a run-independent order.
	for _, clos := range sortedCLOS(masks) {
		m := masks[clos]
		if d.sys.CLOSMask(clos) != m {
			if d.programCLOS(clos, m) {
				wrote = true
				d.emitMask(fmt.Sprintf("clos%d=%v", clos, m))
			}
		}
	}
	if !d.Opts.DisableDDIOAdjust {
		dm := cache.ContiguousMask(d.nWays-d.ddioWays, d.ddioWays)
		if d.sys.DDIOMask() != dm {
			if d.programDDIO(dm) {
				wrote = true
				d.emitMask(fmt.Sprintf("ddio=%v", dm))
			}
		}
	}
	if len(order) > 0 {
		top := order[len(order)-1]
		if top.Priority == BE {
			d.topCLOS = top.CLOS
		}
	}
	return wrote
}

// emitMask publishes one mask-reprogramming event (a register write the
// daemon actually performed).
func (d *Daemon) emitMask(detail string) {
	if d.Tel == nil {
		return
	}
	d.Tel.Emit(telemetry.Event{
		TimeNS: d.nowNS, Sev: telemetry.SevDebug,
		Subsystem: "daemon", Name: "mask_write", Detail: detail,
	})
}

// emit publishes the iteration trace to OnIteration and the telemetry
// event stream.
func (d *Daemon) emit(nowNS float64, cur intervalSample, stable bool, action string) {
	if d.Tel != nil && d.state != d.telState {
		d.Tel.Emit(telemetry.Event{
			TimeNS: nowNS, Sev: telemetry.SevInfo,
			Subsystem: "daemon", Name: "state",
			Detail: d.telState.String() + "->" + d.state.String(),
		})
		d.telState = d.state
	}
	if d.OnIteration == nil && d.Tel == nil {
		return
	}
	masks := make(map[int]cache.WayMask, len(d.groups))
	for _, g := range d.groups {
		masks[g.CLOS] = d.sys.CLOSMask(g.CLOS)
	}
	info := IterationInfo{
		NowNS:      nowNS,
		State:      d.state,
		Stable:     stable,
		Action:     action,
		DDIOWays:   d.ddioWays,
		DDIOMask:   d.sys.DDIOMask(),
		Masks:      masks,
		DDIOHitPS:  cur.ddioHitPS,
		DDIOMissPS: cur.ddioMissPS,
		Degraded:   d.degraded,
	}
	if d.Tel != nil {
		d.Tel.Emit(telemetry.Event{
			TimeNS: nowNS, Sev: telemetry.SevDebug,
			Subsystem: "daemon", Name: "iteration", Detail: action,
			Data: info,
		})
	}
	if d.OnIteration != nil {
		d.OnIteration(info)
	}
}
