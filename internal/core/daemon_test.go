package core

import (
	"testing"

	"iatsim/internal/cache"
	"iatsim/internal/rdt"
)

// mockSys is a scriptable System: tests drive the counter streams and
// observe the register writes.
type mockSys struct {
	tenants []TenantInfo
	ways    int
	masks   map[int]cache.WayMask
	ddio    cache.WayMask

	cores map[int]rdt.CoreCounters
	ddioC rdt.DDIOCounters

	maskWrites int
	ddioWrites int
}

func newMockSys(tenants []TenantInfo) *mockSys {
	m := &mockSys{
		tenants: tenants,
		ways:    11,
		masks:   map[int]cache.WayMask{},
		ddio:    cache.ContiguousMask(9, 2),
		cores:   map[int]rdt.CoreCounters{},
	}
	pos := 0
	for _, t := range tenants {
		if _, ok := m.masks[t.CLOS]; !ok {
			m.masks[t.CLOS] = cache.ContiguousMask(pos, 2)
			pos += 2
		}
	}
	return m
}

func (m *mockSys) Tenants() []TenantInfo           { return m.tenants }
func (m *mockSys) NumWays() int                    { return m.ways }
func (m *mockSys) ReadCore(c int) rdt.CoreCounters { return m.cores[c] }
func (m *mockSys) ReadDDIO() rdt.DDIOCounters      { return m.ddioC }
func (m *mockSys) CLOSMask(clos int) cache.WayMask { return m.masks[clos] }
func (m *mockSys) DDIOMask() cache.WayMask         { return m.ddio }
func (m *mockSys) SetCLOSMask(clos int, w cache.WayMask) error {
	m.masks[clos] = w
	m.maskWrites++
	return nil
}
func (m *mockSys) SetDDIOMask(w cache.WayMask) error {
	m.ddio = w
	m.ddioWrites++
	return nil
}

// advance bumps a core's cumulative counters.
func (m *mockSys) advance(core int, instr, cycles, refs, misses uint64) {
	c := m.cores[core]
	c.Instructions += instr
	c.Cycles += cycles
	c.LLCRefs += refs
	c.LLCMisses += misses
	m.cores[core] = c
}

func (m *mockSys) advanceDDIO(hits, misses uint64) {
	m.ddioC.Hits += hits
	m.ddioC.Misses += misses
}

// ioTenant/beTenant helpers.
func ioTenant(name string, clos, core int, prio Priority) TenantInfo {
	return TenantInfo{Name: name, Cores: []int{core}, CLOS: clos, IO: true, Priority: prio}
}

func beTenant(name string, clos, core int) TenantInfo {
	return TenantInfo{Name: name, Cores: []int{core}, CLOS: clos, Priority: BE}
}

// testDaemon builds a daemon with a 100ms interval over sys.
func testDaemon(t *testing.T, sys System, opts Options) *Daemon {
	t.Helper()
	p := DefaultParams()
	p.IntervalNS = 100e6
	d, err := NewDaemon(sys, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// steady feeds one interval of unchanged rates.
func steady(m *mockSys, tick func()) {
	for _, t := range m.tenants {
		for _, c := range t.Cores {
			m.advance(c, 1000, 2000, 100, 10)
		}
	}
	m.advanceDDIO(1000, 10)
	tick()
}

func TestDaemonStableDoesNothing(t *testing.T) {
	m := newMockSys([]TenantInfo{ioTenant("fwd", 1, 0, PC), beTenant("batch", 2, 1)})
	d := testDaemon(t, m, Options{})
	now := 0.0
	tick := func() { now += 100e6; d.Tick(now) }
	for i := 0; i < 8; i++ {
		steady(m, tick)
	}
	if m.maskWrites != 0 || m.ddioWrites != 0 {
		t.Fatalf("stable system reprogrammed: masks=%d ddio=%d", m.maskWrites, m.ddioWrites)
	}
	total, unstable := d.Iterations()
	if total < 5 || unstable != 0 {
		t.Fatalf("iterations=%d unstable=%d", total, unstable)
	}
}

func TestDaemonIODemandGrowsDDIOToHighKeep(t *testing.T) {
	m := newMockSys([]TenantInfo{ioTenant("fwd", 1, 0, PC)})
	d := testDaemon(t, m, Options{})
	now := 0.0
	tick := func() { now += 100e6; d.Tick(now) }
	steady(m, tick) // baseline
	steady(m, tick) // first rates
	// Sustained, growing DDIO misses above THRESHOLD_MISS_LOW.
	for i := 1; i <= 10; i++ {
		m.advance(0, 1000, 2000, 100, 10)
		m.advanceDDIO(100_000, uint64(1_000_000+i*200_000)/10)
		tick()
	}
	if got := m.ddio.Count(); got != d.P.DDIOWaysMax {
		t.Fatalf("DDIO ways = %d, want max %d", got, d.P.DDIOWaysMax)
	}
	if d.State() != HighKeep {
		t.Fatalf("state = %v, want HighKeep", d.State())
	}
	// The mask must stay top-anchored and contiguous.
	if m.ddio != cache.ContiguousMask(11-d.P.DDIOWaysMax, d.P.DDIOWaysMax) {
		t.Fatalf("DDIO mask = %v", m.ddio)
	}
}

func TestDaemonReclaimsToLowKeep(t *testing.T) {
	m := newMockSys([]TenantInfo{ioTenant("fwd", 1, 0, PC)})
	d := testDaemon(t, m, Options{})
	now := 0.0
	tick := func() { now += 100e6; d.Tick(now) }
	steady(m, tick)
	steady(m, tick)
	// Push into I/O demand.
	for i := 1; i <= 8; i++ {
		m.advance(0, 1000, 2000, 100, 10)
		m.advanceDDIO(100_000, uint64(1_000_000+i*300_000)/10)
		tick()
	}
	grown := m.ddio.Count()
	if grown < 2 {
		t.Fatalf("precondition failed: ddio=%d", grown)
	}
	// Traffic drops away: misses collapse.
	for i := 0; i < 12; i++ {
		m.advance(0, 1000, 2000, 100, 10)
		m.advanceDDIO(100_000, 1)
		tick()
	}
	if got := m.ddio.Count(); got != d.P.DDIOWaysMin {
		t.Fatalf("DDIO ways after reclaim = %d, want %d", got, d.P.DDIOWaysMin)
	}
	if d.State() != LowKeep {
		t.Fatalf("state = %v, want LowKeep", d.State())
	}
}

func TestDaemonCoreDemandGrowsStack(t *testing.T) {
	// Aggregation model: the software stack gets the way.
	m := newMockSys([]TenantInfo{
		{Name: "ovs", Cores: []int{0}, CLOS: 1, IO: true, Priority: Stack},
		ioTenant("c0", 2, 1, PC),
	})
	d := testDaemon(t, m, Options{})
	now := 0.0
	tick := func() { now += 100e6; d.Tick(now) }
	steady(m, tick)
	steady(m, tick)
	before := m.masks[1].Count()
	// High DDIO misses, FALLING hits, rising refs: Core Demand.
	hits := uint64(10_000_000)
	for i := 0; i < 4; i++ {
		m.advance(0, 1000, 2000, uint64(100_000*(i+2)), uint64(50_000*(i+2)))
		m.advance(1, 1000, 2000, 100, 10)
		hits = hits * 8 / 10
		m.advanceDDIO(hits/10, 400_000)
		tick()
	}
	if d.State() != CoreDemand {
		t.Fatalf("state = %v, want CoreDemand", d.State())
	}
	if got := m.masks[1].Count(); got <= before {
		t.Fatalf("stack width %d did not grow (was %d)", got, before)
	}
}

func TestDaemonCase2GrowsQuietIOTenant(t *testing.T) {
	// No DDIO movement, but a tenant's IPC + LLC behaviour changed:
	// the core-side allocator grants a way (Sec. IV-B case 2).
	m := newMockSys([]TenantInfo{ioTenant("fwd", 1, 0, PC), beTenant("batch", 2, 1)})
	d := testDaemon(t, m, Options{})
	now := 0.0
	tick := func() { now += 100e6; d.Tick(now) }
	steady(m, tick)
	steady(m, tick)
	before := m.masks[2].Count()
	for i := 2; i < 6; i++ {
		m.advance(0, 1000, 2000, 100, 10)
		// batch's IPC halves while misses explode.
		m.advance(1, 1000, uint64(2000*i), uint64(100_000*i), uint64(80_000*i))
		m.advanceDDIO(1000, 10)
		tick()
	}
	if got := m.masks[2].Count(); got <= before {
		t.Fatalf("demanding tenant width %d did not grow (was %d)", got, before)
	}
}

func TestDaemonOptionsDisableActions(t *testing.T) {
	m := newMockSys([]TenantInfo{ioTenant("fwd", 1, 0, PC)})
	d := testDaemon(t, m, Options{DisableDDIOAdjust: true, DisableTenantAdjust: true})
	now := 0.0
	tick := func() { now += 100e6; d.Tick(now) }
	steady(m, tick)
	steady(m, tick)
	for i := 1; i <= 6; i++ {
		m.advance(0, 1000, 2000, 100, 10)
		m.advanceDDIO(100_000, uint64(1_000_000+i*300_000)/10)
		tick()
	}
	if m.ddioWrites != 0 {
		t.Fatalf("DDIO reprogrammed %d times with adjustment disabled", m.ddioWrites)
	}
	if m.ddio.Count() != 2 {
		t.Fatalf("ddio ways = %d", m.ddio.Count())
	}
}

func TestDaemonAdoptsExternalDDIOChange(t *testing.T) {
	m := newMockSys([]TenantInfo{ioTenant("fwd", 1, 0, PC)})
	d := testDaemon(t, m, Options{DisableDDIOAdjust: true})
	now := 0.0
	tick := func() { now += 100e6; d.Tick(now) }
	steady(m, tick)
	steady(m, tick)
	m.ddio = cache.ContiguousMask(7, 4) // operator flips the register
	steady(m, tick)
	if d.DDIOWays() != 4 {
		t.Fatalf("daemon's DDIO view = %d, want 4", d.DDIOWays())
	}
}

func TestDaemonShufflesLeastReferencingBEOntoDDIO(t *testing.T) {
	// Overcommitted layout: the quiet BE tenant must end up on top
	// (overlapping DDIO), the loud one below, PC lowest.
	m := newMockSys([]TenantInfo{
		ioTenant("pcapp", 1, 0, PC),
		beTenant("loud", 2, 1),
		beTenant("quiet", 3, 2),
	})
	// Widths 4+4+3 = 11: full occupancy, forced DDIO overlap (2 ways).
	m.masks[1] = cache.ContiguousMask(0, 4)
	m.masks[2] = cache.ContiguousMask(4, 4)
	m.masks[3] = cache.ContiguousMask(8, 3)
	d := testDaemon(t, m, Options{})
	now := 0.0
	tick := func() { now += 100e6; d.Tick(now) }
	loud := func() {
		m.advance(0, 1000, 2000, 1000, 100)
		m.advance(1, 1000, 2000, 900_000, 100) // loud BE: many refs
		m.advance(2, 1000, 2000, 1000, 100)    // quiet BE
		m.advanceDDIO(100_000, 500_000/10)
	}
	loud()
	tick()
	loud()
	tick()
	// Make DDIO misses spike so the FSM acts and re-layouts.
	for i := 1; i <= 4; i++ {
		loud()
		m.advanceDDIO(0, uint64(i)*300_000/10)
		tick()
	}
	ddio := m.ddio
	if !m.masks[3].Overlaps(ddio) {
		t.Fatalf("quiet BE (%v) does not share with DDIO (%v)", m.masks[3], ddio)
	}
	if m.masks[1].Overlaps(ddio) {
		t.Fatalf("PC tenant (%v) shares with DDIO (%v)", m.masks[1], ddio)
	}
}

func TestDaemonNotifyTenantsChangedResets(t *testing.T) {
	m := newMockSys([]TenantInfo{ioTenant("fwd", 1, 0, PC)})
	d := testDaemon(t, m, Options{})
	now := 0.0
	tick := func() { now += 100e6; d.Tick(now) }
	steady(m, tick)
	steady(m, tick)
	steady(m, tick)
	m.tenants = append(m.tenants, beTenant("new", 5, 3))
	m.masks[5] = cache.ContiguousMask(4, 2)
	d.NotifyTenantsChanged()
	// Must not panic and must pick up the new tenant on the next pass.
	steady(m, tick)
	steady(m, tick)
	steady(m, tick)
	total, _ := d.Iterations()
	if total == 0 {
		t.Fatal("daemon stopped iterating after tenant change")
	}
}

func TestDaemonInvalidParamsRejected(t *testing.T) {
	m := newMockSys([]TenantInfo{ioTenant("fwd", 1, 0, PC)})
	p := DefaultParams()
	p.DDIOWaysMax = 99
	if _, err := NewDaemon(m, p, Options{}); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestDaemonIntervalGating(t *testing.T) {
	m := newMockSys([]TenantInfo{ioTenant("fwd", 1, 0, PC)})
	d := testDaemon(t, m, Options{})
	d.Tick(0)
	d.Tick(10e6) // inside the interval: must be skipped
	d.Tick(20e6)
	d.Tick(150e6) // next interval
	total, _ := d.Iterations()
	if total > 1 {
		t.Fatalf("interval gating failed: %d counted iterations", total)
	}
}

func TestUCPConvergesFasterThanOneWay(t *testing.T) {
	iters := func(g GrowthPolicy) int {
		m := newMockSys([]TenantInfo{ioTenant("fwd", 1, 0, PC)})
		p := DefaultParams()
		p.IntervalNS = 100e6
		p.Growth = g
		d, err := NewDaemon(m, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		now := 0.0
		tick := func() { now += 100e6; d.Tick(now) }
		steady(m, tick)
		steady(m, tick)
		n := 0
		for i := 1; i <= 20 && m.ddio.Count() < p.DDIOWaysMax; i++ {
			m.advance(0, 1000, 2000, 100, 10)
			m.advanceDDIO(100_000, uint64(4_000_000+i*400_000)/10)
			tick()
			n++
		}
		return n
	}
	one, ucp := iters(GrowOneWay), iters(GrowUCP)
	if ucp >= one {
		t.Fatalf("UCP (%d iters) not faster than one-way (%d)", ucp, one)
	}
}

func TestGrowthPolicyString(t *testing.T) {
	if GrowOneWay.String() != "one-way" || GrowUCP.String() != "ucp" {
		t.Error("growth policy strings wrong")
	}
	// Out-of-range values take the default branch and render the raw
	// value rather than an empty or aliased name.
	if got := GrowthPolicy(7).String(); got != "GrowthPolicy(7)" {
		t.Errorf("GrowthPolicy(7).String() = %q, want GrowthPolicy(7)", got)
	}
}
