package core

import "testing"

// TestFSMTransitionTable pins the Mealy FSM against the paper's Fig. 6,
// edge by edge. Each case fabricates the counter condition the paper
// describes and asserts the resulting state. Inputs mirror the `changes`
// summary the poll step produces.
func TestFSMTransitionTable(t *testing.T) {
	mk := func(state State) *Daemon {
		m := newMockSys([]TenantInfo{ioTenant("fwd", 1, 0, PC)})
		p := DefaultParams()
		p.IntervalNS = 100e6
		d, err := NewDaemon(m, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		d.state = state
		return d
	}
	missHigh := func(s *intervalSample) { s.ddioMissPS = 5e6 }
	missLow := func(s *intervalSample) { s.ddioMissPS = 1e3 }

	cases := []struct {
		name string
		from State
		ch   changes
		cur  func(*intervalSample)
		want State
	}{
		// ① Low Keep -> I/O Demand: miss count crosses THRESHOLD_MISS_LOW.
		{"1:lowkeep->iodemand", LowKeep, changes{missUp: true}, missHigh, IODemand},
		// ③ Low Keep -> Core Demand: misses high, hits falling, refs rising.
		{"3:lowkeep->coredemand", LowKeep, changes{hitDown: true, refsUp: true}, missHigh, CoreDemand},
		// Low Keep self-loop while I/O is quiet.
		{"lowkeep-hold", LowKeep, changes{missUp: true}, missLow, LowKeep},
		// ⑤ I/O Demand self-loop while misses persist.
		{"5:iodemand-hold", IODemand, changes{missUp: true}, missHigh, IODemand},
		// ⑥ I/O Demand -> Reclaim on a significant miss drop.
		{"6:iodemand->reclaim", IODemand, changes{bigMissDrop: true, missDown: true}, missHigh, Reclaim},
		// I/O Demand -> Reclaim when misses fall below the threshold.
		{"iodemand->reclaim-low", IODemand, changes{missDown: true}, missLow, Reclaim},
		// ⑦ I/O Demand -> Core Demand: hits fall without a miss decrease.
		{"7:iodemand->coredemand", IODemand, changes{hitDown: true, missUp: true}, missHigh, CoreDemand},
		// ⑪ High Keep -> Reclaim on a significant miss drop.
		{"11:highkeep->reclaim", HighKeep, changes{bigMissDrop: true, missDown: true}, missHigh, Reclaim},
		// ⑫ High Keep -> Core Demand: hits fall, misses hold.
		{"12:highkeep->coredemand", HighKeep, changes{hitDown: true}, missHigh, CoreDemand},
		// High Keep holds while misses persist.
		{"highkeep-hold", HighKeep, changes{missUp: true}, missHigh, HighKeep},
		// ⑧ Core Demand -> Reclaim when the miss count decreases.
		{"8:coredemand->reclaim", CoreDemand, changes{missDown: true}, missHigh, Reclaim},
		// ④ Core Demand -> I/O Demand: more misses, hits not falling.
		{"4:coredemand->iodemand", CoreDemand, changes{missUp: true}, missHigh, IODemand},
		// Core Demand self-loop otherwise.
		{"coredemand-hold", CoreDemand, changes{refsUp: true}, missHigh, CoreDemand},
		// ⑬ Reclaim -> I/O Demand on a meaningful miss increase.
		{"13:reclaim->iodemand", Reclaim, changes{missUp: true}, missHigh, IODemand},
		// ⑨ Reclaim -> Core Demand: miss increase with falling hits.
		{"9:reclaim->coredemand", Reclaim, changes{missUp: true, hitDown: true}, missHigh, CoreDemand},
		// ② Reclaim self-loop while quiet (reaches Low Keep via act()).
		{"2:reclaim-hold", Reclaim, changes{missDown: true}, missLow, Reclaim},
	}
	for _, c := range cases {
		d := mk(c.from)
		var cur, prev intervalSample
		c.cur(&cur)
		if got := d.transition(cur, prev, c.ch); got != c.want {
			t.Errorf("%s: %v -> %v, want %v", c.name, c.from, got, c.want)
		}
	}
}

// TestFSMEntryActionsOnBoundaries pins the act() boundary behaviour: ⑩
// (I/O Demand reaching DDIO_WAYS_MAX enters High Keep) and ② (Reclaim
// reaching DDIO_WAYS_MIN enters Low Keep).
func TestFSMEntryActionsOnBoundaries(t *testing.T) {
	m := newMockSys([]TenantInfo{ioTenant("fwd", 1, 0, PC)})
	p := DefaultParams()
	p.IntervalNS = 100e6
	d, err := NewDaemon(m, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d.getTenantInfo()

	// ⑩: at max-1 ways, one more grow lands in High Keep.
	d.ddioWays = p.DDIOWaysMax - 1
	d.state = IODemand
	d.act(intervalSample{ddioMissPS: 5e6})
	if d.state != HighKeep || d.ddioWays != p.DDIOWaysMax {
		t.Fatalf("after max grow: state=%v ways=%d", d.state, d.ddioWays)
	}
	// ②: at min+1 ways, one reclaim lands in Low Keep.
	d.ddioWays = p.DDIOWaysMin + 1
	d.state = Reclaim
	d.act(intervalSample{ddioMissPS: 0})
	if d.state != LowKeep || d.ddioWays != p.DDIOWaysMin {
		t.Fatalf("after min reclaim: state=%v ways=%d", d.state, d.ddioWays)
	}
}
