package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"iatsim/internal/cache"
	"iatsim/internal/rdt"
)

// TestDaemonInvariantsUnderRandomCounterStreams drives the daemon with
// arbitrary (but monotone, as hardware counters are) counter streams and
// checks the safety invariants that must hold after EVERY iteration,
// whatever the FSM does:
//
//  1. every tenant mask stays contiguous and non-empty;
//  2. tenant masks never overlap each other (the paper's isolation rule);
//  3. the DDIO mask stays contiguous, top-anchored, and within
//     [DDIO_WAYS_MIN, DDIO_WAYS_MAX];
//  4. performance-critical tenants never share ways with DDIO while any
//     best-effort tenant exists that could take the overlap instead.
func TestDaemonInvariantsUnderRandomCounterStreams(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := newMockSys([]TenantInfo{
			ioTenant("fwd", 1, 0, PC),
			beTenant("be-a", 2, 1),
			beTenant("be-b", 3, 2),
			{Name: "pc-x", Cores: []int{3}, CLOS: 4, Priority: PC},
		})
		p := DefaultParams()
		p.IntervalNS = 100e6
		if rng.Intn(2) == 0 {
			p.Growth = GrowUCP
		}
		d, err := NewDaemon(m, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		now := 0.0
		for iter := 0; iter < 60; iter++ {
			for core := 0; core < 4; core++ {
				m.advance(core,
					uint64(rng.Intn(1_000_000)),
					uint64(rng.Intn(2_000_000)+1),
					uint64(rng.Intn(500_000)),
					uint64(rng.Intn(200_000)))
			}
			m.advanceDDIO(uint64(rng.Intn(2_000_000)), uint64(rng.Intn(600_000)))
			now += 100e6
			d.Tick(now)

			// (1) + (2): tenant masks valid and disjoint.
			masks := []cache.WayMask{m.masks[1], m.masks[2], m.masks[3], m.masks[4]}
			for i, mi := range masks {
				if mi == 0 || !mi.Contiguous() || mi.Highest() >= 11 {
					t.Logf("seed %d iter %d: bad mask %v", seed, iter, mi)
					return false
				}
				for j, mj := range masks {
					if i != j && mi.Overlaps(mj) {
						t.Logf("seed %d iter %d: masks %v and %v overlap", seed, iter, mi, mj)
						return false
					}
				}
			}
			// (3): DDIO mask bounds.
			dm := m.ddio
			if !dm.Contiguous() || dm.Highest() != 10 ||
				dm.Count() < p.DDIOWaysMin || dm.Count() > p.DDIOWaysMax {
				t.Logf("seed %d iter %d: bad DDIO mask %v", seed, iter, dm)
				return false
			}
			// (4): PC isolation whenever a BE overlap would suffice.
			overlapPC := m.masks[1].Overlaps(dm) || m.masks[4].Overlaps(dm)
			overlapBE := m.masks[2].Overlaps(dm) || m.masks[3].Overlaps(dm)
			if overlapPC && !overlapBE {
				t.Logf("seed %d iter %d: PC shares DDIO while BEs do not", seed, iter)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// faultySys wraps mockSys with seeded read glitches and write faults, the
// same failure modes internal/faults injects at the MSR layer. Every
// requested mask is validated at call time: a hardened daemon must never
// ask the hardware for an invalid allocation, no matter how its counter
// view is corrupted.
type faultySys struct {
	*mockSys
	rng        *rand.Rand
	glitchRate float64 // probability a counter read is corrupted
	rejectRate float64 // probability a mask write errors out
	dropRate   float64 // probability a mask write is silently ignored
	badMasks   int     // invalid masks the daemon requested (must stay 0)
}

func (f *faultySys) ReadCore(c int) rdt.CoreCounters {
	cc := f.mockSys.ReadCore(c)
	if f.rng.Float64() < f.glitchRate {
		if f.rng.Intn(2) == 0 {
			return rdt.CoreCounters{} // zeroed
		}
		sat := (uint64(1) << rdt.CounterBits) - 1
		return rdt.CoreCounters{Instructions: sat, Cycles: sat, LLCRefs: sat, LLCMisses: sat}
	}
	return cc
}

func (f *faultySys) ReadDDIO() rdt.DDIOCounters {
	dc := f.mockSys.ReadDDIO()
	if f.rng.Float64() < f.glitchRate {
		return rdt.DDIOCounters{}
	}
	return dc
}

func (f *faultySys) SetCLOSMask(clos int, w cache.WayMask) error {
	if w == 0 || !w.Contiguous() || w.Highest() >= f.ways {
		f.badMasks++
	}
	if f.rng.Float64() < f.rejectRate {
		return errors.New("injected wrmsr failure")
	}
	if f.rng.Float64() < f.dropRate {
		return nil // silently dropped: read-back will disagree
	}
	return f.mockSys.SetCLOSMask(clos, w)
}

func (f *faultySys) SetDDIOMask(w cache.WayMask) error {
	if w.Count() < 1 || !w.Contiguous() || w.Highest() >= f.ways {
		f.badMasks++
	}
	if f.rng.Float64() < f.rejectRate {
		return errors.New("injected wrmsr failure")
	}
	if f.rng.Float64() < f.dropRate {
		return nil
	}
	return f.mockSys.SetDDIOMask(w)
}

// TestDaemonInvariantsUnderFaults drives the daemon through random counter
// streams WITH injected read glitches and write faults, asserting that it
// (a) never requests an invalid mask, (b) never panics or wedges — every
// Tick returns and the FSM stays in a defined state — and (c) recovers once
// the faults stop: any degradation re-arms and iteration resumes.
func TestDaemonInvariantsUnderFaults(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fs := &faultySys{
			mockSys: newMockSys([]TenantInfo{
				ioTenant("fwd", 1, 0, PC),
				beTenant("be-a", 2, 1),
				beTenant("be-b", 3, 2),
			}),
			rng:        rng,
			glitchRate: 0.15,
			rejectRate: 0.2,
			dropRate:   0.1,
		}
		p := DefaultParams()
		p.IntervalNS = 100e6
		d, err := NewDaemon(fs, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		now := 0.0
		step := func() {
			for core := 0; core < 3; core++ {
				fs.advance(core,
					uint64(rng.Intn(1_000_000)),
					uint64(rng.Intn(2_000_000)+1),
					uint64(rng.Intn(500_000)),
					uint64(rng.Intn(200_000)))
			}
			fs.advanceDDIO(uint64(rng.Intn(2_000_000)), uint64(rng.Intn(600_000)))
			now += 100e6
			d.Tick(now)
		}
		for iter := 0; iter < 80; iter++ {
			step()
			if fs.badMasks != 0 {
				t.Logf("seed %d iter %d: daemon requested %d invalid masks", seed, iter, fs.badMasks)
				return false
			}
			if s := d.State(); s < LowKeep || s > Reclaim {
				t.Logf("seed %d iter %d: undefined FSM state %d", seed, iter, int(s))
				return false
			}
		}

		// Faults stop and the stream settles: the daemon must shed any
		// degradation (re-arm backoff caps at 8x RearmAfter = 16 samples)
		// and keep iterating.
		fs.glitchRate, fs.rejectRate, fs.dropRate = 0, 0, 0
		for i := 0; i < 25; i++ {
			steady(fs.mockSys, func() { now += 100e6; d.Tick(now) })
		}
		if d.Health().Degraded {
			t.Logf("seed %d: still degraded after faults stopped: %+v", seed, d.Health())
			return false
		}
		before, _ := d.Iterations()
		steady(fs.mockSys, func() { now += 100e6; d.Tick(now) })
		after, _ := d.Iterations()
		if after <= before {
			t.Logf("seed %d: daemon wedged after recovery", seed)
			return false
		}
		return fs.badMasks == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestDaemonNeverPanicsOnDegenerateTenants exercises odd tenant layouts.
func TestDaemonNeverPanicsOnDegenerateTenants(t *testing.T) {
	layouts := [][]TenantInfo{
		{},                           // no tenants at all
		{ioTenant("only", 1, 0, PC)}, // single tenant
		{beTenant("b1", 1, 0), beTenant("b2", 1, 1)}, // one group, two tenants
		{ // every priority class
			{Name: "s", Cores: []int{0}, CLOS: 1, Priority: Stack, IO: true},
			ioTenant("p", 2, 1, PC),
			beTenant("b", 3, 2),
		},
	}
	for i, tenants := range layouts {
		m := newMockSys(tenants)
		p := DefaultParams()
		p.IntervalNS = 100e6
		d, err := NewDaemon(m, p, Options{})
		if err != nil {
			t.Fatalf("layout %d: %v", i, err)
		}
		now := 0.0
		for iter := 0; iter < 10; iter++ {
			for _, tn := range tenants {
				for _, c := range tn.Cores {
					m.advance(c, 1000, 2000, uint64(100*iter), uint64(10*iter))
				}
			}
			m.advanceDDIO(uint64(1000*iter), uint64(500*iter*iter))
			now += 100e6
			d.Tick(now)
		}
	}
}
