package core

import (
	"fmt"

	"iatsim/internal/cache"
	"iatsim/internal/telemetry"
)

// HealthStats counts the daemon's self-healing activity: rejected counter
// samples, mask-write retries and failures, and the degrade/re-arm cycles
// of the safe-fallback watchdog.
type HealthStats struct {
	SampleRejects uint64 // interval samples discarded by sanity checks
	WriteRetries  uint64 // extra mask-write attempts after a failure
	WriteFailures uint64 // mask writes that never verified within retries
	Degradations  uint64 // falls back to the safe static allocation
	Rearms        uint64 // watchdog re-arms of the FSM
	BackoffResets uint64 // re-arm backoff cleared by a sustained clean run
	Degraded      bool   // currently holding the safe static allocation
}

// Health returns a snapshot of the daemon's self-healing counters.
func (d *Daemon) Health() HealthStats {
	h := d.health
	h.Degraded = d.degraded
	return h
}

// sampleInsane screens one interval sample against physical plausibility,
// returning a non-empty reason when it must be rejected: glitching counters
// (zeroed, saturated, or wrapped mid-interval) produce rates no real LLC
// can sustain, or miss counts exceeding reference counts.
func (d *Daemon) sampleInsane(s intervalSample) string {
	if s.ddioHitPS > d.P.SaneRateMax || s.ddioMissPS > d.P.SaneRateMax {
		return fmt.Sprintf("ddio rate %.3g/%.3g exceeds %.3g/s", s.ddioHitPS, s.ddioMissPS, d.P.SaneRateMax)
	}
	for _, clos := range sortedCLOS(s.perGroup) {
		g := s.perGroup[clos]
		if g.RefsPS > d.P.SaneRateMax || g.MissPS > d.P.SaneRateMax {
			return fmt.Sprintf("clos %d LLC rate %.3g/%.3g exceeds %.3g/s", clos, g.RefsPS, g.MissPS, d.P.SaneRateMax)
		}
		if g.IPC > d.P.SaneIPCMax {
			return fmt.Sprintf("clos %d IPC %.3g exceeds %.3g", clos, g.IPC, d.P.SaneIPCMax)
		}
		if g.MissPS > g.RefsPS*1.01+d.P.ThresholdMissLowPerSec {
			return fmt.Sprintf("clos %d misses %.3g/s exceed references %.3g/s", clos, g.MissPS, g.RefsPS)
		}
	}
	return ""
}

// rejectSample records a rejected interval sample: the sample is not
// adopted as the comparison baseline (prevRates is untouched), and the bad
// streak advances toward degradation.
func (d *Daemon) rejectSample(nowNS float64, cur intervalSample, reason string) {
	d.health.SampleRejects++
	d.saneStreak = 0
	d.bumpHealth("sanity_rejects")
	d.emitHealth(telemetry.SevWarn, "sample_reject", reason)
	d.noteBad()
	d.emit(nowNS, cur, false, "sample rejected: "+reason)
}

// backoffResetFactor scales how long the daemon must run clean before the
// exponential re-arm backoff is forgiven: backoffResetFactor * RearmAfter
// consecutive clean iterations reset rearmNeed to the base requirement.
const backoffResetFactor = 8

// finishIter closes one normal iteration: a write failure during it counts
// toward degradation, a clean one resets the bad streak and — sustained
// long enough — unwinds the re-arm backoff, so an isolated fault burst far
// in the future starts from the base RearmAfter requirement again rather
// than the 8x cap a long-past flapping episode left behind.
func (d *Daemon) finishIter() {
	if d.writeFailedIter {
		d.noteBad()
		return
	}
	d.consecBad = 0
	if d.rearmNeed > 0 {
		d.cleanStreak++
		if need := backoffResetFactor * d.P.RearmAfter; d.cleanStreak >= need {
			d.rearmNeed = 0
			d.cleanStreak = 0
			d.health.BackoffResets++
			d.bumpHealth("backoff_resets")
			d.emitHealth(telemetry.SevInfo, "backoff_reset",
				fmt.Sprintf("after %d clean iterations", need))
		}
	}
}

// noteBad advances the consecutive-bad-iteration streak and degrades the
// daemon once it reaches DegradeAfter.
func (d *Daemon) noteBad() {
	d.consecBad++
	d.cleanStreak = 0
	if !d.degraded && d.consecBad >= d.P.DegradeAfter {
		d.enterDegraded()
	}
}

// enterDegraded is the graceful-degradation fallback: the daemon stops
// trusting its counter view, programs a conservative static DDIO
// allocation, and waits for the watchdog to see sane reads again. Repeated
// degradations back off exponentially (up to 8x RearmAfter) so a flapping
// fault source cannot make the daemon thrash.
func (d *Daemon) enterDegraded() {
	d.degraded = true
	d.consecBad = 0
	d.saneStreak = 0
	d.health.Degradations++
	if d.rearmNeed == 0 {
		d.rearmNeed = d.P.RearmAfter
	} else {
		d.rearmNeed *= 2
		if limit := 8 * d.P.RearmAfter; d.rearmNeed > limit {
			d.rearmNeed = limit
		}
	}
	d.bumpHealth("degraded_entries")
	d.emitHealth(telemetry.SevWarn, "degraded",
		fmt.Sprintf("falling back to static ddio=%d ways; re-arm after %d sane samples", d.P.SafeDDIOWays, d.rearmNeed))
	d.ddioWays = d.P.SafeDDIOWays
	if !d.Opts.DisableDDIOAdjust {
		d.programDDIO(cache.ContiguousMask(d.nWays-d.ddioWays, d.ddioWays))
	}
	d.state = LowKeep
	// Old baselines are untrustworthy; the policy and every shadow
	// re-baseline after re-arming.
	d.pol.Reset()
	if d.shadows != nil {
		d.shadows.Reset()
	}
}

// degradedTick is one iteration under degradation: hold the safe
// allocation until rearmNeed consecutive sane samples arrive, then re-arm
// the FSM from a fresh baseline.
func (d *Daemon) degradedTick(nowNS float64, cur intervalSample) {
	d.saneStreak++
	if d.saneStreak < d.rearmNeed {
		d.emit(nowNS, cur, false, "degraded: holding safe allocation")
		return
	}
	d.degraded = false
	d.consecBad = 0
	d.saneStreak = 0
	d.health.Rearms++
	d.bumpHealth("rearms")
	d.emitHealth(telemetry.SevInfo, "rearmed", fmt.Sprintf("after %d sane samples", d.rearmNeed))
	d.state = LowKeep
	// Re-adopt the re-arming sample as the comparison baseline: the
	// policy observes it and its (warmup) decision is discarded, so the
	// next iteration compares against this sample — exactly the
	// pre-extraction "prevRates = cur" re-arm semantics. The shadows see
	// the same warmup tick and re-adopt the machine layout with it.
	s := d.sampleFor(nowNS, cur)
	d.pol.Observe(s)
	aw := d.pol.Decide()
	d.shadowTick(s, aw)
	d.emit(nowNS, cur, false, "re-armed")
}

// programCLOS writes a CLOS mask with bounded retries and read-back
// verification, returning true once the register verifiably holds m.
// Backoff is iteration-granular: a write that exhausts its retries is
// retried naturally on the next iteration, because apply() re-programs any
// register whose read-back differs from the computed layout.
func (d *Daemon) programCLOS(clos int, m cache.WayMask) bool {
	for attempt := 0; attempt <= d.P.WriteRetries; attempt++ {
		if attempt > 0 {
			d.health.WriteRetries++
			d.bumpHealth("write_retries")
		}
		if err := d.sys.SetCLOSMask(clos, m); err != nil {
			continue
		}
		if d.sys.CLOSMask(clos) == m {
			return true
		}
	}
	d.noteWriteFailure(fmt.Sprintf("clos%d=%v", clos, m))
	return false
}

// programDDIO is programCLOS for the IIO_LLC_WAYS register.
func (d *Daemon) programDDIO(m cache.WayMask) bool {
	for attempt := 0; attempt <= d.P.WriteRetries; attempt++ {
		if attempt > 0 {
			d.health.WriteRetries++
			d.bumpHealth("write_retries")
		}
		if err := d.sys.SetDDIOMask(m); err != nil {
			continue
		}
		if d.sys.DDIOMask() == m {
			return true
		}
	}
	d.noteWriteFailure(fmt.Sprintf("ddio=%v", m))
	return false
}

func (d *Daemon) noteWriteFailure(detail string) {
	d.health.WriteFailures++
	d.writeFailedIter = true
	d.bumpHealth("write_failures")
	d.emitHealth(telemetry.SevWarn, "write_fail", detail)
}

// bumpHealth increments a daemon-scoped health counter (nil-safe).
func (d *Daemon) bumpHealth(name string) {
	if d.Tel != nil {
		d.Tel.Counter("daemon", "", name).Inc()
	}
}

// emitHealth publishes one self-healing event.
func (d *Daemon) emitHealth(sev telemetry.Severity, name, detail string) {
	if d.Tel == nil {
		return
	}
	d.Tel.Emit(telemetry.Event{
		TimeNS: d.nowNS, Sev: sev,
		Subsystem: "daemon", Name: name, Detail: detail,
	})
}
