package core

import (
	"errors"
	"testing"

	"iatsim/internal/cache"
	"iatsim/internal/telemetry"
)

// flakySys is a mockSys whose mask writes can be made to fail.
type flakySys struct {
	*mockSys
	failCLOS int  // reject this many SetCLOSMask calls, then recover
	failDDIO bool // reject every SetDDIOMask call
}

func (f *flakySys) SetCLOSMask(clos int, w cache.WayMask) error {
	if f.failCLOS > 0 {
		f.failCLOS--
		return errors.New("injected wrmsr failure")
	}
	return f.mockSys.SetCLOSMask(clos, w)
}

func (f *flakySys) SetDDIOMask(w cache.WayMask) error {
	if f.failDDIO {
		return errors.New("injected wrmsr failure")
	}
	return f.mockSys.SetDDIOMask(w)
}

func TestProgramCLOSRetriesAndVerifies(t *testing.T) {
	fs := &flakySys{mockSys: newMockSys([]TenantInfo{ioTenant("fwd", 1, 0, PC)})}
	d := testDaemon(t, fs, Options{})

	// Two failures with the default two retries: the third attempt lands.
	fs.failCLOS = 2
	m := cache.ContiguousMask(0, 3)
	if !d.programCLOS(1, m) {
		t.Fatal("write did not succeed within retry budget")
	}
	if fs.masks[1] != m {
		t.Fatalf("register holds %v, want %v", fs.masks[1], m)
	}
	h := d.Health()
	if h.WriteRetries != 2 || h.WriteFailures != 0 {
		t.Fatalf("health after recovered write: %+v", h)
	}

	// More failures than the retry budget: counted as a write failure.
	fs.failCLOS = 5
	if d.programCLOS(1, cache.ContiguousMask(0, 4)) {
		t.Fatal("write claimed success while every attempt failed")
	}
	h = d.Health()
	if h.WriteFailures != 1 || !d.writeFailedIter {
		t.Fatalf("health after exhausted retries: %+v (failedIter=%v)", h, d.writeFailedIter)
	}
}

// glitch feeds one interval whose sample must fail the sanity screen:
// misses vastly exceeding references is physically impossible.
func glitch(m *mockSys, tick func()) {
	m.advance(0, 1000, 2000, 0, 10_000_000)
	m.advanceDDIO(1000, 10)
	tick()
}

func TestSampleRejectPreservesBaseline(t *testing.T) {
	m := newMockSys([]TenantInfo{ioTenant("fwd", 1, 0, PC)})
	d := testDaemon(t, m, Options{})
	reg := telemetry.NewRegistry()
	d.Tel = reg
	now := 0.0
	tick := func() { now += 100e6; d.Tick(now) }
	steady(m, tick)
	steady(m, tick)

	glitch(m, tick)
	h := d.Health()
	if h.SampleRejects != 1 || h.Degraded {
		t.Fatalf("health after one glitch: %+v", h)
	}
	if m.maskWrites != 0 || m.ddioWrites != 0 {
		t.Fatal("rejected sample reprogrammed registers")
	}
	if got := reg.Counter("daemon", "", "sanity_rejects").Value(); got != 1 {
		t.Fatalf("sanity_rejects counter = %d", got)
	}
	evs := reg.Events(telemetry.SevWarn, "daemon")
	if len(evs) != 1 || evs[0].Name != "sample_reject" {
		t.Fatalf("warn events = %+v", evs)
	}

	// The glitched sample must not have become the comparison baseline:
	// the next sane interval compares against the last sane rates and
	// reads as stable.
	steady(m, tick)
	if _, unstable := d.Iterations(); unstable != 0 {
		t.Fatalf("sane interval after a glitch read as unstable (%d)", unstable)
	}
}

func TestDaemonDegradesAndRearms(t *testing.T) {
	m := newMockSys([]TenantInfo{ioTenant("fwd", 1, 0, PC)})
	d := testDaemon(t, m, Options{})
	reg := telemetry.NewRegistry()
	d.Tel = reg
	var degradedIters int
	d.OnIteration = func(info IterationInfo) {
		if info.Degraded {
			degradedIters++
		}
	}
	now := 0.0
	tick := func() { now += 100e6; d.Tick(now) }
	steady(m, tick)
	steady(m, tick)

	// DegradeAfter (3) consecutive rejected samples force the fallback.
	glitch(m, tick)
	glitch(m, tick)
	glitch(m, tick)
	h := d.Health()
	if !h.Degraded || h.Degradations != 1 || h.SampleRejects != 3 {
		t.Fatalf("health after degrade: %+v", h)
	}
	if d.State() != LowKeep {
		t.Fatalf("degraded state = %v, want LowKeep", d.State())
	}
	if want := cache.ContiguousMask(11-d.P.SafeDDIOWays, d.P.SafeDDIOWays); m.ddio != want {
		t.Fatalf("fallback DDIO mask = %v, want %v", m.ddio, want)
	}
	if degradedIters == 0 {
		t.Fatal("IterationInfo never reported Degraded")
	}

	// RearmAfter (2) consecutive sane samples re-arm the FSM.
	steady(m, tick) // hold
	if !d.Health().Degraded {
		t.Fatal("re-armed after a single sane sample")
	}
	steady(m, tick) // re-arm
	h = d.Health()
	if h.Degraded || h.Rearms != 1 {
		t.Fatalf("health after re-arm: %+v", h)
	}
	if got := reg.Counter("daemon", "", "rearms").Value(); got != 1 {
		t.Fatalf("rearms counter = %d", got)
	}

	// Normal operation resumes from a fresh baseline.
	before, _ := d.Iterations()
	steady(m, tick)
	steady(m, tick)
	if after, _ := d.Iterations(); after <= before {
		t.Fatal("daemon stopped iterating after re-arm")
	}
}

func TestDaemonDegradesOnPersistentWriteFailures(t *testing.T) {
	fs := &flakySys{
		mockSys:  newMockSys([]TenantInfo{ioTenant("fwd", 1, 0, PC)}),
		failDDIO: true,
	}
	d := testDaemon(t, fs, Options{})
	now := 0.0
	tick := func() { now += 100e6; d.Tick(now) }
	steady(fs.mockSys, tick)
	steady(fs.mockSys, tick)
	// Sustained I/O demand: every iteration tries to grow DDIO and every
	// write fails, so the daemon must fall back after DegradeAfter (3).
	for i := 1; i <= 3; i++ {
		fs.advance(0, 1000, 2000, 100, 10)
		fs.advanceDDIO(100_000, uint64(1_000_000+i*300_000)/10)
		tick()
	}
	h := d.Health()
	if !h.Degraded || h.Degradations != 1 {
		t.Fatalf("health after persistent write failures: %+v", h)
	}
	if h.WriteFailures < 3 {
		t.Fatalf("write failures = %d, want >= 3", h.WriteFailures)
	}
	// The CLOS registers were never put in an invalid state.
	for clos, m := range fs.masks {
		if m == 0 || !m.Contiguous() {
			t.Fatalf("clos %d holds invalid mask %v", clos, m)
		}
	}
	// Once writes heal, sane samples re-arm the daemon.
	fs.failDDIO = false
	steady(fs.mockSys, tick)
	steady(fs.mockSys, tick)
	if h := d.Health(); h.Degraded || h.Rearms != 1 {
		t.Fatalf("health after writes healed: %+v", h)
	}
}

// degradeOnce feeds DegradeAfter consecutive glitches, forcing one
// degradation.
func degradeOnce(t *testing.T, d *Daemon, m *mockSys, tick func()) {
	t.Helper()
	before := d.Health().Degradations
	for i := 0; i < d.P.DegradeAfter; i++ {
		glitch(m, tick)
	}
	if h := d.Health(); !h.Degraded || h.Degradations != before+1 {
		t.Fatalf("degradation did not trigger: %+v", h)
	}
}

// rearm feeds sane intervals until the degraded daemon re-arms.
func rearm(t *testing.T, d *Daemon, m *mockSys, tick func()) {
	t.Helper()
	for i := 0; i < d.rearmNeed+1 && d.Health().Degraded; i++ {
		steady(m, tick)
	}
	if d.Health().Degraded {
		t.Fatalf("daemon still degraded after %d sane samples", d.rearmNeed)
	}
}

func TestRearmBackoffDoublesAndCapsAtEightX(t *testing.T) {
	m := newMockSys([]TenantInfo{ioTenant("fwd", 1, 0, PC)})
	d := testDaemon(t, m, Options{})
	now := 0.0
	tick := func() { now += 100e6; d.Tick(now) }
	steady(m, tick)
	steady(m, tick)

	// RearmAfter=2: successive degradations must require 2, 4, 8, 16 sane
	// samples, then stay capped at 8x = 16.
	want := []int{2, 4, 8, 16, 16, 16}
	for i, w := range want {
		degradeOnce(t, d, m, tick)
		if d.rearmNeed != w {
			t.Fatalf("degradation %d: rearmNeed = %d, want %d", i+1, d.rearmNeed, w)
		}
		rearm(t, d, m, tick)
	}
	if h := d.Health(); h.BackoffResets != 0 {
		t.Fatalf("backoff reset without a sustained clean run: %+v", h)
	}
}

func TestRearmBackoffResetsAfterRecovery(t *testing.T) {
	m := newMockSys([]TenantInfo{ioTenant("fwd", 1, 0, PC)})
	d := testDaemon(t, m, Options{})
	reg := telemetry.NewRegistry()
	d.Tel = reg
	now := 0.0
	tick := func() { now += 100e6; d.Tick(now) }
	steady(m, tick)
	steady(m, tick)

	// Two degradations leave the backoff doubled (4 sane samples needed).
	degradeOnce(t, d, m, tick)
	rearm(t, d, m, tick)
	degradeOnce(t, d, m, tick)
	if d.rearmNeed != 2*d.P.RearmAfter {
		t.Fatalf("rearmNeed = %d, want %d", d.rearmNeed, 2*d.P.RearmAfter)
	}
	rearm(t, d, m, tick)

	// One clean iteration short of the reset threshold: backoff persists.
	for i := 0; i < backoffResetFactor*d.P.RearmAfter-1; i++ {
		steady(m, tick)
	}
	if h := d.Health(); h.BackoffResets != 0 || d.rearmNeed == 0 {
		t.Fatalf("backoff reset early: resets=%d rearmNeed=%d", h.BackoffResets, d.rearmNeed)
	}
	// The final clean iteration clears it.
	steady(m, tick)
	h := d.Health()
	if h.BackoffResets != 1 || d.rearmNeed != 0 {
		t.Fatalf("backoff not reset: resets=%d rearmNeed=%d", h.BackoffResets, d.rearmNeed)
	}
	if got := reg.Counter("daemon", "", "backoff_resets").Value(); got != 1 {
		t.Fatalf("backoff_resets counter = %d", got)
	}

	// The next degradation starts from the base requirement again.
	degradeOnce(t, d, m, tick)
	if d.rearmNeed != d.P.RearmAfter {
		t.Fatalf("rearmNeed after reset = %d, want %d", d.rearmNeed, d.P.RearmAfter)
	}
}

func TestSetParamsClampsAndValidates(t *testing.T) {
	m := newMockSys([]TenantInfo{ioTenant("fwd", 1, 0, PC)})
	d := testDaemon(t, m, Options{})
	now := 0.0
	tick := func() { now += 100e6; d.Tick(now) }
	steady(m, tick)
	steady(m, tick)

	// Sustained I/O demand grows the DDIO allocation past 4 ways.
	for i := 1; i <= 6; i++ {
		m.advance(0, 1000, 2000, 100, 10)
		m.advanceDDIO(100_000, uint64(1_000_000+i*300_000)/10)
		tick()
	}
	if d.DDIOWays() <= 4 {
		t.Fatalf("setup: ddioWays = %d, want > 4", d.DDIOWays())
	}

	// An invalid update must be rejected and leave P untouched.
	bad := d.P
	bad.DDIOWaysMax = 0
	if err := d.SetParams(bad); err == nil {
		t.Fatal("invalid params accepted")
	}
	if d.P.DDIOWaysMax != 6 {
		t.Fatalf("failed update mutated P: %+v", d.P)
	}

	// A tighter way budget clamps the live allocation and reprograms the
	// register.
	p := d.P
	p.DDIOWaysMax = 4
	p.SafeDDIOWays = 2
	if err := d.SetParams(p); err != nil {
		t.Fatal(err)
	}
	if d.DDIOWays() != 4 {
		t.Fatalf("ddioWays = %d, want clamped to 4", d.DDIOWays())
	}
	if want := cache.ContiguousMask(11-4, 4); m.ddio != want {
		t.Fatalf("DDIO register = %v, want %v", m.ddio, want)
	}

	// The daemon keeps iterating under the new parameters.
	before, _ := d.Iterations()
	steady(m, tick)
	steady(m, tick)
	if after, _ := d.Iterations(); after <= before {
		t.Fatal("daemon stopped iterating after SetParams")
	}
	if d.DDIOWays() > 4 {
		t.Fatalf("ddioWays %d exceeds new max", d.DDIOWays())
	}
}

func TestRobustnessDefaultsAndValidation(t *testing.T) {
	p := DefaultParams()
	if p.SaneIPCMax != 16 || p.SaneRateMax != 1e12 || p.WriteRetries != 2 ||
		p.DegradeAfter != 3 || p.RearmAfter != 2 || p.SafeDDIOWays != 2 {
		t.Fatalf("robustness defaults = %+v", p)
	}
	bad := p
	bad.SafeDDIOWays = 99
	if err := bad.Validate(11); err == nil {
		t.Error("SafeDDIOWays beyond the LLC accepted")
	}
	bad = p
	bad.WriteRetries = -1
	if err := bad.Validate(11); err == nil {
		t.Error("negative WriteRetries accepted")
	}
	// A narrow DDIO bound pulls the safe fallback inside it.
	narrow := Params{
		ThresholdStable: 0.03, ThresholdMissLowPerSec: 1e6,
		DDIOWaysMin: 1, DDIOWaysMax: 1, IntervalNS: 1e9,
	}.withRobustnessDefaults()
	if narrow.SafeDDIOWays != 1 {
		t.Fatalf("SafeDDIOWays not clamped to DDIOWaysMax: %d", narrow.SafeDDIOWays)
	}
}
