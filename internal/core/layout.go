package core

import (
	"fmt"
	"sort"

	"iatsim/internal/cache"
)

// Group is an allocation unit: the tenants sharing one class of service
// (tenants may be grouped, e.g. the two PC forwarding containers of the
// paper's Fig. 10 share three ways). Widths are in ways; RefsPerSec is the
// group's most recent LLC reference rate, the sort key of the shuffling
// step (Sec. IV-D: the BE tenant with the smallest LLC reference count is
// chosen to share ways with DDIO).
type Group struct {
	CLOS     int
	Names    []string
	Priority Priority
	IO       bool
	Width    int
	// RefsPerSec is updated every poll.
	RefsPerSec float64
	// MissRatePerSec is the group's LLC miss rate (misses/s), used by
	// the Reclaim state's tenant selection.
	MissPerSec float64
	// MissRate is misses/references of the last interval.
	MissRate float64
}

// PackBottomUp assigns each group a contiguous mask, packing from way 0
// upward in slice order. The total width must not exceed nWays. Groups
// whose span crosses nWays-ddioWays end up overlapping the DDIO ways —
// which is exactly how the layout expresses core/I-O sharing.
func PackBottomUp(nWays int, groups []*Group) (map[int]cache.WayMask, error) {
	masks := make(map[int]cache.WayMask, len(groups))
	pos := 0
	for _, g := range groups {
		if g.Width < 1 {
			return nil, fmt.Errorf("core: group clos=%d has width %d", g.CLOS, g.Width)
		}
		if pos+g.Width > nWays {
			return nil, fmt.Errorf("core: layout overflows %d ways (at clos=%d)", nWays, g.CLOS)
		}
		masks[g.CLOS] = cache.ContiguousMask(pos, g.Width)
		pos += g.Width
	}
	return masks, nil
}

// OrderGroups returns the bottom-up packing order implementing the paper's
// shuffling policy: the software stack lowest, then performance-critical
// groups, then best-effort groups sorted by descending LLC reference rate —
// so the least memory-intensive BE group lands on top, adjacent to (and,
// under pressure, overlapping) the DDIO ways.
//
// prevTopCLOS is the group currently sharing with DDIO (-1 if none);
// shuffleMargin applies hysteresis: the incumbent keeps the top slot unless
// the challenger's reference rate is below margin times the incumbent's.
// Within a priority class the original slice order breaks ties, so the
// result is deterministic.
func OrderGroups(groups []*Group, prevTopCLOS int, shuffleMargin float64) []*Group {
	ordered := make([]*Group, len(groups))
	copy(ordered, groups)
	rank := func(p Priority) int {
		switch p {
		case Stack:
			return 0
		case PC:
			return 1
		default:
			return 2
		}
	}
	sort.SliceStable(ordered, func(i, j int) bool {
		ri, rj := rank(ordered[i].Priority), rank(ordered[j].Priority)
		if ri != rj {
			return ri < rj
		}
		if ri == 2 { // BE: descending refs, least-referencing last (topmost)
			return ordered[i].RefsPerSec > ordered[j].RefsPerSec
		}
		return false // keep stable order for stack/PC
	})
	// Hysteresis on the DDIO-sharing (topmost) slot.
	n := len(ordered)
	if n >= 2 && prevTopCLOS >= 0 {
		top := ordered[n-1]
		if top.Priority == BE && top.CLOS != prevTopCLOS {
			for i := n - 2; i >= 0; i-- {
				g := ordered[i]
				if g.CLOS != prevTopCLOS || g.Priority != BE {
					continue
				}
				// Challenger must beat the incumbent by the margin.
				if top.RefsPerSec >= shuffleMargin*g.RefsPerSec {
					ordered[i], ordered[n-1] = ordered[n-1], ordered[i]
				}
				break
			}
		}
	}
	return ordered
}

// TotalWidth sums group widths.
func TotalWidth(groups []*Group) int {
	t := 0
	for _, g := range groups {
		t += g.Width
	}
	return t
}
