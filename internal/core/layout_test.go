package core

import (
	"testing"
	"testing/quick"

	"iatsim/internal/cache"
)

func g(clos, width int, prio Priority, refs float64) *Group {
	return &Group{CLOS: clos, Width: width, Priority: prio, RefsPerSec: refs}
}

func TestPackBottomUpContiguousDisjoint(t *testing.T) {
	groups := []*Group{g(1, 3, Stack, 0), g(2, 2, PC, 0), g(3, 2, BE, 0)}
	masks, err := PackBottomUp(11, groups)
	if err != nil {
		t.Fatal(err)
	}
	if masks[1] != cache.ContiguousMask(0, 3) ||
		masks[2] != cache.ContiguousMask(3, 2) ||
		masks[3] != cache.ContiguousMask(5, 2) {
		t.Fatalf("masks = %v", masks)
	}
	for clos, m := range masks {
		if !m.Contiguous() {
			t.Errorf("clos %d mask %v not contiguous", clos, m)
		}
		for clos2, m2 := range masks {
			if clos != clos2 && m.Overlaps(m2) {
				t.Errorf("clos %d and %d overlap", clos, clos2)
			}
		}
	}
}

func TestPackBottomUpOverflowRejected(t *testing.T) {
	if _, err := PackBottomUp(4, []*Group{g(1, 3, PC, 0), g(2, 2, BE, 0)}); err == nil {
		t.Fatal("overflow accepted")
	}
	if _, err := PackBottomUp(4, []*Group{g(1, 0, PC, 0)}); err == nil {
		t.Fatal("zero width accepted")
	}
}

// Property: packing any widths that fit produces disjoint contiguous masks
// covering exactly the total width.
func TestPackBottomUpProperty(t *testing.T) {
	f := func(ws []uint8) bool {
		var groups []*Group
		total := 0
		for i, w := range ws {
			width := int(w%3) + 1
			if total+width > 20 {
				break
			}
			total += width
			groups = append(groups, g(i, width, BE, 0))
		}
		if len(groups) == 0 {
			return true
		}
		masks, err := PackBottomUp(20, groups)
		if err != nil {
			return false
		}
		var union cache.WayMask
		covered := 0
		for _, m := range masks {
			if !m.Contiguous() || m.Overlaps(union) {
				return false
			}
			union |= m
			covered += m.Count()
		}
		return covered == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOrderGroupsPriorityOrder(t *testing.T) {
	groups := []*Group{
		g(1, 2, BE, 100),
		g(2, 2, PC, 0),
		g(3, 2, Stack, 0),
		g(4, 2, BE, 50),
	}
	ordered := OrderGroups(groups, -1, 0.9)
	if ordered[0].CLOS != 3 {
		t.Fatalf("stack not first: %d", ordered[0].CLOS)
	}
	if ordered[1].CLOS != 2 {
		t.Fatalf("PC not second: %d", ordered[1].CLOS)
	}
	// BE with the SMALLEST reference rate must be last (topmost,
	// adjacent to DDIO).
	if ordered[3].CLOS != 4 {
		t.Fatalf("least-referencing BE not topmost: %d", ordered[3].CLOS)
	}
}

func TestOrderGroupsHysteresis(t *testing.T) {
	a := g(1, 2, BE, 100) // incumbent sharer
	b := g(2, 2, BE, 95)  // challenger, within the 0.9 margin
	ordered := OrderGroups([]*Group{a, b}, 1, 0.9)
	if ordered[1].CLOS != 1 {
		t.Fatalf("incumbent displaced by a challenger inside the margin: top=%d", ordered[1].CLOS)
	}
	// Outside the margin the challenger wins.
	b.RefsPerSec = 50
	ordered = OrderGroups([]*Group{a, b}, 1, 0.9)
	if ordered[1].CLOS != 2 {
		t.Fatalf("clearly quieter challenger not promoted: top=%d", ordered[1].CLOS)
	}
}

func TestOrderGroupsStableWithinPriority(t *testing.T) {
	groups := []*Group{g(1, 2, PC, 0), g(2, 2, PC, 0), g(3, 2, PC, 0)}
	ordered := OrderGroups(groups, -1, 0.9)
	for i, gr := range ordered {
		if gr.CLOS != i+1 {
			t.Fatalf("PC order not stable: %v", []int{ordered[0].CLOS, ordered[1].CLOS, ordered[2].CLOS})
		}
	}
}

func TestOrderGroupsDoesNotMutateInput(t *testing.T) {
	groups := []*Group{g(1, 2, BE, 10), g(2, 2, Stack, 0)}
	OrderGroups(groups, -1, 0.9)
	if groups[0].CLOS != 1 || groups[1].CLOS != 2 {
		t.Fatal("input slice mutated")
	}
}

func TestTotalWidth(t *testing.T) {
	if TotalWidth([]*Group{g(1, 2, BE, 0), g(2, 3, BE, 0)}) != 5 {
		t.Fatal("TotalWidth wrong")
	}
	if TotalWidth(nil) != 0 {
		t.Fatal("TotalWidth(nil) != 0")
	}
}

func TestParamsValidate(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(11); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Params){
		func(p *Params) { p.ThresholdStable = 0 },
		func(p *Params) { p.ThresholdStable = 1.5 },
		func(p *Params) { p.DDIOWaysMin = 0 },
		func(p *Params) { p.DDIOWaysMax = 12 },
		func(p *Params) { p.DDIOWaysMin = 5; p.DDIOWaysMax = 3 },
		func(p *Params) { p.IntervalNS = 0 },
	}
	for i, mod := range bad {
		q := DefaultParams()
		mod(&q)
		if err := q.Validate(11); err == nil {
			t.Errorf("case %d accepted: %+v", i, q)
		}
	}
}

func TestTableIIDefaults(t *testing.T) {
	p := DefaultParams()
	if p.ThresholdStable != 0.03 {
		t.Errorf("THRESHOLD_STABLE = %v", p.ThresholdStable)
	}
	if p.ThresholdMissLowPerSec != 1e6 {
		t.Errorf("THRESHOLD_MISS_LOW = %v", p.ThresholdMissLowPerSec)
	}
	if p.DDIOWaysMin != 1 || p.DDIOWaysMax != 6 {
		t.Errorf("DDIO_WAYS = %d/%d", p.DDIOWaysMin, p.DDIOWaysMax)
	}
	if p.IntervalNS != 1e9 {
		t.Errorf("interval = %v", p.IntervalNS)
	}
}

func TestStateString(t *testing.T) {
	names := map[State]string{
		LowKeep: "LowKeep", IODemand: "IODemand", CoreDemand: "CoreDemand",
		HighKeep: "HighKeep", Reclaim: "Reclaim",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%v", s)
		}
	}
	// The out-of-range default branch must render the raw value, so a
	// corrupted state is visible in emitted lines instead of crashing or
	// masquerading as a real state.
	if got := State(99).String(); got != "State(99)" {
		t.Errorf("State(99).String() = %q, want State(99)", got)
	}
}

func TestPriorityString(t *testing.T) {
	if BE.String() != "BE" || PC.String() != "PC" || Stack.String() != "stack" {
		t.Error("priority strings wrong")
	}
}
