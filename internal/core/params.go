// Package core implements IAT, the paper's contribution: the first I/O-aware
// last-level-cache management mechanism. IAT runs as a daemon that
// periodically polls hardware performance counters (per-tenant IPC, LLC
// references/misses; chip-wide DDIO hits/misses), classifies the system
// state with a Mealy finite state machine (Low Keep / High Keep / I/O Demand
// / Core Demand / Reclaim), and re-allocates LLC ways between DDIO and the
// tenants — including shuffling which best-effort tenant shares ways with
// DDIO — to mitigate the Leaky DMA and Latent Contender problems.
//
// The daemon is hardware-agnostic: everything it observes or programs goes
// through the System interface, implemented over the simulated platform in
// this repository (internal/bridge) and implementable over real MSRs with
// the same code.
package core

import (
	"fmt"

	"iatsim/internal/policy"
)

// Params are the IAT tuning parameters of Table II of the paper, expressed
// as rates so the polling interval is an independent knob.
type Params struct {
	// ThresholdStable is the relative per-event delta below which the
	// system is considered unchanged (3% in the paper).
	ThresholdStable float64
	// ThresholdMissLowPerSec is the DDIO write-allocate rate above which
	// the I/O is considered to be pressing the LLC (1M/s in the paper).
	ThresholdMissLowPerSec float64
	// DDIOWaysMin / DDIOWaysMax bound the DDIO way allocation (1 and 6).
	DDIOWaysMin int
	DDIOWaysMax int
	// IntervalNS is the sleep interval between iterations (1s in the
	// paper; simulations may shorten it — the thresholds are rates, so
	// behaviour is interval-independent).
	IntervalNS float64
	// MissDropFactor is the relative DDIO-miss decrease treated as a
	// "significant degradation" that sends I/O Demand / High Keep to
	// Reclaim.
	MissDropFactor float64
	// TenantMissRateFloor is the per-tenant LLC miss rate below which a
	// tenant is a reclaim candidate.
	TenantMissRateFloor float64
	// ShuffleMargin is the hysteresis on best-effort re-ordering: the
	// DDIO-sharing tenant is replaced only when the challenger's LLC
	// reference rate is below margin times the incumbent's.
	ShuffleMargin float64
	// Growth selects the re-allocation increment policy (Sec. IV-D:
	// "miss-curve-based increment like UCP can also be explored").
	Growth GrowthPolicy

	// Robustness knobs (zero selects the default): a production daemon
	// polls counters and programs MSRs that can glitch, so every sample is
	// sanity-checked and every write verified. See Daemon.Health.

	// SaneIPCMax is the per-group IPC above which a sample is rejected as
	// a counter glitch (no real core sustains it; default 16).
	SaneIPCMax float64
	// SaneRateMax is the per-group/DDIO event rate (per second) above
	// which a sample is rejected (default 1e12 — beyond any LLC).
	SaneRateMax float64
	// WriteRetries is how many times a failed or mis-read-back mask write
	// is retried within one iteration before counting as a failure
	// (default 2).
	WriteRetries int
	// DegradeAfter is the number of consecutive bad iterations (rejected
	// samples or write failures) after which the daemon falls back to a
	// safe static allocation (default 3).
	DegradeAfter int
	// RearmAfter is the number of consecutive sane samples required
	// before a degraded daemon re-arms its FSM (default 2). Repeated
	// degradations double the requirement, capped at 8x; 8x RearmAfter
	// consecutive clean iterations after a re-arm reset the backoff to
	// the base requirement.
	RearmAfter int
	// SafeDDIOWays is the static DDIO way count of the degraded fallback
	// (default 2 clamped into [DDIOWaysMin, DDIOWaysMax]).
	SafeDDIOWays int
}

// GrowthPolicy is the re-allocation increment strategy.
type GrowthPolicy int

// Growth policies.
const (
	// GrowOneWay grants exactly one way per iteration (the paper's
	// default).
	GrowOneWay GrowthPolicy = iota
	// GrowUCP grants 1-3 ways per iteration scaled by how far the DDIO
	// miss rate sits above THRESHOLD_MISS_LOW — a utility-style
	// increment in the spirit of UCP, converging faster under heavy
	// pressure at the cost of occasional overshoot.
	GrowUCP
)

// String implements fmt.Stringer.
func (g GrowthPolicy) String() string {
	switch g {
	case GrowOneWay:
		return "one-way"
	case GrowUCP:
		return "ucp"
	}
	return fmt.Sprintf("GrowthPolicy(%d)", int(g))
}

// DefaultParams returns Table II plus the secondary knobs' defaults.
func DefaultParams() Params {
	return Params{
		ThresholdStable:        0.03,
		ThresholdMissLowPerSec: 1e6,
		DDIOWaysMin:            1,
		DDIOWaysMax:            6,
		IntervalNS:             1e9,
		MissDropFactor:         0.5,
		TenantMissRateFloor:    0.05,
		ShuffleMargin:          0.9,
	}.withRobustnessDefaults()
}

// withRobustnessDefaults fills the zero values of the robustness knobs, so
// pre-existing Params literals keep working and NewDaemon always runs with
// sane self-healing thresholds.
func (p Params) withRobustnessDefaults() Params {
	if p.SaneIPCMax == 0 {
		p.SaneIPCMax = 16
	}
	if p.SaneRateMax == 0 {
		p.SaneRateMax = 1e12
	}
	if p.WriteRetries == 0 {
		p.WriteRetries = 2
	}
	if p.DegradeAfter == 0 {
		p.DegradeAfter = 3
	}
	if p.RearmAfter == 0 {
		p.RearmAfter = 2
	}
	if p.SafeDDIOWays == 0 {
		p.SafeDDIOWays = 2
		if p.DDIOWaysMax > 0 && p.SafeDDIOWays > p.DDIOWaysMax {
			p.SafeDDIOWays = p.DDIOWaysMax
		}
		if p.SafeDDIOWays < p.DDIOWaysMin {
			p.SafeDDIOWays = p.DDIOWaysMin
		}
	}
	return p
}

// Validate checks parameter sanity against an LLC with nWays ways.
func (p Params) Validate(nWays int) error {
	if p.ThresholdStable <= 0 || p.ThresholdStable >= 1 {
		return fmt.Errorf("core: ThresholdStable %v out of (0,1)", p.ThresholdStable)
	}
	if p.DDIOWaysMin < 1 || p.DDIOWaysMax < p.DDIOWaysMin || p.DDIOWaysMax > nWays {
		return fmt.Errorf("core: DDIO way bounds [%d,%d] invalid for %d ways",
			p.DDIOWaysMin, p.DDIOWaysMax, nWays)
	}
	if p.IntervalNS <= 0 {
		return fmt.Errorf("core: IntervalNS must be positive")
	}
	if p.SaneIPCMax < 0 || p.SaneRateMax < 0 {
		return fmt.Errorf("core: sanity bounds must be non-negative")
	}
	if p.WriteRetries < 0 {
		return fmt.Errorf("core: WriteRetries must be non-negative")
	}
	if p.DegradeAfter < 0 || p.RearmAfter < 0 {
		return fmt.Errorf("core: DegradeAfter/RearmAfter must be non-negative")
	}
	if p.SafeDDIOWays < 0 || p.SafeDDIOWays > nWays {
		return fmt.Errorf("core: SafeDDIOWays %d invalid for %d ways", p.SafeDDIOWays, nWays)
	}
	return nil
}

// Options are the experiment isolation switches the paper's evaluation
// flips (footnotes 3 and 4, and Sec. VI-C's "temporarily disable ...").
type Options struct {
	// DisableDDIOAdjust stops IAT from changing the DDIO way count (the
	// Latent Contender experiment isolates shuffling this way).
	DisableDDIOAdjust bool
	// DisableShuffle stops best-effort tenants from being re-ordered
	// against DDIO (the Core-only comparison point).
	DisableShuffle bool
	// DisableTenantAdjust stops IAT from growing/shrinking tenant
	// allocations (the application study isolates DDIO sizing +
	// shuffling this way).
	DisableTenantAdjust bool
}

// State is the Mealy FSM state of Fig. 6. The type now lives in
// internal/policy (the allocation policy owns the control FSM — see the
// //simlint:enum marker and String() there); the alias and re-declared
// constants keep core's public API source-compatible.
type State = policy.State

// FSM states (re-exported from internal/policy).
const (
	LowKeep    = policy.LowKeep
	IODemand   = policy.IODemand
	CoreDemand = policy.CoreDemand
	HighKeep   = policy.HighKeep
	Reclaim    = policy.Reclaim
)
