package core

// This file documents how to port the daemon to real hardware. It contains
// no code on purpose: the daemon's only dependency is the System interface,
// and the reproduction's simulated backend (internal/bridge) demonstrates
// the full contract.
//
// # Porting IAT to a real Intel Xeon
//
// Implement core.System over the following primitives (the same ones the
// paper's artifact, the enhanced pqos at github.com/FAST-UIUC/iat-pqos,
// uses):
//
//	Tenants        parse a tenant file (internal/tenantfile's format) or
//	               query the cluster orchestrator (Sec. IV-A).
//	CLOSMask /     IA32_L3_QOS_MASK_n (MSR 0xC90+n) via pqos or the msr
//	SetCLOSMask    kernel module; contiguity and population rules are
//	               enforced by hardware exactly as internal/rdt enforces
//	               them here.
//	DDIOMask /     IIO_LLC_WAYS (MSR 0xC8B on Skylake-SP/Cascade Lake);
//	SetDDIOMask    requires the msr module and ring 0. Note the register
//	               is per-socket.
//	ReadCore       INST_RETIRED.ANY, CPU_CLK_UNHALTED.THREAD,
//	               LONGEST_LAT_CACHE.REFERENCE/MISS via perf_event_open
//	               or pqos monitoring groups.
//	ReadDDIO       the CHA uncore counters. Program one CHA's counter
//	               pair with the LLC_LOOKUP event filtered to I/O
//	               (write update) and the write-allocate event, read it,
//	               and multiply by the slice count — Sec. V's sampling
//	               trick, mirrored by internal/rdt.ReadDDIO.
//
// Counter reads must be cumulative and monotonic; the daemon differences
// them itself and tolerates arbitrary polling gaps (rates are computed
// against the observed interval).
//
// The daemon never sleeps on its own: call Tick from your own loop (the
// paper uses a 1-second cadence; Params.IntervalNS gates iteration).
// Pin the process to a dedicated core, or accept the ~0.08% overhead of
// co-locating it (Sec. VI-D).
//
// Keep Params.ThresholdMissLowPerSec in real events per second on real
// hardware — the /Scale division seen throughout internal/exp exists only
// because the simulation divides every rate by its scale factor.
