package core

import (
	"iatsim/internal/cache"
	"iatsim/internal/rdt"
)

// Priority is a tenant's class, mirroring Sec. IV-A: performance-critical
// and best-effort tenants, plus the special class for the aggregation
// model's software stack.
type Priority int

// Priority values.
const (
	BE Priority = iota
	PC
	Stack
)

// String implements fmt.Stringer.
func (p Priority) String() string {
	switch p {
	case BE:
		return "BE"
	case PC:
		return "PC"
	case Stack:
		return "stack"
	}
	return "?"
}

// TenantInfo is the per-tenant record of the Get Tenant Info step: cores,
// class of service, whether the workload is I/O, and its priority. In the
// paper this comes from a text file or the cluster orchestrator.
type TenantInfo struct {
	Name     string
	Cores    []int
	CLOS     int
	IO       bool
	Priority Priority
}

// System is everything IAT needs from the machine. The production
// implementation would wrap pqos + the msr kernel module; the reproduction
// wraps the simulated platform (internal/bridge). Counter reads are
// cumulative; the daemon differences them itself.
type System interface {
	// Tenants enumerates the current tenants (Get Tenant Info).
	Tenants() []TenantInfo
	// NumWays returns the LLC associativity (the CBM width).
	NumWays() int
	// ReadCore reads one core's cumulative counters.
	ReadCore(core int) rdt.CoreCounters
	// ReadDDIO reads the chip-wide cumulative DDIO hit/miss counters.
	ReadDDIO() rdt.DDIOCounters
	// CLOSMask / SetCLOSMask read and program a class of service's CAT
	// mask.
	CLOSMask(clos int) cache.WayMask
	SetCLOSMask(clos int, m cache.WayMask) error
	// DDIOMask / SetDDIOMask read and program the IIO_LLC_WAYS register.
	DDIOMask() cache.WayMask
	SetDDIOMask(m cache.WayMask) error
}
