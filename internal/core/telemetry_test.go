package core

import (
	"strings"
	"testing"

	"iatsim/internal/telemetry"
)

// TestDaemonEmitsTelemetryEvents drives the IODemand growth scenario
// with a telemetry sink attached and checks the daemon's full event
// contract: info-severity state transitions, one debug mask_write per
// register write actually performed, and one debug iteration event per
// pass whose payload is the same IterationInfo OnIteration receives.
func TestDaemonEmitsTelemetryEvents(t *testing.T) {
	m := newMockSys([]TenantInfo{ioTenant("fwd", 1, 0, PC)})
	d := testDaemon(t, m, Options{})
	reg := telemetry.NewRegistry()
	d.Tel = reg
	var hookInfos []IterationInfo
	d.OnIteration = func(it IterationInfo) { hookInfos = append(hookInfos, it) }

	now := 0.0
	tick := func() { now += 100e6; d.Tick(now) }
	steady(m, tick)
	steady(m, tick)
	for i := 1; i <= 10; i++ {
		m.advance(0, 1000, 2000, 100, 10)
		m.advanceDDIO(100_000, uint64(1_000_000+i*200_000)/10)
		tick()
	}
	if d.State() != HighKeep {
		t.Fatalf("state = %v, want HighKeep", d.State())
	}

	states := reg.Events(telemetry.SevInfo, "daemon")
	var transitions []string
	for _, ev := range states {
		if ev.Name != "state" {
			t.Fatalf("unexpected info-severity daemon event %q", ev.Name)
		}
		transitions = append(transitions, ev.Detail)
	}
	joined := strings.Join(transitions, " ")
	if !strings.Contains(joined, "LowKeep->IODemand") || !strings.Contains(joined, "->HighKeep") {
		t.Fatalf("state transitions = %v, want LowKeep->IODemand ... ->HighKeep", transitions)
	}

	var maskWrites, iterations int
	for _, ev := range reg.Events(telemetry.SevDebug, "daemon") {
		switch ev.Name {
		case "mask_write":
			if ev.Sev != telemetry.SevDebug {
				t.Fatalf("mask_write at severity %v", ev.Sev)
			}
			maskWrites++
		case "iteration":
			info, ok := ev.Data.(IterationInfo)
			if !ok {
				t.Fatalf("iteration event payload is %T, want IterationInfo", ev.Data)
			}
			if info.NowNS != ev.TimeNS || info.Action != ev.Detail {
				t.Fatalf("iteration payload disagrees with event: %+v vs %+v", info, ev)
			}
			iterations++
		}
	}
	if got := m.maskWrites + m.ddioWrites; maskWrites != got {
		t.Fatalf("mask_write events = %d, register writes = %d", maskWrites, got)
	}
	if total, _ := d.Iterations(); iterations != int(total) {
		t.Fatalf("iteration events = %d, daemon iterations = %d", iterations, total)
	}
	if len(hookInfos) != iterations {
		t.Fatalf("OnIteration saw %d infos, telemetry %d", len(hookInfos), iterations)
	}
}

// TestDaemonTelemetryOffCostsNothing checks the zero-value path: with no
// sink the daemon emits nothing and still runs (nil-safe throughout).
func TestDaemonTelemetryOffCostsNothing(t *testing.T) {
	m := newMockSys([]TenantInfo{ioTenant("fwd", 1, 0, PC)})
	d := testDaemon(t, m, Options{})
	now := 0.0
	tick := func() { now += 100e6; d.Tick(now) }
	for i := 0; i < 5; i++ {
		steady(m, tick)
	}
	if total, _ := d.Iterations(); total == 0 {
		t.Fatal("daemon did not iterate")
	}
}
