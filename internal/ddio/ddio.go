// Package ddio implements the Data Direct I/O engine: the path by which a
// PCIe device's DMA reads and writes interact with the LLC instead of
// memory (Sec. II-B of the paper).
//
// Inbound (device-to-host) writes perform "write update" when the target
// line is resident anywhere in the LLC, and "write allocate" into the
// current IIO_LLC_WAYS mask otherwise, evicting dirty victims to memory.
// Outbound (host-to-device) reads are served from the LLC when resident and
// from memory otherwise, never allocating. The engine also issues the
// coherence invalidation of the consuming core's private caches that a real
// DMA write performs.
package ddio

import (
	"iatsim/internal/cache"
	"iatsim/internal/mem"
	"iatsim/internal/msr"
	"iatsim/internal/telemetry"
)

// Stats counts engine activity (line granularity).
type Stats struct {
	LinesWritten uint64 // inbound DMA lines
	WriteUpdates uint64 // lines that hit (write update)
	WriteAllocs  uint64 // lines that missed (write allocate)
	LinesRead    uint64 // outbound DMA lines
	ReadsFromLLC uint64 // outbound lines served by the LLC
	ReadsFromMem uint64 // outbound lines served by memory
	// LinesBypassed counts inbound payload lines steered straight to
	// memory by an application-aware (header-only) port policy.
	LinesBypassed uint64
}

// Engine is the DDIO datapath. One engine serves all devices of a socket.
type Engine struct {
	f     *msr.File
	hier  *cache.Hierarchy
	mc    *mem.Controller
	stats Stats
	tel   engineTel

	// Memoized IIO_LLC_WAYS value, keyed on the register file's
	// generation: Mask runs once per inbound DMA burst, and the register
	// only changes on a wrmsr.
	maskGen uint64
	maskOK  bool
	mask    cache.WayMask

	// Enabled mirrors the BIOS knob: when false, inbound data still
	// transits the coherence domain but is immediately evicted, so every
	// inbound line becomes a memory write and every device read a memory
	// read (Sec. II-B's description of DDIO-disabled behaviour).
	Enabled bool
}

// New builds the engine and programs the default 2-way DDIO mask (the two
// highest ways, the hardware default the paper describes) into the register
// file.
func New(f *msr.File, hier *cache.Hierarchy, mc *mem.Controller) *Engine {
	e := &Engine{f: f, hier: hier, mc: mc, Enabled: true}
	ways := hier.Config().LLC.Ways
	def := cache.ContiguousMask(ways-2, 2)
	// Direct write: the engine owns this register's initial value.
	if err := f.Write(msr.IIOLLCWays, uint64(def)); err != nil {
		panic(err)
	}
	return e
}

// Mask returns the current DDIO way mask (read without charging an MSR op
// to the management plane; the hardware datapath does not pay rdmsr costs).
func (e *Engine) Mask() cache.WayMask {
	if g := e.f.Generation(); !e.maskOK || g != e.maskGen {
		e.mask = cache.WayMask(e.f.Peek(msr.IIOLLCWays))
		e.maskGen, e.maskOK = g, true
	}
	return e.mask
}

// DeviceWrite DMAs n contiguous bytes starting at a into the host,
// consumerCore being the core that will process the data (its private
// caches are invalidated line by line). Returns the number of lines that
// missed (write allocates), mostly for tests.
func (e *Engine) DeviceWrite(a uint64, n int, consumerCore int) (allocs int) {
	before := e.stats.WriteAllocs
	e.deviceWriteMasked(a, n, consumerCore, e.Mask(), &e.stats)
	return int(e.stats.WriteAllocs - before)
}

// deviceWriteMasked is the inbound datapath with an explicit mask and stats
// sink (the global counters for DeviceWrite, per-port counters for Ports).
// Per-port writes also accumulate into the engine's global stats.
func (e *Engine) deviceWriteMasked(a uint64, n, consumerCore int, mask cache.WayMask, st *Stats) {
	if n <= 0 {
		return
	}
	llc := e.hier.LLC()
	first := a &^ (cache.LineSize - 1)
	last := (a + uint64(n) - 1) &^ (cache.LineSize - 1)
	// Telemetry is accumulated locally and flushed once per burst: the
	// counter handles stay out of the per-line loop and the nil-receiver
	// fast path costs one branch per burst instead of one per line.
	var drops, updates, allocs uint64
	for line := first; line <= last; line += cache.LineSize {
		st.LinesWritten++
		if st != &e.stats {
			e.stats.LinesWritten++
		}
		if consumerCore >= 0 {
			e.hier.InvalidatePrivate(consumerCore, line)
		}
		if !e.Enabled {
			// DDIO off: data lands in the coherence domain and is
			// immediately written out to memory.
			drops++
			e.mc.Write(cache.LineSize)
			continue
		}
		hit, v := llc.IOWrite(line, mask)
		if hit {
			st.WriteUpdates++
			if st != &e.stats {
				e.stats.WriteUpdates++
			}
			updates++
			continue
		}
		st.WriteAllocs++
		if st != &e.stats {
			e.stats.WriteAllocs++
		}
		allocs++
		if v.Valid && v.Dirty {
			e.mc.Write(cache.LineSize)
		}
	}
	e.tel.drops.Add(drops)
	e.tel.writeUpdates.Add(updates)
	e.tel.writeAllocs.Add(allocs)
}

// deviceWriteBypass writes inbound data straight to memory (the
// application-aware payload path), invalidating stale private and LLC
// copies so later core reads fetch the fresh data from DRAM.
func (e *Engine) deviceWriteBypass(a uint64, n, consumerCore int, st *Stats) {
	if n <= 0 {
		return
	}
	first := a &^ (cache.LineSize - 1)
	last := (a + uint64(n) - 1) &^ (cache.LineSize - 1)
	for line := first; line <= last; line += cache.LineSize {
		st.LinesBypassed++
		e.stats.LinesBypassed++
		e.tel.drops.Inc()
		if consumerCore >= 0 {
			e.hier.InvalidatePrivate(consumerCore, line)
		}
		e.mc.Write(cache.LineSize)
	}
}

// DeviceRead DMAs n contiguous bytes starting at a out of the host (e.g. a
// NIC transmitting a packet). Lines resident in the LLC are read from
// there; the rest come from memory without being allocated.
func (e *Engine) DeviceRead(a uint64, n int) {
	e.deviceReadInto(a, n, &e.stats)
}

func (e *Engine) deviceReadInto(a uint64, n int, st *Stats) {
	if n <= 0 {
		return
	}
	llc := e.hier.LLC()
	first := a &^ (cache.LineSize - 1)
	last := (a + uint64(n) - 1) &^ (cache.LineSize - 1)
	var fromLLC, fromMem uint64
	for line := first; line <= last; line += cache.LineSize {
		st.LinesRead++
		if st != &e.stats {
			e.stats.LinesRead++
		}
		if e.Enabled && llc.IORead(line) {
			st.ReadsFromLLC++
			if st != &e.stats {
				e.stats.ReadsFromLLC++
			}
			fromLLC++
			continue
		}
		st.ReadsFromMem++
		if st != &e.stats {
			e.stats.ReadsFromMem++
		}
		fromMem++
		e.mc.Read(cache.LineSize)
	}
	e.tel.readsLLC.Add(fromLLC)
	e.tel.readsMem.Add(fromMem)
}

// Stats returns cumulative engine counters.
func (e *Engine) Stats() Stats { return e.stats }

// engineTel mirrors the inbound/outbound decision counters into the
// telemetry plane. All-nil (zero value) when uninstrumented.
type engineTel struct {
	writeUpdates *telemetry.Counter // inbound line hit resident copy (write update)
	writeAllocs  *telemetry.Counter // inbound line allocated into the DDIO mask
	drops        *telemetry.Counter // inbound line steered to memory (DDIO off or bypass policy)
	readsLLC     *telemetry.Counter // outbound line served by the LLC
	readsMem     *telemetry.Counter // outbound line served by memory
}

// AttachTelemetry resolves the engine's counters from s (nil-safe).
func (e *Engine) AttachTelemetry(s telemetry.Sink) {
	if s == nil {
		return
	}
	e.tel = engineTel{
		writeUpdates: s.Counter("ddio", "", "write_updates"),
		writeAllocs:  s.Counter("ddio", "", "write_allocates"),
		drops:        s.Counter("ddio", "", "drops_to_mem"),
		readsLLC:     s.Counter("ddio", "", "reads_from_llc"),
		readsMem:     s.Counter("ddio", "", "reads_from_mem"),
	}
}
