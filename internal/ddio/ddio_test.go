package ddio

import (
	"testing"

	"iatsim/internal/cache"
	"iatsim/internal/mem"
	"iatsim/internal/msr"
)

func newEngine(t *testing.T) (*Engine, *cache.Hierarchy, *mem.Controller, *msr.File) {
	t.Helper()
	mc := mem.NewController(mem.Config{})
	mc.BeginEpoch(1e9)
	h := cache.NewHierarchy(cache.HierarchyConfig{
		Cores: 2,
		L1:    cache.LevelConfig{SizeBytes: 4 << 10, Ways: 4, HitCycles: 4},
		L2:    cache.LevelConfig{SizeBytes: 32 << 10, Ways: 8, HitCycles: 14},
		LLC:   cache.LLCConfig{Slices: 2, Ways: 8, SetsPerSlice: 64, HitCycles: 44},
	}, 2.3, mc)
	f := msr.NewFile()
	return New(f, h, mc), h, mc, f
}

func TestDefaultMaskIsTopTwoWays(t *testing.T) {
	e, _, _, _ := newEngine(t)
	if got := e.Mask(); got != cache.ContiguousMask(6, 2) {
		t.Fatalf("default DDIO mask = %v", got)
	}
}

func TestDeviceWriteAllocatesIntoMask(t *testing.T) {
	e, h, _, _ := newEngine(t)
	e.DeviceWrite(0x10000, 256, -1) // 4 lines
	st := e.Stats()
	if st.LinesWritten != 4 || st.WriteAllocs != 4 || st.WriteUpdates != 0 {
		t.Fatalf("stats = %+v", st)
	}
	for off := 0; off < 256; off += 64 {
		w := h.LLC().WayOf(0x10000 + uint64(off))
		if w < 0 || !e.Mask().Has(w) {
			t.Fatalf("line at +%d in way %d, outside %v", off, w, e.Mask())
		}
	}
}

func TestDeviceWriteUpdatesResidentLines(t *testing.T) {
	e, _, _, _ := newEngine(t)
	e.DeviceWrite(0x20000, 128, -1)
	e.DeviceWrite(0x20000, 128, -1)
	st := e.Stats()
	if st.WriteUpdates != 2 || st.WriteAllocs != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDeviceWriteInvalidatesConsumerCaches(t *testing.T) {
	e, h, _, _ := newEngine(t)
	const a = 0x30000
	h.Access(0, a, false, cache.FullMask(8)) // core 0 caches the line
	e.DeviceWrite(a, 64, 0)
	if h.PrivateContains(0, a) {
		t.Fatal("DMA write left a stale copy in the consumer's private caches")
	}
}

func TestDeviceReadFromLLCVsMemory(t *testing.T) {
	e, _, mc, _ := newEngine(t)
	e.DeviceWrite(0x40000, 64, -1)
	memBefore := mc.Stats().BytesRead
	e.DeviceRead(0x40000, 64) // resident: no memory traffic
	if mc.Stats().BytesRead != memBefore {
		t.Fatal("resident device read touched memory")
	}
	e.DeviceRead(0x50000, 64) // absent: memory read, no allocation
	if mc.Stats().BytesRead != memBefore+64 {
		t.Fatal("absent device read did not hit memory")
	}
	st := e.Stats()
	if st.ReadsFromLLC != 1 || st.ReadsFromMem != 1 {
		t.Fatalf("read stats = %+v", st)
	}
}

func TestMaskFollowsRegister(t *testing.T) {
	e, h, _, f := newEngine(t)
	if err := f.Write(msr.IIOLLCWays, uint64(cache.ContiguousMask(2, 4))); err != nil {
		t.Fatal(err)
	}
	e.DeviceWrite(0x60000, 64, -1)
	w := h.LLC().WayOf(0x60000)
	if !cache.ContiguousMask(2, 4).Has(w) {
		t.Fatalf("allocation in way %d ignores the reprogrammed mask", w)
	}
}

func TestDisabledDDIOGoesToMemory(t *testing.T) {
	e, h, mc, _ := newEngine(t)
	e.Enabled = false
	before := mc.Stats().BytesWritten
	e.DeviceWrite(0x70000, 128, -1)
	if mc.Stats().BytesWritten != before+128 {
		t.Fatal("disabled DDIO should write straight through to memory")
	}
	if h.LLC().Contains(0x70000) {
		t.Fatal("disabled DDIO should not leave lines in the LLC")
	}
	before = mc.Stats().BytesRead
	e.DeviceRead(0x70000, 128)
	if mc.Stats().BytesRead != before+128 {
		t.Fatal("disabled DDIO device read should come from memory")
	}
}

func TestWriteSpanningPartialLines(t *testing.T) {
	e, _, _, _ := newEngine(t)
	// 100 bytes starting at offset 32 spans bytes 32..131: three lines.
	e.DeviceWrite(0x80020, 100, -1)
	if st := e.Stats(); st.LinesWritten != 3 {
		t.Fatalf("lines written = %d, want 3", st.LinesWritten)
	}
	// Zero and negative sizes are no-ops.
	before := e.Stats()
	e.DeviceWrite(0x90000, 0, -1)
	e.DeviceRead(0x90000, -5)
	if e.Stats() != before {
		t.Fatal("zero-size DMA changed stats")
	}
}

func TestEvictedDirtyVictimWritesBack(t *testing.T) {
	e, _, mc, _ := newEngine(t)
	// Flood the 2 DDIO ways until dirty victims spill to memory.
	before := mc.Stats().BytesWritten
	for i := 0; i < 4096; i++ {
		e.DeviceWrite(uint64(0x100000+i*64), 64, -1)
	}
	if mc.Stats().BytesWritten == before {
		t.Fatal("overflowing the DDIO ways never wrote back to memory")
	}
}
