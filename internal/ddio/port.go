package ddio

import "iatsim/internal/cache"

// Port is a per-device view of the DDIO engine, implementing the two
// extensions the paper's Sec. VII anticipates for future CPUs:
//
//   - Device-aware DDIO: "it can assign different LLC ways to different
//     PCIe devices ... just like what CAT does on CPU cores". A Port may
//     carry its own way mask, overriding the global IIO_LLC_WAYS register
//     for this device's traffic.
//   - Application-aware DDIO: "an application may enable DDIO only for
//     packet header, while leaving the payload to the memory". A Port may
//     carry a header-bytes limit: only the first HeaderBytes of every
//     inbound write go through the cache, the payload is written straight
//     to memory.
//
// A zero-configured Port behaves exactly like the stock engine (global
// mask, full-packet DDIO), so current-hardware experiments are unaffected.
type Port struct {
	eng *Engine

	// mask, when non-zero, replaces the global DDIO mask for this port.
	mask cache.WayMask
	// headerBytes, when non-zero, limits DDIO placement to the first
	// headerBytes of each inbound write; the rest bypasses to memory.
	headerBytes int

	stats Stats
}

// NewPort creates a per-device view of the engine with default (stock)
// behaviour.
func (e *Engine) NewPort() *Port { return &Port{eng: e} }

// SetMask gives the port a dedicated way mask (device-aware DDIO). The
// mask must be contiguous and non-empty, mirroring the CAT constraint the
// paper expects such hardware to inherit; passing 0 reverts to the global
// register.
func (p *Port) SetMask(m cache.WayMask) error {
	if m != 0 && !m.Contiguous() {
		return errNonContiguous
	}
	p.mask = m
	return nil
}

// Mask returns the effective mask for this port's traffic.
func (p *Port) Mask() cache.WayMask {
	if p.mask != 0 {
		return p.mask
	}
	return p.eng.Mask()
}

// SetHeaderOnly limits DDIO placement to the first n bytes of every
// inbound write (application-aware DDIO); 0 restores full-packet DDIO.
func (p *Port) SetHeaderOnly(n int) { p.headerBytes = n }

// HeaderOnly returns the current header limit (0 = full packet).
func (p *Port) HeaderOnly() int { return p.headerBytes }

// Stats returns this port's cumulative counters.
func (p *Port) Stats() Stats { return p.stats }

// Write DMAs n bytes at a into the host through this port's policy.
func (p *Port) Write(a uint64, n int, consumerCore int) {
	if n <= 0 {
		return
	}
	ddioBytes := n
	if p.headerBytes > 0 && p.headerBytes < n {
		ddioBytes = p.headerBytes
	}
	p.eng.deviceWriteMasked(a, ddioBytes, consumerCore, p.Mask(), &p.stats)
	if ddioBytes < n {
		// Payload bypass: coherence still invalidates stale private
		// copies, but the data lands in memory, not the LLC.
		p.eng.deviceWriteBypass(a+uint64(ddioBytes), n-ddioBytes, consumerCore, &p.stats)
	}
}

// Read DMAs n bytes at a out of the host.
func (p *Port) Read(a uint64, n int) {
	p.eng.deviceReadInto(a, n, &p.stats)
}

// errNonContiguous mirrors the rdt package's CAT constraint without
// importing it.
var errNonContiguous = errorString("ddio: port mask must be contiguous")

// errorString is a tiny allocation-free error type.
type errorString string

// Error implements error.
func (e errorString) Error() string { return string(e) }
