package ddio

import (
	"testing"

	"iatsim/internal/cache"
)

func TestPortDefaultsToGlobalMask(t *testing.T) {
	e, h, _, _ := newEngine(t)
	p := e.NewPort()
	if p.Mask() != e.Mask() {
		t.Fatalf("port mask %v != global %v", p.Mask(), e.Mask())
	}
	p.Write(0x10000, 64, -1)
	w := h.LLC().WayOf(0x10000)
	if !e.Mask().Has(w) {
		t.Fatalf("port write landed in way %d outside the global mask", w)
	}
}

func TestPortDeviceAwareMask(t *testing.T) {
	e, h, _, _ := newEngine(t)
	p := e.NewPort()
	own := cache.ContiguousMask(0, 2)
	if err := p.SetMask(own); err != nil {
		t.Fatal(err)
	}
	p.Write(0x20000, 256, -1)
	for off := 0; off < 256; off += 64 {
		w := h.LLC().WayOf(0x20000 + uint64(off))
		if !own.Has(w) {
			t.Fatalf("device-aware write in way %d outside %v", w, own)
		}
	}
	// Another port with the default policy is unaffected.
	q := e.NewPort()
	q.Write(0x30000, 64, -1)
	if w := h.LLC().WayOf(0x30000); !e.Mask().Has(w) {
		t.Fatalf("default port write in way %d", w)
	}
}

func TestPortMaskValidation(t *testing.T) {
	e, _, _, _ := newEngine(t)
	p := e.NewPort()
	if err := p.SetMask(cache.WayMask(0b101)); err == nil {
		t.Fatal("non-contiguous port mask accepted")
	}
	if err := p.SetMask(cache.ContiguousMask(1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := p.SetMask(0); err != nil {
		t.Fatal("revert to global should be allowed")
	}
	if p.Mask() != e.Mask() {
		t.Fatal("revert did not restore the global mask")
	}
}

func TestPortHeaderOnlyBypassesPayload(t *testing.T) {
	e, h, mc, _ := newEngine(t)
	p := e.NewPort()
	p.SetHeaderOnly(64)
	memBefore := mc.Stats().BytesWritten
	p.Write(0x40000, 1500, -1) // 24 lines: 1 header + 23 payload
	if !h.LLC().Contains(0x40000) {
		t.Fatal("header line not placed in the LLC")
	}
	if h.LLC().Contains(0x40040) {
		t.Fatal("payload line polluted the LLC despite header-only policy")
	}
	if mc.Stats().BytesWritten != memBefore+23*64 {
		t.Fatalf("payload bypass wrote %d bytes to memory, want %d",
			mc.Stats().BytesWritten-memBefore, 23*64)
	}
	st := p.Stats()
	if st.LinesBypassed != 23 || st.LinesWritten != 1 {
		t.Fatalf("port stats = %+v", st)
	}
}

func TestPortHeaderOnlyInvalidatesConsumer(t *testing.T) {
	e, h, _, _ := newEngine(t)
	p := e.NewPort()
	p.SetHeaderOnly(64)
	const payload = 0x50040
	h.Access(0, payload, false, cache.FullMask(8)) // core caches old payload
	p.Write(0x50000, 128, 0)
	if h.PrivateContains(0, payload) {
		t.Fatal("bypassed payload left a stale private copy")
	}
}

func TestPortStatsFeedGlobalStats(t *testing.T) {
	e, _, _, _ := newEngine(t)
	p := e.NewPort()
	p.Write(0x60000, 128, -1)
	p.Read(0x60000, 128)
	g := e.Stats()
	if g.LinesWritten != 2 || g.LinesRead != 2 {
		t.Fatalf("global stats missed port traffic: %+v", g)
	}
}

func TestPortHeaderOnlyFullPacketWhenLimitLarger(t *testing.T) {
	e, h, _, _ := newEngine(t)
	p := e.NewPort()
	p.SetHeaderOnly(4096)
	p.Write(0x70000, 128, -1)
	if !h.LLC().Contains(0x70000) || !h.LLC().Contains(0x70040) {
		t.Fatal("full packet should be cached when smaller than the header limit")
	}
	if p.Stats().LinesBypassed != 0 {
		t.Fatal("nothing should be bypassed")
	}
}
