package exp

import (
	"fmt"
	"io"

	"iatsim/internal/baseline"
	"iatsim/internal/bridge"
	"iatsim/internal/cache"
	"iatsim/internal/core"
	"iatsim/internal/harness"
	"iatsim/internal/nic"
	"iatsim/internal/nvme"
	"iatsim/internal/pkt"
	"iatsim/internal/sim"
	"iatsim/internal/tgen"
	"iatsim/internal/workload"
)

// AblationMechRow is one row of the mechanism ablation: which of IAT's two
// levers (DDIO way sizing, BE shuffling) buys what on the Leaky DMA
// scenario.
type AblationMechRow struct {
	Variant    string
	DDIOMissPS float64
	MemGBps    float64
}

// RunAblationMechanisms runs the Fig. 8 scenario (1.5KB line rate) under
// four controller variants: no controller, shuffle-only, DDIO-sizing-only,
// and full IAT — quantifying each mechanism's contribution (the design
// choices DESIGN.md calls out).
func RunAblationMechanisms(w io.Writer, scale float64) []AblationMechRow {
	if scale == 0 {
		scale = 100
	}
	variants := []struct {
		name string
		opts *core.Options // nil = no controller
	}{
		{"baseline", nil},
		{"shuffle-only", &core.Options{DisableDDIOAdjust: true}},
		{"ddio-only", &core.Options{DisableShuffle: true, DisableTenantAdjust: true}},
		{"full-iat", &core.Options{}},
	}
	var jobs []harness.Job
	for _, v := range variants {
		v := v
		name := "abl-mech/" + v.name
		seed := jobSeed(name)
		jobs = append(jobs, harness.Job{
			Name: name, Figure: "abl-mech", Seed: seed,
			Fn: func() (any, error) {
				s := NewLeakyScenario(LeakyOpts{Scale: scale, PktSize: 1500, Seed: seed})
				if v.opts != nil {
					params := core.DefaultParams()
					params.IntervalNS = 0.2e9
					params.ThresholdMissLowPerSec /= scale
					if _, err := bridge.NewIAT(s.P, params, *v.opts); err != nil {
						return nil, err
					}
				}
				s.P.Run(2.4e9)
				win := Measure(s.P, 0.8e9)
				return AblationMechRow{
					Variant:    v.name,
					DDIOMissPS: win.DDIOMissPS() * scale,
					MemGBps:    win.MemGBps() * scale,
				}, nil
			},
		})
	}
	rows := runJobs[AblationMechRow](jobs)
	if w != nil {
		fmt.Fprintf(w, "Ablation — IAT mechanisms on the Leaky DMA scenario (1.5KB line rate)\n")
		fmt.Fprintf(w, "%14s %14s %10s\n", "variant", "DDIOmiss/s", "mem GB/s")
		for _, r := range rows {
			fmt.Fprintf(w, "%14s %14.3e %10.2f\n", r.Variant, r.DDIOMissPS, r.MemGBps)
		}
	}
	return rows
}

// AblationGrowthRow compares growth policies.
type AblationGrowthRow struct {
	Policy core.GrowthPolicy
	// ConvergeNS is the simulated time until the DDIO miss rate first
	// drops below THRESHOLD_MISS_LOW (0 = never within the run).
	ConvergeNS float64
	FinalWays  int
}

// RunAblationGrowth compares the paper's one-way-per-iteration increments
// against the UCP-style multi-way policy (Sec. IV-D's suggested
// exploration) on the Leaky DMA scenario: how fast does each converge?
func RunAblationGrowth(w io.Writer, scale float64) []AblationGrowthRow {
	if scale == 0 {
		scale = 100
	}
	var jobs []harness.Job
	for _, pol := range []core.GrowthPolicy{core.GrowOneWay, core.GrowUCP} {
		pol := pol
		name := "abl-growth/" + pol.String()
		seed := jobSeed(name)
		jobs = append(jobs, harness.Job{
			Name: name, Figure: "abl-growth", Seed: seed,
			Fn: func() (any, error) {
				s := NewLeakyScenario(LeakyOpts{Scale: scale, PktSize: 1500, Seed: seed})
				params := core.DefaultParams()
				params.IntervalNS = 0.2e9
				params.ThresholdMissLowPerSec /= scale
				params.Growth = pol
				if _, err := bridge.NewIAT(s.P, params, core.Options{}); err != nil {
					return nil, err
				}
				row := AblationGrowthRow{Policy: pol}
				thresh := 1e6 / scale
				for t := 0.0; t < 4e9; t += 0.2e9 {
					win := Measure(s.P, 0.2e9)
					if t > 0.6e9 && win.DDIOMissPS() < thresh && row.ConvergeNS == 0 {
						row.ConvergeNS = s.P.NowNS()
						break
					}
				}
				row.FinalWays = s.P.RDT.DDIOMask().Count()
				return row, nil
			},
		})
	}
	rows := runJobs[AblationGrowthRow](jobs)
	if w != nil {
		fmt.Fprintf(w, "Ablation — growth policy convergence (Leaky DMA, 1.5KB)\n")
		fmt.Fprintf(w, "%10s %14s %10s\n", "policy", "converge(s)", "ddio ways")
		for _, r := range rows {
			c := "never"
			if r.ConvergeNS > 0 {
				c = fmt.Sprintf("%.1f", r.ConvergeNS/1e9)
			}
			fmt.Fprintf(w, "%10s %14s %10d\n", r.Policy, c, r.FinalWays)
		}
	}
	return rows
}

// AblationDDIOExtRow is one row of the future-DDIO extension study.
type AblationDDIOExtRow struct {
	Variant     string
	VictimLatNS float64
	VictimMops  float64
	FwdPPS      float64 // forwarder throughput (unscaled)
	MemGBps     float64
}

// RunAblationDDIOExt evaluates the paper's Sec. VII proposals on the Latent
// Contender scenario (victim X-Mem sharing the DDIO ways with an l3fwd at
// 1.5KB line rate):
//
//   - header-only: application-aware DDIO caches only the first 128B of
//     every packet, steering payloads to memory — trading memory bandwidth
//     for cache isolation;
//   - device-mask: device-aware DDIO confines this NIC to a single way.
func RunAblationDDIOExt(w io.Writer, scale float64) []AblationDDIOExtRow {
	if scale == 0 {
		scale = 100
	}
	run := func(variant string, seed int64) AblationDDIOExtRow {
		p := sim.NewPlatform(sim.XeonGold6140(scale))
		ways := p.Cfg.Hier.LLC.Ways
		dev := p.AddDevice(nic.Config{Name: "nic0", VFs: 1})
		vf := dev.VF(0)
		vf.ConsumerCore = 0
		switch variant {
		case "header-only":
			port := p.DDIO.NewPort()
			port.SetHeaderOnly(128)
			dev.SetDDIOPort(port)
		case "device-mask":
			port := p.DDIO.NewPort()
			if err := port.SetMask(cache.ContiguousMask(ways-1, 1)); err != nil {
				panic(err)
			}
			dev.SetDDIOPort(port)
		}
		fwd := workload.NewL3Fwd(vf, 1<<20, p.Alloc)
		mustMask(p, 1, cache.ContiguousMask(0, 2))
		mustTenant(p, &sim.Tenant{
			Name: "l3fwd", Cores: []int{0}, CLOS: 1,
			Priority: sim.PerformanceCritical, IsIO: true,
			Workers: []sim.Worker{fwd},
		})
		victim := workload.NewXMem(p.Alloc, 8<<20, 8<<20, 5+seed)
		mustMask(p, 2, cache.ContiguousMask(ways-2, 2)) // the DDIO ways
		mustTenant(p, &sim.Tenant{
			Name: "victim", Cores: []int{1}, CLOS: 2,
			Priority: sim.PerformanceCritical,
			Workers:  []sim.Worker{victim},
		})
		g := tgen.NewGenerator(p.GeneratorRate(tgen.LineRatePPS(40, 1500)), 1500,
			pkt.NewFlowSet(1<<16, 0, 7+uint64(seed)), 42+seed)
		p.AttachGenerator(g, dev, 0)

		p.Run(1.5e9)
		a := victim.Stats()
		txA := vf.Stats.TxPackets
		cycA := p.CoreCycles(1)
		win := Measure(p, 1e9)
		d := victim.Stats().Sub(a)
		row := AblationDDIOExtRow{
			Variant:     variant,
			VictimLatNS: d.AvgLatCycles() / p.Cfg.FreqGHz,
			FwdPPS:      float64(vf.Stats.TxPackets-txA) / 1.0 * scale,
			MemGBps:     win.MemGBps() * scale,
		}
		if cyc := p.CoreCycles(1) - cycA; cyc > 0 {
			row.VictimMops = float64(d.Ops) * p.Cfg.FreqGHz * 1e9 / float64(cyc) / 1e6
		}
		return row
	}
	var jobs []harness.Job
	for _, v := range []string{"stock", "header-only", "device-mask"} {
		v := v
		name := "abl-ddioext/" + v
		seed := jobSeed(name)
		jobs = append(jobs, harness.Job{
			Name: name, Figure: "abl-ddioext", Seed: seed,
			Fn: func() (any, error) { return run(v, seed), nil },
		})
	}
	rows := runJobs[AblationDDIOExtRow](jobs)
	if w != nil {
		fmt.Fprintf(w, "Ablation — future-DDIO extensions (Sec. VII) on the Latent Contender scenario\n")
		fmt.Fprintf(w, "%12s %12s %12s %12s %10s\n", "variant", "victim lat", "victim Mops", "fwd pps", "mem GB/s")
		for _, r := range rows {
			fmt.Fprintf(w, "%12s %10.1fns %12.2f %12.3e %10.2f\n",
				r.Variant, r.VictimLatNS, r.VictimMops, r.FwdPPS, r.MemGBps)
		}
	}
	return rows
}

// AblationMBARow is one row of the MBA study.
type AblationMBARow struct {
	ThrottlePct int
	PCLatNS     float64 // memory-bound PC tenant mean access latency
	BEOpsPS     float64 // throttled BE tenant throughput
}

// RunAblationMBA demonstrates the remedy the paper defers to Intel MBA
// (Sec. VI-C): LLC partitioning cannot stop a streaming best-effort
// neighbour from saturating memory bandwidth, but throttling its class
// restores the PC tenant's memory latency.
func RunAblationMBA(w io.Writer, scale float64) []AblationMBARow {
	if scale == 0 {
		scale = 100
	}
	run := func(throttle int, seed int64) AblationMBARow {
		cfg := sim.XeonGold6140(scale)
		// A narrow memory system makes the bandwidth contention visible
		// at simulation scale.
		cfg.Mem.BandwidthGBps = 2
		p := sim.NewPlatform(cfg)
		pc := workload.NewXMem(p.Alloc, 64<<20, 64<<20, 3+seed) // always missing
		mustMask(p, 1, cache.ContiguousMask(0, 2))
		mustTenant(p, &sim.Tenant{
			Name: "pc", Cores: []int{0}, CLOS: 1,
			Priority: sim.PerformanceCritical, Workers: []sim.Worker{pc},
		})
		var bes []*workload.XMem
		for i := 0; i < 4; i++ {
			be := workload.NewXMem(p.Alloc, 64<<20, 64<<20, int64(11+i)+seed)
			bes = append(bes, be)
			mustMask(p, 2, cache.ContiguousMask(2, 2))
			mustTenant(p, &sim.Tenant{
				Name: fmt.Sprintf("be%d", i), Cores: []int{1 + i}, CLOS: 2,
				Priority: sim.BestEffort, Workers: []sim.Worker{be},
			})
		}
		if err := p.RDT.SetMBAThrottle(2, throttle); err != nil {
			panic(err)
		}
		p.Run(0.5e9)
		a := pc.Stats()
		var beA workload.OpStats
		for _, be := range bes {
			beA.Ops += be.Stats().Ops
		}
		p.Run(1e9)
		d := pc.Stats().Sub(a)
		var beOps uint64
		for _, be := range bes {
			beOps += be.Stats().Ops
		}
		beOps -= beA.Ops
		return AblationMBARow{
			ThrottlePct: throttle,
			PCLatNS:     d.AvgLatCycles() / p.Cfg.FreqGHz,
			BEOpsPS:     float64(beOps) * scale,
		}
	}
	var jobs []harness.Job
	for _, thr := range []int{0, 50, 90} {
		thr := thr
		name := fmt.Sprintf("abl-mba/throttle=%d", thr)
		seed := jobSeed(name)
		jobs = append(jobs, harness.Job{
			Name: name, Figure: "abl-mba", Seed: seed,
			Fn: func() (any, error) { return run(thr, seed), nil },
		})
	}
	rows := runJobs[AblationMBARow](jobs)
	if w != nil {
		fmt.Fprintf(w, "Ablation — MBA on memory-bandwidth interference (narrow 2GB/s memory)\n")
		fmt.Fprintf(w, "%12s %14s %14s\n", "BE throttle", "PC lat (ns)", "BE ops/s")
		for _, r := range rows {
			fmt.Fprintf(w, "%11d%% %14.1f %14.3e\n", r.ThrottlePct, r.PCLatNS, r.BEOpsPS)
		}
	}
	return rows
}

// AblationPolicyRow is one row of the replacement-policy study.
type AblationPolicyRow struct {
	Policy cache.ReplacementPolicy
	// MovedMops is the tenant's throughput after its mask was shuffled
	// away from the DDIO ways; ControlMops is the same tenant placed
	// there from the start.
	MovedMops   float64
	ControlMops float64
}

// RunAblationReplacement documents the replacement-policy/CAT interaction
// this reproduction surfaced: under true LRU, a tenant shuffled off the
// DDIO ways keeps "squatting" there (its re-referenced lines are promoted
// and never evicted), so it quietly enjoys more capacity than its mask
// grants; under SRRIP (modern Intel behaviour, the default) the parked
// lines age out and the moved tenant converges to the control. Mask-based
// accounting is only sound under RRIP-style policies.
func RunAblationReplacement(w io.Writer, scale float64) []AblationPolicyRow {
	if scale == 0 {
		scale = 100
	}
	run := func(policy cache.ReplacementPolicy, startOnDDIO bool, seed int64) float64 {
		cfg := sim.XeonGold6140(scale)
		cfg.Hier.LLC.Policy = policy
		p := sim.NewPlatform(cfg)
		ways := cfg.Hier.LLC.Ways
		dev := p.AddDevice(nic.Config{Name: "nic0", VFs: 1})
		vf := dev.VF(0)
		vf.ConsumerCore = 0
		fwd := workload.NewTestPMD(vf)
		mustMask(p, 1, cache.ContiguousMask(0, 2))
		mustTenant(p, &sim.Tenant{
			Name: "fwd", Cores: []int{0}, CLOS: 1,
			Priority: sim.PerformanceCritical, IsIO: true,
			Workers: []sim.Worker{fwd},
		})
		x := workload.NewXMem(p.Alloc, 8<<20, 8<<20, 5+seed)
		start := cache.ContiguousMask(3, 2)
		if startOnDDIO {
			start = cache.ContiguousMask(ways-2, 2)
		}
		mustMask(p, 2, start)
		mustTenant(p, &sim.Tenant{
			Name: "tenant", Cores: []int{1}, CLOS: 2,
			Priority: sim.PerformanceCritical,
			Workers:  []sim.Worker{x},
		})
		g := tgen.NewGenerator(p.GeneratorRate(tgen.LineRatePPS(40, 1500)), 1500,
			pkt.NewFlowSet(64, 0, 7+uint64(seed)), 42+seed)
		p.AttachGenerator(g, dev, 0)

		p.Run(1e9)
		if startOnDDIO {
			// The shuffle: the tenant's mask moves off the DDIO ways.
			mustMask(p, 2, cache.ContiguousMask(3, 2))
		}
		p.Run(1e9) // decay window
		a := x.Stats()
		cycA := p.CoreCycles(1)
		p.Run(1e9)
		d := x.Stats().Sub(a)
		cyc := p.CoreCycles(1) - cycA
		if cyc == 0 {
			return 0
		}
		return float64(d.Ops) * p.Cfg.FreqGHz * 1e9 / float64(cyc) / 1e6
	}
	var jobs []harness.Job
	for _, pol := range []cache.ReplacementPolicy{cache.PolicySRRIP, cache.PolicyLRU} {
		pol := pol
		name := "abl-policy/" + pol.String()
		seed := jobSeed(name)
		jobs = append(jobs, harness.Job{
			Name: name, Figure: "abl-policy", Seed: seed,
			Fn: func() (any, error) {
				return AblationPolicyRow{
					Policy:      pol,
					MovedMops:   run(pol, true, seed),
					ControlMops: run(pol, false, seed),
				}, nil
			},
		})
	}
	rows := runJobs[AblationPolicyRow](jobs)
	if w != nil {
		fmt.Fprintf(w, "Ablation — replacement policy vs mask squatting (tenant shuffled off the DDIO ways)\n")
		fmt.Fprintf(w, "%8s %12s %14s %10s\n", "policy", "moved Mops", "control Mops", "ratio")
		for _, r := range rows {
			fmt.Fprintf(w, "%8s %12.2f %14.2f %10.2f\n",
				r.Policy, r.MovedMops, r.ControlMops, r.MovedMops/r.ControlMops)
		}
	}
	return rows
}

// AblationStorageRow is one row of the storage (NVMe) Leaky DMA study.
type AblationStorageRow struct {
	Mode       string
	DDIOMissPS float64
	MemGBps    float64
	IOPS       float64 // unscaled completed I/O per second
	MeanLatNS  float64 // submit-to-consume latency (simulated ns)
	DDIOWays   int
}

// RunAblationStorage extends the Leaky DMA study to the paper's other
// DDIO consumer, NVMe storage (Sec. I names "NVMe-based storage device"
// alongside 100Gb NICs): an SPDK-style polled server keeps 64 x 128KB reads
// in flight, an 8MB DMA footprint that thrashes the two default DDIO ways
// exactly as oversized Rx rings do. IAT sees the same chip-wide DDIO miss
// counters — it cannot tell a NIC from an SSD — and grows the DDIO ways.
func RunAblationStorage(w io.Writer, scale float64) []AblationStorageRow {
	if scale == 0 {
		scale = 100
	}
	run := func(iat bool, seed int64) AblationStorageRow {
		p := sim.NewPlatform(sim.XeonGold6140(scale))
		cfg := nvme.DefaultConfig("ssd0")
		cfg.BandwidthGBps /= scale // device bandwidth is a rate: scale it
		dev := nvme.New(cfg, 1, p.DDIO, p.Alloc)
		dev.QP(0).ConsumerCore = 0
		p.AddMicrotickHook(dev.Tick)
		srv := workload.NewSPDKServer(dev, 0, 64, 128<<10, p.Alloc, 7+seed)
		mustMask(p, 1, cache.ContiguousMask(0, 2))
		mustTenant(p, &sim.Tenant{
			Name: "spdk", Cores: []int{0}, CLOS: 1,
			Priority: sim.PerformanceCritical, IsIO: true,
			Workers: []sim.Worker{srv},
		})
		if iat {
			params := core.DefaultParams()
			params.IntervalNS = 0.2e9
			params.ThresholdMissLowPerSec /= scale
			if _, err := bridge.NewIAT(p, params, core.Options{}); err != nil {
				panic(err)
			}
		}
		p.Run(2.5e9)
		srv.Hist().Reset()
		a := srv.Stats()
		win := Measure(p, 1.5e9)
		d := srv.Stats().Sub(a)
		mode := "baseline"
		if iat {
			mode = "iat"
		}
		return AblationStorageRow{
			Mode:       mode,
			DDIOMissPS: win.DDIOMissPS() * scale,
			MemGBps:    win.MemGBps() * scale,
			IOPS:       float64(d.Ops) / 1.5 * scale,
			MeanLatNS:  srv.Hist().Mean(),
			DDIOWays:   p.RDT.DDIOMask().Count(),
		}
	}
	var jobs []harness.Job
	for _, mode := range []struct {
		name string
		iat  bool
	}{{"baseline", false}, {"iat", true}} {
		mode := mode
		name := "abl-storage/" + mode.name
		seed := jobSeed(name)
		jobs = append(jobs, harness.Job{
			Name: name, Figure: "abl-storage", Seed: seed,
			Fn: func() (any, error) { return run(mode.iat, seed), nil },
		})
	}
	rows := runJobs[AblationStorageRow](jobs)
	if w != nil {
		fmt.Fprintf(w, "Ablation — storage Leaky DMA: SPDK server, 64 x 128KB reads in flight\n")
		fmt.Fprintf(w, "%10s %14s %10s %12s %12s %6s\n", "mode", "DDIOmiss/s", "mem GB/s", "IOPS", "lat(ns)", "dWays")
		for _, r := range rows {
			fmt.Fprintf(w, "%10s %14.3e %10.2f %12.0f %12.0f %6d\n",
				r.Mode, r.DDIOMissPS, r.MemGBps, r.IOPS, r.MeanLatNS, r.DDIOWays)
		}
	}
	return rows
}

// AblationRemoteRow is one row of the remote-socket study.
type AblationRemoteRow struct {
	Consumer  string
	FwdPPS    float64 // achieved forwarding rate (unscaled)
	CPP       float64 // cycles per forwarded packet
	MeanLatNS float64 // per-packet service latency (core-clock ns)
}

// RunAblationRemoteSocket quantifies why the paper pins everything to
// socket 0 (Sec. VI-A) and why Sec. VII wants DDIO extended across the
// socket interconnect: DDIO injects inbound packets into the NIC's local
// LLC only, so a consumer on the remote socket pays UPI latency for every
// packet line it touches. The "socket-direct" row models a multi-socket
// NIC (IOctopus-style), which delivers to the consumer's socket and
// removes the penalty.
func RunAblationRemoteSocket(w io.Writer, scale float64) []AblationRemoteRow {
	if scale == 0 {
		scale = 100
	}
	run := func(consumer string, seed int64) AblationRemoteRow {
		p := sim.NewPlatform(sim.XeonGold6140(scale))
		if consumer == "remote" {
			// Core 0 lives on socket 1, 60ns of UPI away from the
			// NIC's socket.
			p.Hier.SetRemote(0, true, 60)
		}
		dev := p.AddDevice(nic.Config{Name: "nic0", VFs: 1})
		vf := dev.VF(0)
		vf.ConsumerCore = 0
		fwd := workload.NewL3Fwd(vf, 1<<16, p.Alloc)
		mustMask(p, 1, cache.ContiguousMask(0, 2))
		mustTenant(p, &sim.Tenant{
			Name: "l3fwd", Cores: []int{0}, CLOS: 1,
			Priority: sim.PerformanceCritical, IsIO: true,
			Workers: []sim.Worker{fwd},
		})
		g := tgen.NewGenerator(p.GeneratorRate(tgen.LineRatePPS(40, 64)), 64,
			pkt.NewFlowSet(1<<16, 0, 7+uint64(seed)), 42+seed)
		p.AttachGenerator(g, dev, 0)

		p.Run(0.5e9)
		a := fwd.Stats()
		txA := vf.Stats.TxPackets
		p.Run(1e9)
		d := fwd.Stats().Sub(a)
		row := AblationRemoteRow{
			Consumer:  consumer,
			FwdPPS:    float64(vf.Stats.TxPackets-txA) * scale,
			CPP:       d.AvgLatCycles(),
			MeanLatNS: d.AvgLatCycles() / p.Cfg.FreqGHz,
		}
		return row
	}
	var jobs []harness.Job
	for _, consumer := range []string{"local", "remote", "socket-direct"} {
		consumer := consumer
		name := "abl-remote/" + consumer
		seed := jobSeed(name)
		jobs = append(jobs, harness.Job{
			Name: name, Figure: "abl-remote", Seed: seed,
			Fn: func() (any, error) { return run(consumer, seed), nil },
		})
	}
	rows := runJobs[AblationRemoteRow](jobs)
	// socket-direct == local in this model (the multi-socket NIC makes
	// the consumer's socket the delivery target); keep the label so the
	// output reads as the three deployment choices.
	if w != nil {
		fmt.Fprintf(w, "Ablation — remote-socket consumer (Sec. VI-A footnote / Sec. VII)\n")
		fmt.Fprintf(w, "%14s %14s %10s %12s\n", "consumer", "fwd pps", "cyc/pkt", "svc ns/pkt")
		for _, r := range rows {
			fmt.Fprintf(w, "%14s %14.3e %10.0f %12.1f\n", r.Consumer, r.FwdPPS, r.CPP, r.MeanLatNS)
		}
	}
	return rows
}

// SensitivityRow is one parameter variant of the sensitivity study.
type SensitivityRow struct {
	Param      string
	Value      string
	DDIOMissPS float64
	MemGBps    float64
	Unstable   uint64 // re-allocating iterations (control-plane churn)
	FinalWays  int
}

// RunSensitivity sweeps IAT's tuning knobs one at a time around the Table
// II defaults on the Leaky DMA scenario — the study the paper waves at with
// "the parameter sensitivity is similar to dCAT" (Sec. VI-A). A robust
// mechanism should keep the data-plane outcome (miss rate, memory
// bandwidth) flat across reasonable settings, with only the control-plane
// churn varying.
func RunSensitivity(w io.Writer, scale float64) []SensitivityRow {
	if scale == 0 {
		scale = 100
	}
	run := func(param, value string, mod func(*core.Params), seed int64) (SensitivityRow, error) {
		s := NewLeakyScenario(LeakyOpts{Scale: scale, PktSize: 1500, Seed: seed})
		params := core.DefaultParams()
		params.IntervalNS = 0.2e9
		params.ThresholdMissLowPerSec /= scale
		mod(&params)
		d, err := bridge.NewIAT(s.P, params, core.Options{})
		if err != nil {
			return SensitivityRow{}, err
		}
		s.P.Run(2.4e9)
		win := Measure(s.P, 0.8e9)
		_, unstable := d.Iterations()
		return SensitivityRow{
			Param:      param,
			Value:      value,
			DDIOMissPS: win.DDIOMissPS() * scale,
			MemGBps:    win.MemGBps() * scale,
			Unstable:   unstable,
			FinalWays:  s.P.RDT.DDIOMask().Count(),
		}, nil
	}
	variants := []struct {
		param, value string
		mod          func(*core.Params)
	}{
		{"defaults", "-", func(p *core.Params) {}},
		{"stable-thresh", "1%", func(p *core.Params) { p.ThresholdStable = 0.01 }},
		{"stable-thresh", "10%", func(p *core.Params) { p.ThresholdStable = 0.10 }},
		{"interval", "100ms", func(p *core.Params) { p.IntervalNS = 0.1e9 }},
		{"interval", "500ms", func(p *core.Params) { p.IntervalNS = 0.5e9 }},
		{"miss-low", "0.3M/s", func(p *core.Params) { p.ThresholdMissLowPerSec = 0.3e6 / scale }},
		{"miss-low", "3M/s", func(p *core.Params) { p.ThresholdMissLowPerSec = 3e6 / scale }},
		{"ddio-max", "4", func(p *core.Params) { p.DDIOWaysMax = 4 }},
		{"ddio-max", "8", func(p *core.Params) { p.DDIOWaysMax = 8 }},
	}
	var jobs []harness.Job
	for _, v := range variants {
		v := v
		name := fmt.Sprintf("abl-sens/%s=%s", v.param, v.value)
		seed := jobSeed(name)
		jobs = append(jobs, harness.Job{
			Name: name, Figure: "abl-sens", Seed: seed,
			Fn: func() (any, error) { return run(v.param, v.value, v.mod, seed) },
		})
	}
	rows := runJobs[SensitivityRow](jobs)
	if w != nil {
		fmt.Fprintf(w, "Sensitivity — IAT parameters on the Leaky DMA scenario (1.5KB)\n")
		fmt.Fprintf(w, "%14s %8s %14s %10s %10s %6s\n", "param", "value", "DDIOmiss/s", "mem GB/s", "unstable", "dWays")
		for _, r := range rows {
			fmt.Fprintf(w, "%14s %8s %14.3e %10.2f %10d %6d\n",
				r.Param, r.Value, r.DDIOMissPS, r.MemGBps, r.Unstable, r.FinalWays)
		}
	}
	return rows
}

// AblationResQRow is one row of the ResQ-vs-IAT comparison.
type AblationResQRow struct {
	Mode string
	// Leak metrics at 1.5KB line rate (the Leaky DMA scenario).
	DDIOMissPS float64
	MemGBps    float64
	// Small-packet RFC2544 zero-drop throughput under bursty 64B load.
	SmallPktMpps float64
}

// RunAblationResQ pits the two remedies for the Leaky DMA problem against
// each other (Sec. III-A): ResQ sizes the Rx rings so all buffers fit the
// default two DDIO ways; IAT keeps the deep rings and grows the DDIO ways.
// Both stop the 1.5KB leak — but the shallow ResQ rings collapse bursty
// small-packet throughput, which is exactly why the paper argues buffer
// sizing is not a panacea.
func RunAblationResQ(w io.Writer, scale float64) []AblationResQRow {
	if scale == 0 {
		scale = 100
	}
	// ResQ's ring size must be provisioned for the deployment's tenant
	// count, not today's traffic: the paper's Sec. III-A example is 20
	// containers each with an SR-IOV VF, i.e. 40 rings sharing the
	// default DDIO capacity -- each gets a shallow ring.
	llcCfg := sim.XeonGold6140(scale).Hier.LLC
	ddioBytes := uint64(2 * llcCfg.WayBytes())
	resqRing := baseline.ResQRingEntries(ddioBytes, 40, nic.BufSize)

	leak := func(ring int, iat bool, seed int64) (missPS, memGBps float64, err error) {
		s := NewLeakyScenario(LeakyOpts{Scale: scale, PktSize: 1500, RingSize: ring, Seed: seed})
		if iat {
			params := core.DefaultParams()
			params.IntervalNS = 0.2e9
			params.ThresholdMissLowPerSec /= scale
			if _, err := bridge.NewIAT(s.P, params, core.Options{}); err != nil {
				return 0, 0, err
			}
		}
		s.P.Run(2.4e9)
		win := Measure(s.P, 0.8e9)
		return win.DDIOMissPS() * scale, win.MemGBps() * scale, nil
	}
	// The RFC2544 probe calls runFig3Point directly (not RunFig3) so the
	// nested sweep does not spawn a second harness run inside this job.
	small := func(ring int, seed int64) float64 {
		o := DefaultFig3Opts()
		o.Scale = scale
		return runFig3Point(64, ring, seed, o).MaxMpps
	}

	var jobs []harness.Job
	for _, mode := range []string{"baseline", "resq", "iat"} {
		mode := mode
		name := "abl-resq/" + mode
		seed := jobSeed(name)
		jobs = append(jobs, harness.Job{
			Name: name, Figure: "abl-resq", Seed: seed,
			Fn: func() (any, error) {
				r := AblationResQRow{Mode: mode}
				ring, iat := 1024, false
				switch mode {
				case "resq":
					ring = resqRing
				case "iat":
					iat = true
				}
				var err error
				if r.DDIOMissPS, r.MemGBps, err = leak(ring, iat, seed); err != nil {
					return nil, err
				}
				r.SmallPktMpps = small(ring, seed)
				return r, nil
			},
		})
	}
	rows := runJobs[AblationResQRow](jobs)
	if w != nil {
		fmt.Fprintf(w, "Ablation — ResQ (ring sizing, %d entries) vs IAT (DDIO sizing)\n", resqRing)
		fmt.Fprintf(w, "%10s %14s %10s %16s\n", "mode", "DDIOmiss/s", "mem GB/s", "64B bursty Mpps")
		for _, r := range rows {
			fmt.Fprintf(w, "%10s %14.3e %10.2f %16.2f\n", r.Mode, r.DDIOMissPS, r.MemGBps, r.SmallPktMpps)
		}
	}
	return rows
}
