package exp

import (
	"fmt"
	"math/rand"
	"strings"

	"iatsim/internal/bridge"
	"iatsim/internal/cache"
	"iatsim/internal/core"
	"iatsim/internal/nic"
	"iatsim/internal/pkt"
	"iatsim/internal/sim"
	"iatsim/internal/tgen"
	"iatsim/internal/workload"
	"iatsim/internal/ycsb"
)

// Placement names which of the three non-networking containers starts on
// the DDIO ways in the paper's "randomly shuffled" baseline (Sec. VI-C).
type Placement string

// Placements: the representative corners of the paper's random shuffles.
const (
	// PlaceNone leaves the DDIO ways free of tenants (the baseline's
	// best case).
	PlaceNone Placement = "none"
	// PlacePC puts the performance-critical app on the DDIO ways (worst
	// case for Fig. 12/13).
	PlacePC Placement = "pc"
	// PlaceBE1 puts the 1MB X-Mem there.
	PlaceBE1 Placement = "be1"
	// PlaceBE10 puts the cache-hungry 10MB X-Mem there (worst case for
	// the networking side, Fig. 14).
	PlaceBE10 Placement = "be10"
)

// Placements lists all four corners.
func Placements() []Placement { return []Placement{PlaceNone, PlacePC, PlaceBE1, PlaceBE10} }

// AppMixOpts describes one application-study co-run (the scenario of
// Figs. 12-14).
type AppMixOpts struct {
	Scale float64
	// Net is "redis" (aggregation model, YCSB over the NICs) or
	// "fastclick" (slicing model, 4 NF-chain containers).
	Net string
	// App is the PC non-networking app: a SPEC profile name ("mcf", …)
	// or "rocksdb:A".."rocksdb:F".
	App string
	// Solo drops the networking tenants and the BE X-Mems (solo run).
	Solo bool
	// NetOnly drops the non-networking tenants (networking solo run).
	NetOnly    bool
	Placement  Placement
	IAT        bool
	IntervalNS float64
	// TargetInstr / TargetOps bound the PC app's run (execution-time
	// metric). Zero selects calibrated defaults.
	TargetInstr uint64
	TargetOps   uint64
	// RedisRatePPS is the offered YCSB request rate per NIC (scaled
	// world x Scale); zero selects the calibrated default.
	RedisRatePPS float64
	// RedisWorkload is the YCSB mix driving Redis (default C).
	RedisWorkload string
	// MaxNS caps the co-run length.
	MaxNS float64
	// Seed offsets every RNG seed in the scenario (0 = the canonical
	// seeds).
	Seed int64
}

// AppMixResult carries every metric the three figures need.
type AppMixResult struct {
	// ExecNS is the PC app's execution time (simulated ns), 0 if it did
	// not finish within MaxNS.
	ExecNS float64
	// RocksHists are the per-op latency histograms when App is rocksdb.
	RocksHists map[ycsb.Op]*ycsb.Histogram
	// RedisOpsPS is the aggregate achieved Redis throughput (ops/s,
	// unscaled), with mean and p99 latency in simulated ns.
	RedisOpsPS  float64
	RedisMeanNS float64
	RedisP99NS  float64
	// NF metrics for the fastclick mix: delivered packets/s (unscaled),
	// max latency and mean jitter (ns).
	NFPPS      float64
	NFMaxLatNS float64
	NFJitterNS float64
}

// appMix is the assembled scenario.
type appMix struct {
	p      *sim.Platform
	spec   *workload.Spec
	rocks  *workload.RocksDB
	kvs    []*workload.KVS
	nfs    []*workload.NFChain
	pcCore int
}

const (
	mixCLOSNet = 1 // OVS+Redis or the four NF chains
	mixCLOSPC  = 2
	mixCLOSBE1 = 3
	mixCLOSBE2 = 4
)

// slotMask returns the 2-way mask of non-networking slot i (0..3); slot 3
// is the DDIO pair.
func slotMask(ways, i int) cache.WayMask {
	return cache.ContiguousMask(3+2*i, 2)
}

// buildAppMix assembles the platform for o.
func buildAppMix(o AppMixOpts) *appMix {
	if o.Scale == 0 {
		o.Scale = 100
	}
	p := sim.NewPlatform(sim.XeonGold6140(o.Scale))
	m := &appMix{p: p}
	ways := p.Cfg.Hier.LLC.Ways

	// --- Networking side ---
	if !o.Solo {
		switch o.Net {
		case "fastclick":
			buildFastClick(m, o)
		default:
			buildRedis(m, o)
		}
	}

	// --- Non-networking side ---
	if !o.NetOnly {
		slots := placementSlots(o.Placement)
		mustMask(p, mixCLOSPC, slotMask(ways, slots[0]))
		mustMask(p, mixCLOSBE1, slotMask(ways, slots[1]))
		mustMask(p, mixCLOSBE2, slotMask(ways, slots[2]))

		var pcWorker sim.Worker
		if strings.HasPrefix(o.App, "rocksdb") {
			wl := "C"
			if i := strings.IndexByte(o.App, ':'); i >= 0 {
				wl = o.App[i+1:]
			}
			w, err := ycsb.WorkloadByName(wl)
			if err != nil {
				panic(err)
			}
			// The real target is armed after warmup (RunAppMix), so
			// the measured window starts once the controller has
			// converged.
			m.rocks = workload.NewRocksDB(workload.DefaultRocksDBConfig(), w, 0, p.Alloc, 31+o.Seed)
			pcWorker = m.rocks
		} else {
			prof, err := workload.SpecProfileByName(o.App)
			if err != nil {
				panic(err)
			}
			m.spec = workload.NewSpec(prof, p.Alloc, 0, 37+o.Seed)
			pcWorker = m.spec
		}
		m.pcCore = 6
		mustTenant(p, &sim.Tenant{
			Name: "pc-app", Cores: []int{6}, CLOS: mixCLOSPC,
			Priority: sim.PerformanceCritical,
			Workers:  []sim.Worker{pcWorker},
		})
		if !o.Solo {
			be1 := workload.NewXMem(p.Alloc, 1<<20, 1<<20, 41+o.Seed)
			be2 := workload.NewXMem(p.Alloc, 10<<20, 10<<20, 43+o.Seed)
			mustTenant(p, &sim.Tenant{
				Name: "be-xmem-1m", Cores: []int{7}, CLOS: mixCLOSBE1,
				Priority: sim.BestEffort, Workers: []sim.Worker{be1},
			})
			mustTenant(p, &sim.Tenant{
				Name: "be-xmem-10m", Cores: []int{8}, CLOS: mixCLOSBE2,
				Priority: sim.BestEffort, Workers: []sim.Worker{be2},
			})
		}
	}

	if o.IAT {
		params := core.DefaultParams()
		if o.IntervalNS > 0 {
			params.IntervalNS = o.IntervalNS
		}
		params.ThresholdMissLowPerSec /= o.Scale
		// Sec. VI-C: tenant way adjustment disabled; DDIO sizing and
		// shuffling active.
		d, err := bridge.NewIAT(p, params, core.Options{DisableTenantAdjust: true})
		if err != nil {
			panic(err)
		}
		if DebugAppMixTrace != nil {
			d.OnIteration = DebugAppMixTrace
		}
	}
	return m
}

// placementSlots maps a Placement to the slots of (PC, BE1, BE10).
func placementSlots(pl Placement) [3]int {
	switch pl {
	case PlacePC:
		return [3]int{3, 0, 1}
	case PlaceBE1:
		return [3]int{0, 3, 1}
	case PlaceBE10:
		return [3]int{0, 1, 3}
	default: // PlaceNone
		return [3]int{0, 1, 2}
	}
}

// buildRedis attaches the aggregation-model networking side: OVS on cores
// 0-1 and two 2-core Redis containers, all sharing three LLC ways, driven
// by YCSB request traffic from both NICs.
func buildRedis(m *appMix, o AppMixOpts) {
	p := m.p
	mustMask(p, mixCLOSNet, cache.ContiguousMask(0, 3))
	ovs := workload.NewOVS(64, p.Alloc)
	for i := 0; i < 2; i++ {
		dev := p.AddDevice(nic.Config{Name: devName(i), VFs: 1})
		vf := dev.VF(0)
		vf.ConsumerCore = i
		port := nic.NewVirtioPort(portName(i), 1024, p.Alloc)
		ovs.NICPorts = append(ovs.NICPorts, vf)
		ovs.VirtioPorts = append(ovs.VirtioPorts, port)

		kcfg := workload.DefaultKVSConfig()
		kvs := workload.NewKVS(port, kcfg, p.Alloc)
		kvs2 := workload.NewKVS(port, kcfg, p.Alloc) // second thread, same port
		kvs2.Burst = kvs.Burst
		m.kvs = append(m.kvs, kvs, kvs2)
		mustTenant(p, &sim.Tenant{
			Name: fmt.Sprintf("redis%d", i), Cores: []int{2 + 2*i, 3 + 2*i}, CLOS: mixCLOSNet,
			Priority: sim.PerformanceCritical, IsIO: true,
			Workers: []sim.Worker{kvs, kvs2},
		})

		wl := o.RedisWorkload
		if wl == "" {
			wl = "A" // the YCSB default mix: updates keep DDIO busy
		}
		w, err := ycsb.WorkloadByName(wl)
		if err != nil {
			panic(err)
		}
		gen := ycsb.NewGenerator(w, workload.DefaultKVSConfig().Records, int64(61+i)+o.Seed)
		flows := pkt.NewFlowSet(8, uint16(i), uint64(71+i)+uint64(o.Seed)) // 8 client threads
		rate := o.RedisRatePPS
		if rate == 0 {
			rate = 8e6 // injection cap; the closed-loop window sets the load
		}
		g := tgen.NewGenerator(p.GeneratorRate(rate), 128, flows, int64(81+i)+o.Seed)
		// YCSB clients are closed-loop with enough outstanding requests (8
		// threads x a deep pipeline per generator machine, Sec. VI-C) to
		// keep the serving pipeline at capacity, so latency degradation
		// translates directly into throughput degradation, as in the paper.
		g.Window = 64
		dev.OnTx = func(int, nic.Entry) { g.Complete() }
		g.NewApp = func(_ *rand.Rand) any { return gen.Next() }
		// Writes carry their 1KB value inbound; reads are small gets.
		g.SizeFor = func(app any) int {
			if r, ok := app.(ycsb.Request); ok {
				switch r.Op {
				case ycsb.Update, ycsb.Insert, ycsb.ReadModifyWrite:
					return 1088
				}
			}
			return 128
		}
		p.AttachGenerator(g, dev, 0)
	}
	ovs.RouteNIC = func(i int, _ pkt.Flow) int { return i }
	ovs.RouteVirtio = func(i int, _ pkt.Flow) int { return i }
	mustTenant(p, &sim.Tenant{
		Name: "ovs", Cores: []int{0, 1}, CLOS: mixCLOSNet, Priority: sim.Stack, IsIO: true,
		Workers: []sim.Worker{ovs.Worker([]int{0}, []int{0}), ovs.Worker([]int{1}, []int{1})},
	})
}

// buildFastClick attaches the slicing-model networking side: two NICs with
// two VLAN VFs each, four single-core NF-chain containers sharing three
// ways, 1.5KB traffic at 20Gbps per VLAN.
func buildFastClick(m *appMix, o AppMixOpts) {
	p := m.p
	mustMask(p, mixCLOSNet, cache.ContiguousMask(0, 3))
	const flows = 4096
	for i := 0; i < 2; i++ {
		dev := p.AddDevice(nic.Config{Name: devName(i), VFs: 2})
		for v := 0; v < 2; v++ {
			idx := 2*i + v
			vf := dev.VF(v)
			vf.ConsumerCore = idx
			vf.VLAN = uint16(idx)
			nf := workload.NewNFChain(vf, flows, p.Alloc)
			m.nfs = append(m.nfs, nf)
			mustTenant(p, &sim.Tenant{
				Name: fmt.Sprintf("nf%d", idx), Cores: []int{idx}, CLOS: mixCLOSNet,
				Priority: sim.PerformanceCritical, IsIO: true,
				Workers: []sim.Worker{nf},
			})
			fs := pkt.NewFlowSet(flows, uint16(idx), uint64(90+idx)+uint64(o.Seed))
			g := tgen.NewGenerator(p.GeneratorRate(tgen.LineRatePPS(20, 1500)), 1500, fs, int64(95+idx)+o.Seed)
			p.AttachGenerator(g, dev, v)
		}
	}
}

// RunAppMix executes one co-run and collects all metrics.
func RunAppMix(o AppMixOpts) AppMixResult {
	m := buildAppMix(o)
	p := m.p
	if o.MaxNS == 0 {
		o.MaxNS = 14e9
	}
	// Warm long enough for caches to fill and the controller to converge,
	// then arm the PC app's completion target so the measured execution
	// window is steady-state.
	warm := 1.5e9
	p.Run(warm)
	if m.spec != nil {
		target := o.TargetInstr
		if target == 0 || target >= 1<<62 {
			target = 10_000_000
		}
		if o.TargetInstr >= 1<<62 {
			m.spec.TargetInstr = 1 << 62 // run forever (Fig. 14 windows)
		} else {
			m.spec.TargetInstr = m.spec.Retired() + target
		}
	}
	if m.rocks != nil {
		target := o.TargetOps
		if target == 0 {
			target = 60000
		}
		m.rocks.TargetOps = m.rocks.Stats().Ops + target
	}

	// Measurement baselines after warmup.
	var kvsA []workload.OpStats
	for _, k := range m.kvs {
		k.Hist().Reset()
		kvsA = append(kvsA, k.Stats())
	}
	var nfA []workload.OpStats
	for _, nf := range m.nfs {
		nf.Hist().Reset()
		nfA = append(nfA, nf.Stats())
	}
	if m.rocks != nil {
		for _, h := range m.rocks.Hists() {
			h.Reset()
		}
	}
	start := p.NowNS()

	appDone := func() bool {
		switch {
		case m.spec != nil:
			return m.spec.Done()
		case m.rocks != nil:
			return m.rocks.Done()
		}
		return false
	}
	for !appDone() && p.NowNS()-start < o.MaxNS {
		p.Run(100e6)
	}
	end := p.NowNS()

	res := AppMixResult{}
	switch {
	case m.spec != nil && m.spec.Done():
		res.ExecNS = m.spec.FinishNS() - start
	case m.rocks != nil && m.rocks.Done():
		res.ExecNS = m.rocks.FinishNS() - start
	}
	if m.rocks != nil {
		res.RocksHists = m.rocks.Hists()
	}
	if len(m.kvs) > 0 {
		var ops uint64
		hist := &ycsb.Histogram{}
		for i, k := range m.kvs {
			ops += k.Stats().Sub(kvsA[i]).Ops
			hist.Merge(k.Hist())
		}
		dur := (end - start) / 1e9
		res.RedisOpsPS = float64(ops) / dur * o.scaleOr100()
		res.RedisMeanNS = hist.Mean()
		res.RedisP99NS = hist.Percentile(99)
	}
	if len(m.nfs) > 0 {
		var ops uint64
		var jitter float64
		var maxLat float64
		for i, nf := range m.nfs {
			ops += nf.Stats().Sub(nfA[i]).Ops
			jitter += nf.Jitter()
			if mx := nf.Hist().Max(); mx > maxLat {
				maxLat = mx
			}
		}
		dur := (end - start) / 1e9
		res.NFPPS = float64(ops) / dur * o.scaleOr100()
		res.NFMaxLatNS = maxLat
		res.NFJitterNS = jitter / float64(maxUint64(ops, 1))
	}
	return res
}

func (o AppMixOpts) scaleOr100() float64 {
	if o.Scale == 0 {
		return 100
	}
	return o.Scale
}

func maxUint64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// DebugAppMixTrace, when set, receives every IAT iteration of app-mix runs
// (diagnostics).
var DebugAppMixTrace func(core.IterationInfo)

// DebugRedisServiceCycles runs a co-run and returns the Redis servers' mean
// service cycles per operation (diagnostics).
func DebugRedisServiceCycles(o AppMixOpts) float64 {
	m := buildAppMix(o)
	m.p.Run(1e9)
	var a []workload.OpStats
	for _, k := range m.kvs {
		a = append(a, k.Stats())
	}
	m.p.Run(1.5e9)
	var tot workload.OpStats
	for i, k := range m.kvs {
		d := k.Stats().Sub(a[i])
		tot.Ops += d.Ops
		tot.LatCycles += d.LatCycles
	}
	return tot.AvgLatCycles()
}
