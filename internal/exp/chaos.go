package exp

import (
	"fmt"
	"io"

	"iatsim/internal/bridge"
	"iatsim/internal/cache"
	"iatsim/internal/core"
	"iatsim/internal/faults"
	"iatsim/internal/harness"
	"iatsim/internal/telemetry"
)

// ChaosRow is one point of the stability-under-faults experiment: the Leaky
// DMA scenario under one fault-rate multiplier and one management mode.
type ChaosRow struct {
	FaultScale float64 // multiplier applied to the profile's rates
	Mode       string  // "baseline" (static 2-way DDIO) or "iat"

	// Injected fault counts, by layer.
	MSRFaults   uint64 // write rejections + sticky bits
	CtrGlitches uint64 // zeroed/saturated/wrapped/stale counter reads
	NICFaults   uint64 // dropped Rx descriptors + stalled Tx drains
	PollSkips   uint64 // suppressed controller polling epochs

	// Daemon self-healing activity (zero in baseline mode).
	SampleRejects uint64
	WriteRetries  uint64
	WriteFailures uint64
	Degradations  uint64
	Rearms        uint64

	// InvalidMaskWrites counts mask writes the daemon requested that were
	// not contiguous/non-empty/in-range. The acceptance criterion for the
	// hardened daemon is zero at every fault rate.
	InvalidMaskWrites uint64

	Degraded   bool   // holding the safe static fallback at measure end
	FinalState string // FSM state ("static" for baseline)
	DDIOWays   int

	DDIOHitPS  float64
	DDIOMissPS float64
	MemGBps    float64
	OVSIPC     float64
}

// ChaosOpts parameterises the run.
type ChaosOpts struct {
	Scale      float64
	Profile    string    // fault profile (named or kind=rate spec)
	Scales     []float64 // fault-rate multipliers swept per mode
	PktSize    int
	WarmNS     float64
	MeasureNS  float64
	IntervalNS float64 // IAT polling interval
}

// DefaultChaosOpts returns simulation-friendly defaults: the default
// profile at escalating multipliers (0 = fault-free control), 1.5KB
// packets, and enough warm time for degrade/re-arm cycles to play out.
func DefaultChaosOpts() ChaosOpts {
	return ChaosOpts{
		Scale:      100,
		Profile:    "default",
		Scales:     []float64{0, 1, 4},
		PktSize:    1500,
		WarmNS:     1.6e9,
		MeasureNS:  0.8e9,
		IntervalNS: 0.2e9,
	}
}

// validatingSystem wraps the bridge's core.System and counts mask-write
// requests that no real CAT/DDIO register would accept. The chaos harness
// asserts this stays zero: whatever the injected faults do to the daemon's
// counter view, it must never ask the hardware for an invalid allocation.
type validatingSystem struct {
	core.System
	ways    int
	invalid uint64
}

func (v *validatingSystem) SetCLOSMask(clos int, m cache.WayMask) error {
	if m == 0 || !m.Contiguous() || m.Highest() >= v.ways {
		v.invalid++
	}
	return v.System.SetCLOSMask(clos, m)
}

func (v *validatingSystem) SetDDIOMask(m cache.WayMask) error {
	if m.Count() < 1 || !m.Contiguous() || m.Highest() >= v.ways {
		v.invalid++
	}
	return v.System.SetDDIOMask(m)
}

// RunChaos runs the stability-under-faults experiment: the Fig. 8 Leaky
// DMA scenario with a deterministic fault injector armed across every
// layer (MSR accesses, NIC datapath, polling cadence), swept over
// escalating fault-rate multipliers, baseline vs the hardened IAT daemon.
// Schedules derive from the per-job seed, so rows are byte-identical at
// any -jobs value.
func RunChaos(w io.Writer, o ChaosOpts) []ChaosRow {
	base, err := faults.ProfileByName(o.Profile)
	if err != nil {
		panic(err) // cmd/experiments validates the profile before running
	}
	var jobs []harness.Job
	for _, scale := range o.Scales {
		for _, mode := range []string{"baseline", "iat"} {
			scale, mode := scale, mode
			name := fmt.Sprintf("chaos/%s/x%g/%s", base.Name, scale, mode)
			seed := jobSeed(name)
			jobs = append(jobs, harness.Job{
				Name: name, Figure: "chaos", Seed: seed,
				TelFn: func(tel *telemetry.Registry) (any, *telemetry.Snapshot, error) {
					row, snap := runChaosPoint(base.Scaled(scale), scale, mode, seed, o, tel)
					return row, snap, nil
				},
			})
		}
	}
	rows := runJobs[ChaosRow](jobs)
	if w != nil {
		fmt.Fprintf(w, "Chaos — stability under faults: profile %q, baseline vs hardened IAT\n", o.Profile)
		fmt.Fprintf(w, "%6s %9s %6s %6s %6s %6s | %5s %5s %5s %5s %5s %7s | %5s %-10s %9s\n",
			"xrate", "mode", "msr", "ctr", "nic", "poll",
			"rej", "retry", "wfail", "degr", "rearm", "invalid",
			"dWays", "state", "mem GB/s")
		for _, r := range rows {
			fmt.Fprintf(w, "%6g %9s %6d %6d %6d %6d | %5d %5d %5d %5d %5d %7d | %5d %-10s %9.2f\n",
				r.FaultScale, r.Mode, r.MSRFaults, r.CtrGlitches, r.NICFaults, r.PollSkips,
				r.SampleRejects, r.WriteRetries, r.WriteFailures, r.Degradations, r.Rearms,
				r.InvalidMaskWrites, r.DDIOWays, r.FinalState, r.MemGBps)
		}
	}
	return rows
}

// runChaosPoint runs one cell. The injector is armed only after the
// scenario is fully assembled: construction-time mask programming is not
// part of the fault surface, matching a daemon that starts on a healthy
// machine which later begins to glitch.
func runChaosPoint(prof faults.Profile, scale float64, mode string, seed int64, o ChaosOpts, tel *telemetry.Registry) (ChaosRow, *telemetry.Snapshot) {
	s := NewLeakyScenario(LeakyOpts{Scale: o.Scale, PktSize: o.PktSize, Seed: seed})
	if tel != nil {
		s.P.AttachTelemetry(tel)
	}
	var daemon *core.Daemon
	var vsys *validatingSystem
	if mode == "iat" {
		params := core.DefaultParams()
		params.IntervalNS = o.IntervalNS
		// Thresholds are defined against real time; the platform's Scale
		// shrinks every event rate by the same factor.
		params.ThresholdMissLowPerSec /= o.Scale
		params.SaneRateMax /= o.Scale
		vsys = &validatingSystem{System: bridge.NewSystem(s.P), ways: s.P.RDT.NumWays()}
		var err error
		daemon, err = core.NewDaemon(vsys, params, core.Options{})
		if err != nil {
			panic(err)
		}
		if tel != nil {
			daemon.Tel = tel
		}
		s.P.AddController(daemon)
	}

	inj := faults.NewInjector(prof, seed+1)
	if prof.Active() {
		if tel != nil {
			inj.AttachTelemetry(tel, s.P.NowNS)
		}
		s.P.MSR.SetFaultHook(inj)
		for _, dev := range s.Devs {
			dev.SetFaults(inj)
		}
		s.P.SetPollFaults(inj)
	}

	s.P.Run(o.WarmNS)
	win := Measure(s.P, o.MeasureNS)

	row := ChaosRow{
		FaultScale:  scale,
		Mode:        mode,
		MSRFaults:   inj.Count(faults.MSRWriteReject) + inj.Count(faults.MSRSticky),
		CtrGlitches: inj.CounterGlitches(),
		NICFaults:   inj.Count(faults.NICDrop) + inj.Count(faults.NICStall),
		PollSkips:   inj.Count(faults.PollSkip),
		FinalState:  "static",
		DDIOWays:    s.P.RDT.DDIOMask().Count(),
		DDIOHitPS:   win.DDIOHitPS() * o.Scale,
		DDIOMissPS:  win.DDIOMissPS() * o.Scale,
		MemGBps:     win.MemGBps() * o.Scale,
		OVSIPC:      win.IPC(s.OVSCores...),
	}
	if daemon != nil {
		h := daemon.Health()
		row.SampleRejects = h.SampleRejects
		row.WriteRetries = h.WriteRetries
		row.WriteFailures = h.WriteFailures
		row.Degradations = h.Degradations
		row.Rearms = h.Rearms
		row.Degraded = h.Degraded
		row.InvalidMaskWrites = vsys.invalid
		row.FinalState = daemon.State().String()
	}
	return row, tel.Snapshot(s.P.NowNS())
}
