package exp

import (
	"bytes"
	"io"
	"testing"

	"iatsim/internal/faults"
	"iatsim/internal/telemetry"
)

// quickChaosOpts is a small sweep that still lets degrade/re-arm cycles
// happen within the warm window.
func quickChaosOpts() ChaosOpts {
	o := DefaultChaosOpts()
	o.Scales = []float64{0, 2}
	o.WarmNS = 0.4e9
	o.MeasureNS = 0.2e9
	o.IntervalNS = 0.1e9
	return o
}

// TestChaosSameSeedByteIdenticalCSV: the chaos harness must be exactly as
// deterministic as the fault-free experiments — per-job schedules derive
// from the manifest seed, so the CSV is byte-identical at any -jobs value.
func TestChaosSameSeedByteIdenticalCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	t.Cleanup(func() { SetExec(Exec{}) })
	o := quickChaosOpts()

	render := func(seed int64, jobs int) []byte {
		SetExec(Exec{Jobs: jobs, Seed: seed})
		rows := RunChaos(io.Discard, o)
		if len(rows) != 4 {
			t.Fatalf("rows = %d, want 4 (2 scales x 2 modes)", len(rows))
		}
		var buf bytes.Buffer
		if err := WriteRowsCSV(&buf, rows); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	first := render(42, 4)
	second := render(42, 4)
	if !bytes.Equal(first, second) {
		t.Fatalf("same seed, same jobs: chaos CSV diverged\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	sequential := render(42, 1)
	if !bytes.Equal(first, sequential) {
		t.Fatalf("same seed, jobs=4 vs jobs=1: chaos CSV diverged\n--- parallel ---\n%s\n--- sequential ---\n%s", first, sequential)
	}
	other := render(7, 4)
	if bytes.Equal(first, other) {
		t.Fatal("different seeds produced identical chaos CSV: seed is not reaching the schedules")
	}
}

// TestChaosPointInvariantsAndTelemetry drives one heavily faulted IAT cell
// directly and checks the acceptance criteria: zero invalid mask writes,
// a defined final state (valid allocation or safe fallback), faults
// actually injected, and every injection/recovery surfaced via telemetry.
func TestChaosPointInvariantsAndTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	o := quickChaosOpts()
	prof, err := faults.ProfileByName(o.Profile)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	row, snap := runChaosPoint(prof.Scaled(4), 4, "iat", 1234, o, reg)

	if row.InvalidMaskWrites != 0 {
		t.Fatalf("daemon requested %d invalid mask writes under faults", row.InvalidMaskWrites)
	}
	total := row.MSRFaults + row.CtrGlitches + row.NICFaults + row.PollSkips
	if total == 0 {
		t.Fatal("no faults injected at 4x the default profile")
	}
	if row.FinalState == "static" || row.FinalState == "" {
		t.Fatalf("iat row has final state %q", row.FinalState)
	}
	if row.DDIOWays < 1 || row.DDIOWays > 11 {
		t.Fatalf("final DDIO ways = %d", row.DDIOWays)
	}
	if snap == nil {
		t.Fatal("no telemetry snapshot returned")
	}
	// Every injection is an event on the faults subsystem; the injected
	// count in the row must agree with the telemetry counters.
	evs := reg.Events(telemetry.SevDebug, "faults")
	if len(evs) == 0 {
		t.Fatal("injections produced no telemetry events")
	}
	var fromCounters uint64
	for _, k := range []string{"msr-reject", "msr-sticky", "counter-zero", "counter-saturate",
		"counter-wrap", "counter-stale", "nic-drop", "nic-stall", "poll-skip"} {
		fromCounters += reg.Counter("faults", "", k).Value()
	}
	if fromCounters != total {
		t.Fatalf("telemetry counted %d injections, row counted %d", fromCounters, total)
	}
	// The daemon's self-healing activity surfaces as daemon// events.
	if row.SampleRejects > 0 || row.Degradations > 0 {
		if len(reg.Events(telemetry.SevWarn, "daemon")) == 0 {
			t.Fatal("sample rejects/degradations produced no daemon warn events")
		}
	}
}

// TestChaosBaselineUnmanaged: baseline rows carry no daemon health
// activity, and a zero fault scale injects nothing.
func TestChaosBaselineUnmanaged(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	o := quickChaosOpts()
	prof, _ := faults.ProfileByName(o.Profile)
	row, _ := runChaosPoint(prof.Scaled(0), 0, "baseline", 99, o, nil)
	if row.FinalState != "static" || row.SampleRejects != 0 || row.InvalidMaskWrites != 0 {
		t.Fatalf("fault-free baseline row: %+v", row)
	}
	if n := row.MSRFaults + row.CtrGlitches + row.NICFaults + row.PollSkips; n != 0 {
		t.Fatalf("zero-scaled profile injected %d faults", n)
	}
	if row.DDIOWays != 2 {
		t.Fatalf("baseline DDIO ways = %d, want the static 2", row.DDIOWays)
	}
}
