package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
)

// WriteRowsCSV writes any slice of flat row structs (the Fig*Row /
// Ablation*Row types this package returns) as CSV: one column per exported
// field, named by the lower-cased field name. Nested or reference-typed
// fields are skipped, so only plottable scalars land in the file.
func WriteRowsCSV(w io.Writer, rows any) error {
	v := reflect.ValueOf(rows)
	if v.Kind() != reflect.Slice {
		return fmt.Errorf("exp: WriteRowsCSV wants a slice, got %T", rows)
	}
	if v.Len() == 0 {
		return nil
	}
	elem := v.Index(0).Type()
	if elem.Kind() != reflect.Struct {
		return fmt.Errorf("exp: WriteRowsCSV wants a slice of structs, got %T", rows)
	}
	cw := csv.NewWriter(w)
	var cols []int
	var header []string
	for i := 0; i < elem.NumField(); i++ {
		f := elem.Field(i)
		if !f.IsExported() || !scalarKind(f.Type.Kind()) {
			continue
		}
		cols = append(cols, i)
		header = append(header, f.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for r := 0; r < v.Len(); r++ {
		row := make([]string, 0, len(cols))
		for _, i := range cols {
			row = append(row, formatScalar(v.Index(r).Field(i)))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// scalarKind reports whether a field kind renders as a single CSV cell.
func scalarKind(k reflect.Kind) bool {
	switch k {
	case reflect.Bool, reflect.String,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64:
		return true
	}
	return false
}

func formatScalar(v reflect.Value) string {
	switch v.Kind() {
	case reflect.Bool:
		return strconv.FormatBool(v.Bool())
	case reflect.String:
		return v.String()
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		// Stringer-typed ints (State, Placement-likes) render readably.
		if s, ok := v.Interface().(fmt.Stringer); ok {
			return s.String()
		}
		return strconv.FormatInt(v.Int(), 10)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		// Stringer-typed uints (cache.WayMask) render as way bitmaps.
		if s, ok := v.Interface().(fmt.Stringer); ok {
			return s.String()
		}
		return strconv.FormatUint(v.Uint(), 10)
	case reflect.Float32, reflect.Float64:
		return strconv.FormatFloat(v.Float(), 'g', 8, 64)
	}
	return ""
}

// SaveRowsCSV writes rows to dir/name.csv, creating dir as needed.
func SaveRowsCSV(dir, name string, rows any) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return WriteRowsCSV(f, rows)
}
