package exp

import (
	"bytes"
	"io"
	"testing"
)

// TestSameSeedByteIdenticalCSV is the determinism regression test the
// simlint invariants back up: rendering a small figure twice with the
// same base seed must produce byte-identical CSV output — not just equal
// rows (TestParallelRowsMatchSequential covers row equality across
// worker counts) but identical bytes, the unit `make determinism`
// compares across whole -all runs. It runs under -race too: the sweep is
// tiny and exercises the parallel harness path.
func TestSameSeedByteIdenticalCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	t.Cleanup(func() { SetExec(Exec{}) })
	o := DefaultFig4Opts()
	o.WorkingSets = []int{4}
	o.WarmNS, o.MeasureNS = 0.1e9, 0.1e9

	render := func(seed int64, jobs int) []byte {
		SetExec(Exec{Jobs: jobs, Seed: seed})
		rows := RunFig4(io.Discard, o)
		if len(rows) != 2 {
			t.Fatalf("rows = %d, want 2 (dedicated + overlapped)", len(rows))
		}
		var buf bytes.Buffer
		if err := WriteRowsCSV(&buf, rows); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	first := render(42, 4)
	second := render(42, 4)
	if !bytes.Equal(first, second) {
		t.Fatalf("same seed, same jobs: CSV bytes diverged\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	sequential := render(42, 1)
	if !bytes.Equal(first, sequential) {
		t.Fatalf("same seed, jobs=4 vs jobs=1: CSV bytes diverged\n--- parallel ---\n%s\n--- sequential ---\n%s", first, sequential)
	}
	other := render(7, 4)
	if bytes.Equal(first, other) {
		t.Fatal("different seeds produced identical CSV bytes: seed is not reaching the scenario")
	}
}
