package exp

import (
	"io"
	"strings"
	"testing"

	"iatsim/internal/cache"
)

// These are integration tests: each one runs a miniature version of a
// paper experiment end to end (platform + workloads + controller) and
// checks the qualitative result the paper reports. The full-size runs live
// behind cmd/experiments and the repository-root benchmarks.

// skipHeavy skips the full-physics integration tests in -short mode and
// under the race detector (see race_on_test.go); the -race invocation
// still runs the harness-concurrency tests in runner_test.go.
func skipHeavy(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("integration test")
	}
	if raceEnabled {
		t.Skip("full-physics integration test: too slow under -race")
	}
}

func TestFig3RingSizeMatters(t *testing.T) {
	skipHeavy(t)
	o := DefaultFig3Opts()
	o.Rings = []int{64, 1024}
	o.Sizes = []int{64}
	o.WarmNS, o.MeasureNS = 0.2e9, 0.4e9
	rows := RunFig3(io.Discard, o)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].MaxMpps >= rows[1].MaxMpps {
		t.Fatalf("64-entry ring (%.2f) should underperform 1024 (%.2f) at 64B",
			rows[0].MaxMpps, rows[1].MaxMpps)
	}
}

func TestFig4OverlapHurts(t *testing.T) {
	skipHeavy(t)
	o := DefaultFig4Opts()
	o.WorkingSets = []int{4}
	o.WarmNS, o.MeasureNS = 0.4e9, 0.4e9
	rows := RunFig4(io.Discard, o)
	dedicated, overlap := rows[0], rows[1]
	if overlap.MopsPerSec >= dedicated.MopsPerSec {
		t.Fatalf("DDIO overlap should cut throughput: %.2f vs %.2f",
			overlap.MopsPerSec, dedicated.MopsPerSec)
	}
	if overlap.AvgLatencyNS <= dedicated.AvgLatencyNS {
		t.Fatalf("DDIO overlap should raise latency: %.1f vs %.1f",
			overlap.AvgLatencyNS, dedicated.AvgLatencyNS)
	}
}

func TestFig8IATReducesLeak(t *testing.T) {
	skipHeavy(t)
	o := DefaultFig8Opts()
	o.Sizes = []int{1500}
	rows := RunFig8(io.Discard, o)
	var base, iat Fig8Row
	for _, r := range rows {
		if r.Mode == "baseline" {
			base = r
		} else {
			iat = r
		}
	}
	if base.DDIOMissPS == 0 {
		t.Fatal("baseline shows no Leaky DMA at 1.5KB")
	}
	if iat.DDIOMissPS >= base.DDIOMissPS/2 {
		t.Fatalf("IAT did not cut DDIO misses: %.3e vs %.3e", iat.DDIOMissPS, base.DDIOMissPS)
	}
	if iat.MemGBps >= base.MemGBps {
		t.Fatalf("IAT did not cut memory bandwidth: %.2f vs %.2f", iat.MemGBps, base.MemGBps)
	}
}

func TestFig9IATGrowsStack(t *testing.T) {
	skipHeavy(t)
	o := DefaultFig9Opts()
	o.FlowSteps = []int{1, 100000}
	o.PlateauNS, o.MeasureNS = 1.2e9, 0.4e9
	rows := RunFig9(io.Discard, o)
	var baseIPC, iatIPC float64
	var iatWays int
	for _, r := range rows {
		if r.Flows != 100000 {
			continue
		}
		if r.Mode == "baseline" {
			baseIPC = r.OVSIPC
		} else {
			iatIPC, iatWays = r.OVSIPC, r.OVSWays
		}
	}
	if iatWays <= 2 {
		t.Fatalf("IAT did not grow the stack: %d ways", iatWays)
	}
	if iatIPC <= baseIPC {
		t.Fatalf("IAT IPC %.3f not above baseline %.3f", iatIPC, baseIPC)
	}
}

func TestFig10IATBeatsCoreOnlyInPhase3(t *testing.T) {
	skipHeavy(t)
	o := DefaultFig10Opts()
	o.Sizes = []int{1500}
	o.Phase1NS, o.Phase2NS, o.Phase3NS = 1e9, 3e9, 3e9
	rows := RunFig10(io.Discard, o)
	get := func(mode string) Fig10Row {
		for _, r := range rows {
			if r.Mode == mode {
				return r
			}
		}
		t.Fatalf("mode %s missing", mode)
		return Fig10Row{}
	}
	base, coreOnly, iat := get("baseline"), get("core-only"), get("iat")
	// Phase 2: both dynamic mechanisms beat the baseline.
	if iat.P2Mops <= base.P2Mops {
		t.Fatalf("IAT P2 %.2f not above baseline %.2f", iat.P2Mops, base.P2Mops)
	}
	// Phase 3: core-only collapses toward the baseline; IAT keeps its
	// advantage (the paper's headline Latent Contender result).
	if iat.P3Mops <= coreOnly.P3Mops {
		t.Fatalf("IAT P3 %.2f not above core-only %.2f", iat.P3Mops, coreOnly.P3Mops)
	}
	if iat.P3LatNS >= base.P3LatNS {
		t.Fatalf("IAT P3 latency %.1f not below baseline %.1f", iat.P3LatNS, base.P3LatNS)
	}
}

func TestFig11SeriesShowsShuffle(t *testing.T) {
	skipHeavy(t)
	o := DefaultFig10Opts()
	o.Phase1NS, o.Phase2NS, o.Phase3NS = 1e9, 2e9, 2e9
	series := RunFig11(io.Discard, o)
	if len(series) < 20 {
		t.Fatalf("series too short: %d", len(series))
	}
	first, last := series[0], series[len(series)-1]
	if first.C4Ways == last.C4Ways && first.BE2Ways == last.BE2Ways && first.BE3Ways == last.BE3Ways {
		t.Fatal("no allocation movement over the whole trace")
	}
	// After the manual DDIO expansion the PC container must not overlap.
	if last.C4Ways.Overlaps(last.DDIOMask) {
		t.Fatalf("container 4 (%v) left overlapping DDIO (%v)", last.C4Ways, last.DDIOMask)
	}
}

func TestFig15OverheadScalesWithCores(t *testing.T) {
	skipHeavy(t)
	o := DefaultFig15Opts()
	o.TenantCounts = []int{1, 8}
	o.CoresPer = []int{1}
	o.Iterations = 30
	rows := RunFig15(io.Discard, o)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].StableUS <= rows[0].StableUS {
		t.Fatalf("polling 8 tenants (%.1fus) not costlier than 1 (%.1fus)",
			rows[1].StableUS, rows[0].StableUS)
	}
	// Unstable iterations include the stable poll plus transition and
	// re-alloc work; allow wall-clock jitter between the two separate
	// measurement runs.
	for _, r := range rows {
		if r.UnstableUS < 0.5*r.StableUS {
			t.Errorf("unstable (%.1fus) implausibly cheaper than stable (%.1fus) at %d tenants",
				r.UnstableUS, r.StableUS, r.Tenants)
		}
	}
}

func TestAppMixSoloAndCorun(t *testing.T) {
	skipHeavy(t)
	solo := RunAppMix(AppMixOpts{Net: "redis", App: "rocksdb:C", Solo: true, TargetOps: 20000})
	if solo.ExecNS <= 0 {
		t.Fatal("solo run did not finish")
	}
	worst := RunAppMix(AppMixOpts{Net: "redis", App: "rocksdb:C", Placement: PlacePC, TargetOps: 20000})
	if worst.ExecNS <= solo.ExecNS {
		t.Fatalf("DDIO-overlapped co-run (%.2fs) not slower than solo (%.2fs)",
			worst.ExecNS/1e9, solo.ExecNS/1e9)
	}
	if worst.RedisOpsPS <= 0 || worst.RedisMeanNS <= 0 {
		t.Fatal("redis metrics missing")
	}
}

func TestAppMixFastClick(t *testing.T) {
	skipHeavy(t)
	r := RunAppMix(AppMixOpts{Net: "fastclick", App: "gcc", Placement: PlaceNone,
		TargetInstr: 1 << 62, MaxNS: 1.5e9})
	if r.NFPPS <= 0 {
		t.Fatal("NF chain delivered nothing")
	}
	if r.NFMaxLatNS <= 0 {
		t.Fatal("no NF latency recorded")
	}
}

func TestTablesPrint(t *testing.T) {
	PrintTable1(io.Discard)
	PrintTable2(io.Discard)
}

func TestAblationMechanisms(t *testing.T) {
	skipHeavy(t)
	rows := RunAblationMechanisms(io.Discard, 100)
	byName := map[string]AblationMechRow{}
	for _, r := range rows {
		byName[r.Variant] = r
	}
	if byName["ddio-only"].DDIOMissPS >= byName["baseline"].DDIOMissPS/2 {
		t.Fatalf("DDIO sizing alone should slash misses: %.3e vs %.3e",
			byName["ddio-only"].DDIOMissPS, byName["baseline"].DDIOMissPS)
	}
	if byName["full-iat"].MemGBps >= byName["baseline"].MemGBps {
		t.Fatal("full IAT should cut memory bandwidth")
	}
}

func TestAblationDDIOExtHeaderOnlyTradeoff(t *testing.T) {
	skipHeavy(t)
	rows := RunAblationDDIOExt(io.Discard, 100)
	byName := map[string]AblationDDIOExtRow{}
	for _, r := range rows {
		byName[r.Variant] = r
	}
	// Header-only protects the victim...
	if byName["header-only"].VictimLatNS >= byName["stock"].VictimLatNS {
		t.Fatalf("header-only did not protect the victim: %.1f vs %.1f",
			byName["header-only"].VictimLatNS, byName["stock"].VictimLatNS)
	}
	// ...by paying memory bandwidth for the bypassed payloads.
	if byName["header-only"].MemGBps <= byName["stock"].MemGBps {
		t.Fatal("header-only should consume more memory bandwidth")
	}
	// The forwarder itself only reads headers, so it keeps line rate.
	if byName["header-only"].FwdPPS < byName["stock"].FwdPPS*0.98 {
		t.Fatal("header-only hurt the forwarder")
	}
}

func TestAblationMBAOrdersLatency(t *testing.T) {
	skipHeavy(t)
	rows := RunAblationMBA(io.Discard, 100)
	if !(rows[0].PCLatNS > rows[1].PCLatNS && rows[1].PCLatNS > rows[2].PCLatNS) {
		t.Fatalf("PC latency not monotone in BE throttle: %+v", rows)
	}
	if !(rows[0].BEOpsPS > rows[1].BEOpsPS && rows[1].BEOpsPS > rows[2].BEOpsPS) {
		t.Fatalf("BE throughput not monotone in throttle: %+v", rows)
	}
}

func TestAblationGrowthBothConverge(t *testing.T) {
	skipHeavy(t)
	rows := RunAblationGrowth(io.Discard, 100)
	for _, r := range rows {
		if r.ConvergeNS == 0 {
			t.Fatalf("policy %v never converged", r.Policy)
		}
		if r.FinalWays < 3 {
			t.Fatalf("policy %v grew only to %d ways", r.Policy, r.FinalWays)
		}
	}
}

func TestAblationReplacementSquatting(t *testing.T) {
	skipHeavy(t)
	rows := RunAblationReplacement(io.Discard, 100)
	var srrip, lru AblationPolicyRow
	for _, r := range rows {
		if r.Policy.String() == "srrip" {
			srrip = r
		} else {
			lru = r
		}
	}
	// LRU lets the moved tenant keep its squatted capacity (well above
	// the control); SRRIP converges close to the control.
	lruRatio := lru.MovedMops / lru.ControlMops
	srripRatio := srrip.MovedMops / srrip.ControlMops
	if lruRatio <= srripRatio {
		t.Fatalf("LRU squat ratio %.2f not above SRRIP %.2f", lruRatio, srripRatio)
	}
	if srripRatio > 1.3 {
		t.Fatalf("SRRIP moved tenant retains %.2fx of control: squat did not decay", srripRatio)
	}
}

func TestAblationStorageLeak(t *testing.T) {
	skipHeavy(t)
	rows := RunAblationStorage(io.Discard, 100)
	base, iat := rows[0], rows[1]
	if base.DDIOMissPS == 0 {
		t.Fatal("storage workload shows no Leaky DMA")
	}
	if iat.DDIOWays <= 2 {
		t.Fatalf("IAT did not grow DDIO for storage traffic: %d ways", iat.DDIOWays)
	}
	if iat.MemGBps >= base.MemGBps {
		t.Fatalf("IAT did not cut memory bandwidth: %.2f vs %.2f", iat.MemGBps, base.MemGBps)
	}
	if iat.IOPS < base.IOPS*0.95 {
		t.Fatalf("IAT hurt storage throughput: %.0f vs %.0f", iat.IOPS, base.IOPS)
	}
}

func TestAblationRemoteSocketPenalty(t *testing.T) {
	skipHeavy(t)
	rows := RunAblationRemoteSocket(io.Discard, 100)
	var local, remote, direct AblationRemoteRow
	for _, r := range rows {
		switch r.Consumer {
		case "local":
			local = r
		case "remote":
			remote = r
		case "socket-direct":
			direct = r
		}
	}
	if remote.CPP <= local.CPP*1.1 {
		t.Fatalf("remote consumer CPP %.0f not clearly above local %.0f", remote.CPP, local.CPP)
	}
	if remote.FwdPPS >= local.FwdPPS {
		t.Fatalf("remote consumer throughput %.3e not below local %.3e", remote.FwdPPS, local.FwdPPS)
	}
	if direct.CPP > local.CPP*1.05 {
		t.Fatalf("socket-direct CPP %.0f should match local %.0f", direct.CPP, local.CPP)
	}
}

func TestSensitivityOutcomeRobust(t *testing.T) {
	skipHeavy(t)
	rows := RunSensitivity(io.Discard, 100)
	baseMem := rows[0].MemGBps
	baselineScenario := 2.2 // no-controller memory bandwidth on this scenario
	for _, r := range rows {
		// Every setting must keep the data-plane win: memory bandwidth
		// clearly below the uncontrolled baseline.
		if r.MemGBps > baselineScenario*0.8 {
			t.Errorf("%s=%s: mem %.2f GB/s lost most of the win", r.Param, r.Value, r.MemGBps)
		}
		// And within 2.5x of the default outcome.
		if r.MemGBps > baseMem*2.5 {
			t.Errorf("%s=%s: mem %.2f vs default %.2f", r.Param, r.Value, r.MemGBps, baseMem)
		}
	}
}

func TestAblationResQTradeoff(t *testing.T) {
	skipHeavy(t)
	rows := RunAblationResQ(io.Discard, 100)
	byMode := map[string]AblationResQRow{}
	for _, r := range rows {
		byMode[r.Mode] = r
	}
	// Both remedies stop the large-packet leak...
	if byMode["resq"].MemGBps >= byMode["baseline"].MemGBps*0.8 {
		t.Fatalf("ResQ did not stop the leak: %.2f vs %.2f", byMode["resq"].MemGBps, byMode["baseline"].MemGBps)
	}
	if byMode["iat"].MemGBps >= byMode["baseline"].MemGBps*0.8 {
		t.Fatalf("IAT did not stop the leak: %.2f vs %.2f", byMode["iat"].MemGBps, byMode["baseline"].MemGBps)
	}
	// ...but only ResQ pays with small-packet throughput.
	if byMode["resq"].SmallPktMpps >= byMode["iat"].SmallPktMpps {
		t.Fatalf("ResQ small-packet %.2f Mpps not below IAT %.2f", byMode["resq"].SmallPktMpps, byMode["iat"].SmallPktMpps)
	}
}

func TestWriteRowsCSV(t *testing.T) {
	rows := []Fig3Row{
		{PktSize: 64, RingSize: 128, MaxMpps: 2.5, LineRateMpps: 59.52, Trials: 7},
		{PktSize: 1500, RingSize: 1024, MaxMpps: 3.29, LineRateMpps: 3.29, Trials: 1},
	}
	var sb strings.Builder
	if err := WriteRowsCSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.HasPrefix(got, "PktSize,RingSize,MaxMpps,LineRateMpps,Trials\n") {
		t.Fatalf("header wrong: %q", got)
	}
	if !strings.Contains(got, "64,128,2.5,59.52,7") {
		t.Fatalf("row missing: %q", got)
	}
	// Stringer-typed masks render as bitmaps.
	samples := []Fig11Sample{{TimeNS: 1e9, C4MissPS: 5, C4Ways: cache.ContiguousMask(3, 2),
		DDIOMask: cache.ContiguousMask(9, 2), State: "LowKeep"}}
	sb.Reset()
	if err := WriteRowsCSV(&sb, samples); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "11000") {
		t.Fatalf("mask not rendered as bitmap: %q", sb.String())
	}
	// Non-slice input is rejected.
	if err := WriteRowsCSV(&sb, 42); err == nil {
		t.Fatal("non-slice accepted")
	}
	// Empty slice is a no-op.
	if err := WriteRowsCSV(&sb, []Fig3Row{}); err != nil {
		t.Fatal(err)
	}
}
