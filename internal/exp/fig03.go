package exp

import (
	"fmt"
	"io"

	"iatsim/internal/cache"
	"iatsim/internal/harness"
	"iatsim/internal/nic"
	"iatsim/internal/pkt"
	"iatsim/internal/sim"
	"iatsim/internal/tgen"
	"iatsim/internal/workload"
)

// Fig3Row is one bar of Fig. 3: the RFC2544 zero-drop throughput of l3fwd
// for one Rx ring size and packet size.
type Fig3Row struct {
	PktSize  int
	RingSize int
	// MaxMpps is the zero-drop throughput in (unscaled) Mpps.
	MaxMpps float64
	// LineRateMpps is the theoretical port limit for this packet size.
	LineRateMpps float64
	Trials       int
}

// Fig3Opts parameterises the run.
type Fig3Opts struct {
	Scale     float64
	Rings     []int
	Sizes     []int
	Flows     int
	WarmNS    float64
	MeasureNS float64
	// BurstPeriodNS shapes the offered traffic: packets arrive in
	// line-rate bursts whose duty cycle realises the offered average —
	// the producer-consumer skew that makes shallow rings overflow
	// (Sec. III-A).
	BurstPeriodNS float64
	Tol           float64
}

// DefaultFig3Opts mirrors the paper: ring sizes 64..1024, 64B and 1.5KB
// packets, a 1M-flow table.
func DefaultFig3Opts() Fig3Opts {
	return Fig3Opts{
		Scale:         100,
		Rings:         []int{64, 128, 256, 512, 1024},
		Sizes:         []int{64, 1500},
		Flows:         1 << 20,
		WarmNS:        0.4e9,
		MeasureNS:     0.6e9,
		BurstPeriodNS: 5e6,
		Tol:           0.02,
	}
}

// RunFig3 reproduces Fig. 3 (the Leaky DMA motivation): RFC2544 maximum
// zero-drop throughput of single-core DPDK l3fwd as the Rx ring shrinks,
// for small and MTU packets. Shrinking the ring barely hurts large packets
// but collapses small-packet throughput — the reason ResQ-style buffer
// sizing is not a panacea.
func RunFig3(w io.Writer, o Fig3Opts) []Fig3Row {
	var jobs []harness.Job
	for _, size := range o.Sizes {
		for _, ring := range o.Rings {
			size, ring := size, ring
			name := fmt.Sprintf("fig3/pkt=%d/ring=%d", size, ring)
			seed := jobSeed(name)
			jobs = append(jobs, harness.Job{
				Name: name, Figure: "fig3", Seed: seed,
				Fn: func() (any, error) { return runFig3Point(size, ring, seed, o), nil },
			})
		}
	}
	rows := runJobs[Fig3Row](jobs)
	if w != nil {
		fmt.Fprintf(w, "Fig 3 — RFC2544 zero-drop throughput of l3fwd vs Rx ring size\n")
		fmt.Fprintf(w, "%8s %9s %12s %14s %7s\n", "pkt(B)", "ring", "max Mpps", "line-rate Mpps", "trials")
		for _, r := range rows {
			fmt.Fprintf(w, "%8d %9d %12.2f %14.2f %7d\n",
				r.PktSize, r.RingSize, r.MaxMpps, r.LineRateMpps, r.Trials)
		}
	}
	return rows
}

func runFig3Point(size, ring int, seed int64, o Fig3Opts) Fig3Row {
	line := tgen.LineRatePPS(40, size)
	trial := func(ratePPS float64) (uint64, float64) {
		p := sim.NewPlatform(sim.XeonGold6140(o.Scale))
		dev := p.AddDevice(nic.Config{Name: "nic0", RxEntries: ring, VFs: 1})
		vf := dev.VF(0)
		vf.ConsumerCore = 0
		fwd := workload.NewL3Fwd(vf, o.Flows, p.Alloc)
		mustMask(p, 1, cache.ContiguousMask(0, 2))
		mustTenant(p, &sim.Tenant{
			Name: "l3fwd", Cores: []int{0}, CLOS: 1,
			Priority: sim.PerformanceCritical, IsIO: true,
			Workers: []sim.Worker{fwd},
		})
		flows := pkt.NewFlowSet(o.Flows, 0, 7+uint64(seed))
		g := tgen.NewGenerator(p.GeneratorRate(ratePPS), size, flows, 42+seed)
		duty := ratePPS / line
		if duty < 1 {
			g.Burst = &tgen.Burst{PeriodNS: o.BurstPeriodNS, Duty: duty}
		}
		p.AttachGenerator(g, dev, 0)
		p.Run(o.WarmNS)
		dropsA := vf.Stats.RxDrops + fwd.TxDrops()
		pktsA := vf.Stats.TxPackets
		p.Run(o.MeasureNS)
		drops := vf.Stats.RxDrops + fwd.TxDrops() - dropsA
		pps := float64(vf.Stats.TxPackets-pktsA) / (o.MeasureNS / 1e9) * o.Scale
		return drops, pps
	}
	res := tgen.RFC2544Search(line, o.Tol, trial)
	return Fig3Row{
		PktSize:      size,
		RingSize:     ring,
		MaxMpps:      res.MaxRatePPS / 1e6,
		LineRateMpps: line / 1e6,
		Trials:       res.Trials,
	}
}
