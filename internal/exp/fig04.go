package exp

import (
	"fmt"
	"io"

	"iatsim/internal/cache"
	"iatsim/internal/harness"
	"iatsim/internal/nic"
	"iatsim/internal/pkt"
	"iatsim/internal/sim"
	"iatsim/internal/tgen"
	"iatsim/internal/workload"
)

// Fig4Row is one point of Fig. 4: X-Mem performance at one working-set size
// with its two LLC ways either dedicated or overlapping DDIO's.
type Fig4Row struct {
	WorkingSetMB int
	Overlap      bool
	// MopsPerSec is X-Mem random-read throughput (million accesses/s of
	// core time).
	MopsPerSec float64
	// AvgLatencyNS is the mean access latency in core-clock nanoseconds.
	AvgLatencyNS float64
}

// Fig4Opts parameterises the run.
type Fig4Opts struct {
	Scale       float64
	WorkingSets []int // MB
	PktSize     int
	WarmNS      float64
	MeasureNS   float64
}

// DefaultFig4Opts sweeps 4..16MB as the paper does, with MTU-size traffic
// keeping DDIO's two ways under pressure.
func DefaultFig4Opts() Fig4Opts {
	return Fig4Opts{
		Scale:       100,
		WorkingSets: []int{4, 8, 12, 16},
		PktSize:     1500,
		WarmNS:      0.6e9,
		MeasureNS:   0.6e9,
	}
}

// RunFig4 reproduces Fig. 4 (the Latent Contender motivation): an l3fwd
// container saturates one NIC while an X-Mem container with two "dedicated"
// LLC ways runs random reads. When those two ways happen to be the DDIO
// ways, the supposedly isolated X-Mem loses throughput and latency even
// though no core shares its ways.
func RunFig4(w io.Writer, o Fig4Opts) []Fig4Row {
	var jobs []harness.Job
	for _, ws := range o.WorkingSets {
		for _, overlap := range []bool{false, true} {
			ws, overlap := ws, overlap
			kind := "dedicated"
			if overlap {
				kind = "ddio-ovlp"
			}
			name := fmt.Sprintf("fig4/ws=%dMB/%s", ws, kind)
			seed := jobSeed(name)
			jobs = append(jobs, harness.Job{
				Name: name, Figure: "fig4", Seed: seed,
				Fn: func() (any, error) { return runFig4Point(ws, overlap, seed, o), nil },
			})
		}
	}
	rows := runJobs[Fig4Row](jobs)
	if w != nil {
		fmt.Fprintf(w, "Fig 4 — Latent Contender: X-Mem with dedicated vs DDIO-overlapped ways\n")
		fmt.Fprintf(w, "%7s %9s %10s %12s\n", "WS(MB)", "ways", "Mops/s", "avg lat(ns)")
		for _, r := range rows {
			kind := "dedicated"
			if r.Overlap {
				kind = "ddio-ovlp"
			}
			fmt.Fprintf(w, "%7d %9s %10.2f %12.1f\n", r.WorkingSetMB, kind, r.MopsPerSec, r.AvgLatencyNS)
		}
	}
	return rows
}

func runFig4Point(wsMB int, overlap bool, seed int64, o Fig4Opts) Fig4Row {
	p := sim.NewPlatform(sim.XeonGold6140(o.Scale))
	ways := p.Cfg.Hier.LLC.Ways

	dev := p.AddDevice(nic.Config{Name: "nic0", VFs: 1})
	vf := dev.VF(0)
	vf.ConsumerCore = 0
	fwd := workload.NewL3Fwd(vf, 1<<20, p.Alloc)
	mustMask(p, 1, cache.ContiguousMask(0, 2)) // l3fwd: ways 0-1
	mustTenant(p, &sim.Tenant{
		Name: "l3fwd", Cores: []int{0}, CLOS: 1,
		Priority: sim.PerformanceCritical, IsIO: true,
		Workers: []sim.Worker{fwd},
	})

	xmem := workload.NewXMem(p.Alloc, 16<<20, uint64(wsMB)<<20, 9+seed)
	xmask := cache.ContiguousMask(2, 2) // dedicated ways 2-3
	if overlap {
		xmask = cache.ContiguousMask(ways-2, 2) // the DDIO ways
	}
	mustMask(p, 2, xmask)
	mustTenant(p, &sim.Tenant{
		Name: "xmem", Cores: []int{1}, CLOS: 2,
		Priority: sim.PerformanceCritical,
		Workers:  []sim.Worker{xmem},
	})

	flows := pkt.NewFlowSet(1<<20, 0, 7+uint64(seed))
	g := tgen.NewGenerator(p.GeneratorRate(tgen.LineRatePPS(40, o.PktSize)), o.PktSize, flows, 42+seed)
	p.AttachGenerator(g, dev, 0)

	p.Run(o.WarmNS)
	statsA := xmem.Stats()
	win := Measure(p, o.MeasureNS)
	d := xmem.Stats().Sub(statsA)

	row := Fig4Row{WorkingSetMB: wsMB, Overlap: overlap}
	// Throughput per second of core time: ops / (cycles / freq). The
	// scaled engine gives the core 1/Scale cycles per simulated second,
	// so normalise by actual cycles, not by simulated time.
	cyc := win.Cycles(1)
	if cyc > 0 {
		// ops per core-second = ops * freqHz / cycles; report millions.
		row.MopsPerSec = float64(d.Ops) * p.Cfg.FreqGHz * 1e9 / float64(cyc) / 1e6
	}
	row.AvgLatencyNS = d.AvgLatCycles() / p.Cfg.FreqGHz
	return row
}
