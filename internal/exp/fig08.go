package exp

import (
	"fmt"
	"io"

	"iatsim/internal/bridge"
	"iatsim/internal/core"
	"iatsim/internal/harness"
	"iatsim/internal/telemetry"
)

// Fig8Row is one point of Fig. 8: system behaviour for one packet size under
// one management mode.
type Fig8Row struct {
	PktSize    int
	Mode       string // "baseline" or "iat"
	DDIOHitPS  float64
	DDIOMissPS float64
	MemGBps    float64
	OVSIPC     float64
	OVSCPP     float64 // OVS cycles per switched packet
	DDIOWays   int
	FinalState string
}

// Fig8Opts parameterises the run.
type Fig8Opts struct {
	Scale      float64
	Sizes      []int
	WarmNS     float64 // time for IAT to converge before measuring
	MeasureNS  float64
	IntervalNS float64 // IAT polling interval
}

// DefaultFig8Opts returns simulation-friendly defaults: the paper's packet
// size ladder, a 200ms control interval (the thresholds are rates, so the
// algorithm is interval-independent), 2.4s of convergence and 0.8s of
// measurement per point.
func DefaultFig8Opts() Fig8Opts {
	return Fig8Opts{
		Scale:      100,
		Sizes:      []int{64, 128, 256, 512, 1024, 1500},
		WarmNS:     2.4e9,
		MeasureNS:  0.8e9,
		IntervalNS: 0.2e9,
	}
}

// RunFig8 reproduces Fig. 8 ("Solving the Leaky DMA problem"): two testpmd
// containers behind OVS, both NICs at line rate, packet size swept 64B to
// 1.5KB, baseline (static 2-way DDIO) vs IAT. Reported per point: DDIO hit
// and miss rates (Figs. 8a/8b), memory bandwidth (8c), and OVS IPC and
// cycles-per-packet (8d).
func RunFig8(w io.Writer, o Fig8Opts) []Fig8Row {
	var jobs []harness.Job
	for _, size := range o.Sizes {
		for _, mode := range []string{"baseline", "iat"} {
			size, mode := size, mode
			name := fmt.Sprintf("fig8/pkt=%d/%s", size, mode)
			seed := jobSeed(name)
			jobs = append(jobs, harness.Job{
				Name: name, Figure: "fig8", Seed: seed,
				TelFn: func(tel *telemetry.Registry) (any, *telemetry.Snapshot, error) {
					row, snap := runFig8Point(size, mode, seed, o, tel)
					return row, snap, nil
				},
			})
		}
	}
	rows := runJobs[Fig8Row](jobs)
	if w != nil {
		fmt.Fprintf(w, "Fig 8 — Leaky DMA: 2x testpmd via OVS, line rate, baseline vs IAT\n")
		fmt.Fprintf(w, "%8s %9s %12s %12s %9s %8s %9s %6s %-10s\n",
			"pkt(B)", "mode", "DDIOhit/s", "DDIOmiss/s", "mem GB/s", "OVS IPC", "OVS CPP", "dWays", "state")
		for _, r := range rows {
			fmt.Fprintf(w, "%8d %9s %12.3e %12.3e %9.2f %8.3f %9.0f %6d %-10s\n",
				r.PktSize, r.Mode, r.DDIOHitPS, r.DDIOMissPS, r.MemGBps, r.OVSIPC, r.OVSCPP, r.DDIOWays, r.FinalState)
		}
	}
	return rows
}

// runFig8Point runs one cell. tel may be nil (telemetry off): the
// instrumentation degrades to nil handles and no snapshot is returned.
func runFig8Point(size int, mode string, seed int64, o Fig8Opts, tel *telemetry.Registry) (Fig8Row, *telemetry.Snapshot) {
	s := NewLeakyScenario(LeakyOpts{Scale: o.Scale, PktSize: size, Seed: seed})
	if tel != nil {
		s.P.AttachTelemetry(tel)
	}
	var daemon *core.Daemon
	if mode == "iat" {
		params := core.DefaultParams()
		params.IntervalNS = o.IntervalNS
		// The miss-rate threshold is defined against real time; the
		// platform's Scale shrinks all event rates by the same factor.
		params.ThresholdMissLowPerSec /= o.Scale
		var err error
		daemon, err = bridge.NewIAT(s.P, params, core.Options{})
		if err != nil {
			panic(err)
		}
		if tel != nil {
			daemon.Tel = tel
		}
	}
	s.P.Run(o.WarmNS)
	pktsA := s.OVSPackets()
	win := Measure(s.P, o.MeasureNS)
	pktsB := s.OVSPackets()

	row := Fig8Row{
		PktSize:    size,
		Mode:       mode,
		DDIOHitPS:  win.DDIOHitPS() * o.Scale,
		DDIOMissPS: win.DDIOMissPS() * o.Scale,
		MemGBps:    win.MemGBps() * o.Scale,
		OVSIPC:     win.IPC(s.OVSCores...),
		DDIOWays:   s.P.RDT.DDIOMask().Count(),
		FinalState: "static",
	}
	if d := pktsB - pktsA; d > 0 {
		row.OVSCPP = float64(win.Cycles(s.OVSCores...)) / float64(d)
	}
	if daemon != nil {
		row.FinalState = daemon.State().String()
	}
	return row, tel.Snapshot(s.P.NowNS())
}
