package exp

import (
	"fmt"
	"io"

	"iatsim/internal/bridge"
	"iatsim/internal/core"
	"iatsim/internal/harness"
	"iatsim/internal/pkt"
)

// Fig9Row is one plateau of Fig. 9: OVS behaviour at one live flow count.
type Fig9Row struct {
	Flows     int
	Mode      string
	OVSMissPS float64 // OVS cores' LLC misses per second
	OVSIPC    float64
	OVSCPP    float64
	OVSWays   int // ways currently granted to the switch's CLOS
}

// Fig9Opts parameterises the run.
type Fig9Opts struct {
	Scale      float64
	FlowSteps  []int
	PlateauNS  float64 // time spent at each flow count before measuring
	MeasureNS  float64
	IntervalNS float64
}

// DefaultFig9Opts mirrors the paper's ramp: 64B line rate, flows growing
// from a single flow to 1M.
func DefaultFig9Opts() Fig9Opts {
	return Fig9Opts{
		Scale:      100,
		FlowSteps:  []int{1, 10, 100, 1000, 10000, 100000, 1000000},
		PlateauNS:  1.6e9,
		MeasureNS:  0.6e9,
		IntervalNS: 0.2e9,
	}
}

// RunFig9 reproduces Fig. 9 ("identifying the core's demand"): the Leaky
// DMA setup at 64B line rate while the number of flows in the traffic grows
// over time. The growing OVS flow table thrashes the switch's static two
// ways in the baseline; IAT detects the IPC drop + LLC miss growth and
// grants the software stack more ways.
func RunFig9(w io.Writer, o Fig9Opts) []Fig9Row {
	// One job per mode: each ramp is a single time series (the flow
	// steps within it are deliberately path-dependent).
	var jobs []harness.Job
	for _, mode := range []string{"baseline", "iat"} {
		mode := mode
		name := "fig9/ramp/" + mode
		seed := jobSeed(name)
		jobs = append(jobs, harness.Job{
			Name: name, Figure: "fig9", Seed: seed,
			Fn: func() (any, error) { return runFig9Ramp(mode, seed, o), nil },
		})
	}
	rows := runJobs[Fig9Row](jobs)
	if w != nil {
		fmt.Fprintf(w, "Fig 9 — flow scaling: 64B line rate through OVS, flow table ramp\n")
		fmt.Fprintf(w, "%9s %9s %12s %8s %9s %8s\n", "flows", "mode", "OVSmiss/s", "OVS IPC", "OVS CPP", "OVSways")
		for _, r := range rows {
			fmt.Fprintf(w, "%9d %9s %12.3e %8.3f %9.0f %8d\n",
				r.Flows, r.Mode, r.OVSMissPS, r.OVSIPC, r.OVSCPP, r.OVSWays)
		}
	}
	return rows
}

func runFig9Ramp(mode string, seed int64, o Fig9Opts) []Fig9Row {
	maxFlows := o.FlowSteps[len(o.FlowSteps)-1]
	s := NewLeakyScenario(LeakyOpts{Scale: o.Scale, PktSize: 64, Flows: maxFlows, Seed: seed})
	// Start the ramp from the first step.
	setFlows := func(n int) {
		s.OVS.SetFlows(2 * n) // two NICs' flows land in one classifier
		for i, g := range s.Gens {
			g.Flows = pkt.NewFlowSet(n, uint16(i), uint64(100+i)+uint64(seed))
		}
	}
	if mode == "iat" {
		params := core.DefaultParams()
		params.IntervalNS = o.IntervalNS
		params.ThresholdMissLowPerSec /= o.Scale
		if _, err := bridge.NewIAT(s.P, params, core.Options{}); err != nil {
			panic(err)
		}
	}
	var rows []Fig9Row
	for _, flows := range o.FlowSteps {
		setFlows(flows)
		s.P.Run(o.PlateauNS)
		pktsA := s.OVSPackets()
		win := Measure(s.P, o.MeasureNS)
		pktsB := s.OVSPackets()
		row := Fig9Row{
			Flows:     flows,
			Mode:      mode,
			OVSMissPS: win.LLCMissPS(s.OVSCores...) * o.Scale,
			OVSIPC:    win.IPC(s.OVSCores...),
			OVSWays:   s.P.RDT.CLOSMask(1).Count(),
		}
		if d := pktsB - pktsA; d > 0 {
			row.OVSCPP = float64(win.Cycles(s.OVSCores...)) / float64(d)
		}
		rows = append(rows, row)
	}
	return rows
}
