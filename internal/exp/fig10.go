package exp

import (
	"fmt"
	"io"

	"iatsim/internal/baseline"
	"iatsim/internal/bridge"
	"iatsim/internal/cache"
	"iatsim/internal/core"
	"iatsim/internal/harness"
	"iatsim/internal/nic"
	"iatsim/internal/pkt"
	"iatsim/internal/sim"
	"iatsim/internal/telemetry"
	"iatsim/internal/tgen"
	"iatsim/internal/workload"
)

// latentScenario is the slicing-model setup of the paper's Latent Contender
// experiment (Sec. VI-B, Figs. 10 and 11): two PC testpmd containers on
// dedicated VFs sharing three ways, three X-Mem containers (two BE, one PC)
// with two dedicated ways each, DDIO at the default two ways.
type latentScenario struct {
	P   *sim.Platform
	C4  *workload.XMem
	BEs [2]*workload.XMem
}

func newLatentScenario(scale float64, pktSize int, seed int64) *latentScenario {
	p := sim.NewPlatform(sim.XeonGold6140(scale))
	s := &latentScenario{P: p}
	ways := p.Cfg.Hier.LLC.Ways

	// Two forwarding containers, one per NIC VF, sharing CLOS 1.
	mustMask(p, 1, cache.ContiguousMask(0, 3))
	for i := 0; i < 2; i++ {
		dev := p.AddDevice(nic.Config{Name: devName(i), VFs: 1})
		vf := dev.VF(i * 0)
		vf.ConsumerCore = i
		fwd := workload.NewTestPMD(vf)
		mustTenant(p, &sim.Tenant{
			Name: containerName(i), Cores: []int{i}, CLOS: 1,
			Priority: sim.PerformanceCritical, IsIO: true,
			Workers: []sim.Worker{fwd},
		})
		flows := pkt.NewFlowSet(1, uint16(i), uint64(50+i)+uint64(seed))
		g := tgen.NewGenerator(p.GeneratorRate(tgen.LineRatePPS(40, pktSize)), pktSize, flows, int64(42+i)+seed)
		p.AttachGenerator(g, dev, 0)
	}

	// X-Mem containers 2 and 3 (BE) and 4 (PC), 2MB working sets.
	for i := 0; i < 2; i++ {
		x := workload.NewXMem(p.Alloc, 4<<20, 2<<20, int64(11+i)+seed)
		s.BEs[i] = x
		clos := 2 + i
		mustMask(p, clos, cache.ContiguousMask(3+2*i, 2))
		mustTenant(p, &sim.Tenant{
			Name: fmt.Sprintf("container%d", 2+i), Cores: []int{2 + i}, CLOS: clos,
			Priority: sim.BestEffort,
			Workers:  []sim.Worker{x},
		})
	}
	s.C4 = workload.NewXMem(p.Alloc, 16<<20, 2<<20, 17+seed)
	mustMask(p, 4, cache.ContiguousMask(7, 2))
	mustTenant(p, &sim.Tenant{
		Name: "container4", Cores: []int{4}, CLOS: 4,
		Priority: sim.PerformanceCritical,
		Workers:  []sim.Worker{s.C4},
	})
	_ = ways
	return s
}

// xmemWindow measures an X-Mem worker over durNS, returning (Mops/s of core
// time, mean latency ns).
func xmemWindow(p *sim.Platform, x *workload.XMem, coreID int, durNS float64) (float64, float64) {
	a := x.Stats()
	win := Measure(p, durNS)
	d := x.Stats().Sub(a)
	var mops float64
	if cyc := win.Cycles(coreID); cyc > 0 {
		mops = float64(d.Ops) * p.Cfg.FreqGHz * 1e9 / float64(cyc) / 1e6
	}
	return mops, d.AvgLatCycles() / p.Cfg.FreqGHz
}

// Fig10Row is one (packet size, mode) cell: container-4 X-Mem performance
// in the two phases (after the working-set growth; after the manual DDIO
// way expansion).
type Fig10Row struct {
	PktSize int
	Mode    string
	// Phase 2 (Figs. 10a/10b): after the 2MB -> 10MB working set growth.
	P2Mops  float64
	P2LatNS float64
	// Phase 3 (Figs. 10c/10d): after DDIO is manually grown to 4 ways.
	P3Mops  float64
	P3LatNS float64
}

// Fig10Opts parameterises the run.
type Fig10Opts struct {
	Scale      float64
	Sizes      []int
	Modes      []string
	Phase1NS   float64 // 2MB everywhere
	Phase2NS   float64 // container-4 at 10MB
	Phase3NS   float64 // DDIO manually at 4 ways
	IntervalNS float64
}

// DefaultFig10Opts compresses the paper's 5s/10s/10s timeline (the control
// interval shrinks with it, so the same number of iterations fits each
// phase).
func DefaultFig10Opts() Fig10Opts {
	return Fig10Opts{
		Scale:      100,
		Sizes:      []int{64, 512, 1500},
		Modes:      []string{"baseline", "core-only", "io-iso", "iat"},
		Phase1NS:   2e9,
		Phase2NS:   4e9,
		Phase3NS:   4e9,
		IntervalNS: 0.25e9,
	}
}

// RunFig10 reproduces Fig. 10 ("Solving the Latent Contender problem"):
// container 4's X-Mem throughput and latency under baseline, Core-only,
// I/O-iso and IAT (with DDIO way adjustment disabled, per the paper's
// footnote 3), across packet sizes, in the two phases of the experiment.
func RunFig10(w io.Writer, o Fig10Opts) []Fig10Row {
	var jobs []harness.Job
	for _, size := range o.Sizes {
		for _, mode := range o.Modes {
			size, mode := size, mode
			name := fmt.Sprintf("fig10/pkt=%d/%s", size, mode)
			seed := jobSeed(name)
			jobs = append(jobs, harness.Job{
				Name: name, Figure: "fig10", Seed: seed,
				TelFn: func(tel *telemetry.Registry) (any, *telemetry.Snapshot, error) {
					r, _, snap := runFig10Point(size, mode, seed, o, nil, tel)
					return r, snap, nil
				},
			})
		}
	}
	rows := runJobs[Fig10Row](jobs)
	if w != nil {
		fmt.Fprintf(w, "Fig 10 — Latent Contender: container-4 X-Mem, phases 2 (WS=10MB) and 3 (DDIO=4 ways)\n")
		fmt.Fprintf(w, "%8s %10s %10s %12s %10s %12s\n", "pkt(B)", "mode", "P2 Mops/s", "P2 lat(ns)", "P3 Mops/s", "P3 lat(ns)")
		for _, r := range rows {
			fmt.Fprintf(w, "%8d %10s %10.2f %12.1f %10.2f %12.1f\n",
				r.PktSize, r.Mode, r.P2Mops, r.P2LatNS, r.P3Mops, r.P3LatNS)
		}
	}
	return rows
}

// Fig11Sample is one time-series point of Fig. 11.
type Fig11Sample struct {
	TimeNS   float64
	C4MissPS float64
	C4Ways   cache.WayMask
	DDIOMask cache.WayMask
	BE2Ways  cache.WayMask
	BE3Ways  cache.WayMask
	State    string
}

// runFig10Point runs one cell; when series is non-nil it is filled with
// 100ms samples (Fig. 11). tel may be nil (telemetry off).
func runFig10Point(size int, mode string, seed int64, o Fig10Opts, series *[]Fig11Sample, tel *telemetry.Registry) (Fig10Row, []Fig11Sample, *telemetry.Snapshot) {
	s := newLatentScenario(o.Scale, size, seed)
	p := s.P
	if tel != nil {
		p.AttachTelemetry(tel)
	}
	var daemon *core.Daemon
	switch mode {
	case "baseline":
	case "core-only":
		cfg := baseline.DefaultConfig(baseline.CoreOnly)
		cfg.IntervalNS = o.IntervalNS
		p.AddController(baseline.New(bridge.NewSystem(p), cfg))
	case "io-iso":
		cfg := baseline.DefaultConfig(baseline.IOIso)
		cfg.IntervalNS = o.IntervalNS
		p.AddController(baseline.New(bridge.NewSystem(p), cfg))
	case "iat":
		params := core.DefaultParams()
		params.IntervalNS = o.IntervalNS
		params.ThresholdMissLowPerSec /= o.Scale
		var err error
		// Footnote 3: DDIO way adjustment disabled to isolate the
		// shuffling mechanism.
		daemon, err = bridge.NewIAT(p, params, core.Options{DisableDDIOAdjust: true})
		if err != nil {
			panic(err)
		}
		if tel != nil {
			daemon.Tel = tel
		}
	default:
		panic("unknown mode " + mode)
	}
	_ = daemon

	run := func(durNS float64) {
		if series == nil {
			p.Run(durNS)
			return
		}
		const step = 100e6
		for t := 0.0; t < durNS; t += step {
			missA := p.Hier.LLC().CoreMisses(4)
			p.Run(step)
			*series = append(*series, Fig11Sample{
				TimeNS:   p.NowNS(),
				C4MissPS: float64(p.Hier.LLC().CoreMisses(4)-missA) / (step / 1e9),
				C4Ways:   p.RDT.CLOSMask(4),
				DDIOMask: p.RDT.DDIOMask(),
				BE2Ways:  p.RDT.CLOSMask(2),
				BE3Ways:  p.RDT.CLOSMask(3),
				State:    stateOf(daemon),
			})
		}
	}

	row := Fig10Row{PktSize: size, Mode: mode}
	// Phase 1: everything at 2MB.
	run(o.Phase1NS)
	// Phase 2: container 4 grows to 10MB (L2 + 4 LLC ways, as the paper
	// puts it).
	s.C4.SetWorkingSet(10 << 20)
	run(o.Phase2NS / 2) // stabilisation
	row.P2Mops, row.P2LatNS = xmemWindowSeries(p, s, o.Phase2NS/2, run)
	// Phase 3: DDIO manually expanded to 4 ways.
	ways := p.Cfg.Hier.LLC.Ways
	if err := p.RDT.SetDDIOMask(cache.ContiguousMask(ways-4, 4)); err != nil {
		panic(err)
	}
	run(o.Phase3NS / 2)
	row.P3Mops, row.P3LatNS = xmemWindowSeries(p, s, o.Phase3NS/2, run)
	snap := tel.Snapshot(p.NowNS())
	if series != nil {
		return row, *series, snap
	}
	return row, nil, snap
}

// xmemWindowSeries measures container 4 over durNS using the provided run
// function (so Fig. 11 sampling keeps working during measurement).
func xmemWindowSeries(p *sim.Platform, s *latentScenario, durNS float64, run func(float64)) (float64, float64) {
	a := s.C4.Stats()
	cycA := p.CoreCycles(4)
	run(durNS)
	d := s.C4.Stats().Sub(a)
	cyc := p.CoreCycles(4) - cycA
	var mops float64
	if cyc > 0 {
		mops = float64(d.Ops) * p.Cfg.FreqGHz * 1e9 / float64(cyc) / 1e6
	}
	return mops, d.AvgLatCycles() / p.Cfg.FreqGHz
}

func stateOf(d *core.Daemon) string {
	if d == nil {
		return ""
	}
	return d.State().String()
}

// RunFig11 reproduces Fig. 11: the 1.5KB-packet IAT run of Fig. 10 as a
// time series of LLC way allocation and container-4 LLC misses.
func RunFig11(w io.Writer, o Fig10Opts) []Fig11Sample {
	name := "fig11/pkt=1500/iat"
	seed := jobSeed(name)
	jobs := []harness.Job{{
		Name: name, Figure: "fig11", Seed: seed,
		TelFn: func(tel *telemetry.Registry) (any, *telemetry.Snapshot, error) {
			var s []Fig11Sample
			_, _, snap := runFig10Point(1500, "iat", seed, o, &s, tel)
			return s, snap, nil
		},
	}}
	series := runJobs[Fig11Sample](jobs)
	if w != nil {
		fmt.Fprintf(w, "Fig 11 — IAT dynamics over time (1.5KB packets)\n")
		fmt.Fprintf(w, "%8s %12s %12s %12s %12s %12s %-10s\n",
			"t(s)", "c4 miss/s", "c4 ways", "ddio", "BE2", "BE3", "state")
		for _, s := range series {
			fmt.Fprintf(w, "%8.1f %12.3e %12s %12s %12s %12s %-10s\n",
				s.TimeNS/1e9, s.C4MissPS, s.C4Ways, s.DDIOMask, s.BE2Ways, s.BE3Ways, s.State)
		}
	}
	return series
}
