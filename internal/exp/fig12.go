package exp

import (
	"fmt"
	"io"

	"iatsim/internal/harness"
	"iatsim/internal/ycsb"
)

// Fig12Row is one bar group of Fig. 12: a non-networking application's
// execution time normalised to its solo run, co-running with one networking
// application, under the baseline's placement range and under IAT.
type Fig12Row struct {
	Net string
	App string
	// SoloNS is the solo execution time.
	SoloNS float64
	// BaseMin/BaseMax bound the baseline over the placement corners
	// (the paper's "randomly shuffled" range).
	BaseMin float64
	BaseMax float64
	// IAT is the normalised execution time under IAT (started from the
	// worst-case placement).
	IAT float64
}

// Fig12Opts parameterises the application study.
type Fig12Opts struct {
	Scale float64
	Nets  []string
	Apps  []string
	// Corners are the baseline placements to sweep (min/max come from
	// these).
	Corners     []Placement
	IntervalNS  float64
	TargetInstr uint64
	TargetOps   uint64
}

// DefaultFig12Opts selects a representative subset of the paper's
// memory-sensitive SPEC2006 benchmarks plus RocksDB; pass AllApps for the
// complete sweep.
func DefaultFig12Opts() Fig12Opts {
	return Fig12Opts{
		Scale:      100,
		Nets:       []string{"redis", "fastclick"},
		Apps:       []string{"mcf", "omnetpp", "xalancbmk", "gcc", "rocksdb:C"},
		Corners:    []Placement{PlaceNone, PlacePC},
		IntervalNS: 0.25e9,
	}
}

// AllFig12Apps returns every application of the paper's Fig. 12.
func AllFig12Apps() []string {
	apps := []string{}
	for _, w := range []string{"A", "B", "C", "D", "E", "F"} {
		apps = append(apps, "rocksdb:"+w)
	}
	return append([]string{
		"mcf", "omnetpp", "xalancbmk", "soplex", "sphinx3", "libquantum", "milc", "lbm", "gcc",
	}, apps...)
}

// RunFig12 reproduces Fig. 12: normalised execution time of non-networking
// applications co-running with Redis (aggregation) or a FastClick chain
// (slicing), baseline placement range vs IAT.
func RunFig12(w io.Writer, o Fig12Opts) []Fig12Row {
	var jobs []harness.Job
	for _, net := range o.Nets {
		for _, app := range o.Apps {
			net, app := net, app
			name := fmt.Sprintf("fig12/%s/%s", net, app)
			seed := jobSeed(name)
			jobs = append(jobs, harness.Job{
				Name: name, Figure: "fig12", Seed: seed,
				Fn: func() (any, error) { return runFig12Cell(net, app, seed, o), nil },
			})
		}
	}
	rows := runJobs[Fig12Row](jobs)
	if w != nil {
		fmt.Fprintf(w, "Fig 12 — normalised execution time (co-run / solo)\n")
		fmt.Fprintf(w, "%-10s %-12s %9s %9s %9s %9s\n", "net", "app", "solo(s)", "base-min", "base-max", "IAT")
		for _, r := range rows {
			fmt.Fprintf(w, "%-10s %-12s %9.2f %9.3f %9.3f %9.3f\n",
				r.Net, r.App, r.SoloNS/1e9, r.BaseMin, r.BaseMax, r.IAT)
		}
	}
	return rows
}

func runFig12Cell(net, app string, seed int64, o Fig12Opts) Fig12Row {
	base := AppMixOpts{
		Scale: o.Scale, Net: net, App: app,
		IntervalNS:  o.IntervalNS,
		TargetInstr: o.TargetInstr,
		TargetOps:   o.TargetOps,
		Seed:        seed,
	}
	soloOpts := base
	soloOpts.Solo = true
	solo := RunAppMix(soloOpts)

	row := Fig12Row{Net: net, App: app, SoloNS: solo.ExecNS, BaseMin: 1e18}
	for _, pl := range o.Corners {
		opts := base
		opts.Placement = pl
		r := RunAppMix(opts)
		n := normalized(r.ExecNS, solo.ExecNS)
		if n < row.BaseMin {
			row.BaseMin = n
		}
		if n > row.BaseMax {
			row.BaseMax = n
		}
	}
	iatOpts := base
	iatOpts.Placement = PlacePC // start from the worst corner
	iatOpts.IAT = true
	row.IAT = normalized(RunAppMix(iatOpts).ExecNS, solo.ExecNS)
	return row
}

func normalized(v, solo float64) float64 {
	if solo <= 0 {
		return 0
	}
	if v <= 0 {
		return 0 // did not finish: reported as 0 to make it obvious
	}
	return v / solo
}

// Fig13Row is one YCSB workload of Fig. 13: RocksDB's normalised weighted
// average operation latency.
type Fig13Row struct {
	Net      string
	Workload string
	BaseMin  float64
	BaseMax  float64
	IAT      float64
}

// RunFig13 reproduces Fig. 13: the normalised weighted average latency of
// RocksDB under YCSB A-F, co-running with the two networking applications.
func RunFig13(w io.Writer, o Fig12Opts) []Fig13Row {
	var rows []Fig13Row
	workloads := []string{"A", "B", "C", "D", "E", "F"}
	if len(o.Apps) > 0 && o.Apps[0] == "quick" {
		workloads = []string{"A", "C"}
	}
	var jobs []harness.Job
	for _, net := range o.Nets {
		for _, wl := range workloads {
			net, wl := net, wl
			name := fmt.Sprintf("fig13/%s/ycsb-%s", net, wl)
			seed := jobSeed(name)
			jobs = append(jobs, harness.Job{
				Name: name, Figure: "fig13", Seed: seed,
				Fn: func() (any, error) { return runFig13Cell(net, wl, seed, o), nil },
			})
		}
	}
	rows = runJobs[Fig13Row](jobs)
	if w != nil {
		fmt.Fprintf(w, "Fig 13 — RocksDB normalised weighted latency (co-run / solo)\n")
		fmt.Fprintf(w, "%-10s %-9s %9s %9s %9s\n", "net", "workload", "base-min", "base-max", "IAT")
		for _, r := range rows {
			fmt.Fprintf(w, "%-10s %-9s %9.3f %9.3f %9.3f\n", r.Net, r.Workload, r.BaseMin, r.BaseMax, r.IAT)
		}
	}
	return rows
}

// WeightedLatency computes the op-count-weighted mean latency across op
// types, normalised per-op against the solo histograms (the paper's
// "normalized weighted latency", Fig. 13).
func WeightedLatency(co, solo map[ycsb.Op]*ycsb.Histogram) float64 {
	var total uint64
	var acc float64
	for op, h := range co {
		sh := solo[op]
		if sh == nil || sh.Mean() == 0 || h.Count() == 0 {
			continue
		}
		acc += float64(h.Count()) * (h.Mean() / sh.Mean())
		total += h.Count()
	}
	if total == 0 {
		return 0
	}
	return acc / float64(total)
}

func runFig13Cell(net, wl string, seed int64, o Fig12Opts) Fig13Row {
	base := AppMixOpts{
		Scale: o.Scale, Net: net, App: "rocksdb:" + wl,
		IntervalNS: o.IntervalNS,
		TargetOps:  o.TargetOps,
		Seed:       seed,
	}
	soloOpts := base
	soloOpts.Solo = true
	solo := RunAppMix(soloOpts)

	row := Fig13Row{Net: net, Workload: wl, BaseMin: 1e18}
	for _, pl := range o.Corners {
		opts := base
		opts.Placement = pl
		r := RunAppMix(opts)
		n := WeightedLatency(r.RocksHists, solo.RocksHists)
		if n < row.BaseMin {
			row.BaseMin = n
		}
		if n > row.BaseMax {
			row.BaseMax = n
		}
	}
	iatOpts := base
	iatOpts.Placement = PlacePC
	iatOpts.IAT = true
	row.IAT = WeightedLatency(RunAppMix(iatOpts).RocksHists, solo.RocksHists)
	return row
}

// Fig14Row is one YCSB workload of Fig. 14: Redis throughput and latency
// degradation under co-location.
type Fig14Row struct {
	Workload string
	// Normalised to the networking-only solo run (1.0 = no degradation).
	BaseTputMin, BaseTputMax float64
	IATTput                  float64
	BaseAvgMax               float64 // worst normalised mean latency
	IATAvg                   float64
	BaseP99Max               float64
	IATP99                   float64
}

// RunFig14 reproduces Fig. 14: Redis YCSB results when co-running with the
// non-networking trio (PC app = the cache-hungry mcf), baseline placement
// range vs IAT.
func RunFig14(w io.Writer, o Fig12Opts) []Fig14Row {
	workloads := []string{"A", "B", "C", "D", "E", "F"}
	if len(o.Apps) > 0 && o.Apps[0] == "quick" {
		workloads = []string{"A", "C"}
	}
	var jobs []harness.Job
	for _, wl := range workloads {
		wl := wl
		name := "fig14/redis/ycsb-" + wl
		seed := jobSeed(name)
		jobs = append(jobs, harness.Job{
			Name: name, Figure: "fig14", Seed: seed,
			Fn: func() (any, error) { return runFig14Cell(wl, seed, o), nil },
		})
	}
	rows := runJobs[Fig14Row](jobs)
	if w != nil {
		fmt.Fprintf(w, "Fig 14 — Redis under co-location (normalised to networking-solo)\n")
		fmt.Fprintf(w, "%-9s %9s %9s %9s %9s %9s %9s %9s\n",
			"workload", "tput-min", "tput-max", "IAT-tput", "avg-max", "IAT-avg", "p99-max", "IAT-p99")
		for _, r := range rows {
			fmt.Fprintf(w, "%-9s %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f\n",
				r.Workload, r.BaseTputMin, r.BaseTputMax, r.IATTput, r.BaseAvgMax, r.IATAvg, r.BaseP99Max, r.IATP99)
		}
	}
	return rows
}

func runFig14Cell(wl string, seed int64, o Fig12Opts) Fig14Row {
	base := AppMixOpts{
		Scale: o.Scale, Net: "redis", App: "mcf",
		RedisWorkload: wl,
		IntervalNS:    o.IntervalNS,
		TargetInstr:   1 << 62, // mcf runs for the whole window
		MaxNS:         3e9,     // fixed window: Redis metrics need equal spans
		Seed:          seed,
	}
	soloOpts := base
	soloOpts.NetOnly = true
	solo := RunAppMix(soloOpts)

	row := Fig14Row{Workload: wl, BaseTputMin: 1e18}
	// The corners that matter for the networking side: no overlap vs the
	// cache-hungry X-Mem on the DDIO ways.
	for _, pl := range []Placement{PlaceNone, PlaceBE10, PlacePC} {
		opts := base
		opts.Placement = pl
		r := RunAppMix(opts)
		t := normalized(r.RedisOpsPS, solo.RedisOpsPS)
		if t < row.BaseTputMin {
			row.BaseTputMin = t
		}
		if t > row.BaseTputMax {
			row.BaseTputMax = t
		}
		if a := normalized(r.RedisMeanNS, solo.RedisMeanNS); a > row.BaseAvgMax {
			row.BaseAvgMax = a
		}
		if p := normalized(r.RedisP99NS, solo.RedisP99NS); p > row.BaseP99Max {
			row.BaseP99Max = p
		}
	}
	iatOpts := base
	iatOpts.Placement = PlaceBE10 // worst corner for the networking side
	iatOpts.IAT = true
	r := RunAppMix(iatOpts)
	row.IATTput = normalized(r.RedisOpsPS, solo.RedisOpsPS)
	row.IATAvg = normalized(r.RedisMeanNS, solo.RedisMeanNS)
	row.IATP99 = normalized(r.RedisP99NS, solo.RedisP99NS)
	return row
}
