package exp

import (
	"fmt"
	"io"
	"time"

	"iatsim/internal/bridge"
	"iatsim/internal/cache"
	"iatsim/internal/core"
	"iatsim/internal/harness"
	"iatsim/internal/sim"
	"iatsim/internal/workload"
)

// Fig15Row is one bar of Fig. 15: the IAT daemon's per-iteration execution
// time for one tenant-count/cores-per-tenant configuration.
type Fig15Row struct {
	Tenants        int
	CoresPerTenant int
	// StableUS is the mean wall-clock cost of a stable iteration (Poll
	// Prof Data only), in microseconds.
	StableUS float64
	// UnstableUS is the mean cost of an unstable iteration (Poll +
	// State Transition + LLC Re-alloc).
	UnstableUS float64
	Iterations int
}

// Fig15Opts parameterises the overhead measurement.
type Fig15Opts struct {
	Scale        float64
	TenantCounts []int
	CoresPer     []int
	Iterations   int
	IntervalNS   float64
}

// DefaultFig15Opts mirrors the paper: 1..17 single-core tenants and 1..8
// two-core tenants on the 18-core part.
func DefaultFig15Opts() Fig15Opts {
	return Fig15Opts{
		Scale:        100,
		TenantCounts: []int{1, 2, 4, 8, 17},
		CoresPer:     []int{1, 2},
		Iterations:   60,
		IntervalNS:   20e6,
	}
}

// RunFig15 reproduces Fig. 15 (IAT overhead): the daemon's real wall-clock
// execution time per iteration — this is the one experiment measured in
// host time, since the control-plane code path (counter reads, FSM,
// register writes) is the artifact under test, exactly as in the paper.
// Stable iterations only poll; unstable iterations (forced by toggling the
// tenants' working sets) also transition and re-allocate.
func RunFig15(w io.Writer, o Fig15Opts) []Fig15Row {
	// These points measure host wall-clock time (the daemon code path
	// is the artifact under test), so they are Exclusive: the harness
	// drains the pool and runs each alone rather than letting
	// concurrent simulations inflate the timings.
	var jobs []harness.Job
	for _, cper := range o.CoresPer {
		for _, n := range o.TenantCounts {
			if n*cper > 17 {
				continue // the paper is bounded by its 18 cores too
			}
			n, cper := n, cper
			name := fmt.Sprintf("fig15/tenants=%d/cores=%d", n, cper)
			seed := jobSeed(name)
			jobs = append(jobs, harness.Job{
				Name: name, Figure: "fig15", Seed: seed, Exclusive: true,
				Fn: func() (any, error) { return runFig15Point(n, cper, seed, o), nil },
			})
		}
	}
	rows := runJobs[Fig15Row](jobs)
	if w != nil {
		fmt.Fprintf(w, "Fig 15 — IAT per-iteration execution time (wall clock)\n")
		fmt.Fprintf(w, "%8s %10s %12s %12s\n", "tenants", "cores/ten", "stable(us)", "unstable(us)")
		for _, r := range rows {
			fmt.Fprintf(w, "%8d %10d %12.1f %12.1f\n", r.Tenants, r.CoresPerTenant, r.StableUS, r.UnstableUS)
		}
	}
	return rows
}

// wsToggler flips X-Mem working sets every interval so the poll deltas
// always exceed THRESHOLD_STABLE, forcing unstable iterations.
type wsToggler struct {
	xs       []*workload.XMem
	interval float64
	last     float64
	flip     bool
}

func (t *wsToggler) Tick(nowNS float64) {
	if nowNS-t.last < t.interval {
		return
	}
	t.last = nowNS
	t.flip = !t.flip
	for _, x := range t.xs {
		if t.flip {
			x.SetWorkingSet(8 << 20)
		} else {
			x.SetWorkingSet(256 << 10)
		}
	}
}

func runFig15Point(tenants, coresPer int, seed int64, o Fig15Opts) Fig15Row {
	build := func(toggle bool) (*sim.Platform, *core.Daemon) {
		p := sim.NewPlatform(sim.XeonGold6140(o.Scale))
		tog := &wsToggler{interval: o.IntervalNS}
		for t := 0; t < tenants; t++ {
			clos := 1 + t%15
			mustMask(p, clos, cache.ContiguousMask(t%10, 2))
			var cores []int
			var workers []sim.Worker
			for c := 0; c < coresPer; c++ {
				id := t*coresPer + c
				x := workload.NewXMem(p.Alloc, 8<<20, 256<<10, int64(100+id)+seed)
				tog.xs = append(tog.xs, x)
				cores = append(cores, id)
				workers = append(workers, x)
			}
			mustTenant(p, &sim.Tenant{
				Name: fmt.Sprintf("t%d", t), Cores: cores, CLOS: clos,
				Priority: sim.BestEffort, Workers: workers,
			})
		}
		if toggle {
			p.AddController(tog) // runs before the daemon each epoch
		}
		params := core.DefaultParams()
		params.IntervalNS = o.IntervalNS
		params.ThresholdMissLowPerSec /= o.Scale
		d, err := bridge.NewIAT(p, params, core.Options{})
		if err != nil {
			panic(err)
		}
		return p, d
	}

	measure := func(toggle, wantStable bool) (float64, int) {
		p, d := build(toggle)
		var total time.Duration
		n := 0
		prevIters := uint64(0)
		for i := 0; i < o.Iterations; i++ {
			p.Run(o.IntervalNS)
			iters, _ := d.Iterations()
			if iters == prevIters {
				continue // warmup iterations before deltas exist
			}
			prevIters = iters
			tm := d.Timings()
			if tm.Stable != wantStable {
				continue
			}
			if wantStable {
				total += tm.Poll
			} else {
				total += tm.Poll + tm.Transition + tm.Realloc
			}
			n++
		}
		if n == 0 {
			return 0, 0
		}
		return float64(total.Microseconds()) / float64(n), n
	}

	stable, n1 := measure(false, true)
	unstable, n2 := measure(true, false)
	return Fig15Row{
		Tenants:        tenants,
		CoresPerTenant: coresPer,
		StableUS:       stable,
		UnstableUS:     unstable,
		Iterations:     n1 + n2,
	}
}
