package exp

import (
	"fmt"
	"io"

	"iatsim/internal/bridge"
	"iatsim/internal/core"
	"iatsim/internal/faults"
	"iatsim/internal/fleet"
	"iatsim/internal/policy"
	"iatsim/internal/telemetry"
)

// FleetOpts parameterises the fleet experiment: N simulated hosts — each
// a full Leaky DMA platform with its own IAT daemon, seed, workload mix
// and ambient fault profile — under a central rollout controller.
type FleetOpts struct {
	Hosts    int
	Topology string // workload-mix assignment: uniform | striped | skewed
	Rollout  string // bigbang | canary | staged
	// Storm names the fault profile of a correlated storm armed on the
	// canary cohort for the bake window ("" or "off" = no storm).
	Storm     string
	StormSeed int64

	// Policy, when non-empty, stages a decision-engine change instead of
	// the default DDIO-budget tightening: the rollout's Old policy pins
	// every host to the IAT engine and New switches the cohort to this
	// spec (e.g. "static:2", "ioca"), under the same canary/rollback
	// machinery. Parameters are held identical across Old and New so the
	// cohort comparison isolates the engine change.
	Policy string
	// Shadow is a comma-separated list of policy specs every host daemon
	// evaluates counterfactually each tick ("" = none). Shadows never
	// touch allocations; their divergence counters land in each host's
	// telemetry registry.
	Shadow string

	Scale      float64 // platform time-compression factor
	Rounds     int     // aggregation rounds
	RoundNS    float64 // simulated ns per round per host
	IntervalNS float64 // IAT daemon polling interval
	Seed       int64   // base seed; per-host seeds derive from it

	// CheckpointEvery checkpoints every up host's daemon state after
	// every Nth round, so hosts killed by crash faults rejoin with their
	// control-plane state intact (0 defaults to 1; negative disables —
	// crashed hosts then cold start).
	CheckpointEvery int

	// Tel, when non-nil, receives the controller's fleet-level metrics
	// and events (hosts always carry their own registries).
	Tel *telemetry.Registry
}

// DefaultFleetOpts returns simulation-friendly defaults: 8 hosts on a
// striped mix, a canary rollout of the tighter DDIO budget, and rounds
// long enough for a few daemon iterations each.
func DefaultFleetOpts() FleetOpts {
	return FleetOpts{
		Hosts:           8,
		Topology:        "striped",
		Rollout:         "canary",
		Scale:           800,
		Rounds:          8,
		RoundNS:         0.3e9,
		IntervalNS:      0.1e9,
		CheckpointEvery: 1,
	}
}

func (o FleetOpts) withDefaults() FleetOpts {
	d := DefaultFleetOpts()
	if o.Hosts == 0 {
		o.Hosts = d.Hosts
	}
	if o.Topology == "" {
		o.Topology = d.Topology
	}
	if o.Rollout == "" {
		o.Rollout = d.Rollout
	}
	if o.Scale == 0 {
		o.Scale = d.Scale
	}
	if o.Rounds == 0 {
		o.Rounds = d.Rounds
	}
	if o.RoundNS == 0 {
		o.RoundNS = d.RoundNS
	}
	if o.IntervalNS == 0 {
		o.IntervalNS = d.IntervalNS
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = d.CheckpointEvery
	}
	return o
}

// TopologyNames lists the valid -topology values.
func TopologyNames() []string { return []string{"uniform", "striped", "skewed"} }

// fleetMixes are the workload mixes fleet hosts draw from: the paper's
// Leaky DMA scenario at MTU packets, at small-packet line rate (the DDIO
// worst case), and flow-heavy (EMC-thrashing) variants.
var fleetMixes = []struct {
	name string
	opts LeakyOpts
}{
	{"pkt1500", LeakyOpts{PktSize: 1500}},
	{"pkt512", LeakyOpts{PktSize: 512}},
	{"flows64", LeakyOpts{PktSize: 1500, Flows: 64}},
}

// mixFor assigns host id its workload mix under the topology.
func mixFor(topology string, id int) (string, LeakyOpts, error) {
	switch topology {
	case "uniform":
		m := fleetMixes[0]
		return m.name, m.opts, nil
	case "striped":
		m := fleetMixes[id%len(fleetMixes)]
		return m.name, m.opts, nil
	case "skewed":
		// Three quarters of the fleet runs the MTU mix; every fourth
		// host is a small-packet outlier that stresses the I/O ways.
		if id%4 == 3 {
			m := fleetMixes[1]
			return m.name, m.opts, nil
		}
		m := fleetMixes[0]
		return m.name, m.opts, nil
	}
	return "", LeakyOpts{}, fmt.Errorf("exp: unknown fleet topology %q (valid: %v)", topology, TopologyNames())
}

// FleetPolicies returns the rollout pair the fleet experiment ships: the
// incumbent policy keeps the default 6-way DDIO ceiling, the candidate
// tightens it to 4 ways (the paper's Sec. VII tradeoff: fewer I/O ways
// protect the compute tenants but cap delivered I/O throughput).
// Thresholds defined against real time are divided by the platform Scale.
func FleetPolicies(scale, intervalNS float64) (oldPol, newPol fleet.Policy) {
	p := core.DefaultParams()
	p.IntervalNS = intervalNS
	p.ThresholdMissLowPerSec /= scale
	p.SaneRateMax /= scale
	oldPol = fleet.Policy{Name: "ddio-max6", Params: p}
	pn := p
	pn.DDIOWaysMax = 4
	newPol = fleet.Policy{Name: "ddio-max4", Params: pn}
	return oldPol, newPol
}

// BuildFleet assembles the fleet: one Leaky DMA platform per host with
// its own seed-derived traffic, an IAT daemon on the old policy's
// parameter shape, a private telemetry registry, and — on every fourth
// host — a light ambient fault profile, so the fleet is heterogeneous in
// both load and reliability. Host IDs are 0..Hosts-1 in slice order, as
// fleet.Config requires.
func BuildFleet(o FleetOpts) ([]*fleet.Host, error) {
	o = o.withDefaults()
	hosts := make([]*fleet.Host, 0, o.Hosts)
	for id := 0; id < o.Hosts; id++ {
		mixName, lo, err := mixFor(o.Topology, id)
		if err != nil {
			return nil, err
		}
		// Distinct per-host seeds even under the canonical base seed 0
		// (DeriveSeed reserves 0), so hosts never share traffic streams.
		seed := o.Seed + int64(id+1)*1009
		lo.Scale = o.Scale
		lo.Seed = seed
		s := NewLeakyScenario(lo)
		tel := telemetry.NewRegistry()
		s.P.AttachTelemetry(tel)

		params := core.DefaultParams()
		params.IntervalNS = o.IntervalNS
		params.ThresholdMissLowPerSec /= o.Scale
		params.SaneRateMax /= o.Scale
		daemon, err := core.NewDaemon(bridge.NewSystem(s.P), params, core.Options{})
		if err != nil {
			return nil, err
		}
		daemon.Tel = tel
		if o.Shadow != "" {
			specs, err := policy.ParseShadowSpecs(o.Shadow)
			if err != nil {
				return nil, err
			}
			ev := policy.NewEvaluator(specs)
			ev.Tel = tel
			daemon.AttachShadows(ev)
		}
		s.P.AddController(daemon)

		var prof faults.Profile
		if id%4 == 1 {
			prof, _ = faults.ProfileByName("light")
		}
		hosts = append(hosts, fleet.NewHost(fleet.HostSpec{
			ID: id, Mix: mixName, Seed: seed,
			Platform: s.P, Daemon: daemon, Tel: tel,
			IOCores: s.OVSCores, Faults: prof,
		}))
	}
	return hosts, nil
}

// FleetEnginePolicies returns the rollout pair for a staged
// decision-engine change: both policies share the incumbent parameter
// set (so the cohort comparison isolates the engine), Old pins the IAT
// engine and New switches to spec.
func FleetEnginePolicies(scale, intervalNS float64, spec policy.Spec) (oldPol, newPol fleet.Policy) {
	p := core.DefaultParams()
	p.IntervalNS = intervalNS
	p.ThresholdMissLowPerSec /= scale
	p.SaneRateMax /= scale
	iat := policy.Spec{Kind: policy.KindIAT}
	oldPol = fleet.Policy{Name: "iat", Params: p, Spec: &iat}
	newPol = fleet.Policy{Name: spec.String(), Params: p, Spec: &spec}
	return oldPol, newPol
}

// FleetPlan builds the rollout plan for o (defaults from fleet.Plan).
// With o.Policy set, the plan stages a decision-engine change; otherwise
// it stages the classic DDIO-budget tightening.
func FleetPlan(o FleetOpts) (fleet.Plan, error) {
	strat, err := fleet.StrategyByName(o.Rollout)
	if err != nil {
		return fleet.Plan{}, err
	}
	var oldPol, newPol fleet.Policy
	if o.Policy != "" {
		spec, err := policy.ParseSpec(o.Policy)
		if err != nil {
			return fleet.Plan{}, err
		}
		oldPol, newPol = FleetEnginePolicies(o.Scale, o.IntervalNS, spec)
	} else {
		oldPol, newPol = FleetPolicies(o.Scale, o.IntervalNS)
	}
	return fleet.Plan{Strategy: strat, Old: oldPol, New: newPol}, nil
}

// fleetStorm builds the canary-cohort storm for o (nil when none): armed
// when the first wave switches, lasting through its bake window.
func fleetStorm(o FleetOpts, plan fleet.Plan) (*fleet.Storm, error) {
	if o.Storm == "" || o.Storm == "off" {
		return nil, nil
	}
	prof, err := faults.ProfileByName(o.Storm)
	if err != nil {
		return nil, err
	}
	start, bake := plan.StartRound, plan.BakeRounds
	if start == 0 {
		start = 2
	}
	if bake == 0 {
		bake = 2
	}
	return &fleet.Storm{
		Profile: prof, Seed: o.StormSeed,
		Target: fleet.CohortCanary, StartRound: start, Rounds: bake + 1,
	}, nil
}

// RunFleet runs one fleet simulation under the current Exec policy and
// prints the per-round aggregate table. The returned report's Rows are
// the CSV shape (SaveRowsCSV-compatible); the hosts come back so callers
// can inspect policy histories and merge per-host telemetry.
func RunFleet(w io.Writer, o FleetOpts) (*fleet.Report, []*fleet.Host, error) {
	o = o.withDefaults()
	plan, err := FleetPlan(o)
	if err != nil {
		return nil, nil, err
	}
	storm, err := fleetStorm(o, plan)
	if err != nil {
		return nil, nil, err
	}
	hosts, err := BuildFleet(o)
	if err != nil {
		return nil, nil, err
	}
	var sink telemetry.Sink
	if o.Tel != nil {
		sink = o.Tel
	}
	every := o.CheckpointEvery
	if every < 0 {
		every = 0
	}
	e := CurrentExec()
	rep, err := fleet.Run(fleet.Config{
		Hosts: hosts, Rounds: o.Rounds, RoundNS: o.RoundNS,
		Workers: e.Jobs, Plan: plan, Storm: storm, CheckpointEvery: every,
		Tel: sink, Manifest: e.Manifest, Progress: e.Progress,
	})
	if err != nil {
		return nil, nil, err
	}
	if w != nil {
		stormName := o.Storm
		if stormName == "" {
			stormName = "off"
		}
		fmt.Fprintf(w, "Fleet — %d hosts (%s), rollout %s (%s -> %s), storm %s\n",
			o.Hosts, o.Topology, o.Rollout, plan.Old.Name, plan.New.Name, stormName)
		fmt.Fprintf(w, "%5s %-11s %5s %5s | %7s %7s %12s %12s | %5s %4s %5s %4s %6s | %7s %7s %3s\n",
			"round", "phase", "onNew", "storm", "p50ipc", "p99ipc", "p50thru/s", "p99thru/s",
			"degr", "down", "churn", "rej", "faults", "cIPC", "ctlIPC", "rb")
		for _, r := range rep.Rows {
			rb := ""
			if r.RolledBack {
				rb = "RB"
			}
			fmt.Fprintf(w, "%5d %-11s %5d %5d | %7.3f %7.3f %12.3g %12.3g | %5d %4d %5d %4d %6d | %7.3f %7.3f %3s\n",
				r.Round, r.Phase, r.NewPolicyHosts, r.StormHosts,
				r.P50IPC, r.P99IPC, r.P50ThroughputPS, r.P99ThroughputPS,
				r.DegradedHosts, r.HostsDown, r.MaskChurn, r.SampleRejects, r.Faults,
				r.CanaryIPC, r.ControlIPC, rb)
		}
	}
	return rep, hosts, nil
}

// FleetGridRow summarises one (rollout strategy, storm) cell of the
// fleet grid — the CSV row shape of the fleet experiment.
type FleetGridRow struct {
	Rollout       string
	Storm         string
	RolledBack    bool
	FinalOnNew    int
	FinalPhase    string
	P50IPC        float64 // last round, fleet-wide
	DegradedHosts int     // last round
	MaskChurn     uint64  // total over the run
	Faults        uint64  // total injected (ambient + storm)
}

// RunFleetGrid sweeps rollout strategies × {no storm, canary-cohort
// storm} over the same fleet shape: the big-bang rows are the cautionary
// baseline (no control cohort, so the storm's damage sticks), the canary
// and staged rows show the controller detecting the regression and
// rolling the cohort back automatically.
func RunFleetGrid(w io.Writer, o FleetOpts) []FleetGridRow {
	o = o.withDefaults()
	stormName := o.Storm
	if stormName == "" {
		stormName = "default"
	}
	var rows []FleetGridRow
	for _, rollout := range fleet.StrategyNames() {
		for _, storm := range []string{"off", stormName} {
			oc := o
			oc.Rollout = rollout
			oc.Storm = storm
			oc.Tel = nil
			rep, _, err := RunFleet(nil, oc)
			if err != nil {
				panic(err) // cmd validates flags before running
			}
			last := rep.Rows[len(rep.Rows)-1]
			row := FleetGridRow{
				Rollout:       rollout,
				Storm:         storm,
				RolledBack:    rep.RolledBack,
				FinalOnNew:    rep.FinalOnNew,
				FinalPhase:    last.Phase,
				P50IPC:        last.P50IPC,
				DegradedHosts: last.DegradedHosts,
			}
			for _, r := range rep.Rows {
				row.MaskChurn += r.MaskChurn
				row.Faults += r.Faults
			}
			rows = append(rows, row)
		}
	}
	if w != nil {
		fmt.Fprintf(w, "Fleet grid — %d hosts (%s), rollout strategies × canary-cohort fault storm\n",
			o.Hosts, o.Topology)
		fmt.Fprintf(w, "%8s %9s %11s %7s | %7s %5s %6s %7s\n",
			"rollout", "storm", "final", "onNew", "p50ipc", "degr", "churn", "faults")
		for _, r := range rows {
			fmt.Fprintf(w, "%8s %9s %11s %7d | %7.3f %5d %6d %7d\n",
				r.Rollout, r.Storm, r.FinalPhase, r.FinalOnNew,
				r.P50IPC, r.DegradedHosts, r.MaskChurn, r.Faults)
		}
	}
	return rows
}

// MergeFleetTelemetry folds every host's telemetry snapshot into one
// fleet-wide rollup at the fleet's current sim time.
func MergeFleetTelemetry(hosts []*fleet.Host) (*telemetry.Snapshot, error) {
	snaps := make([]*telemetry.Snapshot, 0, len(hosts))
	var now float64
	for _, h := range hosts {
		snaps = append(snaps, h.Snapshot())
		if t := h.P.NowNS(); t > now {
			now = t
		}
	}
	return telemetry.Merge(now, snaps...)
}
