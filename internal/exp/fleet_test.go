package exp

import (
	"bytes"
	"testing"

	"iatsim/internal/policy"
	"iatsim/internal/telemetry"
)

// testFleetOpts is a fleet small and time-compressed enough to run under
// -race: 4 hosts, striped mixes, a canary rollout over 6 rounds.
func testFleetOpts() FleetOpts {
	return FleetOpts{
		Hosts:      4,
		Topology:   "striped",
		Rollout:    "canary",
		Scale:      3200,
		Rounds:     6,
		RoundNS:    0.2e9,
		IntervalNS: 0.05e9,
	}
}

// TestFleetDeterministicAcrossWorkers is the acceptance criterion: the
// aggregate round CSV, the controller's telemetry snapshot and the merged
// per-host telemetry rollup are byte-identical at -jobs 1 and -jobs 4,
// storm included. The package test suite runs under -race in CI, so this
// also proves the sharded stepping race-clean.
func TestFleetDeterministicAcrossWorkers(t *testing.T) {
	t.Cleanup(func() { SetExec(Exec{}) })
	run := func(jobs int) (csv, tel string) {
		SetExec(Exec{Jobs: jobs})
		o := testFleetOpts()
		o.Storm = "default"
		o.Tel = telemetry.NewRegistry()
		rep, hosts, err := RunFleet(nil, o)
		if err != nil {
			t.Fatal(err)
		}
		var rows bytes.Buffer
		if err := WriteRowsCSV(&rows, rep.Rows); err != nil {
			t.Fatal(err)
		}
		merged, err := MergeFleetTelemetry(hosts)
		if err != nil {
			t.Fatal(err)
		}
		var snaps bytes.Buffer
		if err := o.Tel.Snapshot(hosts[0].P.NowNS()).WriteJSON(&snaps); err != nil {
			t.Fatal(err)
		}
		if err := merged.WriteJSON(&snaps); err != nil {
			t.Fatal(err)
		}
		return rows.String(), snaps.String()
	}
	csv1, tel1 := run(1)
	csv4, tel4 := run(4)
	if csv1 != csv4 {
		t.Errorf("round CSV differs between -jobs 1 and -jobs 4:\n--- jobs=1\n%s\n--- jobs=4\n%s", csv1, csv4)
	}
	if tel1 != tel4 {
		t.Errorf("telemetry snapshots differ between -jobs 1 and -jobs 4")
	}
	if csv1 == "" {
		t.Fatal("empty round CSV")
	}
}

// TestFleetCanaryStormRollsBack is the rollout acceptance criterion: a
// correlated fault storm seeded onto the canary cohort degrades it, the
// controller detects the regression against the control cohort and rolls
// the canary back automatically — and the control cohort never sees the
// new policy at all.
func TestFleetCanaryStormRollsBack(t *testing.T) {
	t.Cleanup(func() { SetExec(Exec{}) })
	SetExec(Exec{Jobs: 4})
	o := testFleetOpts()
	o.Hosts = 8
	o.Storm = "heavy"
	rep, hosts, err := RunFleet(nil, o)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.RolledBack {
		t.Fatal("canary-cohort fault storm did not trigger an automatic rollback")
	}
	if rep.FinalOnNew != 0 {
		t.Fatalf("FinalOnNew = %d after rollback, want 0", rep.FinalOnNew)
	}
	last := rep.Rows[len(rep.Rows)-1]
	if last.Phase != "rolled-back" || !last.RolledBack {
		t.Fatalf("final round row %+v, want rolled-back", last)
	}
	// The canary (host 0) went old -> new -> old; every control host
	// stayed on the old policy the whole run.
	want := []string{"ddio-max6", "ddio-max4", "ddio-max6"}
	got := hosts[0].PolicyHistory()
	if len(got) != len(want) {
		t.Fatalf("canary policy history = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("canary policy history = %v, want %v", got, want)
		}
	}
	for _, h := range hosts[1:] {
		hist := h.PolicyHistory()
		if len(hist) != 1 || hist[0] != "ddio-max6" {
			t.Errorf("%s policy history = %v, want [ddio-max6] only", h.Name, hist)
		}
	}
	// Per-round fault deltas must stay sane after the storm window ends:
	// disarming retires the storm's cumulative count, and an underflow
	// here would show up as a near-2^64 delta.
	for round, obs := range rep.Obs {
		for _, ob := range obs {
			if ob.Faults > 1<<40 {
				t.Errorf("round %d host %d: fault delta %d underflowed", round, ob.Host, ob.Faults)
			}
		}
	}
}

// TestFleetNoStormPromotes sanity-checks the happy path: with no storm
// the canary bakes clean and the whole fleet ends on the new policy.
func TestFleetNoStormPromotes(t *testing.T) {
	t.Cleanup(func() { SetExec(Exec{}) })
	SetExec(Exec{Jobs: 2})
	o := testFleetOpts()
	rep, hosts, err := RunFleet(nil, o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RolledBack {
		t.Fatal("storm-free rollout rolled back")
	}
	if rep.FinalOnNew != o.Hosts {
		t.Fatalf("FinalOnNew = %d, want %d", rep.FinalOnNew, o.Hosts)
	}
	for _, h := range hosts {
		if h.Policy() != "ddio-max4" {
			t.Errorf("%s ended on %q, want ddio-max4", h.Name, h.Policy())
		}
	}
}

// TestFleetPolicyChangeRollsBack stages a decision-engine change (IAT ->
// greedy) instead of the parameter tightening, storms the canary cohort,
// and asserts the existing canary/rollback machinery handles it: the
// canary's engine goes IAT -> greedy -> IAT while every control host
// keeps running the IAT engine untouched.
func TestFleetPolicyChangeRollsBack(t *testing.T) {
	t.Cleanup(func() { SetExec(Exec{}) })
	SetExec(Exec{Jobs: 4})
	o := testFleetOpts()
	o.Hosts = 8
	o.Storm = "heavy"
	o.Policy = "greedy"
	rep, hosts, err := RunFleet(nil, o)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.RolledBack {
		t.Fatal("stormed policy-change canary did not roll back")
	}
	want := []string{"iat", "greedy", "iat"}
	got := hosts[0].PolicyHistory()
	if len(got) != len(want) {
		t.Fatalf("canary policy history = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("canary policy history = %v, want %v", got, want)
		}
	}
	// The rollback must revert the canary's engine, not just its label.
	if k := hosts[0].Daemon.Policy().Kind(); k != policy.KindIAT {
		t.Errorf("canary daemon ended on engine %v, want IAT after rollback", k)
	}
	for _, h := range hosts[1:] {
		hist := h.PolicyHistory()
		if len(hist) != 1 || hist[0] != "iat" {
			t.Errorf("%s policy history = %v, want [iat] only", h.Name, hist)
		}
		if k := h.Daemon.Policy().Kind(); k != policy.KindIAT {
			t.Errorf("%s daemon runs engine %v, want IAT", h.Name, k)
		}
	}
}

// TestFleetPolicyChangePromotes is the happy path of an engine rollout:
// with no storm the change bakes clean and every host's daemon ends on
// the new engine.
func TestFleetPolicyChangePromotes(t *testing.T) {
	t.Cleanup(func() { SetExec(Exec{}) })
	SetExec(Exec{Jobs: 2})
	o := testFleetOpts()
	o.Policy = "static:2"
	rep, hosts, err := RunFleet(nil, o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RolledBack {
		t.Fatal("storm-free engine rollout rolled back")
	}
	for _, h := range hosts {
		if h.Policy() != "static:2" {
			t.Errorf("%s ended on %q, want static:2", h.Name, h.Policy())
		}
		if k := h.Daemon.Policy().Kind(); k != policy.KindStatic {
			t.Errorf("%s daemon runs engine %v, want static", h.Name, k)
		}
	}
}

// TestFleetShadowsAttach: with Shadow set, every host daemon carries a
// shadow evaluator that actually ticked, and its divergence counters
// landed in the host's telemetry registry.
func TestFleetShadowsAttach(t *testing.T) {
	t.Cleanup(func() { SetExec(Exec{}) })
	SetExec(Exec{Jobs: 2})
	o := testFleetOpts()
	o.Rounds = 3
	o.Shadow = "static:2,greedy"
	_, hosts, err := RunFleet(nil, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hosts {
		ev := h.Daemon.Shadows()
		if ev == nil || ev.Empty() {
			t.Fatalf("%s has no shadow evaluator", h.Name)
		}
		sums := ev.Summaries()
		if len(sums) != 2 || sums[0].Name != "static:2" || sums[1].Name != "greedy" {
			t.Fatalf("%s shadow summaries = %+v", h.Name, sums)
		}
		for _, s := range sums {
			if s.Ticks == 0 {
				t.Errorf("%s shadow %s never ticked", h.Name, s.Name)
			}
		}
	}
}

func TestFleetTopologies(t *testing.T) {
	for _, topo := range TopologyNames() {
		names := map[string]bool{}
		for id := 0; id < 8; id++ {
			name, _, err := mixFor(topo, id)
			if err != nil {
				t.Fatal(err)
			}
			names[name] = true
		}
		if topo == "uniform" && len(names) != 1 {
			t.Errorf("uniform topology has %d mixes", len(names))
		}
		if topo != "uniform" && len(names) < 2 {
			t.Errorf("%s topology has %d mixes, want >= 2", topo, len(names))
		}
	}
	if _, _, err := mixFor("mesh", 0); err == nil {
		t.Error("unknown topology accepted")
	}
}
