package exp

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// goldenFile pins the byte-exact outputs of representative fig3, fig11
// and chaos rows (CSV and telemetry snapshots) to the hashes produced by
// the pre-optimisation code paths. The hot-path rewrites (sentinel-tag
// probes, packed victim scans, memoized mask resolution, zero-alloc
// stepping) must be invisible at every output byte; any optimisation
// that shifts a single simulated trajectory fails this test before it
// can reach the determinism smokes.
//
// Regenerate (only for an intentional, reviewed behaviour change):
//
//	IATSIM_UPDATE_GOLDEN=1 go test ./internal/exp -run TestGoldenOutputsMatchPreOptimizationPaths
const goldenFile = "testdata/golden-output-hashes.txt"

// goldenHash is the one canonical digest: SHA-256, hex.
func goldenHash(data []byte) string {
	h := sha256.Sum256(data)
	return hex.EncodeToString(h[:])
}

// goldenFig3Opts is a scaled-down Fig. 3 sweep: one packet size, two
// ring sizes, coarse RFC2544 tolerance so the binary search stays short.
func goldenFig3Opts() Fig3Opts {
	o := DefaultFig3Opts()
	o.Sizes = []int{64}
	o.Rings = []int{64, 256}
	o.WarmNS, o.MeasureNS = 0.05e9, 0.1e9
	o.Tol = 0.1
	return o
}

// goldenFig11Opts compresses the Fig. 11 three-phase timeline enough for
// a unit test while still driving the daemon through real transitions.
func goldenFig11Opts() Fig10Opts {
	o := DefaultFig10Opts()
	o.Phase1NS, o.Phase2NS, o.Phase3NS = 0.4e9, 0.4e9, 0.4e9
	o.IntervalNS = 0.1e9
	return o
}

// goldenChaosOpts is one fault-free and one at-rate chaos pair.
func goldenChaosOpts() ChaosOpts {
	o := DefaultChaosOpts()
	o.Scales = []float64{0, 1}
	o.WarmNS, o.MeasureNS = 0.8e9, 0.4e9
	return o
}

// runGoldenOutputs executes the three runners at the canonical seed and
// returns every output artifact keyed by a stable name: the rendered CSV
// row bytes plus each per-job telemetry snapshot file (fig11 and chaos
// publish snapshots through the harness; fig3 has none).
func runGoldenOutputs(t *testing.T, jobs int) map[string][]byte {
	t.Helper()
	telDir := t.TempDir()
	SetExec(Exec{Jobs: jobs, Seed: 42, TelemetryDir: telDir})
	out := map[string][]byte{}

	csvBytes := func(rows any) []byte {
		var buf bytes.Buffer
		if err := WriteRowsCSV(&buf, rows); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	fig3 := RunFig3(io.Discard, goldenFig3Opts())
	if len(fig3) != 2 {
		t.Fatalf("fig3 rows = %d, want 2", len(fig3))
	}
	out["fig3.csv"] = csvBytes(fig3)

	fig11 := RunFig11(io.Discard, goldenFig11Opts())
	if len(fig11) == 0 {
		t.Fatal("fig11 produced no samples")
	}
	out["fig11.csv"] = csvBytes(fig11)

	chaos := RunChaos(io.Discard, goldenChaosOpts())
	if len(chaos) != 4 {
		t.Fatalf("chaos rows = %d, want 4", len(chaos))
	}
	out["chaos.csv"] = csvBytes(chaos)

	entries, err := os.ReadDir(telDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(telDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out["tel/"+e.Name()] = data
	}
	return out
}

// renderGoldenHashes formats the artifact digests as sorted
// "name hash" lines, the committed testdata format.
func renderGoldenHashes(arts map[string][]byte) string {
	names := make([]string, 0, len(arts))
	for name := range arts {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%s %s\n", name, goldenHash(arts[name]))
	}
	return b.String()
}

// TestGoldenOutputsMatchPreOptimizationPaths is the pre/post
// differential gate of the hot-path performance pass: fig3, fig11 and
// chaos rows — CSV bytes and telemetry snapshots — run at a fixed seed
// must hash exactly to the values recorded from the unoptimised code.
// It runs under -race (race_on_test.go builds this package's tests with
// the detector in CI via `make race`), so the comparison also holds with
// the memory model fully instrumented.
func TestGoldenOutputsMatchPreOptimizationPaths(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test: simulates several seconds of platform time")
	}
	t.Cleanup(func() { SetExec(Exec{}) })

	got := renderGoldenHashes(runGoldenOutputs(t, 4))

	if os.Getenv("IATSIM_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFile, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden hashes regenerated at %s", goldenFile)
		return
	}

	want, err := os.ReadFile(goldenFile)
	if err != nil {
		t.Fatalf("missing golden data (%v); regenerate with IATSIM_UPDATE_GOLDEN=1 from known-good code", err)
	}
	if string(want) == got {
		return
	}
	// Report exactly which artifacts moved, not just that bytes differ.
	parse := func(s string) map[string]string {
		m := map[string]string{}
		for _, line := range strings.Split(strings.TrimSpace(s), "\n") {
			if name, hash, ok := strings.Cut(line, " "); ok {
				m[name] = hash
			}
		}
		return m
	}
	wantH, gotH := parse(string(want)), parse(got)
	for name, h := range wantH {
		switch g, ok := gotH[name]; {
		case !ok:
			t.Errorf("%s: artifact missing from this run", name)
		case g != h:
			t.Errorf("%s: output bytes changed (hash %s -> %s)", name, h[:12], g[:12])
		}
	}
	for name := range gotH {
		if _, ok := wantH[name]; !ok {
			t.Errorf("%s: new artifact not in golden set", name)
		}
	}
	t.Fatal("optimised code paths changed simulated outputs; if intentional, regenerate with IATSIM_UPDATE_GOLDEN=1")
}

// TestGoldenHashesStableAcrossWorkerCounts proves the golden comparison
// itself is scheduling-independent: jobs=4 and jobs=1 must hash
// identically, otherwise a golden failure could be blamed on worker
// count rather than a real trajectory change.
func TestGoldenHashesStableAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test: simulates several seconds of platform time")
	}
	t.Cleanup(func() { SetExec(Exec{}) })

	par := renderGoldenHashes(runGoldenOutputs(t, 4))
	seq := renderGoldenHashes(runGoldenOutputs(t, 1))
	if par != seq {
		t.Fatalf("golden hashes depend on worker count:\n--- jobs=4 ---\n%s--- jobs=1 ---\n%s", par, seq)
	}
}
