// Package exp implements the paper's evaluation: one runner per table and
// figure (Figs. 3, 4, 8–15; Tables I–II), each rebuilding the corresponding
// experiment on the simulated platform and emitting the same rows/series
// the paper reports. cmd/experiments and the repository-root benchmarks are
// thin wrappers over this package.
package exp

import (
	"iatsim/internal/cache"
	"iatsim/internal/mem"
	"iatsim/internal/sim"
)

// Snapshot captures the platform counters at one instant.
type Snapshot struct {
	TimeNS float64
	LLC    cache.SliceStats
	Mem    mem.Stats
	Instr  []uint64
	Cycles []uint64
	Refs   []uint64
	Miss   []uint64
}

// Snap reads a snapshot from p.
func Snap(p *sim.Platform) Snapshot {
	n := p.Cfg.Cores
	s := Snapshot{
		TimeNS: p.NowNS(),
		LLC:    p.Hier.LLC().TotalStats(),
		Mem:    p.Mem.Stats(),
		Instr:  make([]uint64, n),
		Cycles: make([]uint64, n),
		Refs:   make([]uint64, n),
		Miss:   make([]uint64, n),
	}
	for c := 0; c < n; c++ {
		s.Instr[c] = p.CoreInstr(c)
		s.Cycles[c] = p.CoreCycles(c)
		s.Refs[c] = p.Hier.LLC().CoreRefs(c)
		s.Miss[c] = p.Hier.LLC().CoreMisses(c)
	}
	return s
}

// Window is the difference between two snapshots with rate helpers.
type Window struct {
	A, B Snapshot
}

// Measure runs p for durNS and returns the enclosing window.
func Measure(p *sim.Platform, durNS float64) Window {
	a := Snap(p)
	p.Run(durNS)
	return Window{A: a, B: Snap(p)}
}

// Seconds returns the window length in (simulated) seconds.
func (w Window) Seconds() float64 { return (w.B.TimeNS - w.A.TimeNS) / 1e9 }

// DDIOHitPS returns chip-wide DDIO write updates per second.
func (w Window) DDIOHitPS() float64 {
	return float64(w.B.LLC.DDIOHits-w.A.LLC.DDIOHits) / w.Seconds()
}

// DDIOMissPS returns chip-wide DDIO write allocates per second.
func (w Window) DDIOMissPS() float64 {
	return float64(w.B.LLC.DDIOMisses-w.A.LLC.DDIOMisses) / w.Seconds()
}

// MemGBps returns memory bandwidth consumption in GB/s of simulated time.
func (w Window) MemGBps() float64 {
	return float64(w.B.Mem.Total()-w.A.Mem.Total()) / (w.B.TimeNS - w.A.TimeNS)
}

// IPC returns the aggregate instructions per cycle of the given cores.
func (w Window) IPC(cores ...int) float64 {
	var di, dc uint64
	for _, c := range cores {
		di += w.B.Instr[c] - w.A.Instr[c]
		dc += w.B.Cycles[c] - w.A.Cycles[c]
	}
	if dc == 0 {
		return 0
	}
	return float64(di) / float64(dc)
}

// Cycles returns the cycles spent by the given cores in the window.
func (w Window) Cycles(cores ...int) uint64 {
	var dc uint64
	for _, c := range cores {
		dc += w.B.Cycles[c] - w.A.Cycles[c]
	}
	return dc
}

// LLCMissPS returns the LLC demand misses per second of the given cores.
func (w Window) LLCMissPS(cores ...int) float64 {
	var dm uint64
	for _, c := range cores {
		dm += w.B.Miss[c] - w.A.Miss[c]
	}
	return float64(dm) / w.Seconds()
}

// LLCRefsPS returns the LLC demand references per second of the given cores.
func (w Window) LLCRefsPS(cores ...int) float64 {
	var dr uint64
	for _, c := range cores {
		dr += w.B.Refs[c] - w.A.Refs[c]
	}
	return float64(dr) / w.Seconds()
}
