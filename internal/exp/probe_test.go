package exp

import (
	"testing"

	"iatsim/internal/cache"
	"iatsim/internal/sim"
)

// spin burns all budget at the base CPI.
type spin struct{}

func (spin) Run(ctx *sim.Ctx) {
	for ctx.Remaining() > 0 {
		ctx.Compute(1000)
	}
}

func probePlatform(t *testing.T) *sim.Platform {
	t.Helper()
	cfg := sim.XeonGold6140(100)
	cfg.Cores = 2
	cfg.Hier = cache.HierarchyConfig{
		Cores: 2,
		L1:    cache.LevelConfig{SizeBytes: 4 << 10, Ways: 4, HitCycles: 4},
		L2:    cache.LevelConfig{SizeBytes: 32 << 10, Ways: 8, HitCycles: 14},
		LLC:   cache.LLCConfig{Slices: 2, Ways: 8, SetsPerSlice: 64, HitCycles: 44},
	}
	p := sim.NewPlatform(cfg)
	if err := p.AddTenant(&sim.Tenant{Name: "s", Cores: []int{0}, CLOS: 1, Workers: []sim.Worker{spin{}}}); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestWindowSecondsAndIPC(t *testing.T) {
	p := probePlatform(t)
	win := Measure(p, 10e6)
	if s := win.Seconds(); s < 0.0099 || s > 0.0101 {
		t.Fatalf("window seconds = %v", s)
	}
	// Compute-only spinner at BaseCPI 0.5: IPC ~2.
	if ipc := win.IPC(0); ipc < 1.9 || ipc > 2.1 {
		t.Fatalf("IPC = %v", ipc)
	}
	if win.Cycles(0) == 0 {
		t.Fatal("no cycles measured")
	}
	// The idle core contributes nothing.
	if win.IPC(1) != 0 || win.Cycles(1) != 0 {
		t.Fatal("idle core shows activity")
	}
}

func TestWindowRatesStartAtZero(t *testing.T) {
	p := probePlatform(t)
	win := Measure(p, 5e6)
	if win.DDIOHitPS() != 0 || win.DDIOMissPS() != 0 {
		t.Fatal("no-I/O platform shows DDIO activity")
	}
	if win.LLCRefsPS(0) != 0 || win.LLCMissPS(0) != 0 {
		t.Fatal("compute-only spinner shows LLC traffic")
	}
	if win.MemGBps() < 0 {
		t.Fatal("negative bandwidth")
	}
}

func TestSnapshotConsistency(t *testing.T) {
	p := probePlatform(t)
	a := Snap(p)
	p.Run(2e6)
	b := Snap(p)
	if b.TimeNS <= a.TimeNS {
		t.Fatal("time did not advance")
	}
	if b.Instr[0] <= a.Instr[0] {
		t.Fatal("instructions did not advance")
	}
	if len(a.Instr) != p.Cfg.Cores || len(a.Refs) != p.Cfg.Cores {
		t.Fatal("snapshot core arrays sized wrong")
	}
}
