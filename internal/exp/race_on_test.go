//go:build race

package exp

// raceEnabled gates the full-physics integration tests: under the race
// detector they exceed reasonable budgets (each simulates seconds of
// platform time), and they exercise no concurrency of their own — the
// harness's parallelism is covered by TestParallelRowsMatchSequential,
// which does run under -race.
const raceEnabled = true
