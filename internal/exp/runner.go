package exp

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"

	"iatsim/internal/harness"
)

// Exec is the package-wide execution policy for the figure and ablation
// runners: how many sweep points run concurrently, the base RNG seed,
// and where progress and the run manifest go. The zero value is the
// default: one worker per CPU, canonical seeds, no progress, no
// manifest. Results are identical at any worker count (each point
// builds its own platform; the harness reassembles rows in submission
// order), so callers only set this to tune speed or observability.
type Exec struct {
	// Jobs bounds the worker pool; <= 0 means runtime.GOMAXPROCS(0).
	Jobs int
	// Seed is the base RNG seed; 0 selects the canonical reproduction
	// seeds (the committed results/ CSVs).
	Seed int64
	// Retries re-runs failed sweep points.
	Retries int
	// Progress, when non-nil, receives the harness's live status line.
	Progress io.Writer
	// Manifest, when non-nil, accumulates per-job timings and
	// failures across runners.
	Manifest *harness.Manifest
	// TelemetryDir, when non-empty, collects a per-job telemetry
	// snapshot (for runners migrated to harness.Job.TelFn) into
	// <TelemetryDir>/<job name>.{json,csv,trace.json}.
	TelemetryDir string
}

var (
	execMu  sync.RWMutex
	execCfg Exec
)

// SetExec installs the execution policy for subsequent runner calls
// (cmd/experiments sets it once from its flags).
func SetExec(e Exec) {
	execMu.Lock()
	execCfg = e
	execMu.Unlock()
}

// CurrentExec returns the installed execution policy.
func CurrentExec() Exec {
	execMu.RLock()
	defer execMu.RUnlock()
	return execCfg
}

// jobSeed derives the seed for a named sweep point under the current
// base seed (0 ⇒ 0: the scenarios use their historical constants).
func jobSeed(name string) int64 {
	return harness.DeriveSeed(CurrentExec().Seed, name)
}

// runJobs executes a job set under the current Exec policy and
// collects the surviving rows in submission order. A job may return an
// R or a []R (time-series runners). Failed jobs are reported on stderr
// and in the manifest; their rows are skipped so one crashed point
// cannot kill the whole regeneration.
func runJobs[R any](jobs []harness.Job) []R {
	e := CurrentExec()
	rep := harness.Run(jobs, harness.Options{
		Workers:      e.Jobs,
		Retries:      e.Retries,
		Progress:     e.Progress,
		TelemetryDir: e.TelemetryDir,
	})
	if e.Manifest != nil {
		e.Manifest.Append(rep)
	}
	var rows []R
	for i := range rep.Results {
		res := &rep.Results[i]
		if res.Failed() {
			fmt.Fprintf(os.Stderr, "exp: job %s failed after %d attempt(s): %s\n",
				res.Name, res.Attempts, firstLine(res.Err))
			continue
		}
		if v, ok := res.Row.(R); ok {
			rows = append(rows, v)
		} else if vs, ok := res.Row.([]R); ok {
			rows = append(rows, vs...)
		}
	}
	return rows
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
