package exp

import (
	"errors"
	"io"
	"reflect"
	"testing"

	"iatsim/internal/harness"
)

func TestRunJobsCollectsRowsAndSlices(t *testing.T) {
	jobs := []harness.Job{
		{Name: "a", Fn: func() (any, error) { return Fig3Row{PktSize: 64}, nil }},
		{Name: "b", Fn: func() (any, error) { return nil, errors.New("nope") }},
		{Name: "c", Fn: func() (any, error) {
			return []Fig3Row{{PktSize: 128}, {PktSize: 256}}, nil
		}},
	}
	rows := runJobs[Fig3Row](jobs)
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 (failed job skipped, slice flattened)", len(rows))
	}
	if rows[0].PktSize != 64 || rows[1].PktSize != 128 || rows[2].PktSize != 256 {
		t.Fatalf("rows out of order: %+v", rows)
	}
}

func TestRunJobsSurvivesPanickingPoint(t *testing.T) {
	jobs := []harness.Job{
		{Name: "crash", Fn: func() (any, error) { panic("simulated point crash") }},
		{Name: "fine", Fn: func() (any, error) { return Fig3Row{PktSize: 1500}, nil }},
	}
	rows := runJobs[Fig3Row](jobs)
	if len(rows) != 1 || rows[0].PktSize != 1500 {
		t.Fatalf("crashed point took out the run: %+v", rows)
	}
}

// TestParallelRowsMatchSequential is the tier-1 determinism check (run
// it under -race too): one figure at 8 workers must produce rows equal
// to the 1-worker run, with canonical and non-zero base seeds alike.
func TestParallelRowsMatchSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	t.Cleanup(func() { SetExec(Exec{}) })
	o := DefaultFig4Opts()
	o.WorkingSets = []int{4, 8}
	o.WarmNS, o.MeasureNS = 0.2e9, 0.2e9

	for _, seed := range []int64{0, 7} {
		SetExec(Exec{Jobs: 1, Seed: seed})
		seq := RunFig4(io.Discard, o)
		SetExec(Exec{Jobs: 8, Seed: seed})
		par := RunFig4(io.Discard, o)
		if len(seq) != 4 {
			t.Fatalf("seed %d: rows = %d, want 4", seed, len(seq))
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("seed %d: jobs=8 diverged from jobs=1:\n seq: %+v\n par: %+v", seed, seq, par)
		}
	}
}
