package exp

import (
	"iatsim/internal/cache"
	"iatsim/internal/nic"
	"iatsim/internal/pkt"
	"iatsim/internal/sim"
	"iatsim/internal/tgen"
	"iatsim/internal/workload"
)

// mustTenant registers t on p or panics (scenario construction is
// programmer-controlled; failures are bugs, not runtime conditions).
func mustTenant(p *sim.Platform, t *sim.Tenant) {
	if err := p.AddTenant(t); err != nil {
		panic(err)
	}
}

// mustMask programs a CLOS mask or panics.
func mustMask(p *sim.Platform, clos int, m cache.WayMask) {
	if err := p.RDT.SetCLOSMask(clos, m); err != nil {
		panic(err)
	}
}

// LeakyScenario is the aggregation-model setup of the paper's Leaky DMA
// microbenchmark (Sec. VI-B, Figs. 8 and 9): two NICs attached to an OVS
// virtual switch on two dedicated cores with two dedicated LLC ways, and two
// testpmd containers (two dedicated cores, one dedicated way each) bouncing
// the traffic back, all at line rate.
type LeakyScenario struct {
	P     *sim.Platform
	OVS   *workload.OVS
	Devs  [2]*nic.Device
	Ports [2]*nic.VirtioPort
	Gens  [2]*tgen.Generator

	// OVSCores are the switch's cores (for IPC / CPP measurement).
	OVSCores []int
}

// LeakyOpts parameterises the scenario.
type LeakyOpts struct {
	Scale    float64
	PktSize  int
	Flows    int     // distinct flows per NIC (1 in Fig. 8, swept in Fig. 9)
	RatePPS  float64 // offered rate per NIC (0 = line rate for PktSize)
	RingSize int     // NIC ring entries (0 = 1024, the paper's default)
	Seed     int64   // RNG seed offset (0 = the canonical seeds)
}

// NewLeakyScenario assembles the platform. Call Run/Measure on .P.
func NewLeakyScenario(o LeakyOpts) *LeakyScenario {
	if o.Scale == 0 {
		o.Scale = 100
	}
	if o.PktSize == 0 {
		o.PktSize = 64
	}
	if o.Flows == 0 {
		o.Flows = 1
	}
	if o.RingSize == 0 {
		o.RingSize = 1024
	}
	if o.RatePPS == 0 {
		o.RatePPS = tgen.LineRatePPS(40, o.PktSize)
	}
	p := sim.NewPlatform(sim.XeonGold6140(o.Scale))
	s := &LeakyScenario{P: p, OVSCores: []int{0, 1}}

	ovs := workload.NewOVS(2*o.Flows, p.Alloc)
	s.OVS = ovs
	for i := 0; i < 2; i++ {
		dev := p.AddDevice(nic.Config{Name: devName(i), RxEntries: o.RingSize, VFs: 1})
		vf := dev.VF(0)
		vf.ConsumerCore = i // the OVS worker core that polls it
		s.Devs[i] = dev
		port := nic.NewVirtioPort(portName(i), 1024, p.Alloc)
		s.Ports[i] = port
		ovs.NICPorts = append(ovs.NICPorts, vf)
		ovs.VirtioPorts = append(ovs.VirtioPorts, port)
	}
	// OVS rules: NICi <-> containeri (the four rules of Sec. VI-B).
	ovs.RouteNIC = func(i int, _ pkt.Flow) int { return i }
	ovs.RouteVirtio = func(i int, _ pkt.Flow) int { return i }

	// CAT: OVS two ways, containers one way each (Fig. 8 setup).
	mustMask(p, 1, cache.ContiguousMask(0, 2))
	mustMask(p, 2, cache.ContiguousMask(2, 1))
	mustMask(p, 3, cache.ContiguousMask(3, 1))

	mustTenant(p, &sim.Tenant{
		Name: "ovs", Cores: []int{0, 1}, CLOS: 1, Priority: sim.Stack, IsIO: true,
		Workers: []sim.Worker{ovs.Worker([]int{0}, []int{0}), ovs.Worker([]int{1}, []int{1})},
	})
	for i := 0; i < 2; i++ {
		port := s.Ports[i]
		mustTenant(p, &sim.Tenant{
			Name: containerName(i), Cores: []int{2 + 2*i, 3 + 2*i}, CLOS: 2 + i,
			Priority: sim.PerformanceCritical, IsIO: true,
			Workers: []sim.Worker{workload.NewVirtioBounce(port), workload.NewVirtioBounce(port)},
		})
	}
	for i := 0; i < 2; i++ {
		flows := pkt.NewFlowSet(o.Flows, uint16(i), uint64(100+i)+uint64(o.Seed))
		g := tgen.NewGenerator(p.GeneratorRate(o.RatePPS), o.PktSize, flows, int64(42+i)+o.Seed)
		s.Gens[i] = g
		p.AttachGenerator(g, s.Devs[i], 0)
	}
	return s
}

func devName(i int) string       { return [2]string{"nic0", "nic1"}[i] }
func portName(i int) string      { return [2]string{"vport0", "vport1"}[i] }
func containerName(i int) string { return [2]string{"container0", "container1"}[i] }

// OVSPackets returns the switch's cumulative forwarded packet count.
func (s *LeakyScenario) OVSPackets() uint64 { return s.OVS.Stats().Packets }
