package exp

import (
	"fmt"
	"io"

	"iatsim/internal/core"
	"iatsim/internal/sim"
)

// PrintTable1 prints Table I: the simulated CPU configuration.
func PrintTable1(w io.Writer) {
	cfg := sim.XeonGold6140(1)
	h := cfg.Hier
	fmt.Fprintf(w, "Table I — simulated Intel Xeon Gold 6140 configuration\n")
	fmt.Fprintf(w, "  Cores   %d cores, %.1fGHz\n", cfg.Cores, cfg.FreqGHz)
	fmt.Fprintf(w, "  Caches  %d-way %dKB L1D (%d cy)\n", h.L1.Ways, h.L1.SizeBytes>>10, h.L1.HitCycles)
	fmt.Fprintf(w, "          %d-way %dMB L2 (%d cy)\n", h.L2.Ways, h.L2.SizeBytes>>20, h.L2.HitCycles)
	fmt.Fprintf(w, "          %d-way %.2fMB non-inclusive shared LLC (%d slices, %d cy)\n",
		h.LLC.Ways, float64(h.LLC.SizeBytes())/(1<<20), h.LLC.Slices, h.LLC.HitCycles)
	fmt.Fprintf(w, "  Memory  %.0f GB/s aggregate (six DDR4-2666 channels), %.0fns unloaded\n",
		cfg.Mem.BandwidthGBps, cfg.Mem.BaseLatencyNS)
}

// PrintTable2 prints Table II: the IAT parameters.
func PrintTable2(w io.Writer) {
	p := core.DefaultParams()
	fmt.Fprintf(w, "Table II — IAT parameters\n")
	fmt.Fprintf(w, "  THRESHOLD_STABLE    %.0f%%\n", p.ThresholdStable*100)
	fmt.Fprintf(w, "  THRESHOLD_MISS_LOW  %.0fM/s\n", p.ThresholdMissLowPerSec/1e6)
	fmt.Fprintf(w, "  DDIO_WAYS_MIN/MAX   %d/%d\n", p.DDIOWaysMin, p.DDIOWaysMax)
	fmt.Fprintf(w, "  Sleep interval      %.0fs\n", p.IntervalNS/1e9)
}
