package exp

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"iatsim/internal/telemetry"
)

// readDir loads every file in dir keyed by base name.
func readDir(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]byte{}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = data
	}
	return out
}

// TestSameSeedByteIdenticalSnapshots extends the determinism guarantee
// to the telemetry plane: a figure run with -telemetry must produce
// byte-identical snapshot files (JSON, CSV, and Chrome trace) for the
// same seed at any worker count. Runs under -race: each parallel job
// owns a private registry, so this also proves telemetry adds no shared
// state to the harness.
func TestSameSeedByteIdenticalSnapshots(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	t.Cleanup(func() { SetExec(Exec{}) })
	o := DefaultFig8Opts()
	o.Sizes = []int{64}
	o.WarmNS, o.MeasureNS = 0.1e9, 0.1e9

	render := func(seed int64, jobs int) map[string][]byte {
		dir := t.TempDir()
		SetExec(Exec{Jobs: jobs, Seed: seed, TelemetryDir: dir})
		if rows := RunFig8(io.Discard, o); len(rows) != 2 {
			t.Fatalf("rows = %d, want 2 (baseline + iat)", len(rows))
		}
		files := readDir(t, dir)
		// 2 jobs x {json, csv, trace.json}.
		if len(files) != 6 {
			t.Fatalf("snapshot dir holds %d files, want 6: %v", len(files), files)
		}
		return files
	}

	first := render(42, 4)
	second := render(42, 4)
	sequential := render(42, 1)
	for name, data := range first {
		if !bytes.Equal(data, second[name]) {
			t.Errorf("same seed, same jobs: %s diverged", name)
		}
		if !bytes.Equal(data, sequential[name]) {
			t.Errorf("same seed, jobs=4 vs jobs=1: %s diverged", name)
		}
	}
	// A different seed must actually change the telemetry.
	other := render(7, 4)
	changed := false
	for name, data := range first {
		if !bytes.Equal(data, other[name]) {
			changed = true
		}
		_ = name
	}
	if !changed {
		t.Fatal("different seeds produced identical snapshots: seed is not reaching the instrumentation")
	}
}

// TestFigureSnapshotContents spot-checks that a harness-collected
// snapshot is valid and actually covers the instrumented layers.
func TestFigureSnapshotContents(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	t.Cleanup(func() { SetExec(Exec{}) })
	o := DefaultFig8Opts()
	o.Sizes = []int{64}
	o.WarmNS, o.MeasureNS = 0.1e9, 0.1e9
	o.IntervalNS = 0.05e9 // several daemon iterations within the short run
	dir := t.TempDir()
	SetExec(Exec{Jobs: 1, TelemetryDir: dir})
	if rows := RunFig8(io.Discard, o); len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}

	snap, err := telemetry.ReadSnapshotFile(filepath.Join(dir, "fig8_pkt_64_iat.json"))
	if err != nil {
		t.Fatal(err)
	}
	subsystems := map[string]bool{}
	for _, m := range snap.Metrics {
		subsystems[m.Subsystem] = true
	}
	for _, want := range []string{"cache", "ddio", "mem", "nic"} {
		if !subsystems[want] {
			t.Errorf("snapshot has no %q metrics (got %v)", want, subsystems)
		}
	}
	// The IAT run must carry daemon iteration events in the ring.
	if evs := snapEvents(snap, "daemon"); len(evs) == 0 {
		t.Error("iat snapshot has no daemon events")
	}
	// The Chrome trace alongside it must be structurally loadable.
	data, err := os.ReadFile(filepath.Join(dir, "fig8_pkt_64_iat.trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateChromeTrace(data); err != nil {
		t.Fatal(err)
	}
}

func snapEvents(s *telemetry.Snapshot, subsystem string) []telemetry.Event {
	var out []telemetry.Event
	for _, ev := range s.Events {
		if ev.Subsystem == subsystem {
			out = append(out, ev)
		}
	}
	return out
}
