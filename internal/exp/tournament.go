package exp

import (
	"fmt"
	"io"
	"sort"

	"iatsim/internal/bridge"
	"iatsim/internal/core"
	"iatsim/internal/faults"
	"iatsim/internal/harness"
	"iatsim/internal/policy"
	"iatsim/internal/telemetry"
)

// TournamentRow is one cell of the policy tournament: one allocation
// policy driving the Leaky DMA scenario under one workload mix and one
// ambient fault profile. Rank is the policy's standing within its
// (workload, faults) cell, 1 = best by I/O-core IPC — the paper's
// compute-interference headline metric.
type TournamentRow struct {
	Workload string
	Faults   string
	Policy   string
	Rank     int

	OVSIPC     float64 // ranking metric: aggregate IPC of the OVS cores
	DDIOHitPS  float64
	DDIOMissPS float64
	MemGBps    float64

	DDIOWays   int
	FinalState string
	Unstable   uint64 // reallocation iterations (mask churn)
	Degraded   bool
	Rejects    uint64 // counter samples the sanity screen discarded
}

// TournamentOpts parameterises the tournament grid.
type TournamentOpts struct {
	Scale      float64
	Policies   []string // policy specs competing (policy.ParseSpec syntax)
	Workloads  []string // fleet mix names (see fleetMixes)
	Profiles   []string // ambient fault profiles ("off" = fault-free)
	WarmNS     float64
	MeasureNS  float64
	IntervalNS float64
}

// DefaultTournamentOpts enters every shipped policy engine against the
// three fleet workload mixes across a fault-severity ladder.
func DefaultTournamentOpts() TournamentOpts {
	return TournamentOpts{
		Scale:      100,
		Policies:   []string{"iat", "static:2", "ioca", "greedy"},
		Workloads:  []string{"pkt1500", "pkt512", "flows64"},
		Profiles:   []string{"off", "light", "default"},
		WarmNS:     1.6e9,
		MeasureNS:  0.8e9,
		IntervalNS: 0.2e9,
	}
}

// mixByName resolves a fleet mix name to its LeakyOpts shape.
func mixByName(name string) (LeakyOpts, error) {
	for _, m := range fleetMixes {
		if m.name == name {
			return m.opts, nil
		}
	}
	return LeakyOpts{}, fmt.Errorf("exp: unknown workload mix %q", name)
}

// RunPolicyTournament sweeps policies × workloads × fault profiles over
// the Leaky DMA scenario and ranks the policies within each (workload,
// faults) cell by I/O-core IPC. Every cell is an independent job with a
// name-derived seed, so rows are byte-identical at any -jobs value; the
// ranking is computed after the sweep from the returned rows alone.
func RunPolicyTournament(w io.Writer, o TournamentOpts) []TournamentRow {
	type cell struct {
		mix  LeakyOpts
		prof faults.Profile
		spec policy.Spec
	}
	var jobs []harness.Job
	for _, mixName := range o.Workloads {
		mix, err := mixByName(mixName)
		if err != nil {
			panic(err) // cmd/experiments validates selectors before running
		}
		for _, profName := range o.Profiles {
			prof, err := faults.ProfileByName(profName)
			if err != nil {
				panic(err)
			}
			for _, polName := range o.Policies {
				spec, err := policy.ParseSpec(polName)
				if err != nil {
					panic(err)
				}
				c := cell{mix: mix, prof: prof, spec: spec}
				mixName, profName, polName := mixName, profName, polName
				name := fmt.Sprintf("tournament/%s/%s/%s", mixName, profName, polName)
				seed := jobSeed(name)
				jobs = append(jobs, harness.Job{
					Name: name, Figure: "tournament", Seed: seed,
					TelFn: func(tel *telemetry.Registry) (any, *telemetry.Snapshot, error) {
						row, snap := runTournamentPoint(c.mix, c.prof, c.spec, seed, o, tel)
						row.Workload, row.Faults, row.Policy = mixName, profName, polName
						return row, snap, nil
					},
				})
			}
		}
	}
	rows := runJobs[TournamentRow](jobs)

	// Rank within each (workload, faults) cell by OVS IPC, descending;
	// ties keep entry order (the o.Policies order), so the ranking is as
	// deterministic as the rows themselves.
	byCell := map[string][]int{}
	var cellOrder []string
	for i, r := range rows {
		k := r.Workload + "\x00" + r.Faults
		if _, ok := byCell[k]; !ok {
			cellOrder = append(cellOrder, k)
		}
		byCell[k] = append(byCell[k], i)
	}
	ranked := make([]TournamentRow, 0, len(rows))
	for _, k := range cellOrder {
		idx := byCell[k]
		sort.SliceStable(idx, func(a, b int) bool {
			return rows[idx[a]].OVSIPC > rows[idx[b]].OVSIPC
		})
		for place, i := range idx {
			r := rows[i]
			r.Rank = place + 1
			ranked = append(ranked, r)
		}
	}

	if w != nil {
		fmt.Fprintf(w, "Policy tournament — %d policies × %d workloads × %d fault profiles (ranked by OVS IPC per cell)\n",
			len(o.Policies), len(o.Workloads), len(o.Profiles))
		fmt.Fprintf(w, "%8s %8s %9s %4s | %7s %12s %12s %9s | %5s %-10s %5s %4s\n",
			"mix", "faults", "policy", "rank", "ovsIPC", "ddioHit/s", "ddioMiss/s", "mem GB/s",
			"dWays", "state", "churn", "rej")
		for _, r := range ranked {
			fmt.Fprintf(w, "%8s %8s %9s %4d | %7.3f %12.3g %12.3g %9.2f | %5d %-10s %5d %4d\n",
				r.Workload, r.Faults, r.Policy, r.Rank,
				r.OVSIPC, r.DDIOHitPS, r.DDIOMissPS, r.MemGBps,
				r.DDIOWays, r.FinalState, r.Unstable, r.Rejects)
		}
		// Leaderboard: mean rank across cells, best first; ties break on
		// the o.Policies entry order via the stable sort.
		type standing struct {
			name  string
			total int
			cells int
		}
		standings := make([]standing, len(o.Policies))
		for i, p := range o.Policies {
			standings[i].name = p
		}
		pos := map[string]int{}
		for i, p := range o.Policies {
			pos[p] = i
		}
		for _, r := range ranked {
			s := &standings[pos[r.Policy]]
			s.total += r.Rank
			s.cells++
		}
		sort.SliceStable(standings, func(a, b int) bool {
			return standings[a].total*standings[b].cells < standings[b].total*standings[a].cells
		})
		fmt.Fprintf(w, "leaderboard:")
		for i, s := range standings {
			mean := 0.0
			if s.cells > 0 {
				mean = float64(s.total) / float64(s.cells)
			}
			fmt.Fprintf(w, " %d. %s (mean rank %.2f)", i+1, s.name, mean)
		}
		fmt.Fprintln(w)
	}
	return ranked
}

// runTournamentPoint runs one cell: the Leaky DMA scenario with a daemon
// on the chosen policy engine, the ambient fault profile armed after
// assembly (construction-time mask programming is not part of the fault
// surface), then warm + measure.
func runTournamentPoint(mix LeakyOpts, prof faults.Profile, spec policy.Spec, seed int64, o TournamentOpts, tel *telemetry.Registry) (TournamentRow, *telemetry.Snapshot) {
	lo := mix
	lo.Scale = o.Scale
	lo.Seed = seed
	s := NewLeakyScenario(lo)
	if tel != nil {
		s.P.AttachTelemetry(tel)
	}

	params := core.DefaultParams()
	params.IntervalNS = o.IntervalNS
	params.ThresholdMissLowPerSec /= o.Scale
	params.SaneRateMax /= o.Scale
	daemon, err := core.NewDaemon(bridge.NewSystem(s.P), params, core.Options{})
	if err != nil {
		panic(err)
	}
	if tel != nil {
		daemon.Tel = tel
	}
	if spec.Kind != policy.KindIAT {
		if err := daemon.SetPolicy(spec.New()); err != nil {
			panic(err)
		}
	}
	s.P.AddController(daemon)

	inj := faults.NewInjector(prof, seed+1)
	if prof.Active() {
		if tel != nil {
			inj.AttachTelemetry(tel, s.P.NowNS)
		}
		s.P.MSR.SetFaultHook(inj)
		for _, dev := range s.Devs {
			dev.SetFaults(inj)
		}
		s.P.SetPollFaults(inj)
	}

	s.P.Run(o.WarmNS)
	win := Measure(s.P, o.MeasureNS)

	h := daemon.Health()
	_, unstable := daemon.Iterations()
	row := TournamentRow{
		OVSIPC:     win.IPC(s.OVSCores...),
		DDIOHitPS:  win.DDIOHitPS() * o.Scale,
		DDIOMissPS: win.DDIOMissPS() * o.Scale,
		MemGBps:    win.MemGBps() * o.Scale,
		DDIOWays:   s.P.RDT.DDIOMask().Count(),
		FinalState: daemon.State().String(),
		Unstable:   unstable,
		Degraded:   h.Degraded,
		Rejects:    h.SampleRejects,
	}
	return row, tel.Snapshot(s.P.NowNS())
}
