package exp

import (
	"bytes"
	"strings"
	"testing"
)

// testTournamentOpts is a grid small and time-compressed enough for the
// race-enabled suite: two policies, one workload, fault-free vs default
// faults.
func testTournamentOpts() TournamentOpts {
	return TournamentOpts{
		Scale:      3200,
		Policies:   []string{"iat", "greedy"},
		Workloads:  []string{"pkt1500"},
		Profiles:   []string{"off", "default"},
		WarmNS:     0.4e9,
		MeasureNS:  0.2e9,
		IntervalNS: 0.05e9,
	}
}

// TestTournamentDeterministicAcrossWorkers is the tournament acceptance
// criterion: the ranked CSV is byte-identical at -jobs 1 and -jobs 8.
func TestTournamentDeterministicAcrossWorkers(t *testing.T) {
	t.Cleanup(func() { SetExec(Exec{}) })
	run := func(jobs int) string {
		SetExec(Exec{Jobs: jobs})
		rows := RunPolicyTournament(nil, testTournamentOpts())
		var buf bytes.Buffer
		if err := WriteRowsCSV(&buf, rows); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	csv1 := run(1)
	csv8 := run(8)
	if csv1 != csv8 {
		t.Errorf("tournament CSV differs between -jobs 1 and -jobs 8:\n--- jobs=1\n%s\n--- jobs=8\n%s", csv1, csv8)
	}
	if csv1 == "" {
		t.Fatal("empty tournament CSV")
	}
}

// TestTournamentRanking checks the ranking invariants: every (workload,
// faults) cell ranks each entered policy exactly once, 1..N, ordered by
// non-increasing OVS IPC.
func TestTournamentRanking(t *testing.T) {
	t.Cleanup(func() { SetExec(Exec{}) })
	SetExec(Exec{Jobs: 4})
	o := testTournamentOpts()
	rows := RunPolicyTournament(nil, o)
	if len(rows) != len(o.Policies)*len(o.Workloads)*len(o.Profiles) {
		t.Fatalf("got %d rows, want %d", len(rows), len(o.Policies)*len(o.Workloads)*len(o.Profiles))
	}
	cells := map[string][]TournamentRow{}
	for _, r := range rows {
		k := r.Workload + "/" + r.Faults
		cells[k] = append(cells[k], r)
	}
	for k, cell := range cells {
		if len(cell) != len(o.Policies) {
			t.Fatalf("cell %s has %d rows, want %d", k, len(cell), len(o.Policies))
		}
		seen := map[string]bool{}
		for i, r := range cell {
			if r.Rank != i+1 {
				t.Errorf("cell %s row %d has rank %d", k, i, r.Rank)
			}
			if i > 0 && cell[i-1].OVSIPC < r.OVSIPC {
				t.Errorf("cell %s not sorted by OVS IPC: %.4f before %.4f", k, cell[i-1].OVSIPC, r.OVSIPC)
			}
			seen[r.Policy] = true
		}
		for _, p := range o.Policies {
			if !seen[p] {
				t.Errorf("cell %s missing policy %s", k, p)
			}
		}
	}
}

// TestTournamentPrintsLeaderboard: the human-readable output ends with a
// leaderboard covering every entered policy.
func TestTournamentPrintsLeaderboard(t *testing.T) {
	t.Cleanup(func() { SetExec(Exec{}) })
	SetExec(Exec{Jobs: 4})
	o := testTournamentOpts()
	var out bytes.Buffer
	RunPolicyTournament(&out, o)
	s := out.String()
	if !strings.Contains(s, "leaderboard:") {
		t.Fatalf("output lacks leaderboard:\n%s", s)
	}
	for _, p := range o.Policies {
		if !strings.Contains(s, p) {
			t.Errorf("output never mentions policy %s", p)
		}
	}
}
