// Package faults is the deterministic fault-injection layer of the chaos
// harness: a seeded Injector that perturbs the MSR register file (write
// rejections, sticky bits), the uncore counter reads (zeroed, saturated,
// wrapped, and stale samples), the NIC datapath (descriptor drops, transmit
// stalls), and the management-plane polling cadence (skipped epochs).
//
// The production systems the paper targets see all of these: wrmsr can fail
// transiently under SMM interference, uncore counters glitch and wrap, and
// the daemon's 1s sleep is at the scheduler's mercy. The simulator is
// perfectly reliable, so robustness claims about the IAT daemon are vacuous
// unless the platform is made to misbehave on purpose — deterministically,
// so a failure found under `-chaos` reproduces byte-for-byte.
//
// Every decision comes from a private splitmix64 stream seeded per run (no
// wall clock, no global rand — the same determinism regime detlint enforces
// on every other internal package), and every injected fault is counted and
// optionally published through internal/telemetry.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the injectable fault classes.
//
//simlint:enum
type Kind int

// Fault kinds. The order is part of the profile-spec format (rates are
// stored per kind) but not of any on-disk format.
const (
	// MSRWriteReject fails a wrmsr outright: the register keeps its old
	// value and the caller sees an error (what a real EIO from the msr
	// driver looks like).
	MSRWriteReject Kind = iota
	// MSRSticky lets a wrmsr "succeed" while one set bit of the old
	// value refuses to clear — the silent partial-write failure mode
	// that only read-back verification can catch.
	MSRSticky
	// CounterZero serves a zero in place of a cumulative counter value.
	CounterZero
	// CounterSaturate serves an all-ones (2^CounterBits-1) value.
	CounterSaturate
	// CounterWrap pushes a counter to just below its modular boundary so
	// subsequent reads wrap through zero, exercising the 48-bit modular
	// delta arithmetic in internal/rdt.
	CounterWrap
	// CounterStale re-serves the previously read value (a latched or
	// delayed uncore read).
	CounterStale
	// NICDrop drops one inbound packet at the descriptor stage.
	NICDrop
	// NICStall makes one transmit-drain call do no work (a stalled DMA
	// engine for that microtick).
	NICStall
	// PollSkip suppresses one controller polling epoch (scheduling
	// jitter: the daemon's sleep overran the interval).
	PollSkip
	// HostCrash kills a host's control daemon: the host drops out of the
	// fleet for a seeded number of rounds, and all in-memory daemon state
	// is lost unless a checkpoint was taken.
	HostCrash
	// HostRestart bounces a host's control daemon in place: the process
	// dies and immediately comes back, resuming from its last checkpoint
	// (or cold-starting when none exists).
	HostRestart

	// NumKinds is the number of fault kinds.
	NumKinds int = iota
)

var kindNames = [NumKinds]string{
	"msr-reject", "msr-sticky",
	"counter-zero", "counter-saturate", "counter-wrap", "counter-stale",
	"nic-drop", "nic-stall", "poll-skip",
	"host-crash", "host-restart",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k >= 0 && int(k) < NumKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Profile is a fault-rate vector: Rates[k] is the Bernoulli probability of
// injecting kind k at each opportunity (one wrmsr, one counter rdmsr, one
// packet arrival, one drain call, one polling epoch).
type Profile struct {
	Name  string
	Rates [NumKinds]float64
}

// Named profiles. "default" is the chaos-smoke and acceptance profile:
// frequent enough that every fault kind fires in a short run, mild enough
// that a hardened daemon should keep (or recover) a valid allocation.
var namedProfiles = map[string]Profile{
	"off": {Name: "off"},
	"light": {Name: "light", Rates: [NumKinds]float64{
		MSRWriteReject: 0.02, MSRSticky: 0.01,
		CounterZero: 0.005, CounterSaturate: 0.005, CounterWrap: 0.002, CounterStale: 0.01,
		NICDrop: 0.0005, NICStall: 0.001, PollSkip: 0.02,
	}},
	"default": {Name: "default", Rates: [NumKinds]float64{
		MSRWriteReject: 0.05, MSRSticky: 0.02,
		CounterZero: 0.01, CounterSaturate: 0.01, CounterWrap: 0.005, CounterStale: 0.02,
		NICDrop: 0.002, NICStall: 0.005, PollSkip: 0.05,
	}},
	"heavy": {Name: "heavy", Rates: [NumKinds]float64{
		MSRWriteReject: 0.2, MSRSticky: 0.1,
		CounterZero: 0.05, CounterSaturate: 0.05, CounterWrap: 0.02, CounterStale: 0.08,
		NICDrop: 0.01, NICStall: 0.02, PollSkip: 0.15,
		HostCrash: 0.06, HostRestart: 0.12,
	}},
}

// ProfileNames returns the built-in profile names, sorted.
func ProfileNames() []string {
	names := make([]string, 0, len(namedProfiles))
	for n := range namedProfiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ProfileByName resolves a -chaos argument: a built-in profile name, or a
// custom "kind=rate,kind=rate" spec (kinds as printed by Kind.String,
// rates in [0,1]; unlisted kinds default to 0).
func ProfileByName(spec string) (Profile, error) {
	if p, ok := namedProfiles[spec]; ok {
		return p, nil
	}
	if !strings.Contains(spec, "=") {
		return Profile{}, fmt.Errorf("faults: unknown profile %q (valid: %s, or kind=rate,...)",
			spec, strings.Join(ProfileNames(), ", "))
	}
	p := Profile{Name: spec}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		kv := strings.SplitN(field, "=", 2)
		if len(kv) != 2 {
			return Profile{}, fmt.Errorf("faults: bad spec field %q (want kind=rate)", field)
		}
		k, err := kindByName(strings.TrimSpace(kv[0]))
		if err != nil {
			return Profile{}, err
		}
		rate, err := strconv.ParseFloat(strings.TrimSpace(kv[1]), 64)
		if err != nil || rate < 0 || rate > 1 {
			return Profile{}, fmt.Errorf("faults: rate %q for %s out of [0,1]", kv[1], k)
		}
		p.Rates[k] = rate
	}
	return p, nil
}

func kindByName(name string) (Kind, error) {
	for k := 0; k < NumKinds; k++ {
		if kindNames[k] == name {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("faults: unknown fault kind %q (valid: %s)",
		name, strings.Join(kindNames[:], ", "))
}

// Scaled returns the profile with every rate multiplied by f (clamped to
// 1), for escalating-fault-rate sweeps. Scaling by 0 yields "off" behaviour
// under the original name.
func (p Profile) Scaled(f float64) Profile {
	out := Profile{Name: p.Name}
	if f != 1 {
		out.Name = fmt.Sprintf("%s*%g", p.Name, f)
	}
	for k := range p.Rates {
		r := p.Rates[k] * f
		if r > 1 {
			r = 1
		}
		out.Rates[k] = r
	}
	return out
}

// Active reports whether any fault kind has a non-zero rate.
func (p Profile) Active() bool {
	for _, r := range p.Rates {
		if r > 0 {
			return true
		}
	}
	return false
}
