package faults

import (
	"testing"

	"iatsim/internal/msr"
	"iatsim/internal/nic"
	"iatsim/internal/rdt"
	"iatsim/internal/sim"
	"iatsim/internal/telemetry"
)

// The injector must satisfy every layer's hook interface structurally.
var (
	_ msr.FaultHook     = (*Injector)(nil)
	_ nic.FaultInjector = (*Injector)(nil)
	_ sim.PollFaults    = (*Injector)(nil)
)

func TestProfileByName(t *testing.T) {
	for _, name := range ProfileNames() {
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name != name {
			t.Errorf("%s: profile name %q", name, p.Name)
		}
	}
	if p, _ := ProfileByName("off"); p.Active() {
		t.Error("off profile is active")
	}
	if p, _ := ProfileByName("default"); !p.Active() {
		t.Error("default profile is inactive")
	}
	if _, err := ProfileByName("bogus"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestProfileCustomSpec(t *testing.T) {
	p, err := ProfileByName("msr-reject=0.5, poll-skip=1")
	if err != nil {
		t.Fatal(err)
	}
	if p.Rates[MSRWriteReject] != 0.5 || p.Rates[PollSkip] != 1 {
		t.Fatalf("parsed rates %v", p.Rates)
	}
	if p.Rates[NICDrop] != 0 {
		t.Error("unlisted kind not zero")
	}
	for _, bad := range []string{"msr-reject=2", "nope=0.1", "msr-reject"} {
		if _, err := ProfileByName(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestProfileScaled(t *testing.T) {
	p, _ := ProfileByName("default")
	twice := p.Scaled(2)
	if twice.Rates[MSRWriteReject] != 2*p.Rates[MSRWriteReject] {
		t.Error("scaling did not multiply rates")
	}
	if p.Scaled(1e9).Rates[PollSkip] != 1 {
		t.Error("scaled rate not clamped to 1")
	}
	if p.Scaled(0).Active() {
		t.Error("zero-scaled profile still active")
	}
}

// TestInjectorDeterministic: two injectors with the same seed produce the
// same decision stream; a different seed produces a different one.
func TestInjectorDeterministic(t *testing.T) {
	prof, _ := ProfileByName("heavy")
	draw := func(seed int64) []bool {
		in := NewInjector(prof, seed)
		out := make([]bool, 0, 400)
		for i := 0; i < 100; i++ {
			out = append(out, in.DropRxDesc(), in.StallTx(), in.SkipPoll(0))
			_, err := in.FilterWrite(0xC90, 0x7F, 0x0F)
			out = append(out, err != nil)
		}
		return out
	}
	a, b, c := draw(7), draw(7), draw(8)
	differs := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
		if a[i] != c[i] {
			differs = true
		}
	}
	if !differs {
		t.Error("seeds 7 and 8 produced identical 400-draw streams")
	}
}

// TestInjectorRates: over many opportunities the empirical rate lands near
// the configured probability.
func TestInjectorRates(t *testing.T) {
	var prof Profile
	prof.Rates[NICDrop] = 0.25
	in := NewInjector(prof, 42)
	n := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if in.DropRxDesc() {
			n++
		}
	}
	got := float64(n) / trials
	if got < 0.22 || got > 0.28 {
		t.Fatalf("empirical rate %.3f for configured 0.25", got)
	}
	if in.Count(NICDrop) != uint64(n) || in.Total() != uint64(n) {
		t.Fatalf("counts: Count=%d Total=%d want %d", in.Count(NICDrop), in.Total(), n)
	}
}

// TestFilterWriteSticky: a sticky write keeps exactly one old set bit that
// the new value tried to clear, and never touches writes growing the mask.
func TestFilterWriteSticky(t *testing.T) {
	var prof Profile
	prof.Rates[MSRSticky] = 1
	in := NewInjector(prof, 1)
	got, err := in.FilterWrite(0xC90, 0b1111000, 0b0000111)
	if err != nil {
		t.Fatal(err)
	}
	stuck := got &^ 0b0000111
	if got&0b0000111 != 0b0000111 {
		t.Fatalf("written bits lost: %b", got)
	}
	if stuck == 0 || stuck&(stuck-1) != 0 || stuck&0b1111000 == 0 {
		t.Fatalf("stuck bits %b: want exactly one bit of the old value", stuck)
	}
	// Superset write: nothing to stick, value passes through unchanged.
	if got, _ := in.FilterWrite(0xC90, 0b0011, 0b0111); got != 0b0111 {
		t.Fatalf("superset write altered: %b", got)
	}
}

// TestFilterReadKinds drives each counter fault kind at rate 1 and checks
// its corruption shape; mask-range registers must pass through untouched.
func TestFilterReadKinds(t *testing.T) {
	addr := msr.CoreCounterAddr(0, msr.EvCycles)
	one := func(k Kind) *Injector {
		var prof Profile
		prof.Rates[k] = 1
		return NewInjector(prof, 3)
	}
	if v := one(CounterZero).FilterRead(addr, 12345); v != 0 {
		t.Fatalf("zero glitch served %d", v)
	}
	max := (uint64(1) << rdt.CounterBits) - 1
	if v := one(CounterSaturate).FilterRead(addr, 12345); v != max {
		t.Fatalf("saturate glitch served %d", v)
	}
	// Stale: the second read re-serves the first read's value.
	st := one(CounterStale)
	first := st.FilterRead(addr, 100) // nothing latched yet: passes through
	if first != 100 {
		t.Fatalf("first read corrupted: %d", first)
	}
	if v := st.FilterRead(addr, 200); v != 100 {
		t.Fatalf("stale glitch served %d, want 100", v)
	}
	// Wrap: the read lands just below 2^CounterBits, and once the offset
	// is installed, deltas between consecutive reads stay exact.
	wr := NewInjector(Profile{Rates: func() (r [NumKinds]float64) { r[CounterWrap] = 1; return }()}, 5)
	v0 := wr.FilterRead(addr, 1000)
	if v0 < max-4096 {
		t.Fatalf("wrap onset read %d not near the boundary", v0)
	}
	wr.prof.Rates[CounterWrap] = 0 // stop re-triggering; keep the offset
	v1 := wr.FilterRead(addr, 6000)
	if d := (v1 - v0) & max; d != 5000 {
		t.Fatalf("post-wrap delta %d, want 5000", d)
	}
	// Mask registers are never corrupted.
	if v := one(CounterZero).FilterRead(msr.L3MaskAddr(2), 0x7F); v != 0x7F {
		t.Fatalf("mask register corrupted: %#x", v)
	}
}

// TestInjectorTelemetry: injections surface as faults// counters and
// SevDebug events.
func TestInjectorTelemetry(t *testing.T) {
	var prof Profile
	prof.Rates[PollSkip] = 1
	in := NewInjector(prof, 9)
	reg := telemetry.NewRegistry()
	now := 0.0
	in.AttachTelemetry(reg, func() float64 { return now })
	for i := 0; i < 3; i++ {
		now = float64(i) * 1e9
		in.SkipPoll(now)
	}
	if got := reg.Counter("faults", "", "poll-skip").Value(); got != 3 {
		t.Fatalf("telemetry counter %d, want 3", got)
	}
	evs := reg.Events(telemetry.SevDebug, "faults")
	if len(evs) != 3 || evs[2].Detail != "poll-skip" || evs[2].TimeNS != 2e9 {
		t.Fatalf("events %+v", evs)
	}
}

// TestCrashRollsLeaveDatapathUntouched: the crash/restart kinds draw
// from a separate control-plane stream, so arming them must not shift
// the MSR/NIC/poll fault schedule of an otherwise identical profile.
func TestCrashRollsLeaveDatapathUntouched(t *testing.T) {
	base, _ := ProfileByName("heavy")
	quiet := base
	quiet.Rates[HostCrash] = 0
	quiet.Rates[HostRestart] = 0
	a := NewInjector(base, 21)
	b := NewInjector(quiet, 21)
	for i := 0; i < 200; i++ {
		a.CrashHost()
		a.RestartHost()
		if a.DropRxDesc() != b.DropRxDesc() || a.SkipPoll(0) != b.SkipPoll(0) {
			t.Fatalf("crash rolls perturbed the datapath stream at draw %d", i)
		}
		if _, errA := a.FilterWrite(0xC90, 0x7F, 0x0F); func() bool {
			_, errB := b.FilterWrite(0xC90, 0x7F, 0x0F)
			return (errA != nil) != (errB != nil)
		}() {
			t.Fatalf("crash rolls perturbed the wrmsr schedule at draw %d", i)
		}
	}
}

// TestCrashRollDeterministic: the crash schedule and outage lengths are a
// pure function of the seed, and outages stay in the documented 1–3
// round range.
func TestCrashRollDeterministic(t *testing.T) {
	var prof Profile
	prof.Rates[HostCrash] = 0.3
	draw := func(seed int64) []int {
		in := NewInjector(prof, seed)
		out := make([]int, 0, 100)
		for i := 0; i < 100; i++ {
			crashed, rounds := in.CrashHost()
			if crashed && (rounds < 1 || rounds > 3) {
				t.Fatalf("outage length %d out of [1,3]", rounds)
			}
			out = append(out, rounds)
		}
		return out
	}
	a, b, c := draw(5), draw(5), draw(6)
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at roll %d", i)
		}
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("seeds 5 and 6 produced identical crash schedules")
	}
	in := NewInjector(prof, 5)
	fired := 0
	for i := 0; i < 100; i++ {
		if ok, _ := in.CrashHost(); ok {
			fired++
		}
	}
	if fired == 0 {
		t.Fatal("rate-0.3 crash kind never fired in 100 rolls")
	}
	if in.Count(HostCrash) != uint64(fired) {
		t.Fatalf("Count(HostCrash) = %d, want %d", in.Count(HostCrash), fired)
	}
}

// TestInjectorSnapshotRestore: restoring a snapshot into a fresh injector
// continues the fault schedule exactly where the original left off —
// both streams, counts, and per-register corruption memory included.
func TestInjectorSnapshotRestore(t *testing.T) {
	prof, _ := ProfileByName("heavy")
	addr := msr.CoreCounterAddr(0, msr.EvCycles)
	mk := func() *Injector { return NewInjector(prof, 17) }
	warm := func(in *Injector) {
		for i := 0; i < 40; i++ {
			in.DropRxDesc()
			in.FilterRead(addr, uint64(1000*i))
			in.CrashHost()
		}
	}
	orig := mk()
	warm(orig)
	snap := orig.Snapshot()

	restored := mk()
	restored.Restore(snap)
	if restored.Total() != orig.Total() {
		t.Fatalf("restored Total %d, want %d", restored.Total(), orig.Total())
	}
	for i := 0; i < 100; i++ {
		if orig.DropRxDesc() != restored.DropRxDesc() {
			t.Fatalf("datapath stream diverged after restore at draw %d", i)
		}
		if orig.FilterRead(addr, uint64(5000+i)) != restored.FilterRead(addr, uint64(5000+i)) {
			t.Fatalf("read corruption diverged after restore at draw %d", i)
		}
		oc, or := orig.CrashHost()
		rc, rr := restored.CrashHost()
		if oc != rc || or != rr {
			t.Fatalf("control stream diverged after restore at draw %d", i)
		}
	}
	// The snapshot's maps are copies: mutating them cannot corrupt the
	// injector they came from.
	snap.WrapOff[addr] = 999
	if v, ok := orig.wrapOff[addr]; ok && v == 999 {
		t.Error("snapshot map aliases the injector's map")
	}
}

// TestZeroRateConsumesNoState: kinds at rate 0 must not advance the
// stream, so one layer's schedule is independent of another layer's
// activity level.
func TestZeroRateConsumesNoState(t *testing.T) {
	var prof Profile
	prof.Rates[NICDrop] = 0.5
	a := NewInjector(prof, 11)
	b := NewInjector(prof, 11)
	for i := 0; i < 50; i++ {
		b.SkipPoll(0) // rate 0: must be a pure no-op
		if a.DropRxDesc() != b.DropRxDesc() {
			t.Fatalf("zero-rate roll perturbed the stream at %d", i)
		}
	}
}
