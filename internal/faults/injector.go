package faults

import (
	"fmt"
	"math/bits"

	"iatsim/internal/msr"
	"iatsim/internal/rdt"
	"iatsim/internal/telemetry"
)

// counterMask is the modular range of the emulated hardware counters.
const counterMask = (uint64(1) << rdt.CounterBits) - 1

// Injector draws every fault decision from one seeded splitmix64 stream.
// It structurally implements the hook interfaces of the layers it perturbs
// (msr.FaultHook, nic.FaultInjector, sim.PollFaults) so one injector armed
// with one seed drives a whole platform's fault schedule.
//
// Arm it only after the platform is assembled: construction-time register
// programming (rdt.New, scenario CAT setup) is not part of the fault
// surface — a machine that cannot boot is not a scenario worth simulating.
//
// Not safe for concurrent use; the simulator is single-threaded and each
// harness job owns its injector, which is what keeps chaos runs
// byte-identical at any worker count.
type Injector struct {
	prof  Profile
	state uint64

	// ctlState is a second, independent splitmix64 stream reserved for
	// control-plane fault rolls (HostCrash, HostRestart). Keeping those
	// rolls off the datapath stream means enabling the crash kinds in a
	// profile never shifts the MSR/counter/NIC/poll schedules of an
	// otherwise identical profile.
	ctlState uint64

	counts [NumKinds]uint64

	// wrapOff is the per-register modular offset CounterWrap installs;
	// lastVal is the last value served per register, for CounterStale.
	// Both maps are lookup-only (never ranged), so map order cannot leak.
	wrapOff map[uint32]uint64
	lastVal map[uint32]uint64

	tel    telemetry.Sink
	clock  func() float64
	telCnt [NumKinds]*telemetry.Counter
}

var _ msr.FaultHook = (*Injector)(nil)

// ctlSalt decorrelates the control-plane stream from the datapath stream
// derived from the same seed.
const ctlSalt = 0xD1B54A32D192ED03

// NewInjector builds an injector for prof whose schedule is a pure
// function of seed.
func NewInjector(prof Profile, seed int64) *Injector {
	in := &Injector{
		prof:     prof,
		state:    uint64(seed),
		ctlState: uint64(seed) ^ ctlSalt,
		wrapOff:  make(map[uint32]uint64),
		lastVal:  make(map[uint32]uint64),
	}
	in.next()    // fold the seed once so seed 0 does not start at state 0
	in.ctlNext() // likewise for the control-plane stream
	return in
}

// Profile returns the injector's fault-rate profile.
func (in *Injector) Profile() Profile { return in.prof }

// AttachTelemetry publishes per-kind injection counters (subsystem
// "faults") and one SevDebug event per injection, stamped with clock's
// sim time. Passing a nil sink is a no-op.
func (in *Injector) AttachTelemetry(s telemetry.Sink, clock func() float64) {
	if s == nil {
		return
	}
	in.tel = s
	in.clock = clock
	for k := 0; k < NumKinds; k++ {
		//simlint:ignore telemlint kindNames is a fixed array indexed by the closed Kind enum, so the schema stays compile-time closed
		in.telCnt[k] = s.Counter("faults", "", kindNames[k])
	}
}

// next advances the datapath splitmix64 stream.
func (in *Injector) next() uint64 { return splitmixNext(&in.state) }

// ctlNext advances the control-plane splitmix64 stream.
func (in *Injector) ctlNext() uint64 { return splitmixNext(&in.ctlState) }

// splitmixNext is one splitmix64 step, shared by both streams.
func splitmixNext(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// fired accounts one injected fault of kind k: per-kind count, telemetry
// counter, and a SevDebug event stamped with the injector's sim clock.
func (in *Injector) fired(k Kind) {
	in.counts[k]++
	in.telCnt[k].Inc()
	if in.tel != nil {
		now := 0.0
		if in.clock != nil {
			now = in.clock()
		}
		in.tel.Emit(telemetry.Event{
			TimeNS: now, Sev: telemetry.SevDebug,
			Subsystem: "faults", Name: "inject", Detail: kindNames[k],
		})
	}
}

// roll decides one injection opportunity for kind k, counting and
// publishing the fault when it fires. A zero-rate kind consumes no stream
// state, so disabling one fault kind does not shift another's schedule
// relative to the same profile with that kind off.
func (in *Injector) roll(k Kind) bool {
	r := in.prof.Rates[k]
	if r <= 0 {
		return false
	}
	if float64(in.next()>>11)/(1<<53) >= r {
		return false
	}
	in.fired(k)
	return true
}

// ctlRoll is roll on the control-plane stream, for the crash/restart
// kinds only.
func (in *Injector) ctlRoll(k Kind) bool {
	r := in.prof.Rates[k]
	if r <= 0 {
		return false
	}
	if float64(in.ctlNext()>>11)/(1<<53) >= r {
		return false
	}
	in.fired(k)
	return true
}

// pickBit returns one randomly chosen set bit of bits (0 when bits is 0).
func (in *Injector) pickBit(b uint64) uint64 {
	n := bits.OnesCount64(b)
	if n == 0 {
		return 0
	}
	idx := int(in.next() % uint64(n))
	for i := 0; i < idx; i++ {
		b &= b - 1 // clear lowest set bit
	}
	return b & -b
}

// FilterWrite implements msr.FaultHook: it may reject a register write
// (the register keeps old) or let one set bit of the old value stick
// through an otherwise successful write.
func (in *Injector) FilterWrite(addr uint32, old, v uint64) (uint64, error) {
	if in.roll(MSRWriteReject) {
		return old, fmt.Errorf("faults: injected wrmsr rejection at %#x", addr)
	}
	if stuck := old &^ v; stuck != 0 && in.roll(MSRSticky) {
		return v | in.pickBit(stuck), nil
	}
	return v, nil
}

// FilterRead implements msr.FaultHook. Only performance-counter registers
// (PerfCoreBase and above) are corrupted: mask and association registers
// must read back exactly or read-back verification would be meaningless.
func (in *Injector) FilterRead(addr uint32, v uint64) uint64 {
	if addr < msr.PerfCoreBase {
		return v
	}
	if off, ok := in.wrapOff[addr]; ok {
		v = (v + off) & counterMask
	}
	prev, seen := in.lastVal[addr]
	out := v
	switch {
	case in.roll(CounterZero):
		out = 0
	case in.roll(CounterSaturate):
		out = counterMask
	case in.roll(CounterWrap):
		// Install a persistent modular offset landing the counter just
		// below 2^CounterBits, so it wraps through zero within the next
		// few thousand events. The transition read looks like a glitch
		// (and should be rejected by sample validation); every delta
		// after it is exact again under 48-bit modular subtraction.
		margin := in.next() % 4096
		in.wrapOff[addr] = (counterMask - margin - v) & counterMask
		out = (counterMask - margin) & counterMask
	case seen && in.roll(CounterStale):
		out = prev
	}
	in.lastVal[addr] = out
	return out
}

// DropRxDesc implements the NIC fault hook: drop one inbound packet at
// the descriptor stage.
func (in *Injector) DropRxDesc() bool { return in.roll(NICDrop) }

// StallTx implements the NIC fault hook: void one transmit-drain call.
func (in *Injector) StallTx() bool { return in.roll(NICStall) }

// SkipPoll implements the sim poll-fault hook: suppress one controller
// polling epoch.
func (in *Injector) SkipPoll(nowNS float64) bool { return in.roll(PollSkip) }

// Count returns how many faults of kind k were injected.
func (in *Injector) Count(k Kind) uint64 { return in.counts[k] }

// Total returns the total injected fault count across all kinds.
func (in *Injector) Total() uint64 {
	var t uint64
	for _, c := range in.counts {
		t += c
	}
	return t
}

// CounterGlitches returns the combined count of the four counter-read
// fault kinds.
func (in *Injector) CounterGlitches() uint64 {
	return in.counts[CounterZero] + in.counts[CounterSaturate] +
		in.counts[CounterWrap] + in.counts[CounterStale]
}

// CrashHost rolls one host-crash opportunity on the control-plane stream.
// When the crash fires it also draws the outage length: the host stays
// down for 1–3 rounds (seeded). A zero HostCrash rate consumes no control
// stream state.
func (in *Injector) CrashHost() (crashed bool, downRounds int) {
	if !in.ctlRoll(HostCrash) {
		return false, 0
	}
	return true, 1 + int(in.ctlNext()%3)
}

// RestartHost rolls one host-restart opportunity (an in-place daemon
// bounce: the process dies and immediately resumes from its last
// checkpoint) on the control-plane stream.
func (in *Injector) RestartHost() bool { return in.ctlRoll(HostRestart) }

// InjectorState is the injector's replayable state for checkpointing:
// both PRNG stream positions, the per-kind injection counts, and the
// per-register read-corruption memory. The profile and telemetry
// attachment are configuration, not state, and are not included.
type InjectorState struct {
	State    uint64            `json:"state"`
	CtlState uint64            `json:"ctl_state"`
	Counts   [NumKinds]uint64  `json:"counts"`
	WrapOff  map[uint32]uint64 `json:"wrap_off,omitempty"`
	LastVal  map[uint32]uint64 `json:"last_val,omitempty"`
}

// Snapshot captures the injector state for checkpointing. The returned
// maps are copies; mutating them does not affect the injector.
func (in *Injector) Snapshot() InjectorState {
	st := InjectorState{
		State:    in.state,
		CtlState: in.ctlState,
		Counts:   in.counts,
		WrapOff:  make(map[uint32]uint64, len(in.wrapOff)),
		LastVal:  make(map[uint32]uint64, len(in.lastVal)),
	}
	for k, v := range in.wrapOff {
		st.WrapOff[k] = v
	}
	for k, v := range in.lastVal {
		st.LastVal[k] = v
	}
	return st
}

// Restore rewinds the injector to a snapshot taken from an injector with
// the same profile: the fault schedule continues exactly where the
// snapshot left off.
func (in *Injector) Restore(st InjectorState) {
	in.state = st.State
	in.ctlState = st.CtlState
	in.counts = st.Counts
	in.wrapOff = make(map[uint32]uint64, len(st.WrapOff))
	in.lastVal = make(map[uint32]uint64, len(st.LastVal))
	for k, v := range st.WrapOff {
		in.wrapOff[k] = v
	}
	for k, v := range st.LastVal {
		in.lastVal[k] = v
	}
}
