package faults

import (
	"fmt"
	"math/bits"

	"iatsim/internal/msr"
	"iatsim/internal/rdt"
	"iatsim/internal/telemetry"
)

// counterMask is the modular range of the emulated hardware counters.
const counterMask = (uint64(1) << rdt.CounterBits) - 1

// Injector draws every fault decision from one seeded splitmix64 stream.
// It structurally implements the hook interfaces of the layers it perturbs
// (msr.FaultHook, nic.FaultInjector, sim.PollFaults) so one injector armed
// with one seed drives a whole platform's fault schedule.
//
// Arm it only after the platform is assembled: construction-time register
// programming (rdt.New, scenario CAT setup) is not part of the fault
// surface — a machine that cannot boot is not a scenario worth simulating.
//
// Not safe for concurrent use; the simulator is single-threaded and each
// harness job owns its injector, which is what keeps chaos runs
// byte-identical at any worker count.
type Injector struct {
	prof  Profile
	state uint64

	counts [NumKinds]uint64

	// wrapOff is the per-register modular offset CounterWrap installs;
	// lastVal is the last value served per register, for CounterStale.
	// Both maps are lookup-only (never ranged), so map order cannot leak.
	wrapOff map[uint32]uint64
	lastVal map[uint32]uint64

	tel    telemetry.Sink
	clock  func() float64
	telCnt [NumKinds]*telemetry.Counter
}

var _ msr.FaultHook = (*Injector)(nil)

// NewInjector builds an injector for prof whose schedule is a pure
// function of seed.
func NewInjector(prof Profile, seed int64) *Injector {
	in := &Injector{
		prof:    prof,
		state:   uint64(seed),
		wrapOff: make(map[uint32]uint64),
		lastVal: make(map[uint32]uint64),
	}
	in.next() // fold the seed once so seed 0 does not start at state 0
	return in
}

// Profile returns the injector's fault-rate profile.
func (in *Injector) Profile() Profile { return in.prof }

// AttachTelemetry publishes per-kind injection counters (subsystem
// "faults") and one SevDebug event per injection, stamped with clock's
// sim time. Passing a nil sink is a no-op.
func (in *Injector) AttachTelemetry(s telemetry.Sink, clock func() float64) {
	if s == nil {
		return
	}
	in.tel = s
	in.clock = clock
	for k := 0; k < NumKinds; k++ {
		//simlint:ignore telemlint kindNames is a fixed array indexed by the closed Kind enum, so the schema stays compile-time closed
		in.telCnt[k] = s.Counter("faults", "", kindNames[k])
	}
}

// next advances the splitmix64 stream.
func (in *Injector) next() uint64 {
	in.state += 0x9E3779B97F4A7C15
	z := in.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// roll decides one injection opportunity for kind k, counting and
// publishing the fault when it fires. A zero-rate kind consumes no stream
// state, so disabling one fault kind does not shift another's schedule
// relative to the same profile with that kind off.
func (in *Injector) roll(k Kind) bool {
	r := in.prof.Rates[k]
	if r <= 0 {
		return false
	}
	if float64(in.next()>>11)/(1<<53) >= r {
		return false
	}
	in.counts[k]++
	in.telCnt[k].Inc()
	if in.tel != nil {
		now := 0.0
		if in.clock != nil {
			now = in.clock()
		}
		in.tel.Emit(telemetry.Event{
			TimeNS: now, Sev: telemetry.SevDebug,
			Subsystem: "faults", Name: "inject", Detail: kindNames[k],
		})
	}
	return true
}

// pickBit returns one randomly chosen set bit of bits (0 when bits is 0).
func (in *Injector) pickBit(b uint64) uint64 {
	n := bits.OnesCount64(b)
	if n == 0 {
		return 0
	}
	idx := int(in.next() % uint64(n))
	for i := 0; i < idx; i++ {
		b &= b - 1 // clear lowest set bit
	}
	return b & -b
}

// FilterWrite implements msr.FaultHook: it may reject a register write
// (the register keeps old) or let one set bit of the old value stick
// through an otherwise successful write.
func (in *Injector) FilterWrite(addr uint32, old, v uint64) (uint64, error) {
	if in.roll(MSRWriteReject) {
		return old, fmt.Errorf("faults: injected wrmsr rejection at %#x", addr)
	}
	if stuck := old &^ v; stuck != 0 && in.roll(MSRSticky) {
		return v | in.pickBit(stuck), nil
	}
	return v, nil
}

// FilterRead implements msr.FaultHook. Only performance-counter registers
// (PerfCoreBase and above) are corrupted: mask and association registers
// must read back exactly or read-back verification would be meaningless.
func (in *Injector) FilterRead(addr uint32, v uint64) uint64 {
	if addr < msr.PerfCoreBase {
		return v
	}
	if off, ok := in.wrapOff[addr]; ok {
		v = (v + off) & counterMask
	}
	prev, seen := in.lastVal[addr]
	out := v
	switch {
	case in.roll(CounterZero):
		out = 0
	case in.roll(CounterSaturate):
		out = counterMask
	case in.roll(CounterWrap):
		// Install a persistent modular offset landing the counter just
		// below 2^CounterBits, so it wraps through zero within the next
		// few thousand events. The transition read looks like a glitch
		// (and should be rejected by sample validation); every delta
		// after it is exact again under 48-bit modular subtraction.
		margin := in.next() % 4096
		in.wrapOff[addr] = (counterMask - margin - v) & counterMask
		out = (counterMask - margin) & counterMask
	case seen && in.roll(CounterStale):
		out = prev
	}
	in.lastVal[addr] = out
	return out
}

// DropRxDesc implements the NIC fault hook: drop one inbound packet at
// the descriptor stage.
func (in *Injector) DropRxDesc() bool { return in.roll(NICDrop) }

// StallTx implements the NIC fault hook: void one transmit-drain call.
func (in *Injector) StallTx() bool { return in.roll(NICStall) }

// SkipPoll implements the sim poll-fault hook: suppress one controller
// polling epoch.
func (in *Injector) SkipPoll(nowNS float64) bool { return in.roll(PollSkip) }

// Count returns how many faults of kind k were injected.
func (in *Injector) Count(k Kind) uint64 { return in.counts[k] }

// Total returns the total injected fault count across all kinds.
func (in *Injector) Total() uint64 {
	var t uint64
	for _, c := range in.counts {
		t += c
	}
	return t
}

// CounterGlitches returns the combined count of the four counter-read
// fault kinds.
func (in *Injector) CounterGlitches() uint64 {
	return in.counts[CounterZero] + in.counts[CounterSaturate] +
		in.counts[CounterWrap] + in.counts[CounterStale]
}
