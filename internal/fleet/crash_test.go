// Crash/restart integration tests. These live in an external test
// package so they can assemble real hosts through internal/exp (which
// imports fleet) without an import cycle.
package fleet_test

import (
	"bytes"
	"fmt"
	"testing"

	"iatsim/internal/exp"
	"iatsim/internal/faults"
	"iatsim/internal/fleet"
)

// crashFleetOpts is the shared shape: small and fast, with rounds enough
// for crashes, outages and rejoins to all happen inside the run.
func crashFleetOpts(hosts int) exp.FleetOpts {
	return exp.FleetOpts{
		Hosts:    hosts,
		Topology: "striped",
		Rollout:  "canary",
		Scale:    3200,
		Rounds:   8,
		RoundNS:  0.2e9, IntervalNS: 0.05e9,
	}
}

// heavyStorm arms the heavy profile (the only built-in with crash kinds)
// on the whole fleet for most of the run.
func heavyStorm(t *testing.T, target fleet.Cohort, seed int64) *fleet.Storm {
	t.Helper()
	prof, err := faults.ProfileByName("heavy")
	if err != nil {
		t.Fatal(err)
	}
	return &fleet.Storm{Profile: prof, Seed: seed, Target: target, StartRound: 1, Rounds: 5}
}

// runCrashStorm builds a fresh fleet and runs it under a fleet-wide
// heavy crash storm, returning the report, the hosts, and the rendered
// fleet CSV.
func runCrashStorm(t *testing.T, workers, checkpointEvery int) (*fleet.Report, []*fleet.Host, []byte) {
	t.Helper()
	o := crashFleetOpts(8)
	hosts, err := exp.BuildFleet(o)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := exp.FleetPlan(o)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fleet.Run(fleet.Config{
		Hosts: hosts, Rounds: o.Rounds, RoundNS: o.RoundNS,
		Workers: workers, Plan: plan,
		Storm:           heavyStorm(t, fleet.CohortAll, 2),
		CheckpointEvery: checkpointEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	if err := exp.WriteRowsCSV(&csv, rep.Rows); err != nil {
		t.Fatal(err)
	}
	return rep, hosts, csv.Bytes()
}

// TestFleetCrashRestartDeterminism: under a fleet-wide crash storm with
// per-round checkpointing, the fleet CSV, per-host observations, policy
// histories and restore counts are byte-identical at 1 worker and 8
// workers — host death and resurrection are part of the determinism
// contract, not an exception to it.
func TestFleetCrashRestartDeterminism(t *testing.T) {
	rep1, hosts1, csv1 := runCrashStorm(t, 1, 1)
	rep8, hosts8, csv8 := runCrashStorm(t, 8, 1)

	if !bytes.Equal(csv1, csv8) {
		t.Fatalf("fleet CSV differs between 1 and 8 workers:\n%s\nvs\n%s", csv1, csv8)
	}
	if fmt.Sprintf("%+v", rep1.Obs) != fmt.Sprintf("%+v", rep8.Obs) {
		t.Fatal("per-host observations differ between 1 and 8 workers")
	}
	for i := range hosts1 {
		if got, want := fmt.Sprint(hosts8[i].PolicyHistory()), fmt.Sprint(hosts1[i].PolicyHistory()); got != want {
			t.Fatalf("host %d policy history %s vs %s", i, got, want)
		}
		r1, f1 := hosts1[i].RestoreStats()
		r8, f8 := hosts8[i].RestoreStats()
		if r1 != r8 || f1 != f8 {
			t.Fatalf("host %d restore stats (%d,%d) vs (%d,%d)", i, r1, f1, r8, f8)
		}
	}

	// The run must actually exercise the machinery, or this test proves
	// nothing: hosts went down, and rejoining hosts restored state.
	down := 0
	for _, r := range rep1.Rows {
		down += r.HostsDown
	}
	if down == 0 {
		t.Fatal("crash storm produced no down hosts — raise the storm window or change its seed")
	}
	var restores uint64
	for _, h := range hosts1 {
		r, _ := h.RestoreStats()
		restores += r
	}
	if restores == 0 {
		t.Fatal("no host restored from a checkpoint during the storm")
	}
}

// TestFleetCheckpointingMatters: the same crash storm without
// checkpointing leaves rejoining hosts nothing to restore — every
// relaunch is a cold start.
func TestFleetCheckpointingMatters(t *testing.T) {
	rep, hosts, _ := runCrashStorm(t, 4, 0)
	down := 0
	for _, r := range rep.Rows {
		down += r.HostsDown
	}
	if down == 0 {
		t.Fatal("crash storm produced no down hosts")
	}
	for _, h := range hosts {
		if r, f := h.RestoreStats(); r != 0 || f != 0 {
			t.Fatalf("%s restored (%d) or failed (%d) without checkpointing enabled", h.Name, r, f)
		}
		if h.CheckpointBytes() != nil {
			t.Fatalf("%s has checkpoint bytes with checkpointing disabled", h.Name)
		}
	}
}

// TestHostRelaunchRestoreAndFallback drives the restore-or-cold path
// directly: a good checkpoint restores the daemon's accumulated state; a
// corrupt or future-version one falls back to a cold start and counts a
// restore failure — never a panic, never an error that stops the fleet.
func TestHostRelaunchRestoreAndFallback(t *testing.T) {
	o := crashFleetOpts(1)
	o.Rounds = 3
	hosts, err := exp.BuildFleet(o)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := exp.FleetPlan(o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fleet.Run(fleet.Config{
		Hosts: hosts, Rounds: o.Rounds, RoundNS: o.RoundNS,
		Workers: 1, Plan: plan, CheckpointEvery: 1,
	}); err != nil {
		t.Fatal(err)
	}
	h := hosts[0]
	itersBefore, _ := h.Daemon.Iterations()
	if itersBefore == 0 {
		t.Fatal("daemon accumulated no iterations to checkpoint")
	}
	good := h.CheckpointBytes()
	if len(good) == 0 {
		t.Fatal("no checkpoint was taken")
	}

	// Good checkpoint: the relaunched daemon carries on where it was.
	h.Relaunch()
	if iters, _ := h.Daemon.Iterations(); iters != itersBefore {
		t.Fatalf("restored daemon has %d iterations, want %d", iters, itersBefore)
	}
	if r, f := h.RestoreStats(); r != 1 || f != 0 {
		t.Fatalf("restore stats = (%d,%d), want (1,0)", r, f)
	}

	// Flipped payload byte: checksum mismatch, cold start.
	bad := append([]byte(nil), good...)
	bad[len(bad)-2] ^= 0x08
	h.SetCheckpointBytes(bad)
	h.Relaunch()
	if iters, _ := h.Daemon.Iterations(); iters != 0 {
		t.Fatalf("corrupt checkpoint restored %d iterations, want cold start", iters)
	}
	if r, f := h.RestoreStats(); r != 1 || f != 1 {
		t.Fatalf("restore stats = (%d,%d), want (1,1)", r, f)
	}

	// Future envelope version: typed rejection, cold start.
	future := append([]byte(nil), good...)
	future[4]++
	h.SetCheckpointBytes(future)
	h.Relaunch()
	if r, f := h.RestoreStats(); r != 1 || f != 2 {
		t.Fatalf("restore stats = (%d,%d), want (1,2)", r, f)
	}

	// No checkpoint at all: plain cold start, no failure counted.
	h.SetCheckpointBytes(nil)
	h.Relaunch()
	if r, f := h.RestoreStats(); r != 1 || f != 2 {
		t.Fatalf("restore stats = (%d,%d), want (1,2)", r, f)
	}

	// And the good bytes still work after all that.
	h.SetCheckpointBytes(good)
	h.Relaunch()
	if iters, _ := h.Daemon.Iterations(); iters != itersBefore {
		t.Fatalf("final restore has %d iterations, want %d", iters, itersBefore)
	}
	if r, f := h.RestoreStats(); r != 2 || f != 2 {
		t.Fatalf("restore stats = (%d,%d), want (2,2)", r, f)
	}
}
