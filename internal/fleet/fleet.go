// Package fleet is the multi-host layer over the single-socket
// simulator: N hosts — each a full sim.Platform with its own IAT daemon,
// seed, workload mix and fault profile — stepped in lockstep rounds by
// the internal/harness worker pool, under a central controller that
// aggregates per-host health into fleet metrics (p50/p99 throughput and
// IPC, degraded-host count, mask-churn rate) and rolls policy changes
// out through staged cohorts with automatic rollback when the canary
// cohort's health regresses against the control cohort.
//
// Determinism contract: hosts are stepped one harness job per host per
// round, each job mutating only its own host (the harness's
// WaitGroup provides the happens-before edge between rounds), and every
// aggregate is computed from the submission-ordered result slice — so
// round rows, telemetry and rollout decisions are byte-identical at any
// worker count and race-clean under `go test -race`. The package itself
// uses no wall clock, no global rand and no goroutines
// (detlint-enforced); parallelism is delegated to internal/harness.
package fleet

import (
	"fmt"
	"io"
	"math"
	"sort"

	"iatsim/internal/faults"
	"iatsim/internal/harness"
	"iatsim/internal/telemetry"
)

// Cohort names a storm's target set of hosts.
type Cohort int

const (
	// CohortCanary targets the first-wave cohort (the prefix of Hosts
	// the rollout switches first).
	CohortCanary Cohort = iota
	// CohortControl targets every host outside the canary cohort.
	CohortControl
	// CohortAll targets the whole fleet.
	CohortAll
)

// String implements fmt.Stringer.
func (c Cohort) String() string {
	switch c {
	case CohortCanary:
		return "canary"
	case CohortControl:
		return "control"
	case CohortAll:
		return "all"
	}
	return fmt.Sprintf("Cohort(%d)", int(c))
}

// Storm is a correlated fault storm: the profile is armed on every host
// of the target cohort for rounds [StartRound, StartRound+Rounds), each
// host with its own deterministic schedule derived from Seed and the
// host ID.
type Storm struct {
	Profile    faults.Profile
	Seed       int64
	Target     Cohort
	StartRound int
	Rounds     int
}

// Config parameterises one fleet run.
type Config struct {
	// Hosts, sorted by strictly increasing ID. Cohorts are prefixes of
	// this slice.
	Hosts []*Host
	// Rounds is how many aggregation rounds to run.
	Rounds int
	// RoundNS is the simulated duration of one round per host.
	RoundNS float64
	// Workers bounds the harness pool stepping hosts (<= 0 means one
	// per CPU). The output is identical at any value.
	Workers int
	// Plan is the policy rollout the controller drives.
	Plan Plan
	// Storm, when non-nil, is the correlated fault storm to inject.
	Storm *Storm
	// CheckpointEvery, when positive, checkpoints every up host's daemon
	// state after every Nth round; zero disables checkpointing, so hosts
	// that crash lose all control-plane state (cold start on rejoin).
	CheckpointEvery int
	// Tel, when non-nil, receives the controller's fleet-level metrics
	// and events (per-host telemetry lives on each Host.Tel).
	Tel telemetry.Sink
	// Manifest, when non-nil, accumulates the per-host step jobs.
	Manifest *harness.Manifest
	// Progress, when non-nil, receives the harness's live progress line.
	Progress io.Writer
}

func (cfg Config) validate() error {
	if len(cfg.Hosts) == 0 {
		return fmt.Errorf("fleet: no hosts")
	}
	for i, h := range cfg.Hosts {
		if i > 0 && h.ID <= cfg.Hosts[i-1].ID {
			return fmt.Errorf("fleet: host IDs must be strictly increasing (%d after %d)", h.ID, cfg.Hosts[i-1].ID)
		}
	}
	if cfg.Rounds < 1 {
		return fmt.Errorf("fleet: Rounds must be >= 1")
	}
	if cfg.CheckpointEvery < 0 {
		return fmt.Errorf("fleet: CheckpointEvery must be >= 0")
	}
	if cfg.RoundNS <= 0 {
		return fmt.Errorf("fleet: RoundNS must be positive")
	}
	if err := cfg.Plan.withDefaults().validate(); err != nil {
		return err
	}
	if st := cfg.Storm; st != nil {
		if !st.Profile.Active() {
			return fmt.Errorf("fleet: storm with inactive fault profile")
		}
		if st.StartRound < 0 || st.Rounds < 1 {
			return fmt.Errorf("fleet: storm window [%d,+%d) invalid", st.StartRound, st.Rounds)
		}
		if st.Target < CohortCanary || st.Target > CohortAll {
			return fmt.Errorf("fleet: unknown storm target %d", int(st.Target))
		}
	}
	return nil
}

// RoundRow is one round's fleet-level aggregate — the CSV row shape.
type RoundRow struct {
	Round          int
	Phase          string // controller phase: baseline/canary/waveN/full/rolled-back
	NewPolicyHosts int
	StormHosts     int // hosts with a storm armed during this round

	// Fleet-wide distribution of the per-host observations.
	P50IPC          float64
	P99IPC          float64
	P50ThroughputPS float64 // DDIO write updates/s (delivered throughput proxy)
	P99ThroughputPS float64
	MemGBps         float64 // fleet total
	DegradedHosts   int
	HostsDown       int    // hosts crash-down this round (excluded from the rates above)
	MaskChurn       uint64 // re-allocation iterations across the fleet
	SampleRejects   uint64
	Faults          uint64

	// Cohort comparison the rollback decision was made on.
	CanaryIPC           float64
	ControlIPC          float64
	CanaryDegradedFrac  float64
	ControlDegradedFrac float64
	RolledBack          bool // true from the rollback round onward
}

// Report is the outcome of a fleet run.
type Report struct {
	Rows []RoundRow
	// Obs holds every round's per-host observations in host order.
	Obs [][]HostObs
	// RolledBack reports whether the rollout was automatically rolled
	// back; FinalOnNew is how many hosts ended on the new policy.
	RolledBack bool
	FinalOnNew int
}

// Run executes a fleet simulation: per round it advances the rollout,
// applies the storm window, steps every host through the harness pool,
// aggregates, and lets the controller decide on rollback.
func Run(cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	plan := cfg.Plan.withDefaults()
	n := len(cfg.Hosts)
	ctrl := newController(plan, n)
	canaryN := ceilFrac(plan.waves()[0], n)

	// Every host starts on the old policy; the application is recorded in
	// each host's policy history.
	for _, h := range cfg.Hosts {
		if err := h.ApplyPolicy(plan.Old); err != nil {
			return nil, err
		}
	}

	rep := &Report{}
	for round := 0; round < cfg.Rounds; round++ {
		// Storm window first so crash rolls draw from the storm injector
		// from its very first armed round; then the crash/restart pass,
		// so the controller sees this round's churn before deciding.
		stormHosts := applyStormWindow(cfg, round, canaryN)
		tickCrashes(cfg)
		ctrl.noteDown(worstDownFrac(cfg.Hosts, ctrl.onNew))

		prevOnNew := ctrl.onNew
		onNew := ctrl.beginRound(round)
		for i := prevOnNew; i < onNew; i++ {
			if err := cfg.Hosts[i].ApplyPolicy(plan.New); err != nil {
				return nil, err
			}
		}
		if onNew != prevOnNew {
			emitEvent(cfg, "wave", fmt.Sprintf("%s: %d -> %d hosts on %q", ctrl.phase(), prevOnNew, onNew, plan.New.Name))
		}

		obs, err := stepAll(cfg, round)
		if err != nil {
			return nil, err
		}
		rep.Obs = append(rep.Obs, obs)

		canary := cohortStats(obs[:onNew])
		control := cohortStats(obs[onNew:])
		if ctrl.endRound(canary, control) {
			// Revert the new-policy cohort; the control cohort never saw
			// the new policy and stays untouched.
			for i := 0; i < onNew; i++ {
				if err := cfg.Hosts[i].ApplyPolicy(plan.Old); err != nil {
					return nil, err
				}
			}
			emitEvent(cfg, "rollback", fmt.Sprintf("round %d: canary ipc %.3f vs control %.3f, degraded %.2f vs %.2f",
				round, canary.MedianIPC, control.MedianIPC, canary.DegradedFrac, control.DegradedFrac))
			if cfg.Tel != nil {
				cfg.Tel.Counter("fleet", "", "rollbacks").Inc()
			}
		}

		row := makeRow(round, ctrl, stormHosts, obs, canary, control)
		rep.Rows = append(rep.Rows, row)
		emitRow(cfg, row)
	}
	// Leave no storm armed past the run.
	for _, h := range cfg.Hosts {
		if h.StormActive() {
			h.DisarmStorm()
		}
	}
	rep.RolledBack = ctrl.rolledBack
	rep.FinalOnNew = ctrl.onNew
	return rep, nil
}

// applyStormWindow arms/disarms the configured storm for this round and
// returns how many hosts have one armed.
func applyStormWindow(cfg Config, round, canaryN int) int {
	st := cfg.Storm
	if st == nil {
		return 0
	}
	var targets []*Host
	switch st.Target {
	case CohortCanary:
		targets = cfg.Hosts[:canaryN]
	case CohortControl:
		targets = cfg.Hosts[canaryN:]
	default:
		targets = cfg.Hosts
	}
	if round == st.StartRound {
		for _, h := range targets {
			h.ArmStorm(faults.NewInjector(st.Profile, st.Seed+int64(h.ID)+1))
		}
		emitEvent(cfg, "storm_armed", fmt.Sprintf("%s cohort (%d hosts), profile %s", st.Target, len(targets), st.Profile.Name))
	}
	if round == st.StartRound+st.Rounds {
		for _, h := range targets {
			h.DisarmStorm()
		}
		emitEvent(cfg, "storm_disarmed", fmt.Sprintf("%s cohort", st.Target))
	}
	armed := 0
	for _, h := range cfg.Hosts {
		if h.StormActive() {
			armed++
		}
	}
	return armed
}

// tickCrashes runs the per-round crash/restart pass in host-ID order
// (part of the determinism contract — it happens serially, before the
// parallel stepping). An up host with a crash-capable injector may crash
// (down for a seeded 1-3 rounds, daemon state lost unless checkpointed)
// or have its daemon bounced in place (immediate relaunch from the last
// checkpoint). A down host sits out whole rounds — no fault rolls, no
// stepping, clock frozen — and relaunches when its outage expires.
func tickCrashes(cfg Config) {
	for _, h := range cfg.Hosts {
		if h.down {
			h.downRounds--
			if h.downRounds > 0 {
				continue
			}
			h.down = false
			h.Relaunch()
			restores, fails := h.RestoreStats()
			emitEvent(cfg, "host_rejoin", fmt.Sprintf("%s rejoined (restores=%d cold_falls=%d)", h.Name, restores, fails))
			continue
		}
		inj := h.crashInjector()
		if inj == nil {
			continue
		}
		if crashed, rounds := inj.CrashHost(); crashed {
			h.down = true
			h.downRounds = rounds
			emitEvent(cfg, "host_crash", fmt.Sprintf("%s daemon died, down %d rounds", h.Name, rounds))
			continue
		}
		if inj.RestartHost() {
			h.Relaunch()
			emitEvent(cfg, "host_restart", fmt.Sprintf("%s daemon bounced in place", h.Name))
		}
	}
}

// worstDownFrac is the larger down-fraction of the two rollout cohorts
// (the whole fleet counts as one cohort while no rollout is active).
func worstDownFrac(hosts []*Host, onNew int) float64 {
	frac := func(hs []*Host) float64 {
		if len(hs) == 0 {
			return 0
		}
		down := 0
		for _, h := range hs {
			if h.down {
				down++
			}
		}
		return float64(down) / float64(len(hs))
	}
	if onNew <= 0 || onNew >= len(hosts) {
		return frac(hosts)
	}
	return math.Max(frac(hosts[:onNew]), frac(hosts[onNew:]))
}

// stepAll advances every host by one round on the harness pool: one job
// per host, results in submission (= host) order. Retries are
// deliberately zero — re-stepping a half-stepped host would fork its
// timeline — so a panicking host fails the run. A crash-down host keeps
// its job slot (total job counts stay invariant) but reports a Down
// observation without running: its clock is frozen for the round. Up
// hosts checkpoint their daemon state inside the job on the configured
// cadence — per-host state, so still race-free.
func stepAll(cfg Config, round int) ([]HostObs, error) {
	jobs := make([]harness.Job, len(cfg.Hosts))
	for i, h := range cfg.Hosts {
		h := h
		jobs[i] = harness.Job{
			Name:   fmt.Sprintf("round%03d/%s", round, h.Name),
			Figure: "fleet",
			Seed:   h.Seed,
			Fn: func() (any, error) {
				if h.down {
					return HostObs{Host: h.ID, Policy: h.policy.Name, Down: true}, nil
				}
				obs := h.step(cfg.RoundNS)
				if cfg.CheckpointEvery > 0 && (round+1)%cfg.CheckpointEvery == 0 {
					if err := h.Checkpoint(); err != nil {
						return nil, err
					}
				}
				return obs, nil
			},
		}
	}
	hrep := harness.Run(jobs, harness.Options{Workers: cfg.Workers, Progress: cfg.Progress, Label: "fleet"})
	if cfg.Manifest != nil {
		cfg.Manifest.Append(hrep)
	}
	obs := make([]HostObs, len(hrep.Results))
	for i, r := range hrep.Results {
		if r.Failed() {
			return nil, fmt.Errorf("fleet: %s failed: %s", r.Name, r.Err)
		}
		obs[i] = r.Row.(HostObs)
	}
	return obs, nil
}

// makeRow folds one round's observations into the fleet aggregate row.
// NewPolicyHosts reflects the controller's post-decision state: zero
// again on the round a rollback fired.
func makeRow(round int, ctrl *controller, stormHosts int, obs []HostObs, canary, control CohortStats) RoundRow {
	row := RoundRow{
		Round:               round,
		Phase:               ctrl.phase(),
		NewPolicyHosts:      ctrl.onNew,
		StormHosts:          stormHosts,
		CanaryIPC:           canary.MedianIPC,
		ControlIPC:          control.MedianIPC,
		CanaryDegradedFrac:  canary.DegradedFrac,
		ControlDegradedFrac: control.DegradedFrac,
		RolledBack:          ctrl.rolledBack,
	}
	ipcs := make([]float64, 0, len(obs))
	thru := make([]float64, 0, len(obs))
	for _, o := range obs {
		if o.Down {
			row.HostsDown++
			continue
		}
		ipcs = append(ipcs, o.IPC)
		thru = append(thru, o.DDIOHitPS)
		row.MemGBps += o.MemGBps
		row.MaskChurn += o.MaskChurn
		row.SampleRejects += o.Rejects
		row.Faults += o.Faults
		if o.Degraded {
			row.DegradedHosts++
		}
	}
	row.P50IPC = quantile(ipcs, 0.5)
	row.P99IPC = quantile(ipcs, 0.99)
	row.P50ThroughputPS = quantile(thru, 0.5)
	row.P99ThroughputPS = quantile(thru, 0.99)
	return row
}

// emitRow publishes one round's aggregates on the fleet sink.
func emitRow(cfg Config, row RoundRow) {
	tel := cfg.Tel
	if tel == nil {
		return
	}
	tel.Gauge("fleet", "", "p50_ipc").Set(row.P50IPC)
	tel.Gauge("fleet", "", "p99_ipc").Set(row.P99IPC)
	tel.Gauge("fleet", "", "p50_throughput_ps").Set(row.P50ThroughputPS)
	tel.Gauge("fleet", "", "p99_throughput_ps").Set(row.P99ThroughputPS)
	tel.Gauge("fleet", "", "degraded_hosts").Set(float64(row.DegradedHosts))
	tel.Gauge("fleet", "", "hosts_down").Set(float64(row.HostsDown))
	tel.Gauge("fleet", "", "new_policy_hosts").Set(float64(row.NewPolicyHosts))
	tel.Counter("fleet", "", "rounds").Inc()
	tel.Counter("fleet", "", "mask_churn").Add(row.MaskChurn)
	tel.Counter("fleet", "", "faults_injected").Add(row.Faults)
	emitEvent(cfg, "round", fmt.Sprintf("round %d %s: p50ipc=%.3f degraded=%d churn=%d",
		row.Round, row.Phase, row.P50IPC, row.DegradedHosts, row.MaskChurn))
}

// emitEvent publishes one controller event at the fleet's sim time.
func emitEvent(cfg Config, name, detail string) {
	if cfg.Tel == nil {
		return
	}
	cfg.Tel.Emit(telemetry.Event{
		TimeNS: cfg.Hosts[0].P.NowNS(), Sev: telemetry.SevInfo,
		Subsystem: "fleet", Name: name, Detail: detail,
	})
}

// quantile is the deterministic nearest-rank quantile of vals (q in
// (0,1]); it copies and sorts, leaving vals untouched.
func quantile(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
