package fleet

import (
	"fmt"

	"iatsim/internal/ckpt"
	"iatsim/internal/core"
	"iatsim/internal/faults"
	"iatsim/internal/nic"
	"iatsim/internal/sim"
	"iatsim/internal/telemetry"
)

// HostSpec describes one host joining the fleet. The caller assembles
// the platform, daemon and workload mix (internal/exp knows how);
// NewHost only wires the fleet-side bookkeeping around them.
type HostSpec struct {
	// ID is the host's fleet-wide index. Config.Hosts must be sorted by
	// strictly increasing ID — aggregation iterates hosts in slice
	// order, so the ordering is part of the determinism contract.
	ID int
	// Mix labels the host's workload mix (e.g. "pkt1500").
	Mix string
	// Seed is the host's base seed, recorded in harness results and
	// used to derive ambient fault schedules.
	Seed int64
	// Platform is the host's fully assembled machine.
	Platform *sim.Platform
	// Daemon is the host's IAT daemon, already registered as a platform
	// controller. Policies are applied through Daemon.SetParams.
	Daemon *core.Daemon
	// Tel is the host's private telemetry registry (nil = none).
	Tel *telemetry.Registry
	// IOCores are the cores whose IPC defines the host's health signal
	// (the I/O-processing cores, e.g. the OVS cores).
	IOCores []int
	// Faults is the host's own ambient fault profile; an inactive
	// profile arms nothing.
	Faults faults.Profile
}

// Host is one fleet member: a full simulated platform plus its IAT
// daemon, fault plumbing, applied-policy history and the counter
// baselines the per-round observations are derived from. Hosts are
// stepped exclusively by Run — one harness job per host per round, each
// job touching only its own host, which is what makes fleet stepping
// race-clean and byte-identical at any worker count.
type Host struct {
	ID   int
	Name string
	Mix  string
	Seed int64

	P       *sim.Platform
	Daemon  *core.Daemon
	Tel     *telemetry.Registry
	IOCores []int

	devs    []*nic.Device
	baseInj *faults.Injector // ambient profile injector (nil when inactive)
	storm   *faults.Injector // non-nil while a storm is armed on this host
	retired uint64           // faults injected by storms since disarmed

	policy  Policy
	history []string

	// Crash/restart state. A crashed host's control daemon is dead and
	// its clock frozen for downRounds rounds; lastCkpt is the in-memory
	// copy of its last written checkpoint — what survives the crash.
	down         bool
	downRounds   int
	lastCkpt     []byte
	restores     uint64
	restoreFails uint64

	prev hostCounters
}

// NewHost wires a fleet host around an assembled platform. The ambient
// fault profile (if active) is armed immediately with a schedule derived
// from the host seed, and the observation baseline is captured, so the
// first round's deltas start from here.
func NewHost(s HostSpec) *Host {
	h := &Host{
		ID:      s.ID,
		Name:    fmt.Sprintf("host-%03d", s.ID),
		Mix:     s.Mix,
		Seed:    s.Seed,
		P:       s.Platform,
		Daemon:  s.Daemon,
		Tel:     s.Tel,
		IOCores: append([]int(nil), s.IOCores...),
		devs:    s.Platform.Devices(),
	}
	if s.Faults.Active() {
		h.baseInj = faults.NewInjector(s.Faults, s.Seed+1)
		h.arm(h.baseInj)
	}
	h.prev = h.counters()
	return h
}

// arm points every fault surface of the platform at inj; nil disarms
// them all (passed as untyped nils so no layer ends up calling into a
// typed-nil interface).
func (h *Host) arm(inj *faults.Injector) {
	if inj == nil {
		h.P.MSR.SetFaultHook(nil)
		for _, d := range h.devs {
			d.SetFaults(nil)
		}
		h.P.SetPollFaults(nil)
		return
	}
	h.P.MSR.SetFaultHook(inj)
	for _, d := range h.devs {
		d.SetFaults(inj)
	}
	h.P.SetPollFaults(inj)
}

// injTotal is Injector.Total for a possibly-absent injector.
func injTotal(in *faults.Injector) uint64 {
	if in == nil {
		return 0
	}
	return in.Total()
}

// ArmStorm overlays a correlated-storm injector on the host: the storm
// replaces the ambient profile for its duration (a storm is the dominant
// fault source while it lasts) and DisarmStorm restores the ambient
// injector, whose schedule state persists across the storm.
func (h *Host) ArmStorm(inj *faults.Injector) {
	h.retired += injTotal(h.storm) // replacing an armed storm keeps its count
	h.storm = inj
	h.arm(inj)
}

// DisarmStorm removes the storm injector and re-arms the ambient one.
// The storm's injected-fault count is retired into h.retired so the
// host's cumulative fault counter stays monotone — otherwise the first
// post-storm round's delta would underflow.
func (h *Host) DisarmStorm() {
	h.retired += injTotal(h.storm)
	h.storm = nil
	h.arm(h.baseInj) // nil baseInj disarms everything
}

// StormActive reports whether a storm is currently armed on the host.
func (h *Host) StormActive() bool { return h.storm != nil }

// Down reports whether the host is currently crash-down (its daemon dead
// and its clock frozen until it rejoins).
func (h *Host) Down() bool { return h.down }

// crashInjector is the injector whose control stream decides this host's
// crash/restart fate: the storm while one is armed, else the ambient
// profile (nil when the host has neither).
func (h *Host) crashInjector() *faults.Injector {
	if h.storm != nil {
		return h.storm
	}
	return h.baseInj
}

// Checkpoint serialises the daemon's control-plane state into the host's
// in-memory checkpoint slot — the state a later Relaunch restores. The
// fault injectors are environmental here (they model the outside world,
// which a daemon death does not reset), so only the daemon state is
// captured.
func (h *Host) Checkpoint() error {
	st, err := h.Daemon.SnapshotState()
	if err != nil {
		return fmt.Errorf("fleet: %s: checkpoint: %w", h.Name, err)
	}
	iters, _ := h.Daemon.Iterations()
	data, err := ckpt.Marshal(&ckpt.Checkpoint{
		Iteration: iters,
		SimTimeNS: h.P.NowNS(),
		Daemon:    st,
	})
	if err != nil {
		return fmt.Errorf("fleet: %s: checkpoint: %w", h.Name, err)
	}
	h.lastCkpt = data
	if h.Tel != nil {
		h.Tel.Counter("ckpt", "", "writes").Inc()
	}
	return nil
}

// CheckpointBytes returns a copy of the host's current in-memory
// checkpoint (nil when none has been taken).
func (h *Host) CheckpointBytes() []byte { return append([]byte(nil), h.lastCkpt...) }

// SetCheckpointBytes primes the host's in-memory checkpoint (e.g. one
// restored from external storage); the next Relaunch restores from it.
func (h *Host) SetCheckpointBytes(data []byte) { h.lastCkpt = append([]byte(nil), data...) }

// RestoreStats reports how many daemon relaunches restored from a
// checkpoint and how many fell back to a cold start because the
// checkpoint was absent, corrupt, or from a different configuration.
func (h *Host) RestoreStats() (restores, failures uint64) { return h.restores, h.restoreFails }

// Relaunch bounces the host's control daemon: the process cold-starts,
// then restores the last checkpoint if one decodes and matches the
// daemon's configuration. A missing checkpoint is a plain cold start; a
// bad one additionally counts as a restore failure — never an error, the
// fleet keeps running either way.
func (h *Host) Relaunch() {
	h.Daemon.Restart()
	if len(h.lastCkpt) > 0 {
		c, err := ckpt.Unmarshal(h.lastCkpt)
		if err == nil {
			err = h.Daemon.RestoreState(c.Daemon)
		}
		if err != nil {
			// Shed any partial restore; the daemon stays cold.
			h.Daemon.Restart()
			h.restoreFails++
			if h.Tel != nil {
				h.Tel.Counter("ckpt", "", "restore_failures").Inc()
			}
		} else {
			h.restores++
			if h.Tel != nil {
				h.Tel.Counter("ckpt", "", "restores").Inc()
			}
		}
	}
	// Re-anchor the daemon-derived observation baselines: the relaunched
	// daemon's counters rewound (to the checkpoint or to zero), and the
	// next round's deltas must not underflow.
	_, h.prev.unstable = h.Daemon.Iterations()
	h.prev.health = h.Daemon.Health()
}

// ApplyPolicy switches the host's daemon to pol and records it in the
// policy history. A non-nil Spec also swaps the daemon's decision
// engine; a nil Spec leaves the current engine running.
func (h *Host) ApplyPolicy(pol Policy) error {
	if err := h.Daemon.SetParams(pol.Params); err != nil {
		return fmt.Errorf("fleet: %s: apply policy %q: %w", h.Name, pol.Name, err)
	}
	if pol.Spec != nil {
		if err := h.Daemon.SetPolicy(pol.Spec.New()); err != nil {
			return fmt.Errorf("fleet: %s: apply policy %q: %w", h.Name, pol.Name, err)
		}
	}
	h.policy = pol
	h.history = append(h.history, pol.Name)
	return nil
}

// Policy returns the name of the currently applied policy.
func (h *Host) Policy() string { return h.policy.Name }

// PolicyHistory returns the names of every policy applied, in order.
func (h *Host) PolicyHistory() []string { return append([]string(nil), h.history...) }

// Snapshot cuts the host's telemetry snapshot at its current sim time
// (nil when the host is uninstrumented).
func (h *Host) Snapshot() *telemetry.Snapshot { return h.Tel.Snapshot(h.P.NowNS()) }

// hostCounters is the cumulative-counter baseline one observation
// window is differenced against.
type hostCounters struct {
	timeNS     float64
	instr      uint64
	cycles     uint64
	ddioHits   uint64
	ddioMisses uint64
	memBytes   uint64
	unstable   uint64
	health     core.HealthStats
	faults     uint64
}

func (h *Host) counters() hostCounters {
	llc := h.P.Hier.LLC().TotalStats()
	c := hostCounters{
		timeNS:     h.P.NowNS(),
		ddioHits:   llc.DDIOHits,
		ddioMisses: llc.DDIOMisses,
		memBytes:   h.P.Mem.Stats().Total(),
		health:     h.Daemon.Health(),
		faults:     injTotal(h.baseInj) + injTotal(h.storm) + h.retired,
	}
	_, c.unstable = h.Daemon.Iterations()
	for _, core := range h.IOCores {
		c.instr += h.P.CoreInstr(core)
		c.cycles += h.P.CoreCycles(core)
	}
	return c
}

// HostObs is one host's observation for one round: rates are reported
// in paper-world units (scaled back by the platform's Scale), counts
// are deltas over the round.
type HostObs struct {
	Host       int
	Policy     string
	Down       bool    // host was crash-down this round; all rates are zero
	IPC        float64 // aggregate IPC of the IOCores
	DDIOHitPS  float64 // delivered-throughput proxy: DDIO write updates/s
	DDIOMissPS float64
	MemGBps    float64
	MaskChurn  uint64 // unstable daemon iterations (re-allocations)
	Degraded   bool   // holding the safe static fallback at round end
	Rejects    uint64 // counter samples the daemon's sanity screen discarded
	Faults     uint64 // injected faults (ambient + storm)
}

// step advances the host by durNS and returns the round observation.
// It is the body of the per-host harness job; it must touch nothing
// outside its own host.
func (h *Host) step(durNS float64) HostObs {
	h.P.Run(durNS)
	cur := h.counters()
	prev := h.prev
	h.prev = cur

	scale := h.P.Cfg.Scale
	secs := (cur.timeNS - prev.timeNS) / 1e9
	if secs <= 0 {
		secs = 1
	}
	obs := HostObs{
		Host:       h.ID,
		Policy:     h.policy.Name,
		DDIOHitPS:  float64(cur.ddioHits-prev.ddioHits) / secs * scale,
		DDIOMissPS: float64(cur.ddioMisses-prev.ddioMisses) / secs * scale,
		MemGBps:    float64(cur.memBytes-prev.memBytes) / (cur.timeNS - prev.timeNS) * scale,
		MaskChurn:  cur.unstable - prev.unstable,
		Degraded:   cur.health.Degraded,
		Rejects:    cur.health.SampleRejects - prev.health.SampleRejects,
		Faults:     cur.faults - prev.faults,
	}
	if dc := cur.cycles - prev.cycles; dc > 0 {
		obs.IPC = float64(cur.instr-prev.instr) / float64(dc)
	}
	return obs
}
