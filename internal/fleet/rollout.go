package fleet

import (
	"fmt"
	"math"

	"iatsim/internal/core"
	"iatsim/internal/policy"
)

// Policy is a named daemon configuration the control plane can roll out:
// a parameter set (DDIO way budget, thresholds, polling interval —
// anything in core.Params) and, optionally, a decision-engine change. A
// nil Spec leaves the host's engine alone, so parameter-only rollouts
// behave exactly as before the policy engine existed.
type Policy struct {
	Name   string
	Params core.Params
	// Spec, when non-nil, switches the host daemon's decision engine
	// (e.g. IAT -> static:2) as part of applying this policy. Plans that
	// stage an engine change must set Spec on BOTH Old and New, so a
	// rollback reverts the engine too.
	Spec *policy.Spec
}

// Strategy selects how a rollout expands across the fleet.
type Strategy int

const (
	// BigBang switches every host at once. No control cohort remains,
	// so regressions cannot be detected — the strategy exists as the
	// cautionary baseline the canary comparison is made against.
	BigBang Strategy = iota
	// Canary switches a small cohort first, bakes it against the
	// control cohort, then promotes to the whole fleet.
	Canary
	// Staged expands through three waves (canary fraction, half, all),
	// baking each wave before the next.
	Staged
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case BigBang:
		return "bigbang"
	case Canary:
		return "canary"
	case Staged:
		return "staged"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// StrategyNames lists the valid -rollout values.
func StrategyNames() []string { return []string{"bigbang", "canary", "staged"} }

// StrategyByName parses a -rollout flag value.
func StrategyByName(name string) (Strategy, error) {
	switch name {
	case "bigbang":
		return BigBang, nil
	case "canary":
		return Canary, nil
	case "staged":
		return Staged, nil
	}
	return 0, fmt.Errorf("fleet: unknown rollout strategy %q (valid: bigbang, canary, staged)", name)
}

// Plan is one policy rollout: which strategy, which policies, when it
// starts, how long each wave bakes, and the regression thresholds that
// trigger automatic rollback.
type Plan struct {
	Strategy Strategy
	// Old is the policy every host starts on; New is rolled out.
	Old, New Policy
	// StartRound is the first round of the rollout; earlier rounds
	// establish the fleet-wide baseline (default 2).
	StartRound int
	// BakeRounds is how many rounds each wave is observed before the
	// next wave expands (default 2).
	BakeRounds int
	// CanaryFraction sizes the first wave for Canary/Staged (default
	// 1/8, always at least one host).
	CanaryFraction float64
	// MaxDegradedDelta rolls the canary back when its degraded-host
	// fraction exceeds the control cohort's by more than this (default
	// 0.25).
	MaxDegradedDelta float64
	// MaxIPCDrop rolls the canary back when its median I/O-core IPC
	// falls more than this fraction below the control cohort's median
	// (default 0.2).
	MaxIPCDrop float64
}

func (p Plan) withDefaults() Plan {
	if p.StartRound == 0 {
		p.StartRound = 2
	}
	if p.BakeRounds == 0 {
		p.BakeRounds = 2
	}
	if p.CanaryFraction == 0 {
		p.CanaryFraction = 0.125
	}
	if p.MaxDegradedDelta == 0 {
		p.MaxDegradedDelta = 0.25
	}
	if p.MaxIPCDrop == 0 {
		p.MaxIPCDrop = 0.2
	}
	return p
}

// validate rejects nonsense plans up front.
func (p Plan) validate() error {
	if p.Old.Name == "" || p.New.Name == "" {
		return fmt.Errorf("fleet: plan needs named Old and New policies")
	}
	if p.StartRound < 1 {
		return fmt.Errorf("fleet: StartRound must be >= 1 (round 0 establishes the baseline)")
	}
	if p.BakeRounds < 1 {
		return fmt.Errorf("fleet: BakeRounds must be >= 1")
	}
	if p.CanaryFraction <= 0 || p.CanaryFraction > 1 {
		return fmt.Errorf("fleet: CanaryFraction %v out of (0,1]", p.CanaryFraction)
	}
	if p.Strategy < BigBang || p.Strategy > Staged {
		return fmt.Errorf("fleet: unknown strategy %d", int(p.Strategy))
	}
	return nil
}

// waves returns the cumulative fleet fractions each wave switches to the
// new policy.
func (p Plan) waves() []float64 {
	switch p.Strategy {
	case Canary:
		return []float64{p.CanaryFraction, 1}
	case Staged:
		return []float64{p.CanaryFraction, 0.5, 1}
	}
	return []float64{1}
}

// ceilFrac is the host count of a cumulative wave fraction: at least one
// host, at most all of them.
func ceilFrac(frac float64, n int) int {
	c := int(math.Ceil(frac * float64(n)))
	if c < 1 {
		c = 1
	}
	if c > n {
		c = n
	}
	return c
}

// CohortStats summarises one cohort for the regression comparison.
type CohortStats struct {
	Hosts        int
	MedianIPC    float64
	DegradedFrac float64
}

// cohortStats folds a cohort's observations. Crash-down hosts produced
// no observation this round and are excluded — Hosts counts the hosts
// that actually reported.
func cohortStats(obs []HostObs) CohortStats {
	var s CohortStats
	ipcs := make([]float64, 0, len(obs))
	degraded := 0
	for _, o := range obs {
		if o.Down {
			continue
		}
		s.Hosts++
		ipcs = append(ipcs, o.IPC)
		if o.Degraded {
			degraded++
		}
	}
	if s.Hosts == 0 {
		return s
	}
	s.MedianIPC = quantile(ipcs, 0.5)
	s.DegradedFrac = float64(degraded) / float64(s.Hosts)
	return s
}

// regressed is the rollback predicate: the new-policy cohort is
// considered regressed vs the control cohort when materially more of it
// is degraded, or its median I/O IPC trails the control median by more
// than the tolerance. A conservative controller cannot (and does not try
// to) distinguish policy-caused regressions from environmental ones — a
// fault storm that happens to hit the canary cohort also rolls back.
func regressed(canary, control CohortStats, p Plan) bool {
	if canary.Hosts == 0 || control.Hosts == 0 {
		return false
	}
	if canary.DegradedFrac > control.DegradedFrac+p.MaxDegradedDelta {
		return true
	}
	return canary.MedianIPC < control.MedianIPC*(1-p.MaxIPCDrop)
}

// maxDownFrac is the host-churn tolerance of the rollout: while more
// than this fraction of a cohort is crash-down, promotion, baking and
// rollback judgement all pause — cohort health computed over a gutted
// cohort is noise, not signal.
const maxDownFrac = 0.1

// controller is the rollout state machine Run drives once per round.
type controller struct {
	plan  Plan
	waves []float64
	n     int

	wave       int  // next wave index to apply
	onNew      int  // hosts currently on the new policy (a prefix of Hosts)
	bake       int  // bake rounds remaining for the current wave
	paused     bool // too many hosts down; rollout frozen this round
	rolledBack bool
	done       bool // fully promoted
}

// noteDown records the worst per-cohort fraction of hosts currently
// crash-down; the rollout freezes while it exceeds maxDownFrac.
func (c *controller) noteDown(downFrac float64) { c.paused = downFrac > maxDownFrac }

func newController(plan Plan, n int) *controller {
	return &controller{plan: plan, waves: plan.waves(), n: n, bake: 0}
}

// beginRound advances the rollout if the previous wave finished baking
// and returns how many hosts must be on the new policy this round.
func (c *controller) beginRound(round int) int {
	if c.paused || c.rolledBack || c.done || round < c.plan.StartRound || c.bake > 0 {
		return c.onNew
	}
	if c.wave < len(c.waves) {
		c.onNew = ceilFrac(c.waves[c.wave], c.n)
		c.wave++
		c.bake = c.plan.BakeRounds
	}
	return c.onNew
}

// endRound evaluates the round's cohort health. It returns true when the
// new-policy cohort regressed and the rollout must be rolled back (the
// caller reverts the hosts); otherwise it advances the bake clock.
func (c *controller) endRound(canary, control CohortStats) bool {
	if c.rolledBack || c.onNew == 0 {
		return false
	}
	// A paused round neither bakes nor judges: with a meaningful share of
	// a cohort missing, neither promotion nor rollback evidence is sound.
	if c.paused {
		return false
	}
	// Only a partial rollout has a control cohort to compare against;
	// past full promotion (and for big-bang from the start) there is no
	// basis for automatic rollback.
	if c.onNew < c.n && regressed(canary, control, c.plan) {
		c.rolledBack = true
		c.onNew = 0
		return true
	}
	if c.bake > 0 {
		c.bake--
	}
	if c.bake == 0 && c.wave == len(c.waves) {
		c.done = true
	}
	return false
}

// phase labels the controller state for round rows and progress output.
func (c *controller) phase() string {
	switch {
	case c.rolledBack:
		return "rolled-back"
	case c.onNew == 0:
		return "baseline"
	case c.onNew == c.n:
		return "full"
	case c.wave == 1:
		return "canary"
	default:
		return fmt.Sprintf("wave%d", c.wave)
	}
}
