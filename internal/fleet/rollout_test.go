package fleet

import (
	"testing"

	"iatsim/internal/core"
)

func testPlan(s Strategy) Plan {
	return Plan{
		Strategy: s,
		Old:      Policy{Name: "old", Params: core.DefaultParams()},
		New:      Policy{Name: "new", Params: core.DefaultParams()},
	}.withDefaults()
}

// healthy returns cohort stats with identical health on both sides.
func healthy(canaryHosts, controlHosts int) (CohortStats, CohortStats) {
	return CohortStats{Hosts: canaryHosts, MedianIPC: 1.0},
		CohortStats{Hosts: controlHosts, MedianIPC: 1.0}
}

func TestStrategyByName(t *testing.T) {
	for _, name := range StrategyNames() {
		s, err := StrategyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.String() != name {
			t.Fatalf("round trip %q -> %v", name, s)
		}
	}
	if _, err := StrategyByName("yolo"); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestPlanWaves(t *testing.T) {
	if w := testPlan(BigBang).waves(); len(w) != 1 || w[0] != 1 {
		t.Fatalf("bigbang waves = %v", w)
	}
	if w := testPlan(Canary).waves(); len(w) != 2 || w[0] != 0.125 || w[1] != 1 {
		t.Fatalf("canary waves = %v", w)
	}
	if w := testPlan(Staged).waves(); len(w) != 3 || w[1] != 0.5 {
		t.Fatalf("staged waves = %v", w)
	}
}

func TestCeilFrac(t *testing.T) {
	cases := []struct {
		frac float64
		n    int
		want int
	}{
		{0.125, 8, 1}, {0.125, 32, 4}, {0.125, 3, 1}, {0.5, 7, 4}, {1, 5, 5}, {0.001, 100, 1},
	}
	for _, c := range cases {
		if got := ceilFrac(c.frac, c.n); got != c.want {
			t.Errorf("ceilFrac(%v, %d) = %d, want %d", c.frac, c.n, got, c.want)
		}
	}
}

func TestQuantileNearestRank(t *testing.T) {
	vals := []float64{5, 1, 4, 2, 3}
	if got := quantile(vals, 0.5); got != 3 {
		t.Fatalf("p50 = %v, want 3", got)
	}
	if got := quantile(vals, 0.99); got != 5 {
		t.Fatalf("p99 = %v, want 5", got)
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Fatalf("quantile(nil) = %v", got)
	}
	// The input must not be reordered.
	if vals[0] != 5 || vals[4] != 3 {
		t.Fatalf("quantile mutated input: %v", vals)
	}
}

func TestControllerCanaryPromotes(t *testing.T) {
	// 8 hosts, canary 1/8, start round 2, bake 2: the canary cohort (1
	// host) runs rounds 2-3, the full fleet switches at round 4.
	ctrl := newController(testPlan(Canary), 8)
	wantOnNew := []int{0, 0, 1, 1, 8, 8, 8}
	wantPhase := []string{"baseline", "baseline", "canary", "canary", "full", "full", "full"}
	for round := 0; round < len(wantOnNew); round++ {
		onNew := ctrl.beginRound(round)
		if onNew != wantOnNew[round] {
			t.Fatalf("round %d: onNew = %d, want %d", round, onNew, wantOnNew[round])
		}
		if ctrl.phase() != wantPhase[round] {
			t.Fatalf("round %d: phase = %q, want %q", round, ctrl.phase(), wantPhase[round])
		}
		canary, control := healthy(onNew, 8-onNew)
		if ctrl.endRound(canary, control) {
			t.Fatalf("round %d: healthy fleet rolled back", round)
		}
	}
	if !ctrl.done || ctrl.rolledBack {
		t.Fatalf("controller not promoted: %+v", ctrl)
	}
}

func TestControllerStagedWaves(t *testing.T) {
	// 32 hosts, staged 1/8 -> 1/2 -> all with bake 2 from round 2.
	ctrl := newController(testPlan(Staged), 32)
	wantOnNew := []int{0, 0, 4, 4, 16, 16, 32, 32}
	for round := 0; round < len(wantOnNew); round++ {
		onNew := ctrl.beginRound(round)
		if onNew != wantOnNew[round] {
			t.Fatalf("round %d: onNew = %d, want %d", round, onNew, wantOnNew[round])
		}
		canary, control := healthy(onNew, 32-onNew)
		ctrl.endRound(canary, control)
	}
	if ctrl.phase() != "full" || !ctrl.done {
		t.Fatalf("staged rollout did not complete: phase=%q", ctrl.phase())
	}
}

func TestControllerRollsBackOnDegradedCanary(t *testing.T) {
	ctrl := newController(testPlan(Canary), 8)
	ctrl.beginRound(0)
	ctrl.endRound(healthy(0, 8))
	ctrl.beginRound(1)
	ctrl.endRound(healthy(0, 8))
	onNew := ctrl.beginRound(2)
	if onNew != 1 {
		t.Fatalf("canary cohort = %d, want 1", onNew)
	}
	canary := CohortStats{Hosts: 1, MedianIPC: 1.0, DegradedFrac: 1.0}
	control := CohortStats{Hosts: 7, MedianIPC: 1.0, DegradedFrac: 0}
	if !ctrl.endRound(canary, control) {
		t.Fatal("degraded canary did not roll back")
	}
	if !ctrl.rolledBack || ctrl.onNew != 0 || ctrl.phase() != "rolled-back" {
		t.Fatalf("controller after rollback: %+v", ctrl)
	}
	// The rollout never resumes.
	for round := 3; round < 10; round++ {
		if got := ctrl.beginRound(round); got != 0 {
			t.Fatalf("round %d re-advanced a rolled-back rollout to %d", round, got)
		}
	}
}

func TestControllerRollsBackOnIPCRegression(t *testing.T) {
	ctrl := newController(testPlan(Canary), 8)
	for round := 0; round < 2; round++ {
		ctrl.beginRound(round)
		ctrl.endRound(healthy(0, 8))
	}
	ctrl.beginRound(2)
	canary := CohortStats{Hosts: 1, MedianIPC: 0.5}
	control := CohortStats{Hosts: 7, MedianIPC: 1.0}
	if !ctrl.endRound(canary, control) {
		t.Fatal("50% IPC drop did not roll back (tolerance is 20%)")
	}
	// A drop inside the tolerance must not.
	ctrl2 := newController(testPlan(Canary), 8)
	for round := 0; round < 2; round++ {
		ctrl2.beginRound(round)
		ctrl2.endRound(healthy(0, 8))
	}
	ctrl2.beginRound(2)
	if ctrl2.endRound(CohortStats{Hosts: 1, MedianIPC: 0.9}, CohortStats{Hosts: 7, MedianIPC: 1.0}) {
		t.Fatal("10% IPC drop rolled back under a 20% tolerance")
	}
}

func TestBigBangCannotRollBack(t *testing.T) {
	// Big-bang leaves no control cohort: even a fully degraded fleet has
	// nothing to compare against, so the rollout sticks. That asymmetry
	// is the point of canarying.
	ctrl := newController(testPlan(BigBang), 8)
	for round := 0; round < 2; round++ {
		ctrl.beginRound(round)
		ctrl.endRound(healthy(0, 8))
	}
	if onNew := ctrl.beginRound(2); onNew != 8 {
		t.Fatalf("bigbang onNew = %d, want 8", onNew)
	}
	bad := CohortStats{Hosts: 8, MedianIPC: 0.01, DegradedFrac: 1}
	if ctrl.endRound(bad, CohortStats{}) {
		t.Fatal("bigbang rolled back without a control cohort")
	}
	if ctrl.rolledBack {
		t.Fatal("rolledBack set")
	}
}

func TestControllerPausesWhileHostsDown(t *testing.T) {
	// Promotion freezes while a cohort is gutted by crashes.
	ctrl := newController(testPlan(Canary), 8)
	for round := 0; round < 2; round++ {
		ctrl.beginRound(round)
		ctrl.endRound(healthy(0, 8))
	}
	ctrl.noteDown(0.25)
	if got := ctrl.beginRound(2); got != 0 {
		t.Fatalf("promoted to %d hosts while paused", got)
	}
	ctrl.noteDown(0)
	if got := ctrl.beginRound(3); got != 1 {
		t.Fatalf("rollout did not resume after churn cleared: onNew = %d", got)
	}

	// A paused round neither bakes nor judges: the same regression that
	// would roll the canary back is ignored until the churn clears.
	bad := CohortStats{Hosts: 1, MedianIPC: 0.1}
	good := CohortStats{Hosts: 7, MedianIPC: 1.0}
	ctrl.noteDown(0.5)
	bakeBefore := ctrl.bake
	if ctrl.endRound(bad, good) {
		t.Fatal("rolled back on a paused round")
	}
	if ctrl.bake != bakeBefore {
		t.Fatalf("bake advanced while paused: %d -> %d", bakeBefore, ctrl.bake)
	}
	ctrl.noteDown(0.05) // at or below the 10% tolerance: not paused
	if !ctrl.endRound(bad, good) {
		t.Fatal("regression not judged after the pause lifted")
	}
}

func TestWorstDownFrac(t *testing.T) {
	mk := func(downs ...bool) []*Host {
		hosts := make([]*Host, len(downs))
		for i, d := range downs {
			hosts[i] = &Host{ID: i, down: d}
		}
		return hosts
	}
	// No rollout active: the fleet is one cohort.
	if got := worstDownFrac(mk(true, false, false, false), 0); got != 0.25 {
		t.Fatalf("fleet frac = %v, want 0.25", got)
	}
	// Canary of 1 down: its cohort is 100% down even though the fleet
	// fraction is small.
	if got := worstDownFrac(mk(true, false, false, false), 1); got != 1.0 {
		t.Fatalf("canary frac = %v, want 1.0", got)
	}
	// Control cohort churn counts too.
	if got := worstDownFrac(mk(false, true, true, false), 1); got != 2.0/3.0 {
		t.Fatalf("control frac = %v, want 2/3", got)
	}
	if got := worstDownFrac(mk(false, false), 0); got != 0 {
		t.Fatalf("healthy fleet frac = %v, want 0", got)
	}
}

func TestCohortStatsSkipsDownHosts(t *testing.T) {
	obs := []HostObs{
		{IPC: 0.4, Degraded: true},
		{Down: true},
		{IPC: 0.8},
	}
	s := cohortStats(obs)
	if s.Hosts != 2 || s.DegradedFrac != 0.5 {
		t.Fatalf("stats = %+v, want 2 reporting hosts, half degraded", s)
	}
	if all := cohortStats([]HostObs{{Down: true}}); all.Hosts != 0 || all.MedianIPC != 0 {
		t.Fatalf("all-down cohort stats = %+v", all)
	}
}

func TestMakeRowCountsDownHosts(t *testing.T) {
	ctrl := newController(testPlan(Canary), 3)
	obs := []HostObs{
		{IPC: 0.5, MaskChurn: 2, Faults: 3},
		{Down: true, Policy: "old"},
		{IPC: 0.7, Degraded: true},
	}
	row := makeRow(4, ctrl, 0, obs, cohortStats(nil), cohortStats(obs))
	if row.HostsDown != 1 {
		t.Fatalf("HostsDown = %d, want 1", row.HostsDown)
	}
	if row.DegradedHosts != 1 || row.MaskChurn != 2 || row.Faults != 3 {
		t.Fatalf("down host leaked into aggregates: %+v", row)
	}
	if row.P50IPC != 0.5 && row.P50IPC != 0.7 {
		t.Fatalf("p50 over up hosts = %v", row.P50IPC)
	}
}

func TestCohortStats(t *testing.T) {
	obs := []HostObs{
		{IPC: 0.4, Degraded: true},
		{IPC: 0.8},
		{IPC: 0.6},
		{IPC: 1.0, Degraded: true},
	}
	s := cohortStats(obs)
	if s.Hosts != 4 || s.DegradedFrac != 0.5 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MedianIPC != 0.6 { // nearest-rank p50 of {0.4,0.6,0.8,1.0}
		t.Fatalf("median = %v", s.MedianIPC)
	}
	if z := cohortStats(nil); z.Hosts != 0 || z.MedianIPC != 0 {
		t.Fatalf("empty cohort stats = %+v", z)
	}
}

func TestRegressedNeedsBothCohorts(t *testing.T) {
	p := testPlan(Canary)
	bad := CohortStats{Hosts: 1, MedianIPC: 0, DegradedFrac: 1}
	if regressed(bad, CohortStats{}, p) {
		t.Fatal("regression declared without a control cohort")
	}
	if regressed(CohortStats{}, bad, p) {
		t.Fatal("regression declared without a canary cohort")
	}
}

func TestPlanValidation(t *testing.T) {
	good := testPlan(Canary)
	if err := good.validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Old.Name = ""
	if bad.validate() == nil {
		t.Error("unnamed old policy accepted")
	}
	bad = good
	bad.CanaryFraction = 1.5
	if bad.validate() == nil {
		t.Error("canary fraction > 1 accepted")
	}
	bad = good
	bad.StartRound = -1
	if bad.validate() == nil {
		t.Error("negative start round accepted")
	}
}
