// Package harness executes experiment sweeps in parallel without
// changing their results.
//
// Every sweep point of the paper's evaluation is independent: it builds
// its own platform, runs it, and returns one typed row. The harness
// turns each point into a self-contained Job and executes job sets on a
// bounded worker pool, reassembling results in submission order — so a
// run's output is bit-for-bit identical to the sequential run at any
// worker count.
//
// The harness also owns the cross-cutting concerns of a regeneration
// run that the figure runners should not: per-job wall-time and retry
// accounting, panic capture (a crashed simulation point becomes a
// reported job failure instead of killing the whole regeneration), a
// live progress line, and the per-run JSON manifest (manifest.go).
package harness

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"iatsim/internal/telemetry"
)

// Job is one self-contained simulation point.
type Job struct {
	// Name uniquely identifies the point within a run, e.g.
	// "fig8/pkt=64/iat". It keys the manifest and seed derivation.
	Name string
	// Figure is the experiment the point belongs to ("fig8").
	Figure string
	// Seed is the point's RNG seed, recorded in the manifest. The
	// harness does not interpret it; the closure bakes it into the
	// scenario it builds.
	Seed int64
	// Exclusive marks a job that measures host wall-clock time (the
	// Fig. 15 daemon-overhead points): it must not share the machine
	// with other jobs, so the pool drains and runs it alone.
	Exclusive bool
	// Fn computes the point's row (or row slice). It must be
	// self-contained: build its own platform and share no mutable
	// state with other jobs.
	Fn func() (any, error)
	// TelFn, when set, is used instead of Fn and additionally returns
	// the point's telemetry snapshot. The harness hands it a private
	// registry when Options.TelemetryDir is set and nil otherwise —
	// nil flows through telemetry's nil-safe handles, so the closure
	// wires it unconditionally and pays nothing when telemetry is off.
	TelFn func(tel *telemetry.Registry) (row any, snap *telemetry.Snapshot, err error)
}

// Result is the outcome of one job.
type Result struct {
	Name   string `json:"name"`
	Figure string `json:"figure,omitempty"`
	Seed   int64  `json:"seed"`
	// Row is the job's return value (nil on failure). It is not part
	// of the manifest.
	Row any `json:"-"`
	// Err is the final attempt's failure ("" on success). Panics are
	// captured here with their stack.
	Err string `json:"error,omitempty"`
	// Attempts counts executions (1 = no retries needed).
	Attempts int     `json:"attempts"`
	WallMS   float64 `json:"wall_ms"`
	// Snapshot is the path of the job's telemetry snapshot JSON ("" when
	// telemetry was off or the job produced none).
	Snapshot string `json:"snapshot,omitempty"`
}

// Failed reports whether the job exhausted its attempts.
func (r Result) Failed() bool { return r.Err != "" }

// Options configures a Run.
type Options struct {
	// Workers bounds the pool; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Retries is the number of re-executions after a failed attempt.
	Retries int
	// Progress, when non-nil, receives a live single-line status
	// (completed/total, elapsed, ETA) as jobs finish.
	Progress io.Writer
	// Label prefixes the progress line; defaults to the first job's
	// Figure.
	Label string
	// TelemetryDir, when non-empty, gives every TelFn job a private
	// telemetry registry and writes its returned snapshot to
	// <TelemetryDir>/<SnapshotBase(job name)>.{json,csv,trace.json}.
	TelemetryDir string
}

// Report is the outcome of a Run.
type Report struct {
	// Results holds one entry per job, in submission order,
	// regardless of completion order or worker count.
	Results  []Result
	Failures int
	WallMS   float64
}

// Run executes jobs on a bounded worker pool and returns their results
// in submission order. Exclusive jobs run after the pool drains, one at
// a time. Run never panics because of a job: a panicking Fn is captured
// as that job's failure.
func Run(jobs []Job, o Options) *Report {
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rep := &Report{Results: make([]Result, len(jobs))}
	start := time.Now()
	prog := newProgress(o, jobs)

	var parallel, exclusive []int
	for i, j := range jobs {
		if j.Exclusive {
			exclusive = append(exclusive, i)
		} else {
			parallel = append(parallel, i)
		}
	}

	// Result slots are disjoint per job, so workers write without a
	// lock; the WaitGroup is the only synchronisation point.
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers && w < len(parallel); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				rep.Results[i] = execute(jobs[i], o)
				prog.completed(rep.Results[i])
			}
		}()
	}
	for _, i := range parallel {
		idx <- i
	}
	close(idx)
	wg.Wait()

	// Wall-clock-measured jobs get the machine to themselves.
	for _, i := range exclusive {
		rep.Results[i] = execute(jobs[i], o)
		prog.completed(rep.Results[i])
	}

	prog.finish()
	for i := range rep.Results {
		if rep.Results[i].Failed() {
			rep.Failures++
		}
	}
	rep.WallMS = float64(time.Since(start)) / float64(time.Millisecond)
	return rep
}

// execute runs one job to completion, retrying failed attempts. A
// telemetry snapshot that cannot be persisted fails the attempt: the
// caller asked for telemetry, so silently dropping it would misreport
// the run.
func execute(j Job, o Options) Result {
	res := Result{Name: j.Name, Figure: j.Figure, Seed: j.Seed}
	t0 := time.Now()
	for a := 0; a <= o.Retries; a++ {
		res.Attempts = a + 1
		row, snap, err := capture(j, o.TelemetryDir != "")
		if err == nil && snap != nil && o.TelemetryDir != "" {
			res.Snapshot, err = writeSnapshot(o.TelemetryDir, j.Name, snap)
		}
		if err == nil {
			res.Row, res.Err = row, ""
			break
		}
		res.Err = err.Error()
	}
	res.WallMS = float64(time.Since(t0)) / float64(time.Millisecond)
	return res
}

// capture invokes the job's function, converting a panic into an error
// carrying the stack trace. TelFn jobs get a fresh registry when
// telemetry collection is on.
func capture(j Job, wantTel bool) (row any, snap *telemetry.Snapshot, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v\n%s", p, debug.Stack())
		}
	}()
	if j.TelFn != nil {
		var reg *telemetry.Registry
		if wantTel {
			reg = telemetry.NewRegistry()
		}
		return j.TelFn(reg)
	}
	row, err = j.Fn()
	return row, nil, err
}

// progress renders the live status line. All methods are safe on a nil
// receiver (no Progress writer configured).
type progress struct {
	mu    sync.Mutex
	w     io.Writer
	label string
	total int
	done  int
	fails int
	start time.Time
}

func newProgress(o Options, jobs []Job) *progress {
	if o.Progress == nil || len(jobs) == 0 {
		return nil
	}
	label := o.Label
	if label == "" {
		label = jobs[0].Figure
	}
	if label == "" {
		label = "run"
	}
	return &progress{w: o.Progress, label: label, total: len(jobs), start: time.Now()}
}

func (p *progress) completed(r Result) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	if r.Failed() {
		p.fails++
	}
	elapsed := time.Since(p.start)
	line := fmt.Sprintf("\r%s: %d/%d jobs", p.label, p.done, p.total)
	if p.fails > 0 {
		line += fmt.Sprintf(" (%d failed)", p.fails)
	}
	if p.done < p.total {
		eta := time.Duration(float64(elapsed) / float64(p.done) * float64(p.total-p.done))
		line += fmt.Sprintf(", %.1fs elapsed, ETA %.1fs", elapsed.Seconds(), eta.Seconds())
	} else {
		line += fmt.Sprintf(" in %.1fs", elapsed.Seconds())
	}
	fmt.Fprintf(p.w, "%-79s", line)
}

func (p *progress) finish() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	fmt.Fprintln(p.w)
}
