package harness

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunOrderingInvariant forces jobs to finish in reverse submission
// order (later jobs sleep less) and checks that every worker count still
// reassembles the results in submission order.
func TestRunOrderingInvariant(t *testing.T) {
	const n = 16
	for _, workers := range []int{1, 2, 4, 8, 32} {
		jobs := make([]Job, n)
		for i := range jobs {
			i := i
			jobs[i] = Job{
				Name: fmt.Sprintf("job/%d", i),
				Fn: func() (any, error) {
					time.Sleep(time.Duration(n-i) * time.Millisecond)
					return i * i, nil
				},
			}
		}
		rep := Run(jobs, Options{Workers: workers})
		if rep.Failures != 0 {
			t.Fatalf("workers=%d: %d failures", workers, rep.Failures)
		}
		for i, res := range rep.Results {
			if res.Name != fmt.Sprintf("job/%d", i) || res.Row.(int) != i*i {
				t.Fatalf("workers=%d: slot %d holds %q row %v", workers, i, res.Name, res.Row)
			}
		}
	}
}

func TestPanicBecomesFailure(t *testing.T) {
	jobs := []Job{
		{Name: "ok", Fn: func() (any, error) { return 1, nil }},
		{Name: "boom", Fn: func() (any, error) { panic("kaboom") }},
	}
	rep := Run(jobs, Options{Workers: 4})
	if rep.Failures != 1 {
		t.Fatalf("failures = %d, want 1", rep.Failures)
	}
	if ok := rep.Results[0]; ok.Failed() || ok.Row.(int) != 1 {
		t.Fatalf("healthy job damaged: %+v", ok)
	}
	boom := rep.Results[1]
	if !boom.Failed() || boom.Row != nil {
		t.Fatalf("panicking job not failed: %+v", boom)
	}
	if !strings.Contains(boom.Err, "kaboom") || !strings.Contains(boom.Err, "panic") {
		t.Fatalf("panic message/stack missing: %q", boom.Err)
	}
	if boom.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", boom.Attempts)
	}
}

func TestRetryRecovers(t *testing.T) {
	var calls int32
	jobs := []Job{{Name: "flaky", Fn: func() (any, error) {
		if atomic.AddInt32(&calls, 1) < 3 {
			return nil, errors.New("transient")
		}
		return "ok", nil
	}}}
	rep := Run(jobs, Options{Workers: 2, Retries: 2})
	if rep.Failures != 0 {
		t.Fatalf("flaky job not recovered: %+v", rep.Results[0])
	}
	if got := rep.Results[0]; got.Attempts != 3 || got.Row.(string) != "ok" {
		t.Fatalf("attempts/row = %d/%v, want 3/ok", got.Attempts, got.Row)
	}

	rep = Run([]Job{{Name: "always", Fn: func() (any, error) {
		return nil, errors.New("nope")
	}}}, Options{Retries: 1})
	if rep.Failures != 1 || rep.Results[0].Attempts != 2 {
		t.Fatalf("exhausted retries misreported: %+v", rep.Results[0])
	}
	if rep.Results[0].Err != "nope" {
		t.Fatalf("final error = %q", rep.Results[0].Err)
	}
}

func TestEmptyAndSingleJob(t *testing.T) {
	rep := Run(nil, Options{})
	if len(rep.Results) != 0 || rep.Failures != 0 {
		t.Fatalf("empty run: %+v", rep)
	}
	rep = Run([]Job{{Name: "solo", Fn: func() (any, error) { return 42, nil }}},
		Options{Workers: 8})
	if len(rep.Results) != 1 || rep.Results[0].Row.(int) != 42 {
		t.Fatalf("single run: %+v", rep)
	}
	if rep.Results[0].WallMS < 0 {
		t.Fatalf("negative wall time: %+v", rep.Results[0])
	}
}

// TestExclusiveRunsAlone submits the exclusive job first so both
// guarantees are visible: it keeps its submission-order slot, and it only
// starts once no parallel job is in flight.
func TestExclusiveRunsAlone(t *testing.T) {
	var running int32
	jobs := []Job{{Name: "excl", Exclusive: true, Fn: func() (any, error) {
		if n := atomic.LoadInt32(&running); n != 0 {
			return nil, fmt.Errorf("%d parallel jobs still running", n)
		}
		return "alone", nil
	}}}
	for i := 0; i < 8; i++ {
		jobs = append(jobs, Job{Name: fmt.Sprintf("par/%d", i), Fn: func() (any, error) {
			atomic.AddInt32(&running, 1)
			time.Sleep(5 * time.Millisecond)
			atomic.AddInt32(&running, -1)
			return nil, nil
		}})
	}
	rep := Run(jobs, Options{Workers: 4})
	if rep.Failures != 0 {
		t.Fatalf("exclusive overlapped the pool: %+v", rep.Results[0])
	}
	if rep.Results[0].Name != "excl" || rep.Results[0].Row.(string) != "alone" {
		t.Fatalf("exclusive job lost its slot: %+v", rep.Results[0])
	}
}

func TestProgressLine(t *testing.T) {
	var buf bytes.Buffer
	jobs := []Job{
		{Name: "a", Figure: "figX", Fn: func() (any, error) { return nil, nil }},
		{Name: "b", Figure: "figX", Fn: func() (any, error) { return nil, nil }},
	}
	Run(jobs, Options{Workers: 2, Progress: &buf})
	out := buf.String()
	if !strings.Contains(out, "figX") || !strings.Contains(out, "2/2") {
		t.Fatalf("progress line incomplete: %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("progress not terminated with newline: %q", out)
	}
}

func TestDeriveSeed(t *testing.T) {
	if s := DeriveSeed(0, "fig3/pkt=64"); s != 0 {
		t.Fatalf("base 0 must keep the canonical seed 0, got %d", s)
	}
	a := DeriveSeed(1, "fig3/pkt=64")
	b := DeriveSeed(1, "fig3/pkt=128")
	c := DeriveSeed(2, "fig3/pkt=64")
	if a == 0 || b == 0 || c == 0 {
		t.Fatalf("derived seed collided with the canonical value: %d %d %d", a, b, c)
	}
	if a == b {
		t.Fatalf("different names share a seed: %d", a)
	}
	if a == c {
		t.Fatalf("different bases share a seed: %d", a)
	}
	if DeriveSeed(1, "fig3/pkt=64") != a {
		t.Fatal("DeriveSeed is not stable")
	}
}
