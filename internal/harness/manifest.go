package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// RunOptions records how a regeneration run was invoked.
type RunOptions struct {
	Jobs      int      `json:"jobs"`
	Seed      int64    `json:"seed"`
	Retries   int      `json:"retries,omitempty"`
	Selectors []string `json:"selectors,omitempty"`
	Full      bool     `json:"full,omitempty"`
	// Chaos is the fault profile the run armed. It is recorded for every
	// run — NewManifest normalises an empty value to "off" — so any CSV
	// can be reproduced from its manifest alone.
	Chaos string `json:"chaos"`
	// ChaosSeed is the base seed fault-injection schedules derive from
	// (meaningless, and zero, when Chaos is "off").
	ChaosSeed int64 `json:"chaos_seed"`
	// CheckpointEvery is the state-checkpoint cadence the run used, in
	// iterations (iatd) or rounds (fleetd); zero when checkpointing was
	// off.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// ResumedFrom is the content hash (ckpt.FileHash) of the checkpoint
	// file a resumed run restored from; empty for cold-start runs. With
	// ResumeIteration it ties every resumed run's outputs back to the
	// exact bytes it continued from.
	ResumedFrom string `json:"resumed_from,omitempty"`
	// ResumeIteration is the iteration the ResumedFrom checkpoint was
	// taken at; output is byte-identical to an uninterrupted run from the
	// next iteration onward.
	ResumeIteration uint64 `json:"resume_iteration,omitempty"`
}

// Manifest is the per-run record written alongside the CSV export: run
// identity, invocation options, and per-job timings and failures. The
// manifest itself is *not* part of the determinism guarantee (it
// carries wall-clock data); the experiment rows are.
type Manifest struct {
	RunID      string     `json:"run_id"`
	StartedAt  time.Time  `json:"started_at"`
	FinishedAt time.Time  `json:"finished_at"`
	Options    RunOptions `json:"options"`
	TotalJobs  int        `json:"total_jobs"`
	Failures   int        `json:"failures"`
	WallMS     float64    `json:"wall_ms"`
	Jobs       []Result   `json:"jobs"`

	mu sync.Mutex
}

// ManifestName is the file name Write uses inside its directory.
const ManifestName = "manifest.json"

// NewManifest starts a manifest for one regeneration run.
func NewManifest(opts RunOptions) *Manifest {
	if opts.Chaos == "" {
		opts.Chaos = "off"
	}
	now := time.Now()
	return &Manifest{
		RunID:     fmt.Sprintf("exp-%s-%06x", now.UTC().Format("20060102-150405"), now.UnixNano()&0xFFFFFF),
		StartedAt: now,
		Options:   opts,
	}
}

// Append folds one harness report into the manifest.
func (m *Manifest) Append(rep *Report) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Jobs = append(m.Jobs, rep.Results...)
	m.TotalJobs += len(rep.Results)
	m.Failures += rep.Failures
	m.WallMS += rep.WallMS
}

// Finish stamps the end time.
func (m *Manifest) Finish() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.FinishedAt = time.Now()
}

// Write saves the manifest as dir/manifest.json (creating dir) and
// returns the path.
func (m *Manifest) Write(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	m.mu.Lock()
	data, err := json.MarshalIndent(m, "", "  ")
	m.mu.Unlock()
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, ManifestName)
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadManifest parses a manifest written by Write.
func ReadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("harness: parse %s: %w", path, err)
	}
	return &m, nil
}
