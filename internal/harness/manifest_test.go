package harness

import (
	"errors"
	"path/filepath"
	"testing"
)

func TestManifestRoundTrip(t *testing.T) {
	m := NewManifest(RunOptions{
		Jobs: 8, Seed: 7, Retries: 1,
		Selectors: []string{"fig3", "tab1"}, Full: true,
	})
	rep := Run([]Job{
		{Name: "fig3/a", Figure: "fig3", Seed: 11, Fn: func() (any, error) { return 1, nil }},
		{Name: "fig3/b", Figure: "fig3", Seed: 12, Fn: func() (any, error) { return nil, errors.New("boom") }},
	}, Options{Workers: 2})
	m.Append(rep)
	m.Finish()

	path, err := m.Write(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != ManifestName {
		t.Fatalf("wrote %q, want %q", filepath.Base(path), ManifestName)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.RunID != m.RunID {
		t.Fatalf("run id %q != %q", got.RunID, m.RunID)
	}
	if got.Options.Jobs != 8 || got.Options.Seed != 7 || got.Options.Retries != 1 ||
		!got.Options.Full || len(got.Options.Selectors) != 2 {
		t.Fatalf("options mangled: %+v", got.Options)
	}
	// A run that armed no faults still records its chaos configuration,
	// so the manifest alone reproduces the CSV.
	if got.Options.Chaos != "off" || got.Options.ChaosSeed != 0 {
		t.Fatalf("chaos fields not defaulted: %+v", got.Options)
	}
	if got.TotalJobs != 2 || got.Failures != 1 || len(got.Jobs) != 2 {
		t.Fatalf("totals mangled: %+v", got)
	}
	if got.Jobs[0].Name != "fig3/a" || got.Jobs[0].Seed != 11 || got.Jobs[0].Failed() {
		t.Fatalf("job 0 mangled: %+v", got.Jobs[0])
	}
	if got.Jobs[1].Err != "boom" || got.Jobs[1].Attempts != 1 {
		t.Fatalf("job 1 mangled: %+v", got.Jobs[1])
	}
	if got.FinishedAt.Before(got.StartedAt) {
		t.Fatalf("timestamps inverted: %v .. %v", got.StartedAt, got.FinishedAt)
	}
}

func TestManifestRecordsChaosProfile(t *testing.T) {
	m := NewManifest(RunOptions{Jobs: 1, Seed: 3, Chaos: "heavy", ChaosSeed: 99})
	m.Finish()
	path, err := m.Write(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Options.Chaos != "heavy" || got.Options.ChaosSeed != 99 {
		t.Fatalf("chaos fields mangled: %+v", got.Options)
	}
}

func TestReadManifestErrors(t *testing.T) {
	if _, err := ReadManifest(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
