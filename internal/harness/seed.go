package harness

// DeriveSeed maps a run's base seed and a job name to the job's seed.
//
// Base 0 is the canonical reproduction: every job gets seed 0, and the
// scenarios fall back to their historical hard-coded seeds — so default
// output is identical at any worker count and to the committed
// results/ CSVs. Any other base gives each job a distinct seed that is
// a pure function of (base, name): stable across worker counts, run
// order, and processes.
func DeriveSeed(base int64, name string) int64 {
	if base == 0 {
		return 0
	}
	// FNV-1a over the name, then a splitmix64 finalising mix with the
	// base folded in.
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	z := h + uint64(base)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 { // reserve 0 for "canonical seeds"
		z = 1
	}
	return int64(z)
}
