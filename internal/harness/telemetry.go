package harness

import (
	"path/filepath"

	"iatsim/internal/telemetry"
)

// SnapshotBase maps a job name to the base file name of its telemetry
// snapshot: the manifest name with path separators (and anything else
// hostile to filesystems) flattened to '_'. The harness writes
// <dir>/<base>.json (plus .csv and .trace.json) for each job that
// returns a snapshot, so snapshot files correlate 1:1 with manifest
// entries.
func SnapshotBase(jobName string) string {
	out := []rune(jobName)
	for i, r := range out {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '.', r == '_':
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// writeSnapshot persists a job's snapshot under dir and returns the
// path of the JSON file (the canonical one; CSV and Chrome-trace
// renderings sit alongside it).
func writeSnapshot(dir, jobName string, snap *telemetry.Snapshot) (string, error) {
	base := filepath.Join(dir, SnapshotBase(jobName))
	if err := snap.WriteFiles(base); err != nil {
		return "", err
	}
	return base + ".json", nil
}
