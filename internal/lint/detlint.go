package lint

import (
	"go/ast"
	"strings"
)

// DetLint forbids the three classic determinism leaks in simulation
// packages (everything under internal/), both directly and through any
// chain of module-internal calls (the interprocedural pass flags a call
// site whose closure reaches a violation, naming the chain):
//
//   - wall-clock reads (time.Now / time.Since) — simulated time comes
//     from the platform clock; host time may only appear in the harness,
//     whose wall-time accounting is explicitly outside the determinism
//     guarantee, and at sites annotated for the Fig. 15 overhead
//     measurement (the daemon code path is the artifact under test).
//   - package-level math/rand functions (rand.Intn, rand.Float64, ...) —
//     they draw from the process-global, run-dependent source; only
//     seeded *rand.Rand constructors (rand.New(rand.NewSource(seed)))
//     are allowed.
//   - go statements — the simulation is single-threaded by design; only
//     internal/harness may spawn goroutines (its worker pool reassembles
//     results in submission order).
var DetLint = &Analyzer{
	Name: detLintName,
	Doc:  "forbid wall-clock time, global math/rand, and goroutines in simulation packages",
	Run:  runDetLint,
}

// detLintName is referenced from the interprocedural core (summary.go);
// a named constant keeps the Analyzer var out of its own init cycle.
const detLintName = "detlint"

// timeAllowedPkgs may read the wall clock: the harness owns per-job
// wall-time, the progress line, and manifest timestamps, all documented
// as outside the determinism guarantee.
var timeAllowedPkgs = map[string]bool{
	"iatsim/internal/harness": true,
}

// goAllowedPkgs may spawn goroutines: the harness worker pool is the one
// sanctioned concurrency site (results reassembled in submission order).
var goAllowedPkgs = map[string]bool{
	"iatsim/internal/harness": true,
}

// wallClockFuncs are the time package functions that read the host clock.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// globalRandFuncs are the math/rand package-level functions backed by the
// process-global source. Constructors (New, NewSource, NewZipf) and type
// names (Rand, Source) are absent: the seeded-receiver path is the
// sanctioned one.
var globalRandFuncs = map[string]bool{
	"Seed": true, "Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true,
}

// globalRandV2Funcs is the math/rand/v2 equivalent (its top-level
// functions use a runtime-seeded global).
var globalRandV2Funcs = map[string]bool{
	"Int": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "Uint": true, "UintN": true,
	"Uint32": true, "Uint32N": true, "Uint64": true, "Uint64N": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "N": true,
}

// simulationPackage reports whether path is under the module's internal/
// tree — the packages whose behaviour feeds the recorded results.
func simulationPackage(path string) bool {
	return strings.Contains(path, "/internal/") || strings.HasSuffix(path, "/internal")
}

func runDetLint(p *Pass) {
	if !simulationPackage(p.Pkg.Path) {
		return
	}
	for _, file := range p.Pkg.Files {
		imports := pkgImports(file)
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if imp.Name != nil && imp.Name.Name == "." &&
				(path == "time" || path == "math/rand" || path == "math/rand/v2") {
				p.Reportf(imp.Pos(), "dot import of %q hides wall-clock/global-rand call sites from detlint; use a named import", path)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if !goAllowedPkgs[p.Pkg.Path] {
					p.Reportf(n.Pos(), "go statement outside internal/harness: the simulation is single-threaded by design (parallelism belongs to the harness worker pool)")
				}
			case *ast.SelectorExpr:
				path, sel, ok := p.selectorPackage(imports, n)
				if !ok {
					return true
				}
				switch {
				case path == "time" && wallClockFuncs[sel] && !timeAllowedPkgs[p.Pkg.Path]:
					p.Reportf(n.Pos(), "time.%s reads the host wall clock in a simulation package; use the platform's simulated clock (p.NowNS)", sel)
				case path == "math/rand" && globalRandFuncs[sel]:
					p.Reportf(n.Pos(), "rand.%s draws from the process-global source; use a seeded *rand.Rand (rand.New(rand.NewSource(seed)))", sel)
				case path == "math/rand/v2" && globalRandV2Funcs[sel]:
					p.Reportf(n.Pos(), "rand/v2.%s draws from the runtime-seeded global source; use a seeded *rand.Rand", sel)
				}
			}
			return true
		})
	}
	runDetLintChains(p)
}

// runDetLintChains is the interprocedural half: any call site in this
// package whose callee's summarized closure reaches a wall-clock read,
// a global-rand draw, or a goroutine spawn (from a non-allowlisted,
// non-sanctioned origin) is flagged with the offending chain. Direct
// violations in this package are the intra-procedural pass's job and are
// not re-reported here.
func runDetLintChains(p *Pass) {
	if p.graph == nil {
		return
	}
	for _, n := range p.graph.order {
		if n.pkg != p.Pkg {
			continue
		}
		for _, e := range n.edges {
			for _, f := range p.graph.visibleFacts(e) {
				var hint string
				switch f.key.kind {
				case FactWallClock:
					if timeAllowedPkgs[p.Pkg.Path] {
						continue
					}
					hint = "simulated time must come from the platform clock (p.NowNS)"
				case FactGlobalRand:
					hint = "use a seeded *rand.Rand threaded through the call"
				case FactGoroutine:
					if goAllowedPkgs[p.Pkg.Path] {
						continue
					}
					hint = "parallelism belongs to the harness worker pool"
				default:
					continue // FactEmit is maporder's business
				}
				chain, fns := p.graph.chain(n, e, f.key)
				p.reportChain(e.call.Pos(), fns,
					"call closure reaches %s (%s); %s", f.desc, chain, hint)
			}
		}
	}
}
