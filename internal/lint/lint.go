package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name is the analyzer's identifier, used in "[name]" finding tags
	// and in //simlint:ignore directives.
	Name string
	// Doc is a one-line description, shown by cmd/simlint and recorded
	// in results/simlint-baseline.csv.
	Doc string
	// Run reports findings on one package through the pass.
	Run func(*Pass)
}

// Analyzers returns the full simlint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{DetLint, MapOrder, MSRLint, SeedFlow, StateLint, TelemLint}
}

// MetaAnalyzer tags findings produced by the machinery itself: malformed
// or unused //simlint:ignore comments, and files the parser could not
// load (syntax errors are findings, not crashes).
const MetaAnalyzer = "simlint"

// Finding is one reported violation (or suppressed violation — baseline
// accounting keeps both).
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
	Package  string
	// Suppressed is set when a //simlint:ignore directive covers the
	// finding; Reason carries the directive's mandatory justification.
	Suppressed bool
	Reason     string

	// chain holds, for interprocedural findings, the functions on the
	// offending call chain (outermost first). A declaration-level
	// directive on any of them suppresses the finding.
	chain []*types.Func
}

// String renders the canonical "file:line: [analyzer] message" form.
// Findings without a position (module-level conditions) or without a
// line (directive machinery on synthesized positions) degrade gracefully
// instead of printing ":0".
func (f Finding) String() string {
	switch {
	case f.Pos.Filename == "":
		return fmt.Sprintf("[%s] %s", f.Analyzer, f.Message)
	case f.Pos.Line == 0:
		return fmt.Sprintf("%s: [%s] %s", f.Pos.Filename, f.Analyzer, f.Message)
	}
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Pass carries one analyzer over one package.
type Pass struct {
	Fset *token.FileSet
	Pkg  *Package

	analyzer *Analyzer
	findings *[]Finding
	graph    *Graph
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Package:  p.Pkg.Path,
	})
}

// reportChain records an interprocedural finding at pos whose message
// carries the call chain; the chain's functions participate in
// declaration-level suppression.
func (p *Pass) reportChain(pos token.Pos, chain []*types.Func, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Package:  p.Pkg.Path,
		chain:    chain,
	})
}

// typeOf returns the type of e, or nil when type information is missing
// or invalid (analyzers then degrade conservatively).
func (p *Pass) typeOf(e ast.Expr) types.Type {
	if p.Pkg.Info == nil {
		return nil
	}
	t := p.Pkg.Info.TypeOf(e)
	if t == nil || t == types.Typ[types.Invalid] {
		return nil
	}
	return t
}

// objectOf resolves an identifier to its object (defs or uses), or nil.
func (p *Pass) objectOf(id *ast.Ident) types.Object {
	if p.Pkg.Info == nil {
		return nil
	}
	return p.Pkg.Info.ObjectOf(id)
}

// constValue reports whether e is a compile-time constant expression.
func (p *Pass) constValue(e ast.Expr) bool {
	if p.Pkg.Info == nil {
		return false
	}
	tv, ok := p.Pkg.Info.Types[e]
	return ok && tv.Value != nil
}

// pkgImports maps the local name of each import of file to its path
// ("rand" or an alias -> "math/rand"). Dot and blank imports are skipped.
func pkgImports(file *ast.File) map[string]string {
	m := map[string]string{}
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := ""
		if imp.Name != nil {
			name = imp.Name.Name
		} else if i := strings.LastIndexByte(path, '/'); i >= 0 {
			name = path[i+1:]
		} else {
			name = path
		}
		if name == "." || name == "_" {
			continue
		}
		m[name] = path
	}
	return m
}

// selectorPackage reports the imported package path and selector name
// when expr is a qualified identifier like time.Now. When type info is
// available the identifier must resolve to a package name (a local
// variable shadowing the import does not count); without it the check is
// purely syntactic against the file's import table.
func (p *Pass) selectorPackage(imports map[string]string, expr ast.Expr) (path, sel string, ok bool) {
	return qualifiedSelector(p.Pkg, imports, expr)
}

// directive is one parsed //simlint:ignore comment.
type directive struct {
	pos      token.Position
	pkg      string
	analyzer string
	reason   string
	used     bool
}

const directiveName = "simlint:ignore"

// directiveIndex holds every well-formed directive of the module, keyed
// for line lookups.
type directiveIndex struct {
	all    []*directive
	byFile map[string][]*directive
}

// covering returns the directives that cover a finding (or declaration)
// at file:line: a directive suppresses its own line (trailing comment)
// and the line directly below (comment above the statement).
func (ix *directiveIndex) covering(file string, line int) []*directive {
	var out []*directive
	for _, d := range ix.byFile[file] {
		if d.pos.Line == line || d.pos.Line == line-1 {
			out = append(out, d)
		}
	}
	return out
}

// collectDirectives parses every //simlint:ignore comment in the package.
// Malformed directives (unknown analyzer — including analyzers from a
// newer simlint than this build — or missing reason) are reported as
// findings of the meta analyzer rather than silently dropped.
func collectDirectives(fset *token.FileSet, pkg *Package, known map[string]bool, findings *[]Finding) []*directive {
	var dirs []*directive
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, isLine := strings.CutPrefix(c.Text, "//")
				if !isLine {
					continue
				}
				text = strings.TrimSpace(text)
				rest, isDir := strings.CutPrefix(text, directiveName)
				if !isDir {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) == 0 || !known[fields[0]] {
					name := "(none)"
					if len(fields) > 0 {
						name = fields[0]
					}
					*findings = append(*findings, Finding{
						Pos: pos, Analyzer: MetaAnalyzer, Package: pkg.Path,
						Message: fmt.Sprintf("directive names unknown analyzer %s: want //%s <analyzer> <reason> with analyzer in %s",
							name, directiveName, knownList(known)),
					})
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))
				if reason == "" {
					*findings = append(*findings, Finding{
						Pos: pos, Analyzer: MetaAnalyzer, Package: pkg.Path,
						Message: fmt.Sprintf("ignore directive for %q needs a written reason: //%s %s <reason>",
							fields[0], directiveName, fields[0]),
					})
					continue
				}
				dirs = append(dirs, &directive{pos: pos, pkg: pkg.Path, analyzer: fields[0], reason: reason})
			}
		}
	}
	return dirs
}

func knownList(known map[string]bool) string {
	names := make([]string, 0, len(known))
	for n := range known {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, "|")
}

// Suite runs analyzers over a loaded module with shared interprocedural
// state: the directive index is collected once up front (so summaries
// respect sanctioned origins) and the call graph is built before the
// first analyzer runs. Callers that want per-analyzer timing drive Run
// themselves; RunAnalyzers wraps the whole lifecycle.
type Suite struct {
	mod      *Module
	known    map[string]bool
	findings []Finding
	dirs     *directiveIndex
	graph    *Graph
	finished bool
}

// NewSuite collects directives, reports malformed ones, and builds the
// module call graph with summaries.
func NewSuite(m *Module, analyzers []*Analyzer) *Suite {
	s := &Suite{mod: m, known: map[string]bool{}}
	for _, a := range analyzers {
		s.known[a.Name] = true
	}
	s.dirs = &directiveIndex{byFile: map[string][]*directive{}}
	for _, pkg := range m.Pkgs {
		for _, d := range collectDirectives(m.Fset, pkg, s.known, &s.findings) {
			s.dirs.all = append(s.dirs.all, d)
			s.dirs.byFile[d.pos.Filename] = append(s.dirs.byFile[d.pos.Filename], d)
		}
	}
	s.graph = buildGraph(m, s.dirs)
	return s
}

// Run executes one analyzer over every package of the module.
func (s *Suite) Run(a *Analyzer) {
	for _, pkg := range s.mod.Pkgs {
		pass := &Pass{Fset: s.mod.Fset, Pkg: pkg, analyzer: a, findings: &s.findings, graph: s.graph}
		a.Run(pass)
	}
}

// Finish applies suppression and returns all findings (suppressed ones
// included, marked), sorted by position. Line-level directives suppress
// findings on their own line or the line directly below; declaration-
// level directives additionally suppress interprocedural findings whose
// chain passes through the annotated function. Unused directives are
// findings: a suppression that no longer masks anything must be deleted,
// so enforcement cannot silently drift. Parse failures recorded by the
// loader are surfaced as meta findings.
func (s *Suite) Finish() []Finding {
	if s.finished {
		return s.findings
	}
	s.finished = true

	for _, pe := range s.mod.ParseErrors {
		s.findings = append(s.findings, Finding{
			Pos: pe.Pos, Analyzer: MetaAnalyzer, Package: pe.Package,
			Message: "syntax error: " + pe.Msg,
		})
	}

	for i := range s.findings {
		f := &s.findings[i]
		if f.Analyzer == MetaAnalyzer {
			continue
		}
		for _, d := range s.dirs.covering(f.Pos.Filename, f.Pos.Line) {
			if d.analyzer == f.Analyzer {
				f.Suppressed, f.Reason = true, d.reason
				d.used = true
			}
		}
		if f.Suppressed || len(f.chain) == 0 {
			continue
		}
		for _, fn := range f.chain {
			node := s.graph.nodeFor(fn)
			if node == nil {
				continue
			}
			if d := node.declIgnore[f.Analyzer]; d != nil {
				f.Suppressed, f.Reason = true, d.reason
				d.used = true
				break
			}
		}
	}

	for _, d := range s.dirs.all {
		if !d.used {
			s.findings = append(s.findings, Finding{
				Pos: d.pos, Analyzer: MetaAnalyzer, Package: d.pkg,
				Message: fmt.Sprintf("unused suppression: no %s finding on this or the next line (or reachable call chain for a declaration directive); delete the directive", d.analyzer),
			})
		}
	}

	sort.Slice(s.findings, func(i, j int) bool {
		a, b := s.findings[i], s.findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return s.findings
}

// RunAnalyzers runs the suite over every package of m and returns all
// findings (suppressed ones included, marked), sorted by position.
func RunAnalyzers(m *Module, analyzers []*Analyzer) []Finding {
	s := NewSuite(m, analyzers)
	for _, a := range analyzers {
		s.Run(a)
	}
	return s.Finish()
}
