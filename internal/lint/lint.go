package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name is the analyzer's identifier, used in "[name]" finding tags
	// and in //simlint:ignore directives.
	Name string
	// Doc is a one-line description, shown by cmd/simlint and recorded
	// in results/simlint-baseline.csv.
	Doc string
	// Run reports findings on one package through the pass.
	Run func(*Pass)
}

// Analyzers returns the full simlint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{DetLint, MapOrder, MSRLint}
}

// MetaAnalyzer tags findings produced by the directive machinery itself
// (malformed or unused //simlint:ignore comments).
const MetaAnalyzer = "simlint"

// Finding is one reported violation (or suppressed violation — baseline
// accounting keeps both).
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
	Package  string
	// Suppressed is set when a //simlint:ignore directive covers the
	// finding; Reason carries the directive's mandatory justification.
	Suppressed bool
	Reason     string
}

// String renders the canonical "file:line: [analyzer] message" form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Pass carries one analyzer over one package.
type Pass struct {
	Fset *token.FileSet
	Pkg  *Package

	analyzer *Analyzer
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Package:  p.Pkg.Path,
	})
}

// typeOf returns the type of e, or nil when type information is missing
// or invalid (analyzers then degrade conservatively).
func (p *Pass) typeOf(e ast.Expr) types.Type {
	if p.Pkg.Info == nil {
		return nil
	}
	t := p.Pkg.Info.TypeOf(e)
	if t == nil || t == types.Typ[types.Invalid] {
		return nil
	}
	return t
}

// objectOf resolves an identifier to its object (defs or uses), or nil.
func (p *Pass) objectOf(id *ast.Ident) types.Object {
	if p.Pkg.Info == nil {
		return nil
	}
	return p.Pkg.Info.ObjectOf(id)
}

// pkgImports maps the local name of each import of file to its path
// ("rand" or an alias -> "math/rand"). Dot and blank imports are skipped.
func pkgImports(file *ast.File) map[string]string {
	m := map[string]string{}
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := ""
		if imp.Name != nil {
			name = imp.Name.Name
		} else if i := strings.LastIndexByte(path, '/'); i >= 0 {
			name = path[i+1:]
		} else {
			name = path
		}
		if name == "." || name == "_" {
			continue
		}
		m[name] = path
	}
	return m
}

// selectorPackage reports the imported package path and selector name
// when expr is a qualified identifier like time.Now. When type info is
// available the identifier must resolve to a package name (a local
// variable shadowing the import does not count); without it the check is
// purely syntactic against the file's import table.
func (p *Pass) selectorPackage(imports map[string]string, expr ast.Expr) (path, sel string, ok bool) {
	s, isSel := expr.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := s.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	path, found := imports[id.Name]
	if !found {
		return "", "", false
	}
	if obj := p.objectOf(id); obj != nil {
		if _, isPkg := obj.(*types.PkgName); !isPkg {
			return "", "", false
		}
	}
	return path, s.Sel.Name, true
}

// directive is one parsed //simlint:ignore comment.
type directive struct {
	pos      token.Position
	analyzer string
	reason   string
	used     bool
}

const directiveName = "simlint:ignore"

// collectDirectives parses every //simlint:ignore comment in the package.
// Malformed directives (unknown analyzer, missing reason) are reported as
// findings of the meta analyzer.
func collectDirectives(fset *token.FileSet, pkg *Package, known map[string]bool, findings *[]Finding) []*directive {
	var dirs []*directive
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, isLine := strings.CutPrefix(c.Text, "//")
				if !isLine {
					continue
				}
				text = strings.TrimSpace(text)
				rest, isDir := strings.CutPrefix(text, directiveName)
				if !isDir {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) == 0 || !known[fields[0]] {
					*findings = append(*findings, Finding{
						Pos: pos, Analyzer: MetaAnalyzer, Package: pkg.Path,
						Message: fmt.Sprintf("malformed directive: want //%s <analyzer> <reason> with analyzer in %s",
							directiveName, knownList(known)),
					})
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))
				if reason == "" {
					*findings = append(*findings, Finding{
						Pos: pos, Analyzer: MetaAnalyzer, Package: pkg.Path,
						Message: fmt.Sprintf("ignore directive for %q needs a written reason: //%s %s <reason>",
							fields[0], directiveName, fields[0]),
					})
					continue
				}
				dirs = append(dirs, &directive{pos: pos, analyzer: fields[0], reason: reason})
			}
		}
	}
	return dirs
}

func knownList(known map[string]bool) string {
	names := make([]string, 0, len(known))
	for n := range known {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, "|")
}

// RunAnalyzers runs the suite over every package of m and returns all
// findings (suppressed ones included, marked), sorted by position. A
// directive suppresses findings of its analyzer on its own line or the
// line directly below (trailing comment, or a comment line above the
// statement). Unused directives are findings: a suppression that no
// longer masks anything must be deleted, so enforcement cannot silently
// drift.
func RunAnalyzers(m *Module, analyzers []*Analyzer) []Finding {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var findings []Finding
	for _, pkg := range m.Pkgs {
		var pkgFindings []Finding
		for _, a := range analyzers {
			pass := &Pass{Fset: m.Fset, Pkg: pkg, analyzer: a, findings: &pkgFindings}
			a.Run(pass)
		}
		dirs := collectDirectives(m.Fset, pkg, known, &pkgFindings)
		for i := range pkgFindings {
			f := &pkgFindings[i]
			for _, d := range dirs {
				if d.analyzer == f.Analyzer && d.pos.Filename == f.Pos.Filename &&
					(d.pos.Line == f.Pos.Line || d.pos.Line == f.Pos.Line-1) {
					f.Suppressed, f.Reason = true, d.reason
					d.used = true
				}
			}
		}
		for _, d := range dirs {
			if !d.used {
				pkgFindings = append(pkgFindings, Finding{
					Pos: d.pos, Analyzer: MetaAnalyzer, Package: pkg.Path,
					Message: fmt.Sprintf("unused suppression: no %s finding on this or the next line; delete the directive", d.analyzer),
				})
			}
		}
		findings = append(findings, pkgFindings...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}
