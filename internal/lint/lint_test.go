package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// loadFixture analyzes one testdata package under the given import path
// (the path controls the analyzers' package-scope rules) and returns all
// findings, suppressed included.
func loadFixture(t *testing.T, fixture, importPath string) []Finding {
	t.Helper()
	mod, err := LoadDir(filepath.Join("testdata", fixture), importPath)
	if err != nil {
		t.Fatalf("load %s: %v", fixture, err)
	}
	pkg := mod.Pkgs[0]
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture %s has type errors: %v", fixture, pkg.TypeErrors)
	}
	return RunAnalyzers(mod, Analyzers())
}

// active filters out suppressed findings.
func active(findings []Finding) []Finding {
	var out []Finding
	for _, f := range findings {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}

var wantRe = regexp.MustCompile(`//\s*want (\w+)`)

// wantMarkers scans a fixture for "// want <analyzer>" comments and
// returns the expected "line:analyzer" set.
func wantMarkers(t *testing.T, fixture string) map[string]bool {
	t.Helper()
	want := map[string]bool{}
	dir := filepath.Join("testdata", fixture)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			if m := wantRe.FindStringSubmatch(line); m != nil {
				want[fmt.Sprintf("%s:%d:%s", e.Name(), i+1, m[1])] = true
			}
		}
	}
	return want
}

// checkAgainstMarkers compares active findings to the fixture's want
// markers, reporting both missed and unexpected findings.
func checkAgainstMarkers(t *testing.T, fixture string, findings []Finding) {
	t.Helper()
	want := wantMarkers(t, fixture)
	got := map[string]bool{}
	for _, f := range active(findings) {
		got[fmt.Sprintf("%s:%d:%s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Analyzer)] = true
	}
	var missed, extra []string
	for k := range want {
		if !got[k] {
			missed = append(missed, k)
		}
	}
	for k := range got {
		if !want[k] {
			extra = append(extra, k)
		}
	}
	sort.Strings(missed)
	sort.Strings(extra)
	if len(missed) > 0 || len(extra) > 0 {
		t.Fatalf("fixture %s: missed findings %v, unexpected findings %v\nall: %v",
			fixture, missed, extra, active(findings))
	}
}

func TestDetlintCatchesSeededViolations(t *testing.T) {
	checkAgainstMarkers(t, "detbad", loadFixture(t, "detbad", "iatsim/internal/detbad"))
}

func TestDetlintPassesCleanSimulationCode(t *testing.T) {
	if got := active(loadFixture(t, "detok", "iatsim/internal/detok")); len(got) != 0 {
		t.Fatalf("detok should be clean, got %v", got)
	}
}

func TestDetlintPassesSeededFaultInjector(t *testing.T) {
	// The fault-injection pattern — a private splitmix64 stream derived
	// from an explicit seed — is detlint-clean under the real injector's
	// import path: fault schedules are part of the determinism guarantee.
	if got := active(loadFixture(t, "faultsok", "iatsim/internal/faults")); len(got) != 0 {
		t.Fatalf("faultsok should be clean, got %v", got)
	}
}

func TestDetlintScopeIsInternalOnly(t *testing.T) {
	// The same violating file outside internal/ is out of detlint's
	// scope entirely.
	if got := active(loadFixture(t, "detbad", "iatsim/cmd/detbad")); len(got) != 0 {
		t.Fatalf("cmd-scoped package should be out of scope, got %v", got)
	}
}

func TestDetlintHarnessAllowlist(t *testing.T) {
	// Under the harness path, wall-clock reads and go statements are
	// allowlisted; the global-rand rule still applies.
	got := active(loadFixture(t, "detbad", "iatsim/internal/harness"))
	if len(got) != 2 {
		t.Fatalf("harness-scoped fixture: want exactly the 2 rand findings, got %v", got)
	}
	for _, f := range got {
		if !strings.Contains(f.Message, "global source") {
			t.Fatalf("unexpected finding under harness allowlist: %v", f)
		}
	}
}

func TestIgnoreDirectives(t *testing.T) {
	findings := loadFixture(t, "detignore", "iatsim/internal/detignore")

	var suppressed, activeDet, meta []Finding
	for _, f := range findings {
		switch {
		case f.Suppressed:
			suppressed = append(suppressed, f)
		case f.Analyzer == DetLint.Name:
			activeDet = append(activeDet, f)
		case f.Analyzer == MetaAnalyzer:
			meta = append(meta, f)
		}
	}
	if len(suppressed) != 2 {
		t.Fatalf("want 2 suppressed findings (trailing + line-above), got %v", suppressed)
	}
	for _, f := range suppressed {
		if f.Reason == "" {
			t.Fatalf("suppressed finding lost its reason: %v", f)
		}
	}
	// The reason-less directive suppresses nothing, so its time.Now
	// stays active.
	if len(activeDet) != 1 {
		t.Fatalf("want 1 active detlint finding (reason-less directive), got %v", activeDet)
	}
	// Meta findings: missing reason, unused directive, unknown analyzer.
	if len(meta) != 3 {
		t.Fatalf("want 3 simlint meta findings, got %v", meta)
	}
	wantParts := []string{"needs a written reason", "unused suppression", "malformed directive"}
	for _, part := range wantParts {
		found := false
		for _, f := range meta {
			if strings.Contains(f.Message, part) {
				found = true
			}
		}
		if !found {
			t.Fatalf("no meta finding containing %q in %v", part, meta)
		}
	}
}

func TestDetlintCoversTelemetry(t *testing.T) {
	// internal/telemetry is fully inside detlint's scope: the same
	// seeded violations must be reported under its import path exactly
	// as under any other internal package (no accidental allowlisting —
	// the subsystem's determinism claims depend on it).
	checkAgainstMarkers(t, "detbad", loadFixture(t, "detbad", "iatsim/internal/telemetry"))
}

func TestMapOrderCoversSnapshotExports(t *testing.T) {
	// The snapshot-export shapes: collect-then-sort passes, unsorted
	// CSV/row/event emission from map iteration is flagged — including
	// .Emit calls, which bake map order into event sequence numbers.
	checkAgainstMarkers(t, "mapsnap", loadFixture(t, "mapsnap", "iatsim/internal/telemetry"))
}

func TestLintCoversFleet(t *testing.T) {
	// internal/fleet is fully inside both analyzers' scope: the fleet's
	// byte-identical-at-any-jobs contract relies on no wall clock and no
	// raw goroutines in the stepping path (parallelism is delegated to
	// internal/harness) and no map-ordered aggregate output. The fixture
	// seeds one violation of each rule next to the sanctioned
	// collect-then-sort shape, which must stay clean.
	checkAgainstMarkers(t, "fleetagg", loadFixture(t, "fleetagg", "iatsim/internal/fleet"))
}

func TestMapOrderCatchesSeededViolations(t *testing.T) {
	checkAgainstMarkers(t, "mapbad", loadFixture(t, "mapbad", "iatsim/internal/mapbad"))
}

func TestMapOrderPassesSortedAndOrderFreeCode(t *testing.T) {
	if got := active(loadFixture(t, "mapok", "iatsim/internal/mapok")); len(got) != 0 {
		t.Fatalf("mapok should be clean, got %v", got)
	}
}

func TestMSRLintCatchesSeededViolations(t *testing.T) {
	checkAgainstMarkers(t, "msrbad", loadFixture(t, "msrbad", "iatsim/internal/msrbad"))
}

func TestMSRLintPassesInnocentLiterals(t *testing.T) {
	if got := active(loadFixture(t, "msrok", "iatsim/internal/msrok")); len(got) != 0 {
		t.Fatalf("msrok should be clean, got %v", got)
	}
}

func TestMSRLintExemptsTheRegisterFile(t *testing.T) {
	// The same addresses inside internal/msr are the register map
	// definition, not a layering leak.
	if got := active(loadFixture(t, "msrbad", "iatsim/internal/msr")); len(got) != 0 {
		t.Fatalf("internal/msr must be exempt, got %v", got)
	}
}

// TestModuleIsCleanAtHead is the enforcement test: the repository's own
// tree must lint clean (modulo written-reason suppressions). It is the
// same check `make lint` runs, kept in tier-1 so a PR cannot land a
// violation even if it skips the Makefile.
func TestModuleIsCleanAtHead(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	if raceEnabled {
		t.Skip("whole-module type-check is slow under -race; make lint covers it")
	}
	mod, err := LoadModule("../..")
	if err != nil {
		t.Fatal(err)
	}
	findings := RunAnalyzers(mod, Analyzers())
	for _, f := range active(findings) {
		t.Errorf("%s", f)
	}
	for _, f := range findings {
		if f.Suppressed && f.Reason == "" {
			t.Errorf("suppression without reason: %s", f)
		}
	}
}
