package lint

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// loadFixture analyzes one testdata package under the given import path
// (the path controls the analyzers' package-scope rules) and returns all
// findings, suppressed included.
func loadFixture(t *testing.T, fixture, importPath string) []Finding {
	t.Helper()
	mod, err := LoadDir(filepath.Join("testdata", fixture), importPath)
	if err != nil {
		t.Fatalf("load %s: %v", fixture, err)
	}
	pkg := mod.Pkgs[0]
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture %s has type errors: %v", fixture, pkg.TypeErrors)
	}
	return RunAnalyzers(mod, Analyzers())
}

// active filters out suppressed findings.
func active(findings []Finding) []Finding {
	var out []Finding
	for _, f := range findings {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}

// loadFixtureModule analyzes a multi-package fixture module (a testdata
// directory with its own go.mod) through the same loader path the real
// tree uses, so cross-package propagation is exercised for real.
func loadFixtureModule(t *testing.T, fixture string) []Finding {
	t.Helper()
	mod, err := LoadModule(filepath.Join("testdata", fixture))
	if err != nil {
		t.Fatalf("load module %s: %v", fixture, err)
	}
	for _, pkg := range mod.Pkgs {
		if len(pkg.TypeErrors) > 0 {
			t.Fatalf("fixture package %s has type errors: %v", pkg.Path, pkg.TypeErrors)
		}
	}
	return RunAnalyzers(mod, Analyzers())
}

var wantRe = regexp.MustCompile(`//\s*want (\w+)`)

// wantMarkers scans a fixture tree for "// want <analyzer>" comments and
// returns the expected "file:line:analyzer" set. Module fixtures keep
// their Go files in nested packages, so the scan walks; base filenames
// must be unique within one fixture. It reads the same files the loader
// would (goSourceFiles), so a marker cannot hide in a file the analyzers
// never see.
func wantMarkers(t *testing.T, fixture string) map[string]bool {
	t.Helper()
	want := map[string]bool{}
	root := filepath.Join("testdata", fixture)
	dirs, err := packageDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range dirs {
		files, err := goSourceFiles(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, file := range files {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				if m := wantRe.FindStringSubmatch(line); m != nil {
					want[fmt.Sprintf("%s:%d:%s", filepath.Base(file), i+1, m[1])] = true
				}
			}
		}
	}
	return want
}

// checkAgainstMarkers compares active findings to the fixture's want
// markers, reporting both missed and unexpected findings.
func checkAgainstMarkers(t *testing.T, fixture string, findings []Finding) {
	t.Helper()
	want := wantMarkers(t, fixture)
	got := map[string]bool{}
	for _, f := range active(findings) {
		got[fmt.Sprintf("%s:%d:%s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Analyzer)] = true
	}
	var missed, extra []string
	for k := range want {
		if !got[k] {
			missed = append(missed, k)
		}
	}
	for k := range got {
		if !want[k] {
			extra = append(extra, k)
		}
	}
	sort.Strings(missed)
	sort.Strings(extra)
	if len(missed) > 0 || len(extra) > 0 {
		t.Fatalf("fixture %s: missed findings %v, unexpected findings %v\nall: %v",
			fixture, missed, extra, active(findings))
	}
}

func TestDetlintCatchesSeededViolations(t *testing.T) {
	checkAgainstMarkers(t, "detbad", loadFixture(t, "detbad", "iatsim/internal/detbad"))
}

func TestDetlintPassesCleanSimulationCode(t *testing.T) {
	if got := active(loadFixture(t, "detok", "iatsim/internal/detok")); len(got) != 0 {
		t.Fatalf("detok should be clean, got %v", got)
	}
}

func TestDetlintPassesSeededFaultInjector(t *testing.T) {
	// The fault-injection pattern — a private splitmix64 stream derived
	// from an explicit seed — is detlint-clean under the real injector's
	// import path: fault schedules are part of the determinism guarantee.
	if got := active(loadFixture(t, "faultsok", "iatsim/internal/faults")); len(got) != 0 {
		t.Fatalf("faultsok should be clean, got %v", got)
	}
}

func TestDetlintScopeIsInternalOnly(t *testing.T) {
	// The same violating file outside internal/ is out of detlint's
	// scope entirely.
	if got := active(loadFixture(t, "detbad", "iatsim/cmd/detbad")); len(got) != 0 {
		t.Fatalf("cmd-scoped package should be out of scope, got %v", got)
	}
}

func TestDetlintHarnessAllowlist(t *testing.T) {
	// Under the harness path, wall-clock reads and go statements are
	// allowlisted; the global-rand rule still applies.
	got := active(loadFixture(t, "detbad", "iatsim/internal/harness"))
	if len(got) != 2 {
		t.Fatalf("harness-scoped fixture: want exactly the 2 rand findings, got %v", got)
	}
	for _, f := range got {
		if !strings.Contains(f.Message, "global source") {
			t.Fatalf("unexpected finding under harness allowlist: %v", f)
		}
	}
}

func TestIgnoreDirectives(t *testing.T) {
	findings := loadFixture(t, "detignore", "iatsim/internal/detignore")

	var suppressed, activeDet, meta []Finding
	for _, f := range findings {
		switch {
		case f.Suppressed:
			suppressed = append(suppressed, f)
		case f.Analyzer == DetLint.Name:
			activeDet = append(activeDet, f)
		case f.Analyzer == MetaAnalyzer:
			meta = append(meta, f)
		}
	}
	if len(suppressed) != 2 {
		t.Fatalf("want 2 suppressed findings (trailing + line-above), got %v", suppressed)
	}
	for _, f := range suppressed {
		if f.Reason == "" {
			t.Fatalf("suppressed finding lost its reason: %v", f)
		}
	}
	// The reason-less directive suppresses nothing, so its time.Now
	// stays active.
	if len(activeDet) != 1 {
		t.Fatalf("want 1 active detlint finding (reason-less directive), got %v", activeDet)
	}
	// Meta findings: missing reason, unused directive, unknown analyzer.
	if len(meta) != 3 {
		t.Fatalf("want 3 simlint meta findings, got %v", meta)
	}
	wantParts := []string{"needs a written reason", "unused suppression", "unknown analyzer"}
	for _, part := range wantParts {
		found := false
		for _, f := range meta {
			if strings.Contains(f.Message, part) {
				found = true
			}
		}
		if !found {
			t.Fatalf("no meta finding containing %q in %v", part, meta)
		}
	}
}

func TestDetlintCoversTelemetry(t *testing.T) {
	// internal/telemetry is fully inside detlint's scope: the same
	// seeded violations must be reported under its import path exactly
	// as under any other internal package (no accidental allowlisting —
	// the subsystem's determinism claims depend on it).
	checkAgainstMarkers(t, "detbad", loadFixture(t, "detbad", "iatsim/internal/telemetry"))
}

func TestMapOrderCoversSnapshotExports(t *testing.T) {
	// The snapshot-export shapes: collect-then-sort passes, unsorted
	// CSV/row/event emission from map iteration is flagged — including
	// .Emit calls, which bake map order into event sequence numbers.
	checkAgainstMarkers(t, "mapsnap", loadFixture(t, "mapsnap", "iatsim/internal/telemetry"))
}

func TestLintCoversFleet(t *testing.T) {
	// internal/fleet is fully inside both analyzers' scope: the fleet's
	// byte-identical-at-any-jobs contract relies on no wall clock and no
	// raw goroutines in the stepping path (parallelism is delegated to
	// internal/harness) and no map-ordered aggregate output. The fixture
	// seeds one violation of each rule next to the sanctioned
	// collect-then-sort shape, which must stay clean.
	checkAgainstMarkers(t, "fleetagg", loadFixture(t, "fleetagg", "iatsim/internal/fleet"))
}

func TestLintCoversPolicy(t *testing.T) {
	// internal/policy is fully inside statelint's scope: its Kind and
	// State enums are //simlint:enum-marked, so a dispatch switch that
	// forgets a policy kind is flagged under the real import path...
	findings := loadFixture(t, "policybad", "iatsim/internal/policy")
	checkAgainstMarkers(t, "policybad", findings)
	for _, f := range active(findings) {
		if !strings.Contains(f.Message, "KindGreedy") {
			t.Errorf("finding should name the missing member KindGreedy: %s", f)
		}
	}
	// ...while the shapes the package actually ships — exhaustive
	// dispatch and the defaulted String() fallback — stay clean.
	if got := active(loadFixture(t, "policyok", "iatsim/internal/policy")); len(got) != 0 {
		t.Fatalf("policyok should be clean, got %v", got)
	}
}

func TestMapOrderCatchesSeededViolations(t *testing.T) {
	checkAgainstMarkers(t, "mapbad", loadFixture(t, "mapbad", "iatsim/internal/mapbad"))
}

func TestMapOrderPassesSortedAndOrderFreeCode(t *testing.T) {
	if got := active(loadFixture(t, "mapok", "iatsim/internal/mapok")); len(got) != 0 {
		t.Fatalf("mapok should be clean, got %v", got)
	}
}

func TestMSRLintCatchesSeededViolations(t *testing.T) {
	checkAgainstMarkers(t, "msrbad", loadFixture(t, "msrbad", "iatsim/internal/msrbad"))
}

func TestMSRLintPassesInnocentLiterals(t *testing.T) {
	if got := active(loadFixture(t, "msrok", "iatsim/internal/msrok")); len(got) != 0 {
		t.Fatalf("msrok should be clean, got %v", got)
	}
}

func TestMSRLintExemptsTheRegisterFile(t *testing.T) {
	// The same addresses inside internal/msr are the register map
	// definition, not a layering leak.
	if got := active(loadFixture(t, "msrbad", "iatsim/internal/msr")); len(got) != 0 {
		t.Fatalf("internal/msr must be exempt, got %v", got)
	}
}

// findingAt returns the findings (suppressed included) at base:line.
func findingAt(findings []Finding, base string, line int) []Finding {
	var out []Finding
	for _, f := range findings {
		if filepath.Base(f.Pos.Filename) == base && f.Pos.Line == line {
			out = append(out, f)
		}
	}
	return out
}

// lineOf returns the 1-based line of the first fixture line containing
// needle.
func lineOf(t *testing.T, fixture, base, needle string) int {
	t.Helper()
	root := filepath.Join("testdata", fixture)
	dirs, err := packageDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range dirs {
		data, err := os.ReadFile(filepath.Join(dir, base))
		if err != nil {
			continue
		}
		for i, line := range strings.Split(string(data), "\n") {
			if strings.Contains(line, needle) {
				return i + 1
			}
		}
	}
	t.Fatalf("no line containing %q in %s/%s", needle, fixture, base)
	return 0
}

func TestInterproceduralChains(t *testing.T) {
	findings := loadFixtureModule(t, "chainmod")
	checkAgainstMarkers(t, "chainmod", findings)

	// The chain must be spelled out in the message, outermost caller
	// first, ending at the leaf violation.
	wantChains := map[string]string{
		"return util.Elapsed() // want detlint":  "sim.Step -> util.Elapsed -> time.Now",
		"return localNow() // want detlint":      "sim.Tick -> sim.localNow -> util.Elapsed -> time.Now",
		"return util.Draw() // want detlint":     "sim.Roll -> util.Draw -> rand.Intn",
		"spawn() // want detlint":                "sim.Par -> sim.spawn -> go statement",
		"for k, v := range m { // want maporder": "util.EmitRow -> fmt.Printf",
	}
	for needle, chain := range wantChains {
		line := lineOf(t, "chainmod", "sim.go", needle)
		fs := findingAt(findings, "sim.go", line)
		if len(fs) != 1 {
			t.Fatalf("want exactly 1 finding at sim.go:%d, got %v", line, fs)
		}
		if !strings.Contains(fs[0].Message, chain) {
			t.Errorf("finding at sim.go:%d lacks chain %q: %s", line, chain, fs[0].Message)
		}
	}

	// Exactly two suppressed findings: the sanctioned origin's direct
	// read, and the caller-side declaration-suppressed chain. Both keep
	// their written reasons, and every directive is consumed (no meta
	// findings).
	var suppressed, meta []Finding
	for _, f := range findings {
		if f.Suppressed {
			suppressed = append(suppressed, f)
			if f.Reason == "" {
				t.Errorf("suppressed finding lost its reason: %v", f)
			}
		}
		if f.Analyzer == MetaAnalyzer {
			meta = append(meta, f)
		}
	}
	if len(suppressed) != 2 {
		t.Errorf("want 2 suppressed findings, got %v", suppressed)
	}
	if len(meta) != 0 {
		t.Errorf("all directives should be consumed, got meta findings %v", meta)
	}
}

func TestSeedFlowCatchesSeededViolations(t *testing.T) {
	checkAgainstMarkers(t, "seedbad", loadFixture(t, "seedbad", "iatsim/internal/seedbad"))
}

func TestSeedFlowPassesDerivedSeeds(t *testing.T) {
	if got := active(loadFixture(t, "seedok", "iatsim/internal/seedok")); len(got) != 0 {
		t.Fatalf("seedok should be clean, got %v", got)
	}
}

func TestSeedFlowScopeIsInternalOnly(t *testing.T) {
	// Outside internal/, constant seeds are legitimate (cmd flag
	// defaults).
	if got := active(loadFixture(t, "seedbad", "iatsim/cmd/seedbad")); len(got) != 0 {
		t.Fatalf("cmd-scoped package should be out of seedflow's scope, got %v", got)
	}
}

func TestStateLintCatchesMissingCases(t *testing.T) {
	findings := loadFixture(t, "statebad", "iatsim/internal/statebad")
	checkAgainstMarkers(t, "statebad", findings)
	for _, f := range active(findings) {
		if !strings.Contains(f.Message, "Stopped") {
			t.Errorf("finding should name the missing member Stopped: %s", f)
		}
	}
}

func TestStateLintPassesHandledSwitches(t *testing.T) {
	if got := active(loadFixture(t, "stateok", "iatsim/internal/stateok")); len(got) != 0 {
		t.Fatalf("stateok should be clean, got %v", got)
	}
}

func TestTelemLint(t *testing.T) {
	findings := loadFixtureModule(t, "telemmod")
	checkAgainstMarkers(t, "telemmod", findings)

	// The wrapper finding reports at the call site and names the wrapper.
	line := lineOf(t, "telemmod", "telapp.go", "bump(r, which) // want telemlint")
	fs := findingAt(findings, "telapp.go", line)
	if len(fs) != 1 || !strings.Contains(fs[0].Message, "telapp.bump") {
		t.Errorf("wrapper finding should name telapp.bump: %v", fs)
	}
}

func TestMultipleIgnoresOnOneFinding(t *testing.T) {
	findings := loadFixture(t, "multiignore", "iatsim/internal/multiignore")
	var suppressed int
	for _, f := range findings {
		switch {
		case f.Suppressed:
			suppressed++
		default:
			t.Errorf("unexpected active finding: %s", f)
		}
	}
	// One finding, suppressed once — and both stacked directives count as
	// used, so neither shows up as an unused-suppression meta finding.
	if suppressed != 1 {
		t.Errorf("want exactly 1 suppressed finding, got %d", suppressed)
	}
}

func TestFindingStringDegradesGracefully(t *testing.T) {
	cases := []struct {
		f    Finding
		want string
	}{
		{Finding{Analyzer: "detlint", Message: "m", Pos: token.Position{Filename: "a.go", Line: 3}}, "a.go:3: [detlint] m"},
		{Finding{Analyzer: "simlint", Message: "m", Pos: token.Position{Filename: "b.go"}}, "b.go: [simlint] m"},
		{Finding{Analyzer: "simlint", Message: "m"}, "[simlint] m"},
	}
	for _, c := range cases {
		if got := c.f.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestLoaderToleratesSyntaxErrors(t *testing.T) {
	dir := t.TempDir()
	good := "// Package broken mixes a good and a broken file.\npackage broken\n\n// OK is fine.\nfunc OK() int { return 1 }\n"
	bad := "package broken\n\nfunc Broken( {\n"
	if err := os.WriteFile(filepath.Join(dir, "good.go"), []byte(good), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	mod, err := LoadDir(dir, "iatsim/internal/broken")
	if err != nil {
		t.Fatalf("a syntax error must not fail the load: %v", err)
	}
	if len(mod.ParseErrors) == 0 {
		t.Fatal("want recorded parse errors")
	}
	if len(mod.Pkgs) != 1 || len(mod.Pkgs[0].Files) != 1 {
		t.Fatalf("the good file should still be analyzed, got %+v", mod.Pkgs)
	}
	findings := RunAnalyzers(mod, Analyzers())
	found := false
	for _, f := range findings {
		if f.Analyzer == MetaAnalyzer && strings.Contains(f.Message, "syntax error") {
			found = true
			if f.Pos.Filename == "" {
				t.Errorf("syntax-error finding lost its position: %v", f)
			}
		}
	}
	if !found {
		t.Fatalf("want a [simlint] syntax error finding, got %v", findings)
	}
}

func TestLoaderToleratesFullyBrokenPackage(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte("package broken\nfunc ( {\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	mod, err := LoadDir(dir, "iatsim/internal/broken")
	if err != nil {
		t.Fatalf("an all-broken package must still load as findings: %v", err)
	}
	findings := RunAnalyzers(mod, Analyzers())
	if len(active(findings)) == 0 {
		t.Fatal("want syntax-error findings from the broken package")
	}
}

// TestModuleIsCleanAtHead is the enforcement test: the repository's own
// tree must lint clean (modulo written-reason suppressions). It is the
// same check `make lint` runs, kept in tier-1 so a PR cannot land a
// violation even if it skips the Makefile.
func TestModuleIsCleanAtHead(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	if raceEnabled {
		t.Skip("whole-module type-check is slow under -race; make lint covers it")
	}
	mod, err := LoadModule("../..")
	if err != nil {
		t.Fatal(err)
	}
	findings := RunAnalyzers(mod, Analyzers())
	for _, f := range active(findings) {
		t.Errorf("%s", f)
	}
	for _, f := range findings {
		if f.Suppressed && f.Reason == "" {
			t.Errorf("suppression without reason: %s", f)
		}
	}
}
