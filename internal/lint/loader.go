// Package lint implements simlint, the repository's custom static-analysis
// suite. It encodes the invariants the reproduction's headline guarantee
// rests on — byte-identical output at any -jobs value on the simulated
// Xeon platform — as analyzers that run over every package in the module:
//
//   - detlint:   no wall-clock time, no global math/rand, no goroutines in
//     simulation packages (internal/...), outside an explicit allowlist —
//     enforced interprocedurally: a sim-package function whose call
//     closure reaches a violation is flagged with the offending chain
//     (sim.Step -> helper -> time.Now).
//   - maporder:  no map iteration feeding an output-bearing sink (CSV
//     rows, printed lines, escaping appends, fields) without sorting
//     first — including sinks a call away (a helper whose closure emits).
//   - msrlint:   no raw architectural MSR addresses outside internal/msr;
//     register traffic flows through the typed msr.File / internal/rdt API.
//   - seedflow:  RNG streams in internal/ derive from a seed parameter or
//     id-derived offset — never a constant seed or a package-level shared
//     stream (the fleet per-host seeding contract).
//   - statelint: switches over //simlint:enum-marked FSM types (the
//     daemon's core.State, the fault injector's faults.Kind) must be
//     exhaustive or carry an explicit default.
//   - telemlint: telemetry handles come from the Registry, never literal
//     construction, and registry metric names are compile-time constants
//     (the golden-snapshot schema stays closed).
//
// The suite is deliberately stdlib-only (go/parser, go/ast, go/types, and
// the GOROOT source importer) so it builds and runs offline with no module
// dependencies, matching the repository's "stdlib only" constraint.
//
// Findings print as "file:line: [analyzer] message" and can be suppressed
// with a trailing or preceding comment:
//
//	//simlint:ignore <analyzer> <reason>
//
// The reason is mandatory, and unused suppressions are themselves findings,
// so stale annotations cannot accumulate. A directive on a function
// declaration additionally suppresses interprocedural findings whose call
// chain passes through that function.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/scanner"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one parsed and type-checked package of the module under
// analysis. Type errors are tolerated (TypeErrors records them): analyzers
// degrade to syntactic checks where type information is missing, so the
// linter stays useful on a tree that is mid-refactor.
type Package struct {
	// Path is the import path, e.g. "iatsim/internal/cache".
	Path string
	// Dir is the absolute directory the files were read from.
	Dir        string
	Files      []*ast.File
	Filenames  []string // parallel to Files
	Types      *types.Package
	Info       *types.Info
	TypeErrors []error
}

// Module is a loaded module: every non-test package under its root.
type Module struct {
	// Path is the module path from go.mod (e.g. "iatsim").
	Path string
	// Dir is the module root directory.
	Dir  string
	Fset *token.FileSet
	// Pkgs is sorted by import path.
	Pkgs []*Package
	// ParseErrors records files the parser rejected. The files are
	// excluded from analysis; the errors surface as meta findings (a
	// broken tree must fail lint loudly, not crash it or hide packages).
	ParseErrors []ParseError
}

// ParseError is one syntax error the loader tolerated.
type ParseError struct {
	Pos     token.Position
	Msg     string
	Package string
}

// sharedFset is the process-wide FileSet. The GOROOT source importer
// type-checks the standard library once per process and is bound to one
// FileSet, so the loader shares a single set across all loads.
var (
	sharedFset *token.FileSet
	sharedStd  types.Importer
	sharedOnce sync.Once
)

func stdImporter() (*token.FileSet, types.Importer) {
	sharedOnce.Do(func() {
		sharedFset = token.NewFileSet()
		sharedStd = importer.ForCompiler(sharedFset, "source", nil)
	})
	return sharedFset, sharedStd
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod at or above %s", dir)
		}
		d = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// LoadModule parses and type-checks every non-test package under the
// module rooted at dir. Test files (_test.go) and testdata/ trees are
// excluded: the invariants guard the simulation paths that produce
// results, and tests legitimately use wall-clock timeouts and fixtures
// legitimately contain seeded violations.
func LoadModule(dir string) (*Module, error) {
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	path, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset, std := stdImporter()
	m := &Module{Path: path, Dir: root, Fset: fset}

	pkgDirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	for _, d := range pkgDirs {
		rel, err := filepath.Rel(root, d)
		if err != nil {
			return nil, err
		}
		importPath := path
		if rel != "." {
			importPath = path + "/" + filepath.ToSlash(rel)
		}
		pkg, perrs, err := parseDir(fset, d)
		if err != nil {
			return nil, err
		}
		for _, pe := range perrs {
			pe.Package = importPath
			m.ParseErrors = append(m.ParseErrors, pe)
		}
		if pkg == nil {
			continue // no (parseable) non-test Go files
		}
		pkg.Path = importPath
		m.Pkgs = append(m.Pkgs, pkg)
	}

	ld := &loader{mod: m, std: std, byPath: map[string]*Package{}, state: map[string]int{}}
	for _, p := range m.Pkgs {
		ld.byPath[p.Path] = p
	}
	for _, p := range m.Pkgs {
		if err := ld.ensure(p); err != nil {
			return nil, fmt.Errorf("lint: type-check %s: %w", p.Path, err)
		}
	}
	return m, nil
}

// LoadDir parses and type-checks a single directory as a standalone
// package under the given import path. Fixture tests use it to analyze
// testdata packages while choosing the import path (and with it the
// analyzers' package-scope rules) freely.
func LoadDir(dir, importPath string) (*Module, error) {
	fset, std := stdImporter()
	pkg, perrs, err := parseDir(fset, dir)
	if err != nil {
		return nil, err
	}
	m := &Module{Path: strings.SplitN(importPath, "/", 2)[0], Dir: dir, Fset: fset}
	for _, pe := range perrs {
		pe.Package = importPath
		m.ParseErrors = append(m.ParseErrors, pe)
	}
	if pkg == nil {
		if len(perrs) > 0 {
			return m, nil // every file broken: the findings carry the story
		}
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	pkg.Path = importPath
	m.Pkgs = []*Package{pkg}
	ld := &loader{mod: m, std: std, byPath: map[string]*Package{importPath: pkg}, state: map[string]int{}}
	if err := ld.ensure(pkg); err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", importPath, err)
	}
	return m, nil
}

// packageDirs walks root and returns every directory that may hold a
// package, excluding testdata/vendor/hidden trees. LoadModule and the
// fixture test helpers share this walk so their notion of "the module's
// packages" cannot drift apart.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// goSourceFiles lists the non-test Go files of one directory in sorted
// order — the single definition of which files the linter reads, shared
// by the loader and the fixture test helpers.
func goSourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	return files, nil
}

// parseDir parses the non-test Go files of one directory; nil if none
// parse. Files with syntax errors are reported in the ParseError slice
// and excluded (the remaining files still type-check best-effort).
func parseDir(fset *token.FileSet, dir string) (*Package, []ParseError, error) {
	files, err := goSourceFiles(dir)
	if err != nil {
		return nil, nil, err
	}
	pkg := &Package{Dir: dir}
	var perrs []ParseError
	for _, full := range files {
		f, err := parser.ParseFile(fset, full, nil, parser.ParseComments)
		if err != nil {
			perrs = append(perrs, parseErrors(fset, full, err)...)
			continue
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Filenames = append(pkg.Filenames, full)
	}
	if len(pkg.Files) == 0 {
		return nil, perrs, nil
	}
	return pkg, perrs, nil
}

// parseErrors flattens a parser error (usually a scanner.ErrorList) into
// positioned ParseErrors.
func parseErrors(fset *token.FileSet, file string, err error) []ParseError {
	if list, ok := err.(scanner.ErrorList); ok {
		out := make([]ParseError, 0, len(list))
		for _, e := range list {
			out = append(out, ParseError{Pos: e.Pos, Msg: e.Msg})
		}
		return out
	}
	return []ParseError{{Pos: token.Position{Filename: file}, Msg: err.Error()}}
}

// loader type-checks module packages in dependency order, resolving
// intra-module imports from its own package set and everything else (the
// standard library) through the GOROOT source importer.
type loader struct {
	mod    *Module
	std    types.Importer
	byPath map[string]*Package
	state  map[string]int // 0 = unloaded, 1 = checking, 2 = done
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if p, ok := l.byPath[path]; ok {
		if l.state[path] == 1 {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		if err := l.ensure(p); err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// ensure type-checks p (and, via Import, its intra-module dependencies).
// Type errors are collected on the package, not returned: analyzers run
// on best-effort type information.
func (l *loader) ensure(p *Package) error {
	if l.state[p.Path] == 2 {
		return nil
	}
	l.state[p.Path] = 1
	defer func() { l.state[p.Path] = 2 }()
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			p.TypeErrors = append(p.TypeErrors, err)
		},
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	tpkg, err := conf.Check(p.Path, l.mod.Fset, p.Files, info)
	p.Types, p.Info = tpkg, info
	if tpkg == nil {
		return err
	}
	return nil
}
