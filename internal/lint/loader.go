// Package lint implements simlint, the repository's custom static-analysis
// suite. It encodes the invariants the reproduction's headline guarantee
// rests on — byte-identical output at any -jobs value on the simulated
// Xeon platform — as analyzers that run over every package in the module:
//
//   - detlint:  no wall-clock time, no global math/rand, no goroutines in
//     simulation packages (internal/...), outside an explicit allowlist.
//   - maporder: no map iteration feeding an output-bearing sink (CSV rows,
//     printed lines, escaping appends, fields) without sorting first.
//   - msrlint:  no raw architectural MSR addresses outside internal/msr;
//     register traffic flows through the typed msr.File / internal/rdt API.
//
// The suite is deliberately stdlib-only (go/parser, go/ast, go/types, and
// the GOROOT source importer) so it builds and runs offline with no module
// dependencies, matching the repository's "stdlib only" constraint.
//
// Findings print as "file:line: [analyzer] message" and can be suppressed
// with a trailing or preceding comment:
//
//	//simlint:ignore <analyzer> <reason>
//
// The reason is mandatory, and unused suppressions are themselves findings,
// so stale annotations cannot accumulate.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one parsed and type-checked package of the module under
// analysis. Type errors are tolerated (TypeErrors records them): analyzers
// degrade to syntactic checks where type information is missing, so the
// linter stays useful on a tree that is mid-refactor.
type Package struct {
	// Path is the import path, e.g. "iatsim/internal/cache".
	Path string
	// Dir is the absolute directory the files were read from.
	Dir        string
	Files      []*ast.File
	Filenames  []string // parallel to Files
	Types      *types.Package
	Info       *types.Info
	TypeErrors []error
}

// Module is a loaded module: every non-test package under its root.
type Module struct {
	// Path is the module path from go.mod (e.g. "iatsim").
	Path string
	// Dir is the module root directory.
	Dir  string
	Fset *token.FileSet
	// Pkgs is sorted by import path.
	Pkgs []*Package
}

// sharedFset is the process-wide FileSet. The GOROOT source importer
// type-checks the standard library once per process and is bound to one
// FileSet, so the loader shares a single set across all loads.
var (
	sharedFset *token.FileSet
	sharedStd  types.Importer
	sharedOnce sync.Once
)

func stdImporter() (*token.FileSet, types.Importer) {
	sharedOnce.Do(func() {
		sharedFset = token.NewFileSet()
		sharedStd = importer.ForCompiler(sharedFset, "source", nil)
	})
	return sharedFset, sharedStd
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod at or above %s", dir)
		}
		d = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// LoadModule parses and type-checks every non-test package under the
// module rooted at dir. Test files (_test.go) and testdata/ trees are
// excluded: the invariants guard the simulation paths that produce
// results, and tests legitimately use wall-clock timeouts and fixtures
// legitimately contain seeded violations.
func LoadModule(dir string) (*Module, error) {
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	path, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset, std := stdImporter()
	m := &Module{Path: path, Dir: root, Fset: fset}

	var pkgDirs []string
	err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		pkgDirs = append(pkgDirs, p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(pkgDirs)

	for _, d := range pkgDirs {
		pkg, err := parseDir(fset, d)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue // no non-test Go files
		}
		rel, err := filepath.Rel(root, d)
		if err != nil {
			return nil, err
		}
		if rel == "." {
			pkg.Path = path
		} else {
			pkg.Path = path + "/" + filepath.ToSlash(rel)
		}
		m.Pkgs = append(m.Pkgs, pkg)
	}

	ld := &loader{mod: m, std: std, byPath: map[string]*Package{}, state: map[string]int{}}
	for _, p := range m.Pkgs {
		ld.byPath[p.Path] = p
	}
	for _, p := range m.Pkgs {
		if err := ld.ensure(p); err != nil {
			return nil, fmt.Errorf("lint: type-check %s: %w", p.Path, err)
		}
	}
	return m, nil
}

// LoadDir parses and type-checks a single directory as a standalone
// package under the given import path. Fixture tests use it to analyze
// testdata packages while choosing the import path (and with it the
// analyzers' package-scope rules) freely.
func LoadDir(dir, importPath string) (*Module, error) {
	fset, std := stdImporter()
	pkg, err := parseDir(fset, dir)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	pkg.Path = importPath
	m := &Module{Path: strings.SplitN(importPath, "/", 2)[0], Dir: dir, Fset: fset, Pkgs: []*Package{pkg}}
	ld := &loader{mod: m, std: std, byPath: map[string]*Package{importPath: pkg}, state: map[string]int{}}
	if err := ld.ensure(pkg); err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", importPath, err)
	}
	return m, nil
}

// parseDir parses the non-test Go files of one directory; nil if none.
func parseDir(fset *token.FileSet, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Dir: dir}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Filenames = append(pkg.Filenames, full)
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	return pkg, nil
}

// loader type-checks module packages in dependency order, resolving
// intra-module imports from its own package set and everything else (the
// standard library) through the GOROOT source importer.
type loader struct {
	mod    *Module
	std    types.Importer
	byPath map[string]*Package
	state  map[string]int // 0 = unloaded, 1 = checking, 2 = done
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if p, ok := l.byPath[path]; ok {
		if l.state[path] == 1 {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		if err := l.ensure(p); err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// ensure type-checks p (and, via Import, its intra-module dependencies).
// Type errors are collected on the package, not returned: analyzers run
// on best-effort type information.
func (l *loader) ensure(p *Package) error {
	if l.state[p.Path] == 2 {
		return nil
	}
	l.state[p.Path] = 1
	defer func() { l.state[p.Path] = 2 }()
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			p.TypeErrors = append(p.TypeErrors, err)
		},
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	tpkg, err := conf.Check(p.Path, l.mod.Fset, p.Files, info)
	p.Types, p.Info = tpkg, info
	if tpkg == nil {
		return err
	}
	return nil
}
