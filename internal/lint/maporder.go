package lint

import (
	"go/ast"
	"go/types"
)

// MapOrder flags `range` over a map whose loop body writes to an
// output-bearing sink: Go randomises map iteration order per run, so any
// CSV row, printed line, escaping append, or field write produced inside
// such a loop lands in a different order on every execution — exactly the
// nondeterminism the repository's byte-identical-results guarantee
// forbids.
//
// Sinks:
//   - fmt printing (Print/Printf/Println/Fprint/Fprintf/Fprintln),
//   - writer-shaped method calls (Write, WriteString, WriteAll, WriteRow,
//     WriteByte, WriteRune, Print, Printf, Println, Record, Emit —
//     telemetry events carry sequence numbers, so emission order is
//     output order),
//   - append whose destination is declared outside the loop (the slice
//     escapes carrying map-ordered elements),
//   - assignment to a field or slice/array element of a variable declared
//     outside the loop (last-writer-wins in map order).
//
// The one recognised idiom is collect-then-sort: an escaping append is
// exempt when the destination slice is later passed to a sort.* /
// slices.* call in the same function. Anything else needs sorted keys
// first, or a //simlint:ignore maporder <reason> annotation.
var MapOrder = &Analyzer{
	Name: mapOrderName,
	Doc:  "flag map iteration feeding output sinks (CSV rows, prints, escaping appends) without sorting",
	Run:  runMapOrder,
}

// mapOrderName is referenced from the interprocedural core (summary.go);
// a named constant keeps the Analyzer var out of its own init cycle.
const mapOrderName = "maporder"

// writerMethods are method names that emit ordered output.
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteAll": true, "WriteRow": true,
	"WriteByte": true, "WriteRune": true, "Print": true, "Printf": true,
	"Println": true, "Record": true, "Emit": true,
}

// fmtPrinters are the fmt package functions that write output.
var fmtPrinters = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func runMapOrder(p *Pass) {
	for _, file := range p.Pkg.Files {
		imports := pkgImports(file)
		// funcs stacks the enclosing function bodies so the
		// collect-then-sort exemption can scan the innermost one.
		var funcs []ast.Node
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				funcs = append(funcs, n)
				ast.Inspect(childrenOf(n), walk)
				funcs = funcs[:len(funcs)-1]
				return false
			case *ast.RangeStmt:
				p.checkMapRange(imports, n, enclosing(funcs))
			}
			return true
		}
		ast.Inspect(file, walk)
	}
}

// childrenOf returns the body to recurse into for a function node.
func childrenOf(n ast.Node) ast.Node {
	switch n := n.(type) {
	case *ast.FuncDecl:
		if n.Body != nil {
			return n.Body
		}
	case *ast.FuncLit:
		return n.Body
	}
	return &ast.BlockStmt{}
}

// enclosing returns the innermost enclosing function node, or nil.
func enclosing(funcs []ast.Node) ast.Node {
	if len(funcs) == 0 {
		return nil
	}
	return funcs[len(funcs)-1]
}

// checkMapRange reports rs when it iterates a map and its body reaches an
// output sink.
func (p *Pass) checkMapRange(imports map[string]string, rs *ast.RangeStmt, fn ast.Node) {
	t := p.typeOf(rs.X)
	if t == nil {
		return // type info unavailable: stay silent rather than guess
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	if sink, chain := p.findSink(imports, rs, fn); sink != "" {
		if len(chain) > 0 {
			p.reportChain(rs.Pos(), chain, "map iterated in nondeterministic order %s; sort the keys first", sink)
		} else {
			p.Reportf(rs.Pos(), "map iterated in nondeterministic order %s; sort the keys first", sink)
		}
	}
}

// findSink scans the loop body for the first output-bearing sink and
// describes it ("" when none). Sinks may be a call away: a call to a
// module function whose summarized closure emits output counts, with the
// emission chain returned for declaration-level suppression.
func (p *Pass) findSink(imports map[string]string, rs *ast.RangeStmt, fn ast.Node) (string, []*types.Func) {
	var sink string
	var chain []*types.Func
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if path, sel, ok := p.selectorPackage(imports, n.Fun); ok {
				if path == "fmt" && fmtPrinters[sel] {
					sink = "into fmt." + sel
					return true
				}
			} else if s, ok := n.Fun.(*ast.SelectorExpr); ok && writerMethods[s.Sel.Name] {
				sink = "into a ." + s.Sel.Name + " call"
				return true
			}
			// Interprocedural: the loop body calls a module function
			// whose call closure emits output.
			if node := p.graph.nodeFor(calleeFunc(p.Pkg, n)); node != nil {
				if f := p.graph.emitFact(node); f != nil {
					desc, fns := p.graph.chainFrom(node, f.key)
					sink, chain = "into a call whose closure emits output ("+desc+")", fns
				}
			}
		case *ast.AssignStmt:
			sink = p.assignSink(rs, fn, n)
		}
		return true
	})
	return sink, chain
}

// assignSink classifies an assignment inside the loop body.
func (p *Pass) assignSink(rs *ast.RangeStmt, fn ast.Node, as *ast.AssignStmt) string {
	// Escaping append: x = append(x, ...) with x declared outside the
	// loop. Exempt when x is sorted later in the enclosing function
	// (the collect-then-sort idiom).
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || len(as.Lhs) <= i {
			continue
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
			continue
		}
		dst, ok := as.Lhs[i].(*ast.Ident)
		if !ok || !p.declaredOutside(dst, rs) {
			continue
		}
		if p.sortedLater(dst, fn) {
			continue
		}
		return "into an append to " + dst.Name + ", which escapes the loop unsorted"
	}
	for _, lhs := range as.Lhs {
		switch l := lhs.(type) {
		case *ast.SelectorExpr:
			if root := rootIdent(l.X); root != nil && p.declaredOutside(root, rs) {
				return "into field " + root.Name + "." + l.Sel.Name
			}
		case *ast.IndexExpr:
			// Writing m2[k] = v builds a map (order-free); writing a
			// slice/array element in map order is a sink.
			if t := p.typeOf(l.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					continue
				}
			}
			if root := rootIdent(l.X); root != nil && p.declaredOutside(root, rs) {
				return "into an element of " + root.Name
			}
		}
	}
	return ""
}

// rootIdent unwraps x.y.z / x[i] chains to the base identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether id's declaration lies outside the range
// statement (true also when type info is unavailable: without it the
// conservative reading is that the value escapes).
func (p *Pass) declaredOutside(id *ast.Ident, rs *ast.RangeStmt) bool {
	obj := p.objectOf(id)
	if obj == nil {
		return true
	}
	return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
}

// sortedLater reports whether slice is passed to a sort.* or slices.*
// call anywhere in the enclosing function — the collect-then-sort idiom.
func (p *Pass) sortedLater(slice *ast.Ident, fn ast.Node) bool {
	if fn == nil {
		return false
	}
	target := p.objectOf(slice)
	found := false
	ast.Inspect(childrenOf(fn), func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || (pkg.Name != "sort" && pkg.Name != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok {
				if target == nil && id.Name == slice.Name {
					found = true
				}
				if target != nil && p.objectOf(id) == target {
					found = true
				}
			}
		}
		return true
	})
	return found
}
