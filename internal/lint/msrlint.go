package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// MSRLint flags hex integer literals that land in the platform's
// architectural MSR address ranges anywhere outside internal/msr. The
// paper's pqos-style layering puts every register access behind the typed
// msr.File / internal/rdt API; a raw 0xC90-class literal in a simulation
// or control-plane package is a layering leak waiting to diverge from the
// register file's accounting (the Fig. 15 overhead model counts File
// operations, so side-channel register pokes would silently corrupt it).
//
// Only hex-spelled literals are matched: the ranges are memorable as hex
// addresses, and matching decimals would trip ordinary scalar constants.
var MSRLint = &Analyzer{
	Name: "msrlint",
	Doc:  "flag raw MSR addresses (CAT masks, IIO_LLC_WAYS, PQR_ASSOC, counter blocks) outside internal/msr",
	Run:  runMSRLint,
}

// msrRanges are the address windows of msr.go's register map: the real
// Intel addresses (IIO_LLC_WAYS 0xC8B, IA32_PQR_ASSOC 0xC8F,
// IA32_L3_QOS_MASK_n from 0xC90, IA32_L2_QoS_Ext_BW_Thrtl_n from 0xD50)
// and the repository's synthetic flattened blocks (per-core PQR_ASSOC at
// 0x0C8F_0000, per-core and per-CHA counters at 0xF000_0000/0xF100_0000).
var msrRanges = []struct {
	lo, hi uint64
	name   string
}{
	{0x0C8B, 0x0C8B, "IIO_LLC_WAYS"},
	{0x0C8F, 0x0C8F, "IA32_PQR_ASSOC"},
	{0x0C90, 0x0CAF, "IA32_L3_QOS_MASK_n (CAT mask)"},
	{0x0D50, 0x0D6F, "IA32_L2_QoS_Ext_BW_Thrtl_n (MBA)"},
	{0x0C8F_0000, 0x0C8F_FFFF, "per-core PQR_ASSOC block"},
	{0xF000_0000, 0xF2FF_FFFF, "synthetic performance-counter block"},
}

// msrExemptSuffixes are the packages allowed to spell register addresses:
// internal/msr defines them, and internal/lint (this package) encodes the
// ranges being enforced.
var msrExemptSuffixes = []string{"/internal/msr", "/internal/lint"}

func runMSRLint(p *Pass) {
	for _, suffix := range msrExemptSuffixes {
		if strings.HasSuffix(p.Pkg.Path, suffix) {
			return
		}
	}
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.INT {
				return true
			}
			if !strings.HasPrefix(lit.Value, "0x") && !strings.HasPrefix(lit.Value, "0X") {
				return true
			}
			v, err := strconv.ParseUint(lit.Value, 0, 64)
			if err != nil {
				return true
			}
			for _, r := range msrRanges {
				if v >= r.lo && v <= r.hi {
					p.Reportf(lit.Pos(), "hex literal %s lies in the %s MSR range; route register traffic through the internal/msr constants and typed File API", lit.Value, r.name)
					break
				}
			}
			return true
		})
	}
}
