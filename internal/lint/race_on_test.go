//go:build race

package lint

// raceEnabled gates the whole-module enforcement test: under the race
// detector the full type-check exceeds reasonable budgets, and the lint
// suite itself is single-threaded. `make lint` runs the same check.
const raceEnabled = true
