package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SeedFlow enforces the repository's seeding contract in simulation
// packages: every RNG stream derives from a seed that was threaded in as
// a parameter or computed from an id (harness.DeriveSeed, a splitmix64
// offset), never hard-coded and never shared process-wide. Concretely:
//
//   - a compile-time-constant argument passed to any parameter whose name
//     contains "seed" is flagged — a literal seed makes every instance
//     draw the same stream, which silently decorrelates nothing and
//     masks per-host divergence the fleet experiments rely on;
//   - a package-level variable of a math/rand (or /v2) stream type
//     (Rand, Source, Zipf) is flagged — a shared global stream couples
//     the draw order of otherwise independent components, so adding a
//     draw in one place perturbs results everywhere.
//
// Seed parameters are recognised by name (case-insensitive substring
// "seed"), which matches both the module's constructors
// (faults.NewInjector(seed uint64), pkt.NewFlowSet(n, vlan, seed)) and
// the standard library (rand.NewSource(seed int64)).
var SeedFlow = &Analyzer{
	Name: "seedflow",
	Doc:  "forbid constant seeds and package-level shared RNG streams in simulation packages",
	Run:  runSeedFlow,
}

// randStreamTypes are the math/rand type names that hold stream state.
var randStreamTypes = map[string]bool{"Rand": true, "Source": true, "Source64": true, "Zipf": true}

func runSeedFlow(p *Pass) {
	if !simulationPackage(p.Pkg.Path) {
		return
	}
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			if gd, ok := decl.(*ast.GenDecl); ok {
				p.checkGlobalStreams(gd)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				p.checkSeedArgs(call)
			}
			return true
		})
	}
}

// checkGlobalStreams flags package-level vars of RNG stream type.
func (p *Pass) checkGlobalStreams(gd *ast.GenDecl) {
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, name := range vs.Names {
			obj := p.objectOf(name)
			v, isVar := obj.(*types.Var)
			if !isVar || v.Parent() != p.Pkg.Types.Scope() {
				continue // only package scope; consts and locals are fine
			}
			if tn := randStreamType(v.Type()); tn != "" {
				p.Reportf(name.Pos(),
					"package-level %s is a shared RNG stream: draws from unrelated call sites interleave, so any code change reorders everyone's randomness; make it per-instance state seeded from a parameter", tn)
			}
		}
	}
}

// randStreamType names the math/rand stream type behind t ("" when t is
// not one), unwrapping one level of pointer.
func randStreamType(t types.Type) string {
	if pt, ok := t.(*types.Pointer); ok {
		t = pt.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	path := obj.Pkg().Path()
	if (path == "math/rand" || path == "math/rand/v2") && randStreamTypes[obj.Name()] {
		return "*" + obj.Pkg().Name() + "." + obj.Name()
	}
	return ""
}

// checkSeedArgs flags compile-time-constant arguments bound to seed-named
// parameters of the callee.
func (p *Pass) checkSeedArgs(call *ast.CallExpr) {
	sigType := p.typeOf(call.Fun)
	if sigType == nil {
		return
	}
	sig, ok := sigType.Underlying().(*types.Signature)
	if !ok {
		return // conversion or type-info gap
	}
	params := sig.Params()
	for i, arg := range call.Args {
		if i >= params.Len() {
			break
		}
		if sig.Variadic() && i == params.Len()-1 {
			break // variadic tail: positional mapping ends here
		}
		param := params.At(i)
		if !strings.Contains(strings.ToLower(param.Name()), "seed") {
			continue
		}
		if p.constValue(arg) {
			p.Reportf(arg.Pos(),
				"constant seed for parameter %q of %s: every instance draws the identical stream; derive it from the run seed (harness.DeriveSeed) or an id-based offset", param.Name(), calleeName(call))
		}
	}
}

// calleeName renders the called expression for a finding message.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "the call"
}
