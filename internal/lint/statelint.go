package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// StateLint enforces switch exhaustiveness over the module's FSM types.
// A type opts in by carrying a //simlint:enum marker on its declaration
// (the daemon's core.State, the fault injector's faults.Kind); its
// members are the package-level constants of exactly that type, so an
// untyped sentinel like NumKinds int is automatically excluded.
//
// Every switch whose tag has an enum type must either list every member
// or carry an explicit default clause. Adding a state or fault kind then
// breaks lint at each switch that forgot to handle it — the failure the
// daemon FSM previously only hit at runtime, as a silently-ignored
// transition. Switches containing a case expression statelint cannot
// resolve to a constant stay un-flagged: without the full case set the
// analyzer cannot claim non-exhaustiveness.
var StateLint = &Analyzer{
	Name: "statelint",
	Doc:  "require switches over //simlint:enum types to be exhaustive or carry an explicit default",
	Run:  runStateLint,
}

func runStateLint(p *Pass) {
	if p.graph == nil {
		return
	}
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if sw, ok := n.(*ast.SwitchStmt); ok && sw.Tag != nil {
				p.checkEnumSwitch(sw)
			}
			return true
		})
	}
}

func (p *Pass) checkEnumSwitch(sw *ast.SwitchStmt) {
	t := p.typeOf(sw.Tag)
	if t == nil {
		return
	}
	named, ok := t.(*types.Named)
	if !ok {
		return
	}
	info := p.graph.enums[named.Obj()]
	if info == nil {
		return
	}
	covered := map[string]bool{}
	hasDefault := false
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			continue
		}
		for _, e := range cc.List {
			tv, ok := p.Pkg.Info.Types[e]
			if !ok || tv.Value == nil {
				return // unresolvable case: cannot prove non-exhaustiveness
			}
			covered[tv.Value.String()] = true
		}
	}
	if hasDefault {
		return
	}
	var missing []string
	for _, m := range info.members {
		if !covered[m.Val().String()] {
			missing = append(missing, m.Name())
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	p.Reportf(sw.Pos(),
		"switch over %s does not handle %s; add the missing cases or an explicit default (the type is marked //simlint:enum)",
		enumDisplayName(p, named.Obj()), strings.Join(missing, ", "))
}

// enumDisplayName qualifies the enum type with its package name unless it
// is local to the package under analysis.
func enumDisplayName(p *Pass, obj *types.TypeName) string {
	if obj.Pkg() != nil && p.Pkg.Types != nil && obj.Pkg() != p.Pkg.Types {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return obj.Name()
}
