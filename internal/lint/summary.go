package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the interprocedural core of simlint v2: a whole-module
// call graph whose nodes carry "determinism summaries" — the facts about
// a function's call closure that the analyzers enforce. Summaries are
// computed bottom-up to a fixed point, so a wall-clock read laundered
// through any number of helper calls still reaches the sim-package
// function that ultimately depends on it, and the finding can name the
// whole chain (sim.Step -> helper -> time.Now).
//
// The graph is deliberately conservative in the sound direction for
// static call edges only: calls through function values, interfaces, or
// reflection are not edges (the single-threaded simulation style keeps
// those rare), and facts never propagate out of a function whose origin
// package is allowlisted for that fact kind or whose declaration carries
// a //simlint:ignore directive for the reporting analyzer.

// FactKind classifies one determinism-relevant behaviour of a function's
// call closure.
type FactKind int

const (
	// FactWallClock: the closure reads the host wall clock
	// (time.Now/Since/Until).
	FactWallClock FactKind = iota
	// FactGlobalRand: the closure draws from the process-global
	// math/rand or math/rand/v2 source.
	FactGlobalRand
	// FactGoroutine: the closure spawns a goroutine.
	FactGoroutine
	// FactEmit: the closure writes ordered output (fmt printing or a
	// writer-shaped method call) — map iteration feeding such a call is
	// order-sensitive even though the emission is a call away.
	FactEmit
)

// analyzerFor maps a fact kind to the analyzer that reports it; directive
// matching (line- and declaration-level) keys off this name.
func (k FactKind) analyzerFor() string {
	if k == FactEmit {
		return mapOrderName
	}
	return detLintName
}

// factKey identifies one propagated fact: the kind plus the source
// position of the originating violation. Two paths from a function to the
// same origin collapse into one fact; distinct origins stay distinct.
type factKey struct {
	kind   FactKind
	origin token.Pos
}

// fact is one summary entry. via records the witness: nil means the
// origin is in this function's own body; otherwise the fact arrived
// through that call edge and the chain continues at the callee.
type fact struct {
	key  factKey
	desc string // leaf description, e.g. "time.Now" or "fmt.Println"
	via  *edge
}

// edge is one static call site from a graph function to another
// module function.
type edge struct {
	call   *ast.CallExpr
	callee *types.Func
}

// funcNode is one module function (or method) in the graph.
type funcNode struct {
	fn    *types.Func
	decl  *ast.FuncDecl
	pkg   *Package
	edges []*edge
	// facts is the function's summary; factOrder keeps deterministic
	// iteration order (sorted on demand).
	facts map[factKey]*fact
	// declIgnore maps analyzer name -> the //simlint:ignore directive
	// sitting on this function's declaration; matching facts do not
	// propagate to callers.
	declIgnore map[string]*directive
}

// enumInfo is one //simlint:enum-marked type and its member constants.
type enumInfo struct {
	obj     *types.TypeName
	members []*types.Const // sorted by constant value, then name
}

// callerRef records one call site into a function, for reverse lookups
// (telemlint's constant-name wrapper rule).
type callerRef struct {
	node *funcNode
	call *ast.CallExpr
}

// Graph is the module-wide call graph with computed summaries.
type Graph struct {
	mod     *Module
	nodes   map[*types.Func]*funcNode
	order   []*funcNode
	callers map[*types.Func][]callerRef
	enums   map[*types.TypeName]*enumInfo
	// telemWrappers is telemlint's forwarded-name index, built lazily by
	// buildTelemWrappers on first use.
	telemWrappers map[*types.Func][]telemWrapper
}

// nodeFor returns the graph node for fn, or nil when fn is not a module
// function with a body.
func (g *Graph) nodeFor(fn *types.Func) *funcNode {
	if g == nil || fn == nil {
		return nil
	}
	return g.nodes[fn]
}

// buildGraph indexes every function declaration in the module, records
// static call edges and direct facts (consulting directives so sanctioned
// origins never enter a summary), then propagates summaries to a fixed
// point.
func buildGraph(m *Module, dirs *directiveIndex) *Graph {
	g := &Graph{
		mod:     m,
		nodes:   map[*types.Func]*funcNode{},
		callers: map[*types.Func][]callerRef{},
		enums:   map[*types.TypeName]*enumInfo{},
	}
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			g.collectEnums(pkg, file)
			imports := pkgImports(file)
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				n := &funcNode{
					fn: obj, decl: fd, pkg: pkg,
					facts:      map[factKey]*fact{},
					declIgnore: map[string]*directive{},
				}
				declPos := m.Fset.Position(fd.Pos())
				for _, dir := range dirs.covering(declPos.Filename, declPos.Line) {
					n.declIgnore[dir.analyzer] = dir
				}
				g.scanBody(n, imports, dirs)
				g.nodes[obj] = n
				g.order = append(g.order, n)
			}
		}
	}
	for _, n := range g.order {
		for _, e := range n.edges {
			if g.nodes[e.callee] != nil {
				g.callers[e.callee] = append(g.callers[e.callee], callerRef{node: n, call: e.call})
			}
		}
	}
	g.propagate()
	return g
}

// scanBody records n's call edges and direct facts. A direct fact whose
// line carries a matching //simlint:ignore is sanctioned at the source
// and never enters the summary (the directive is marked used: it is doing
// interprocedural work even when the intra-procedural finding it also
// covers is what keeps it visibly busy).
func (g *Graph) scanBody(n *funcNode, imports map[string]string, dirs *directiveIndex) {
	pkg := n.pkg
	addFact := func(pos token.Pos, kind FactKind, desc string) {
		p := g.mod.Fset.Position(pos)
		for _, d := range dirs.covering(p.Filename, p.Line) {
			if d.analyzer == kind.analyzerFor() {
				d.used = true
				return
			}
		}
		k := factKey{kind: kind, origin: pos}
		if n.facts[k] == nil {
			n.facts[k] = &fact{key: k, desc: desc}
		}
	}
	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.GoStmt:
			if !goAllowedPkgs[pkg.Path] {
				addFact(node.Pos(), FactGoroutine, "go statement")
			}
		case *ast.CallExpr:
			if callee := calleeFunc(pkg, node); callee != nil {
				n.edges = append(n.edges, &edge{call: node, callee: callee})
			}
			if path, sel, ok := qualifiedSelector(pkg, imports, node.Fun); ok {
				if path == "fmt" && fmtPrinters[sel] {
					addFact(node.Pos(), FactEmit, "fmt."+sel)
				}
			} else if s, ok := node.Fun.(*ast.SelectorExpr); ok && writerMethods[s.Sel.Name] {
				// Writer-shaped emission is a direct fact wherever it
				// happens (telemetry .Emit carries sequence numbers, so
				// emission order is output order even through a ring).
				addFact(node.Pos(), FactEmit, "."+s.Sel.Name+" call")
			}
		case *ast.SelectorExpr:
			path, sel, ok := qualifiedSelector(pkg, imports, node)
			if !ok {
				return true
			}
			switch {
			case path == "time" && wallClockFuncs[sel] && !timeAllowedPkgs[pkg.Path]:
				addFact(node.Pos(), FactWallClock, "time."+sel)
			case path == "math/rand" && globalRandFuncs[sel]:
				addFact(node.Pos(), FactGlobalRand, "rand."+sel)
			case path == "math/rand/v2" && globalRandV2Funcs[sel]:
				addFact(node.Pos(), FactGlobalRand, "rand/v2."+sel)
			}
		}
		return true
	})
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (package function or method), or nil for builtins, function values,
// conversions, and unresolved expressions.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	if pkg.Info == nil {
		return nil
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// visibleFacts returns the callee-summary facts that propagate across
// edge e into a caller, in deterministic order. A fact is blocked when
// the callee's package is allowlisted for the fact's kind (the harness
// may own wall clocks and goroutines outright) or the callee's
// declaration carries a matching //simlint:ignore (marked used: the
// directive is actively suppressing the chain).
func (g *Graph) visibleFacts(e *edge) []*fact {
	callee := g.nodes[e.callee]
	if callee == nil {
		return nil
	}
	var out []*fact
	for _, f := range callee.sortedFacts() {
		switch f.key.kind {
		case FactWallClock:
			if timeAllowedPkgs[callee.pkg.Path] {
				continue
			}
		case FactGoroutine:
			if goAllowedPkgs[callee.pkg.Path] {
				continue
			}
		}
		if d := callee.declIgnore[f.key.kind.analyzerFor()]; d != nil {
			d.used = true
			continue
		}
		out = append(out, f)
	}
	return out
}

// propagate computes summaries bottom-up to a fixed point. Facts are
// added with a witness edge pointing at the callee whose (already
// recorded) entry continues the chain, so chain reconstruction is
// acyclic by construction even through recursive call cycles.
func (g *Graph) propagate() {
	for changed := true; changed; {
		changed = false
		for _, n := range g.order {
			for _, e := range n.edges {
				for _, f := range g.visibleFacts(e) {
					if n.facts[f.key] == nil {
						n.facts[f.key] = &fact{key: f.key, desc: f.desc, via: e}
						changed = true
					}
				}
			}
		}
	}
}

// sortedFacts returns the node's facts ordered by kind then origin.
func (n *funcNode) sortedFacts() []*fact {
	out := make([]*fact, 0, len(n.facts))
	for _, f := range n.facts {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].key.kind != out[j].key.kind {
			return out[i].key.kind < out[j].key.kind
		}
		return out[i].key.origin < out[j].key.origin
	})
	return out
}

// chain renders the offending call chain for a fact reached from node n
// via edge e: "sim.Step -> util.Elapsed -> time.Now". The walk follows
// witness edges, which always point at strictly older summary entries,
// so it terminates even on cyclic call graphs.
func (g *Graph) chain(n *funcNode, e *edge, key factKey) (string, []*types.Func) {
	callee := g.nodes[e.callee]
	if callee == nil {
		return funcDisplayName(n.fn), []*types.Func{n.fn}
	}
	tail, fns := g.chainFrom(callee, key)
	return funcDisplayName(n.fn) + " -> " + tail, append([]*types.Func{n.fn}, fns...)
}

// chainFrom renders the chain starting at n itself down to the fact's
// origin description.
func (g *Graph) chainFrom(n *funcNode, key factKey) (string, []*types.Func) {
	names := []string{funcDisplayName(n.fn)}
	fns := []*types.Func{n.fn}
	f := n.facts[key]
	for f != nil {
		if f.via == nil {
			names = append(names, f.desc)
			break
		}
		callee := g.nodes[f.via.callee]
		if callee == nil {
			break
		}
		names = append(names, funcDisplayName(callee.fn))
		fns = append(fns, callee.fn)
		f = callee.facts[key]
	}
	return strings.Join(names, " -> "), fns
}

// emitFact returns the first output-emission fact of n's summary, or nil
// — also nil (marking the directive used) when n's declaration carries a
// maporder suppression, so a sanctioned emitter does not taint its
// callers' map loops.
func (g *Graph) emitFact(n *funcNode) *fact {
	if d := n.declIgnore[mapOrderName]; d != nil {
		for _, f := range n.sortedFacts() {
			if f.key.kind == FactEmit {
				d.used = true
				return nil
			}
		}
		return nil
	}
	for _, f := range n.sortedFacts() {
		if f.key.kind == FactEmit {
			return f
		}
	}
	return nil
}

// funcDisplayName renders a function as pkg.Name or pkg.(Recv).Method.
func funcDisplayName(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name() + "."
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return pkg + "(" + named.Obj().Name() + ")." + fn.Name()
		}
	}
	return pkg + fn.Name()
}

// collectEnums records //simlint:enum-marked integer types declared in
// file, together with every package-level constant of exactly that type.
// statelint enforces switch exhaustiveness over these.
func (g *Graph) collectEnums(pkg *Package, file *ast.File) {
	if pkg.Info == nil || pkg.Types == nil {
		return
	}
	for _, d := range file.Decls {
		gd, ok := d.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			if !hasEnumMarker(gd.Doc) && !hasEnumMarker(ts.Doc) && !hasEnumMarker(ts.Comment) {
				continue
			}
			tn, _ := pkg.Info.Defs[ts.Name].(*types.TypeName)
			if tn == nil {
				continue
			}
			info := &enumInfo{obj: tn}
			scope := pkg.Types.Scope()
			names := scope.Names() // sorted
			for _, name := range names {
				c, ok := scope.Lookup(name).(*types.Const)
				if ok && types.Identical(c.Type(), tn.Type()) {
					info.members = append(info.members, c)
				}
			}
			sort.SliceStable(info.members, func(i, j int) bool {
				vi, vj := info.members[i].Val().String(), info.members[j].Val().String()
				if len(vi) != len(vj) { // numeric order for decimal ints
					return len(vi) < len(vj)
				}
				return vi < vj
			})
			g.enums[tn] = info
		}
	}
}

// enumMarker is the declaration comment that opts a type into statelint's
// switch-exhaustiveness enforcement.
const enumMarker = "simlint:enum"

func hasEnumMarker(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		text, ok := strings.CutPrefix(c.Text, "//")
		if !ok {
			continue
		}
		if strings.TrimSpace(text) == enumMarker {
			return true
		}
	}
	return false
}

// qualifiedSelector is selectorPackage without a Pass: it reports the
// imported package path and selector name when expr is a qualified
// identifier like time.Now, requiring (when type information exists) that
// the base identifier resolve to a package name.
func qualifiedSelector(pkg *Package, imports map[string]string, expr ast.Expr) (path, sel string, ok bool) {
	s, isSel := expr.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := s.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	path, found := imports[id.Name]
	if !found {
		return "", "", false
	}
	if pkg.Info != nil {
		if obj := pkg.Info.ObjectOf(id); obj != nil {
			if _, isPkg := obj.(*types.PkgName); !isPkg {
				return "", "", false
			}
		}
	}
	return path, s.Sel.Name, true
}
