package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// TelemLint keeps the telemetry schema closed. The golden-snapshot tests
// diff full metric dumps byte-for-byte, which only works when the set of
// metric keys is fixed at compile time and every handle is visible to the
// Registry. Outside the telemetry package itself:
//
//   - telemetry handles (Counter, Gauge, Histogram) and the Registry are
//     never constructed literally — a literal handle is invisible to
//     Snapshot, and a literal Registry has no metrics map and panics on
//     first use; handles come from Sink.Counter/Gauge/Histogram and
//     registries from telemetry.NewRegistry;
//   - the subsystem and name arguments of Counter/Gauge/Histogram calls
//     are compile-time constants (the scope argument is legitimately
//     per-instance: a VF name, an NVMe namespace). One level of
//     forwarding is understood: a helper that passes its own parameter
//     into the name position is checked at each of its call sites
//     instead, so the bumpHealth(name) pattern stays ergonomic without
//     opening the schema.
var TelemLint = &Analyzer{
	Name: "telemlint",
	Doc:  "require Registry-built telemetry handles and compile-time-constant metric names",
	Run:  runTelemLint,
}

// telemHandleTypes are the telemetry types that must not be constructed
// literally outside their package.
var telemHandleTypes = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true, "Registry": true,
}

// telemMetricMethods are the Sink/Registry methods whose subsystem and
// name arguments define the metric schema.
var telemMetricMethods = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}

// telemCheckedArgs are the argument positions of
// Counter/Gauge/Histogram(subsystem, scope, name, ...) that must be
// constant, by human-readable role.
var telemCheckedArgs = []struct {
	index int
	role  string
}{{0, "subsystem"}, {2, "name"}}

// telemetryPackage reports whether path is a telemetry implementation
// package (exempt: it legitimately builds its own handles).
func telemetryPackage(path string) bool {
	return path == "telemetry" || strings.HasSuffix(path, "/telemetry")
}

func runTelemLint(p *Pass) {
	if telemetryPackage(p.Pkg.Path) || p.graph == nil {
		return
	}
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fn, _ := p.Pkg.Info.Defs[fd.Name].(*types.Func)
				p.telemInspect(fd.Body, fn)
				continue
			}
			p.telemInspect(decl, nil) // package-level initialisers
		}
	}
}

// telemInspect walks one region with a known enclosing function (nil at
// package level).
func (p *Pass) telemInspect(root ast.Node, enclosing *types.Func) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			if name := p.telemHandleType(n); name != "" {
				p.reportLiteral(n.Pos(), name)
			}
		case *ast.CallExpr:
			p.checkTelemCall(n, enclosing)
		}
		return true
	})
}

// telemHandleType names the telemetry handle type a composite literal
// builds, or "".
func (p *Pass) telemHandleType(lit *ast.CompositeLit) string {
	t := p.typeOf(lit)
	if t == nil {
		return ""
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !telemetryPackage(obj.Pkg().Path()) || !telemHandleTypes[obj.Name()] {
		return ""
	}
	return obj.Pkg().Name() + "." + obj.Name()
}

func (p *Pass) reportLiteral(pos token.Pos, name string) {
	if strings.HasSuffix(name, ".Registry") {
		p.Reportf(pos, "literal %s has no metrics map and panics on first use; construct it with telemetry.NewRegistry", name)
		return
	}
	p.Reportf(pos, "literal %s is invisible to Snapshot; obtain the handle from the Registry (Sink.Counter/Gauge/Histogram)", name)
}

// checkTelemCall handles the two call-shaped rules: new(telemetry.T), and
// constant subsystem/name arguments (directly or through one forwarding
// level).
func (p *Pass) checkTelemCall(call *ast.CallExpr, enclosing *types.Func) {
	// new(telemetry.Counter) builds a handle just like a literal.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "new" && len(call.Args) == 1 {
		if b, ok := p.objectOf(id).(*types.Builtin); ok && b.Name() == "new" {
			if t := p.typeOf(call.Args[0]); t != nil {
				if named, ok := t.(*types.Named); ok {
					obj := named.Obj()
					if obj.Pkg() != nil && telemetryPackage(obj.Pkg().Path()) && telemHandleTypes[obj.Name()] {
						p.reportLiteral(call.Pos(), obj.Pkg().Name()+"."+obj.Name())
					}
				}
			}
		}
		return
	}

	if fn := p.telemMetricCallee(call); fn != nil {
		for _, pos := range telemCheckedArgs {
			if pos.index >= len(call.Args) {
				continue
			}
			arg := call.Args[pos.index]
			if p.constValue(arg) {
				continue
			}
			if p.paramIndex(enclosing, arg) >= 0 {
				continue // forwarded parameter: checked at the call sites
			}
			p.Reportf(arg.Pos(),
				"telemetry %s (argument of %s.%s) must be a compile-time constant so the snapshot schema stays closed",
				pos.role, "Sink", fn.Name())
		}
		return
	}

	// One forwarding level: a call to a module function that passes one
	// of its parameters into a metric subsystem/name position.
	callee := calleeFunc(p.Pkg, call)
	for _, w := range p.graph.telemWrapperParams(callee) {
		if w.param >= len(call.Args) {
			continue
		}
		arg := call.Args[w.param]
		if p.constValue(arg) {
			continue
		}
		p.Reportf(arg.Pos(),
			"telemetry %s forwarded through %s must be a compile-time constant at the call site (simlint follows one forwarding level)",
			w.role, funcDisplayName(callee))
	}
}

// telemMetricCallee resolves call to a telemetry Counter/Gauge/Histogram
// method (Registry or the Sink interface), or nil.
func (p *Pass) telemMetricCallee(call *ast.CallExpr) *types.Func {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || p.Pkg.Info == nil {
		return nil
	}
	fn, _ := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	if !telemetryPackage(fn.Pkg().Path()) || !telemMetricMethods[fn.Name()] {
		return nil
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return nil
	}
	return fn
}

// paramIndex returns the index of arg within fn's parameters, or -1 when
// arg is not a bare parameter of fn.
func (p *Pass) paramIndex(fn *types.Func, arg ast.Expr) int {
	if fn == nil {
		return -1
	}
	id, ok := ast.Unparen(arg).(*ast.Ident)
	if !ok {
		return -1
	}
	obj := p.objectOf(id)
	if obj == nil {
		return -1
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == obj {
			return i
		}
	}
	return -1
}

// telemWrapper records one forwarded metric-name parameter of a wrapper
// function.
type telemWrapper struct {
	param int
	role  string
}

// telemWrapperParams returns the parameter positions of fn that flow into
// a telemetry subsystem/name argument inside fn's own body. The map over
// the whole module is built once, on first use.
func (g *Graph) telemWrapperParams(fn *types.Func) []telemWrapper {
	if g == nil || fn == nil {
		return nil
	}
	if g.telemWrappers == nil {
		g.buildTelemWrappers()
	}
	return g.telemWrappers[fn]
}

func (g *Graph) buildTelemWrappers() {
	g.telemWrappers = map[*types.Func][]telemWrapper{}
	for _, n := range g.order {
		if telemetryPackage(n.pkg.Path) {
			continue
		}
		pass := &Pass{Fset: g.mod.Fset, Pkg: n.pkg, graph: g}
		node := n
		ast.Inspect(n.decl.Body, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok || pass.telemMetricCallee(call) == nil {
				return true
			}
			for _, pos := range telemCheckedArgs {
				if pos.index >= len(call.Args) {
					continue
				}
				if i := pass.paramIndex(node.fn, call.Args[pos.index]); i >= 0 {
					g.telemWrappers[node.fn] = append(g.telemWrappers[node.fn],
						telemWrapper{param: i, role: pos.role})
				}
			}
			return true
		})
		sort.Slice(g.telemWrappers[n.fn], func(i, j int) bool {
			return g.telemWrappers[n.fn][i].param < g.telemWrappers[n.fn][j].param
		})
	}
}
