module iatsim

go 1.22
