// Package harness mirrors the real harness's allowlisted role: it may
// read the wall clock and spawn goroutines, and neither fact may leak
// into its callers' summaries.
package harness

import "time"

// WallTime is the sanctioned wall-clock read (outside the determinism
// guarantee, like the real harness's per-job timing).
func WallTime() int64 {
	return time.Now().UnixNano()
}

// Spawn is the sanctioned concurrency site.
func Spawn(f func()) {
	go f()
}
