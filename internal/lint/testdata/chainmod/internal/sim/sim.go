// Package sim is the fixture's simulation layer: it commits no direct
// violation — every finding here must be produced by interprocedural
// propagation (or proven absent by allowlisting and suppression).
package sim

import (
	"sort"

	"iatsim/internal/harness"
	"iatsim/internal/util"
)

// Step reaches the wall clock one package away.
func Step() int64 {
	return util.Elapsed() // want detlint
}

// Tick reaches it through a same-package hop first.
func Tick() int64 {
	return localNow() // want detlint
}

func localNow() int64 {
	return util.Elapsed() // want detlint
}

// Roll reaches the global rand stream one package away.
func Roll() int {
	return util.Draw() // want detlint
}

// Par reaches a goroutine spawn through a same-package helper.
func Par() {
	spawn() // want detlint
}

func spawn() {
	go func() {}() // want detlint
}

// Dump iterates a map into an emitting helper: the sink is a call away.
func Dump(m map[string]int) {
	for k, v := range m { // want maporder
		util.EmitRow(k, v)
	}
}

// DumpSorted is the sanctioned collect-then-sort shape feeding the same
// helper.
func DumpSorted(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		util.EmitRow(k, m[k])
	}
}

// UseHarness calls an allowlisted package: the harness owns wall time, so
// the chain is not a finding.
func UseHarness() int64 {
	return harness.WallTime() // ok: allowlisted chain
}

// RunParallel delegates concurrency to the harness: also not a finding.
func RunParallel(f func()) {
	harness.Spawn(f) // ok: allowlisted chain
}

// UseBlessed calls the declaration-suppressed wrapper: the chain is cut
// at the directive.
func UseBlessed() int64 {
	return util.BlessedNow() // ok: decl-level directive on the callee
}

// UseSanctioned calls the helper whose origin is line-suppressed: no fact
// exists to propagate.
func UseSanctioned() int64 {
	return util.SanctionedNow() // ok: sanctioned origin
}

// Overhead measures wall time around a step: the declaration-level
// directive on the caller itself sanctions every chain leaving this body
// (the Fig. 15 overhead-measurement pattern).
//
//simlint:ignore detlint fixture: caller-side declaration suppression covers its chains
func Overhead() int64 {
	return util.Elapsed() // ok: own declaration carries the directive
}

// Describe switches non-exhaustively over a cross-package enum.
func Describe(m util.Mode) string {
	switch m { // want statelint
	case util.ModeRaw:
		return "raw"
	}
	return ""
}
