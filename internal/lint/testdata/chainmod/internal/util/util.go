// Package util holds the helpers whose violations the interprocedural
// pass must carry into internal/sim: direct wall-clock and global-rand
// leaks, an emitting helper, a declaration-suppressed wrapper, and a
// sanctioned origin that must never enter a summary.
package util

import (
	"fmt"
	"math/rand"
	"time"
)

// Mode selects the fixture's emission mode (a cross-package enum for
// statelint).
//
//simlint:enum
type Mode int

// Modes.
const (
	ModeRaw Mode = iota
	ModeCooked
)

// Elapsed leaks the wall clock; callers inherit the fact.
func Elapsed() int64 {
	return time.Now().UnixNano() // want detlint
}

// Draw leaks the global rand stream; callers inherit the fact.
func Draw() int {
	return rand.Intn(6) // want detlint
}

// EmitRow emits ordered output; map loops calling it are order-sensitive.
func EmitRow(k string, v int) {
	fmt.Printf("%s,%d\n", k, v)
}

// BlessedNow reads the wall clock, and the declaration-level directive
// keeps the fact from propagating to callers — but the direct finding
// inside the body stays live.
//
//simlint:ignore detlint fixture: declaration-level suppression blocks the chain, not the origin
func BlessedNow() int64 {
	return time.Now().UnixNano() // want detlint
}

// SanctionedNow reads the wall clock at a line-suppressed origin: the
// fact never enters any summary, so neither this body nor any caller is
// flagged.
func SanctionedNow() int64 {
	//simlint:ignore detlint fixture: sanctioned origin stays out of summaries
	return time.Now().UnixNano()
}
