// Package detbad seeds one violation of every detlint rule, plus the
// sanctioned seeded-rand idiom that must stay clean. The fixture tests
// load it under an internal/ import path (in scope), a cmd/ path (out of
// scope), and the harness path (time/go allowlisted).
package detbad

import (
	"math/rand"
	mrand "math/rand"
	"time"
)

func When() time.Time { return time.Now() } // want detlint

func Age(t time.Time) time.Duration { return time.Since(t) } // want detlint

func Roll() int { return rand.Intn(6) } // want detlint

func Jitter() float64 { return mrand.Float64() } // want detlint

func Spawn(done chan struct{}) {
	go func() { close(done) }() // want detlint
}

// Seeded is the sanctioned construction: a deterministic, seeded stream.
func Seeded(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Tick uses time only for duration arithmetic, which detlint allows.
func Tick() time.Duration { return 3 * time.Second }
