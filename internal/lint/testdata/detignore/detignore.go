// Package detignore exercises the //simlint:ignore directive machinery:
// valid suppressions (trailing and line-above), a reason-less directive
// that must not suppress, an unused directive, and an unknown analyzer.
package detignore

import "time"

// Trailing suppresses the finding on its own line.
func Trailing() time.Time {
	return time.Now() //simlint:ignore detlint fixture: wall clock sanctioned here for the test
}

// Above suppresses the finding on the next line.
func Above() time.Time {
	//simlint:ignore detlint fixture: suppression placed on the line above
	return time.Now()
}

// MissingReason stays an active finding: a reason-less directive is
// itself reported and suppresses nothing.
func MissingReason() time.Time {
	return time.Now() //simlint:ignore detlint
}

//simlint:ignore detlint this directive matches no finding and must be reported as unused

//simlint:ignore nosuch unknown analyzers are malformed directives
var placeholder = 1
