// Package detok is a simulation-shaped package that obeys every detlint
// rule: simulated time as plain floats, seeded RNG streams, duration
// types without wall-clock reads, and no goroutines.
package detok

import (
	"math/rand"
	"time"
)

// Clock is simulated time in nanoseconds, advanced by the caller.
type Clock struct{ NowNS float64 }

// Advance moves simulated time forward.
func (c *Clock) Advance(ns float64) { c.NowNS += ns }

// Draw samples from a seeded stream.
func Draw(rng *rand.Rand) float64 { return rng.Float64() }

// NewStream builds the stream from an explicit seed.
func NewStream(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Interval is duration arithmetic only: no wall-clock read.
const Interval = 250 * time.Millisecond
