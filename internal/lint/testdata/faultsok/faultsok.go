// Package faultsok mirrors the internal/faults injector shape: a private
// splitmix64 stream derived from an explicit seed, Bernoulli draws against
// configured rates, and injection decisions keyed on simulated state only.
// It must stay detlint-clean — fault schedules are part of the determinism
// guarantee, so no wall clock, no global rand, no goroutines.
package faultsok

// Injector draws fault decisions from its own seeded stream.
type Injector struct {
	state uint64
	rate  float64
	count uint64
}

// NewInjector derives the stream from an explicit seed, exactly like the
// real injector: schedules are a pure function of (profile, seed).
func NewInjector(rate float64, seed int64) *Injector {
	return &Injector{state: uint64(seed), rate: rate}
}

// next advances the splitmix64 stream.
func (in *Injector) next() uint64 {
	in.state += 0x9E3779B97F4A7C15
	z := in.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Decide is one Bernoulli draw against the configured rate. A zero rate
// consumes no stream state, so inactive fault kinds do not perturb the
// schedule of active ones.
func (in *Injector) Decide() bool {
	if in.rate <= 0 {
		return false
	}
	if float64(in.next()>>11)/(1<<53) >= in.rate {
		return false
	}
	in.count++
	return true
}

// Count reports injections so far.
func (in *Injector) Count() uint64 { return in.count }
