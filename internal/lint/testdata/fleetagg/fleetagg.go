// Package fleetagg seeds the violations the fleet simulator must never
// grow: wall-clock reads and raw goroutines in the stepping path (the
// fleet delegates all parallelism to internal/harness) and unsorted map
// iteration feeding the aggregate output. The fixture tests load it
// under the iatsim/internal/fleet import path to prove the package sits
// inside detlint's and maporder's enforcement scope — the fleet's
// byte-identical-at-any-jobs contract depends on both.
package fleetagg

import (
	"fmt"
	"sort"
	"time"
)

// RoundStamp stamps a round row with host wall-clock time instead of the
// platform clock.
func RoundStamp() int64 {
	return time.Now().UnixNano() // want detlint
}

// StepHosts steps hosts on raw goroutines instead of the harness pool,
// losing the submission-order result contract.
func StepHosts(hosts []func()) {
	for _, h := range hosts {
		go h() // want detlint
	}
}

// EmitByHost prints per-host observations in map iteration order.
func EmitByHost(obs map[int]float64) {
	for id, ipc := range obs { // want maporder
		fmt.Printf("host-%03d %g\n", id, ipc)
	}
}

// EmitSorted is the sanctioned shape: collect IDs, sort, then emit.
func EmitSorted(obs map[int]float64) {
	ids := make([]int, 0, len(obs))
	for id := range obs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Printf("host-%03d %g\n", id, obs[id])
	}
}
