// Package mapbad seeds maporder violations: map iteration feeding each
// recognised sink class without sorting.
package mapbad

import "fmt"

// Print emits rows in map order.
func Print(m map[string]int) {
	for k, v := range m { // want maporder
		fmt.Printf("%s=%d\n", k, v)
	}
}

// Collect lets a map-ordered slice escape without ever sorting it.
func Collect(m map[string]int) []string {
	var out []string
	for k := range m { // want maporder
		out = append(out, k)
	}
	return out
}

type record struct{ last string }

// Fields writes a field visible outside the loop, last-writer-wins in
// map order.
func Fields(m map[string]int, r *record) {
	for k := range m { // want maporder
		r.last = k
	}
}

// Rows hands map-ordered rows to a csv.Writer-shaped sink.
func Rows(m map[string]int, w interface{ Write([]string) error }) {
	for k := range m { // want maporder
		_ = w.Write([]string{k})
	}
}

// Elements writes slice elements in map order.
func Elements(m map[int]string, out []string) {
	i := 0
	for _, v := range m { // want maporder
		out[i] = v
		i++
	}
}
