// Package mapok holds the map-iteration shapes maporder must accept:
// collect-then-sort, order-free aggregation, map-to-map rebuilds, and
// ordinary slice loops.
package mapok

import (
	"fmt"
	"sort"
)

// Sorted is the canonical idiom: collect keys, sort, then emit.
func Sorted(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("%s=%d\n", k, m[k])
	}
}

// SortedSlice uses sort.Slice on the collected keys.
func SortedSlice(m map[int]float64) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Sum aggregates order-free into a local.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Invert writes map entries — ordering cannot be observed.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Slices iterates a slice; no map order involved.
func Slices(xs []string) {
	for _, x := range xs {
		fmt.Println(x)
	}
}
