// Package mapsnap models the telemetry snapshot/export shapes maporder
// must distinguish: a registry keeps metrics in a map, and every path
// that turns that map into ordered output (snapshot rows, CSV, emitted
// events) must sort the keys first. The clean functions mirror
// telemetry.Registry.Snapshot; the flagged ones are the shortcuts the
// analyzer exists to reject.
package mapsnap

import (
	"fmt"
	"io"
	"sort"
)

type key struct {
	Subsystem string
	Name      string
}

type registry struct {
	metrics map[key]uint64
}

type event struct {
	Name  string
	Value uint64
}

type sink interface {
	Emit(ev event)
}

// Snapshot is the canonical export idiom: collect keys, sort, then build
// the row slice in sorted order.
func (r *registry) Snapshot() []event {
	keys := make([]key, 0, len(r.metrics))
	for k := range r.metrics {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Subsystem != keys[j].Subsystem {
			return keys[i].Subsystem < keys[j].Subsystem
		}
		return keys[i].Name < keys[j].Name
	})
	out := make([]event, 0, len(keys))
	for _, k := range keys {
		out = append(out, event{Name: k.Subsystem + "/" + k.Name, Value: r.metrics[k]})
	}
	return out
}

// DumpUnsorted writes rows straight out of map iteration: different
// order every run.
func (r *registry) DumpUnsorted(w io.Writer) {
	for k, v := range r.metrics { // want maporder
		fmt.Fprintf(w, "%s/%s,%d\n", k.Subsystem, k.Name, v)
	}
}

// RowsUnsorted lets the map-ordered row slice escape without a sort.
func (r *registry) RowsUnsorted() []event {
	var out []event
	for k, v := range r.metrics { // want maporder
		out = append(out, event{Name: k.Name, Value: v})
	}
	return out
}

// EmitUnsorted pushes one event per metric in map order; events carry
// sequence numbers, so this bakes map order into the output.
func (r *registry) EmitUnsorted(s sink) {
	for k, v := range r.metrics { // want maporder
		s.Emit(event{Name: k.Name, Value: v})
	}
}

// EmitSorted is the compliant version of the same loop.
func (r *registry) EmitSorted(s sink) {
	keys := make([]key, 0, len(r.metrics))
	for k := range r.metrics {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Name < keys[j].Name })
	for _, k := range keys {
		s.Emit(event{Name: k.Name, Value: r.metrics[k]})
	}
}
