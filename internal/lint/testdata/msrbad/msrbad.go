// Package msrbad spells raw MSR addresses that must flow through the
// internal/msr constants instead.
package msrbad

const (
	catMask = 0x0C90 // want msrlint
	iioWays = 0xC8B  // want msrlint
	mba     = 0x0D50 // want msrlint
)

// PQRAddr rebuilds the flattened per-core association address by hand.
func PQRAddr(core int) uint32 {
	return 0x0C8F_0000 + uint32(core) // want msrlint
}

// CHAAddr pokes the synthetic uncore counter block directly.
func CHAAddr(slice int) uint32 {
	return 0xF100_0000 + uint32(slice)*16 // want msrlint
}
