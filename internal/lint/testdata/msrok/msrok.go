// Package msrok holds integer literals msrlint must leave alone: hex
// values outside every MSR window, and decimal spellings (the analyzer
// matches hex only, so ordinary scalar constants never trip it).
package msrok

const (
	wayMask   = 0x7FF              // an 11-way CAT bitmask value, not an address
	pageSize  = 0x1000             // below every window
	decimal   = 3216               // 0xC90 in decimal: deliberately unmatched
	mixerA    = 0x9E3779B97F4A7C15 // splitmix64 constant, far above the windows
	ringDepth = 1024
)
