// Package multiignore stacks two directives — leading and trailing — on
// one finding: both must count as used, and the finding is suppressed
// exactly once.
package multiignore

import "time"

// Both carries a doubly-suppressed wall-clock read.
func Both() int64 {
	//simlint:ignore detlint leading directive, stacked with the trailing one
	return time.Now().UnixNano() //simlint:ignore detlint trailing directive, stacked with the leading one
}
