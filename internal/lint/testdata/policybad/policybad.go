// Package policybad mirrors the policy engine's Kind enum and forgets a
// member in a dispatch switch — the silently-unroutable-policy bug
// statelint exists to catch. The fixture tests load it under the
// iatsim/internal/policy import path to prove the policy package sits
// inside statelint's enforcement scope.
package policybad

// Kind enumerates the allocation policy engines, like the real one.
//
//simlint:enum
type Kind int

// Kinds.
const (
	KindIAT Kind = iota
	KindStatic
	KindIOCA
	KindGreedy
)

// Dispatch forgets KindGreedy, so a greedy spec would silently fall
// through to the zero value.
func Dispatch(k Kind) string {
	switch k { // want statelint
	case KindIAT:
		return "iat"
	case KindStatic:
		return "static"
	case KindIOCA:
		return "ioca"
	}
	return ""
}
