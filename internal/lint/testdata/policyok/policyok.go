// Package policyok covers the policy-engine switch shapes statelint must
// stay silent on: the exhaustive Kind dispatch and the defaulted
// String() with its out-of-range fallback — the exact shapes
// internal/policy ships.
package policyok

import "fmt"

// Kind enumerates the allocation policy engines, like the real one.
//
//simlint:enum
type Kind int

// Kinds.
const (
	KindIAT Kind = iota
	KindStatic
	KindIOCA
	KindGreedy
)

// New dispatches exhaustively: every kind has a constructor arm.
func New(k Kind) string {
	switch k {
	case KindIAT:
		return "new-iat"
	case KindStatic:
		return "new-static"
	case KindIOCA:
		return "new-ioca"
	case KindGreedy:
		return "new-greedy"
	}
	return ""
}

// String uses the defaulted shape with the out-of-range fallback.
func (k Kind) String() string {
	switch k {
	case KindIAT:
		return "iat"
	case KindStatic:
		return "static"
	case KindIOCA:
		return "ioca"
	case KindGreedy:
		return "greedy"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}
