// Package seedbad seeds every violation of the seeding contract: a
// shared package-level stream, constant seeds to stdlib constructors,
// and a constant seed to a module-style seed parameter.
package seedbad

import "math/rand"

// sharedStream couples draw order across every caller.
var sharedStream *rand.Rand // want seedflow

// sharedSource is the same leak one type earlier.
var sharedSource rand.Source // want seedflow

// NewGen hard-codes the stdlib seed.
func NewGen() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want seedflow
}

// Start hard-codes a module-style seed parameter.
func Start() {
	startRun(7) // want seedflow
}

func startRun(runSeed int64) {
	_ = runSeed
}
