// Package seedok shows the sanctioned seeding shapes: per-instance
// streams seeded from parameters and id-derived offsets. None of it may
// be flagged.
package seedok

import "math/rand"

// Gen owns its stream as instance state.
type Gen struct {
	rng *rand.Rand
}

// New threads the seed in as a parameter.
func New(seed int64) *Gen {
	return &Gen{rng: rand.New(rand.NewSource(seed))}
}

// NewOffset derives a per-id seed from the run seed — the fleet's
// per-host pattern. The splitmix constant is an operand, not a seed.
func NewOffset(base int64, id int) *Gen {
	return New(base + int64(id)*0x9E3779B9)
}

// Mix uses a constant in a non-seed position.
func Mix(v uint64) uint64 {
	return v * 0x9E3779B97F4A7C15
}
