// Package statebad switches non-exhaustively over a marked enum without
// a default: the silently-ignored-transition bug statelint exists for.
package statebad

// Phase is the fixture FSM.
//
//simlint:enum
type Phase int

// Phases.
const (
	Idle Phase = iota
	Running
	Draining
	Stopped
)

// Describe forgets Stopped.
func Describe(p Phase) string {
	switch p { // want statelint
	case Idle:
		return "idle"
	case Running:
		return "running"
	case Draining:
		return "draining"
	}
	return "?"
}
