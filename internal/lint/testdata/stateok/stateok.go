// Package stateok covers every shape statelint must stay silent on:
// exhaustive switches, explicit defaults, unresolvable cases, unmarked
// types, and the typed-sentinel exclusion.
package stateok

// Phase is the fixture FSM.
//
//simlint:enum
type Phase int

// Phases. NumPhases is untyped-int-typed on purpose: sentinels do not
// count as members.
const (
	Idle Phase = iota
	Running
	Stopped

	NumPhases int = 3
)

// Exhaustive lists every member.
func Exhaustive(p Phase) string {
	switch p {
	case Idle:
		return "idle"
	case Running:
		return "running"
	case Stopped:
		return "stopped"
	}
	return "?"
}

// Defaulted handles the rest explicitly.
func Defaulted(p Phase) string {
	switch p {
	case Idle:
		return "idle"
	default:
		return "other"
	}
}

// Unresolvable has a case statelint cannot prove constant, so it cannot
// claim non-exhaustiveness.
func Unresolvable(p, q Phase) bool {
	switch p {
	case q:
		return true
	}
	return false
}

// Unmarked switches over a plain int type that never opted in.
type level int

// Loud is a level.
const Loud level = 1

// Unmarked is out of scope without the marker.
func Unmarked(l level) bool {
	switch l {
	case Loud:
		return true
	}
	return false
}
