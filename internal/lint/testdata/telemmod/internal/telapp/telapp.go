// Package telapp consumes the mini telemetry registry both correctly
// (registry-built handles, constant names, dynamic scope, the one-level
// name-forwarding wrapper) and incorrectly (literal handles, dynamic
// names, non-constant wrapper arguments).
package telapp

import "iatsim/internal/telemetry"

const hitsName = "hits"

// Stats shows the sanctioned shape: constant subsystem and name, with a
// legitimately dynamic per-instance scope.
type Stats struct {
	Hits *telemetry.Counter
}

// Attach builds handles through the registry.
func Attach(r *telemetry.Registry, scope string) *Stats {
	return &Stats{
		Hits: r.Counter("app", scope, hitsName), // ok: constant subsystem+name
	}
}

// AttachDynamic computes the metric name at run time.
func AttachDynamic(r *telemetry.Registry, metric string) *telemetry.Counter {
	return r.Counter("app", "", metric+"_total") // want telemlint
}

// AttachViaSink proves the rule follows the interface, not just the
// concrete type.
func AttachViaSink(s telemetry.Sink, metric string) *telemetry.Gauge {
	return s.Gauge("app", "", metric+"_gauge") // want telemlint
}

// bump forwards its parameter into the name position: legal here, the
// obligation moves to every call site.
func bump(r *telemetry.Registry, name string) {
	r.Counter("app", "", name).Inc() // ok: forwarded parameter
}

// Good satisfies the moved obligation with a constant.
func Good(r *telemetry.Registry) {
	bump(r, "requests") // ok: constant at the wrapper call site
}

// Bad forwards a second level: simlint follows exactly one.
func Bad(r *telemetry.Registry, which string) {
	bump(r, which) // want telemlint
}

// Literal builds a handle the snapshot will never see.
func Literal() *telemetry.Counter {
	return &telemetry.Counter{} // want telemlint
}

// NewHandle does the same through the new builtin.
func NewHandle() *telemetry.Gauge {
	return new(telemetry.Gauge) // want telemlint
}

// Build constructs a registry without its map.
func Build() *telemetry.Registry {
	return &telemetry.Registry{} // want telemlint
}
