// Package telemetry is a miniature of the real registry: just enough
// surface for telemlint — handle types, a Registry with the three
// metric constructors, and a Sink interface. The package itself is
// exempt from telemlint (it legitimately builds its own handles).
package telemetry

// Counter is a monotonic metric handle.
type Counter struct{ v uint64 }

// Inc bumps the counter (nil-safe, like the real handle).
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Gauge is a point-in-time metric handle.
type Gauge struct{ v float64 }

// Set stores v (nil-safe).
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Histogram is a distribution metric handle.
type Histogram struct{ n uint64 }

// Observe records one sample (nil-safe).
func (h *Histogram) Observe(float64) {
	if h != nil {
		h.n++
	}
}

// Sink is the instrumented components' view of the registry.
type Sink interface {
	Counter(subsystem, scope, name string) *Counter
	Gauge(subsystem, scope, name string) *Gauge
	Histogram(subsystem, scope, name string, bounds []float64) *Histogram
}

// Registry is the concrete Sink.
type Registry struct {
	counters map[string]*Counter
}

// NewRegistry is the sanctioned constructor.
func NewRegistry() *Registry {
	return &Registry{counters: map[string]*Counter{}}
}

// Counter implements Sink.
func (r *Registry) Counter(subsystem, scope, name string) *Counter {
	if r == nil {
		return nil
	}
	k := subsystem + "/" + scope + "/" + name
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge implements Sink.
func (r *Registry) Gauge(subsystem, scope, name string) *Gauge {
	if r == nil {
		return nil
	}
	return &Gauge{}
}

// Histogram implements Sink.
func (r *Registry) Histogram(subsystem, scope, name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	return &Histogram{}
}
