// Package mem models the DRAM subsystem of the simulated server: a memory
// controller with a fixed service latency, a finite channel bandwidth, and a
// utilisation-dependent queueing delay.
//
// The model is deliberately simple — the paper's phenomena are last-level
// cache effects, and memory matters only as (a) the latency penalty an LLC
// miss pays and (b) the bandwidth consumed by DDIO write-allocate evictions
// and demand misses (Fig. 8c of the paper reports exactly this number).
package mem

import (
	"fmt"

	"iatsim/internal/telemetry"
)

// Config describes the memory subsystem. XeonGold6140 in package sim supplies
// the values for the paper's testbed (six DDR4-2666 channels).
type Config struct {
	// BaseLatencyNS is the unloaded read latency in nanoseconds.
	BaseLatencyNS float64
	// WriteLatencyNS is the unloaded write latency (posted writes are
	// cheaper than reads on the critical path).
	WriteLatencyNS float64
	// BandwidthGBps is the aggregate channel bandwidth in GB/s.
	BandwidthGBps float64
	// MaxUtil caps the utilisation used by the queueing model so latency
	// stays finite when an epoch oversubscribes the channels.
	MaxUtil float64
}

// DefaultConfig returns a six-channel DDR4-2666 configuration matching
// Table I of the paper (6 x 21.3 GB/s ~ 128 GB/s, ~90ns loaded-miss latency).
func DefaultConfig() Config {
	return Config{
		BaseLatencyNS:  90,
		WriteLatencyNS: 60,
		BandwidthGBps:  128,
		MaxUtil:        0.95,
	}
}

// Stats is a snapshot of the controller's cumulative traffic counters.
type Stats struct {
	BytesRead    uint64 // total bytes read from DRAM
	BytesWritten uint64 // total bytes written to DRAM
	Reads        uint64 // read transactions
	Writes       uint64 // write transactions
}

// Total returns read plus write bytes.
func (s Stats) Total() uint64 { return s.BytesRead + s.BytesWritten }

// Sub returns the delta s - o, counter by counter.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		BytesRead:    s.BytesRead - o.BytesRead,
		BytesWritten: s.BytesWritten - o.BytesWritten,
		Reads:        s.Reads - o.Reads,
		Writes:       s.Writes - o.Writes,
	}
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("mem{rd=%dB wr=%dB}", s.BytesRead, s.BytesWritten)
}

// Controller is the memory controller model. It is not safe for concurrent
// use; the simulation engine drives it from a single goroutine.
type Controller struct {
	cfg   Config
	stats Stats

	// epoch window for the utilisation estimate
	epochBytes float64
	epochCapB  float64 // bytes the channels can move in the current epoch

	telReadLat  *telemetry.Histogram // nil when uninstrumented
	telWriteLat *telemetry.Histogram
}

// latencyBounds buckets the controller's returned latencies. The model
// yields BaseLatencyNS..~(1+MaxUtil-queue)x multiples, so the edges span
// the unloaded latency up to deep saturation.
var latencyBounds = []float64{60, 90, 120, 180, 240, 360, 480, 720, 960}

// AttachTelemetry resolves the request-latency histograms from s
// (nil-safe).
func (c *Controller) AttachTelemetry(s telemetry.Sink) {
	if s == nil {
		return
	}
	c.telReadLat = s.Histogram("mem", "", "read_latency_ns", latencyBounds)
	c.telWriteLat = s.Histogram("mem", "", "write_latency_ns", latencyBounds)
}

// NewController builds a controller from cfg, filling zero fields with
// defaults.
func NewController(cfg Config) *Controller {
	def := DefaultConfig()
	if cfg.BaseLatencyNS == 0 {
		cfg.BaseLatencyNS = def.BaseLatencyNS
	}
	if cfg.WriteLatencyNS == 0 {
		cfg.WriteLatencyNS = def.WriteLatencyNS
	}
	if cfg.BandwidthGBps == 0 {
		cfg.BandwidthGBps = def.BandwidthGBps
	}
	if cfg.MaxUtil == 0 {
		cfg.MaxUtil = def.MaxUtil
	}
	return &Controller{cfg: cfg}
}

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// BeginEpoch resets the utilisation window. durNS is the simulated length of
// the upcoming epoch; the bandwidth cap for the window is derived from it.
func (c *Controller) BeginEpoch(durNS float64) {
	c.epochBytes = 0
	c.epochCapB = c.cfg.BandwidthGBps * durNS // GB/s * ns == bytes
}

// Utilisation returns the fraction of the current epoch's bandwidth already
// consumed, clamped to [0, MaxUtil].
func (c *Controller) Utilisation() float64 {
	if c.epochCapB <= 0 {
		return 0
	}
	u := c.epochBytes / c.epochCapB
	if u > c.cfg.MaxUtil {
		u = c.cfg.MaxUtil
	}
	return u
}

// queue returns the queueing-delay multiplier for the current utilisation:
// an M/D/1-flavoured u/(2(1-u)) term that is ~0 when idle and grows steeply
// as the channels saturate.
func (c *Controller) queue() float64 {
	u := c.Utilisation()
	return u / (2 * (1 - u))
}

// Read records a DRAM read of n bytes and returns its latency in
// nanoseconds.
func (c *Controller) Read(n int) float64 {
	c.stats.BytesRead += uint64(n)
	c.stats.Reads++
	c.epochBytes += float64(n)
	lat := c.cfg.BaseLatencyNS * (1 + c.queue())
	c.telReadLat.Observe(lat)
	return lat
}

// Write records a DRAM write of n bytes and returns its latency in
// nanoseconds. Writes are posted: callers on the eviction path typically
// ignore the returned latency.
func (c *Controller) Write(n int) float64 {
	c.stats.BytesWritten += uint64(n)
	c.stats.Writes++
	c.epochBytes += float64(n)
	lat := c.cfg.WriteLatencyNS * (1 + c.queue())
	c.telWriteLat.Observe(lat)
	return lat
}

// Stats returns a snapshot of the cumulative counters.
func (c *Controller) Stats() Stats { return c.stats }
