package mem

import (
	"testing"
	"testing/quick"
)

func TestDefaultsFilled(t *testing.T) {
	c := NewController(Config{})
	cfg := c.Config()
	if cfg.BaseLatencyNS == 0 || cfg.BandwidthGBps == 0 || cfg.MaxUtil == 0 || cfg.WriteLatencyNS == 0 {
		t.Fatalf("defaults not filled: %+v", cfg)
	}
}

func TestCountersAdvance(t *testing.T) {
	c := NewController(Config{})
	c.BeginEpoch(1e6)
	c.Read(64)
	c.Read(64)
	c.Write(64)
	s := c.Stats()
	if s.BytesRead != 128 || s.BytesWritten != 64 || s.Reads != 2 || s.Writes != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Total() != 192 {
		t.Fatalf("total = %d", s.Total())
	}
}

func TestStatsSub(t *testing.T) {
	a := Stats{BytesRead: 100, BytesWritten: 40, Reads: 3, Writes: 2}
	b := Stats{BytesRead: 60, BytesWritten: 10, Reads: 1, Writes: 1}
	d := a.Sub(b)
	if d.BytesRead != 40 || d.BytesWritten != 30 || d.Reads != 2 || d.Writes != 1 {
		t.Fatalf("delta = %+v", d)
	}
}

func TestUnloadedLatency(t *testing.T) {
	c := NewController(Config{BaseLatencyNS: 90, BandwidthGBps: 128})
	c.BeginEpoch(1e9)
	if lat := c.Read(64); lat < 90 || lat > 95 {
		t.Fatalf("unloaded read latency = %.1f", lat)
	}
}

func TestLatencyGrowsWithUtilisation(t *testing.T) {
	c := NewController(Config{BaseLatencyNS: 90, BandwidthGBps: 1}) // tiny bandwidth
	c.BeginEpoch(1e6)                                               // cap = 1e6 bytes
	first := c.Read(64)
	// Consume most of the epoch's bandwidth.
	for i := 0; i < 14000; i++ {
		c.Read(64)
	}
	last := c.Read(64)
	if last <= first {
		t.Fatalf("latency did not grow with utilisation: %.1f -> %.1f", first, last)
	}
}

func TestUtilisationClamped(t *testing.T) {
	c := NewController(Config{BandwidthGBps: 1, MaxUtil: 0.9})
	c.BeginEpoch(100) // 100 bytes cap
	for i := 0; i < 100; i++ {
		c.Write(64)
	}
	if u := c.Utilisation(); u > 0.9 {
		t.Fatalf("utilisation %.2f above clamp", u)
	}
}

func TestBeginEpochResetsWindow(t *testing.T) {
	c := NewController(Config{BandwidthGBps: 1})
	c.BeginEpoch(1e3)
	for i := 0; i < 100; i++ {
		c.Read(64)
	}
	high := c.Utilisation()
	c.BeginEpoch(1e3)
	if c.Utilisation() >= high {
		t.Fatal("BeginEpoch did not reset utilisation")
	}
}

// Property: latency is finite and at least the base latency for any
// utilisation.
func TestLatencyBoundsProperty(t *testing.T) {
	f := func(reads uint16) bool {
		c := NewController(Config{BaseLatencyNS: 90})
		c.BeginEpoch(1e6)
		var lat float64
		for i := 0; i < int(reads%2000); i++ {
			lat = c.Read(64)
			if lat < 90 || lat > 90*100 {
				return false
			}
		}
		_ = lat
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
