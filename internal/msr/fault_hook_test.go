package msr

import (
	"errors"
	"testing"
)

// scriptedHook is a deterministic FaultHook for exercising the register
// file's interception seams: it rejects writes to one address, forces one
// old bit to stick on writes elsewhere, and offsets served read values.
type scriptedHook struct {
	rejectAddr uint32
	stickMask  uint64
	readDelta  uint64
}

var errInjected = errors.New("injected wrmsr failure")

func (h *scriptedHook) FilterWrite(addr uint32, old, v uint64) (uint64, error) {
	if addr == h.rejectAddr {
		return old, errInjected
	}
	return v | (old & h.stickMask), nil
}

func (h *scriptedHook) FilterRead(addr uint32, v uint64) uint64 {
	return v + h.readDelta
}

func TestFaultHookWritePath(t *testing.T) {
	f := NewFile()
	a, b := L3MaskAddr(1), L3MaskAddr(2)
	if err := f.Write(a, 0x7F); err != nil {
		t.Fatal(err)
	}
	if err := f.Write(b, 0x70); err != nil {
		t.Fatal(err)
	}
	f.SetFaultHook(&scriptedHook{rejectAddr: a, stickMask: 0x40})

	// Rejected write surfaces the error and leaves the register untouched.
	if err := f.Write(a, 0x0F); !errors.Is(err, errInjected) {
		t.Fatalf("rejected write returned %v", err)
	}
	if v := f.Peek(a); v != 0x7F {
		t.Fatalf("register changed by a rejected write: %#x", v)
	}

	// A sticky write stores the new value plus the stuck old bit.
	if err := f.Write(b, 0x07); err != nil {
		t.Fatal(err)
	}
	if v := f.Peek(b); v != 0x47 {
		t.Fatalf("sticky write stored %#x, want 0x47", v)
	}

	// Both attempts were counted: injected failures still cost a wrmsr.
	if ops := f.Ops(); ops.Writes != 4 {
		t.Fatalf("write ops = %d, want 4", ops.Writes)
	}
}

func TestFaultHookReadPathAndPeekBypass(t *testing.T) {
	f := NewFile()
	a := CoreCounterAddr(0, EvCycles)
	f.MapRead(a, func() uint64 { return 1000 })
	f.SetFaultHook(&scriptedHook{readDelta: 23})

	if v := f.Read(a); v != 1023 {
		t.Fatalf("hooked read served %d, want 1023", v)
	}
	// Peek is the datapath/diagnostic view: never perturbed.
	if v := f.Peek(a); v != 1000 {
		t.Fatalf("Peek perturbed by fault hook: %d", v)
	}

	f.SetFaultHook(nil)
	if v := f.Read(a); v != 1000 {
		t.Fatalf("read after removing hook served %d", v)
	}
}
