// Package msr emulates the model-specific-register interface the paper's
// daemon uses to talk to the hardware: the CAT capacity bitmask registers
// (IA32_L3_QOS_MASK_n), the per-core class-of-service association register
// (IA32_PQR_ASSOC), the Skylake-SP DDIO way register (IIO_LLC_WAYS), and
// memory-mapped uncore performance counters.
//
// Reads of counter registers are routed to handler callbacks registered by
// the platform, so the register file stays a pure register file while the
// counters live where the events happen (LLC slices, cores). The file also
// counts read/write operations: the paper's Fig. 15 shows that the daemon's
// cost is dominated by MSR accesses (each a ring-0 context switch on real
// hardware), so the counted operations drive our overhead model.
package msr

import (
	"fmt"
	"sync"
)

// Register addresses. The numeric values follow the real Intel layout where
// one exists; synthetic counters use a private 0xF000+ range.
const (
	// IA32PQRAssocBase + core is the per-core CLOS association register.
	// (Real hardware exposes one IA32_PQR_ASSOC per logical processor
	// selected by CPU affinity; we flatten that into an address range.)
	IA32PQRAssocBase uint32 = 0x0C8F_0000

	// IA32L3MaskBase + clos is the CAT capacity bitmask for a CLOS
	// (IA32_L3_QOS_MASK_n, real base 0xC90).
	IA32L3MaskBase uint32 = 0x0000_0C90

	// IIOLLCWays is the DDIO way-mask register (undocumented MSR 0xC8B on
	// Skylake-SP, the register the paper's enhanced pqos writes).
	IIOLLCWays uint32 = 0x0000_0C8B

	// IA32MBAThrtlBase + clos is the Memory Bandwidth Allocation
	// throttle register of a CLOS (IA32_L2_QoS_Ext_BW_Thrtl_n, real
	// base 0xD50). The paper's Sec. VI-C points to MBA as the remedy
	// for the residual memory-bandwidth interference IAT does not
	// address.
	IA32MBAThrtlBase uint32 = 0x0000_0D50

	// PerfCoreBase + core*16 + event addresses a per-core counter.
	PerfCoreBase uint32 = 0xF000_0000
	// PerfCHABase + slice*16 + event addresses a per-CHA (LLC slice)
	// uncore counter.
	PerfCHABase uint32 = 0xF100_0000
)

// Per-core counter event numbers (offsets under PerfCoreBase).
const (
	EvInstructions = 0 // INST_RETIRED.ANY
	EvCycles       = 1 // CPU_CLK_UNHALTED.THREAD
	EvLLCRefs      = 2 // LONGEST_LAT_CACHE.REFERENCE
	EvLLCMisses    = 3 // LONGEST_LAT_CACHE.MISS
)

// Per-CHA uncore event numbers (offsets under PerfCHABase).
const (
	EvDDIOHit  = 0 // inbound write update  (LLC_LOOKUP with IO filter, hit)
	EvDDIOMiss = 1 // inbound write allocate (miss)
)

// CoreCounterAddr returns the register address of a per-core counter.
func CoreCounterAddr(core, event int) uint32 {
	return PerfCoreBase + uint32(core)*16 + uint32(event)
}

// CHACounterAddr returns the register address of a per-slice uncore counter.
func CHACounterAddr(slice, event int) uint32 {
	return PerfCHABase + uint32(slice)*16 + uint32(event)
}

// PQRAssocAddr returns the association register address of a core.
func PQRAssocAddr(core int) uint32 { return IA32PQRAssocBase + uint32(core) }

// L3MaskAddr returns the CAT mask register address of a CLOS.
func L3MaskAddr(clos int) uint32 { return IA32L3MaskBase + uint32(clos) }

// MBAThrtlAddr returns the MBA throttle register address of a CLOS.
func MBAThrtlAddr(clos int) uint32 { return IA32MBAThrtlBase + uint32(clos) }

// ReadHandler supplies the value of a read-only (counter) register.
type ReadHandler func() uint64

// FaultHook intercepts counted register-file operations, the seam the
// chaos harness (internal/faults) uses to model misbehaving hardware.
// Peek bypasses the hook: the simulated datapath and diagnostics see the
// machine's true state — only the management plane's rdmsr/wrmsr view is
// perturbed, exactly as on real hardware where the registers themselves
// are fine and the *accesses* fail.
type FaultHook interface {
	// FilterWrite sees the register's current value and the value being
	// written; it returns the value to store, or a non-nil error to
	// reject the write (the register then keeps old).
	FilterWrite(addr uint32, old, v uint64) (uint64, error)
	// FilterRead may substitute the value served by a read.
	FilterRead(addr uint32, v uint64) uint64
}

// Ops counts register file operations, the basis of the control-plane
// overhead model (Fig. 15).
type Ops struct {
	Reads  uint64
	Writes uint64
}

// Sub returns o1 - o2 component-wise.
func (o Ops) Sub(p Ops) Ops { return Ops{Reads: o.Reads - p.Reads, Writes: o.Writes - p.Writes} }

// File is the register file. It is safe for concurrent use.
type File struct {
	mu       sync.Mutex
	regs     map[uint32]uint64
	handlers map[uint32]ReadHandler
	hook     FaultHook
	ops      Ops
	gen      uint64
}

// NewFile returns an empty register file.
func NewFile() *File {
	return &File{
		regs:     make(map[uint32]uint64),
		handlers: make(map[uint32]ReadHandler),
	}
}

// MapRead installs a handler supplying the value of a read-only register.
func (f *File) MapRead(addr uint32, h ReadHandler) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.handlers[addr] = h
	f.gen++
}

// SetFaultHook installs (or, with nil, removes) the fault hook applied to
// subsequent Read and Write calls. Arm it only after the platform is
// assembled: construction-time programming is not part of the fault
// surface.
func (f *File) SetFaultHook(h FaultHook) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.hook = h
}

// Read returns the value of a register (rdmsr).
func (f *File) Read(addr uint32) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops.Reads++
	var v uint64
	if h, ok := f.handlers[addr]; ok {
		v = h()
	} else {
		v = f.regs[addr]
	}
	if f.hook != nil {
		v = f.hook.FilterRead(addr, v)
	}
	return v
}

// Write sets the value of a register (wrmsr). Writing a handler-backed
// register is rejected, as counter registers are read-only in this model.
func (f *File) Write(addr uint32, v uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops.Writes++
	if _, ok := f.handlers[addr]; ok {
		return fmt.Errorf("msr: register %#x is read-only", addr)
	}
	if f.hook != nil {
		stored, err := f.hook.FilterWrite(addr, f.regs[addr], v)
		if err != nil {
			return err
		}
		v = stored
	}
	f.regs[addr] = v
	f.gen++
	return nil
}

// Peek returns a register value without counting an operation; for tests
// and displays that should not perturb the overhead accounting.
func (f *File) Peek(addr uint32) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if h, ok := f.handlers[addr]; ok {
		return h()
	}
	return f.regs[addr]
}

// Ops returns the cumulative operation counters.
func (f *File) Ops() Ops {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Generation returns a counter that advances on every mutation of the
// file's contents (Write or MapRead). Datapath-side caches of register-
// derived state (the effective CAT mask of a core, the DDIO way mask) key
// their validity on it: an unchanged generation guarantees every register
// still Peeks the same value.
func (f *File) Generation() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.gen
}
