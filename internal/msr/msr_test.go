package msr

import (
	"sync"
	"testing"
)

func TestReadWriteRoundTrip(t *testing.T) {
	f := NewFile()
	if err := f.Write(IIOLLCWays, 0x600); err != nil {
		t.Fatal(err)
	}
	if got := f.Read(IIOLLCWays); got != 0x600 {
		t.Fatalf("read back %#x", got)
	}
}

func TestUnwrittenRegisterReadsZero(t *testing.T) {
	f := NewFile()
	if got := f.Read(0xDEAD); got != 0 {
		t.Fatalf("unwritten register = %#x", got)
	}
}

func TestMappedReadHandler(t *testing.T) {
	f := NewFile()
	v := uint64(7)
	f.MapRead(CoreCounterAddr(3, EvCycles), func() uint64 { return v })
	if got := f.Read(CoreCounterAddr(3, EvCycles)); got != 7 {
		t.Fatalf("handler read = %d", got)
	}
	v = 42
	if got := f.Read(CoreCounterAddr(3, EvCycles)); got != 42 {
		t.Fatalf("handler read = %d (should be live)", got)
	}
}

func TestCounterRegistersAreReadOnly(t *testing.T) {
	f := NewFile()
	f.MapRead(CHACounterAddr(0, EvDDIOHit), func() uint64 { return 1 })
	if err := f.Write(CHACounterAddr(0, EvDDIOHit), 99); err == nil {
		t.Fatal("write to a counter register succeeded")
	}
}

func TestOpsCounting(t *testing.T) {
	f := NewFile()
	f.Read(1)
	f.Read(2)
	if err := f.Write(3, 1); err != nil {
		t.Fatal(err)
	}
	ops := f.Ops()
	if ops.Reads != 2 || ops.Writes != 1 {
		t.Fatalf("ops = %+v", ops)
	}
	// Peek must not count.
	f.Peek(1)
	if f.Ops().Reads != 2 {
		t.Fatal("Peek counted as a read")
	}
}

func TestOpsSub(t *testing.T) {
	d := Ops{Reads: 10, Writes: 4}.Sub(Ops{Reads: 7, Writes: 1})
	if d.Reads != 3 || d.Writes != 3 {
		t.Fatalf("delta = %+v", d)
	}
}

func TestAddressHelpersDisjoint(t *testing.T) {
	seen := map[uint32]string{}
	add := func(a uint32, what string) {
		if prev, ok := seen[a]; ok {
			t.Fatalf("address collision: %s and %s both at %#x", prev, what, a)
		}
		seen[a] = what
	}
	for core := 0; core < 18; core++ {
		add(PQRAssocAddr(core), "pqr")
		for ev := 0; ev < 4; ev++ {
			add(CoreCounterAddr(core, ev), "core-counter")
		}
	}
	for clos := 0; clos < 16; clos++ {
		add(L3MaskAddr(clos), "l3mask")
	}
	for s := 0; s < 18; s++ {
		add(CHACounterAddr(s, EvDDIOHit), "cha-hit")
		add(CHACounterAddr(s, EvDDIOMiss), "cha-miss")
	}
	add(IIOLLCWays, "iio")
}

func TestConcurrentAccessSafe(t *testing.T) {
	f := NewFile()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				_ = f.Write(uint32(i), uint64(j))
				f.Read(uint32(i))
			}
		}(i)
	}
	wg.Wait()
	if ops := f.Ops(); ops.Reads != 8000 || ops.Writes != 8000 {
		t.Fatalf("ops = %+v", ops)
	}
}
