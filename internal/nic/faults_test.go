package nic

import (
	"testing"

	"iatsim/internal/pkt"
)

// scriptedFaults replays fixed drop/stall decision sequences (false once
// exhausted), so tests control exactly which datapath touch is perturbed.
type scriptedFaults struct {
	drop, stall []bool
	di, si      int
}

func (s *scriptedFaults) DropRxDesc() bool {
	if s.di >= len(s.drop) {
		return false
	}
	s.di++
	return s.drop[s.di-1]
}

func (s *scriptedFaults) StallTx() bool {
	if s.si >= len(s.stall) {
		return false
	}
	s.si++
	return s.stall[s.si-1]
}

func TestInjectedRxDrop(t *testing.T) {
	eng, al := newEngine()
	d := NewDevice(Config{Name: "eth", RxEntries: 8, TxEntries: 8, VFs: 1}, eng, al)
	d.SetFaults(&scriptedFaults{drop: []bool{true, false}})
	vf := d.VF(0)

	if d.DeliverRx(0, pkt.Packet{Size: 64}, 0) {
		t.Fatal("faulted delivery succeeded")
	}
	if vf.Stats.RxDrops != 1 || vf.Stats.InjectedRxDrops != 1 || vf.Stats.RxPackets != 0 {
		t.Fatalf("stats after injected drop: %+v", vf.Stats)
	}
	if !vf.Rx.Empty() {
		t.Fatal("dropped packet reached the ring")
	}
	// The next arrival is untouched.
	if !d.DeliverRx(0, pkt.Packet{Size: 64}, 0) {
		t.Fatal("clean delivery failed")
	}
	if vf.Stats.RxPackets != 1 || vf.Stats.InjectedRxDrops != 1 {
		t.Fatalf("stats after clean delivery: %+v", vf.Stats)
	}
}

func TestInjectedTxStall(t *testing.T) {
	eng, al := newEngine()
	d := NewDevice(Config{Name: "eth", RxEntries: 8, TxEntries: 8, VFs: 1}, eng, al)
	d.SetFaults(&scriptedFaults{stall: []bool{true}})
	vf := d.VF(0)
	buf, _ := vf.Pool.Get()
	vf.Tx.Push(Entry{Pkt: pkt.Packet{Size: 64}, Buf: buf})

	// Stalled drain does no work, and the wire time is lost: the pacing
	// budget of the stalled interval must not carry over.
	if sent := d.DrainTx(0, 1000); sent != 0 {
		t.Fatalf("stalled drain sent %d", sent)
	}
	if vf.Stats.InjectedTxStalls != 1 || vf.Stats.TxPackets != 0 {
		t.Fatalf("stats after stall: %+v", vf.Stats)
	}
	if sent := d.DrainTx(0, 0); sent != 0 {
		t.Fatal("stalled interval's budget leaked into the next drain")
	}
	if sent := d.DrainTx(0, 1000); sent != 1 {
		t.Fatalf("post-stall drain sent %d, want 1", sent)
	}
	if vf.Stats.TxPackets != 1 || vf.Stats.InjectedTxStalls != 1 {
		t.Fatalf("final stats: %+v", vf.Stats)
	}
}

// An all-false injector must leave the datapath bit-for-bit unaffected.
func TestInactiveInjectorIsTransparent(t *testing.T) {
	run := func(fi FaultInjector) (VFStats, int) {
		eng, al := newEngine()
		d := NewDevice(Config{Name: "eth", RxEntries: 4, TxEntries: 4, VFs: 1}, eng, al)
		d.SetFaults(fi)
		for i := 0; i < 6; i++ { // overruns the 4-entry ring: 2 real drops
			d.DeliverRx(0, pkt.Packet{Size: 128}, float64(i))
		}
		vf := d.VF(0)
		for !vf.Rx.Empty() {
			slot, e, _ := vf.Rx.Pop()
			vf.ReplenishRx(slot)
			vf.Tx.Push(e)
		}
		sent := d.DrainTx(0, 1e6)
		return vf.Stats, sent
	}
	withNil, sentNil := run(nil)
	withOff, sentOff := run(&scriptedFaults{})
	if withNil != withOff || sentNil != sentOff {
		t.Fatalf("inactive injector changed behaviour: %+v/%d vs %+v/%d",
			withNil, sentNil, withOff, sentOff)
	}
}
