// Package nic models the network interface cards of the platform: SR-IOV
// virtual functions, descriptor rings, DPDK-style buffer pools, and the DMA
// datapath that moves packets through the DDIO engine.
//
// The model is line-granular and zero-copy, like the DPDK applications in
// the paper: an inbound packet is DMA'd once into a pool buffer (through
// DDIO), the consuming core reads whatever part of it the application needs,
// and transmission hands the same buffer back to the device, which reads it
// out of the LLC (or memory, if it leaked — the Leaky DMA problem) and
// returns the buffer to the pool.
package nic

import (
	"fmt"

	"iatsim/internal/addr"
	"iatsim/internal/ddio"
	"iatsim/internal/pkt"
	"iatsim/internal/telemetry"
)

// BufSize is the size of one pool buffer: 2KB holds an MTU frame, matching
// DPDK's default mbuf data room.
const BufSize = 2048

// Entry is one occupied ring slot: the packet metadata plus the address of
// the pool buffer holding its payload.
type Entry struct {
	Pkt pkt.Packet
	Buf uint64
}

// Ring is a single-producer single-consumer descriptor ring. Descriptors
// live in simulated memory (one line each, as 4 hardware descriptors of 16B
// share a line but DPDK touches them line by line); the stored Go values
// carry the metadata.
// Occupancy is head-tail over free-running uint64 counts, so an exactly-
// full ring (Len == entries) is unambiguously distinct from an empty one
// (head == tail) — no slot is sacrificed the way index-only rings must.
// The slot positions are maintained incrementally (prod, cons) rather
// than recomputed as head%entries: besides dropping a modulo from the
// per-packet path, this keeps the slot sequence correct for rings whose
// entry count is not a power of two, where the recomputation desyncs by
// (2^64 mod entries) when the free-running count wraps.
type Ring struct {
	entries int
	desc    addr.Region
	slots   []Entry
	head    uint64 // producer count
	tail    uint64 // consumer count
	prod    int    // slot the next Push fills (== head mod entries)
	cons    int    // slot the next Pop drains (== tail mod entries)
}

// NewRing allocates a ring of n entries with descriptor lines from al.
func NewRing(n int, al *addr.Allocator) *Ring {
	if n <= 0 {
		panic(fmt.Sprintf("nic: ring size %d", n))
	}
	return &Ring{
		entries: n,
		desc:    al.Alloc(uint64(n)*addr.LineSize, 0),
		slots:   make([]Entry, n),
	}
}

// Entries returns the ring capacity.
func (r *Ring) Entries() int { return r.entries }

// Len returns the number of occupied slots.
func (r *Ring) Len() int { return int(r.head - r.tail) }

// Full reports whether the ring has no free slot.
func (r *Ring) Full() bool { return r.Len() >= r.entries }

// Empty reports whether the ring has no occupied slot.
func (r *Ring) Empty() bool { return r.head == r.tail }

// DescAddr returns the descriptor line address of slot i.
func (r *Ring) DescAddr(i int) uint64 { return r.desc.Line(i) }

// ProducerSlot returns the slot index the next Push will fill (the slot a
// fully pre-posted Rx ring has a buffer waiting in).
func (r *Ring) ProducerSlot() int { return r.prod }

// Push enqueues e, returning the slot index, or -1 if the ring is full.
func (r *Ring) Push(e Entry) int {
	if r.Full() {
		return -1
	}
	i := r.prod
	r.slots[i] = e
	r.head++
	if r.prod++; r.prod == r.entries {
		r.prod = 0
	}
	return i
}

// Peek returns the slot index and entry at the consumer side without
// consuming it; ok is false when the ring is empty.
func (r *Ring) Peek() (i int, e Entry, ok bool) {
	if r.Empty() {
		return 0, Entry{}, false
	}
	i = r.cons
	return i, r.slots[i], true
}

// Pop consumes the entry at the consumer side; ok is false when empty.
func (r *Ring) Pop() (i int, e Entry, ok bool) {
	i, e, ok = r.Peek()
	if ok {
		r.tail++
		if r.cons++; r.cons == r.entries {
			r.cons = 0
		}
	}
	return
}

// Pool is a DPDK-style packet buffer pool. Buffers are fixed-size regions of
// simulated memory handed to the Rx DMA engine and returned after Tx.
type Pool struct {
	region addr.Region
	free   []uint64
	size   int
}

// NewPool allocates n buffers of BufSize bytes from al.
func NewPool(n int, al *addr.Allocator) *Pool {
	p := &Pool{
		region: al.Alloc(uint64(n)*BufSize, 0),
		free:   make([]uint64, 0, n),
		size:   n,
	}
	for i := n - 1; i >= 0; i-- {
		p.free = append(p.free, p.region.Base+uint64(i)*BufSize)
	}
	return p
}

// Size returns the pool capacity in buffers.
func (p *Pool) Size() int { return p.size }

// Avail returns the number of free buffers.
func (p *Pool) Avail() int { return len(p.free) }

// Get pops a free buffer address; ok is false when the pool is exhausted.
func (p *Pool) Get() (buf uint64, ok bool) {
	if len(p.free) == 0 {
		return 0, false
	}
	buf = p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return buf, true
}

// Put returns a buffer to the pool.
func (p *Pool) Put(buf uint64) { p.free = append(p.free, buf) }

// VFStats counts per-virtual-function activity.
type VFStats struct {
	RxPackets uint64
	RxBytes   uint64
	RxDrops   uint64 // ring full, pool empty, or injected fault at arrival
	TxPackets uint64
	TxBytes   uint64

	// InjectedRxDrops / InjectedTxStalls count datapath faults a chaos
	// injector forced (InjectedRxDrops is included in RxDrops).
	InjectedRxDrops  uint64
	InjectedTxStalls uint64
}

// FaultInjector perturbs the device datapath; the chaos harness
// (internal/faults) implements it with a seeded schedule. Each method is
// one injection opportunity: DropRxDesc per inbound packet, StallTx per
// transmit-drain call.
type FaultInjector interface {
	DropRxDesc() bool
	StallTx() bool
}

// VF is one SR-IOV virtual function (or, for the aggregation model, the
// physical function's queue pair the software switch polls).
//
// The Rx ring is fully pre-posted, as on real NICs: every descriptor slot
// holds a distinct pool buffer waiting for DMA, so inbound packets cycle
// through ring-entries distinct buffers in ring order regardless of load.
// This is the mechanism behind the Leaky DMA problem — the inbound DDIO
// footprint is (ring entries x packet size), which is why ResQ's remedy is
// shrinking the ring (Sec. III-A).
type VF struct {
	Name string
	// ConsumerCore is the core that polls this VF's Rx ring; the DMA
	// engine invalidates its private caches when overwriting buffers.
	ConsumerCore int
	// VLAN tags traffic steered to this VF in the slicing model.
	VLAN uint16

	Rx   *Ring
	Tx   *Ring
	Pool *Pool

	// posted[i] is the buffer pre-posted to Rx slot i; postedOK[i] is
	// false between the slot's consumption and its replenishment.
	posted   []uint64
	postedOK []bool

	Stats VFStats
	tel   vfTel
}

// vfTel is the VF's telemetry handle set; all-nil when uninstrumented
// (every touch is then a single nil-check branch).
type vfTel struct {
	rxPackets *telemetry.Counter
	rxDrops   *telemetry.Counter // ring full or pool empty at arrival
	txPackets *telemetry.Counter
	rxOcc     *telemetry.Gauge // Rx descriptor-ring occupancy after the touch
	txOcc     *telemetry.Gauge // Tx descriptor-ring occupancy after a drain
}

// ReplenishRx posts a fresh pool buffer to Rx slot i (the driver work a
// consumer performs after taking a filled buffer). It returns false when
// the pool is exhausted; the slot then stays unposted and arrivals mapping
// to it are dropped until a later replenish succeeds.
func (vf *VF) ReplenishRx(i int) bool {
	buf, ok := vf.Pool.Get()
	vf.posted[i] = buf
	vf.postedOK[i] = ok
	return ok
}

// Config shapes a device.
type Config struct {
	Name      string
	RxEntries int // per-VF Rx ring entries (the paper's default is 1024)
	TxEntries int // per-VF Tx ring entries
	VFs       int // number of virtual functions
	// WireGbps is the port speed used to pace transmit draining (40 for
	// the paper's XL710s).
	WireGbps float64
}

// Device is one physical NIC.
type Device struct {
	cfg    Config
	eng    *ddio.Engine
	port   *ddio.Port // optional per-device DDIO policy (Sec. VII extension)
	vfs    []*VF
	txAcc  float64 // fractional byte budget carried between drain calls
	faults FaultInjector

	// OnTx, when set, is invoked for every packet that leaves on the
	// wire — closed-loop traffic generators use it to recover credits.
	OnTx func(vf int, e Entry)
}

// SetFaults attaches (or, with nil, removes) a datapath fault injector.
func (d *Device) SetFaults(fi FaultInjector) { d.faults = fi }

// SetDDIOPort attaches a per-device DDIO policy (device-aware way mask
// and/or application-aware header-only placement). Passing nil restores the
// stock global-register behaviour.
func (d *Device) SetDDIOPort(p *ddio.Port) { d.port = p }

// dmaWrite routes an inbound DMA through the device's policy.
func (d *Device) dmaWrite(a uint64, n, consumer int) {
	if d.port != nil {
		d.port.Write(a, n, consumer)
		return
	}
	d.eng.DeviceWrite(a, n, consumer)
}

// dmaRead routes an outbound DMA through the device's policy.
func (d *Device) dmaRead(a uint64, n int) {
	if d.port != nil {
		d.port.Read(a, n)
		return
	}
	d.eng.DeviceRead(a, n)
}

// NewDevice builds a NIC with cfg.VFs virtual functions, allocating rings
// and pools from al and moving data through eng.
func NewDevice(cfg Config, eng *ddio.Engine, al *addr.Allocator) *Device {
	if cfg.RxEntries == 0 {
		cfg.RxEntries = 1024
	}
	if cfg.TxEntries == 0 {
		cfg.TxEntries = cfg.RxEntries
	}
	if cfg.VFs == 0 {
		cfg.VFs = 1
	}
	if cfg.WireGbps == 0 {
		cfg.WireGbps = 40
	}
	d := &Device{cfg: cfg, eng: eng}
	for i := 0; i < cfg.VFs; i++ {
		vf := &VF{
			Name:         fmt.Sprintf("%s.vf%d", cfg.Name, i),
			ConsumerCore: -1,
			Rx:           NewRing(cfg.RxEntries, al),
			Tx:           NewRing(cfg.TxEntries, al),
			Pool:         NewPool(cfg.RxEntries+cfg.TxEntries, al),
			posted:       make([]uint64, cfg.RxEntries),
			postedOK:     make([]bool, cfg.RxEntries),
		}
		for s := 0; s < cfg.RxEntries; s++ {
			vf.ReplenishRx(s)
		}
		d.vfs = append(d.vfs, vf)
	}
	return d
}

// AttachTelemetry resolves per-VF counters and ring-occupancy gauges
// from s, scoped by VF name (nil-safe).
func (d *Device) AttachTelemetry(s telemetry.Sink) {
	if s == nil {
		return
	}
	for _, vf := range d.vfs {
		vf.tel = vfTel{
			rxPackets: s.Counter("nic", vf.Name, "rx_packets"),
			rxDrops:   s.Counter("nic", vf.Name, "rx_drops"),
			txPackets: s.Counter("nic", vf.Name, "tx_packets"),
			rxOcc:     s.Gauge("nic", vf.Name, "rx_ring_occupancy"),
			txOcc:     s.Gauge("nic", vf.Name, "tx_ring_occupancy"),
		}
	}
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// VF returns virtual function i.
func (d *Device) VF(i int) *VF { return d.vfs[i] }

// NumVFs returns the virtual function count.
func (d *Device) NumVFs() int { return len(d.vfs) }

// DeliverRx attempts to DMA an arriving packet into VF i's Rx ring at
// simulated time nowNS. On success the descriptor line and the payload
// lines are written through DDIO; on ring-full or pool-empty the packet is
// dropped and counted.
func (d *Device) DeliverRx(i int, p pkt.Packet, nowNS float64) bool {
	vf := d.vfs[i]
	if d.faults != nil && d.faults.DropRxDesc() {
		// Injected descriptor-stage drop: the packet never reaches the
		// ring (a corrupt descriptor the hardware discards).
		vf.Stats.RxDrops++
		vf.Stats.InjectedRxDrops++
		vf.tel.rxDrops.Inc()
		return false
	}
	if vf.Rx.Full() {
		vf.Stats.RxDrops++
		vf.tel.rxDrops.Inc()
		return false
	}
	slot := vf.Rx.ProducerSlot()
	if !vf.postedOK[slot] {
		// No buffer posted (pool exhausted at replenish time).
		vf.Stats.RxDrops++
		vf.tel.rxDrops.Inc()
		return false
	}
	buf := vf.posted[slot]
	vf.postedOK[slot] = false
	p.ArrivalNS = nowNS
	vf.Rx.Push(Entry{Pkt: p, Buf: buf})
	// Payload first, then the descriptor (the doorbell ordering).
	d.dmaWrite(buf, p.Size, vf.ConsumerCore)
	d.dmaWrite(vf.Rx.DescAddr(slot), addr.LineSize, vf.ConsumerCore)
	vf.Stats.RxPackets++
	vf.Stats.RxBytes += uint64(p.Size)
	vf.tel.rxPackets.Inc()
	vf.tel.rxOcc.Set(float64(vf.Rx.Len()))
	return true
}

// DrainTx transmits from VF i's Tx ring, paced by the wire: at most
// dtNS worth of line-rate bytes leave per call (plus any fractional budget
// carried over). Transmitted buffers return to the pool.
func (d *Device) DrainTx(i int, dtNS float64) int {
	vf := d.vfs[i]
	if d.faults != nil && d.faults.StallTx() {
		// Injected stall: the DMA engine does no work this call and the
		// wire time is lost (the pacing budget is not accrued).
		vf.Stats.InjectedTxStalls++
		return 0
	}
	// Per-VF pacing: the VFs share the port; give each an equal share.
	d.txAcc += d.cfg.WireGbps / 8 * dtNS / float64(len(d.vfs)) // GB/s * ns = bytes
	sent := 0
	for !vf.Tx.Empty() {
		_, e, _ := vf.Tx.Peek()
		if float64(e.Pkt.Size) > d.txAcc {
			break
		}
		slot, _, _ := vf.Tx.Pop()
		d.txAcc -= float64(e.Pkt.Size)
		d.dmaRead(vf.Tx.DescAddr(slot), addr.LineSize)
		d.dmaRead(e.Buf, e.Pkt.Size)
		vf.Pool.Put(e.Buf)
		vf.Stats.TxPackets++
		vf.Stats.TxBytes += uint64(e.Pkt.Size)
		sent++
		if d.OnTx != nil {
			d.OnTx(i, e)
		}
	}
	if sent > 0 {
		// One batched counter update per drain, not one per packet.
		vf.tel.txPackets.Add(uint64(sent))
		vf.tel.txOcc.Set(float64(vf.Tx.Len()))
	}
	return sent
}

// VirtioPort is the virtio-style interface connecting a tenant to the
// aggregation model's software stack (Sec. II-C, Fig. 2a): a Down ring
// (switch to tenant), an Up ring (tenant to switch), and a buffer pool
// shared by both directions so a bouncing tenant (testpmd) can forward
// zero-copy while the switch pays the vhost enqueue/dequeue copies.
//
// All data movement through a VirtioPort is performed by CPU cores (the
// switch's or the tenant's); this package only provides the structure and
// buffer addresses — workloads issue the cache accesses.
type VirtioPort struct {
	Name string
	Down *Ring
	Up   *Ring
	Pool *Pool
	// DownDrops / UpDrops count enqueue failures in each direction.
	DownDrops uint64
	UpDrops   uint64
}

// NewVirtioPort builds a port with n-entry rings and a 2n-buffer pool.
func NewVirtioPort(name string, n int, al *addr.Allocator) *VirtioPort {
	return &VirtioPort{
		Name: name,
		Down: NewRing(n, al),
		Up:   NewRing(n, al),
		Pool: NewPool(2*n, al),
	}
}

// PushDown reserves a buffer and enqueues packet p toward the tenant,
// returning the slot and buffer the producer must copy the payload into.
// ok is false (and the drop counted) when the port is saturated.
func (v *VirtioPort) PushDown(p pkt.Packet) (slot int, buf uint64, ok bool) {
	if v.Down.Full() {
		v.DownDrops++
		return 0, 0, false
	}
	buf, ok = v.Pool.Get()
	if !ok {
		v.DownDrops++
		return 0, 0, false
	}
	slot = v.Down.Push(Entry{Pkt: p, Buf: buf})
	return slot, buf, true
}

// PushUp enqueues an entry toward the switch. The entry's buffer must
// belong to this port's pool (either taken from it via GetBuf or received
// on the Down ring for a zero-copy bounce). ok is false (and the drop
// counted, with the buffer reclaimed) on overflow.
func (v *VirtioPort) PushUp(e Entry) (slot int, ok bool) {
	slot = v.Up.Push(e)
	if slot < 0 {
		v.UpDrops++
		v.Pool.Put(e.Buf)
		return -1, false
	}
	return slot, true
}

// GetBuf takes a fresh buffer from the port pool (e.g. for a KVS response).
func (v *VirtioPort) GetBuf() (uint64, bool) { return v.Pool.Get() }

// Release returns a buffer to the port pool.
func (v *VirtioPort) Release(buf uint64) { v.Pool.Put(buf) }

// PostedCount returns how many Rx slots currently hold a posted buffer
// (diagnostics and tests).
func (vf *VF) PostedCount() int {
	n := 0
	for _, ok := range vf.postedOK {
		if ok {
			n++
		}
	}
	return n
}
