package nic

import (
	"testing"
	"testing/quick"

	"iatsim/internal/addr"
	"iatsim/internal/cache"
	"iatsim/internal/ddio"
	"iatsim/internal/mem"
	"iatsim/internal/msr"
	"iatsim/internal/pkt"
)

func newEngine() (*ddio.Engine, *addr.Allocator) {
	mc := mem.NewController(mem.Config{})
	mc.BeginEpoch(1e9)
	h := cache.NewHierarchy(cache.HierarchyConfig{
		Cores: 2,
		L1:    cache.LevelConfig{SizeBytes: 4 << 10, Ways: 4, HitCycles: 4},
		L2:    cache.LevelConfig{SizeBytes: 32 << 10, Ways: 8, HitCycles: 14},
		LLC:   cache.LLCConfig{Slices: 2, Ways: 8, SetsPerSlice: 256, HitCycles: 44},
	}, 2.3, mc)
	return ddio.New(msr.NewFile(), h, mc), addr.NewAllocator(1 << 30)
}

func TestRingPushPop(t *testing.T) {
	al := addr.NewAllocator(0)
	r := NewRing(4, al)
	if !r.Empty() || r.Full() {
		t.Fatal("fresh ring state wrong")
	}
	for i := 0; i < 4; i++ {
		if slot := r.Push(Entry{Buf: uint64(i)}); slot != i {
			t.Fatalf("push %d landed in slot %d", i, slot)
		}
	}
	if !r.Full() {
		t.Fatal("ring should be full")
	}
	if r.Push(Entry{}) != -1 {
		t.Fatal("push into a full ring succeeded")
	}
	for i := 0; i < 4; i++ {
		slot, e, ok := r.Pop()
		if !ok || slot != i || e.Buf != uint64(i) {
			t.Fatalf("pop %d: slot=%d buf=%d ok=%v", i, slot, e.Buf, ok)
		}
	}
	if _, _, ok := r.Pop(); ok {
		t.Fatal("pop from empty ring succeeded")
	}
}

func TestRingDescAddrsDistinct(t *testing.T) {
	al := addr.NewAllocator(0)
	r := NewRing(8, al)
	seen := map[uint64]bool{}
	for i := 0; i < 8; i++ {
		a := r.DescAddr(i)
		if seen[a] {
			t.Fatalf("descriptor address %#x repeated", a)
		}
		seen[a] = true
	}
}

// Property: ring length equals pushes minus pops for any interleaving.
func TestRingLenProperty(t *testing.T) {
	f := func(ops []bool) bool {
		al := addr.NewAllocator(0)
		r := NewRing(8, al)
		pushed, popped := 0, 0
		for _, push := range ops {
			if push {
				if r.Push(Entry{}) >= 0 {
					pushed++
				}
			} else {
				if _, _, ok := r.Pop(); ok {
					popped++
				}
			}
			if r.Len() != pushed-popped {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPoolGetPutBalance(t *testing.T) {
	al := addr.NewAllocator(0)
	p := NewPool(4, al)
	if p.Avail() != 4 || p.Size() != 4 {
		t.Fatalf("fresh pool avail=%d size=%d", p.Avail(), p.Size())
	}
	bufs := map[uint64]bool{}
	for i := 0; i < 4; i++ {
		b, ok := p.Get()
		if !ok {
			t.Fatal("pool exhausted early")
		}
		if bufs[b] {
			t.Fatalf("buffer %#x handed out twice", b)
		}
		bufs[b] = true
	}
	if _, ok := p.Get(); ok {
		t.Fatal("empty pool returned a buffer")
	}
	for b := range bufs {
		p.Put(b)
	}
	if p.Avail() != 4 {
		t.Fatalf("avail after refill = %d", p.Avail())
	}
}

func TestPoolBuffersDisjoint(t *testing.T) {
	al := addr.NewAllocator(0)
	p := NewPool(8, al)
	var prev uint64
	for i := 0; i < 8; i++ {
		b, _ := p.Get()
		if i > 0 {
			d := b - prev
			if d != BufSize && prev-b != BufSize {
				t.Fatalf("buffers not BufSize apart: %#x vs %#x", prev, b)
			}
		}
		prev = b
	}
}

func TestDeviceDeliverAndDrain(t *testing.T) {
	eng, al := newEngine()
	d := NewDevice(Config{Name: "n", RxEntries: 8, VFs: 1, WireGbps: 40}, eng, al)
	vf := d.VF(0)
	p := pkt.Packet{Size: 128, Flow: pkt.Flow{Src: 1}}
	if !d.DeliverRx(0, p, 100) {
		t.Fatal("delivery failed")
	}
	if vf.Rx.Len() != 1 || vf.Stats.RxPackets != 1 {
		t.Fatalf("rx state: len=%d stats=%+v", vf.Rx.Len(), vf.Stats)
	}
	slot, e, _ := vf.Rx.Pop()
	if e.Pkt.ArrivalNS != 100 {
		t.Fatalf("arrival stamp = %v", e.Pkt.ArrivalNS)
	}
	vf.ReplenishRx(slot)
	vf.Tx.Push(e)
	if sent := d.DrainTx(0, 1e6); sent != 1 {
		t.Fatalf("drained %d packets", sent)
	}
	if vf.Stats.TxPackets != 1 || vf.Pool.Avail() == 0 {
		t.Fatalf("tx stats=%+v avail=%d", vf.Stats, vf.Pool.Avail())
	}
}

func TestDeliverDropsWhenRingFull(t *testing.T) {
	eng, al := newEngine()
	d := NewDevice(Config{Name: "n", RxEntries: 2, VFs: 1}, eng, al)
	p := pkt.Packet{Size: 64}
	d.DeliverRx(0, p, 0)
	d.DeliverRx(0, p, 0)
	if d.DeliverRx(0, p, 0) {
		t.Fatal("delivery into a full ring succeeded")
	}
	if d.VF(0).Stats.RxDrops != 1 {
		t.Fatalf("drops = %d", d.VF(0).Stats.RxDrops)
	}
}

func TestDeliverDropsWhenSlotUnposted(t *testing.T) {
	eng, al := newEngine()
	d := NewDevice(Config{Name: "n", RxEntries: 2, VFs: 1}, eng, al)
	vf := d.VF(0)
	p := pkt.Packet{Size: 64}
	d.DeliverRx(0, p, 0)
	vf.Rx.Pop() // consume without replenishing: slot 0 stays unposted
	d.DeliverRx(0, p, 0)
	// The producer wraps to slot 0, which has no buffer.
	if d.DeliverRx(0, p, 0) {
		t.Fatal("delivery into an unposted slot succeeded")
	}
	if vf.Stats.RxDrops != 1 {
		t.Fatalf("drops = %d", vf.Stats.RxDrops)
	}
}

func TestRxRotatesThroughDistinctBuffers(t *testing.T) {
	// The pre-posted ring must cycle through ring-entries distinct
	// buffers even under light load — the Leaky DMA footprint property.
	eng, al := newEngine()
	d := NewDevice(Config{Name: "n", RxEntries: 8, VFs: 1}, eng, al)
	vf := d.VF(0)
	seen := map[uint64]bool{}
	for i := 0; i < 8; i++ {
		d.DeliverRx(0, pkt.Packet{Size: 64}, 0)
		slot, e, _ := vf.Rx.Pop()
		seen[e.Buf] = true
		vf.ReplenishRx(slot)
		vf.Pool.Put(e.Buf)
	}
	if len(seen) != 8 {
		t.Fatalf("only %d distinct buffers over one ring rotation", len(seen))
	}
}

func TestDrainTxIsWirePaced(t *testing.T) {
	eng, al := newEngine()
	d := NewDevice(Config{Name: "n", RxEntries: 64, VFs: 1, WireGbps: 40}, eng, al)
	vf := d.VF(0)
	for i := 0; i < 32; i++ {
		buf, _ := vf.Pool.Get()
		vf.Tx.Push(Entry{Pkt: pkt.Packet{Size: 1500}, Buf: buf})
	}
	// 1µs at 40Gbps is 5000 bytes: at most 3 MTU packets.
	if sent := d.DrainTx(0, 1000); sent > 3 {
		t.Fatalf("drained %d MTU packets in 1us at 40Gbps", sent)
	}
}

func TestVirtioPortFlow(t *testing.T) {
	al := addr.NewAllocator(0)
	vp := NewVirtioPort("p", 4, al)
	slot, buf, ok := vp.PushDown(pkt.Packet{Size: 256})
	if !ok || buf == 0 {
		t.Fatal("PushDown failed")
	}
	_ = slot
	dslot, e, ok := vp.Down.Pop()
	if !ok || e.Buf != buf {
		t.Fatalf("Down pop: slot=%d ok=%v", dslot, ok)
	}
	// Zero-copy bounce to the Up ring.
	if _, ok := vp.PushUp(e); !ok {
		t.Fatal("PushUp failed")
	}
	_, e2, ok := vp.Up.Pop()
	if !ok || e2.Buf != buf {
		t.Fatal("Up pop lost the buffer")
	}
	vp.Release(e2.Buf)
	if vp.Pool.Avail() != vp.Pool.Size() {
		t.Fatalf("pool leaked: %d/%d", vp.Pool.Avail(), vp.Pool.Size())
	}
}

func TestVirtioPortDropAccounting(t *testing.T) {
	al := addr.NewAllocator(0)
	vp := NewVirtioPort("p", 2, al)
	vp.PushDown(pkt.Packet{Size: 64})
	vp.PushDown(pkt.Packet{Size: 64})
	if _, _, ok := vp.PushDown(pkt.Packet{Size: 64}); ok {
		t.Fatal("PushDown into a full ring succeeded")
	}
	if vp.DownDrops != 1 {
		t.Fatalf("down drops = %d", vp.DownDrops)
	}
	// Up overflow reclaims the buffer.
	before := vp.Pool.Avail()
	buf, _ := vp.GetBuf()
	vp.Up.Push(Entry{})
	vp.Up.Push(Entry{})
	if _, ok := vp.PushUp(Entry{Buf: buf}); ok {
		t.Fatal("PushUp into a full ring succeeded")
	}
	if vp.UpDrops != 1 || vp.Pool.Avail() != before {
		t.Fatalf("up drops = %d, avail = %d (want buffer reclaimed)", vp.UpDrops, vp.Pool.Avail())
	}
}

func TestDeviceConfigDefaults(t *testing.T) {
	eng, al := newEngine()
	d := NewDevice(Config{Name: "n"}, eng, al)
	cfg := d.Config()
	if cfg.RxEntries != 1024 || cfg.TxEntries != 1024 || cfg.VFs != 1 || cfg.WireGbps != 40 {
		t.Fatalf("defaults = %+v", cfg)
	}
	if d.NumVFs() != 1 {
		t.Fatalf("vfs = %d", d.NumVFs())
	}
	if d.VF(0).PostedCount() != 1024 {
		t.Fatalf("posted = %d", d.VF(0).PostedCount())
	}
}
