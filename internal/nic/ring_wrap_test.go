package nic

import (
	"testing"

	"iatsim/internal/addr"
	"iatsim/internal/pkt"
	"iatsim/internal/telemetry"
)

// TestRingExactlyFull is the table test for the boundary states of every
// interesting ring geometry: with free-running head/tail counts an
// exactly-full ring (Len == entries) is distinct from an empty one
// (head == tail), no slot is sacrificed, and the first push after a pop
// reuses the oldest slot.
func TestRingExactlyFull(t *testing.T) {
	for _, entries := range []int{1, 2, 3, 7, 8, 1024} {
		al := addr.NewAllocator(0)
		r := NewRing(entries, al)
		if !r.Empty() || r.Full() || r.Len() != 0 {
			t.Fatalf("entries=%d: fresh ring empty=%v full=%v len=%d", entries, r.Empty(), r.Full(), r.Len())
		}
		for i := 0; i < entries; i++ {
			if slot := r.Push(Entry{Buf: uint64(i)}); slot != i {
				t.Fatalf("entries=%d: push %d landed in slot %d", entries, i, slot)
			}
		}
		if !r.Full() || r.Empty() || r.Len() != entries {
			t.Fatalf("entries=%d: exactly-full ring full=%v empty=%v len=%d", entries, r.Full(), r.Empty(), r.Len())
		}
		if r.Push(Entry{Buf: 999}) != -1 {
			t.Fatalf("entries=%d: push into exactly-full ring succeeded", entries)
		}
		if r.Len() != entries {
			t.Fatalf("entries=%d: rejected push changed occupancy to %d", entries, r.Len())
		}
		// Pop one: the ring is no longer full, and the freed slot (the
		// oldest) is exactly where the next push lands.
		slot, e, ok := r.Pop()
		if !ok || slot != 0 || e.Buf != 0 {
			t.Fatalf("entries=%d: first pop slot=%d buf=%d ok=%v", entries, slot, e.Buf, ok)
		}
		if r.Full() {
			t.Fatalf("entries=%d: ring still full after pop", entries)
		}
		if got := r.Push(Entry{Buf: 1000}); got != 0 {
			t.Fatalf("entries=%d: wrap push landed in slot %d, want 0", entries, got)
		}
		if !r.Full() || r.Len() != entries {
			t.Fatalf("entries=%d: refill full=%v len=%d", entries, r.Full(), r.Len())
		}
	}
}

// TestRingSlotSequenceAcrossCounterWrap pins the non-power-of-two wrap
// bug: the old code recomputed slots as head%entries from the
// free-running counts, so when head wrapped through 2^64 the slot
// sequence jumped by 2^64 mod entries (for 3 entries: ..2, 0, 0, 1..,
// repeating a slot while another still held a live entry). The
// maintained prod/cons indices advance 0,1,2,0,1,2 regardless of what
// the occupancy counts do.
func TestRingSlotSequenceAcrossCounterWrap(t *testing.T) {
	for _, entries := range []int{3, 7} {
		al := addr.NewAllocator(0)
		r := NewRing(entries, al)
		// Park the free-running counts two pushes short of the uint64
		// wrap. prod/cons stay authoritative for slot positions; the
		// counts only carry occupancy.
		r.head = ^uint64(0) - 1
		r.tail = r.head
		wantSlot := 0
		for i := 0; i < 3*entries; i++ { // crosses the wrap on push 2
			got := r.Push(Entry{Buf: uint64(i)})
			if got != wantSlot {
				t.Fatalf("entries=%d: push %d landed in slot %d, want %d", entries, i, got, wantSlot)
			}
			slot, e, ok := r.Pop()
			if !ok || slot != wantSlot || e.Buf != uint64(i) {
				t.Fatalf("entries=%d: pop %d got slot=%d buf=%d ok=%v, want slot %d buf %d",
					entries, i, slot, e.Buf, ok, wantSlot, i)
			}
			if r.Len() != 0 || !r.Empty() {
				t.Fatalf("entries=%d: occupancy drifted at op %d: len=%d", entries, i, r.Len())
			}
			if wantSlot++; wantSlot == entries {
				wantSlot = 0
			}
		}
	}
}

// TestDeliverRxAccountingAtExactlyFull drives a device ring to exactly
// full and checks the drop/occupancy accounting table: every overrun
// arrival is one drop (no double count, no occupancy movement), and the
// occupancy gauge last reads the true full depth.
func TestDeliverRxAccountingAtExactlyFull(t *testing.T) {
	eng, al := newEngine()
	d := NewDevice(Config{Name: "eth", RxEntries: 4, TxEntries: 4, VFs: 1}, eng, al)
	reg := telemetry.NewRegistry()
	d.AttachTelemetry(reg)
	vf := d.VF(0)

	cases := []struct {
		deliver   int
		wantPkts  uint64
		wantDrops uint64
		wantLen   int
	}{
		{4, 4, 0, 4}, // fills to exactly full
		{1, 4, 1, 4}, // first overrun arrival drops
		{3, 4, 4, 4}, // every further arrival drops, occupancy pinned
	}
	for i, tc := range cases {
		for k := 0; k < tc.deliver; k++ {
			d.DeliverRx(0, pkt.Packet{Size: 64}, 0)
		}
		if vf.Stats.RxPackets != tc.wantPkts || vf.Stats.RxDrops != tc.wantDrops {
			t.Fatalf("case %d: packets=%d drops=%d, want %d/%d",
				i, vf.Stats.RxPackets, vf.Stats.RxDrops, tc.wantPkts, tc.wantDrops)
		}
		if vf.Rx.Len() != tc.wantLen {
			t.Fatalf("case %d: ring len %d, want %d", i, vf.Rx.Len(), tc.wantLen)
		}
	}
	if got := reg.Counter("nic", vf.Name, "rx_drops").Value(); got != 4 {
		t.Fatalf("rx_drops counter = %d, want 4", got)
	}
	if got := reg.Gauge("nic", vf.Name, "rx_ring_occupancy").Value(); got != 4 {
		t.Fatalf("rx occupancy gauge = %v, want 4 (the true full depth)", got)
	}
}

// TestDrainTxStallAtExactlyFull: an injected nic-stall against an
// exactly-full Tx ring must not move occupancy, must not count packets,
// and must not batch any telemetry — and the post-stall drain transmits
// the exact FIFO contents with one counter update.
func TestDrainTxStallAtExactlyFull(t *testing.T) {
	eng, al := newEngine()
	d := NewDevice(Config{Name: "eth", RxEntries: 4, TxEntries: 4, VFs: 1}, eng, al)
	reg := telemetry.NewRegistry()
	d.AttachTelemetry(reg)
	d.SetFaults(&scriptedFaults{stall: []bool{true}})
	vf := d.VF(0)
	for i := 0; i < 4; i++ {
		buf, _ := vf.Pool.Get()
		if vf.Tx.Push(Entry{Pkt: pkt.Packet{Size: 64}, Buf: buf}) < 0 {
			t.Fatal("setup: Tx push failed")
		}
	}
	if !vf.Tx.Full() {
		t.Fatal("setup: Tx ring not exactly full")
	}
	if sent := d.DrainTx(0, 1e6); sent != 0 {
		t.Fatalf("stalled drain sent %d", sent)
	}
	if vf.Tx.Len() != 4 || vf.Stats.TxPackets != 0 || vf.Stats.InjectedTxStalls != 1 {
		t.Fatalf("after stall: len=%d stats=%+v", vf.Tx.Len(), vf.Stats)
	}
	if got := reg.Counter("nic", vf.Name, "tx_packets").Value(); got != 0 {
		t.Fatalf("tx_packets counter moved during stall: %d", got)
	}
	if sent := d.DrainTx(0, 1e6); sent != 4 {
		t.Fatalf("post-stall drain sent %d, want 4", sent)
	}
	if got := reg.Counter("nic", vf.Name, "tx_packets").Value(); got != 4 {
		t.Fatalf("tx_packets counter = %d, want 4", got)
	}
	if got := reg.Gauge("nic", vf.Name, "tx_ring_occupancy").Value(); got != 0 {
		t.Fatalf("tx occupancy gauge = %v, want 0", got)
	}
	if vf.Tx.Len() != 0 || !vf.Tx.Empty() {
		t.Fatalf("drained ring len=%d", vf.Tx.Len())
	}
}
