// Package nvme models an NVMe SSD — the second high-bandwidth DDIO consumer
// the paper's introduction names alongside 100Gb NICs ("NVMe-based storage
// device"). The device exposes submission/completion queue pairs; completed
// READ commands DMA their data into host buffers through the DDIO engine,
// exactly like inbound packets, so large-block storage traffic exerts the
// same Leaky DMA pressure on the two default DDIO ways that line-rate
// networking does. SPDK-style polled-mode consumption is modelled by
// workload.SPDKServer.
package nvme

import (
	"fmt"

	"iatsim/internal/addr"
	"iatsim/internal/ddio"
	"iatsim/internal/telemetry"
)

// Opcode is an NVMe command opcode (the two that matter for the cache
// study).
type Opcode int

// Opcodes.
const (
	// Read transfers block data device-to-host (a DDIO write).
	Read Opcode = iota
	// Write transfers host-to-device (a DDIO/device read).
	Write
)

// Command is one submission-queue entry.
type Command struct {
	Op Opcode
	// LBA is the logical block address (block-size units).
	LBA uint64
	// Bytes is the transfer length.
	Bytes int
	// Buf is the host DMA buffer address.
	Buf uint64
	// SubmitNS is stamped at submission for latency accounting.
	SubmitNS float64
}

// Completion is one completion-queue entry.
type Completion struct {
	Cmd        Command
	CompleteNS float64
}

// Config shapes a device.
type Config struct {
	Name string
	// QueueDepth bounds outstanding commands per queue pair (NVMe
	// devices advertise thousands; SPDK setups typically run 32-512).
	QueueDepth int
	// ReadLatencyNS / WriteLatencyNS are the media access latencies
	// (flash reads ~80us, writes absorbed by device RAM ~20us).
	ReadLatencyNS  float64
	WriteLatencyNS float64
	// BandwidthGBps caps the device's data transfer rate (a PCIe Gen3 x4
	// drive moves ~3.5 GB/s).
	BandwidthGBps float64
}

// DefaultConfig resembles a datacenter Gen3 NVMe drive.
func DefaultConfig(name string) Config {
	return Config{
		Name:           name,
		QueueDepth:     256,
		ReadLatencyNS:  80e3,
		WriteLatencyNS: 20e3,
		BandwidthGBps:  3.5,
	}
}

// QueuePair is one submission/completion queue pair bound to a consuming
// core. Ring discipline is modelled at command granularity; the doorbell
// and CQ entry cache traffic is charged to the DMA path (one line per
// completion, as CQ entries are 16B and arrive batched).
type QueuePair struct {
	ConsumerCore int

	inflight  []Completion // scheduled completions, ordered by time
	completed []Completion // ready for the host to reap
	submitted uint64
	reaped    uint64

	cqRegion addr.Region
}

// Stats counts device activity.
type Stats struct {
	Reads        uint64
	Writes       uint64
	BytesRead    uint64 // device-to-host
	BytesWritten uint64 // host-to-device
	QueueFull    uint64 // submissions rejected at full queue depth
}

// Device is the NVMe controller model. Attach its Tick to the platform via
// sim.Platform.AddMicrotickHook.
type Device struct {
	cfg   Config
	eng   *ddio.Engine
	qps   []*QueuePair
	stats Stats

	// txAcc paces data transfers at the device's bandwidth.
	txAcc float64

	telReadLat  *telemetry.Histogram // submit-to-completion, ns; nil when uninstrumented
	telWriteLat *telemetry.Histogram
	telQFull    *telemetry.Counter
}

// cmdLatencyBounds buckets submit-to-completion latencies: media
// latencies sit at ~20us (write) and ~80us (read); the upper edges catch
// bandwidth-throttled completions.
var cmdLatencyBounds = []float64{20e3, 40e3, 80e3, 120e3, 200e3, 400e3, 800e3, 1.6e6}

// AttachTelemetry resolves per-device latency histograms and the
// queue-full counter from s, scoped by device name (nil-safe).
func (d *Device) AttachTelemetry(s telemetry.Sink) {
	if s == nil {
		return
	}
	d.telReadLat = s.Histogram("nvme", d.cfg.Name, "read_latency_ns", cmdLatencyBounds)
	d.telWriteLat = s.Histogram("nvme", d.cfg.Name, "write_latency_ns", cmdLatencyBounds)
	d.telQFull = s.Counter("nvme", d.cfg.Name, "queue_full")
}

// New builds a device with n queue pairs, allocating CQ rings from al and
// moving data through eng.
func New(cfg Config, n int, eng *ddio.Engine, al *addr.Allocator) *Device {
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 256
	}
	if cfg.BandwidthGBps == 0 {
		cfg.BandwidthGBps = 3.5
	}
	d := &Device{cfg: cfg, eng: eng}
	for i := 0; i < n; i++ {
		d.qps = append(d.qps, &QueuePair{
			ConsumerCore: -1,
			cqRegion:     al.Alloc(uint64(cfg.QueueDepth)*addr.LineSize, 0),
		})
	}
	return d
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Stats returns cumulative device statistics.
func (d *Device) Stats() Stats { return d.stats }

// QP returns queue pair i.
func (d *Device) QP(i int) *QueuePair { return d.qps[i] }

// Outstanding returns the in-flight command count of queue pair i.
func (qp *QueuePair) Outstanding() int { return len(qp.inflight) + len(qp.completed) }

// Submit enqueues a command on queue pair i at time nowNS. It returns
// false (and counts QueueFull) when the pair is at its depth limit.
// Host-to-device data for writes is read immediately (the device pulls the
// payload before acknowledging, like real drives with volatile write
// caches).
func (d *Device) Submit(i int, cmd Command, nowNS float64) bool {
	qp := d.qps[i]
	if qp.Outstanding() >= d.cfg.QueueDepth {
		d.stats.QueueFull++
		d.telQFull.Inc()
		return false
	}
	cmd.SubmitNS = nowNS
	lat := d.cfg.ReadLatencyNS
	if cmd.Op == Write {
		lat = d.cfg.WriteLatencyNS
		// Pull the payload from the host now.
		d.eng.DeviceRead(cmd.Buf, cmd.Bytes)
		d.stats.Writes++
		d.stats.BytesWritten += uint64(cmd.Bytes)
	} else {
		d.stats.Reads++
		d.stats.BytesRead += uint64(cmd.Bytes)
	}
	qp.inflight = append(qp.inflight, Completion{Cmd: cmd, CompleteNS: nowNS + lat})
	qp.submitted++
	return true
}

// Tick advances the device by one microtick: commands whose media latency
// elapsed complete, their data (for reads) is DMA'd into the host through
// DDIO at the device's bandwidth, and a completion entry is posted.
func (d *Device) Tick(nowNS, dtNS float64) {
	d.txAcc += d.cfg.BandwidthGBps * dtNS // GB/s * ns = bytes
	for _, qp := range d.qps {
		remaining := qp.inflight[:0]
		for _, c := range qp.inflight {
			if c.CompleteNS > nowNS || (c.Cmd.Op == Read && float64(c.Cmd.Bytes) > d.txAcc) {
				remaining = append(remaining, c)
				continue
			}
			if c.Cmd.Op == Read {
				d.txAcc -= float64(c.Cmd.Bytes)
				// The block lands in the LLC (or leaks): the
				// Leaky DMA path for storage.
				d.eng.DeviceWrite(c.Cmd.Buf, c.Cmd.Bytes, qp.ConsumerCore)
			}
			// Completion entry (one line, batched CQ doorbell).
			slot := int(qp.reaped+uint64(len(qp.completed))) % d.cfg.QueueDepth
			d.eng.DeviceWrite(qp.cqRegion.Line(slot), addr.LineSize, qp.ConsumerCore)
			c.CompleteNS = nowNS
			if c.Cmd.Op == Read {
				d.telReadLat.Observe(nowNS - c.Cmd.SubmitNS)
			} else {
				d.telWriteLat.Observe(nowNS - c.Cmd.SubmitNS)
			}
			qp.completed = append(qp.completed, c)
		}
		qp.inflight = remaining
	}
}

// Reap removes up to max completions from queue pair i, returning them in
// completion order. The host's CQ-entry reads are the caller's cache
// accesses (workloads charge them via their execution context).
func (d *Device) Reap(i, max int) []Completion {
	qp := d.qps[i]
	n := len(qp.completed)
	if n > max {
		n = max
	}
	out := qp.completed[:n:n]
	qp.completed = qp.completed[n:]
	qp.reaped += uint64(n)
	return out
}

// CQLine returns the completion-queue line address for reap index r of
// queue pair i (the host touches it when polling).
func (d *Device) CQLine(i int, r uint64) uint64 {
	return d.qps[i].cqRegion.Line(int(r) % d.cfg.QueueDepth)
}

// String implements fmt.Stringer.
func (d *Device) String() string {
	return fmt.Sprintf("nvme{%s qd=%d}", d.cfg.Name, d.cfg.QueueDepth)
}
