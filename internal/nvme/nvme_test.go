package nvme

import (
	"testing"

	"iatsim/internal/addr"
	"iatsim/internal/cache"
	"iatsim/internal/ddio"
	"iatsim/internal/mem"
	"iatsim/internal/msr"
	"iatsim/internal/telemetry"
)

func newDevice(t *testing.T, cfg Config) (*Device, *cache.Hierarchy, *mem.Controller) {
	t.Helper()
	mc := mem.NewController(mem.Config{})
	mc.BeginEpoch(1e12)
	h := cache.NewHierarchy(cache.HierarchyConfig{
		Cores: 2,
		L1:    cache.LevelConfig{SizeBytes: 4 << 10, Ways: 4, HitCycles: 4},
		L2:    cache.LevelConfig{SizeBytes: 32 << 10, Ways: 8, HitCycles: 14},
		LLC:   cache.LLCConfig{Slices: 2, Ways: 8, SetsPerSlice: 256, HitCycles: 44},
	}, 2.3, mc)
	eng := ddio.New(msr.NewFile(), h, mc)
	return New(cfg, 1, eng, addr.NewAllocator(1<<30)), h, mc
}

func TestReadCompletesAfterLatency(t *testing.T) {
	cfg := DefaultConfig("ssd0")
	cfg.ReadLatencyNS = 1000
	d, h, _ := newDevice(t, cfg)
	cmd := Command{Op: Read, LBA: 7, Bytes: 4096, Buf: 0x100000}
	if !d.Submit(0, cmd, 0) {
		t.Fatal("submit failed")
	}
	d.Tick(500, 500)
	if len(d.Reap(0, 8)) != 0 {
		t.Fatal("completed before the media latency elapsed")
	}
	d.Tick(1500, 1000)
	comps := d.Reap(0, 8)
	if len(comps) != 1 {
		t.Fatalf("reaped %d completions", len(comps))
	}
	// The block was DMA'd into the LLC via DDIO.
	if !h.LLC().Contains(0x100000) {
		t.Fatal("read data not placed through DDIO")
	}
	if st := d.Stats(); st.Reads != 1 || st.BytesRead != 4096 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWritePullsPayloadImmediately(t *testing.T) {
	cfg := DefaultConfig("ssd0")
	d, _, mc := newDevice(t, cfg)
	before := mc.Stats().BytesRead
	if !d.Submit(0, Command{Op: Write, Bytes: 8192, Buf: 0x200000}, 0) {
		t.Fatal("submit failed")
	}
	// Payload absent from the LLC: the device pulls it from memory.
	if mc.Stats().BytesRead != before+8192 {
		t.Fatalf("device pulled %d bytes", mc.Stats().BytesRead-before)
	}
	d.Tick(cfg.WriteLatencyNS+1, 1000)
	if len(d.Reap(0, 8)) != 1 {
		t.Fatal("write never completed")
	}
}

func TestQueueDepthEnforced(t *testing.T) {
	cfg := DefaultConfig("ssd0")
	cfg.QueueDepth = 4
	d, _, _ := newDevice(t, cfg)
	for i := 0; i < 4; i++ {
		if !d.Submit(0, Command{Op: Read, Bytes: 512, Buf: uint64(0x300000 + i*512)}, 0) {
			t.Fatalf("submit %d failed", i)
		}
	}
	if d.Submit(0, Command{Op: Read, Bytes: 512, Buf: 0x400000}, 0) {
		t.Fatal("submit beyond queue depth succeeded")
	}
	if d.Stats().QueueFull != 1 {
		t.Fatalf("queue-full count = %d", d.Stats().QueueFull)
	}
}

func TestBandwidthPacesReads(t *testing.T) {
	cfg := DefaultConfig("ssd0")
	cfg.ReadLatencyNS = 100
	cfg.BandwidthGBps = 1 // 1 byte/ns
	d, _, _ := newDevice(t, cfg)
	// Two 1MB reads: at 1 byte/ns only one fits a 1.1ms tick budget.
	d.Submit(0, Command{Op: Read, Bytes: 1 << 20, Buf: 0x500000}, 0)
	d.Submit(0, Command{Op: Read, Bytes: 1 << 20, Buf: 0x700000}, 0)
	d.Tick(1.1e6, 1.1e6)
	if n := len(d.Reap(0, 8)); n != 1 {
		t.Fatalf("%d reads completed in one bandwidth window, want 1", n)
	}
	d.Tick(2.2e6, 1.1e6)
	if n := len(d.Reap(0, 8)); n != 1 {
		t.Fatalf("second read did not complete: %d", n)
	}
}

func TestCompletionsCarrySubmitTime(t *testing.T) {
	cfg := DefaultConfig("ssd0")
	cfg.ReadLatencyNS = 1000
	d, _, _ := newDevice(t, cfg)
	d.Submit(0, Command{Op: Read, Bytes: 512, Buf: 0x900000}, 42)
	d.Tick(5000, 5000)
	comps := d.Reap(0, 8)
	if len(comps) != 1 || comps[0].Cmd.SubmitNS != 42 {
		t.Fatalf("completions = %+v", comps)
	}
	if comps[0].CompleteNS < 42+1000 {
		t.Fatalf("completed too early: %v", comps[0].CompleteNS)
	}
}

func TestReapRespectsMax(t *testing.T) {
	cfg := DefaultConfig("ssd0")
	cfg.ReadLatencyNS = 1
	d, _, _ := newDevice(t, cfg)
	for i := 0; i < 6; i++ {
		d.Submit(0, Command{Op: Read, Bytes: 512, Buf: uint64(0xA00000 + i*512)}, 0)
	}
	d.Tick(1e6, 1e6)
	if n := len(d.Reap(0, 4)); n != 4 {
		t.Fatalf("reaped %d, want 4", n)
	}
	if n := len(d.Reap(0, 4)); n != 2 {
		t.Fatalf("reaped %d, want 2", n)
	}
}

func TestTelemetryLatencyHistograms(t *testing.T) {
	cfg := DefaultConfig("ssd0")
	cfg.ReadLatencyNS = 1000
	d, _, _ := newDevice(t, cfg)
	reg := telemetry.NewRegistry()
	d.AttachTelemetry(reg)
	d.Submit(0, Command{Op: Read, Bytes: 512, Buf: 0x900000}, 0)
	d.Submit(0, Command{Op: Write, Bytes: 512, Buf: 0x901000}, 0)
	d.Tick(1e6, 1e6)
	d.Reap(0, 8)

	find := func(name string) *telemetry.HistogramData {
		for _, m := range reg.Snapshot(1e6).Metrics {
			if m.Subsystem == "nvme" && m.Scope == "ssd0" && m.Name == name {
				return m.Hist
			}
		}
		return nil
	}
	r := find("read_latency_ns")
	if r == nil || r.Count != 1 {
		t.Fatalf("read latency histogram = %+v, want 1 sample", r)
	}
	// Completion latency includes the media latency.
	if r.Sum < float64(cfg.ReadLatencyNS) {
		t.Fatalf("read latency sum %v < media latency %v", r.Sum, cfg.ReadLatencyNS)
	}
	if w := find("write_latency_ns"); w == nil || w.Count != 1 {
		t.Fatalf("write latency histogram = %+v, want 1 sample", w)
	}
}

func TestTelemetryQueueFull(t *testing.T) {
	cfg := DefaultConfig("ssd0")
	cfg.QueueDepth = 1
	d, _, _ := newDevice(t, cfg)
	reg := telemetry.NewRegistry()
	d.AttachTelemetry(reg)
	d.Submit(0, Command{Op: Read, Bytes: 512, Buf: 0xB00000}, 0)
	if d.Submit(0, Command{Op: Read, Bytes: 512, Buf: 0xB01000}, 0) {
		t.Fatal("second submit should hit the queue-depth limit")
	}
	for _, m := range reg.Snapshot(0).Metrics {
		if m.Name == "queue_full" {
			if m.Counter != 1 {
				t.Fatalf("queue_full = %d, want 1", m.Counter)
			}
			return
		}
	}
	t.Fatal("no queue_full counter in snapshot")
}
