// Package pkt defines the network packet and flow abstractions used by the
// NIC model, the traffic generators and the networking workloads.
package pkt

import "math/rand"

// MinSize and MTUSize bound the packet sizes used across the experiments
// (64B minimum Ethernet frame to the 1500B MTU the paper rounds to 1.5KB).
const (
	MinSize = 64
	MTUSize = 1500
)

// Flow is a 5-tuple plus VLAN tag identifying a network flow.
type Flow struct {
	Src, Dst uint32
	SrcPort  uint16
	DstPort  uint16
	Proto    uint8
	VLAN     uint16
}

// Hash returns a well-mixed 64-bit hash of the flow, used by flow tables
// (l3fwd, OVS EMC, NF state) for bucket selection.
func (f Flow) Hash() uint64 {
	x := uint64(f.Src)<<32 | uint64(f.Dst)
	x ^= uint64(f.SrcPort)<<48 | uint64(f.DstPort)<<32 | uint64(f.Proto)<<16 | uint64(f.VLAN)
	x *= 0x9E3779B97F4A7C15
	x ^= x >> 32
	x *= 0xD6E8FEB86659FD93
	x ^= x >> 29
	return x
}

// Packet is a network packet: a flow identity, a wire size, and optional
// application payload metadata interpreted by workloads (e.g. a KV request).
type Packet struct {
	Flow Flow
	Size int // bytes on the wire (excl. preamble/IFG)

	// App carries opaque application-level request data (e.g. a
	// ycsb.Request for the KVS workloads). nil for plain traffic.
	App any

	// ArrivalNS is stamped by the NIC when the packet is DMA'd into the
	// host, so workloads can report queueing-inclusive latencies.
	ArrivalNS float64
}

// Lines returns the number of cache lines the packet payload occupies.
func (p Packet) Lines() int { return (p.Size + 63) / 64 }

// FlowSet deterministically enumerates n distinct flows and picks among
// them, emulating the generator-side "N flows" knob of the paper's
// experiments (e.g. the 1M-flow table of the l3fwd test, Fig. 3, or the
// flow-count sweep of Fig. 9).
type FlowSet struct {
	n    int
	vlan uint16
	seed uint64
}

// NewFlowSet builds a set of n flows with the given VLAN tag. Two sets with
// the same parameters enumerate identical flows, so a traffic generator and
// the workload that pre-populates a flow table agree on the universe.
func NewFlowSet(n int, vlan uint16, seed uint64) *FlowSet {
	if n < 1 {
		n = 1
	}
	return &FlowSet{n: n, vlan: vlan, seed: seed}
}

// Size returns the number of distinct flows in the set.
func (s *FlowSet) Size() int { return s.n }

// At returns the i-th flow of the set (i taken modulo the set size).
func (s *FlowSet) At(i int) Flow {
	i %= s.n
	if i < 0 {
		i += s.n
	}
	x := (uint64(i)+1)*0x9E3779B97F4A7C15 + s.seed
	x ^= x >> 31
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	return Flow{
		Src:     uint32(x),
		Dst:     uint32(x >> 32),
		SrcPort: uint16(x>>16) | 1,
		DstPort: uint16(i)&0x3FFF | 1,
		Proto:   17, // UDP
		VLAN:    s.vlan,
	}
}

// Pick returns a uniformly random flow from the set.
func (s *FlowSet) Pick(rng *rand.Rand) Flow { return s.At(rng.Intn(s.n)) }
