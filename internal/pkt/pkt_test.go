package pkt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFlowHashDeterministic(t *testing.T) {
	f := Flow{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Proto: 17, VLAN: 5}
	if f.Hash() != f.Hash() {
		t.Fatal("hash not deterministic")
	}
}

func TestFlowHashSensitivity(t *testing.T) {
	base := Flow{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Proto: 17}
	variants := []Flow{
		{Src: 2, Dst: 2, SrcPort: 3, DstPort: 4, Proto: 17},
		{Src: 1, Dst: 3, SrcPort: 3, DstPort: 4, Proto: 17},
		{Src: 1, Dst: 2, SrcPort: 4, DstPort: 4, Proto: 17},
		{Src: 1, Dst: 2, SrcPort: 3, DstPort: 5, Proto: 17},
		{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Proto: 6},
		{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Proto: 17, VLAN: 1},
	}
	for i, v := range variants {
		if v.Hash() == base.Hash() {
			t.Errorf("variant %d collides with base", i)
		}
	}
}

func TestFlowHashDistribution(t *testing.T) {
	// Hashes of a flow set must spread evenly over a small modulus.
	s := NewFlowSet(1<<14, 0, 1)
	const buckets = 16
	counts := make([]int, buckets)
	for i := 0; i < s.Size(); i++ {
		counts[s.At(i).Hash()%buckets]++
	}
	want := s.Size() / buckets
	for b, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Errorf("bucket %d has %d entries, want ~%d", b, c, want)
		}
	}
}

func TestFlowSetDistinctAndStable(t *testing.T) {
	s1 := NewFlowSet(1000, 7, 42)
	s2 := NewFlowSet(1000, 7, 42)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		if s1.At(i) != s2.At(i) {
			t.Fatalf("flow %d differs between identically seeded sets", i)
		}
		h := s1.At(i).Hash()
		if seen[h] {
			t.Fatalf("duplicate flow hash at index %d", i)
		}
		seen[h] = true
		if s1.At(i).VLAN != 7 {
			t.Fatalf("flow %d has VLAN %d", i, s1.At(i).VLAN)
		}
	}
}

func TestFlowSetAtWraps(t *testing.T) {
	s := NewFlowSet(10, 0, 1)
	if s.At(10) != s.At(0) || s.At(-1) != s.At(9) {
		t.Fatal("At should wrap modulo size")
	}
}

func TestFlowSetPickInRange(t *testing.T) {
	s := NewFlowSet(8, 0, 1)
	rng := rand.New(rand.NewSource(1))
	members := map[Flow]bool{}
	for i := 0; i < 8; i++ {
		members[s.At(i)] = true
	}
	for i := 0; i < 100; i++ {
		if !members[s.Pick(rng)] {
			t.Fatal("Pick returned a flow outside the set")
		}
	}
}

func TestPacketLines(t *testing.T) {
	cases := []struct{ size, lines int }{
		{64, 1}, {65, 2}, {128, 2}, {1500, 24}, {1, 1},
	}
	for _, c := range cases {
		if got := (Packet{Size: c.size}).Lines(); got != c.lines {
			t.Errorf("Lines(%d) = %d, want %d", c.size, got, c.lines)
		}
	}
}

func TestNewFlowSetMinimumSize(t *testing.T) {
	if NewFlowSet(0, 0, 1).Size() != 1 {
		t.Fatal("zero-flow set should clamp to 1")
	}
}

// Property: ports are never zero (valid transport headers).
func TestFlowSetPortsNonZeroProperty(t *testing.T) {
	f := func(i uint16, seed uint64) bool {
		s := NewFlowSet(1<<12, 0, seed)
		fl := s.At(int(i))
		return fl.SrcPort != 0 && fl.DstPort != 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
