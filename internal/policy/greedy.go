package policy

import "fmt"

// Greedy is the deliberately naive comparison point: every interval it
// finds the single largest demander — DDIO by write-allocate miss rate, or
// a tenant group by LLC miss rate — and grants it one way, with no
// stability analysis, no hysteresis, and no reclaim. It demonstrates what
// the IAT FSM's damping actually buys: under shifting load Greedy ratchets
// allocations up until everything saturates and then can only hold.
type Greedy struct {
	cur Sample
	h   Health
}

// NewGreedy returns the grant-the-largest-demander policy.
func NewGreedy() *Greedy { return &Greedy{} }

// Name implements Policy.
func (p *Greedy) Name() string { return "greedy" }

// Kind implements Policy.
func (p *Greedy) Kind() Kind { return KindGreedy }

// Health implements Policy.
func (p *Greedy) Health() Health { return p.h }

// Reset implements Policy (memoryless).
func (p *Greedy) Reset() {}

// Observe implements Policy.
func (p *Greedy) Observe(s Sample) { p.cur = s }

// Decide implements Policy.
func (p *Greedy) Decide() Actions {
	s := p.cur
	L := s.Limits
	p.h.Ticks++

	// The demand floor reuses detect()'s reference-rate noise floor so an
	// idle system reads as having no demander at all.
	floor := L.ThresholdMissLowPerSec / 10
	const (
		demandNone = iota
		demandDDIO
		demandGroup
	)
	kind := demandNone
	bestRate := floor
	var bestG *GroupView
	// DDIO is considered first, so it wins exact ties; groups tie-break
	// in registration order (strict > keeps the earlier winner).
	if s.DDIOMissPS > bestRate {
		kind = demandDDIO
		bestRate = s.DDIOMissPS
	}
	for i := range s.Groups {
		g := &s.Groups[i]
		if g.MissPS > bestRate {
			kind = demandGroup
			bestG = g
			bestRate = g.MissPS
		}
	}

	var a Actions
	switch kind {
	case demandDDIO:
		if !L.DisableDDIOAdjust && s.DDIOWays < L.DDIOWaysMax {
			target := s.DDIOWays + 1
			st := IODemand
			if target >= L.DDIOWaysMax {
				st = HighKeep
			}
			a = Actions{State: st, DDIOWays: target, Desc: fmt.Sprintf("greedy: ddio=%d", target)}
		} else {
			a = Actions{State: HighKeep, DDIOWays: s.DDIOWays, Desc: "greedy: ddio saturated"}
		}
	case demandGroup:
		if !L.DisableTenantAdjust && s.totalWidth()+1 <= s.NumWays {
			a = Actions{State: CoreDemand, DDIOWays: s.DDIOWays,
				Grow: []int{bestG.CLOS}, Desc: fmt.Sprintf("greedy: +1 way clos %d", bestG.CLOS)}
		} else {
			a = Actions{State: HighKeep, DDIOWays: s.DDIOWays, Desc: "greedy: tenants saturated"}
		}
	default:
		a = Actions{Stable: true, State: LowKeep, DDIOWays: s.DDIOWays, Desc: "stable"}
	}
	p.h.note(a, s.DDIOWays)
	return a
}
