package policy

import (
	"fmt"
	"sort"
)

// IAT is the paper's decision logic — Sec. IV-B's special cases routing
// into the Mealy FSM of Fig. 6 — extracted verbatim from the daemon. Given
// the same sample sequence it produces byte-identical action strings and
// the same re-allocation operations as the pre-extraction daemon (pinned
// by the regression tests in internal/core); the daemon retains the
// mechanism (packing, programming, shuffle resolution, self-healing).
type IAT struct {
	cur     Sample
	haveCur bool
	prev    Sample
	have    bool
	h       Health
}

// NewIAT returns the paper's IAT policy.
func NewIAT() *IAT { return &IAT{} }

// Name implements Policy.
func (p *IAT) Name() string { return "iat" }

// Kind implements Policy.
func (p *IAT) Kind() Kind { return KindIAT }

// Health implements Policy.
func (p *IAT) Health() Health { return p.h }

// Reset implements Policy: the comparison baseline is dropped, so the next
// Decide warms up again (tenant change or degradation recovery).
func (p *IAT) Reset() {
	p.haveCur = false
	p.have = false
}

// Observe implements Policy.
func (p *IAT) Observe(s Sample) {
	p.cur = s
	p.haveCur = true
}

// Decide implements Policy.
func (p *IAT) Decide() Actions {
	s := p.cur
	p.h.Ticks++
	if !p.haveCur {
		a := Actions{Warmup: true, State: s.State, DDIOWays: s.DDIOWays}
		p.h.note(a, s.DDIOWays)
		return a
	}
	if !p.have {
		// First observed sample becomes the comparison baseline — the
		// daemon's silent warmup tick.
		p.prev = s
		p.have = true
		a := Actions{Warmup: true, State: s.State, DDIOWays: s.DDIOWays}
		p.h.note(a, s.DDIOWays)
		return a
	}
	ch := detect(s, p.prev)
	prev := p.prev
	p.prev = s

	var a Actions
	if !ch.any {
		// Stability gates TRANSITIONS, not progression: the paper's
		// I/O Demand and Reclaim states keep moving one way per
		// iteration until they reach DDIO_WAYS_MAX / DDIO_WAYS_MIN
		// (Sec. IV-C), even when the counters have settled.
		switch {
		case s.State == Reclaim:
			a = actFor(Reclaim, s)
			a.Continue = true
			a.Desc = "continue: " + a.Desc
		case s.State == IODemand && s.DDIOMissPS > s.Limits.ThresholdMissLowPerSec:
			a = actFor(IODemand, s)
			a.Continue = true
			a.Desc = "continue: " + a.Desc
		default:
			a = Actions{Stable: true, State: s.State, DDIOWays: s.DDIOWays, Desc: "stable"}
		}
	} else {
		a = p.decide(s, prev, ch)
	}
	p.h.note(a, s.DDIOWays)
	return a
}

// changes summarises what moved between two interval samples.
type changes struct {
	any         bool
	ddio        bool
	hitDown     bool
	missUp      bool
	missDown    bool
	bigMissDrop bool
	refsUp      bool
	// groups whose IPC changed along with LLC refs/misses
	coreChanged []int // CLOS ids
	// groups with only-IPC changes are ignored per Sec. IV-B case (1)
}

// relDelta is the relative change of cur vs prev with a noise floor on the
// denominator.
func relDelta(cur, prev, floor float64) float64 {
	denom := prev
	if denom < floor {
		denom = floor
	}
	if denom == 0 {
		if cur == 0 {
			return 0
		}
		return 1
	}
	return (cur - prev) / denom
}

// detect compares two samples under cur's thresholds.
func detect(cur, prev Sample) changes {
	T := cur.Limits.ThresholdStable
	const ipcFloor = 0.05
	refsFloor := cur.Limits.ThresholdMissLowPerSec / 10
	ddioFloor := cur.Limits.ThresholdMissLowPerSec / 20

	var ch changes
	relHit := relDelta(cur.DDIOHitPS, prev.DDIOHitPS, ddioFloor)
	relMiss := relDelta(cur.DDIOMissPS, prev.DDIOMissPS, ddioFloor)
	ch.ddio = relHit > T || relHit < -T || relMiss > T || relMiss < -T
	ch.hitDown = relHit < -T
	ch.missUp = relMiss > T
	ch.missDown = relMiss < -T
	ch.bigMissDrop = relMiss < -cur.Limits.MissDropFactor
	ch.refsUp = relDelta(cur.TotalRefsPS, prev.TotalRefsPS, refsFloor) > T
	ch.any = ch.ddio

	for i := range cur.Groups {
		g := &cur.Groups[i]
		var pg GroupView
		if pv := prev.group(g.CLOS); pv != nil {
			pg = *pv
		}
		ipcCh := relDelta(g.IPC, pg.IPC, ipcFloor)
		refsCh := relDelta(g.RefsPS, pg.RefsPS, refsFloor)
		missCh := relDelta(g.MissPS, pg.MissPS, refsFloor)
		ipcMoved := ipcCh > T || ipcCh < -T
		llcMoved := refsCh > T || refsCh < -T || missCh > T || missCh < -T
		if ipcMoved || llcMoved {
			ch.any = true
		}
		if ipcMoved && llcMoved {
			ch.coreChanged = append(ch.coreChanged, g.CLOS)
		}
	}
	sort.Ints(ch.coreChanged)
	return ch
}

// decide routes an unstable iteration through the special cases of
// Sec. IV-B and the FSM of Sec. IV-C.
func (p *IAT) decide(s, prev Sample, ch changes) Actions {
	L := s.Limits
	// Case (1): IPC-only change with no LLC and no DDIO movement is
	// neither cache/memory nor I/O; detect() already excludes such
	// groups from coreChanged, so if nothing else moved we are done.
	if !ch.ddio && len(ch.coreChanged) == 0 {
		return Actions{State: s.State, DDIOWays: s.DDIOWays, Desc: "ipc-only: ignored"}
	}

	// Case (2): a tenant's IPC and LLC behaviour changed while the I/O is
	// not pressing the LLC (no DDIO-miss movement and a quiet write-
	// allocate rate) — pure core demand for LLC space; serve it with the
	// core-side allocator. The DDIO *hit* rate may still move (it tracks
	// delivered throughput), which is why the gate is on misses.
	ioQuiet := s.DDIOMissPS < L.ThresholdMissLowPerSec && !ch.missUp
	if !ch.ddio || (ioQuiet && len(ch.coreChanged) > 0) {
		if L.DisableTenantAdjust {
			return Actions{State: s.State, DDIOWays: s.DDIOWays, Desc: "core-demand (tenant adjust disabled)"}
		}
		if g := pickCoreChanged(s, prev, ch.coreChanged); g != nil {
			if s.totalWidth()+1 <= s.NumWays {
				return Actions{
					State: s.State, DDIOWays: s.DDIOWays,
					Grow: []int{g.CLOS},
					Desc: fmt.Sprintf("case2: +1 way for clos %d", g.CLOS),
				}
			}
		}
		return Actions{State: s.State, DDIOWays: s.DDIOWays, Desc: "case2: no action"}
	}

	fsm := p.fsm(s, ch)
	// Case (3): a non-I/O tenant overlapping DDIO changed together with
	// the DDIO counters — try shuffling first; if the shuffle writes no
	// register the daemon falls through to the FSM decision.
	if !L.DisableShuffle && overlappedNonIOChanged(s, ch.coreChanged) {
		return Actions{
			State: s.State, DDIOWays: s.DDIOWays,
			Desc: "case3: shuffled", TryShuffle: true, Fallback: &fsm,
		}
	}
	return fsm
}

// fsm runs one Mealy transition + entry action and renders the daemon's
// "From->To action" description (To is the state act() settles in, which
// may differ from the transition target on the HighKeep/LowKeep entries).
func (p *IAT) fsm(s Sample, ch changes) Actions {
	from := s.State
	next := transition(s, ch)
	a := actFor(next, s)
	a.Desc = fmt.Sprintf("%s->%s %s", from, a.State, a.Desc)
	return a
}

// pickCoreChanged chooses the group whose LLC miss rate rose the most.
func pickCoreChanged(cur, prev Sample, closes []int) *GroupView {
	var best *GroupView
	bestDelta := 0.0
	for _, clos := range closes {
		g := cur.group(clos)
		if g == nil {
			continue
		}
		var prevMR float64
		if pg := prev.group(clos); pg != nil {
			prevMR = pg.MissRate
		}
		delta := g.MissRate - prevMR
		if delta > bestDelta {
			best, bestDelta = g, delta
		}
	}
	return best
}

// overlappedNonIOChanged reports whether any changed group is non-I/O and
// currently overlaps the DDIO ways.
func overlappedNonIOChanged(s Sample, closes []int) bool {
	for _, clos := range closes {
		g := s.group(clos)
		if g == nil || g.IO {
			continue
		}
		if g.Mask.Overlaps(s.DDIOMask) {
			return true
		}
	}
	return false
}

// transition implements the Mealy FSM of Fig. 6.
func transition(s Sample, ch changes) State {
	missHigh := s.DDIOMissPS > s.Limits.ThresholdMissLowPerSec
	switch s.State {
	case LowKeep:
		if missHigh {
			if ch.hitDown && ch.refsUp {
				return CoreDemand // (3) in Fig. 6
			}
			return IODemand // (1)
		}
		return LowKeep
	case IODemand:
		if ch.hitDown && !ch.missDown {
			return CoreDemand // (7)
		}
		if ch.bigMissDrop || !missHigh {
			return Reclaim // (6)
		}
		return IODemand // (5), HighKeep entry handled by actFor()
	case HighKeep:
		if ch.hitDown && !ch.missDown {
			return CoreDemand // (12)
		}
		if ch.bigMissDrop || !missHigh {
			return Reclaim // (11)
		}
		return HighKeep
	case CoreDemand:
		if ch.missDown {
			return Reclaim // (8)
		}
		if ch.missUp && !ch.hitDown {
			return IODemand // (4)
		}
		return CoreDemand
	case Reclaim:
		if ch.missUp && missHigh {
			if ch.hitDown {
				return CoreDemand // (9)
			}
			return IODemand // (13)
		}
		return Reclaim // (2) to LowKeep handled by actFor()
	}
	return s.State
}

// actFor computes the LLC Re-alloc for the (new) state and its
// description — the policy-side port of the daemon's act().
func actFor(state State, s Sample) Actions {
	L := s.Limits
	a := Actions{State: state, DDIOWays: s.DDIOWays}
	switch state {
	case IODemand:
		if L.DisableDDIOAdjust {
			a.Desc = "(ddio adjust disabled)"
			return a
		}
		w := s.DDIOWays
		if w < L.DDIOWaysMax {
			w += growthSteps(s.DDIOMissPS, L)
			if w > L.DDIOWaysMax {
				w = L.DDIOWaysMax
			}
			a.DDIOWays = w
		}
		if w >= L.DDIOWaysMax {
			a.State = HighKeep // (10)
			a.Desc = fmt.Sprintf("ddio=%d (max, ->HighKeep)", w)
			return a
		}
		a.Desc = fmt.Sprintf("ddio=%d", w)
		return a
	case CoreDemand:
		if L.DisableTenantAdjust {
			a.Desc = "(tenant adjust disabled)"
			return a
		}
		g := selectCoreDemand(s)
		if g != nil && s.totalWidth()+1 <= s.NumWays {
			a.Grow = []int{g.CLOS}
			a.Desc = fmt.Sprintf("+1 way clos %d", g.CLOS)
			return a
		}
		a.Desc = "no grow candidate"
		return a
	case Reclaim:
		a = reclaimOne(s)
		if a.DDIOWays <= L.DDIOWaysMin {
			a.State = LowKeep // (2)
			a.Desc += " ->LowKeep"
		}
		return a
	case LowKeep, HighKeep:
		a.Desc = "hold"
		return a
	}
	a.Desc = ""
	return a
}

// selectCoreDemand picks the group to grow in the Core Demand state:
// the software stack under the aggregation model, otherwise the I/O tenant
// with the largest LLC miss-rate increase (Sec. IV-D).
func selectCoreDemand(s Sample) *GroupView {
	for i := range s.Groups {
		if s.Groups[i].Stack {
			return &s.Groups[i]
		}
	}
	var best *GroupView
	bestDelta := -1.0
	for i := range s.Groups {
		g := &s.Groups[i]
		if !g.IO {
			continue
		}
		// Faithful port of a daemon quirk: the "previous" miss rate it
		// compared against had already been overwritten with the current
		// sample's at poll time, so the delta is identically zero (NaN
		// when the rate is NaN, which loses against bestDelta) and the
		// first I/O group in registration order wins.
		delta := g.MissRate - g.MissRate
		if delta > bestDelta {
			best, bestDelta = g, delta
		}
	}
	return best
}

// growthSteps returns how many ways one iteration grants under the
// configured growth policy.
func growthSteps(missPS float64, L Limits) int {
	if !L.UCPGrowth {
		return 1
	}
	steps := 1
	for x := missPS; x > 4*L.ThresholdMissLowPerSec && steps < 3; x /= 4 {
		steps++
	}
	return steps
}

// reclaimOne takes one way back from DDIO or from an over-provisioned
// tenant, preferring DDIO while the I/O is quiet.
func reclaimOne(s Sample) Actions {
	L := s.Limits
	a := Actions{State: Reclaim, DDIOWays: s.DDIOWays}
	quietIO := s.DDIOMissPS < L.ThresholdMissLowPerSec
	if !L.DisableDDIOAdjust && quietIO && s.DDIOWays > L.DDIOWaysMin {
		a.DDIOWays = s.DDIOWays - 1
		a.Desc = fmt.Sprintf("ddio=%d", a.DDIOWays)
		return a
	}
	if !L.DisableTenantAdjust {
		var victim *GroupView
		for i := range s.Groups {
			g := &s.Groups[i]
			if g.Width <= 1 || g.MissRate > L.TenantMissRateFloor {
				continue
			}
			if victim == nil || g.RefsPS < victim.RefsPS {
				victim = g
			}
		}
		if victim != nil {
			a.Shrink = []int{victim.CLOS}
			a.Desc = fmt.Sprintf("-1 way clos %d", victim.CLOS)
			return a
		}
	}
	if !L.DisableDDIOAdjust && s.DDIOWays > L.DDIOWaysMin {
		a.DDIOWays = s.DDIOWays - 1
		a.Desc = fmt.Sprintf("ddio=%d", a.DDIOWays)
		return a
	}
	a.Desc = "nothing to reclaim"
	return a
}
