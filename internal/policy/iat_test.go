package policy

import (
	"strings"
	"testing"

	"iatsim/internal/cache"
)

// limits returns the paper's Table II limits at a 100ms interval.
func limits() Limits {
	return Limits{
		ThresholdStable:        0.03,
		ThresholdMissLowPerSec: 1e6,
		DDIOWaysMin:            1,
		DDIOWaysMax:            6,
		MissDropFactor:         0.5,
		TenantMissRateFloor:    0.05,
	}
}

// sample builds a minimal sample in state st with ddio ways and a DDIO
// miss rate.
func sample(st State, ddio int, missPS float64) Sample {
	return Sample{
		State:      st,
		NumWays:    11,
		DDIOWays:   ddio,
		DDIOMask:   cache.ContiguousMask(11-ddio, ddio),
		Limits:     limits(),
		DDIOMissPS: missPS,
	}
}

// TestFSMTransitionTable pins the Mealy FSM against the paper's Fig. 6,
// edge by edge (ported from internal/core when the FSM moved here). Each
// case fabricates the counter condition the paper describes and asserts
// the resulting state.
func TestFSMTransitionTable(t *testing.T) {
	const missHigh, missLow = 5e6, 1e3
	cases := []struct {
		name   string
		from   State
		ch     changes
		missPS float64
		want   State
	}{
		// ① Low Keep -> I/O Demand: miss count crosses THRESHOLD_MISS_LOW.
		{"1:lowkeep->iodemand", LowKeep, changes{missUp: true}, missHigh, IODemand},
		// ③ Low Keep -> Core Demand: misses high, hits falling, refs rising.
		{"3:lowkeep->coredemand", LowKeep, changes{hitDown: true, refsUp: true}, missHigh, CoreDemand},
		// Low Keep self-loop while I/O is quiet.
		{"lowkeep-hold", LowKeep, changes{missUp: true}, missLow, LowKeep},
		// ⑤ I/O Demand self-loop while misses persist.
		{"5:iodemand-hold", IODemand, changes{missUp: true}, missHigh, IODemand},
		// ⑥ I/O Demand -> Reclaim on a significant miss drop.
		{"6:iodemand->reclaim", IODemand, changes{bigMissDrop: true, missDown: true}, missHigh, Reclaim},
		// I/O Demand -> Reclaim when misses fall below the threshold.
		{"iodemand->reclaim-low", IODemand, changes{missDown: true}, missLow, Reclaim},
		// ⑦ I/O Demand -> Core Demand: hits fall without a miss decrease.
		{"7:iodemand->coredemand", IODemand, changes{hitDown: true, missUp: true}, missHigh, CoreDemand},
		// ⑪ High Keep -> Reclaim on a significant miss drop.
		{"11:highkeep->reclaim", HighKeep, changes{bigMissDrop: true, missDown: true}, missHigh, Reclaim},
		// ⑫ High Keep -> Core Demand: hits fall, misses hold.
		{"12:highkeep->coredemand", HighKeep, changes{hitDown: true}, missHigh, CoreDemand},
		// High Keep holds while misses persist.
		{"highkeep-hold", HighKeep, changes{missUp: true}, missHigh, HighKeep},
		// ⑧ Core Demand -> Reclaim when the miss count decreases.
		{"8:coredemand->reclaim", CoreDemand, changes{missDown: true}, missHigh, Reclaim},
		// ④ Core Demand -> I/O Demand: more misses, hits not falling.
		{"4:coredemand->iodemand", CoreDemand, changes{missUp: true}, missHigh, IODemand},
		// Core Demand self-loop otherwise.
		{"coredemand-hold", CoreDemand, changes{refsUp: true}, missHigh, CoreDemand},
		// ⑬ Reclaim -> I/O Demand on a meaningful miss increase.
		{"13:reclaim->iodemand", Reclaim, changes{missUp: true}, missHigh, IODemand},
		// ⑨ Reclaim -> Core Demand: miss increase with falling hits.
		{"9:reclaim->coredemand", Reclaim, changes{missUp: true, hitDown: true}, missHigh, CoreDemand},
		// ② Reclaim self-loop while quiet (reaches Low Keep via actFor()).
		{"2:reclaim-hold", Reclaim, changes{missDown: true}, missLow, Reclaim},
	}
	for _, c := range cases {
		s := sample(c.from, 2, c.missPS)
		if got := transition(s, c.ch); got != c.want {
			t.Errorf("%s: %v -> %v, want %v", c.name, c.from, got, c.want)
		}
	}
}

// TestFSMEntryActionsOnBoundaries pins the actFor() boundary behaviour: ⑩
// (I/O Demand reaching DDIO_WAYS_MAX enters High Keep) and ② (Reclaim
// reaching DDIO_WAYS_MIN enters Low Keep).
func TestFSMEntryActionsOnBoundaries(t *testing.T) {
	L := limits()

	// ⑩: at max-1 ways, one more grow lands in High Keep.
	s := sample(IODemand, L.DDIOWaysMax-1, 5e6)
	a := actFor(IODemand, s)
	if a.State != HighKeep || a.DDIOWays != L.DDIOWaysMax {
		t.Fatalf("after max grow: state=%v ways=%d", a.State, a.DDIOWays)
	}
	if !strings.Contains(a.Desc, "->HighKeep") {
		t.Fatalf("desc %q lacks HighKeep entry", a.Desc)
	}

	// ②: at min+1 ways, one reclaim lands in Low Keep.
	s = sample(Reclaim, L.DDIOWaysMin+1, 0)
	a = actFor(Reclaim, s)
	if a.State != LowKeep || a.DDIOWays != L.DDIOWaysMin {
		t.Fatalf("after min reclaim: state=%v ways=%d", a.State, a.DDIOWays)
	}
	if !strings.Contains(a.Desc, "->LowKeep") {
		t.Fatalf("desc %q lacks LowKeep entry", a.Desc)
	}
}

func TestRelDelta(t *testing.T) {
	if relDelta(110, 100, 1) != 0.1 {
		t.Error("basic delta wrong")
	}
	if relDelta(0, 0, 0) != 0 {
		t.Error("zero/zero should be 0")
	}
	if relDelta(5, 0, 0) != 1 {
		t.Error("growth from zero should saturate at 1")
	}
	if d := relDelta(10, 1, 100); d != 0.09 {
		t.Errorf("floored delta = %v", d)
	}
}

func TestUCPGrowthSteps(t *testing.T) {
	L := limits()
	L.UCPGrowth = true
	// At 1x the threshold: single step; at 100x: capped at 3.
	if s := growthSteps(L.ThresholdMissLowPerSec, L); s != 1 {
		t.Fatalf("steps at threshold = %d", s)
	}
	if s := growthSteps(100*L.ThresholdMissLowPerSec, L); s != 3 {
		t.Fatalf("steps at 100x = %d", s)
	}
	L.UCPGrowth = false
	if s := growthSteps(100*L.ThresholdMissLowPerSec, L); s != 1 {
		t.Fatalf("one-way policy granted %d", s)
	}
}

// TestIATWarmupAdoptsBaseline: the first decided sample is a silent
// warmup, and Reset() forces the next one to warm up again.
func TestIATWarmupAdoptsBaseline(t *testing.T) {
	p := NewIAT()
	s := sample(LowKeep, 2, 0)
	p.Observe(s)
	if a := p.Decide(); !a.Warmup {
		t.Fatalf("first decision = %+v, want warmup", a)
	}
	p.Observe(s)
	if a := p.Decide(); a.Warmup || !a.Stable || a.Desc != "stable" {
		t.Fatalf("identical second sample = %+v, want stable", a)
	}
	p.Reset()
	p.Observe(s)
	if a := p.Decide(); !a.Warmup {
		t.Fatal("post-Reset decision should warm up")
	}
	h := p.Health()
	if h.Ticks != 3 || h.Warmups != 2 || h.Stable != 1 {
		t.Fatalf("health = %+v", h)
	}
}

// TestIATContinueProgression: Reclaim keeps shrinking DDIO on stable
// samples and announces the Low Keep entry, exactly like the daemon did.
func TestIATContinueProgression(t *testing.T) {
	p := NewIAT()
	s := sample(Reclaim, 3, 0)
	p.Observe(s)
	p.Decide() // warmup
	p.Observe(s)
	a := p.Decide()
	if !a.Continue || a.DDIOWays != 2 || a.Desc != "continue: ddio=2" {
		t.Fatalf("first continue = %+v", a)
	}
	s = sample(Reclaim, 2, 0)
	p.Observe(s)
	a = p.Decide()
	if !a.Continue || a.DDIOWays != 1 || a.Desc != "continue: ddio=1 ->LowKeep" || a.State != LowKeep {
		t.Fatalf("boundary continue = %+v", a)
	}
}

// TestIATSelectCoreDemandQuirk pins the faithful port of the daemon's
// zero-delta selection: without a stack group, the FIRST I/O group in
// registration order wins regardless of miss rates.
func TestIATSelectCoreDemandQuirk(t *testing.T) {
	s := sample(CoreDemand, 2, 5e6)
	s.Groups = []GroupView{
		{CLOS: 3, IO: true, Width: 2, MissRate: 0.1},
		{CLOS: 1, IO: true, Width: 2, MissRate: 0.9},
		{CLOS: 2, Width: 2, MissRate: 0.5},
	}
	if g := selectCoreDemand(s); g == nil || g.CLOS != 3 {
		t.Fatalf("selected %+v, want first registered I/O group (clos 3)", g)
	}
	// A stack group always wins.
	s.Groups = append(s.Groups, GroupView{CLOS: 7, Stack: true, Width: 2})
	// Still clos 3: the stack group was registered later but stack scan
	// runs first over registration order.
	if g := selectCoreDemand(s); g == nil || g.CLOS != 7 {
		t.Fatalf("selected %+v, want stack group (clos 7)", g)
	}
}

// TestReclaimVictimSelection: the tenant reclaim path picks the
// lowest-reference-rate group among quiet, multi-way groups.
func TestReclaimVictimSelection(t *testing.T) {
	s := sample(Reclaim, 1, 5e6) // DDIO at min and loud: tenant path
	s.Groups = []GroupView{
		{CLOS: 1, Width: 2, MissRate: 0.01, RefsPS: 500},
		{CLOS: 2, Width: 2, MissRate: 0.01, RefsPS: 100}, // victim
		{CLOS: 3, Width: 1, MissRate: 0.01, RefsPS: 1},   // single-way: exempt
		{CLOS: 4, Width: 4, MissRate: 0.9, RefsPS: 1},    // busy: exempt
	}
	a := reclaimOne(s)
	if len(a.Shrink) != 1 || a.Shrink[0] != 2 || a.Desc != "-1 way clos 2" {
		t.Fatalf("reclaim = %+v", a)
	}
	// Nothing eligible: "nothing to reclaim".
	s.Groups = s.Groups[2:]
	if a := reclaimOne(s); a.Desc != "nothing to reclaim" || len(a.Shrink) != 0 {
		t.Fatalf("reclaim with no victim = %+v", a)
	}
}
