package policy

import "fmt"

// IOCAStyle thresholds: the contention detector considers DDIO contended
// when the DDIO miss *ratio* (misses over hits+misses) sits above
// iocaHighRatio, and quiet below iocaLowRatio; the gap between the two
// plus the iocaPatience streak requirement form the hysteresis band that
// keeps the allocation from oscillating on a noisy boundary.
const (
	iocaHighRatio = 0.25
	iocaLowRatio  = 0.10
	iocaPatience  = 2
)

// IOCAStyle is a miss-rate-threshold contention detector with hysteresis
// in the style of IOCA (arXiv:2007.04552): instead of IAT's differential
// stability analysis it classifies each interval absolutely — DDIO miss
// ratio above a high-water mark for iocaPatience consecutive intervals
// means the I/O ways are contended (grow DDIO by one), below a low-water
// mark for as long means they are over-provisioned (shrink by one) — and
// holds otherwise. It only manages the DDIO/application boundary; tenant
// widths are never touched.
type IOCAStyle struct {
	cur  Sample
	hot  int // consecutive contended intervals
	cold int // consecutive quiet intervals
	h    Health
}

// NewIOCAStyle returns the IOCA-style contention-threshold policy.
func NewIOCAStyle() *IOCAStyle { return &IOCAStyle{} }

// Name implements Policy.
func (p *IOCAStyle) Name() string { return "ioca" }

// Kind implements Policy.
func (p *IOCAStyle) Kind() Kind { return KindIOCA }

// Health implements Policy.
func (p *IOCAStyle) Health() Health { return p.h }

// Reset implements Policy: the hysteresis streaks restart.
func (p *IOCAStyle) Reset() {
	p.hot = 0
	p.cold = 0
}

// Observe implements Policy.
func (p *IOCAStyle) Observe(s Sample) { p.cur = s }

// Decide implements Policy.
func (p *IOCAStyle) Decide() Actions {
	s := p.cur
	L := s.Limits
	p.h.Ticks++

	total := s.DDIOHitPS + s.DDIOMissPS
	ratio := 0.0
	if total > 0 {
		ratio = s.DDIOMissPS / total
	}
	// The absolute rate gate keeps an idle NIC (tiny denominators make
	// the ratio meaningless) from reading as contended.
	pressing := s.DDIOMissPS > L.ThresholdMissLowPerSec
	switch {
	case pressing && ratio >= iocaHighRatio:
		p.hot++
		p.cold = 0
	case !pressing || ratio <= iocaLowRatio:
		p.cold++
		p.hot = 0
	default:
		// Inside the hysteresis band: both streaks stall, neither resets —
		// a single borderline interval must not erase accumulated evidence.
	}

	var a Actions
	switch {
	case p.hot >= iocaPatience && !L.DisableDDIOAdjust && s.DDIOWays < L.DDIOWaysMax:
		target := s.DDIOWays + 1
		st := IODemand
		if target >= L.DDIOWaysMax {
			st = HighKeep
		}
		a = Actions{State: st, DDIOWays: target,
			Desc: fmt.Sprintf("ioca: contended (miss ratio %.2f) ddio=%d", ratio, target)}
	case p.cold >= iocaPatience && !L.DisableDDIOAdjust && s.DDIOWays > L.DDIOWaysMin:
		target := s.DDIOWays - 1
		st := Reclaim
		if target <= L.DDIOWaysMin {
			st = LowKeep
		}
		a = Actions{State: st, DDIOWays: target,
			Desc: fmt.Sprintf("ioca: quiet (miss ratio %.2f) ddio=%d", ratio, target)}
	default:
		a = Actions{Stable: true, State: s.State, DDIOWays: s.DDIOWays, Desc: "stable"}
	}
	p.h.note(a, s.DDIOWays)
	return a
}
