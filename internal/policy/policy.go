// Package policy is the pluggable LLC-allocation decision engine. The
// daemon (internal/core) owns the mechanism — polling counters,
// sanity-screening samples, self-healing, packing and programming masks —
// and delegates *what to do* to a Policy: each iteration it hands the
// policy one sanity-screened Sample and executes the Actions the policy
// returns. The paper's IAT FSM is one Policy (the default); Static,
// IOCAStyle (after IOCA, arXiv:2007.04552) and Greedy are alternative
// managers that run on identical deterministic inputs, either as the
// active policy or as shadows (see Evaluator) computing counterfactual
// decisions beside the active one.
//
// Policies are pure, deterministic state machines over the samples they
// Observe: no wall clock, no global randomness, no goroutines — the same
// sample sequence always yields the same action sequence, which is what
// makes shadow evaluation and policy tournaments byte-reproducible.
package policy

import (
	"fmt"
	"strconv"
	"strings"

	"iatsim/internal/cache"
)

// Kind identifies a policy implementation.
//
//simlint:enum
type Kind int

// Policy kinds.
const (
	// KindIAT is the paper's Mealy-FSM daemon logic (the default).
	KindIAT Kind = iota
	// KindStatic holds a fixed DDIO way count and never moves tenants.
	KindStatic
	// KindIOCA is a miss-rate-threshold contention detector with
	// hysteresis, in the style of IOCA (arXiv:2007.04552).
	KindIOCA
	// KindGreedy always grants one way to the largest demander.
	KindGreedy
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindIAT:
		return "iat"
	case KindStatic:
		return "static"
	case KindIOCA:
		return "ioca"
	case KindGreedy:
		return "greedy"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Limits carries the active parameter set and isolation switches into a
// Sample. The daemon copies them from its Params/Options every tick, so a
// SetParams rollout propagates to the policy (and every shadow) on the
// next sample without any re-plumbing.
type Limits struct {
	// ThresholdStable is the relative per-event delta below which the
	// system is considered unchanged.
	ThresholdStable float64
	// ThresholdMissLowPerSec is the DDIO write-allocate rate above which
	// the I/O is considered to be pressing the LLC.
	ThresholdMissLowPerSec float64
	// DDIOWaysMin / DDIOWaysMax bound the DDIO way allocation.
	DDIOWaysMin int
	DDIOWaysMax int
	// MissDropFactor is the relative DDIO-miss decrease treated as a
	// significant degradation.
	MissDropFactor float64
	// TenantMissRateFloor is the per-tenant LLC miss rate below which a
	// tenant is a reclaim candidate.
	TenantMissRateFloor float64
	// UCPGrowth selects the utility-style 1-3 way increment instead of
	// one way per iteration.
	UCPGrowth bool

	// Isolation switches (core.Options): a policy must not request an
	// adjustment class that is disabled, and the daemon enforces it again
	// at execution time.
	DisableDDIOAdjust   bool
	DisableShuffle      bool
	DisableTenantAdjust bool
}

// GroupView is one allocation group's slice of a Sample, in daemon
// registration order: identity, current layout, and the interval rates.
type GroupView struct {
	CLOS       int
	IO         bool
	Stack      bool
	BestEffort bool
	Width      int
	Mask       cache.WayMask
	IPC        float64
	RefsPS     float64
	MissPS     float64
	MissRate   float64
}

// Sample is one sanity-screened interval observation, everything a policy
// may base a decision on. Groups appear in daemon registration order —
// tie-breaks on that order are part of the decision contract.
type Sample struct {
	NowNS float64
	// State is the FSM state as of the last committed decision (the
	// daemon owns the commit; see Actions.State).
	State    State
	NumWays  int
	DDIOWays int
	DDIOMask cache.WayMask
	Limits   Limits
	Groups   []GroupView

	DDIOHitPS   float64
	DDIOMissPS  float64
	TotalRefsPS float64
}

// group returns the view for a CLOS id (nil when absent).
func (s *Sample) group(clos int) *GroupView {
	for i := range s.Groups {
		if s.Groups[i].CLOS == clos {
			return &s.Groups[i]
		}
	}
	return nil
}

// totalWidth sums the group widths.
func (s *Sample) totalWidth() int {
	t := 0
	for i := range s.Groups {
		t += s.Groups[i].Width
	}
	return t
}

// Actions is one decision: the next FSM state, a human-readable
// description (the daemon's emitted action string), and the re-allocation
// operations to execute. The daemon applies the operations, resolves
// TryShuffle, and commits State — the policy never mutates the machine.
type Actions struct {
	// State is the state to commit after executing this decision.
	State State
	// Desc is the action string emitted in the iteration trace.
	Desc string

	// Warmup marks a baseline-adoption tick: the daemon skips the
	// iteration count, the trace emit, and all operations.
	Warmup bool
	// Stable marks a no-change iteration (emitted as a stable trace row).
	Stable bool
	// Continue marks a progression tick of a directional state (I/O
	// Demand / Reclaim keep moving while counters are stable).
	Continue bool

	// DDIOWays is the target DDIO way count (equal to the sample's for
	// "no change"). The daemon programs the delta.
	DDIOWays int
	// Grow / Shrink list CLOS ids to widen / narrow by one way each.
	Grow   []int
	Shrink []int

	// TryShuffle asks the daemon to re-run the layout (best-effort
	// re-ordering against DDIO). If the shuffle writes no register, the
	// daemon executes Fallback instead (the paper's case-3 fall-through).
	TryShuffle bool
	Fallback   *Actions
}

// Health counts a policy's decision mix, for summaries and tournaments.
type Health struct {
	Ticks        uint64 // samples decided on (warmups included)
	Warmups      uint64
	Stable       uint64
	GrowDDIO     uint64
	ShrinkDDIO   uint64
	GrowTenant   uint64
	ShrinkTenant uint64
	Shuffles     uint64
	Holds        uint64
}

// note classifies one decision into the health counters. prevDDIO is the
// sample's DDIO way count the decision was made against.
func (h *Health) note(a Actions, prevDDIO int) {
	switch {
	case a.Warmup:
		h.Warmups++
	case a.Stable:
		h.Stable++
	case a.TryShuffle:
		h.Shuffles++
	case a.DDIOWays > prevDDIO:
		h.GrowDDIO++
	case a.DDIOWays < prevDDIO:
		h.ShrinkDDIO++
	case len(a.Grow) > 0:
		h.GrowTenant++
	case len(a.Shrink) > 0:
		h.ShrinkTenant++
	default:
		h.Holds++
	}
}

// Classify names the decision class of a — the agreement unit of shadow
// evaluation. prevDDIO is the DDIO way count the decision was made
// against.
func Classify(a Actions, prevDDIO int) string {
	switch {
	case a.Warmup:
		return "warmup"
	case a.Stable:
		return "stable"
	case a.TryShuffle:
		return "shuffle"
	case a.DDIOWays > prevDDIO:
		return "grow-ddio"
	case a.DDIOWays < prevDDIO:
		return "shrink-ddio"
	case len(a.Grow) > 0:
		return "grow-tenant"
	case len(a.Shrink) > 0:
		return "shrink-tenant"
	}
	return "hold"
}

// Policy is one LLC-allocation decision engine. The daemon drives it
// strictly as Observe(sample) then Decide() once per accepted iteration;
// Reset clears all internal baselines (tenant change, degradation, or
// policy switch — old deltas are meaningless afterward).
type Policy interface {
	// Name identifies the instance (e.g. "iat", "static:2") — used as
	// the telemetry scope and in tournament rows.
	Name() string
	// Kind identifies the implementation.
	Kind() Kind
	// Reset drops all internal state (comparison baselines, hysteresis
	// counters). The next Decide after a Reset is free to warm up.
	Reset()
	// Observe hands the policy the current sanity-screened sample.
	Observe(s Sample)
	// Decide returns the decision for the last observed sample.
	Decide() Actions
	// Health returns the running decision-mix counters.
	Health() Health
	// Snapshot serialises the policy's internal state (baselines,
	// hysteresis streaks, health counters) for checkpointing.
	// Deterministic: identical state yields identical bytes.
	Snapshot() ([]byte, error)
	// Restore rewinds the policy to a Snapshot taken from an instance
	// with the same Name. A failed restore leaves the policy unchanged
	// and returns a typed error — never panics.
	Restore(data []byte) error
}

// Spec is a parsed policy specification — the flag/rollout-level
// description from which per-daemon Policy instances are built (policies
// are stateful, so every daemon needs its own instance via New).
type Spec struct {
	Kind Kind
	// StaticWays is the fixed DDIO way count of a KindStatic spec.
	StaticWays int
}

// String renders the spec in ParseSpec syntax.
func (sp Spec) String() string {
	if sp.Kind == KindStatic {
		return fmt.Sprintf("static:%d", sp.StaticWays)
	}
	return sp.Kind.String()
}

// New builds a fresh policy instance for the spec.
func (sp Spec) New() Policy {
	switch sp.Kind {
	case KindStatic:
		return NewStatic(sp.StaticWays)
	case KindIOCA:
		return NewIOCAStyle()
	case KindGreedy:
		return NewGreedy()
	default:
		return NewIAT()
	}
}

// SpecNames lists the valid -policy flag syntaxes.
func SpecNames() []string { return []string{"iat", "static[:WAYS]", "ioca", "greedy"} }

// ParseSpec parses a -policy flag value: "iat", "static" (2 ways),
// "static:N", "ioca", or "greedy".
func ParseSpec(text string) (Spec, error) {
	switch {
	case text == "iat":
		return Spec{Kind: KindIAT}, nil
	case text == "static":
		return Spec{Kind: KindStatic, StaticWays: DefaultStaticWays}, nil
	case strings.HasPrefix(text, "static:"):
		n, err := strconv.Atoi(strings.TrimPrefix(text, "static:"))
		if err != nil || n < 1 || n > 32 {
			return Spec{}, fmt.Errorf("policy: bad static way count in %q (want static:N, 1 <= N <= 32)", text)
		}
		return Spec{Kind: KindStatic, StaticWays: n}, nil
	case text == "ioca":
		return Spec{Kind: KindIOCA}, nil
	case text == "greedy":
		return Spec{Kind: KindGreedy}, nil
	}
	return Spec{}, fmt.Errorf("policy: unknown policy %q (valid: %s)", text, strings.Join(SpecNames(), ", "))
}

// ParseShadowSpecs parses a -shadow flag value: a comma-separated list of
// ParseSpec syntaxes ("" parses to none). Duplicate names are rejected —
// shadow telemetry and CSV rows are keyed by policy name.
func ParseShadowSpecs(text string) ([]Spec, error) {
	if strings.TrimSpace(text) == "" {
		return nil, nil
	}
	var specs []Spec
	seen := map[string]bool{}
	for _, part := range strings.Split(text, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		sp, err := ParseSpec(part)
		if err != nil {
			return nil, err
		}
		if seen[sp.String()] {
			return nil, fmt.Errorf("policy: duplicate shadow %q", sp.String())
		}
		seen[sp.String()] = true
		specs = append(specs, sp)
	}
	return specs, nil
}
