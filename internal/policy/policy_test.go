package policy

import (
	"strings"
	"testing"
)

// TestKindString pins the flag-level names and the out-of-range default
// branch (a corrupted kind must render its raw value, not crash).
func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindIAT: "iat", KindStatic: "static", KindIOCA: "ioca", KindGreedy: "greedy",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if got := Kind(9).String(); got != "Kind(9)" {
		t.Errorf("Kind(9).String() = %q, want Kind(9)", got)
	}
}

// TestParseSpecRoundTrip: every valid syntax parses, re-renders via
// Spec.String into something that parses to the same spec, and builds a
// policy of the matching kind and name.
func TestParseSpecRoundTrip(t *testing.T) {
	cases := []struct {
		text string
		kind Kind
		name string
	}{
		{"iat", KindIAT, "iat"},
		{"static", KindStatic, "static:2"}, // bare static = hardware default
		{"static:4", KindStatic, "static:4"},
		{"ioca", KindIOCA, "ioca"},
		{"greedy", KindGreedy, "greedy"},
	}
	for _, c := range cases {
		sp, err := ParseSpec(c.text)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", c.text, err)
		}
		if sp.Kind != c.kind {
			t.Errorf("ParseSpec(%q).Kind = %v, want %v", c.text, sp.Kind, c.kind)
		}
		again, err := ParseSpec(sp.String())
		if err != nil || again != sp {
			t.Errorf("round trip %q -> %q -> %+v (%v)", c.text, sp.String(), again, err)
		}
		p := sp.New()
		if p.Kind() != c.kind || p.Name() != c.name {
			t.Errorf("ParseSpec(%q).New() = kind %v name %q, want %v %q",
				c.text, p.Kind(), p.Name(), c.kind, c.name)
		}
	}
}

func TestParseSpecRejects(t *testing.T) {
	for _, text := range []string{"", "bogus", "static:", "static:x", "static:0", "static:33", "STATIC:2", "iat "} {
		if sp, err := ParseSpec(text); err == nil {
			t.Errorf("ParseSpec(%q) accepted: %+v", text, sp)
		}
	}
	// The unknown-policy error must teach the valid syntaxes.
	_, err := ParseSpec("bogus")
	if err == nil || !strings.Contains(err.Error(), "static[:WAYS]") {
		t.Errorf("unknown-policy error %v does not list valid specs", err)
	}
}

func TestParseShadowSpecs(t *testing.T) {
	if specs, err := ParseShadowSpecs(""); err != nil || specs != nil {
		t.Fatalf("empty = %v, %v", specs, err)
	}
	if specs, err := ParseShadowSpecs("   "); err != nil || specs != nil {
		t.Fatalf("blank = %v, %v", specs, err)
	}
	// Order preserved, whitespace trimmed, empty elements skipped.
	specs, err := ParseShadowSpecs(" static:3 ,, greedy ")
	if err != nil || len(specs) != 2 || specs[0].String() != "static:3" || specs[1].String() != "greedy" {
		t.Fatalf("list = %+v, %v", specs, err)
	}
	// Duplicates are rejected by canonical name — "static" and "static:2"
	// are the same shadow.
	if _, err := ParseShadowSpecs("static,static:2"); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("aliased duplicate accepted: %v", err)
	}
	if _, err := ParseShadowSpecs("iat,iat"); err == nil {
		t.Fatal("duplicate accepted")
	}
	// One bad element fails the whole list.
	if _, err := ParseShadowSpecs("greedy,bogus"); err == nil {
		t.Fatal("bad element accepted")
	}
}

// TestClassify drives every decision class — Classify is the agreement
// unit of shadow evaluation, so its precedence order (warmup > stable >
// shuffle > ddio > tenant > hold) is part of the contract.
func TestClassify(t *testing.T) {
	cases := []struct {
		a    Actions
		want string
	}{
		{Actions{Warmup: true}, "warmup"},
		{Actions{Stable: true, DDIOWays: 2}, "stable"},
		{Actions{TryShuffle: true, DDIOWays: 2}, "shuffle"},
		{Actions{DDIOWays: 3}, "grow-ddio"},
		{Actions{DDIOWays: 1}, "shrink-ddio"},
		{Actions{DDIOWays: 2, Grow: []int{1}}, "grow-tenant"},
		{Actions{DDIOWays: 2, Shrink: []int{1}}, "shrink-tenant"},
		{Actions{DDIOWays: 2}, "hold"},
	}
	for _, c := range cases {
		if got := Classify(c.a, 2); got != c.want {
			t.Errorf("Classify(%+v, 2) = %q, want %q", c.a, got, c.want)
		}
	}
}

// TestStaticConvergesThenHolds: one corrective move to the target, then
// stable forever; the target clamps into the configured DDIO bounds.
func TestStaticConvergesThenHolds(t *testing.T) {
	p := NewStatic(4)
	p.Observe(sample(LowKeep, 2, 0))
	a := p.Decide()
	if a.Stable || a.DDIOWays != 4 || a.State != LowKeep || a.Desc != "static: ddio=4" {
		t.Fatalf("corrective move = %+v", a)
	}
	p.Observe(sample(LowKeep, 4, 0))
	if a := p.Decide(); !a.Stable || a.DDIOWays != 4 || a.Desc != "stable" {
		t.Fatalf("at target = %+v", a)
	}
	h := p.Health()
	if h.Ticks != 2 || h.GrowDDIO != 1 || h.Stable != 1 {
		t.Fatalf("health = %+v", h)
	}
}

func TestStaticClampsAndRespectsDisable(t *testing.T) {
	// A target above DDIOWaysMax clamps down; below DDIOWaysMin clamps up.
	p := NewStatic(9)
	p.Observe(sample(LowKeep, 2, 0))
	if a := p.Decide(); a.DDIOWays != limits().DDIOWaysMax {
		t.Fatalf("over-max target = %+v", a)
	}
	lo := NewStatic(1)
	s := sample(LowKeep, 3, 0)
	s.Limits.DDIOWaysMin = 2
	lo.Observe(s)
	if a := lo.Decide(); a.DDIOWays != 2 {
		t.Fatalf("under-min target = %+v", a)
	}
	// NewStatic(0) falls back to the hardware default.
	if NewStatic(0).Name() != "static:2" {
		t.Fatal("zero ways did not default")
	}
	// With DDIO adjustment disabled the policy may only hold.
	q := NewStatic(4)
	s = sample(LowKeep, 2, 0)
	s.Limits.DisableDDIOAdjust = true
	q.Observe(s)
	if a := q.Decide(); !a.Stable || a.DDIOWays != 2 {
		t.Fatalf("disabled adjust still moved: %+v", a)
	}
}

// iocaSample builds a sample with an explicit DDIO hit/miss split so the
// miss ratio (and the absolute pressing gate) can be placed precisely.
func iocaSample(ddio int, hitPS, missPS float64) Sample {
	s := sample(LowKeep, ddio, missPS)
	s.DDIOHitPS = hitPS
	return s
}

// TestIOCAPatience: a single contended interval is not enough; the second
// consecutive one grows DDIO by one, entering High Keep at the max bound.
func TestIOCAPatience(t *testing.T) {
	p := NewIOCAStyle()
	hot := iocaSample(2, 1e7, 5e6) // ratio 0.33, pressing
	p.Observe(hot)
	if a := p.Decide(); !a.Stable {
		t.Fatalf("one hot interval already acted: %+v", a)
	}
	p.Observe(hot)
	a := p.Decide()
	if a.DDIOWays != 3 || a.State != IODemand || !strings.HasPrefix(a.Desc, "ioca: contended") {
		t.Fatalf("second hot interval = %+v", a)
	}
	// At max-1 the grow enters High Keep.
	q := NewIOCAStyle()
	edge := iocaSample(limits().DDIOWaysMax-1, 1e7, 5e6)
	q.Observe(edge)
	q.Decide()
	q.Observe(edge)
	if a := q.Decide(); a.DDIOWays != limits().DDIOWaysMax || a.State != HighKeep {
		t.Fatalf("grow at max boundary = %+v", a)
	}
	// At max, even a sustained hot streak holds.
	q.Observe(iocaSample(limits().DDIOWaysMax, 1e7, 5e6))
	if a := q.Decide(); !a.Stable {
		t.Fatalf("grew past max: %+v", a)
	}
}

// TestIOCAQuietShrinks: two quiet intervals shrink by one (Reclaim),
// entering Low Keep at the min bound and holding there.
func TestIOCAQuietShrinks(t *testing.T) {
	p := NewIOCAStyle()
	quiet := iocaSample(3, 1e7, 1e3) // not pressing
	p.Observe(quiet)
	p.Decide()
	p.Observe(quiet)
	a := p.Decide()
	if a.DDIOWays != 2 || a.State != Reclaim || !strings.HasPrefix(a.Desc, "ioca: quiet") {
		t.Fatalf("second quiet interval = %+v", a)
	}
	p.Observe(iocaSample(2, 1e7, 1e3))
	if a := p.Decide(); a.DDIOWays != 1 || a.State != LowKeep {
		t.Fatalf("shrink to min = %+v", a)
	}
	p.Observe(iocaSample(1, 1e7, 1e3))
	if a := p.Decide(); !a.Stable {
		t.Fatalf("shrank below min: %+v", a)
	}
}

// TestIOCABandStallsStreaks: an interval inside the hysteresis band
// (pressing, ratio between low and high) freezes both streaks without
// resetting them — one borderline sample must not erase evidence — while
// Reset() does restart them.
func TestIOCABandStallsStreaks(t *testing.T) {
	p := NewIOCAStyle()
	hot := iocaSample(2, 1e7, 5e6)   // ratio 0.33
	band := iocaSample(2, 14e6, 2e6) // ratio 0.125, pressing
	p.Observe(hot)
	p.Decide()
	p.Observe(band)
	if a := p.Decide(); !a.Stable {
		t.Fatalf("band interval acted: %+v", a)
	}
	p.Observe(hot)
	if a := p.Decide(); a.DDIOWays != 3 {
		t.Fatalf("streak was erased by the band interval: %+v", a)
	}

	q := NewIOCAStyle()
	q.Observe(hot)
	q.Decide()
	q.Reset()
	q.Observe(hot)
	if a := q.Decide(); !a.Stable {
		t.Fatalf("Reset did not restart the streak: %+v", a)
	}
}

// TestGreedyDemandSelection pins the tie-break contract: DDIO is
// considered first and wins exact ties; tenant groups compete by strict >
// in registration order.
func TestGreedyDemandSelection(t *testing.T) {
	p := NewGreedy()

	// Idle (all rates at or under the noise floor): hold.
	idle := sample(LowKeep, 2, limits().ThresholdMissLowPerSec/10)
	p.Observe(idle)
	if a := p.Decide(); !a.Stable || a.Desc != "stable" {
		t.Fatalf("idle = %+v", a)
	}

	// DDIO wins an exact tie with a tenant group.
	s := sample(LowKeep, 2, 5e6)
	s.Groups = []GroupView{{CLOS: 1, Width: 2, MissPS: 5e6}}
	p.Observe(s)
	a := p.Decide()
	if a.DDIOWays != 3 || a.State != IODemand || len(a.Grow) != 0 || a.Desc != "greedy: ddio=3" {
		t.Fatalf("ddio tie = %+v", a)
	}

	// A strictly louder group beats DDIO; equal groups tie-break to the
	// first registered.
	s = sample(LowKeep, 2, 5e6)
	s.Groups = []GroupView{
		{CLOS: 4, Width: 2, MissPS: 6e6},
		{CLOS: 1, Width: 2, MissPS: 6e6},
	}
	p.Observe(s)
	a = p.Decide()
	if a.State != CoreDemand || len(a.Grow) != 1 || a.Grow[0] != 4 || a.Desc != "greedy: +1 way clos 4" {
		t.Fatalf("group demand = %+v", a)
	}
}

func TestGreedySaturation(t *testing.T) {
	p := NewGreedy()

	// DDIO at max: demand can only hold in High Keep.
	s := sample(HighKeep, limits().DDIOWaysMax, 5e6)
	p.Observe(s)
	if a := p.Decide(); a.State != HighKeep || a.DDIOWays != limits().DDIOWaysMax || a.Desc != "greedy: ddio saturated" {
		t.Fatalf("ddio saturated = %+v", a)
	}
	// Grow into High Keep at max-1.
	s = sample(IODemand, limits().DDIOWaysMax-1, 5e6)
	p.Observe(s)
	if a := p.Decide(); a.State != HighKeep || a.DDIOWays != limits().DDIOWaysMax {
		t.Fatalf("grow to max = %+v", a)
	}

	// Tenant widths filling the cache: no way left to grant.
	s = sample(LowKeep, 2, 0)
	s.Groups = []GroupView{
		{CLOS: 1, Width: 6, MissPS: 6e6},
		{CLOS: 2, Width: 5, MissPS: 1e5},
	}
	p.Observe(s)
	if a := p.Decide(); a.Desc != "greedy: tenants saturated" || len(a.Grow) != 0 {
		t.Fatalf("tenants saturated = %+v", a)
	}
}
