package policy

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"

	"iatsim/internal/cache"
	"iatsim/internal/telemetry"
)

// DefaultMaxRows bounds the per-tick divergence log of an Evaluator so an
// unbounded run cannot grow memory without limit; overflow rows are
// counted in Dropped() instead of silently lost.
const DefaultMaxRows = 100000

// DivergenceRow is one shadow's counterfactual decision on one tick,
// compared with the active policy's applied decision.
type DivergenceRow struct {
	TimeNS      float64
	Policy      string
	ActiveClass string // Classify() of the applied decision
	ShadowClass string // Classify() of the counterfactual decision
	Agree       bool   // same decision class
	ActiveDDIO  int    // DDIO ways after the applied decision
	ShadowDDIO  int    // DDIO ways in the shadow's counterfactual machine
	Hamming     int    // bit distance between applied and shadow DDIO masks
	ShadowDesc  string
}

// ShadowSummary aggregates one shadow policy over a run.
type ShadowSummary struct {
	Name              string
	Ticks             uint64
	Agreements        uint64
	WouldGrowDDIO     uint64
	WouldShrinkDDIO   uint64
	WouldGrowTenant   uint64
	WouldShrinkTenant uint64
	HammingTotal      uint64
	FinalDDIO         int
}

// AgreeRate is the decision-agreement fraction (1 when no ticks ran).
func (s ShadowSummary) AgreeRate() float64 {
	if s.Ticks == 0 {
		return 1
	}
	return float64(s.Agreements) / float64(s.Ticks)
}

// MeanHamming is the mean DDIO-mask bit distance per tick.
func (s ShadowSummary) MeanHamming() float64 {
	if s.Ticks == 0 {
		return 0
	}
	return float64(s.HammingTotal) / float64(s.Ticks)
}

// shadowState is one shadow policy plus its counterfactual machine: the
// allocation state the system WOULD hold had this policy been active from
// the first tick. Only bookkeeping — no register is ever programmed from
// here.
type shadowState struct {
	pol   Policy
	init  bool
	state State
	ddio  int
	width map[int]int // CLOS -> counterfactual width
	sum   ShadowSummary
}

// Evaluator runs N candidate policies side-by-side on the active daemon's
// sample stream. Each accepted sample is re-based into every shadow's
// counterfactual allocation state (its own DDIO way count, its own tenant
// widths, contiguously repacked masks), the shadow decides, the decision
// is committed to the counterfactual machine only, and the divergence
// from the applied decision is recorded — per-tick rows, running
// summaries, and policy/* telemetry counters. The evaluator is driven
// synchronously from the daemon's iteration, so it inherits the daemon's
// determinism: same seed, same shadows, same rows.
type Evaluator struct {
	// Tel, when set, receives policy/* counters and gauges per shadow
	// (scope = shadow policy name).
	Tel telemetry.Sink

	shadows []*shadowState
	rows    []DivergenceRow
	maxRows int
	dropped uint64
}

// NewEvaluator builds an evaluator running one shadow per spec.
func NewEvaluator(specs []Spec) *Evaluator {
	e := &Evaluator{maxRows: DefaultMaxRows}
	for _, sp := range specs {
		sh := &shadowState{pol: sp.New(), width: map[int]int{}}
		sh.sum.Name = sh.pol.Name()
		e.shadows = append(e.shadows, sh)
	}
	return e
}

// Empty reports whether the evaluator has no shadows.
func (e *Evaluator) Empty() bool { return e == nil || len(e.shadows) == 0 }

// Reset forwards a daemon reset (tenant change, degradation) to every
// shadow: counterfactual layouts re-adopt the machine state on the next
// tick and the policies drop their baselines. Summaries and rows persist.
func (e *Evaluator) Reset() {
	for _, sh := range e.shadows {
		sh.init = false
		sh.pol.Reset()
	}
}

// Tick evaluates every shadow against sample s. active is the decision the
// daemon executed and appliedDDIO the DDIO mask programmed after it; both
// are only read, never re-applied.
func (e *Evaluator) Tick(s Sample, active Actions, appliedDDIO cache.WayMask) {
	activeClass := Classify(active, s.DDIOWays)
	for _, sh := range e.shadows {
		if !sh.init {
			// Adopt the machine's real allocation as the counterfactual
			// starting point.
			sh.state = s.State
			sh.ddio = s.DDIOWays
			for clos := range sh.width {
				delete(sh.width, clos)
			}
			for i := range s.Groups {
				sh.width[s.Groups[i].CLOS] = s.Groups[i].Width
			}
			sh.init = true
		}
		cs := e.rebase(s, sh)
		sh.pol.Observe(cs)
		a := sh.pol.Decide()
		e.commit(sh, cs, a)

		shadowClass := Classify(a, cs.DDIOWays)
		agree := shadowClass == activeClass
		shadowMask := cache.ContiguousMask(s.NumWays-sh.ddio, sh.ddio)
		hamming := bits.OnesCount32(uint32(appliedDDIO ^ shadowMask))

		sh.sum.Ticks++
		if agree {
			sh.sum.Agreements++
		}
		if a.DDIOWays > cs.DDIOWays {
			sh.sum.WouldGrowDDIO++
		}
		if a.DDIOWays < cs.DDIOWays {
			sh.sum.WouldShrinkDDIO++
		}
		if len(a.Grow) > 0 {
			sh.sum.WouldGrowTenant++
		}
		if len(a.Shrink) > 0 {
			sh.sum.WouldShrinkTenant++
		}
		sh.sum.HammingTotal += uint64(hamming)
		sh.sum.FinalDDIO = sh.ddio

		if e.Tel != nil {
			name := sh.pol.Name()
			e.Tel.Counter("policy", name, "shadow_ticks").Inc()
			if agree {
				e.Tel.Counter("policy", name, "shadow_agreements").Inc()
			}
			if a.DDIOWays > cs.DDIOWays {
				e.Tel.Counter("policy", name, "shadow_would_grow_ddio").Inc()
			}
			if a.DDIOWays < cs.DDIOWays {
				e.Tel.Counter("policy", name, "shadow_would_shrink_ddio").Inc()
			}
			if len(a.Grow) > 0 {
				e.Tel.Counter("policy", name, "shadow_would_grow_tenant").Inc()
			}
			if len(a.Shrink) > 0 {
				e.Tel.Counter("policy", name, "shadow_would_shrink_tenant").Inc()
			}
			e.Tel.Counter("policy", name, "shadow_hamming_total").Add(uint64(hamming))
			e.Tel.Gauge("policy", name, "shadow_ddio_ways").Set(float64(sh.ddio))
		}

		if len(e.rows) < e.maxRows {
			e.rows = append(e.rows, DivergenceRow{
				TimeNS:      s.NowNS,
				Policy:      sh.pol.Name(),
				ActiveClass: activeClass,
				ShadowClass: shadowClass,
				Agree:       agree,
				ActiveDDIO:  active.DDIOWays,
				ShadowDDIO:  sh.ddio,
				Hamming:     hamming,
				ShadowDesc:  a.Desc,
			})
		} else {
			e.dropped++
		}
	}
}

// rebase rewrites sample s into shadow sh's counterfactual allocation:
// the shadow's FSM state, DDIO ways/mask, and tenant widths with masks
// repacked contiguously bottom-up in registration order (an approximation
// of the daemon's priority packing — shadow masks only feed overlap
// checks and Hamming distances, no register).
func (e *Evaluator) rebase(s Sample, sh *shadowState) Sample {
	cs := s
	cs.State = sh.state
	cs.DDIOWays = sh.ddio
	cs.DDIOMask = cache.ContiguousMask(s.NumWays-sh.ddio, sh.ddio)
	cs.Groups = make([]GroupView, len(s.Groups))
	lo := 0
	for i := range s.Groups {
		g := s.Groups[i]
		w, ok := sh.width[g.CLOS]
		if !ok {
			// A group registered after adoption (tenant add without the
			// daemon-level Reset firing first): take its machine width.
			w = g.Width
			sh.width[g.CLOS] = w
		}
		if w < 1 {
			w = 1
		}
		if lo+w > s.NumWays {
			w = s.NumWays - lo
			if w < 1 {
				w = 1
			}
		}
		g.Width = w
		g.Mask = cache.ContiguousMask(lo, w)
		lo += w
		cs.Groups[i] = g
	}
	return cs
}

// commit applies decision a to the shadow's counterfactual machine,
// mirroring the daemon's execution semantics: a shuffle is assumed to
// succeed (its fallback never runs), grow/shrink are capacity-bounded,
// and the DDIO target is clamped to the physical way range.
func (e *Evaluator) commit(sh *shadowState, cs Sample, a Actions) {
	sh.state = a.State
	if a.Warmup || a.Stable || a.TryShuffle {
		return
	}
	L := cs.Limits
	if !L.DisableTenantAdjust {
		for _, clos := range a.Grow {
			if _, ok := sh.width[clos]; ok && cs.totalWidth()+1 <= cs.NumWays {
				sh.width[clos]++
			}
		}
		for _, clos := range a.Shrink {
			if w, ok := sh.width[clos]; ok && w > 1 {
				sh.width[clos] = w - 1
			}
		}
	}
	if !L.DisableDDIOAdjust {
		t := a.DDIOWays
		if t < 1 {
			t = 1
		}
		if t > cs.NumWays {
			t = cs.NumWays
		}
		sh.ddio = t
	}
}

// evaluatorState is the Evaluator's serialised form: one entry per
// shadow, in registration order. The bounded per-tick row log is
// deliberately excluded — it is an observability artefact, not decision
// state, and would dominate the checkpoint size.
type evaluatorState struct {
	Shadows []shadowSnap `json:"shadows"`
}

// shadowSnap is one shadow's serialised counterfactual machine.
type shadowSnap struct {
	Name     string        `json:"name"`
	PolState []byte        `json:"pol_state"`
	Init     bool          `json:"init"`
	State    State         `json:"state"`
	DDIO     int           `json:"ddio"`
	Width    map[int]int   `json:"width,omitempty"`
	Sum      ShadowSummary `json:"sum"`
}

// Snapshot serialises every shadow's policy state, counterfactual
// machine, and running summary for checkpointing. A nil or empty
// evaluator snapshots to an empty state that Restore accepts.
func (e *Evaluator) Snapshot() ([]byte, error) {
	var st evaluatorState
	if e != nil {
		for _, sh := range e.shadows {
			ps, err := sh.pol.Snapshot()
			if err != nil {
				return nil, fmt.Errorf("policy: snapshot shadow %s: %w", sh.pol.Name(), err)
			}
			w := make(map[int]int, len(sh.width))
			for clos, width := range sh.width {
				w[clos] = width
			}
			st.Shadows = append(st.Shadows, shadowSnap{
				Name: sh.pol.Name(), PolState: ps,
				Init: sh.init, State: sh.state, DDIO: sh.ddio,
				Width: w, Sum: sh.sum,
			})
		}
	}
	return json.Marshal(st)
}

// Restore rewinds the evaluator to a Snapshot. The shadow set is matched
// by name in order — a snapshot taken under a different -shadow
// configuration is rejected with a typed error and the evaluator is left
// unchanged.
func (e *Evaluator) Restore(data []byte) error {
	var st evaluatorState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("policy: restore evaluator: %w", err)
	}
	n := 0
	if e != nil {
		n = len(e.shadows)
	}
	if len(st.Shadows) != n {
		return fmt.Errorf("policy: restore evaluator: snapshot has %d shadows, evaluator has %d", len(st.Shadows), n)
	}
	for i, sh := range st.Shadows {
		if got := e.shadows[i].pol.Name(); got != sh.Name {
			return fmt.Errorf("policy: restore evaluator: shadow %d is %q in snapshot, %q here", i, sh.Name, got)
		}
	}
	for i, snap := range st.Shadows {
		sh := e.shadows[i]
		if err := sh.pol.Restore(snap.PolState); err != nil {
			return err
		}
		sh.init = snap.Init
		sh.state = snap.State
		sh.ddio = snap.DDIO
		sh.width = make(map[int]int, len(snap.Width))
		for clos, width := range snap.Width {
			sh.width[clos] = width
		}
		sh.sum = snap.Sum
	}
	return nil
}

// Restart is a cold start: the evaluator behaves as if the process had
// just launched — policies reset, counterfactual machines dropped,
// summaries and the divergence log zeroed. Used when a daemon restarts
// without (or failing) a checkpoint restore.
func (e *Evaluator) Restart() {
	if e == nil {
		return
	}
	for _, sh := range e.shadows {
		sh.pol.Reset()
		sh.init = false
		sh.state = 0
		sh.ddio = 0
		sh.width = map[int]int{}
		sh.sum = ShadowSummary{Name: sh.pol.Name()}
	}
	e.rows = nil
	e.dropped = 0
}

// Rows returns the recorded divergence rows (shared slice; do not mutate).
func (e *Evaluator) Rows() []DivergenceRow { return e.rows }

// Dropped returns how many rows overflowed the bound.
func (e *Evaluator) Dropped() uint64 { return e.dropped }

// Summaries returns one aggregate per shadow, in shadow registration
// order (the -shadow flag's order).
func (e *Evaluator) Summaries() []ShadowSummary {
	out := make([]ShadowSummary, 0, len(e.shadows))
	for _, sh := range e.shadows {
		out = append(out, sh.sum)
	}
	return out
}

// WriteCSV writes the per-tick divergence log.
func (e *Evaluator) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "time_ns,policy,active_class,shadow_class,agree,active_ddio,shadow_ddio,hamming,shadow_desc"); err != nil {
		return err
	}
	for _, r := range e.rows {
		agree := 0
		if r.Agree {
			agree = 1
		}
		if _, err := fmt.Fprintf(w, "%.0f,%s,%s,%s,%d,%d,%d,%d,%s\n",
			r.TimeNS, r.Policy, r.ActiveClass, r.ShadowClass, agree,
			r.ActiveDDIO, r.ShadowDDIO, r.Hamming, r.ShadowDesc); err != nil {
			return err
		}
	}
	return nil
}
