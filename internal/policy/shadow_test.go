package policy

import (
	"strings"
	"testing"

	"iatsim/internal/cache"
	"iatsim/internal/telemetry"
)

// mustSpecs parses a shadow list or fails the test.
func mustSpecs(t *testing.T, text string) []Spec {
	t.Helper()
	specs, err := ParseShadowSpecs(text)
	if err != nil {
		t.Fatal(err)
	}
	return specs
}

// tick feeds one sample to the evaluator as if the daemon had executed a
// stable decision at the sample's allocation.
func tick(e *Evaluator, s Sample) {
	active := Actions{Stable: true, State: s.State, DDIOWays: s.DDIOWays, Desc: "stable"}
	e.Tick(s, active, s.DDIOMask)
}

func TestEvaluatorEmpty(t *testing.T) {
	var nilEv *Evaluator
	if !nilEv.Empty() {
		t.Fatal("nil evaluator not empty")
	}
	if !NewEvaluator(nil).Empty() {
		t.Fatal("zero-shadow evaluator not empty")
	}
	if NewEvaluator(mustSpecs(t, "iat")).Empty() {
		t.Fatal("one-shadow evaluator empty")
	}
}

// TestEvaluatorCounterfactualMachine: a static:5 shadow beside an active
// policy holding 2 DDIO ways must adopt the machine state on the first
// tick, move its OWN machine to 5 ways (one would-grow), then agree with
// the active "stable" stream forever after — with a persistent nonzero
// mask Hamming distance measuring the allocation gap.
func TestEvaluatorCounterfactualMachine(t *testing.T) {
	e := NewEvaluator(mustSpecs(t, "static:5"))
	s := sample(LowKeep, 2, 0)
	for i := 0; i < 3; i++ {
		s.NowNS = float64(i) * 1e8
		tick(e, s)
	}
	sums := e.Summaries()
	if len(sums) != 1 {
		t.Fatalf("summaries = %+v", sums)
	}
	sum := sums[0]
	if sum.Name != "static:5" || sum.Ticks != 3 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.WouldGrowDDIO != 1 || sum.FinalDDIO != 5 {
		t.Fatalf("counterfactual machine did not converge once: %+v", sum)
	}
	// Tick 1 disagrees (grow-ddio vs stable), ticks 2-3 agree.
	if sum.Agreements != 2 || sum.AgreeRate() < 0.6 || sum.AgreeRate() > 0.7 {
		t.Fatalf("agreement = %+v (rate %v)", sum, sum.AgreeRate())
	}
	// Applied mask is ways {9,10}; counterfactual is {6..10}: 3 bits apart
	// on every tick once converged (and already after the tick-1 commit).
	if sum.HammingTotal != 9 || sum.MeanHamming() != 3 {
		t.Fatalf("hamming = %+v", sum)
	}

	rows := e.Rows()
	if len(rows) != 3 || e.Dropped() != 0 {
		t.Fatalf("rows = %d dropped = %d", len(rows), e.Dropped())
	}
	r := rows[0]
	if r.ActiveClass != "stable" || r.ShadowClass != "grow-ddio" || r.Agree ||
		r.ShadowDDIO != 5 || r.Hamming != 3 || r.ShadowDesc != "static: ddio=5" {
		t.Fatalf("row 0 = %+v", r)
	}
	if !rows[1].Agree || rows[1].ShadowClass != "stable" {
		t.Fatalf("row 1 = %+v", rows[1])
	}
}

// TestEvaluatorTenantCommit: a greedy shadow granting a tenant way must
// grow only its counterfactual width map, visible in the next rebased
// sample, never the real sample's groups.
func TestEvaluatorTenantCommit(t *testing.T) {
	e := NewEvaluator(mustSpecs(t, "greedy"))
	s := sample(LowKeep, 2, 0)
	s.Groups = []GroupView{
		{CLOS: 1, Width: 2, Mask: cache.ContiguousMask(0, 2), MissPS: 6e6},
		{CLOS: 2, Width: 2, Mask: cache.ContiguousMask(2, 2), MissPS: 1e3},
	}
	tick(e, s)
	tick(e, s)
	sum := e.Summaries()[0]
	if sum.WouldGrowTenant != 2 {
		t.Fatalf("summary = %+v", sum)
	}
	if s.Groups[0].Width != 2 {
		t.Fatal("real sample mutated")
	}
	// The second row's decision was made against the counterfactual width
	// of 3, so greedy keeps granting the same CLOS.
	rows := e.Rows()
	if rows[1].ShadowDesc != "greedy: +1 way clos 1" {
		t.Fatalf("row 1 = %+v", rows[1])
	}
}

// TestEvaluatorReset: Reset() re-adopts the machine allocation and
// restarts policy baselines, while summaries and rows persist.
func TestEvaluatorReset(t *testing.T) {
	e := NewEvaluator(mustSpecs(t, "static:5"))
	tick(e, sample(LowKeep, 2, 0))
	if e.Summaries()[0].FinalDDIO != 5 {
		t.Fatalf("summary = %+v", e.Summaries()[0])
	}
	e.Reset()
	tick(e, sample(LowKeep, 2, 0))
	sum := e.Summaries()[0]
	// Re-adopted 2 ways, so the shadow had to grow again: two would-grows
	// over a persistent tick count.
	if sum.Ticks != 2 || sum.WouldGrowDDIO != 2 {
		t.Fatalf("post-reset summary = %+v", sum)
	}
	if len(e.Rows()) != 2 {
		t.Fatalf("rows dropped on reset: %d", len(e.Rows()))
	}
}

// TestEvaluatorRowCapAndCSV: the per-tick log stops at maxRows and counts
// the overflow; WriteCSV emits the pinned header plus one line per kept
// row.
func TestEvaluatorRowCapAndCSV(t *testing.T) {
	e := NewEvaluator(mustSpecs(t, "static:5"))
	e.maxRows = 2
	s := sample(LowKeep, 2, 0)
	for i := 0; i < 4; i++ {
		s.NowNS = float64(i) * 1e8
		tick(e, s)
	}
	if len(e.Rows()) != 2 || e.Dropped() != 2 {
		t.Fatalf("rows = %d dropped = %d", len(e.Rows()), e.Dropped())
	}
	var b strings.Builder
	if err := e.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "time_ns,policy,active_class,shadow_class,agree,active_ddio,shadow_ddio,hamming,shadow_desc" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 3 {
		t.Fatalf("csv has %d lines, want header+2", len(lines))
	}
	if lines[1] != "0,static:5,stable,grow-ddio,0,2,5,3,static: ddio=5" {
		t.Fatalf("row 1 = %q", lines[1])
	}
}

// TestEvaluatorTelemetry: per-shadow counters land under subsystem
// "policy" with the shadow's name as scope.
func TestEvaluatorTelemetry(t *testing.T) {
	e := NewEvaluator(mustSpecs(t, "static:5,greedy"))
	r := telemetry.NewRegistry()
	e.Tel = r
	s := sample(LowKeep, 2, 0)
	for i := 0; i < 3; i++ {
		s.NowNS = float64(i) * 1e8
		tick(e, s)
	}
	snap := r.Snapshot(3e8)
	got := map[telemetry.Key]float64{}
	for _, m := range snap.Metrics {
		got[m.Key()] = float64(m.Counter) + m.Gauge
	}
	checks := map[telemetry.Key]float64{
		{Subsystem: "policy", Scope: "static:5", Name: "shadow_ticks"}:           3,
		{Subsystem: "policy", Scope: "static:5", Name: "shadow_agreements"}:      2,
		{Subsystem: "policy", Scope: "static:5", Name: "shadow_would_grow_ddio"}: 1,
		{Subsystem: "policy", Scope: "static:5", Name: "shadow_hamming_total"}:   9,
		{Subsystem: "policy", Scope: "static:5", Name: "shadow_ddio_ways"}:       5,
		{Subsystem: "policy", Scope: "greedy", Name: "shadow_ticks"}:             3,
		// An idle sample never makes greedy move: full agreement, no mask gap.
		{Subsystem: "policy", Scope: "greedy", Name: "shadow_agreements"}: 3,
		{Subsystem: "policy", Scope: "greedy", Name: "shadow_ddio_ways"}:  2,
	}
	for k, want := range checks {
		if got[k] != want {
			t.Errorf("%v = %v, want %v", k, got[k], want)
		}
	}
	if v := got[telemetry.Key{Subsystem: "policy", Scope: "greedy", Name: "shadow_hamming_total"}]; v != 0 {
		t.Errorf("agreeing shadow accumulated hamming %v", v)
	}
}
