package policy

import (
	"encoding/json"
	"fmt"
)

// Policy snapshot/restore: every policy can serialise its internal state
// (comparison baselines, hysteresis streaks, health counters) so a
// checkpointed daemon resumes deciding exactly where it left off. The
// encodings are JSON over structs of exported scalar fields — field
// order is the struct order and no maps are involved, so identical
// state always yields identical bytes (the determinism regime the
// checkpoint envelope's byte-compare guarantee rests on).

// iatState is IAT's serialised form.
type iatState struct {
	Cur     Sample `json:"cur"`
	HaveCur bool   `json:"have_cur"`
	Prev    Sample `json:"prev"`
	Have    bool   `json:"have"`
	H       Health `json:"health"`
}

// Snapshot implements Policy.
func (p *IAT) Snapshot() ([]byte, error) {
	return json.Marshal(iatState{Cur: p.cur, HaveCur: p.haveCur, Prev: p.prev, Have: p.have, H: p.h})
}

// Restore implements Policy.
func (p *IAT) Restore(data []byte) error {
	var st iatState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("policy: restore iat: %w", err)
	}
	p.cur, p.haveCur, p.prev, p.have, p.h = st.Cur, st.HaveCur, st.Prev, st.Have, st.H
	return nil
}

// staticState is Static's serialised form. Ways is configuration, but it
// is carried so a restore into a differently-configured instance is
// rejected instead of silently changing the target.
type staticState struct {
	Ways int    `json:"ways"`
	Cur  Sample `json:"cur"`
	H    Health `json:"health"`
}

// Snapshot implements Policy.
func (p *Static) Snapshot() ([]byte, error) {
	return json.Marshal(staticState{Ways: p.ways, Cur: p.cur, H: p.h})
}

// Restore implements Policy.
func (p *Static) Restore(data []byte) error {
	var st staticState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("policy: restore static: %w", err)
	}
	if st.Ways != p.ways {
		return fmt.Errorf("policy: restore static: snapshot is for static:%d, this instance is static:%d", st.Ways, p.ways)
	}
	p.cur, p.h = st.Cur, st.H
	return nil
}

// iocaState is IOCAStyle's serialised form.
type iocaState struct {
	Cur  Sample `json:"cur"`
	Hot  int    `json:"hot"`
	Cold int    `json:"cold"`
	H    Health `json:"health"`
}

// Snapshot implements Policy.
func (p *IOCAStyle) Snapshot() ([]byte, error) {
	return json.Marshal(iocaState{Cur: p.cur, Hot: p.hot, Cold: p.cold, H: p.h})
}

// Restore implements Policy.
func (p *IOCAStyle) Restore(data []byte) error {
	var st iocaState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("policy: restore ioca: %w", err)
	}
	p.cur, p.hot, p.cold, p.h = st.Cur, st.Hot, st.Cold, st.H
	return nil
}

// greedyState is Greedy's serialised form (memoryless beyond the last
// sample and the health counters).
type greedyState struct {
	Cur Sample `json:"cur"`
	H   Health `json:"health"`
}

// Snapshot implements Policy.
func (p *Greedy) Snapshot() ([]byte, error) {
	return json.Marshal(greedyState{Cur: p.cur, H: p.h})
}

// Restore implements Policy.
func (p *Greedy) Restore(data []byte) error {
	var st greedyState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("policy: restore greedy: %w", err)
	}
	p.cur, p.h = st.Cur, st.H
	return nil
}
