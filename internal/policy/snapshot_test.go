package policy

import (
	"bytes"
	"testing"
)

// allSpecs lists one spec per policy implementation.
func allSpecs(t *testing.T) []Spec {
	t.Helper()
	var specs []Spec
	for _, text := range []string{"iat", "static:3", "ioca", "greedy"} {
		sp, err := ParseSpec(text)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, sp)
	}
	return specs
}

// drive feeds the policy a deterministic sample stream that exercises
// warmup, growth and reclaim phases, returning the action descriptions.
func drive(p Policy, from, to int) []string {
	var out []string
	for i := from; i < to; i++ {
		missPS := 5e6
		if i%7 > 3 {
			missPS = 1e3
		}
		s := sample(LowKeep, 2+i%4, missPS)
		s.NowNS = float64(i) * 1e8
		s.DDIOHitPS = 1e7 + float64(i%5)*3e6
		s.TotalRefsPS = 2e7
		p.Observe(s)
		out = append(out, p.Decide().Desc)
	}
	return out
}

// TestPolicySnapshotRoundTrip: for every implementation, running k
// samples, snapshotting, restoring into a fresh instance, and continuing
// yields exactly the decision stream of an uninterrupted run — and the
// restored snapshot re-serialises to identical bytes.
func TestPolicySnapshotRoundTrip(t *testing.T) {
	for _, sp := range allSpecs(t) {
		t.Run(sp.String(), func(t *testing.T) {
			full := sp.New()
			wantAll := drive(full, 0, 40)

			orig := sp.New()
			drive(orig, 0, 25)
			snap, err := orig.Snapshot()
			if err != nil {
				t.Fatal(err)
			}

			restored := sp.New()
			if err := restored.Restore(snap); err != nil {
				t.Fatal(err)
			}
			resnap, err := restored.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(snap, resnap) {
				t.Fatalf("restore+snapshot not byte-identical:\n%s\nvs\n%s", snap, resnap)
			}
			if restored.Health() != orig.Health() {
				t.Fatalf("restored health %+v, want %+v", restored.Health(), orig.Health())
			}
			got := drive(restored, 25, 40)
			want := wantAll[25:]
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("decision %d after restore = %q, want %q", 25+i, got[i], want[i])
				}
			}
		})
	}
}

// TestPolicyRestoreErrors: malformed bytes and mismatched configurations
// are typed errors, never panics, and leave the policy untouched.
func TestPolicyRestoreErrors(t *testing.T) {
	for _, sp := range allSpecs(t) {
		p := sp.New()
		if err := p.Restore([]byte("{not json")); err == nil {
			t.Errorf("%s: garbage restore accepted", sp)
		}
	}
	// A static snapshot carries its way count; restoring into a
	// differently-configured instance must be rejected.
	s2 := NewStatic(2)
	snap, err := s2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := NewStatic(4).Restore(snap); err == nil {
		t.Error("static:4 accepted a static:2 snapshot")
	}
}

// TestEvaluatorSnapshotRoundTrip: a mid-run evaluator snapshot restored
// into a freshly built evaluator reproduces the original's summaries and
// future tick behaviour.
func TestEvaluatorSnapshotRoundTrip(t *testing.T) {
	specs := mustSpecs(t, "static:5,greedy")
	run := func(e *Evaluator, from, to int) {
		for i := from; i < to; i++ {
			s := sample(LowKeep, 2, 5e6)
			s.NowNS = float64(i) * 1e8
			s.DDIOHitPS = 1e7
			tick(e, s)
		}
	}
	full := NewEvaluator(specs)
	run(full, 0, 20)

	orig := NewEvaluator(specs)
	run(orig, 0, 12)
	snap, err := orig.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored := NewEvaluator(specs)
	run(restored, 0, 3) // pre-restore state must be overwritten
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	run(restored, 12, 20)
	wantSums, gotSums := full.Summaries(), restored.Summaries()
	for i := range wantSums {
		if gotSums[i] != wantSums[i] {
			t.Fatalf("shadow %d summary after restore = %+v, want %+v", i, gotSums[i], wantSums[i])
		}
	}

	// Mismatched shadow sets are rejected.
	if err := NewEvaluator(mustSpecs(t, "static:5")).Restore(snap); err == nil {
		t.Error("evaluator with fewer shadows accepted the snapshot")
	}
	if err := NewEvaluator(mustSpecs(t, "greedy,static:5")).Restore(snap); err == nil {
		t.Error("evaluator with reordered shadows accepted the snapshot")
	}
}

// TestEvaluatorRestart: a cold start zeroes summaries, rows, and the
// counterfactual machines.
func TestEvaluatorRestart(t *testing.T) {
	e := NewEvaluator(mustSpecs(t, "static:5"))
	for i := 0; i < 5; i++ {
		s := sample(LowKeep, 2, 5e6)
		s.NowNS = float64(i) * 1e8
		tick(e, s)
	}
	if len(e.Rows()) == 0 || e.Summaries()[0].Ticks == 0 {
		t.Fatal("evaluator did not accumulate state to restart from")
	}
	e.Restart()
	if len(e.Rows()) != 0 || e.Dropped() != 0 {
		t.Fatal("restart kept divergence rows")
	}
	sum := e.Summaries()[0]
	if sum.Ticks != 0 || sum.FinalDDIO != 0 || sum.Name != "static:5" {
		t.Fatalf("restart kept summary state: %+v", sum)
	}
	var nilEv *Evaluator
	nilEv.Restart() // must not panic
}
