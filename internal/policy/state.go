package policy

import "fmt"

// State is the Mealy FSM state of the paper's Fig. 6. It lives in the
// policy package because the allocation policy owns the control FSM; the
// daemon (internal/core) aliases it as core.State so existing call sites
// and the trace/CSV shapes are unchanged. Policies other than IAT reuse
// the same vocabulary where it fits (LowKeep for "holding", IODemand for
// "granting I/O ways", Reclaim for "taking ways back") so mixed-policy
// fleets aggregate on one state column.
//
//simlint:enum
type State int

// FSM states.
const (
	// LowKeep: I/O traffic is not pressing the LLC; DDIO ways stay at
	// the minimum.
	LowKeep State = iota
	// IODemand: intensive I/O traffic; write allocates overflow the DDIO
	// ways — grow them.
	IODemand
	// CoreDemand: a memory-intensive I/O application's cores are
	// evicting the Rx buffers — grow the tenant's ways.
	CoreDemand
	// HighKeep: DDIO holds its maximum allocation; hold.
	HighKeep
	// Reclaim: I/O pressure receded with a mid-level allocation —
	// reclaim a way per iteration from DDIO or an over-provisioned
	// tenant.
	Reclaim
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case LowKeep:
		return "LowKeep"
	case IODemand:
		return "IODemand"
	case CoreDemand:
		return "CoreDemand"
	case HighKeep:
		return "HighKeep"
	case Reclaim:
		return "Reclaim"
	}
	return fmt.Sprintf("State(%d)", int(s))
}
