package policy

import "fmt"

// DefaultStaticWays is the DDIO way count of a bare "static" spec — the
// hardware default of two DDIO ways the paper's motivation experiments
// run against.
const DefaultStaticWays = 2

// Static is the no-op baseline manager: it pins DDIO to a fixed way count
// (clamped into the configured bounds) and never moves tenant
// allocations. Against it, every adaptive policy's wins and losses are
// measured — it is also what a fleet effectively runs before any I/O-aware
// daemon is deployed.
type Static struct {
	ways int
	cur  Sample
	h    Health
}

// NewStatic returns a fixed-allocation policy holding ways DDIO ways.
func NewStatic(ways int) *Static {
	if ways < 1 {
		ways = DefaultStaticWays
	}
	return &Static{ways: ways}
}

// Name implements Policy.
func (p *Static) Name() string { return fmt.Sprintf("static:%d", p.ways) }

// Kind implements Policy.
func (p *Static) Kind() Kind { return KindStatic }

// Health implements Policy.
func (p *Static) Health() Health { return p.h }

// Reset implements Policy (stateless beyond the target).
func (p *Static) Reset() {}

// Observe implements Policy.
func (p *Static) Observe(s Sample) { p.cur = s }

// Decide implements Policy: converge to the fixed target, then hold.
func (p *Static) Decide() Actions {
	s := p.cur
	p.h.Ticks++
	target := p.ways
	if target < s.Limits.DDIOWaysMin {
		target = s.Limits.DDIOWaysMin
	}
	if target > s.Limits.DDIOWaysMax {
		target = s.Limits.DDIOWaysMax
	}
	var a Actions
	if !s.Limits.DisableDDIOAdjust && target != s.DDIOWays {
		a = Actions{State: LowKeep, DDIOWays: target, Desc: fmt.Sprintf("static: ddio=%d", target)}
	} else {
		a = Actions{Stable: true, State: LowKeep, DDIOWays: s.DDIOWays, Desc: "stable"}
	}
	p.h.note(a, s.DDIOWays)
	return a
}
